#!/usr/bin/env bash
# The full correctness gate, runnable locally or in CI:
#
#   1. plain build + full ctest          (build/)
#   2. bounded chaos smoke               (1 SIGKILL round + zombie round over
#                                         the real binaries, history checked)
#      + two-shard migration smoke       (live slot migration over the real
#                                         binaries, zero acked-write loss)
#   3. ASan+UBSan build + full ctest     (build-asan/, UBSan non-recoverable)
#   4. TSan build + the concurrency-heavy suites (build-tsan/: common, net, rpc, replication)
#   5. memdb-analyzer call-graph invariants (transitive blocking, lock-order
#      cycles, status discards, rpc deadlines, ok-return pairing, plus the
#      folded lint.py file rules); falls back to tools/lint.py if the
#      analyzer cannot run at all
#   6. fuzz-smoke: both parser harnesses replay their seed corpora under
#      the ASan+UBSan build from stage 3; with clang, additionally a
#      bounded (~30s) coverage-guided libFuzzer run, crash artifacts
#      preserved under fuzz/artifacts/
#   7. clang-tidy over src/              (skipped with a notice if absent)
#   8. thread-safety compile-fail checks (skipped with a notice if no
#      clang++), including the analyzer-checked lock-order twins
#
# Stage 4 runs only common_test, net_test, rpc_test, and replication_test:
# TSan slows everything ~10x and those suites exercise every cross-thread
# edge (the lock-free TraceLog ring, io threads, loop hand-off, gate
# completion, follower/applier bridge); the rest of the tree is
# single-threaded by construction and covered by stages 1-3.
#
# Also exposed as `cmake --build build --target check`.

set -u -o pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 4)"

# Bound the chaos harness inside the gate: one SIGKILL round (plus the
# SIGSTOP zombie round) per ctest invocation. The full default (3 rounds)
# is for `ctest -R chaos_e2e_test` outside the gate; override by exporting
# MEMDB_CHAOS_ROUNDS before running check.sh.
export MEMDB_CHAOS_ROUNDS="${MEMDB_CHAOS_ROUNDS:-1}"

failures=0
notices=()

banner() { printf '\n==== %s ====\n' "$*"; }

run_stage() {
  local name="$1"
  shift
  banner "$name"
  if "$@"; then
    printf -- '---- %s: OK\n' "$name"
  else
    printf -- '---- %s: FAILED\n' "$name" >&2
    failures=$((failures + 1))
  fi
}

skip_stage() {
  local name="$1" reason="$2"
  banner "$name"
  printf -- '---- %s: SKIPPED (%s)\n' "$name" "$reason"
  notices+=("$name skipped: $reason")
}

build_and_test() {
  local dir="$1"
  shift
  cmake -B "$dir" -S "$ROOT" "$@" &&
    cmake --build "$dir" -j "$JOBS" &&
    (cd "$dir" && ctest --output-on-failure -j "$JOBS")
}

# --- 1. plain build + tests -------------------------------------------------
run_stage "plain build + ctest" build_and_test build

# --- 2. bounded chaos smoke -------------------------------------------------
# Real binaries, live wire traffic, one SIGKILL failover round plus the
# SIGSTOP zombie-fencing round; the recorded history must linearize with
# zero acked-write loss. Kept bounded here so the gate stays fast — the
# multi-round soak is `MEMDB_CHAOS_ROUNDS=3 ctest -R chaos_e2e_test`.
chaos_smoke_stage() {
  (cd build && ctest --output-on-failure -R '^chaos_e2e_test$')
}
run_stage "bounded chaos smoke (MEMDB_CHAOS_ROUNDS=$MEMDB_CHAOS_ROUNDS)" \
  chaos_smoke_stage

# --- 2b. two-shard migration smoke -------------------------------------------
# Real binaries again: two cluster-mode primaries on two txlogd groups move
# a slot under live ClusterClient writes — fenced ownership flip, zero
# acked-write loss, MOVED/ASK observed and followed. One bounded round.
shard_smoke_stage() {
  (cd build && ctest --output-on-failure -R '^shard_e2e_test$')
}
run_stage "two-shard migration smoke" shard_smoke_stage

# --- 2c. loadgen + eviction smoke --------------------------------------------
# The real server under a deliberately tiny budget, driven for a few seconds
# by memorydb-loadgen over real sockets: the run must stay error-free AND
# the server must have evicted (working set >> maxmemory), proving the
# memory ceiling is enforced on the socket path, not just in unit tests.
loadgen_smoke_stage() {
  local srv_log port srv_pid rc=0
  srv_log=$(mktemp)
  ./build/src/net/memorydb-server --port 0 --maxmemory-mb 4 \
    --maxmemory-policy allkeys-lru >"$srv_log" 2>&1 &
  srv_pid=$!
  for _ in $(seq 50); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$srv_log" | head -1)
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "memorydb-server never reported its port" >&2
    cat "$srv_log" >&2
    kill "$srv_pid" 2>/dev/null || true
    return 1
  fi
  ./build/src/loadgen/memorydb-loadgen --endpoints "127.0.0.1:$port" \
    --connections 8 --threads 2 --keys 50000 --value-bytes 512 \
    --write-ratio 0.5 --duration-s 3 --warmup-s 1 \
    --require-evictions --max-errors 0 || rc=1
  kill "$srv_pid" 2>/dev/null || true
  wait "$srv_pid" 2>/dev/null || true
  rm -f "$srv_log"
  return "$rc"
}
run_stage "loadgen + eviction smoke" loadgen_smoke_stage

# --- 3. ASan + UBSan --------------------------------------------------------
run_stage "asan+ubsan build + ctest" \
  build_and_test build-asan -DMEMDB_SANITIZE=address,undefined

# --- 4. TSan (concurrency suites only) --------------------------------------
tsan_stage() {
  cmake -B build-tsan -S "$ROOT" -DMEMDB_SANITIZE=thread &&
    cmake --build build-tsan -j "$JOBS" --target common_test net_test \
      rpc_test replication_test &&
    (cd build-tsan &&
      ctest --output-on-failure \
        -R '^(common_test|net_test|rpc_test|replication_test)$')
}
run_stage "tsan build + common/net/rpc suites" tsan_stage

# --- 5. analyzer: call-graph repo invariants ---------------------------------
# memdb-analyzer subsumes lint.py's four regex rules and adds the
# call-graph checks. It auto-selects its frontend (clang.cindex where
# libclang exists, the bundled textual parser otherwise); lint.py remains
# as the fallback only if the analyzer itself cannot run (exit 4 or no
# python3).
analyze_stage() {
  python3 "$ROOT/tools/memdb_analyzer.py"
  local rc=$?
  if [ "$rc" -eq 4 ]; then
    echo "memdb-analyzer frontend unavailable; falling back to tools/lint.py"
    python3 "$ROOT/tools/lint.py"
    rc=$?
  fi
  return "$rc"
}
if command -v python3 >/dev/null 2>&1; then
  run_stage "memdb-analyzer" analyze_stage
else
  skip_stage "memdb-analyzer" "python3 not installed"
fi

# --- 6. fuzz smoke ------------------------------------------------------------
# The seed corpora replay through the corpus drivers built by the stage-3
# ASan+UBSan tree — every input must complete with zero sanitizer reports.
# When the toolchain is clang, the same harnesses also run as real
# libFuzzer binaries for a bounded coverage-guided burst; any crash
# artifact is preserved under fuzz/artifacts/ for replay.
fuzz_smoke_stage() {
  local rc=0
  for harness in resp_decode rpc_frame; do
    local driver="$ROOT/build-asan/fuzz/${harness}_fuzz_driver"
    if [ ! -x "$driver" ]; then
      echo "missing $driver (stage 3 must build first)" >&2
      rc=1
      continue
    fi
    "$driver" "$ROOT/fuzz/corpus/$harness" || rc=1
    local libfuzzer="$ROOT/build-asan/fuzz/${harness}_fuzz"
    if [ -x "$libfuzzer" ]; then
      mkdir -p "$ROOT/fuzz/artifacts"
      "$libfuzzer" -max_total_time="${MEMDB_FUZZ_SECONDS:-15}"         -artifact_prefix="$ROOT/fuzz/artifacts/${harness}_"         "$ROOT/fuzz/corpus/$harness" || rc=1
    fi
  done
  if [ ! -x "$ROOT/build-asan/fuzz/resp_decode_fuzz" ]; then
    echo "note: no libFuzzer binaries (GCC toolchain); corpus replay only"
  fi
  return "$rc"
}
run_stage "fuzz-smoke (ASan+UBSan)" fuzz_smoke_stage

# --- 7. clang-tidy ----------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  tidy_stage() {
    # The plain build dir has the compile database.
    cmake -B build -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null &&
      find "$ROOT/src" -name '*.cc' -print0 |
      xargs -0 -n 8 -P "$JOBS" clang-tidy -p build --quiet
  }
  run_stage "clang-tidy" tidy_stage
else
  skip_stage "clang-tidy" "clang-tidy not installed"
fi

# --- 8. thread-safety compile-fail checks -----------------------------------
if command -v clang++ >/dev/null 2>&1; then
  tsa_flags=(-std=c++20 -I"$ROOT/src" -Wthread-safety -Werror=thread-safety
             -fsyntax-only)
  compile_fail_stage() {
    # Control: the correctly-locked twin must compile, proving the harness
    # (include paths, annotation macros) actually works.
    if ! clang++ "${tsa_flags[@]}" \
        "$ROOT/tools/compile_fail/guarded_access_ok.cc"; then
      echo "harness broken: guarded_access_ok.cc should compile" >&2
      return 1
    fi
    # The unguarded twin must be rejected.
    if clang++ "${tsa_flags[@]}" \
        "$ROOT/tools/compile_fail/unguarded_access.cc" 2>/dev/null; then
      echo "unguarded_access.cc compiled; thread-safety analysis is not" \
           "rejecting unguarded access" >&2
      return 1
    fi
    # The lock-order twins: the correctly-ordered control must compile
    # (the ABBA twin is rejected by memdb-analyzer, not by clang — that
    # check runs as analyzer_lock_order_cycle_test in ctest).
    if ! clang++ "${tsa_flags[@]}" \
        "$ROOT/tools/compile_fail/lock_order_ok.cc"; then
      echo "harness broken: lock_order_ok.cc should compile" >&2
      return 1
    fi
    echo "unguarded access rejected, guarded+ordered controls accepted"
  }
  run_stage "thread-safety compile-fail" compile_fail_stage
else
  skip_stage "thread-safety compile-fail" "clang++ not installed"
fi

# --- summary ----------------------------------------------------------------
banner "summary"
for n in "${notices[@]:-}"; do
  [ -n "$n" ] && echo "NOTICE: $n"
done
if [ "$failures" -gt 0 ]; then
  echo "check.sh: $failures stage(s) FAILED" >&2
  exit 1
fi
echo "check.sh: all stages passed"
