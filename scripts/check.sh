#!/usr/bin/env bash
# The full correctness gate, runnable locally or in CI:
#
#   1. plain build + full ctest          (build/)
#   2. ASan+UBSan build + full ctest     (build-asan/, UBSan non-recoverable)
#   3. TSan build + the concurrency-heavy suites (build-tsan/: common, net, rpc, replication)
#   4. tools/lint.py repo invariants (sync, memory_order, blocking, trace lock-freedom)
#   5. clang-tidy over src/              (skipped with a notice if absent)
#   6. thread-safety compile-fail checks (skipped with a notice if no clang++)
#
# Stage 3 runs only common_test, net_test, rpc_test, and replication_test:
# TSan slows everything ~10x and those suites exercise every cross-thread
# edge (the lock-free TraceLog ring, io threads, loop hand-off, gate
# completion, follower/applier bridge); the rest of the tree is
# single-threaded by construction and covered by stages 1-2.
#
# Also exposed as `cmake --build build --target check`.

set -u -o pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 4)"

failures=0
notices=()

banner() { printf '\n==== %s ====\n' "$*"; }

run_stage() {
  local name="$1"
  shift
  banner "$name"
  if "$@"; then
    printf -- '---- %s: OK\n' "$name"
  else
    printf -- '---- %s: FAILED\n' "$name" >&2
    failures=$((failures + 1))
  fi
}

skip_stage() {
  local name="$1" reason="$2"
  banner "$name"
  printf -- '---- %s: SKIPPED (%s)\n' "$name" "$reason"
  notices+=("$name skipped: $reason")
}

build_and_test() {
  local dir="$1"
  shift
  cmake -B "$dir" -S "$ROOT" "$@" &&
    cmake --build "$dir" -j "$JOBS" &&
    (cd "$dir" && ctest --output-on-failure -j "$JOBS")
}

# --- 1. plain build + tests -------------------------------------------------
run_stage "plain build + ctest" build_and_test build

# --- 2. ASan + UBSan --------------------------------------------------------
run_stage "asan+ubsan build + ctest" \
  build_and_test build-asan -DMEMDB_SANITIZE=address,undefined

# --- 3. TSan (concurrency suites only) --------------------------------------
tsan_stage() {
  cmake -B build-tsan -S "$ROOT" -DMEMDB_SANITIZE=thread &&
    cmake --build build-tsan -j "$JOBS" --target common_test net_test \
      rpc_test replication_test &&
    (cd build-tsan &&
      ctest --output-on-failure \
        -R '^(common_test|net_test|rpc_test|replication_test)$')
}
run_stage "tsan build + common/net/rpc suites" tsan_stage

# --- 4. repo-invariant linter -----------------------------------------------
run_stage "tools/lint.py" python3 "$ROOT/tools/lint.py"

# --- 5. clang-tidy ----------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  tidy_stage() {
    # The plain build dir has the compile database.
    cmake -B build -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null &&
      find "$ROOT/src" -name '*.cc' -print0 |
      xargs -0 -n 8 -P "$JOBS" clang-tidy -p build --quiet
  }
  run_stage "clang-tidy" tidy_stage
else
  skip_stage "clang-tidy" "clang-tidy not installed"
fi

# --- 6. thread-safety compile-fail checks -----------------------------------
if command -v clang++ >/dev/null 2>&1; then
  tsa_flags=(-std=c++20 -I"$ROOT/src" -Wthread-safety -Werror=thread-safety
             -fsyntax-only)
  compile_fail_stage() {
    # Control: the correctly-locked twin must compile, proving the harness
    # (include paths, annotation macros) actually works.
    if ! clang++ "${tsa_flags[@]}" \
        "$ROOT/tools/compile_fail/guarded_access_ok.cc"; then
      echo "harness broken: guarded_access_ok.cc should compile" >&2
      return 1
    fi
    # The unguarded twin must be rejected.
    if clang++ "${tsa_flags[@]}" \
        "$ROOT/tools/compile_fail/unguarded_access.cc" 2>/dev/null; then
      echo "unguarded_access.cc compiled; thread-safety analysis is not" \
           "rejecting unguarded access" >&2
      return 1
    fi
    echo "unguarded access rejected, guarded control accepted"
  }
  run_stage "thread-safety compile-fail" compile_fail_stage
else
  skip_stage "thread-safety compile-fail" "clang++ not installed"
fi

# --- summary ----------------------------------------------------------------
banner "summary"
for n in "${notices[@]:-}"; do
  [ -n "$n" ] && echo "NOTICE: $n"
done
if [ "$failures" -gt 0 ]; then
  echo "check.sh: $failures stage(s) FAILED" >&2
  exit 1
fi
echo "check.sh: all stages passed"
