// Tests for the annotated synchronization primitives in common/sync.h:
// mutual exclusion, condition-variable semantics, and — via death tests —
// the runtime enforcement (Mutex::AssertHeld, ThreadAffinity) that backs up
// the static annotations on toolchains without clang's analysis.

#include "common/sync.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace memdb {
namespace {

TEST(MutexTest, LockExcludes) {
  Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(MutexTest, TryLockFailsWhenHeld) {
  Mutex mu;
  mu.Lock();
  bool locked_elsewhere = true;
  // try_lock from the same thread is UB for std::mutex; probe from another.
  std::thread probe([&] { locked_elsewhere = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(locked_elsewhere);
  mu.Unlock();

  std::thread probe2([&] {
    locked_elsewhere = mu.TryLock();
    if (locked_elsewhere) mu.Unlock();
  });
  probe2.join();
  EXPECT_TRUE(locked_elsewhere);
}

TEST(MutexTest, AssertHeldPassesUnderLock) {
  Mutex mu;
  MutexLock lock(&mu);
  mu.AssertHeld();  // must not abort
}

TEST(MutexDeathTest, AssertHeldAbortsWhenUnheld) {
  Mutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "AssertHeld failed");
}

TEST(MutexDeathTest, AssertHeldAbortsFromOtherThread) {
  Mutex mu;
  mu.Lock();
  // Held, but by a different thread than the asserter.
  EXPECT_DEATH(
      {
        std::thread other([&] { mu.AssertHeld(); });
        other.join();
      },
      "AssertHeld failed");
  mu.Unlock();
}

TEST(CondVarTest, SignalWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    observed = true;
  });
  {
    MutexLock lock(&mu);
    ready = true;
    cv.Signal();
  }
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, WaitForTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  // Nobody signals: must come back false reasonably quickly, mutex held.
  EXPECT_FALSE(cv.WaitFor(&mu, 10));
  mu.AssertHeld();
}

TEST(CondVarTest, WaitForSeesSignal) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread signaler([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.Signal();
  });
  {
    MutexLock lock(&mu);
    // Loop on the predicate: WaitFor(true) can also be a spurious wakeup.
    while (!ready) {
      if (!cv.WaitFor(&mu, 5000)) break;
    }
    EXPECT_TRUE(ready);
  }
  signaler.join();
}

TEST(ThreadAffinityTest, UnboundPassesEverywhere) {
  ThreadAffinity affinity;
  EXPECT_FALSE(affinity.Bound());
  affinity.AssertHeldThread();  // unbound: any thread passes
  std::thread other([&] { affinity.AssertHeldThread(); });
  other.join();
}

TEST(ThreadAffinityTest, BoundPassesOnOwner) {
  ThreadAffinity affinity;
  affinity.BindToCurrentThread();
  EXPECT_TRUE(affinity.Bound());
  EXPECT_TRUE(affinity.BoundToCurrentThread());
  affinity.AssertHeldThread();
}

TEST(ThreadAffinityTest, ResetUnbinds) {
  ThreadAffinity affinity;
  affinity.BindToCurrentThread();
  affinity.Reset();
  EXPECT_FALSE(affinity.Bound());
  std::thread other([&] { affinity.AssertHeldThread(); });
  other.join();
}

TEST(ThreadAffinityTest, RebindTransfersOwnership) {
  ThreadAffinity affinity;
  affinity.BindToCurrentThread();
  std::thread other([&] {
    affinity.BindToCurrentThread();  // e.g. a restarted loop thread
    EXPECT_TRUE(affinity.BoundToCurrentThread());
    affinity.AssertHeldThread();
  });
  other.join();
  EXPECT_FALSE(affinity.BoundToCurrentThread());
}

TEST(ThreadAffinityDeathTest, AssertAbortsOffThread) {
  ThreadAffinity affinity;
  affinity.BindToCurrentThread();
  EXPECT_DEATH(
      {
        std::thread other([&] { affinity.AssertHeldThread(); });
        other.join();
      },
      "AssertHeldThread failed");
}

}  // namespace
}  // namespace memdb
