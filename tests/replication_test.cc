// Replication & recovery subsystem tests (src/replication): the
// FsObjectStore blob store (crash-atomic Put, CRC trailer, tmp exclusion),
// SnapshotStore naming/manifest conventions, effect-batch replay,
// ReplayLogTail checksum-chain verification against a real 3-node txlogd
// group, the log-fed replica RespServer (convergence, -READONLY, WAIT 0,
// link staleness), the off-box snapshot cycle feeding --restore, and the
// bounded dedup table. Everything runs real daemons' machinery in-process
// over 127.0.0.1 sockets.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/crc.h"
#include "common/metrics.h"
#include "engine/engine.h"
#include "engine/snapshot.h"
#include "net/server.h"
#include "replication/offbox_runner.h"
#include "replication/recovery.h"
#include "replication/snapshot_store.h"
#include "resp/resp.h"
#include "rpc/loop.h"
#include "storage/fs_object_store.h"
#include "txlog/remote_client.h"
#include "txlog/rpc_wire.h"
#include "txlog/service.h"

namespace memdb {
namespace {

using resp::Value;

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// Unique scratch directory, removed on destruction.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/memdb_repl_test_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = (p != nullptr) ? p : "";
  }
  ~TempDir() {
    if (!path.empty()) {
      const std::string cmd = "rm -rf '" + path + "'";
      [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
  }
  std::string path;
};

// In-process 3-replica txlogd group (same shape as rpc_test's LogGroup).
struct LogGroup {
  explicit LogGroup(size_t n, size_t dedup_max = 65536) {
    for (size_t i = 0; i < n; ++i) {
      txlog::LogService::Options opt;
      opt.node_id = i + 1;
      opt.listen_port = 0;
      opt.fsync = false;
      opt.heartbeat_ms = 20;
      opt.election_min_ms = 50;
      opt.election_max_ms = 120;
      opt.raft_rpc_timeout_ms = 100;
      opt.dedup_max_entries = dedup_max;
      services.push_back(std::make_unique<txlog::LogService>(opt));
      EXPECT_TRUE(services.back()->Start().ok());
    }
    std::vector<std::pair<uint64_t, std::string>> membership;
    for (size_t i = 0; i < n; ++i) {
      endpoints.push_back("127.0.0.1:" + std::to_string(services[i]->port()));
      membership.emplace_back(i + 1, endpoints.back());
    }
    for (auto& s : services) s->SetPeers(membership);
  }
  ~LogGroup() {
    for (auto& s : services) {
      if (s != nullptr) s->Stop();
    }
  }

  int WaitForLeader(int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      for (size_t i = 0; i < services.size(); ++i) {
        if (services[i] != nullptr && services[i]->IsLeader()) {
          return static_cast<int>(i);
        }
      }
      SleepMs(5);
    }
    return -1;
  }

  void StopAll() {
    for (auto& s : services) {
      if (s != nullptr) s->Stop();
      s.reset();
    }
  }

  std::vector<std::unique_ptr<txlog::LogService>> services;
  std::vector<std::string> endpoints;
};

struct ClientFixture {
  explicit ClientFixture(const std::vector<std::string>& endpoints,
                         uint64_t writer_id = 77) {
    EXPECT_TRUE(loop.Start().ok());
    txlog::RemoteClient::Options opt;
    opt.writer_id = writer_id;
    opt.rpc_timeout_ms = 250;
    client =
        std::make_unique<txlog::RemoteClient>(&loop, endpoints, opt, &registry);
  }
  ~ClientFixture() {
    client->Shutdown();
    loop.Stop();
  }

  uint64_t AppendData(const std::string& payload) {
    txlog::LogRecord r;
    r.type = txlog::RecordType::kData;
    r.payload = payload;
    uint64_t index = 0;
    const Status s = client->AppendSync(txlog::wire::kUnconditional,
                                        std::move(r), &index);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return index;
  }

  uint64_t AppendChecksum(uint64_t running) {
    txlog::LogRecord r;
    r.type = txlog::RecordType::kChecksum;
    PutFixed64(&r.payload, running);
    uint64_t index = 0;
    const Status s = client->AppendSync(txlog::wire::kUnconditional,
                                        std::move(r), &index);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return index;
  }

  MetricsRegistry registry;
  rpc::LoopThread loop;
  std::unique_ptr<txlog::RemoteClient> client;
};

// A small blocking RESP client over a real socket (net_test's idiom).
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    struct timeval tv{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  bool SendCommand(const std::vector<std::string>& argv) {
    const std::string bytes = resp::EncodeCommand(argv);
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  std::vector<Value> ReadReplies(size_t n) {
    std::vector<Value> out;
    char buf[16 * 1024];
    while (out.size() < n) {
      Value v;
      const resp::DecodeStatus st = dec_.Decode(&v);
      if (st == resp::DecodeStatus::kOk) {
        out.push_back(std::move(v));
        continue;
      }
      if (st == resp::DecodeStatus::kError) break;
      const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r <= 0) break;
      dec_.Feed(Slice(buf, static_cast<size_t>(r)));
    }
    return out;
  }

  Value RoundTrip(const std::vector<std::string>& argv) {
    if (!SendCommand(argv)) return Value::Error("send failed");
    std::vector<Value> replies = ReadReplies(1);
    return replies.empty() ? Value::Error("no reply") : replies[0];
  }

 private:
  int fd_ = -1;
  resp::Decoder dec_;
};

double ServerMetric(uint16_t port, const std::string& series) {
  TestClient c(port);
  const Value v = c.RoundTrip({"METRICS"});
  double out = 0;
  MetricsRegistry::ParseSeries(v.str, series, &out);
  return out;
}

// Same wire format as Node/RespServer effect batches.
std::string EncodeBatch(const std::vector<std::vector<std::string>>& effects) {
  std::string out;
  PutLengthPrefixed(&out, "7.0.7");
  for (const auto& argv : effects) {
    PutVarint64(&out, argv.size());
    for (const auto& a : argv) PutLengthPrefixed(&out, a);
  }
  return out;
}

std::string GetKey(engine::Engine* engine, const std::string& key) {
  engine::ExecContext ctx;
  const Value v = engine->Execute({"GET", key}, &ctx);
  return v.type == resp::Type::kBulkString ? v.str : "";
}

// ---------------------------------------------------------------------------
// FsObjectStore

TEST(FsObjectStoreTest, PutGetRoundTripAndOverwrite) {
  TempDir dir;
  storage::FsObjectStore store(dir.path, {.fsync = false});
  ASSERT_TRUE(store.Open().ok());

  ASSERT_TRUE(store.Put("snap/shard-0/a", Slice("hello")).ok());
  std::string data;
  ASSERT_TRUE(store.Get("snap/shard-0/a", &data).ok());
  EXPECT_EQ(data, "hello");

  // Put replaces atomically; readers see old or new, never a mix.
  ASSERT_TRUE(store.Put("snap/shard-0/a", Slice("world!")).ok());
  ASSERT_TRUE(store.Get("snap/shard-0/a", &data).ok());
  EXPECT_EQ(data, "world!");

  EXPECT_TRUE(store.Get("snap/shard-0/missing", &data).IsNotFound());
  EXPECT_TRUE(store.Delete("snap/shard-0/a").ok());
  EXPECT_TRUE(store.Get("snap/shard-0/a", &data).IsNotFound());
}

TEST(FsObjectStoreTest, DetectsCorruptedBlob) {
  TempDir dir;
  storage::FsObjectStore store(dir.path, {.fsync = false});
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Put("blob", Slice("payload-bytes")).ok());

  // Flip one payload byte behind the store's back.
  const std::string path = dir.path + "/blob";
  std::fstream f(path,
                 std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(2);
  f.put('X');
  f.close();

  std::string data;
  EXPECT_TRUE(store.Get("blob", &data).IsCorruption());
}

TEST(FsObjectStoreTest, ListSortsAndSkipsInProgressUploads) {
  TempDir dir;
  storage::FsObjectStore store(dir.path, {.fsync = false});
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Put("p/ccc", Slice("3")).ok());
  ASSERT_TRUE(store.Put("p/aaa", Slice("1")).ok());
  ASSERT_TRUE(store.Put("p/bbb", Slice("2")).ok());
  ASSERT_TRUE(store.Put("q/zzz", Slice("other prefix")).ok());

  // A crash mid-Put leaves only a tmp sibling; List must not surface it.
  std::ofstream tmp(dir.path + "/p/.tmp-crashed-upload", std::ios::binary);
  tmp << "torn";
  tmp.close();

  std::vector<std::string> keys;
  ASSERT_TRUE(store.List("p/", &keys).ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"p/aaa", "p/bbb", "p/ccc"}));

  keys.clear();
  ASSERT_TRUE(store.List("nope/", &keys).ok());
  EXPECT_TRUE(keys.empty());
}

TEST(FsObjectStoreTest, RejectsKeysThatEscapeTheRoot) {
  TempDir dir;
  storage::FsObjectStore store(dir.path, {.fsync = false});
  ASSERT_TRUE(store.Open().ok());
  EXPECT_FALSE(store.Put("../evil", Slice("x")).ok());
  EXPECT_FALSE(store.Put("a/../../evil", Slice("x")).ok());
  EXPECT_FALSE(store.Put("a//b", Slice("x")).ok());
  EXPECT_FALSE(store.Put("", Slice("x")).ok());
  std::string data;
  EXPECT_FALSE(store.Get("../evil", &data).ok());
}

// ---------------------------------------------------------------------------
// SnapshotStore

TEST(SnapshotStoreTest, ManifestRoundTrip) {
  replication::SnapshotManifest m;
  m.object_key = "snap/shard-0/00000000000000000042";
  m.log_position = 42;
  m.log_running_checksum = 0xdeadbeefcafef00dull;
  m.engine_version = "7.0.7";
  m.created_at_ms = 1234567;

  replication::SnapshotManifest out;
  ASSERT_TRUE(replication::SnapshotManifest::Decode(Slice(m.Encode()), &out));
  EXPECT_EQ(out.object_key, m.object_key);
  EXPECT_EQ(out.log_position, m.log_position);
  EXPECT_EQ(out.log_running_checksum, m.log_running_checksum);
  EXPECT_EQ(out.engine_version, m.engine_version);
  EXPECT_EQ(out.created_at_ms, m.created_at_ms);
}

TEST(SnapshotStoreTest, GetLatestPrefersNewestAndSurvivesLostManifest) {
  TempDir dir;
  storage::FsObjectStore fs(dir.path, {.fsync = false});
  ASSERT_TRUE(fs.Open().ok());
  replication::SnapshotStore store(&fs, "shard-0");

  std::string blob;
  replication::SnapshotManifest manifest;
  EXPECT_TRUE(store.GetLatest(&blob, &manifest).IsNotFound());

  engine::Engine eng;
  engine::ExecContext ctx;
  eng.Execute({"SET", "k", "old"}, &ctx);
  engine::SnapshotMeta meta;
  meta.log_position = 10;
  meta.log_running_checksum = 111;
  ASSERT_TRUE(
      store.PutSnapshot(SerializeSnapshot(eng.keyspace(), meta), meta).ok());

  eng.Execute({"SET", "k", "new"}, &ctx);
  meta.log_position = 25;
  meta.log_running_checksum = 222;
  const std::string newer = SerializeSnapshot(eng.keyspace(), meta);
  ASSERT_TRUE(store.PutSnapshot(newer, meta).ok());

  ASSERT_TRUE(store.GetLatest(&blob, &manifest).ok());
  EXPECT_EQ(blob, newer);
  EXPECT_EQ(manifest.log_position, 25u);
  EXPECT_EQ(manifest.log_running_checksum, 222u);

  // A store whose manifest write was lost still recovers: GetLatest falls
  // back to listing the zero-padded snap/ prefix.
  ASSERT_TRUE(fs.Delete("manifest/shard-0").ok());
  blob.clear();
  ASSERT_TRUE(store.GetLatest(&blob, &manifest).ok());
  EXPECT_EQ(blob, newer);
  EXPECT_EQ(manifest.log_position, 25u);
}

// ---------------------------------------------------------------------------
// Effect-batch replay

TEST(RecoveryTest, ApplyEffectBatchAppliesEveryEffect) {
  engine::Engine eng;
  const std::string batch =
      EncodeBatch({{"SET", "a", "1"}, {"SET", "b", "2"}, {"DEL", "a"}});
  EXPECT_TRUE(replication::ApplyEffectBatch(&eng, Slice(batch), 1000));
  EXPECT_EQ(GetKey(&eng, "a"), "");
  EXPECT_EQ(GetKey(&eng, "b"), "2");

  // Truncated payload is rejected.
  EXPECT_FALSE(replication::ApplyEffectBatch(
      &eng, Slice(batch.data(), batch.size() - 3), 1000));
  // Zero-argc effect is rejected.
  std::string zero;
  PutLengthPrefixed(&zero, "7.0.7");
  PutVarint64(&zero, 0);
  EXPECT_FALSE(replication::ApplyEffectBatch(&eng, Slice(zero), 1000));
}

TEST(RecoveryTest, ReplayLogTailConvergesAndVerifiesChecksumChain) {
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);
  ClientFixture fx(group.endpoints);

  // Producer side of the §7.2.1 chain: CRC64 over kData payloads in log
  // order, one kChecksum record every 3 data records.
  uint64_t running = 0;
  int data_records = 0, checksum_records = 0;
  for (int i = 0; i < 10; ++i) {
    const std::string payload = EncodeBatch(
        {{"SET", "key" + std::to_string(i), "val" + std::to_string(i)}});
    fx.AppendData(payload);
    running = Crc64(running, Slice(payload));
    ++data_records;
    if (data_records % 3 == 0) {
      fx.AppendChecksum(running);
      ++checksum_records;
    }
  }

  engine::Engine eng;
  replication::RestoreResult res;
  const Status s = ReplayLogTail(fx.client.get(), &eng, &res, 0);
  ASSERT_TRUE(s.ok()) << s.ToString();
  // >= : the leader's election-barrier kNoop record also counts as replayed.
  EXPECT_GE(res.entries_replayed, uint64_t(data_records + checksum_records));
  EXPECT_EQ(res.checksum_records_verified, uint64_t(checksum_records));
  EXPECT_EQ(res.running_checksum, running);
  EXPECT_GE(res.applied_index, uint64_t(data_records + checksum_records));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(GetKey(&eng, "key" + std::to_string(i)),
              "val" + std::to_string(i));
  }
}

TEST(RecoveryTest, ReplayLogTailRejectsCorruptChecksumChain) {
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);
  ClientFixture fx(group.endpoints);

  fx.AppendData(EncodeBatch({{"SET", "x", "1"}}));
  fx.AppendChecksum(0x1badc0de);  // disagrees with the recomputed chain

  engine::Engine eng;
  replication::RestoreResult res;
  EXPECT_TRUE(ReplayLogTail(fx.client.get(), &eng, &res, 0).IsCorruption());
}

TEST(RecoveryTest, ReplayLogTailRejectsTrimmedHistory) {
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);
  ClientFixture fx(group.endpoints);

  uint64_t last = 0;
  for (int i = 0; i < 8; ++i) {
    last = fx.AppendData(EncodeBatch({{"SET", "t" + std::to_string(i), "v"}}));
  }
  uint64_t first = 0;
  ASSERT_TRUE(fx.client->TrimSync(last - 2, &first).ok());
  EXPECT_GT(first, 1u);

  // A cold replay (no snapshot) can no longer reach index 1: the snapshot
  // store, not the log, is now the only path to the trimmed prefix.
  engine::Engine eng;
  replication::RestoreResult res;
  EXPECT_TRUE(ReplayLogTail(fx.client.get(), &eng, &res, 0).IsCorruption());
}

// ---------------------------------------------------------------------------
// Log-fed replica server

// Polls the replica until `key` reads back `want` or the deadline passes.
bool WaitForKey(uint16_t port, const std::string& key, const std::string& want,
                int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    TestClient c(port);
    const Value v = c.RoundTrip({"GET", key});
    if (v.type == resp::Type::kBulkString && v.str == want) return true;
    SleepMs(20);
  }
  return false;
}

TEST(ReplicaServerTest, FollowsLogServesReadsRejectsWrites) {
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);

  net::ServerConfig primary_cfg;
  primary_cfg.port = 0;
  primary_cfg.loop_timeout_ms = 10;
  primary_cfg.txlog_endpoints = group.endpoints;
  primary_cfg.txlog_checksum_every = 4;  // exercise chain injection
  primary_cfg.txlog_tail_poll_ms = 50;
  engine::Engine primary_engine;
  net::RespServer primary(&primary_engine, primary_cfg);
  ASSERT_TRUE(primary.Start().ok());

  net::ServerConfig replica_cfg;
  replica_cfg.port = 0;
  replica_cfg.loop_timeout_ms = 10;
  replica_cfg.replica_of_log = group.endpoints;
  replica_cfg.replica_poll_wait_ms = 50;
  engine::Engine replica_engine;
  net::RespServer replica(&replica_engine, replica_cfg);
  ASSERT_TRUE(replica.Start().ok());

  {
    TestClient c(primary.port());
    ASSERT_TRUE(c.ok());
    for (int i = 1; i <= 20; ++i) {
      EXPECT_EQ(c.RoundTrip({"SET", "k" + std::to_string(i),
                             "v" + std::to_string(i)}),
                Value::Simple("OK"));
    }
  }

  // Replica converges on the acked writes by following the log.
  ASSERT_TRUE(WaitForKey(replica.port(), "k20", "v20"));
  EXPECT_TRUE(WaitForKey(replica.port(), "k1", "v1"));

  {
    TestClient c(replica.port());
    // Local writes are refused (§4.2.1: replicas consume, never produce).
    const Value err = c.RoundTrip({"SET", "nope", "x"});
    ASSERT_EQ(err.type, resp::Type::kError);
    EXPECT_EQ(err.str.rfind("READONLY", 0), 0u) << err.str;
    // The replica still serves reads after refusing the write.
    EXPECT_EQ(c.RoundTrip({"GET", "k1"}), Value::Bulk("v1"));
    // WAIT answers 0: a replica replicates to no one.
    EXPECT_EQ(c.RoundTrip({"WAIT", "0", "100"}), Value::Integer(0));

    const Value info = c.RoundTrip({"INFO"});
    ASSERT_EQ(info.type, resp::Type::kBulkString);
    EXPECT_NE(info.str.find("role:replica"), std::string::npos);
    EXPECT_NE(info.str.find("replica_link_status:up"), std::string::npos);
    EXPECT_NE(info.str.find("replica_lag_records:"), std::string::npos);
  }

  // Follow-along checksum verification saw the injected records and agreed
  // with every one of them.
  EXPECT_EQ(ServerMetric(replica.port(), "repl_checksum_failures_total"), 0);
  EXPECT_GT(ServerMetric(replica.port(), "repl_entries_applied_total"), 20);
  EXPECT_GE(ServerMetric(primary.port(), "txlog_checksum_records_total"), 5);

  // Log group lost => the replica reports a down link instead of serving
  // silently-stale data as fresh.
  group.StopAll();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool link_down = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (ServerMetric(replica.port(), "repl_link_up") == 0) {
      link_down = true;
      break;
    }
    SleepMs(50);
  }
  EXPECT_TRUE(link_down);
  // Reads still work (stale-but-available), and INFO says the link is down.
  TestClient c(replica.port());
  EXPECT_EQ(c.RoundTrip({"GET", "k1"}), Value::Bulk("v1"));
  const Value info = c.RoundTrip({"INFO"});
  EXPECT_NE(info.str.find("replica_link_status:down"), std::string::npos);

  replica.Stop();
  primary.Stop();
}

// ---------------------------------------------------------------------------
// Off-box snapshot cycle + --restore

TEST(OffboxTest, CycleProducesRestorableSnapshotAndTrimsLog) {
  TempDir store_dir;
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);

  net::ServerConfig primary_cfg;
  primary_cfg.port = 0;
  primary_cfg.loop_timeout_ms = 10;
  primary_cfg.txlog_endpoints = group.endpoints;
  primary_cfg.txlog_checksum_every = 4;
  engine::Engine primary_engine;
  net::RespServer primary(&primary_engine, primary_cfg);
  ASSERT_TRUE(primary.Start().ok());

  {
    TestClient c(primary.port());
    for (int i = 1; i <= 30; ++i) {
      ASSERT_EQ(c.RoundTrip({"SET", "s" + std::to_string(i),
                             "v" + std::to_string(i)}),
                Value::Simple("OK"));
    }
  }

  replication::OffboxRunner::Options opt;
  opt.endpoints = group.endpoints;
  opt.store_dir = store_dir.path;
  opt.fsync = false;
  opt.trim_slack = 4;
  MetricsRegistry offbox_metrics;
  replication::OffboxRunner runner(opt, &offbox_metrics);
  ASSERT_TRUE(runner.Start().ok());

  replication::OffboxRunner::CycleResult cycle;
  ASSERT_TRUE(runner.RunCycle(&cycle).ok());
  EXPECT_TRUE(cycle.uploaded);
  EXPECT_FALSE(cycle.restored_from_snapshot);  // first cycle is cold
  EXPECT_GE(cycle.position, 30u);
  EXPECT_GT(cycle.snapshot_bytes, 0u);

  // More writes, then an incremental cycle: it restores its own previous
  // snapshot and replays only the tail past it.
  {
    TestClient c(primary.port());
    for (int i = 31; i <= 40; ++i) {
      ASSERT_EQ(c.RoundTrip({"SET", "s" + std::to_string(i),
                             "v" + std::to_string(i)}),
                Value::Simple("OK"));
    }
  }
  replication::OffboxRunner::CycleResult cycle2;
  ASSERT_TRUE(runner.RunCycle(&cycle2).ok());
  EXPECT_TRUE(cycle2.uploaded);
  EXPECT_TRUE(cycle2.restored_from_snapshot);
  EXPECT_GT(cycle2.position, cycle.position);

  // An idle log yields a no-op cycle, not a redundant upload.
  replication::OffboxRunner::CycleResult idle;
  ASSERT_TRUE(runner.RunCycle(&idle).ok());
  EXPECT_FALSE(idle.uploaded);
  runner.Stop();

  // The trim hint took effect: a cold replay from index 1 is impossible...
  {
    ClientFixture fx(group.endpoints);
    txlog::wire::ClientReadResponse rsp;
    ASSERT_TRUE(fx.client->ReadSync(1, 16, 0, &rsp).ok());
    EXPECT_GT(rsp.first_index, 1u);
  }

  // ...so recovery MUST come from the snapshot store: a fresh server with
  // --restore + --replica-of-log rebuilds peer-lessly and converges.
  net::ServerConfig restored_cfg;
  restored_cfg.port = 0;
  restored_cfg.loop_timeout_ms = 10;
  restored_cfg.replica_of_log = group.endpoints;
  restored_cfg.replica_poll_wait_ms = 50;
  restored_cfg.restore = true;
  restored_cfg.store_dir = store_dir.path;
  engine::Engine restored_engine;
  net::RespServer restored(&restored_engine, restored_cfg);
  ASSERT_TRUE(restored.Start().ok());

  EXPECT_TRUE(WaitForKey(restored.port(), "s1", "v1"));     // from snapshot
  EXPECT_TRUE(WaitForKey(restored.port(), "s40", "v40"));   // from log tail
  EXPECT_EQ(ServerMetric(restored.port(), "repl_checksum_failures_total"), 0);

  restored.Stop();
  primary.Stop();
}

TEST(OffboxTest, RefusesToUploadWhenRestoreRehearsalFails) {
  // Direct RestoreFromStore on a corrupted blob: flip a byte inside the
  // stored snapshot and watch recovery fail closed instead of serving it.
  TempDir dir;
  storage::FsObjectStore fs(dir.path, {.fsync = false});
  ASSERT_TRUE(fs.Open().ok());
  replication::SnapshotStore snaps(&fs, "shard-0");

  engine::Engine eng;
  engine::ExecContext ctx;
  eng.Execute({"SET", "k", "v"}, &ctx);
  engine::SnapshotMeta meta;
  meta.log_position = 5;
  ASSERT_TRUE(
      snaps.PutSnapshot(SerializeSnapshot(eng.keyspace(), meta), meta).ok());

  const std::string key = replication::SnapshotStore::SnapshotKey("shard-0", 5);
  std::string blob;
  ASSERT_TRUE(fs.Get(key, &blob).ok());
  blob[blob.size() / 2] ^= 0x40;
  ASSERT_TRUE(fs.Put(key, Slice(blob)).ok());

  engine::Engine fresh;
  replication::RestoreResult res;
  EXPECT_FALSE(RestoreFromStore(&snaps, &fresh, &res).ok());
}

// ---------------------------------------------------------------------------
// Automatic failover (src/failover wired through the RespServer)

// Polls INFO until it contains `needle` or the deadline passes.
bool WaitForInfo(uint16_t port, const std::string& needle,
                 int timeout_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    TestClient c(port);
    const Value v = c.RoundTrip({"INFO"});
    if (v.type == resp::Type::kBulkString &&
        v.str.find(needle) != std::string::npos) {
      return true;
    }
    SleepMs(25);
  }
  return false;
}

net::ServerConfig FailoverConfig(const std::vector<std::string>& endpoints,
                                 bool replica, uint64_t writer_id) {
  net::ServerConfig cfg;
  cfg.port = 0;
  cfg.loop_timeout_ms = 10;
  if (replica) {
    cfg.replica_of_log = endpoints;
    cfg.replica_poll_wait_ms = 50;
  } else {
    cfg.txlog_endpoints = endpoints;
    cfg.txlog_tail_poll_ms = 50;
  }
  cfg.txlog_writer_id = writer_id;
  cfg.failover = true;
  cfg.lease_duration_ms = 400;
  cfg.lease_renew_ms = 100;
  cfg.failover_probe_ms = 60;
  cfg.failover_grace_ms = 150;
  return cfg;
}

TEST(FailoverTest, ReplicaPromotesOnPrimaryDeathAndServesWrites) {
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);

  engine::Engine primary_engine;
  auto primary = std::make_unique<net::RespServer>(
      &primary_engine, FailoverConfig(group.endpoints, false, 1));
  ASSERT_TRUE(primary->Start().ok());

  engine::Engine replica_engine;
  net::RespServer replica(&replica_engine,
                          FailoverConfig(group.endpoints, true, 2));
  ASSERT_TRUE(replica.Start().ok());

  {
    TestClient c(primary->port());
    ASSERT_TRUE(c.ok());
    for (int i = 1; i <= 10; ++i) {
      ASSERT_EQ(c.RoundTrip({"SET", "fk" + std::to_string(i),
                             "v" + std::to_string(i)}),
                Value::Simple("OK"));
    }
    // The primary holds the lease and reports so.
    const Value info = c.RoundTrip({"INFO"});
    EXPECT_NE(info.str.find("master_failover_state:holding"),
              std::string::npos);
  }
  ASSERT_TRUE(WaitForKey(replica.port(), "fk10", "v10"));

  // Kill the primary (clean Stop: renewals cease, the lease just expires —
  // same observable as a crash, minus the SIGKILL that chaos_e2e adds).
  const uint16_t dead_port = primary->port();
  primary->Stop();
  primary.reset();

  // The replica detects the silence, wins the race, replays, promotes —
  // with no operator involvement.
  ASSERT_TRUE(WaitForInfo(replica.port(), "role:master"));

  TestClient c(replica.port());
  ASSERT_TRUE(c.ok());
  // Every acked write survived the failover.
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(c.RoundTrip({"GET", "fk" + std::to_string(i)}),
              Value::Bulk("v" + std::to_string(i)));
  }
  // The new primary acks durable writes...
  EXPECT_EQ(c.RoundTrip({"SET", "post", "failover"}), Value::Simple("OK"));
  // ...and WAIT reports its real quorum, not a stale replica's 0.
  EXPECT_EQ(c.RoundTrip({"WAIT", "0", "100"}), Value::Integer(2));

  const Value info = c.RoundTrip({"INFO"});
  ASSERT_EQ(info.type, resp::Type::kBulkString);
  EXPECT_NE(info.str.find("role:master"), std::string::npos);
  EXPECT_NE(info.str.find("master_failover_state:holding"),
            std::string::npos);
  EXPECT_NE(info.str.find("failovers_total:1"), std::string::npos);
  EXPECT_EQ(ServerMetric(replica.port(), "failovers_total"), 1);
  EXPECT_GT(ServerMetric(replica.port(), "failover_last_duration_ms"), 0);
  (void)dead_port;

  replica.Stop();
}

TEST(FailoverTest, PromotingReplicaStaysReadonlyUntilReplayCatchesUp) {
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);

  engine::Engine primary_engine;
  auto primary = std::make_unique<net::RespServer>(
      &primary_engine, FailoverConfig(group.endpoints, false, 1));
  ASSERT_TRUE(primary->Start().ok());

  engine::Engine replica_engine;
  net::RespServer replica(&replica_engine,
                          FailoverConfig(group.endpoints, true, 2));
  ASSERT_TRUE(replica.Start().ok());

  {
    TestClient c(primary->port());
    ASSERT_TRUE(c.ok());
    ASSERT_EQ(c.RoundTrip({"SET", "seen", "yes"}), Value::Simple("OK"));
  }
  ASSERT_TRUE(WaitForKey(replica.port(), "seen", "yes"));

  // Stall the follower feed: every ReadStream response is swallowed, so the
  // replica's applied_index freezes while the log keeps growing.
  for (auto& svc : group.services) {
    svc->fault().DropResponses(txlog::rpcwire::kRead, 500);
  }
  {
    TestClient c(primary->port());
    for (int i = 1; i <= 15; ++i) {
      ASSERT_EQ(c.RoundTrip({"SET", "unseen" + std::to_string(i), "v"}),
                Value::Simple("OK"));
    }
  }
  primary->Stop();
  primary.reset();

  // The replica wins the lease (lease RPCs are not stalled) but cannot
  // reach the replay target: it must sit in kPromoting, refusing writes —
  // acking now could order a new write ahead of an old acked one.
  ASSERT_TRUE(WaitForInfo(replica.port(), "master_failover_state:replaying"));
  {
    TestClient c(replica.port());
    const Value err = c.RoundTrip({"SET", "too-early", "x"});
    ASSERT_EQ(err.type, resp::Type::kError);
    EXPECT_NE(err.str.find("Promotion in progress"), std::string::npos)
        << err.str;
    // INFO still says replica: the flip happens only at the fenced tail.
    const Value info = c.RoundTrip({"INFO"});
    EXPECT_NE(info.str.find("role:replica"), std::string::npos);
  }

  // Un-stall the feed: replay completes and the node starts serving.
  for (auto& svc : group.services) svc->fault().Clear();
  ASSERT_TRUE(WaitForInfo(replica.port(), "role:master"));
  TestClient c(replica.port());
  for (int i = 1; i <= 15; ++i) {
    EXPECT_EQ(c.RoundTrip({"GET", "unseen" + std::to_string(i)}),
              Value::Bulk("v"));
  }
  EXPECT_EQ(c.RoundTrip({"SET", "now-ok", "x"}), Value::Simple("OK"));

  replica.Stop();
}

TEST(FailoverTest, ZombiePrimaryIsFencedByItsOwnAppendChain) {
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);

  engine::Engine primary_engine;
  net::RespServer primary(&primary_engine,
                          FailoverConfig(group.endpoints, false, 1));
  ASSERT_TRUE(primary.Start().ok());
  {
    TestClient c(primary.port());
    ASSERT_EQ(c.RoundTrip({"SET", "pre", "1"}), Value::Simple("OK"));
  }

  // Cut the primary's renewals (the zombie half of a SIGSTOP round: the
  // process lives, its lease maintenance does not).
  for (auto& svc : group.services) {
    svc->fault().DropRequests(txlog::rpcwire::kRenewLease, 100000);
  }

  // Once the lease expires, a contender takes it — its grant record is the
  // fence in the log.
  ClientFixture contender(group.endpoints, /*writer_id=*/9);
  txlog::rpcwire::LeaseResponse lease;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  for (;;) {
    const Status s =
        contender.client->AcquireLeaseSync(9, 60000, "shard-0", &lease);
    if (s.ok()) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    SleepMs(50);
  }

  // The zombie still believes it holds the lease (renewals only time out),
  // but its next chained append lands on the foreign grant: the gate goes
  // terminally fenced, the server demotes, the client is told.
  {
    TestClient c(primary.port());
    const Value err = c.RoundTrip({"SET", "zombie-write", "lost?"});
    ASSERT_EQ(err.type, resp::Type::kError);
    EXPECT_NE(err.str.find("READONLY"), std::string::npos) << err.str;
  }
  ASSERT_TRUE(WaitForInfo(primary.port(), "role:fenced"));
  // The manager hears about the fence via a task posted to the loop, so its
  // state line can trail the demotion by a beat — poll rather than snapshot.
  ASSERT_TRUE(WaitForInfo(primary.port(), "master_failover_state:fenced"));
  {
    TestClient c(primary.port());
    // Reads stay available; writes stay refused.
    EXPECT_EQ(c.RoundTrip({"GET", "pre"}), Value::Bulk("1"));
    const Value err = c.RoundTrip({"SET", "still-no", "x"});
    ASSERT_EQ(err.type, resp::Type::kError);
    EXPECT_NE(err.str.find("READONLY"), std::string::npos);
    // METRICS agrees with INFO: the gauge pins the terminal state.
    EXPECT_EQ(ServerMetric(primary.port(), "failover_state"), 6);
  }

  for (auto& svc : group.services) svc->fault().Clear();
  primary.Stop();
}

// ---------------------------------------------------------------------------
// Bounded dedup table

TEST(DedupBoundTest, TableStaysBoundedUnderManyWriters) {
  LogGroup group(3, /*dedup_max=*/8);
  const int leader = group.WaitForLeader();
  ASSERT_GE(leader, 0);

  ClientFixture fx(group.endpoints);
  for (int i = 0; i < 40; ++i) {
    fx.AppendData("payload-" + std::to_string(i));
  }

  // The bound is a per-node invariant; evictions are only *eventually*
  // visible on every node (a deposed leader can lag the stream until the
  // next heartbeat catches it up), so assert the gauge everywhere and poll
  // for evictions on any node.
  for (auto& svc : group.services) {
    const Gauge* entries = svc->metrics().FindGauge("txlog_dedup_entries");
    ASSERT_NE(entries, nullptr);
    EXPECT_LE(entries->value(), 8);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  uint64_t evicted = 0;
  while (evicted == 0 && std::chrono::steady_clock::now() < deadline) {
    for (auto& svc : group.services) {
      const Counter* evictions =
          svc->metrics().FindCounter("txlog_dedup_evictions_total");
      if (evictions != nullptr) evicted += evictions->value();
    }
    if (evicted == 0) SleepMs(20);
  }
  EXPECT_GT(evicted, 0u);
}

// ---------------------------------------------------------------------------
// Memory pressure across the log (§2.1)

// A primary under a tight maxmemory evicts and actively expires; both kinds
// of removal leave it only as logged DEL effects. A log-fed replica with no
// memory budget of its own — it never evicts or expires locally — must
// still converge to the primary's post-eviction/post-expiry keyspace, and
// so must a fresh node recovering via --restore from an off-box snapshot
// plus the log tail.
TEST(ReplicaServerTest, EvictionAndExpiryConvergeThroughLogAndRestore) {
  TempDir store_dir;
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);

  net::ServerConfig primary_cfg;
  primary_cfg.port = 0;
  primary_cfg.loop_timeout_ms = 10;
  primary_cfg.txlog_endpoints = group.endpoints;
  primary_cfg.txlog_tail_poll_ms = 50;
  engine::Engine primary_engine;
  primary_engine.set_maxmemory(32 * 1024);
  primary_engine.set_eviction_policy(engine::EvictionPolicy::kAllKeysLru);
  net::RespServer primary(&primary_engine, primary_cfg);
  ASSERT_TRUE(primary.Start().ok());

  net::ServerConfig replica_cfg;  // deliberately unbounded
  replica_cfg.port = 0;
  replica_cfg.loop_timeout_ms = 10;
  replica_cfg.replica_of_log = group.endpoints;
  replica_cfg.replica_poll_wait_ms = 50;
  engine::Engine replica_engine;
  net::RespServer replica(&replica_engine, replica_cfg);
  ASSERT_TRUE(replica.Start().ok());

  // ~45 KiB of payload into a 32 KiB budget forces evictions; every fifth
  // key carries a short TTL so the primary's active sweep also runs.
  constexpr int kKeys = 300;
  {
    TestClient c(primary.port());
    ASSERT_TRUE(c.ok());
    for (int i = 0; i < kKeys; ++i) {
      std::vector<std::string> cmd = {
          "SET", "k" + std::to_string(i),
          std::string(128, static_cast<char>('a' + i % 26))};
      if (i % 5 == 0) {
        cmd.push_back("PX");
        cmd.push_back("400");
      }
      ASSERT_EQ(c.RoundTrip(cmd), Value::Simple("OK")) << "key " << i;
    }
  }
  EXPECT_GT(ServerMetric(primary.port(), "evicted_keys_total"), 0);
  EXPECT_LE(ServerMetric(primary.port(), "used_memory_bytes"), 32 * 1024);

  // Let the TTLs lapse and the active sweep log its DELs, then fence the
  // history with a marker write the replica can wait for.
  SleepMs(900);
  {
    TestClient c(primary.port());
    ASSERT_EQ(c.RoundTrip({"SET", "marker", "done"}), Value::Simple("OK"));
  }
  ASSERT_TRUE(WaitForKey(replica.port(), "marker", "done"));
  EXPECT_GT(ServerMetric(primary.port(), "expired_keys_total"), 0);

  // The replica never removed anything on its own authority.
  EXPECT_EQ(ServerMetric(replica.port(), "evicted_keys_total"), 0);
  EXPECT_EQ(ServerMetric(replica.port(), "expired_keys_total"), 0);

  auto dbsize = [](uint16_t port) -> int64_t {
    TestClient c(port);
    return c.RoundTrip({"DBSIZE"}).integer;
  };
  auto wait_converged = [&](uint16_t port) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      if (dbsize(port) == dbsize(primary.port())) return true;
      SleepMs(50);
    }
    return false;
  };
  EXPECT_TRUE(wait_converged(replica.port()))
      << "replica dbsize " << dbsize(replica.port()) << " vs primary "
      << dbsize(primary.port());

  // Key-by-key agreement: evicted and expired keys are gone on both sides,
  // survivors carry identical values.
  {
    TestClient pc(primary.port());
    TestClient rc(replica.port());
    for (int i = 0; i < kKeys; ++i) {
      const Value pv = pc.RoundTrip({"GET", "k" + std::to_string(i)});
      const Value rv = rc.RoundTrip({"GET", "k" + std::to_string(i)});
      EXPECT_EQ(pv.IsNull(), rv.IsNull()) << "key k" << i;
      if (!pv.IsNull() && !rv.IsNull()) {
        EXPECT_EQ(pv.str, rv.str) << "key k" << i;
      }
    }
  }

  // Same convergence through the off-box path: snapshot + log tail into a
  // fresh --restore node that never saw the live traffic.
  replication::OffboxRunner::Options opt;
  opt.endpoints = group.endpoints;
  opt.store_dir = store_dir.path;
  opt.fsync = false;
  MetricsRegistry offbox_metrics;
  replication::OffboxRunner runner(opt, &offbox_metrics);
  ASSERT_TRUE(runner.Start().ok());
  replication::OffboxRunner::CycleResult cycle;
  ASSERT_TRUE(runner.RunCycle(&cycle).ok());
  EXPECT_TRUE(cycle.uploaded);
  runner.Stop();

  net::ServerConfig restored_cfg;
  restored_cfg.port = 0;
  restored_cfg.loop_timeout_ms = 10;
  restored_cfg.replica_of_log = group.endpoints;
  restored_cfg.replica_poll_wait_ms = 50;
  restored_cfg.restore = true;
  restored_cfg.store_dir = store_dir.path;
  engine::Engine restored_engine;
  net::RespServer restored(&restored_engine, restored_cfg);
  ASSERT_TRUE(restored.Start().ok());

  ASSERT_TRUE(WaitForKey(restored.port(), "marker", "done"));
  EXPECT_TRUE(wait_converged(restored.port()))
      << "restored dbsize " << dbsize(restored.port()) << " vs primary "
      << dbsize(primary.port());

  restored.Stop();
  replica.Stop();
  primary.Stop();
}

}  // namespace
}  // namespace memdb
