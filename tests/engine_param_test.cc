// Parameterized / property-style sweeps over the engine: generic key
// commands against every value type, snapshot round-trips across shapes and
// sizes, expiry semantics across command families, and effect-replay
// convergence per command family.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "engine/engine.h"
#include "engine/snapshot.h"

namespace memdb::engine {
namespace {

using resp::Value;

// Creates a key of the given type with some content.
void MakeKey(Engine& e, ExecContext& ctx, const std::string& type,
             const std::string& key) {
  Argv cmd;
  if (type == "string") {
    cmd = {"SET", key, "payload"};
  } else if (type == "list") {
    cmd = {"RPUSH", key, "a", "b", "c"};
  } else if (type == "hash") {
    cmd = {"HSET", key, "f1", "v1", "f2", "v2"};
  } else if (type == "set") {
    cmd = {"SADD", key, "m1", "m2"};
  } else {
    cmd = {"ZADD", key, "1", "m1", "2", "m2"};
  }
  ASSERT_FALSE(e.Execute(cmd, &ctx).IsError());
}

class PerTypeTest : public ::testing::TestWithParam<std::string> {
 protected:
  PerTypeTest() {
    ctx_.now_ms = 1000;
    ctx_.rng = &engine_.rng();
  }
  Value Run(const Argv& argv) { return engine_.Execute(argv, &ctx_); }

  Engine engine_;
  ExecContext ctx_;
};

TEST_P(PerTypeTest, TypeReportsCorrectly) {
  MakeKey(engine_, ctx_, GetParam(), "k");
  EXPECT_EQ(Run({"TYPE", "k"}), Value::Simple(GetParam()));
}

TEST_P(PerTypeTest, ExistsAndDel) {
  MakeKey(engine_, ctx_, GetParam(), "k");
  EXPECT_EQ(Run({"EXISTS", "k"}), Value::Integer(1));
  EXPECT_EQ(Run({"DEL", "k"}), Value::Integer(1));
  EXPECT_EQ(Run({"EXISTS", "k"}), Value::Integer(0));
  EXPECT_EQ(Run({"TYPE", "k"}), Value::Simple("none"));
}

TEST_P(PerTypeTest, ExpiryAppliesToEveryType) {
  MakeKey(engine_, ctx_, GetParam(), "k");
  EXPECT_EQ(Run({"PEXPIRE", "k", "500"}), Value::Integer(1));
  EXPECT_EQ(Run({"EXISTS", "k"}), Value::Integer(1));
  ctx_.now_ms += 501;
  EXPECT_EQ(Run({"EXISTS", "k"}), Value::Integer(0));
}

TEST_P(PerTypeTest, RenameCarriesValueAndType) {
  MakeKey(engine_, ctx_, GetParam(), "src");
  EXPECT_EQ(Run({"RENAME", "src", "dst"}), Value::Ok());
  EXPECT_EQ(Run({"TYPE", "dst"}), Value::Simple(GetParam()));
  EXPECT_EQ(Run({"EXISTS", "src"}), Value::Integer(0));
}

TEST_P(PerTypeTest, DumpRestoreRoundTrip) {
  MakeKey(engine_, ctx_, GetParam(), "orig");
  Value dumped = Run({"DUMP", "orig"});
  ASSERT_EQ(dumped.type, resp::Type::kBulkString);
  EXPECT_EQ(Run({"RESTORE", "copy", "0", dumped.str}), Value::Ok());
  EXPECT_EQ(Run({"TYPE", "copy"}), Value::Simple(GetParam()));
  // Both serialize identically (same logical content).
  Value d2 = Run({"DUMP", "copy"});
  EXPECT_EQ(d2.str, dumped.str);
  // Corrupted payloads are rejected.
  std::string bad = dumped.str;
  bad[0] ^= 0x40;
  EXPECT_TRUE(Run({"RESTORE", "bad", "0", bad}).IsError());
}

TEST_P(PerTypeTest, WrongTypeErrorsFromOtherFamilies) {
  MakeKey(engine_, ctx_, GetParam(), "k");
  const std::vector<std::pair<std::string, Argv>> probes = {
      {"string", {"APPEND", "k", "x"}}, {"list", {"LPUSH", "k", "x"}},
      {"hash", {"HSET", "k", "f", "v"}}, {"set", {"SADD", "k", "x"}},
      {"zset", {"ZADD", "k", "1", "x"}},
  };
  for (const auto& [family, cmd] : probes) {
    Value v = Run(cmd);
    if (family == GetParam()) {
      EXPECT_FALSE(v.IsError()) << family;
    } else {
      EXPECT_TRUE(v.IsError()) << family << " against " << GetParam();
      EXPECT_NE(v.str.find("WRONGTYPE"), std::string::npos);
    }
  }
}

TEST_P(PerTypeTest, SnapshotRoundTripPreservesType) {
  MakeKey(engine_, ctx_, GetParam(), "k");
  Run({"PEXPIRE", "k", "100000"});
  SnapshotMeta meta;
  const std::string blob = SerializeSnapshot(engine_.keyspace(), meta);
  Engine restored;
  SnapshotMeta m2;
  ASSERT_TRUE(DeserializeSnapshot(blob, &restored.keyspace(), &m2).ok());
  ExecContext ctx;
  ctx.now_ms = 1000;
  ctx.rng = &restored.rng();
  EXPECT_EQ(restored.Execute({"TYPE", "k"}, &ctx), Value::Simple(GetParam()));
  EXPECT_GT(restored.Execute({"PTTL", "k"}, &ctx).integer, 0);
}

INSTANTIATE_TEST_SUITE_P(AllValueTypes, PerTypeTest,
                         ::testing::Values("string", "list", "hash", "set",
                                           "zset"),
                         [](const auto& info) { return info.param; });

// ------------------------------------------------------ replay convergence

// For each command family: run a randomized workload on a primary, replay
// the effect stream on a replica, require byte-identical snapshots.
class ReplayConvergenceTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(ReplayConvergenceTest, PrimaryAndReplicaConverge) {
  const auto& [family, seed] = GetParam();
  Engine primary, replica;
  Rng rng(seed);
  std::vector<Argv> log;
  for (int i = 0; i < 2000; ++i) {
    const std::string key =
        family + ":" + std::to_string(rng.Uniform(5));
    Argv cmd;
    if (family == "string") {
      switch (rng.Uniform(4)) {
        case 0: cmd = {"SET", key, rng.RandomString(6)}; break;
        case 1: cmd = {"APPEND", key, "x"}; break;
        case 2: cmd = {"INCRBYFLOAT", key + ":f", "1.5"}; break;
        default: cmd = {"GETDEL", key}; break;
      }
    } else if (family == "list") {
      switch (rng.Uniform(5)) {
        case 0: cmd = {"LPUSH", key, rng.RandomString(4)}; break;
        case 1: cmd = {"RPUSH", key, rng.RandomString(4)}; break;
        case 2: cmd = {"LPOP", key}; break;
        case 3: cmd = {"LTRIM", key, "0", "5"}; break;
        default: cmd = {"LREM", key, "0", "x"}; break;
      }
    } else if (family == "hash") {
      switch (rng.Uniform(3)) {
        case 0:
          cmd = {"HSET", key, "f" + std::to_string(rng.Uniform(8)),
                 rng.RandomString(4)};
          break;
        case 1: cmd = {"HDEL", key, "f" + std::to_string(rng.Uniform(8))}; break;
        default: cmd = {"HINCRBY", key, "n", "3"}; break;
      }
    } else if (family == "set") {
      switch (rng.Uniform(3)) {
        case 0: cmd = {"SADD", key, std::to_string(rng.Uniform(30))}; break;
        case 1: cmd = {"SPOP", key}; break;
        default: cmd = {"SMOVE", key, family + ":dst", std::to_string(rng.Uniform(30))}; break;
      }
    } else {  // zset
      switch (rng.Uniform(4)) {
        case 0:
          cmd = {"ZADD", key, std::to_string(rng.Uniform(100)),
                 "m" + std::to_string(rng.Uniform(10))};
          break;
        case 1: cmd = {"ZINCRBY", key, "2.5", "m1"}; break;
        case 2: cmd = {"ZPOPMIN", key}; break;
        default: cmd = {"ZREMRANGEBYSCORE", key, "0", "10"}; break;
      }
    }
    ExecContext ctx;
    ctx.now_ms = 1000 + static_cast<uint64_t>(i);
    ctx.rng = &primary.rng();
    primary.Execute(cmd, &ctx);
    for (const Argv& effect : ctx.effects) log.push_back(effect);
  }
  for (const Argv& effect : log) {
    ASSERT_FALSE(replica.Apply(effect, 0).IsError());
  }
  SnapshotMeta meta;
  EXPECT_EQ(SerializeSnapshot(primary.keyspace(), meta),
            SerializeSnapshot(replica.keyspace(), meta))
      << family << " diverged with seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Families, ReplayConvergenceTest,
    ::testing::Combine(::testing::Values("string", "list", "hash", "set",
                                         "zset"),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------------------- snapshot size sweep

class SnapshotSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotSizeTest, RoundTripAtScale) {
  const int n = GetParam();
  Engine e;
  ExecContext ctx;
  ctx.now_ms = 1;
  ctx.rng = &e.rng();
  for (int i = 0; i < n; ++i) {
    e.Execute({"SET", "k" + std::to_string(i), std::string(32, 'v')}, &ctx);
    if (i % 3 == 0) {
      e.Execute({"ZADD", "z" + std::to_string(i % 10), std::to_string(i),
                 "m" + std::to_string(i)},
                &ctx);
    }
  }
  SnapshotMeta meta;
  const std::string blob = SerializeSnapshot(e.keyspace(), meta);
  Engine restored;
  SnapshotMeta m2;
  ASSERT_TRUE(DeserializeSnapshot(blob, &restored.keyspace(), &m2).ok());
  EXPECT_EQ(restored.keyspace().Size(), e.keyspace().Size());
  EXPECT_EQ(SerializeSnapshot(restored.keyspace(), meta), blob);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SnapshotSizeTest,
                         ::testing::Values(0, 1, 100, 5000));

}  // namespace
}  // namespace memdb::engine
