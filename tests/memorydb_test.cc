#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "client/db_client.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "memorydb/shard.h"
#include "sim/simulation.h"
#include "storage/object_store.h"
#include "txlog/raft.h"

namespace memdb::memorydb {
namespace {

using client::DbClient;
using resp::Value;
using sim::kMs;
using sim::kSec;
using sim::NodeId;

class ClientActor : public sim::Actor {
 public:
  ClientActor(sim::Simulation* sim, NodeId id, std::vector<NodeId> nodes)
      : Actor(sim, id), db(this, std::move(nodes)) {}
  DbClient db;
};

class MemoryDbTest : public ::testing::Test {
 protected:
  void Boot(int num_replicas = 2, bool with_offbox = false,
            uint64_t max_log_distance = 512) {
    client_.reset();
    shard_.reset();
    s3_.reset();
    sim_ = std::make_unique<sim::Simulation>(2024);
    s3_ = std::make_unique<storage::ObjectStore>(sim_.get(),
                                                 sim_->AddHost(0));
    Shard::Options opts;
    opts.num_replicas = num_replicas;
    opts.object_store = s3_->id();
    opts.with_offbox = with_offbox;
    opts.scheduler_config.max_log_distance = max_log_distance;
    shard_ = std::make_unique<Shard>(sim_.get(), opts);
    client_ = std::make_unique<ClientActor>(sim_.get(), sim_->AddHost(0),
                                            shard_->node_ids());
    sim_->RunFor(3 * kSec);  // log election + shard bootstrap
  }

  Value Run(std::vector<std::string> argv, sim::Duration* latency = nullptr) {
    Value out = Value::Error("never completed");
    bool done = false;
    const sim::Time start = sim_->Now();
    client_->db.Command(std::move(argv), [&](const Value& v) {
      out = v;
      if (latency != nullptr) *latency = sim_->Now() - start;
      done = true;
    });
    for (int i = 0; i < 30000 && !done; ++i) sim_->RunFor(1 * kMs);
    EXPECT_TRUE(done);
    return out;
  }

  Value RunReadonly(std::vector<std::string> argv) {
    Value out = Value::Error("never completed");
    bool done = false;
    client_->db.CommandReadonly(std::move(argv), [&](const Value& v) {
      out = v;
      done = true;
    });
    for (int i = 0; i < 30000 && !done; ++i) sim_->RunFor(1 * kMs);
    EXPECT_TRUE(done);
    return out;
  }

  int CountPrimaries() {
    int primaries = 0;
    for (size_t i = 0; i < shard_->num_nodes(); ++i) {
      if (sim_->IsAlive(shard_->node(i)->id()) &&
          shard_->node(i)->IsPrimary()) {
        ++primaries;
      }
    }
    return primaries;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<storage::ObjectStore> s3_;
  std::unique_ptr<Shard> shard_;
  std::unique_ptr<ClientActor> client_;
};

TEST_F(MemoryDbTest, BootstrapElectsOnePrimary) {
  Boot();
  EXPECT_EQ(CountPrimaries(), 1);
  EXPECT_NE(shard_->Primary(), nullptr);
}

TEST_F(MemoryDbTest, BasicCommandsRoundTrip) {
  Boot();
  EXPECT_EQ(Run({"SET", "k", "v"}), Value::Ok());
  EXPECT_EQ(Run({"GET", "k"}), Value::Bulk("v"));
  EXPECT_EQ(Run({"INCR", "n"}), Value::Integer(1));
  EXPECT_EQ(Run({"LPUSH", "l", "a", "b"}), Value::Integer(2));
  EXPECT_EQ(Run({"ZADD", "z", "1", "m"}), Value::Integer(1));
  EXPECT_EQ(Run({"GET", "missing"}), Value::Null());
}

TEST_F(MemoryDbTest, WritesPayMultiAzCommitLatency) {
  Boot();
  sim::Duration write_lat = 0, read_lat = 0;
  Run({"SET", "k", "v"}, &write_lat);
  Run({"GET", "k"}, &read_lat);
  // A write must wait for cross-AZ quorum replication (hundreds of us at
  // minimum); a hazard-free read is far cheaper.
  EXPECT_GT(write_lat, 500u);
  EXPECT_LT(read_lat, write_lat);
}

TEST_F(MemoryDbTest, EffectsReachReplicas) {
  Boot();
  Run({"SET", "k", "v"});
  Run({"SADD", "s", "a", "b", "c"});
  Run({"SPOP", "s"});
  sim_->RunFor(1 * kSec);
  Node* replica = shard_->AnyReplica();
  ASSERT_NE(replica, nullptr);
  engine::ExecContext ctx;
  ctx.now_ms = sim_->Now() / 1000;
  ctx.role = engine::Role::kReplicaRead;
  ctx.rng = &replica->engine().rng();
  EXPECT_EQ(replica->engine().Execute({"GET", "k"}, &ctx), Value::Bulk("v"));
  EXPECT_EQ(replica->engine().Execute({"SCARD", "s"}, &ctx),
            Value::Integer(2));
  // Replica state must exactly match the primary (same SPOP victim).
  Node* primary = shard_->Primary();
  ASSERT_NE(primary, nullptr);
  engine::SnapshotMeta meta;
  EXPECT_EQ(SerializeSnapshot(primary->engine().keyspace(), meta),
            SerializeSnapshot(replica->engine().keyspace(), meta));
}

TEST_F(MemoryDbTest, ReadonlyReadsServedByReplicas) {
  Boot();
  Run({"SET", "k", "v"});
  sim_->RunFor(500 * kMs);
  // Round-robin readonly reads land on replicas too; all see the value.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(RunReadonly({"GET", "k"}), Value::Bulk("v"));
  }
}

TEST_F(MemoryDbTest, TrackerDefersHazardedReads) {
  Boot();
  Run({"SET", "hot", "v0"});  // settle
  // Fire a write and immediately a read of the same key, plus a read of an
  // unrelated key. The hazarded read must not complete before the write.
  bool write_done = false, hot_read_done = false, cold_read_done = false;
  sim::Time write_t = 0, hot_t = 0, cold_t = 0;
  client_->db.Command({"SET", "hot", "v1"}, [&](const Value& v) {
    write_done = true;
    write_t = sim_->Now();
    EXPECT_EQ(v, Value::Ok());
  });
  sim_->RunFor(50);  // let the write reach the engine but not commit
  client_->db.Command({"GET", "hot"}, [&](const Value& v) {
    hot_read_done = true;
    hot_t = sim_->Now();
    EXPECT_EQ(v, Value::Bulk("v1"));  // sees the new value...
  });
  client_->db.Command({"GET", "unrelated"}, [&](const Value& v) {
    cold_read_done = true;
    cold_t = sim_->Now();
  });
  sim_->RunFor(5 * kSec);
  ASSERT_TRUE(write_done && hot_read_done && cold_read_done);
  // ...but only after the write is durable.
  EXPECT_GE(hot_t, write_t);
  EXPECT_LT(cold_t, hot_t);  // unrelated read was not delayed
  EXPECT_GE(shard_->Primary()->stats().reads_deferred_by_tracker, 1u);
}

TEST_F(MemoryDbTest, FailoverPreservesAcknowledgedWrites) {
  Boot();
  std::vector<std::string> acked;
  for (int i = 0; i < 50; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (Run({"SET", key, "v" + std::to_string(i)}) == Value::Ok()) {
      acked.push_back(key);
    }
  }
  ASSERT_EQ(acked.size(), 50u);

  // Kill the primary.
  Node* primary = shard_->Primary();
  ASSERT_NE(primary, nullptr);
  const NodeId old_primary = primary->id();
  sim_->Crash(old_primary);
  sim_->RunFor(3 * kSec);  // backoff + election

  Node* new_primary = shard_->Primary();
  ASSERT_NE(new_primary, nullptr);
  EXPECT_NE(new_primary->id(), old_primary);
  EXPECT_EQ(CountPrimaries(), 1);

  // Every acknowledged write must be readable (the paper's core claim).
  for (size_t i = 0; i < acked.size(); ++i) {
    EXPECT_EQ(Run({"GET", acked[i]}), Value::Bulk("v" + std::to_string(i)))
        << acked[i];
  }
}

TEST_F(MemoryDbTest, IsolatedPrimarySelfDemotesAndIsFenced) {
  Boot();
  Run({"SET", "k", "v"});
  Node* primary = shard_->Primary();
  ASSERT_NE(primary, nullptr);
  const NodeId old_id = primary->id();

  // Cut the primary off from everything (clients, log, peers).
  sim_->network().Isolate(old_id);
  sim_->RunFor(3 * kSec);

  // The old primary stopped serving (self-demoted at lease expiry), and a
  // caught-up replica took over. Never two primaries.
  EXPECT_FALSE(primary->IsPrimary());
  EXPECT_GE(primary->stats().demotions, 1u);
  Node* new_primary = shard_->Primary();
  ASSERT_NE(new_primary, nullptr);
  EXPECT_NE(new_primary->id(), old_id);

  // Cluster still serves reads and writes, and retains the data.
  EXPECT_EQ(Run({"GET", "k"}), Value::Bulk("v"));
  EXPECT_EQ(Run({"SET", "k2", "v2"}), Value::Ok());

  // Heal: the old primary rejoins as a replica and catches up.
  sim_->network().Heal(old_id);
  sim_->RunFor(5 * kSec);
  EXPECT_EQ(CountPrimaries(), 1);
  EXPECT_EQ(primary->db_role(), Node::DbRole::kReplica);
  EXPECT_TRUE(primary->caught_up());
}

TEST_F(MemoryDbTest, LeaseDisjointnessUnderRepeatedFailovers) {
  Boot();
  Rng chaos(5);
  int max_simultaneous = 0;
  for (int round = 0; round < 8; ++round) {
    // Crash whoever is primary.
    for (size_t i = 0; i < shard_->num_nodes(); ++i) {
      Node* n = shard_->node(i);
      if (sim_->IsAlive(n->id()) && n->IsPrimary()) {
        sim_->Crash(n->id());
        break;
      }
    }
    // Sample primary count densely through the failover window.
    for (int t = 0; t < 300; ++t) {
      sim_->RunFor(10 * kMs);
      max_simultaneous = std::max(max_simultaneous, CountPrimaries());
    }
    // Restart everyone dead, let the dust settle.
    for (size_t i = 0; i < shard_->num_nodes(); ++i) {
      if (!sim_->IsAlive(shard_->node(i)->id())) shard_->RestartNode(i);
    }
    sim_->RunFor(2 * kSec);
    max_simultaneous = std::max(max_simultaneous, CountPrimaries());
  }
  EXPECT_LE(max_simultaneous, 1) << "leader singularity violated";
  EXPECT_EQ(Run({"SET", "final", "x"}), Value::Ok());
}

TEST_F(MemoryDbTest, RestartedNodeRecoversFromLog) {
  Boot();
  for (int i = 0; i < 20; ++i) {
    Run({"SET", "k" + std::to_string(i), std::to_string(i)});
  }
  // Restart a replica; its memory is wiped and rebuilt from durable state.
  Node* replica = shard_->AnyReplica();
  ASSERT_NE(replica, nullptr);
  size_t idx = 0;
  for (size_t i = 0; i < shard_->num_nodes(); ++i) {
    if (shard_->node(i) == replica) idx = i;
  }
  sim_->Crash(replica->id());
  sim_->RunFor(500 * kMs);
  shard_->RestartNode(idx);
  sim_->RunFor(5 * kSec);
  EXPECT_EQ(replica->db_role(), Node::DbRole::kReplica);
  EXPECT_TRUE(replica->caught_up());
  engine::ExecContext ctx;
  ctx.now_ms = sim_->Now() / 1000;
  ctx.role = engine::Role::kReplicaRead;
  ctx.rng = &replica->engine().rng();
  EXPECT_EQ(replica->engine().Execute({"DBSIZE"}, &ctx), Value::Integer(20));
}

TEST_F(MemoryDbTest, OffboxSnapshotAndSnapshotDominantRestore) {
  Boot(/*num_replicas=*/2, /*with_offbox=*/true, /*max_log_distance=*/64);
  for (int i = 0; i < 300; ++i) {
    Run({"SET", "k" + std::to_string(i), std::to_string(i)});
  }
  sim_->RunFor(10 * kSec);  // scheduler cuts snapshots, trims the log
  ASSERT_GT(shard_->offbox()->snapshots_created(), 0u);
  EXPECT_FALSE(shard_->offbox()->verification_failed());
  EXPECT_GT(shard_->scheduler()->last_snapshot_position(), 0u);

  // A brand-new replica restores snapshot-first and joins caught up.
  Node* newbie = shard_->AddReplica();
  sim_->RunFor(8 * kSec);
  EXPECT_TRUE(newbie->caught_up());
  engine::ExecContext ctx;
  ctx.now_ms = sim_->Now() / 1000;
  ctx.role = engine::Role::kReplicaRead;
  ctx.rng = &newbie->engine().rng();
  EXPECT_EQ(newbie->engine().Execute({"DBSIZE"}, &ctx), Value::Integer(300));
  EXPECT_FALSE(newbie->checksum_violation());
}

TEST_F(MemoryDbTest, MultiExecutesAtomically) {
  Boot();
  bool done = false;
  Value reply;
  client_->db.Multi({{"SET", "{t}a", "1"},
                     {"INCR", "{t}counter"},
                     {"SET", "{t}b", "2"}},
                    [&](const Value& v) {
                      reply = v;
                      done = true;
                    });
  for (int i = 0; i < 20000 && !done; ++i) sim_->RunFor(1 * kMs);
  ASSERT_TRUE(done);
  ASSERT_EQ(reply.array.size(), 3u);
  EXPECT_EQ(reply.array[1], Value::Integer(1));
  // All-or-nothing on replicas too.
  sim_->RunFor(1 * kSec);
  Node* replica = shard_->AnyReplica();
  engine::ExecContext ctx;
  ctx.now_ms = sim_->Now() / 1000;
  ctx.role = engine::Role::kReplicaRead;
  ctx.rng = &replica->engine().rng();
  EXPECT_EQ(replica->engine().Execute({"GET", "{t}a"}, &ctx),
            Value::Bulk("1"));
  EXPECT_EQ(replica->engine().Execute({"GET", "{t}b"}, &ctx),
            Value::Bulk("2"));
}

TEST_F(MemoryDbTest, UpgradeProtectionBlocksOlderReplica) {
  EXPECT_LT(CompareEngineVersions("7.0.7", "7.1.0"), 0);
  EXPECT_GT(CompareEngineVersions("7.10.0", "7.9.9"), 0);
  EXPECT_EQ(CompareEngineVersions("7.0.7", "7.0.7"), 0);

  // Bring up a shard whose primary speaks a newer engine version.
  client_.reset();
  shard_.reset();
  s3_.reset();
  sim_ = std::make_unique<sim::Simulation>(77);
  s3_ = std::make_unique<storage::ObjectStore>(sim_.get(), sim_->AddHost(0));
  Shard::Options opts;
  opts.num_replicas = 0;
  opts.object_store = s3_->id();
  opts.node_template.engine_version = "7.1.0";
  shard_ = std::make_unique<Shard>(sim_.get(), opts);
  client_ = std::make_unique<ClientActor>(sim_.get(), sim_->AddHost(0),
                                          shard_->node_ids());
  sim_->RunFor(3 * kSec);
  ASSERT_NE(shard_->Primary(), nullptr);

  // An old-version replica joins and must stop consuming the stream (§7.1).
  NodeConfig old_version;
  old_version.engine_version = "7.0.7";
  NodeConfig tmpl = old_version;
  // Reuse shard wiring manually.
  tmpl.shard_id = shard_->id();
  tmpl.log_replicas = shard_->log().replica_ids();
  tmpl.object_store = s3_->id();
  auto old_replica = std::make_unique<Node>(sim_.get(), sim_->AddHost(2),
                                            std::move(tmpl));
  Run({"SET", "k", "v"});
  sim_->RunFor(3 * kSec);
  EXPECT_FALSE(old_replica->caught_up());
  engine::ExecContext ctx;
  ctx.now_ms = sim_->Now() / 1000;
  ctx.role = engine::Role::kReplicaRead;
  ctx.rng = &old_replica->engine().rng();
  EXPECT_EQ(old_replica->engine().Execute({"GET", "k"}, &ctx), Value::Null());
}

TEST_F(MemoryDbTest, CollaborativeLeadershipHandover) {
  Boot();
  Run({"SET", "k", "v"});
  Node* primary = shard_->Primary();
  ASSERT_NE(primary, nullptr);
  // Instance-type scaling decommissions the primary last, using a
  // collaborative handover (§5.2): step down, let a replica take over.
  primary->StepDown();
  sim_->RunFor(4 * kSec);
  Node* new_primary = shard_->Primary();
  ASSERT_NE(new_primary, nullptr);
  EXPECT_NE(new_primary, primary);
  EXPECT_EQ(Run({"GET", "k"}), Value::Bulk("v"));
  EXPECT_EQ(CountPrimaries(), 1);
}

TEST_F(MemoryDbTest, WritesAreLinearizableAcrossCrashSequence) {
  Boot();
  // Counter increments with failovers in between; committed increments
  // must never be lost (monotonic counter, no regressions).
  int64_t highest_acked = 0;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      Value v = Run({"INCR", "counter"});
      if (v.type == resp::Type::kInteger) {
        EXPECT_GT(v.integer, highest_acked) << "counter regressed";
        highest_acked = v.integer;
      }
    }
    Node* primary = shard_->Primary();
    ASSERT_NE(primary, nullptr);
    sim_->Crash(primary->id());
    sim_->RunFor(3 * kSec);
    for (size_t i = 0; i < shard_->num_nodes(); ++i) {
      if (!sim_->IsAlive(shard_->node(i)->id())) shard_->RestartNode(i);
    }
    sim_->RunFor(2 * kSec);
  }
  Value final = Run({"GET", "counter"});
  ASSERT_EQ(final.type, resp::Type::kBulkString);
  EXPECT_GE(std::stoll(final.str), highest_acked);
}

// ------------------------------------------------------- observability

TEST_F(MemoryDbTest, WriteTraceReconstructsFullCommitChain) {
  Boot();
  ASSERT_EQ(Run({"SET", "traced", "v"}), Value::Ok());

  Node* primary = shard_->Primary();
  ASSERT_NE(primary, nullptr);

  // The SET is the last write the node enqueued: recover its trace id from
  // the node's own span log.
  uint64_t trace_id = 0;
  for (const TraceSpan& s : primary->trace_log().Snapshot()) {
    if (s.stage == "pipeline.enqueue") trace_id = s.trace_id;
  }
  ASSERT_NE(trace_id, 0u);
  // Trace ids are namespaced by the allocating node.
  EXPECT_EQ(trace_id >> 32, primary->id());

  // Merge the node's spans with every log replica's to rebuild the write's
  // causal chain across actors.
  txlog::LogGroup& log = shard_->log();
  ASSERT_EQ(log.size(), 3u);  // one log replica per AZ
  auto spans = TraceLog::Reconstruct(
      trace_id, {&primary->trace_log(), &log.replica(0)->trace_log(),
                 &log.replica(1)->trace_log(), &log.replica(2)->trace_log()});

  auto first_at = [&](const std::string& stage) -> int64_t {
    for (const TraceSpan& s : spans) {
      if (s.stage == stage) return static_cast<int64_t>(s.at_us);
    }
    return -1;
  };
  // Every stage of the durable write path is present...
  const char* chain[] = {"cmd.receive",        "pipeline.enqueue",
                         "append.issue",       "log.append.receive",
                         "log.durable.local",  "log.quorum.commit",
                         "append.ack",         "cmd.release"};
  int64_t prev = 0;
  for (const char* stage : chain) {
    const int64_t at = first_at(stage);
    ASSERT_GE(at, 0) << "missing stage " << stage;
    // ...with sim-clock timestamps that never go backwards along the chain.
    EXPECT_GE(at, prev) << "stage " << stage << " precedes its predecessor";
    prev = at;
  }
  // Quorum needs at least one follower durability ack before commit.
  const int64_t follower_durable = first_at("log.follower.durable");
  ASSERT_GE(follower_durable, 0);
  EXPECT_LE(follower_durable, first_at("log.quorum.commit"));
}

TEST_F(MemoryDbTest, InfoReportsConfiguredVersionAndStats) {
  Boot();
  ASSERT_EQ(Run({"SET", "k", "v"}), Value::Ok());
  Run({"GET", "k"});
  Run({"GET", "k"});

  Value info = Run({"INFO"});
  ASSERT_EQ(info.type, resp::Type::kBulkString);
  const std::string& text = info.str;
  // Server/Replication fields come from the node, not a hardcoded string.
  EXPECT_NE(text.find("engine_version:" +
                      memorydb::NodeConfig().engine_version),
            std::string::npos);
  EXPECT_NE(text.find("role:master"), std::string::npos);
  // Commandstats/Latencystats are populated from the shared registry.
  EXPECT_NE(text.find("cmdstat_set:calls=1,"), std::string::npos);
  EXPECT_NE(text.find("cmdstat_get:calls=2,"), std::string::npos);
  EXPECT_NE(text.find("latency_percentiles_usec_set:p50="),
            std::string::npos);
  EXPECT_NE(text.find("latency_percentiles_usec_get:p50="),
            std::string::npos);

  // Section filter returns just the requested section.
  Value stats = Run({"INFO", "commandstats"});
  ASSERT_EQ(stats.type, resp::Type::kBulkString);
  EXPECT_NE(stats.str.find("# Commandstats"), std::string::npos);
  EXPECT_EQ(stats.str.find("# Server"), std::string::npos);
}

TEST_F(MemoryDbTest, MetricsCommandReturnsExposition) {
  Boot();
  ASSERT_EQ(Run({"SET", "k", "v"}), Value::Ok());
  Value metrics = Run({"METRICS"});
  ASSERT_EQ(metrics.type, resp::Type::kBulkString);
  const std::string& text = metrics.str;
  EXPECT_NE(text.find("# TYPE engine_commands_total counter"),
            std::string::npos);
  double v = 0;
  ASSERT_TRUE(MetricsRegistry::ParseSeries(
      text, "engine_commands_total{cmd=\"SET\"}", &v));
  EXPECT_GE(v, 1.0);
  // Node-side series live in the same registry (shared with the engine).
  ASSERT_TRUE(
      MetricsRegistry::ParseSeries(text, "write_commit_latency_us_count", &v));
  EXPECT_GE(v, 1.0);
}

TEST_F(MemoryDbTest, NodeMetricsTrackWritePath) {
  Boot();
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(Run({"SET", "k" + std::to_string(i), "v"}), Value::Ok());
  }
  Node* primary = shard_->Primary();
  ASSERT_NE(primary, nullptr);
  const MetricsRegistry& reg = primary->metrics();
  EXPECT_GE(reg.FindCounter("node_records_appended_total")->value(), 10u);
  const Histogram* commit = reg.FindHistogram("write_commit_latency_us");
  ASSERT_NE(commit, nullptr);
  EXPECT_GE(commit->count(), 10u);
  // Each commit waited on cross-AZ quorum: hundreds of microseconds.
  EXPECT_GT(commit->Percentile(0.5), 500u);
  // The raft leader saw the appends and measured commit latency too.
  txlog::RaftReplica* leader = shard_->log().Leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_GE(leader->metrics().FindCounter("raft_client_appends_total")
                ->value(),
            10u);
  const Histogram* raft_commit =
      leader->metrics().FindHistogram("raft_append_commit_latency_us");
  ASSERT_NE(raft_commit, nullptr);
  EXPECT_GE(raft_commit->count(), 10u);
}

}  // namespace
}  // namespace memdb::memorydb
