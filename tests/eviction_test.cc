// Memory-pressure subsystem tests: size-aware admission, the sampled
// eviction policies (allkeys-lru / allkeys-lfu / volatile-ttl), the
// noeviction -OOM path, and the replication invariant that evictions and
// expiries leave the primary only as logged DEL effects — so a log-fed
// replica converges without ever deciding to evict on its own (§2.1).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/snapshot.h"

namespace memdb::engine {
namespace {

using resp::Value;

class EvictionTest : public ::testing::Test {
 protected:
  Value Run(const Argv& argv, uint64_t now_ms = 1000) {
    ctx_ = ExecContext{};
    ctx_.now_ms = now_ms;
    ctx_.rng = &engine_.rng();
    return engine_.Execute(argv, &ctx_);
  }

  bool Exists(const std::string& key, uint64_t now_ms) {
    ctx_ = ExecContext{};
    ctx_.now_ms = now_ms;
    ctx_.rng = &engine_.rng();
    return engine_.Execute({"EXISTS", key}, &ctx_) == Value::Integer(1);
  }

  Engine engine_;
  ExecContext ctx_;
};

TEST_F(EvictionTest, NoEvictionRejectsWithOom) {
  engine_.set_maxmemory(256);
  EXPECT_EQ(Run({"SET", "a", std::string(64, 'x')}), Value::Ok());
  Value v = Run({"SET", "b", std::string(256, 'y')});
  EXPECT_TRUE(v.IsError());
  EXPECT_NE(v.str.find("OOM"), std::string::npos);
  // The rejected write neither landed nor disturbed existing data.
  EXPECT_EQ(Run({"GET", "a"}), Value::Bulk(std::string(64, 'x')));
}

// Regression for the original bug: a write far larger than maxmemory used
// to be admitted and blow straight past the ceiling. It must be rejected
// up front — even under an eviction policy, since no amount of evicting
// makes room for a value bigger than the whole budget.
TEST_F(EvictionTest, OversizedWriteRejectedWithoutEvicting) {
  engine_.set_maxmemory(1024);
  engine_.set_eviction_policy(EvictionPolicy::kAllKeysLru);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(Run({"SET", "k" + std::to_string(i), std::string(32, 'v')}),
              Value::Ok());
  }
  const size_t before = engine_.keyspace().Size();
  Value v = Run({"SET", "huge", std::string(4096, 'z')});
  EXPECT_TRUE(v.IsError());
  EXPECT_NE(v.str.find("OOM"), std::string::npos);
  EXPECT_EQ(engine_.keyspace().Size(), before);  // nothing was sacrificed
  EXPECT_LE(engine_.keyspace().used_memory(), 1024u);
}

TEST_F(EvictionTest, LruEvictsColdKeysFirst) {
  engine_.set_maxmemory(8 * 1024);
  engine_.set_eviction_policy(EvictionPolicy::kAllKeysLru);
  engine_.set_eviction_samples(10);

  // Fill close to the budget, then keep a small hot set fresh while the
  // rest goes cold.
  int n = 0;
  while (engine_.keyspace().used_memory() < 7 * 1024) {
    ASSERT_EQ(Run({"SET", "k" + std::to_string(n), std::string(64, 'v')},
                  1000 + n),
              Value::Ok());
    ++n;
  }
  const uint64_t later = 1000 + n + 100'000;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(Run({"GET", "k" + std::to_string(i)}, later),
              Value::Bulk(std::string(64, 'v')));
  }

  // Push past the ceiling — but fewer new keys than the cold population,
  // so a correct LRU never has to sacrifice the hot set.
  const int extra = n / 2;
  for (int i = 0; i < extra; ++i) {
    Run({"SET", "new" + std::to_string(i), std::string(64, 'v')}, later + i);
  }
  EXPECT_LE(engine_.keyspace().used_memory(), 8 * 1024u);

  // With 10-way sampling against a key population that is overwhelmingly
  // cold, the 5 hot keys survive (the chance a sample round is forced to
  // pick a hot key is negligible with this seeded RNG), and some cold keys
  // were actually evicted to make room.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(Exists("k" + std::to_string(i), later + 1000))
        << "hot key k" << i << " was evicted";
  }
  int cold_left = 0;
  for (int i = 5; i < n; ++i) {
    if (Exists("k" + std::to_string(i), later + 1000)) ++cold_left;
  }
  EXPECT_LT(cold_left, n - 5);
}

TEST_F(EvictionTest, LfuKeepsFrequentlyUsedKeys) {
  engine_.set_maxmemory(8 * 1024);
  engine_.set_eviction_policy(EvictionPolicy::kAllKeysLfu);
  engine_.set_eviction_samples(10);

  int n = 0;
  while (engine_.keyspace().used_memory() < 7 * 1024) {
    ASSERT_EQ(Run({"SET", "k" + std::to_string(n), std::string(64, 'v')},
                  1000),
              Value::Ok());
    ++n;
  }
  // Drive the frequency counters of a small hot set far above the rest.
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 5; ++i) {
      Run({"GET", "k" + std::to_string(i)}, 2000 + round);
    }
  }
  const int extra = n / 2;  // fewer than the low-frequency population
  for (int i = 0; i < extra; ++i) {
    Run({"SET", "new" + std::to_string(i), std::string(64, 'v')}, 3000 + i);
  }
  EXPECT_LE(engine_.keyspace().used_memory(), 8 * 1024u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(Exists("k" + std::to_string(i), 5000))
        << "frequent key k" << i << " was evicted";
  }
}

TEST_F(EvictionTest, VolatileTtlOnlyEvictsKeysWithExpiry) {
  engine_.set_maxmemory(4 * 1024);
  engine_.set_eviction_policy(EvictionPolicy::kVolatileTtl);
  engine_.set_eviction_samples(10);

  // Half the population persistent, half volatile.
  int n = 0;
  while (engine_.keyspace().used_memory() < 3 * 1024) {
    ASSERT_EQ(Run({"SET", "p" + std::to_string(n), std::string(64, 'v')}),
              Value::Ok());
    ASSERT_EQ(Run({"SET", "t" + std::to_string(n), std::string(64, 'v'),
                   "PX", "3600000"}),
              Value::Ok());
    ++n;
  }
  for (int i = 0; i < 100; ++i) {
    Run({"SET", "more" + std::to_string(i), std::string(64, 'v')});
  }
  // Every persistent key survived; only TTL'd keys were sacrificed.
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(Exists("p" + std::to_string(i), 2000))
        << "persistent key p" << i << " was evicted by volatile-ttl";
  }
  size_t volatile_left = 0;
  for (int i = 0; i < n; ++i) {
    if (Exists("t" + std::to_string(i), 2000)) ++volatile_left;
  }
  EXPECT_LT(volatile_left, static_cast<size_t>(n));

  // Once no volatile keys remain, volatile-ttl degrades to -OOM.
  for (int i = 0; i < n; ++i) Run({"DEL", "t" + std::to_string(i)});
  for (int i = 0; i < 200; ++i) {
    Value v = Run({"SET", "fill" + std::to_string(i), std::string(64, 'v')});
    if (v.IsError()) {
      EXPECT_NE(v.str.find("OOM"), std::string::npos);
      return;  // reached the ceiling with nothing evictable — correct
    }
  }
  FAIL() << "never hit -OOM with no volatile keys left";
}

// Eviction DELs ride in ctx.effects ahead of the admitted command's own
// effect, so a log consumer replays them in the order the primary applied
// them.
TEST_F(EvictionTest, EvictionEmitsDelEffectsBeforeCommandEffect) {
  engine_.set_maxmemory(512);
  engine_.set_eviction_policy(EvictionPolicy::kAllKeysLru);
  while (true) {
    Value v = Run({"SET", "k" + std::to_string(engine_.keyspace().Size()),
                   std::string(64, 'v')});
    ASSERT_FALSE(v.IsError());
    if (ctx_.effects.size() > 1) break;  // this write forced evictions
    ASSERT_LT(engine_.keyspace().Size(), 64u);
  }
  for (size_t i = 0; i + 1 < ctx_.effects.size(); ++i) {
    EXPECT_EQ(ctx_.effects[i][0], "DEL");
    EXPECT_EQ(ctx_.effects[i].size(), 2u);
  }
  EXPECT_EQ(ctx_.effects.back()[0], "SET");
}

// The §2.1 invariant end to end at engine level: run a primary under a
// tight budget with evictions AND expiries, feed its effect log to a
// replica with no maxmemory at all, and compare snapshots byte for byte.
// The replica never evicts or expires by itself — the log alone carries
// every removal.
TEST_F(EvictionTest, ReplicaConvergesThroughLoggedEvictionsAndExpiry) {
  engine_.set_maxmemory(16 * 1024);
  engine_.set_eviction_policy(EvictionPolicy::kAllKeysLru);
  Engine replica;  // unbounded: any divergence would show up in the snapshot

  std::vector<Argv> log;
  Rng workload(7);
  for (int i = 0; i < 4000; ++i) {
    ExecContext ctx;
    ctx.now_ms = 1000 + static_cast<uint64_t>(i) * 10;
    ctx.rng = &engine_.rng();
    Argv cmd;
    const std::string key = "k" + std::to_string(workload.Uniform(600));
    if (workload.OneIn(4)) {
      cmd = {"SET", key, workload.RandomString(64), "PX",
             std::to_string(workload.UniformRange(50, 5000))};
    } else {
      cmd = {"SET", key, workload.RandomString(64)};
    }
    Value v = engine_.Execute(cmd, &ctx);
    ASSERT_FALSE(v.IsError()) << v.str;
    for (auto& e : ctx.effects) log.push_back(std::move(e));
  }
  // Primary-side active expiry; its DELs join the log like any other
  // effect (the real server submits them through the commit gate).
  ExecContext sweep;
  sweep.now_ms = 10'000'000;
  engine_.ActiveExpire(&sweep, 1'000'000);
  for (auto& e : sweep.effects) log.push_back(std::move(e));

  EXPECT_LE(engine_.keyspace().used_memory(), 16 * 1024u);

  for (const Argv& effect : log) {
    Value v = replica.Apply(effect, 0);
    ASSERT_FALSE(v.IsError()) << v.ToString();
  }
  SnapshotMeta meta;
  EXPECT_EQ(SerializeSnapshot(engine_.keyspace(), meta),
            SerializeSnapshot(replica.keyspace(), meta))
      << "replica diverged from post-eviction/post-expiry primary";
  EXPECT_GT(engine_.keyspace().Size(), 0u);
}

TEST_F(EvictionTest, PolicyNamesRoundTrip) {
  for (EvictionPolicy p :
       {EvictionPolicy::kNoEviction, EvictionPolicy::kAllKeysLru,
        EvictionPolicy::kAllKeysLfu, EvictionPolicy::kVolatileTtl}) {
    EvictionPolicy parsed;
    ASSERT_TRUE(ParseEvictionPolicy(EvictionPolicyName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  EvictionPolicy parsed;
  EXPECT_FALSE(ParseEvictionPolicy("allkeys-random", &parsed));
}

TEST_F(EvictionTest, InfoMemoryReportsPressureCounters) {
  MetricsRegistry metrics;
  engine_.set_metrics(&metrics);
  engine_.set_maxmemory(512);
  engine_.set_eviction_policy(EvictionPolicy::kAllKeysLru);
  for (int i = 0; i < 64; ++i) {
    Run({"SET", "k" + std::to_string(i), std::string(64, 'v')});
  }
  Value info = Run({"INFO", "MEMORY"});
  ASSERT_EQ(info.type, resp::Type::kBulkString);
  EXPECT_NE(info.str.find("maxmemory:512"), std::string::npos);
  EXPECT_NE(info.str.find("maxmemory_policy:allkeys-lru"), std::string::npos);
  EXPECT_EQ(info.str.find("evicted_keys:0"), std::string::npos);
  EXPECT_NE(info.str.find("evicted_keys:"), std::string::npos);
  double evicted = 0;
  ASSERT_TRUE(MetricsRegistry::ParseSeries(metrics.ExpositionText(),
                                           "evicted_keys_total", &evicted));
  EXPECT_GT(evicted, 0);
}

}  // namespace
}  // namespace memdb::engine
