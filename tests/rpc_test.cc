// RPC subsystem tests: frame codec, server/channel transport, fault
// injection, the 3-replica memorydb-txlogd LogService (election, quorum
// append, idempotent retry dedup, minority partition, redirects, leases,
// long-poll ReadStream), and the RespServer durability gate over the remote
// log (parked replies, read hazards, WAIT, shutdown drain). Everything runs
// real processes' worth of machinery in-process: real sockets on 127.0.0.1,
// one LoopThread per daemon.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <algorithm>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "net/remote_log_gate.h"
#include "net/server.h"
#include "resp/resp.h"
#include "rpc/channel.h"
#include "rpc/frame.h"
#include "rpc/loop.h"
#include "rpc/server.h"
#include "txlog/remote_client.h"
#include "txlog/rpc_wire.h"
#include "txlog/service.h"

namespace memdb {
namespace {

using resp::Value;

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// ---------------------------------------------------------------------------
// Frame codec

TEST(FrameTest, RequestRoundTrip) {
  rpc::Frame f;
  f.type = rpc::FrameType::kRequest;
  f.request_id = 42;
  f.trace_id = 7;
  f.deadline_ms = 250;
  f.method = "txlog.ConditionalAppend";
  f.payload = std::string("\x00\x01payload\xff", 10);

  std::string wire;
  rpc::EncodeFrame(f, &wire);

  rpc::Frame out;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(rpc::DecodeFrame(wire.data(), wire.size(), &consumed, &out,
                             &error),
            rpc::FrameDecode::kOk)
      << error;
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(out.type, rpc::FrameType::kRequest);
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.trace_id, 7u);
  EXPECT_EQ(out.deadline_ms, 250u);
  EXPECT_EQ(out.method, f.method);
  EXPECT_EQ(out.payload, f.payload);
}

TEST(FrameTest, PartialNeedsMore) {
  rpc::Frame f;
  f.method = "m";
  f.payload = "hello";
  std::string wire;
  rpc::EncodeFrame(f, &wire);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    rpc::Frame out;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(rpc::DecodeFrame(wire.data(), cut, &consumed, &out, &error),
              rpc::FrameDecode::kNeedMore)
        << "cut=" << cut;
  }
}

TEST(FrameTest, CorruptionDetected) {
  rpc::Frame f;
  f.method = "method";
  f.payload = "payload-bytes";
  std::string wire;
  rpc::EncodeFrame(f, &wire);
  // Flip one byte anywhere after the length field: checksum must catch it.
  for (size_t i = 4; i < wire.size(); i += 3) {
    std::string bad = wire;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    rpc::Frame out;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(rpc::DecodeFrame(bad.data(), bad.size(), &consumed, &out,
                               &error),
              rpc::FrameDecode::kError)
        << "flipped byte " << i;
  }
}

TEST(FrameTest, OversizeRejected) {
  std::string wire;
  const uint32_t huge = (64u << 20) + 1;
  wire.append(reinterpret_cast<const char*>(&huge), 4);
  wire.append(64, '\0');
  rpc::Frame out;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(rpc::DecodeFrame(wire.data(), wire.size(), &consumed, &out,
                             &error),
            rpc::FrameDecode::kError);
}

// ---------------------------------------------------------------------------
// Server + Channel transport

struct EchoFixture {
  EchoFixture() {
    EXPECT_TRUE(loop.Start().ok());
    server = std::make_unique<rpc::Server>(&loop, "127.0.0.1", 0);
    server->RegisterHandler("echo", [](rpc::Server::Call&& call) {
      call.respond(rpc::Code::kOk,
                   call.payload + "|trace=" + std::to_string(call.trace_id));
    });
    server->RegisterHandler("blackhole", [](rpc::Server::Call&& call) {
      // Never responds; the caller's deadline must fire.
      (void)call;
    });
    EXPECT_TRUE(server->Start().ok());
    channel = std::make_unique<rpc::Channel>(&loop, "127.0.0.1",
                                             server->port());
  }
  ~EchoFixture() {
    channel->Shutdown();
    server->Stop();
    loop.Stop();
  }

  // Blocking call helper (from the test thread).
  Status Call(const std::string& method, const std::string& payload,
              uint64_t timeout_ms, uint64_t trace_id, std::string* reply) {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::OK();
    channel->Call(method, payload, timeout_ms, trace_id,
                  [&](Status s, std::string body) {
                    std::lock_guard<std::mutex> lock(mu);
                    status = std::move(s);
                    *reply = std::move(body);
                    done = true;
                    cv.notify_one();
                  });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(10), [&] { return done; });
    EXPECT_TRUE(done) << "rpc call never completed";
    return status;
  }

  rpc::LoopThread loop;
  std::unique_ptr<rpc::Server> server;
  std::unique_ptr<rpc::Channel> channel;
};

TEST(RpcTransportTest, EchoAndTracePropagation) {
  EchoFixture fx;
  std::string reply;
  const Status s = fx.Call("echo", "ping", 1000, 99, &reply);
  ASSERT_TRUE(s.ok()) << s.ToString();
  // The trace id crossed the wire inside the frame header, not the payload.
  EXPECT_EQ(reply, "ping|trace=99");
}

TEST(RpcTransportTest, ManyPipelinedCallsMultiplex) {
  EchoFixture fx;
  constexpr int kCalls = 64;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  int correct = 0;
  for (int i = 0; i < kCalls; ++i) {
    const std::string body = "m" + std::to_string(i);
    fx.channel->Call("echo", body, 2000, 0,
                     [&, body](Status s, std::string reply) {
                       std::lock_guard<std::mutex> lock(mu);
                       if (s.ok() && reply == body + "|trace=0") ++correct;
                       ++done;
                       cv.notify_one();
                     });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock, std::chrono::seconds(10), [&] { return done == kCalls; });
  EXPECT_EQ(done, kCalls);
  EXPECT_EQ(correct, kCalls);
}

TEST(RpcTransportTest, DeadlineFiresOnSilentServer) {
  EchoFixture fx;
  std::string reply;
  const auto t0 = std::chrono::steady_clock::now();
  const Status s = fx.Call("blackhole", "x", 100, 0, &reply);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_GE(ms, 90);
  EXPECT_LT(ms, 2000);
}

TEST(RpcTransportTest, NoMethodSurfaces) {
  EchoFixture fx;
  std::string reply;
  const Status s = fx.Call("no.such.method", "x", 1000, 0, &reply);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsTimedOut());
}

TEST(RpcTransportTest, FaultDropResponseThenRecover) {
  EchoFixture fx;
  fx.server->fault().DropResponses("echo", 1);
  std::string reply;
  const Status s1 = fx.Call("echo", "a", 120, 0, &reply);
  EXPECT_TRUE(s1.IsTimedOut()) << s1.ToString();
  const Status s2 = fx.Call("echo", "b", 1000, 0, &reply);
  EXPECT_TRUE(s2.ok()) << s2.ToString();
  EXPECT_EQ(reply, "b|trace=0");
}

TEST(RpcTransportTest, FaultDuplicateResponseHarmless) {
  EchoFixture fx;
  fx.server->fault().DuplicateResponses("echo", 1);
  std::string reply;
  ASSERT_TRUE(fx.Call("echo", "a", 1000, 0, &reply).ok());
  EXPECT_EQ(reply, "a|trace=0");
  // The duplicate frame carries a request id that is no longer pending; the
  // channel must drop it and stay healthy for the next call.
  ASSERT_TRUE(fx.Call("echo", "b", 1000, 0, &reply).ok());
  EXPECT_EQ(reply, "b|trace=0");
}

TEST(RpcTransportTest, FaultDelayResponse) {
  EchoFixture fx;
  fx.server->fault().DelayResponses("echo", 150, 1);
  std::string reply;
  const auto t0 = std::chrono::steady_clock::now();
  const Status s = fx.Call("echo", "slow", 2000, 0, &reply);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(ms, 140);
}

// ---------------------------------------------------------------------------
// LogService group helpers

struct LogGroup {
  explicit LogGroup(size_t n, bool fsync = false) {
    for (size_t i = 0; i < n; ++i) {
      txlog::LogService::Options opt;
      opt.node_id = i + 1;
      opt.listen_port = 0;
      opt.fsync = fsync;
      opt.heartbeat_ms = 20;
      opt.election_min_ms = 50;
      opt.election_max_ms = 120;
      opt.raft_rpc_timeout_ms = 100;
      services.push_back(std::make_unique<txlog::LogService>(opt));
      EXPECT_TRUE(services.back()->Start().ok());
    }
    std::vector<std::pair<uint64_t, std::string>> membership;
    for (size_t i = 0; i < n; ++i) {
      endpoints.push_back("127.0.0.1:" +
                          std::to_string(services[i]->port()));
      membership.emplace_back(i + 1, endpoints.back());
    }
    for (auto& s : services) s->SetPeers(membership);
  }
  ~LogGroup() {
    for (auto& s : services) {
      if (s != nullptr) s->Stop();
    }
  }

  // Index of the current leader, or -1 after the deadline.
  int WaitForLeader(int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      for (size_t i = 0; i < services.size(); ++i) {
        if (services[i] != nullptr && services[i]->IsLeader()) {
          return static_cast<int>(i);
        }
      }
      SleepMs(5);
    }
    return -1;
  }

  bool WaitForCommit(uint64_t index, int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      size_t caught_up = 0;
      for (auto& s : services) {
        if (s != nullptr && s->commit_index() >= index) ++caught_up;
      }
      if (caught_up == Alive()) return true;
      SleepMs(5);
    }
    return false;
  }

  size_t Alive() const {
    size_t n = 0;
    for (const auto& s : services) {
      if (s != nullptr) ++n;
    }
    return n;
  }

  std::vector<std::unique_ptr<txlog::LogService>> services;
  std::vector<std::string> endpoints;
};

struct ClientFixture {
  explicit ClientFixture(const std::vector<std::string>& endpoints,
                         txlog::RemoteClient::Options opt = {}) {
    EXPECT_TRUE(loop.Start().ok());
    if (opt.writer_id == 0) opt.writer_id = 77;
    if (opt.rpc_timeout_ms == 300) opt.rpc_timeout_ms = 250;
    client = std::make_unique<txlog::RemoteClient>(&loop, endpoints, opt,
                                                   &registry);
  }
  ~ClientFixture() {
    client->Shutdown();
    loop.Stop();
  }

  txlog::LogRecord DataRecord(const std::string& payload) {
    txlog::LogRecord r;
    r.type = txlog::RecordType::kData;
    r.payload = payload;
    return r;
  }

  // Committed kData entries whose payload matches, by scanning the log.
  int CountPayload(const std::string& payload) {
    txlog::wire::ClientReadResponse rsp;
    const Status s = client->ReadSync(1, 10000, 0, &rsp);
    EXPECT_TRUE(s.ok()) << s.ToString();
    int count = 0;
    for (const auto& e : rsp.entries) {
      if (e.record.type == txlog::RecordType::kData &&
          e.record.payload == payload) {
        ++count;
      }
    }
    return count;
  }

  MetricsRegistry registry;
  rpc::LoopThread loop;
  std::unique_ptr<txlog::RemoteClient> client;
};

// ---------------------------------------------------------------------------
// LogService: election, append, dedup, partition, redirect, lease, longpoll

TEST(LogServiceTest, ElectsLeaderAndCommitsQuorumAppend) {
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);

  ClientFixture fx(group.endpoints);
  uint64_t index = 0;
  const Status s = fx.client->AppendSync(txlog::wire::kUnconditional,
                                         fx.DataRecord("hello-log"), &index);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(index, 0u);
  // Commit propagates to every replica (followers catch up via heartbeat).
  EXPECT_TRUE(group.WaitForCommit(index));
  EXPECT_EQ(fx.CountPayload("hello-log"), 1);
}

TEST(LogServiceTest, ConditionalAppendDetectsStaleTail) {
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);
  ClientFixture fx(group.endpoints);

  uint64_t index = 0;
  ASSERT_TRUE(fx.client
                  ->AppendSync(txlog::wire::kUnconditional,
                               fx.DataRecord("first"), &index)
                  .ok());
  // CAS against a stale tail must fail without appending.
  uint64_t stale_index = 0;
  const Status s = fx.client->AppendSync(index - 1, fx.DataRecord("stale"),
                                         &stale_index);
  EXPECT_TRUE(s.IsConditionFailed()) << s.ToString();
  EXPECT_EQ(fx.CountPayload("stale"), 0);
  // CAS against the true tail succeeds.
  uint64_t next = 0;
  EXPECT_TRUE(
      fx.client->AppendSync(index, fx.DataRecord("second"), &next).ok());
  EXPECT_EQ(next, index + 1);
}

// Satellite: a retried ConditionalAppend whose first ack was dropped must
// not double-commit — the daemon's (writer, request_id) dedup maps the
// retry back to the original log index.
TEST(LogServiceTest, RetriedAppendAfterDroppedAckDoesNotDoubleCommit) {
  LogGroup group(3);
  const int leader = group.WaitForLeader();
  ASSERT_GE(leader, 0);

  txlog::RemoteClient::Options opt;
  opt.rpc_timeout_ms = 150;
  opt.backoff_base_ms = 10;
  opt.backoff_cap_ms = 50;
  ClientFixture fx(group.endpoints, opt);

  // Drop the leader's next append ack: the entry commits, the client never
  // hears about it and retries with the same (writer, request_id).
  group.services[static_cast<size_t>(leader)]->fault().DropResponses(
      txlog::rpcwire::kAppend, 1);

  uint64_t index = 0;
  const Status s = fx.client->AppendSync(txlog::wire::kUnconditional,
                                         fx.DataRecord("exactly-once"),
                                         &index);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(index, 0u);
  EXPECT_EQ(fx.CountPayload("exactly-once"), 1);

  const Counter* retries = fx.registry.FindCounter("txlog_retries_total");
  ASSERT_NE(retries, nullptr);
  EXPECT_GE(retries->value(), 1u);
}

// Satellite: exponential backoff delays are jittered and capped.
TEST(RemoteClientTest, BackoffJitterStaysWithinCaps) {
  // No live endpoint: every attempt fails fast with Unavailable.
  txlog::RemoteClient::Options opt;
  opt.rpc_timeout_ms = 100;
  opt.backoff_base_ms = 16;
  opt.backoff_cap_ms = 120;
  opt.max_attempts = 5;
  ClientFixture fx({"127.0.0.1:1"});  // port 1: connection refused

  std::mutex mu;
  std::vector<std::pair<int, uint64_t>> backoffs;
  fx.client->backoff_hook = [&](int attempt, uint64_t delay_ms) {
    std::lock_guard<std::mutex> lock(mu);
    backoffs.emplace_back(attempt, delay_ms);
  };
  // Rebuild client with the tuned options (fixture used defaults).
  fx.client->Shutdown();
  fx.client = std::make_unique<txlog::RemoteClient>(
      &fx.loop, std::vector<std::string>{"127.0.0.1:1"}, opt, nullptr);
  fx.client->backoff_hook = [&](int attempt, uint64_t delay_ms) {
    std::lock_guard<std::mutex> lock(mu);
    backoffs.emplace_back(attempt, delay_ms);
  };

  uint64_t index = 0;
  const Status s = fx.client->AppendSync(txlog::wire::kUnconditional,
                                         fx.DataRecord("x"), &index);
  EXPECT_FALSE(s.ok());

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(backoffs.size(), static_cast<size_t>(opt.max_attempts - 1));
  for (const auto& [attempt, delay] : backoffs) {
    const uint64_t nominal =
        std::min(opt.backoff_cap_ms,
                 opt.backoff_base_ms << (attempt > 20 ? 20 : attempt));
    // Jitter scales into [nominal/2, nominal); the cap bounds everything.
    EXPECT_GE(delay, nominal / 2) << "attempt " << attempt;
    EXPECT_LT(delay, nominal + 1) << "attempt " << attempt;
    EXPECT_LE(delay, opt.backoff_cap_ms);
  }
}

// Satellite: a log group reduced to a minority cannot commit; the client
// backs off and reports the failure instead of hanging forever.
TEST(LogServiceTest, MinorityPartitionFailsAppends) {
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);

  // Stop two of three replicas: no quorum remains.
  group.services[1]->Stop();
  group.services[1].reset();
  group.services[2]->Stop();
  group.services[2].reset();

  txlog::RemoteClient::Options opt;
  opt.rpc_timeout_ms = 120;
  opt.backoff_base_ms = 10;
  opt.backoff_cap_ms = 40;
  opt.max_attempts = 3;
  ClientFixture fx(group.endpoints, opt);

  uint64_t index = 0;
  const auto t0 = std::chrono::steady_clock::now();
  const Status s = fx.client->AppendSync(txlog::wire::kUnconditional,
                                         fx.DataRecord("lost"), &index);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsTimedOut() || s.IsUnavailable()) << s.ToString();
  // Bounded: attempts * timeout + backoffs, not forever.
  EXPECT_LT(ms, 5000);
}

// Satellite: kNotLeader redirects reach the leader in bounded hops.
TEST(LogServiceTest, FollowerRedirectsToLeaderWithinHopBudget) {
  LogGroup group(3);
  const int leader = group.WaitForLeader();
  ASSERT_GE(leader, 0);

  // Client whose round-robin starts wherever; redirects must converge.
  txlog::RemoteClient::Options opt;
  opt.max_redirects = 2;  // one honest hint suffices; budget is not consumed
  ClientFixture fx(group.endpoints, opt);

  for (int i = 0; i < 6; ++i) {
    uint64_t index = 0;
    const Status s = fx.client->AppendSync(
        txlog::wire::kUnconditional,
        fx.DataRecord("redirect-" + std::to_string(i)), &index);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  const Counter* redirects = fx.registry.FindCounter("txlog_redirects_total");
  ASSERT_NE(redirects, nullptr);
  // Six appends needed at most one redirect each (hint is remembered after
  // the first); well under the per-op budget.
  EXPECT_LE(redirects->value(), 6u);
}

TEST(LogServiceTest, LeaderKillMidStreamSurvivesViaRetry) {
  LogGroup group(3);
  const int leader = group.WaitForLeader();
  ASSERT_GE(leader, 0);

  txlog::RemoteClient::Options opt;
  opt.rpc_timeout_ms = 200;
  opt.backoff_base_ms = 20;
  opt.backoff_cap_ms = 200;
  opt.max_attempts = 20;  // must ride out a full re-election
  ClientFixture fx(group.endpoints, opt);

  uint64_t index = 0;
  ASSERT_TRUE(fx.client
                  ->AppendSync(txlog::wire::kUnconditional,
                               fx.DataRecord("pre-kill"), &index)
                  .ok());

  // Kill the leader outright; the survivors elect a new one.
  group.services[static_cast<size_t>(leader)]->Stop();
  group.services[static_cast<size_t>(leader)].reset();

  uint64_t index2 = 0;
  const Status s = fx.client->AppendSync(txlog::wire::kUnconditional,
                                         fx.DataRecord("post-kill"), &index2);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(index2, index);
  // The acked pre-kill write must still be readable — no lost acked write.
  EXPECT_EQ(fx.CountPayload("pre-kill"), 1);
  EXPECT_EQ(fx.CountPayload("post-kill"), 1);
}

TEST(LogServiceTest, LeaseAcquireRenewAndFencing) {
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);
  ClientFixture fx(group.endpoints);

  txlog::rpcwire::LeaseResponse rsp;
  ASSERT_TRUE(fx.client->AcquireLeaseSync(11, 60000, "shard-a", &rsp).ok());
  EXPECT_EQ(rsp.result, txlog::wire::ClientResult::kOk);
  EXPECT_GT(rsp.index, 0u);

  // A different owner is fenced out while the lease is live.
  txlog::rpcwire::LeaseResponse rsp2;
  const Status s2 = fx.client->AcquireLeaseSync(22, 60000, "shard-a", &rsp2);
  ASSERT_TRUE(s2.IsConditionFailed()) << s2.ToString();
  EXPECT_EQ(rsp2.holder, 11u);
  EXPECT_GT(rsp2.remaining_ms, 0u);

  // The holder renews; an unrelated shard is independent.
  txlog::rpcwire::LeaseResponse rsp3;
  ASSERT_TRUE(fx.client->RenewLeaseSync(11, 60000, "shard-a", &rsp3).ok());
  EXPECT_EQ(rsp3.result, txlog::wire::ClientResult::kOk);
  txlog::rpcwire::LeaseResponse rsp4;
  ASSERT_TRUE(fx.client->AcquireLeaseSync(22, 60000, "shard-b", &rsp4).ok());

  // Short lease expires; the second owner takes over.
  txlog::rpcwire::LeaseResponse rsp5;
  ASSERT_TRUE(fx.client->AcquireLeaseSync(33, 80, "shard-c", &rsp5).ok());
  SleepMs(200);
  txlog::rpcwire::LeaseResponse rsp6;
  ASSERT_TRUE(fx.client->AcquireLeaseSync(44, 60000, "shard-c", &rsp6).ok());
  EXPECT_EQ(rsp6.result, txlog::wire::ClientResult::kOk);
}

TEST(LogServiceTest, LongPollReadWakesOnCommit) {
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);
  ClientFixture fx(group.endpoints);

  uint64_t index = 0;
  ASSERT_TRUE(fx.client
                  ->AppendSync(txlog::wire::kUnconditional,
                               fx.DataRecord("existing"), &index)
                  .ok());

  // Park a long poll past the tail, then append: the poll must wake with
  // the new entry well before its wait_ms budget.
  std::atomic<int64_t> poll_ms{-1};
  std::atomic<bool> got_entry{false};
  std::thread poller([&] {
    txlog::wire::ClientReadResponse rsp;
    const auto t0 = std::chrono::steady_clock::now();
    const Status s = fx.client->ReadSync(index + 1, 16, 3000, &rsp);
    poll_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    if (s.ok()) {
      for (const auto& e : rsp.entries) {
        if (e.record.payload == "wakeup") got_entry = true;
      }
    }
  });
  SleepMs(150);  // let the poll park
  uint64_t index2 = 0;
  ASSERT_TRUE(fx.client
                  ->AppendSync(txlog::wire::kUnconditional,
                               fx.DataRecord("wakeup"), &index2)
                  .ok());
  poller.join();
  EXPECT_TRUE(got_entry.load());
  EXPECT_LT(poll_ms.load(), 2500);
}

// ---------------------------------------------------------------------------
// RespServer durability gate over the remote log

class GateClient {
 public:
  explicit GateClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&sa),
                  sizeof(sa)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    struct timeval tv{10, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~GateClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  bool SendCommand(const std::vector<std::string>& argv) {
    const std::string bytes = resp::EncodeCommand(argv);
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  std::vector<Value> ReadReplies(size_t n) {
    std::vector<Value> out;
    char buf[16 * 1024];
    while (out.size() < n) {
      Value v;
      const resp::DecodeStatus st = dec_.Decode(&v);
      if (st == resp::DecodeStatus::kOk) {
        out.push_back(std::move(v));
        continue;
      }
      if (st == resp::DecodeStatus::kError) break;
      const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r <= 0) break;
      dec_.Feed(Slice(buf, static_cast<size_t>(r)));
    }
    return out;
  }

  Value RoundTrip(const std::vector<std::string>& argv) {
    if (!SendCommand(argv)) return Value::Error("send failed");
    std::vector<Value> replies = ReadReplies(1);
    return replies.empty() ? Value::Error("no reply") : replies[0];
  }

 private:
  int fd_ = -1;
  resp::Decoder dec_;
};

// Committed kData entries in the log, polling until at least `expected`
// appear (a round-robin read may hit a follower one heartbeat behind).
int CountDataEntries(txlog::RemoteClient* client, int expected,
                     int timeout_ms = 3000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int count = 0;
  for (;;) {
    txlog::wire::ClientReadResponse rsp;
    if (client->ReadSync(1, 10000, 0, &rsp).ok()) {
      count = 0;
      for (const auto& e : rsp.entries) {
        if (e.record.type == txlog::RecordType::kData) ++count;
      }
      if (count >= expected) return count;
    }
    if (std::chrono::steady_clock::now() >= deadline) return count;
    SleepMs(20);
  }
}

struct DurableServerFixture {
  explicit DurableServerFixture(LogGroup* group_in) : group(group_in) {
    net::ServerConfig config;
    config.port = 0;
    config.loop_timeout_ms = 10;
    config.txlog_endpoints = group->endpoints;
    config.txlog_rpc_timeout_ms = 250;
    config.txlog_backoff_base_ms = 10;
    config.txlog_backoff_cap_ms = 100;
    config.shutdown_drain_ms = 4000;
    engine = std::make_unique<engine::Engine>();
    server = std::make_unique<net::RespServer>(engine.get(), config);
    const Status s = server->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  ~DurableServerFixture() {
    if (server != nullptr) server->Stop();
  }

  double Metric(const std::string& series) {
    GateClient c(server->port());
    const Value v = c.RoundTrip({"METRICS"});
    double out = 0;
    MetricsRegistry::ParseSeries(v.str, series, &out);
    return out;
  }

  LogGroup* group;
  std::unique_ptr<engine::Engine> engine;
  std::unique_ptr<net::RespServer> server;
};

TEST(DurabilityGateTest, WriteCommitsToRemoteLogBeforeAck) {
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);
  DurableServerFixture fx(&group);

  GateClient c(fx.server->port());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.RoundTrip({"SET", "k", "v"}).type, resp::Type::kSimpleString);
  EXPECT_EQ(c.RoundTrip({"GET", "k"}).str, "v");

  // The effect batch is now a committed log entry on the group.
  ClientFixture log(group.endpoints);
  EXPECT_EQ(CountDataEntries(log.client.get(), 1), 1);
  EXPECT_GE(fx.Metric("txlog_gate_appends_total"), 1.0);
  EXPECT_GE(fx.Metric("txlog_durable_ack_us_count"), 1.0);
}

// Satellite: a dropped append ack makes the gate's client retry; dedup on
// the daemon keeps the log at exactly one entry, and the parked reply (the
// "tracker release") fires exactly once.
TEST(DurabilityGateTest, DroppedAckRetryReleasesExactlyOnce) {
  LogGroup group(3);
  const int leader = group.WaitForLeader();
  ASSERT_GE(leader, 0);
  DurableServerFixture fx(&group);

  group.services[static_cast<size_t>(leader)]->fault().DropResponses(
      txlog::rpcwire::kAppend, 1);

  GateClient c(fx.server->port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.SendCommand({"SET", "retry-key", "v"}));
  ASSERT_TRUE(c.SendCommand({"GET", "retry-key"}));
  // Exactly two replies: one +OK (after the retried append resolved via
  // dedup), one value. A double release would surface as a third reply.
  std::vector<Value> replies = c.ReadReplies(2);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].type, resp::Type::kSimpleString);
  EXPECT_EQ(replies[1].str, "v");

  // And the log holds exactly one data entry for the single SET.
  ClientFixture log(group.endpoints);
  EXPECT_EQ(CountDataEntries(log.client.get(), 1), 1);
  EXPECT_GE(fx.Metric("txlog_retries_total"), 1.0);
}

// §3.2: a read of a not-yet-durable key from ANOTHER connection is parked
// until the write's append commits.
TEST(DurabilityGateTest, CrossConnectionReadWaitsForDurability) {
  LogGroup group(3);
  const int leader = group.WaitForLeader();
  ASSERT_GE(leader, 0);
  DurableServerFixture fx(&group);

  // Delay the next append ack 250ms: the SET's reply (and any read of the
  // key) cannot be released before that.
  group.services[static_cast<size_t>(leader)]->fault().DelayResponses(
      txlog::rpcwire::kAppend, 250, 1);

  GateClient writer(fx.server->port());
  GateClient reader(fx.server->port());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(reader.ok());

  ASSERT_TRUE(writer.SendCommand({"SET", "hazard", "v"}));
  SleepMs(50);  // the write is applied locally but not yet durable
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(reader.SendCommand({"GET", "hazard"}));
  std::vector<Value> got = reader.ReadReplies(1);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].str, "v");
  // Parked behind the delayed ack (50ms already elapsed before the GET).
  EXPECT_GE(ms, 120);
  // An unrelated key is NOT parked.
  EXPECT_EQ(reader.RoundTrip({"GET", "unrelated"}).type,
            resp::Type::kNull);

  std::vector<Value> w = writer.ReadReplies(1);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].type, resp::Type::kSimpleString);
}

// Satellite: WAIT over the remote log — released only once every prior
// write of the connection is durable, reporting the ack quorum.
TEST(DurabilityGateTest, WaitBlocksUntilPriorWritesDurable) {
  LogGroup group(3);
  const int leader = group.WaitForLeader();
  ASSERT_GE(leader, 0);
  DurableServerFixture fx(&group);

  group.services[static_cast<size_t>(leader)]->fault().DelayResponses(
      txlog::rpcwire::kAppend, 200, 1);

  GateClient c(fx.server->port());
  ASSERT_TRUE(c.ok());
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(c.SendCommand({"SET", "w", "1"}));
  ASSERT_TRUE(c.SendCommand({"WAIT", "2", "1000"}));
  std::vector<Value> replies = c.ReadReplies(2);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].type, resp::Type::kSimpleString);
  // Majority of a 3-replica group.
  EXPECT_EQ(replies[1].integer, 2);
  EXPECT_GE(ms, 150);

  // With nothing outstanding, WAIT answers immediately.
  EXPECT_EQ(c.RoundTrip({"WAIT", "2", "1000"}).integer, 2);
}

// Satellite: shutdown drains in-flight appends — a write whose ack is still
// in flight when Stop() begins is acked, not dropped.
TEST(DurabilityGateTest, ShutdownDrainsInFlightAppends) {
  LogGroup group(3);
  const int leader = group.WaitForLeader();
  ASSERT_GE(leader, 0);
  auto fx = std::make_unique<DurableServerFixture>(&group);

  group.services[static_cast<size_t>(leader)]->fault().DelayResponses(
      txlog::rpcwire::kAppend, 300, 1);

  GateClient c(fx->server->port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.SendCommand({"SET", "draining", "v"}));
  SleepMs(50);  // the append is in flight, its ack delayed
  std::thread stopper([&] { fx->server->Stop(); });
  // The parked +OK must still arrive before the connection dies.
  std::vector<Value> replies = c.ReadReplies(1);
  stopper.join();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, resp::Type::kSimpleString);

  // And the write really is in the log.
  ClientFixture log(group.endpoints);
  EXPECT_EQ(CountDataEntries(log.client.get(), 1), 1);
  fx.reset();
}

// INFO surfaces the rpc client instruments (satellite: observability).
TEST(DurabilityGateTest, InfoReportsRpcSection) {
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);
  DurableServerFixture fx(&group);

  GateClient c(fx.server->port());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.RoundTrip({"SET", "k", "v"}).type, resp::Type::kSimpleString);
  const Value info = c.RoundTrip({"INFO", "RPC"});
  ASSERT_EQ(info.type, resp::Type::kBulkString);
  EXPECT_NE(info.str.find("# Rpc"), std::string::npos);
  EXPECT_NE(info.str.find("rpc_txlog.conditionalappend:calls="),
            std::string::npos);
  EXPECT_NE(info.str.find("txlog_gate_appends_total:1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fence-mode gate (§4.1): appends chain on the previous index; a foreign
// record in a precondition gap means the shard lease is lost — terminally.

std::vector<net::RemoteLogGate::Completion> WaitCompletions(
    net::RemoteLogGate* gate, size_t n, int timeout_ms = 8000) {
  std::vector<net::RemoteLogGate::Completion> out;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (out.size() < n && std::chrono::steady_clock::now() < deadline) {
    for (auto& c : gate->DrainCompletions()) out.push_back(std::move(c));
    if (out.size() < n) SleepMs(10);
  }
  return out;
}

TEST(FencedGateTest, BenignTailMovementRechainsForeignGrantFences) {
  LogGroup group(3);
  ASSERT_GE(group.WaitForLeader(), 0);

  MetricsRegistry registry;
  net::RemoteLogGate::Options opt;
  opt.endpoints = group.endpoints;
  opt.writer_id = 5;
  opt.rpc_timeout_ms = 250;
  opt.backoff_base_ms = 10;
  opt.backoff_cap_ms = 100;
  opt.fence = true;
  opt.shard_id = "shard-0";
  net::RemoteLogGate gate(opt, &registry);
  ASSERT_TRUE(gate.Start([] {}).ok());

  gate.SubmitAppend("batch-1", 0);
  auto done = WaitCompletions(&gate, 1);
  ASSERT_EQ(done.size(), 1u);
  ASSERT_TRUE(done[0].status.ok()) << done[0].status.ToString();
  EXPECT_FALSE(gate.fenced());

  // Benign out-of-band tail movement: another shard's lease traffic sharing
  // the log. The next chained append hits a stale precondition, scans the
  // gap, classifies the grant benign, re-chains, and still commits.
  ClientFixture fx(group.endpoints);
  txlog::rpcwire::LeaseResponse lease;
  ASSERT_TRUE(
      fx.client->AcquireLeaseSync(22, 60000, "shard-other", &lease).ok());

  gate.SubmitAppend("batch-2", 0);
  done = WaitCompletions(&gate, 1);
  ASSERT_EQ(done.size(), 1u);
  ASSERT_TRUE(done[0].status.ok()) << done[0].status.ToString();
  EXPECT_FALSE(gate.fenced());

  // A grant for OUR shard to a different owner is the fence.
  txlog::rpcwire::LeaseResponse steal;
  ASSERT_TRUE(fx.client->AcquireLeaseSync(9, 60000, "shard-0", &steal).ok());

  gate.SubmitAppend("batch-3", 0);
  done = WaitCompletions(&gate, 1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].status.IsConditionFailed())
      << done[0].status.ToString();
  EXPECT_TRUE(gate.fenced());
  EXPECT_EQ(gate.fenced_by(), 9u);

  // Terminal: later submissions fail without touching the log.
  gate.SubmitAppend("batch-4", 0);
  done = WaitCompletions(&gate, 1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].status.IsConditionFailed());

  gate.Stop();
}

}  // namespace
}  // namespace memdb
