// ClusterClient tests against real in-process cluster-mode RespServers
// (no transaction log: migrations commit their flips immediately, which is
// exactly what these routing-protocol tests need). Covers redirect parsing,
// slot-map discovery and refresh, MOVED/ASK following, the bounded hop
// budget on a disagreeing topology, and a client with a deliberately stale
// map retrying through a live slot migration.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/cluster_client.h"
#include "common/crc.h"
#include "engine/engine.h"
#include "net/server.h"

namespace memdb {
namespace {

using client::ClusterClient;
using engine::Engine;
using net::RespServer;
using net::ServerConfig;

// Kernel-assigned free TCP port, closed before the server binds it.
uint16_t FreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  socklen_t len = sizeof(sa);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len), 0);
  ::close(fd);
  return ntohs(sa.sin_port);
}

struct ClusterShard {
  ClusterShard(uint16_t port, const std::string& shard_id,
               const std::string& slots,
               const std::vector<ServerConfig::ClusterPeer>& peers) {
    ServerConfig config;
    config.port = port;
    config.loop_timeout_ms = 10;
    config.cluster = true;
    config.shard_id = shard_id;
    config.cluster_slots = slots;
    config.cluster_peers = peers;
    config.migration_batch_keys = 4;  // several batches even for small slots
    engine = std::make_unique<Engine>();
    server = std::make_unique<RespServer>(engine.get(), config);
    const Status s = server->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  ~ClusterShard() { server->Stop(); }

  std::unique_ptr<Engine> engine;
  std::unique_ptr<RespServer> server;
};

std::string Ep(uint16_t port) { return "127.0.0.1:" + std::to_string(port); }

// Two shards splitting the slot space at 8192 (key "foo" -> slot 12182 on
// shard two; key "bar" -> slot 5061 on shard one).
struct TwoShards {
  TwoShards()
      : port1(FreePort()),
        port2(FreePort()),
        shard1(port1, "s1", "0-8191", {{"s2", Ep(port2), "8192-16383"}}),
        shard2(port2, "s2", "8192-16383", {{"s1", Ep(port1), "0-8191"}}) {}
  uint16_t port1, port2;
  ClusterShard shard1, shard2;
};

TEST(ClusterClientParse, RedirectGrammar) {
  uint16_t slot = 0;
  std::string ep;
  EXPECT_TRUE(
      ClusterClient::ParseRedirect("MOVED 42 127.0.0.1:7001", "MOVED", &slot,
                                   &ep));
  EXPECT_EQ(slot, 42);
  EXPECT_EQ(ep, "127.0.0.1:7001");
  EXPECT_TRUE(ClusterClient::ParseRedirect("ASK 16383 h:1", "ASK", &slot,
                                           &ep));
  EXPECT_EQ(slot, 16383);

  EXPECT_FALSE(ClusterClient::ParseRedirect("MOVED 42", "MOVED", &slot, &ep));
  EXPECT_FALSE(
      ClusterClient::ParseRedirect("MOVED x h:1", "MOVED", &slot, &ep));
  EXPECT_FALSE(
      ClusterClient::ParseRedirect("MOVED 16384 h:1", "MOVED", &slot, &ep));
  EXPECT_FALSE(
      ClusterClient::ParseRedirect("ERR unknown", "MOVED", &slot, &ep));
  // An ASK is not a MOVED.
  EXPECT_FALSE(
      ClusterClient::ParseRedirect("ASK 42 h:1", "MOVED", &slot, &ep));
}

TEST(ClusterClientTest, DiscoversMapAndRoutesWithoutRedirects) {
  TwoShards cluster;
  ClusterClient cli({Ep(cluster.port1)});
  ASSERT_TRUE(cli.RefreshSlotMap().ok());
  EXPECT_EQ(cli.EndpointForSlot(0), Ep(cluster.port1));
  EXPECT_EQ(cli.EndpointForSlot(16383), Ep(cluster.port2));

  resp::Value reply;
  ASSERT_TRUE(cli.Execute({"SET", "foo", "1"}, &reply).ok());
  EXPECT_EQ(reply.str, "OK");
  ASSERT_TRUE(cli.Execute({"SET", "bar", "2"}, &reply).ok());
  EXPECT_EQ(reply.str, "OK");
  ASSERT_TRUE(cli.Execute({"GET", "foo"}, &reply).ok());
  EXPECT_EQ(reply.str, "1");
  // The warmed map routed everything directly.
  EXPECT_EQ(cli.moved_redirects(), 0u);
  EXPECT_EQ(cli.ask_redirects(), 0u);

  // The values really landed on their own shards.
  EXPECT_EQ(cluster.shard2.engine->keyspace().Size(), 1u);
  EXPECT_EQ(cluster.shard1.engine->keyspace().Size(), 1u);
}

TEST(ClusterClientTest, FollowsMovedAndRefreshesMapAfterFlip) {
  TwoShards cluster;
  const uint16_t slot = KeyHashSlot(Slice("bar"));  // 5061, shard one
  ASSERT_LT(slot, 8192);

  // Warm a client's map, then move the slot out from under it.
  ClusterClient stale({Ep(cluster.port1)});
  ASSERT_TRUE(stale.RefreshSlotMap().ok());
  resp::Value reply;
  ASSERT_TRUE(stale.Execute({"SET", "bar", "here"}, &reply).ok());
  ASSERT_EQ(reply.str, "OK");
  EXPECT_EQ(stale.moved_redirects(), 0u) << "warm map routes directly";

  ClusterClient admin({Ep(cluster.port1)});
  ASSERT_TRUE(admin
                  .Execute({"CLUSTER", "SETSLOT", std::to_string(slot),
                            "MIGRATE", "s2", Ep(cluster.port2)},
                          &reply)
                  .ok());
  ASSERT_EQ(reply.str, "OK");
  // Wait for the flip to commit (fresh map shows the new owner).
  bool flipped = false;
  for (int i = 0; i < 500 && !flipped; ++i) {
    ClusterClient probe({Ep(cluster.port1)});
    flipped = probe.RefreshSlotMap().ok() &&
              probe.EndpointForSlot(slot) == Ep(cluster.port2);
    if (!flipped) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(flipped) << "migration never committed";

  // The stale client still believes shard one owns the slot: its next read
  // hits shard one, gets -MOVED, follows it, and updates the cached map.
  ASSERT_EQ(stale.EndpointForSlot(slot), Ep(cluster.port1));
  ASSERT_TRUE(stale.Execute({"GET", "bar"}, &reply).ok());
  EXPECT_EQ(reply.str, "here");
  EXPECT_GE(stale.moved_redirects(), 1u);
  EXPECT_EQ(stale.EndpointForSlot(slot), Ep(cluster.port2));
}

TEST(ClusterClientTest, HopBudgetBoundsDisagreeingTopology) {
  // Two shards that BOTH claim the other owns the upper half: every MOVED
  // points at the other node, forever. The hop budget must turn that spin
  // into an error.
  const uint16_t port1 = FreePort(), port2 = FreePort();
  ClusterShard shard1(port1, "s1", "0-8191",
                      {{"s2", Ep(port2), "8192-16383"}});
  ClusterShard shard2(port2, "s2", "0-8191",
                      {{"s1", Ep(port1), "8192-16383"}});

  ClusterClient::Options opt;
  opt.max_hops = 4;
  ClusterClient cli({Ep(port1)}, opt);
  resp::Value reply;
  const Status s = cli.Execute({"SET", "foo", "x"}, &reply);  // upper half
  EXPECT_FALSE(s.ok());
  EXPECT_GE(cli.moved_redirects(), 4u);
}

TEST(ClusterClientTest, StaleMapRetriesThroughLiveMigration) {
  TwoShards cluster;
  // All keys share one hash tag -> one slot in shard one's range.
  const uint16_t slot = KeyHashSlot(Slice("{m1}"));
  ASSERT_LT(slot, 8192);

  ClusterClient writer({Ep(cluster.port1)});
  resp::Value reply;
  const int kKeys = 40;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(writer
                    .Execute({"SET", "{m1}k" + std::to_string(i),
                              "v" + std::to_string(i)},
                            &reply)
                    .ok());
    ASSERT_EQ(reply.str, "OK");
  }

  // A second client warms its map BEFORE the migration: it will keep
  // routing to shard one with a stale map while ownership moves.
  ClusterClient stale({Ep(cluster.port1)});
  ASSERT_TRUE(stale.RefreshSlotMap().ok());
  ASSERT_EQ(stale.EndpointForSlot(slot), Ep(cluster.port1));

  // Kick the migration (gate-less servers: batches stream and the flip
  // commits without a transaction log) and immediately keep operating on
  // the slot through the stale client.
  ASSERT_TRUE(writer
                  .Execute({"CLUSTER", "SETSLOT", std::to_string(slot),
                            "MIGRATE", "s2", Ep(cluster.port2)},
                          &reply)
                  .ok());
  ASSERT_EQ(reply.str, "OK") << "migration must start";

  // Operate through the whole migration window: every op must succeed via
  // ASK/TRYAGAIN/MOVED handling, whatever phase it lands in.
  for (int round = 0; round < 200; ++round) {
    const std::string key = "{m1}k" + std::to_string(round % kKeys);
    ASSERT_TRUE(stale.Execute({"GET", key}, &reply).ok());
    ASSERT_EQ(reply.str, "v" + std::to_string(round % kKeys))
        << "round " << round;
    if (stale.EndpointForSlot(slot) == Ep(cluster.port2)) break;
  }

  // The flip must eventually commit and the stale client must have learned
  // the new owner via -MOVED (or -ASK mid-flight first).
  for (int i = 0; i < 200 && stale.EndpointForSlot(slot) != Ep(cluster.port2);
       ++i) {
    ASSERT_TRUE(stale.Execute({"GET", "{m1}k0"}, &reply).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(stale.EndpointForSlot(slot), Ep(cluster.port2));
  EXPECT_GE(stale.moved_redirects(), 1u);

  // Every key survived the move with its value intact, served by shard two.
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(
        stale.Execute({"GET", "{m1}k" + std::to_string(i)}, &reply).ok());
    EXPECT_EQ(reply.str, "v" + std::to_string(i));
  }
  EXPECT_EQ(cluster.shard1.engine->keyspace().Size(), 0u)
      << "source must have deleted every migrated key";
}

}  // namespace
}  // namespace memdb
