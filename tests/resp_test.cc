#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "resp/resp.h"

namespace memdb::resp {
namespace {

TEST(RespEncodeTest, SimpleString) {
  EXPECT_EQ(Value::Simple("OK").Encode(), "+OK\r\n");
}

TEST(RespEncodeTest, Error) {
  EXPECT_EQ(Value::Error("ERR boom").Encode(), "-ERR boom\r\n");
}

TEST(RespEncodeTest, Integer) {
  EXPECT_EQ(Value::Integer(42).Encode(), ":42\r\n");
  EXPECT_EQ(Value::Integer(-7).Encode(), ":-7\r\n");
}

TEST(RespEncodeTest, BulkString) {
  EXPECT_EQ(Value::Bulk("hello").Encode(), "$5\r\nhello\r\n");
  EXPECT_EQ(Value::Bulk("").Encode(), "$0\r\n\r\n");
  // Binary-safe.
  EXPECT_EQ(Value::Bulk(std::string("a\0b", 3)).Encode(),
            std::string("$3\r\na\0b\r\n", 9));
}

TEST(RespEncodeTest, Null) { EXPECT_EQ(Value::Null().Encode(), "$-1\r\n"); }

TEST(RespEncodeTest, Array) {
  Value v = Value::Array({Value::Bulk("GET"), Value::Bulk("k")});
  EXPECT_EQ(v.Encode(), "*2\r\n$3\r\nGET\r\n$1\r\nk\r\n");
}

TEST(RespEncodeTest, NestedArray) {
  Value v = Value::Array({Value::Integer(1), Value::Array({Value::Simple("a")})});
  EXPECT_EQ(v.Encode(), "*2\r\n:1\r\n*1\r\n+a\r\n");
}

TEST(RespEncodeTest, EncodeCommand) {
  EXPECT_EQ(EncodeCommand({"SET", "key", "val"}),
            "*3\r\n$3\r\nSET\r\n$3\r\nkey\r\n$3\r\nval\r\n");
}

Value ParseOne(const std::string& wire) {
  Decoder d;
  d.Feed(wire);
  Value v;
  Status s = d.TryParse(&v);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return v;
}

TEST(RespDecodeTest, RoundTripAllTypes) {
  const Value values[] = {
      Value::Simple("PONG"),
      Value::Error("ERR x"),
      Value::Integer(-123456789),
      Value::Bulk("payload with \r\n inside"),
      Value::Null(),
      Value::Array({Value::Integer(1), Value::Bulk("two"),
                    Value::Array({Value::Simple("three")})}),
  };
  for (const Value& v : values) {
    EXPECT_EQ(ParseOne(v.Encode()), v) << v.ToString();
  }
}

TEST(RespDecodeTest, IncrementalFeed) {
  const std::string wire = EncodeCommand({"SET", "key", "value"});
  Decoder d;
  Value v;
  // Feed one byte at a time; must report NotFound until complete.
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    d.Feed(Slice(wire.data() + i, 1));
    Status s = d.TryParse(&v);
    EXPECT_TRUE(s.IsNotFound()) << "at byte " << i << ": " << s.ToString();
  }
  d.Feed(Slice(wire.data() + wire.size() - 1, 1));
  ASSERT_TRUE(d.TryParse(&v).ok());
  EXPECT_EQ(v.array.size(), 3u);
}

TEST(RespDecodeTest, MultipleValuesInOneBuffer) {
  Decoder d;
  d.Feed(Value::Simple("a").Encode() + Value::Integer(2).Encode() +
         Value::Bulk("c").Encode());
  Value v;
  ASSERT_TRUE(d.TryParse(&v).ok());
  EXPECT_EQ(v, Value::Simple("a"));
  ASSERT_TRUE(d.TryParse(&v).ok());
  EXPECT_EQ(v, Value::Integer(2));
  ASSERT_TRUE(d.TryParse(&v).ok());
  EXPECT_EQ(v, Value::Bulk("c"));
  EXPECT_TRUE(d.TryParse(&v).IsNotFound());
}

TEST(RespDecodeTest, TryParseCommand) {
  Decoder d;
  d.Feed(EncodeCommand({"HSET", "h", "f", "v"}));
  std::vector<std::string> argv;
  ASSERT_TRUE(d.TryParseCommand(&argv).ok());
  EXPECT_EQ(argv, (std::vector<std::string>{"HSET", "h", "f", "v"}));
}

TEST(RespDecodeTest, CommandRejectsNonArray) {
  Decoder d;
  d.Feed("+OK\r\n");
  std::vector<std::string> argv;
  EXPECT_TRUE(d.TryParseCommand(&argv).IsCorruption());
}

TEST(RespDecodeTest, MalformedMarkerIsCorruption) {
  Decoder d;
  d.Feed("!bogus\r\n");
  Value v;
  EXPECT_TRUE(d.TryParse(&v).IsCorruption());
}

TEST(RespDecodeTest, BadIntegerIsCorruption) {
  Decoder d;
  d.Feed(":12a\r\n");
  Value v;
  EXPECT_TRUE(d.TryParse(&v).IsCorruption());
}

TEST(RespDecodeTest, BulkMissingTerminatorIsCorruption) {
  Decoder d;
  d.Feed("$3\r\nabcXY");
  Value v;
  EXPECT_TRUE(d.TryParse(&v).IsCorruption());
}

TEST(RespDecodeTest, NullArrayDecodesAsNull) {
  EXPECT_TRUE(ParseOne("*-1\r\n").IsNull());
}

TEST(RespDecodeTest, LargeBulk) {
  std::string big(1 << 20, 'z');
  EXPECT_EQ(ParseOne(Value::Bulk(big).Encode()).str, big);
}

TEST(RespDecodeTest, BufferCompactionKeepsParsing) {
  Decoder d;
  Value v;
  for (int i = 0; i < 2000; ++i) {
    d.Feed(Value::Bulk("item" + std::to_string(i)).Encode());
    ASSERT_TRUE(d.TryParse(&v).ok());
    EXPECT_EQ(v.str, "item" + std::to_string(i));
  }
  EXPECT_EQ(d.buffered(), 0u);
}

TEST(RespValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "(nil)");
  EXPECT_EQ(Value::Integer(3).ToString(), "3");
  EXPECT_EQ(Value::Array({Value::Integer(1), Value::Bulk("x")}).ToString(),
            "[1, \"x\"]");
}

// ---- streaming API (DecodeCommand / Decode) ------------------------------

TEST(RespStreamTest, DecodeCommandNeedsMoreThenOk) {
  Decoder d;
  std::vector<std::string> argv;
  const std::string wire = EncodeCommand({"SET", "key", "value"});
  // Feed one byte at a time: every prefix must report kNeedMore.
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    d.Feed(Slice(wire.data() + i, 1));
    ASSERT_EQ(d.DecodeCommand(&argv), DecodeStatus::kNeedMore) << i;
  }
  d.Feed(Slice(wire.data() + wire.size() - 1, 1));
  ASSERT_EQ(d.DecodeCommand(&argv), DecodeStatus::kOk);
  EXPECT_EQ(argv, (std::vector<std::string>{"SET", "key", "value"}));
  EXPECT_EQ(d.DecodeCommand(&argv), DecodeStatus::kNeedMore);
}

TEST(RespStreamTest, DecodeCommandPipelined) {
  Decoder d;
  d.Feed(EncodeCommand({"PING"}) + EncodeCommand({"GET", "k"}));
  std::vector<std::string> argv;
  ASSERT_EQ(d.DecodeCommand(&argv), DecodeStatus::kOk);
  EXPECT_EQ(argv, (std::vector<std::string>{"PING"}));
  ASSERT_EQ(d.DecodeCommand(&argv), DecodeStatus::kOk);
  EXPECT_EQ(argv, (std::vector<std::string>{"GET", "k"}));
  EXPECT_EQ(d.DecodeCommand(&argv), DecodeStatus::kNeedMore);
}

TEST(RespStreamTest, InlineCommands) {
  Decoder d;
  std::vector<std::string> argv;
  d.Feed("PING\r\n");
  ASSERT_EQ(d.DecodeCommand(&argv), DecodeStatus::kOk);
  EXPECT_EQ(argv, (std::vector<std::string>{"PING"}));
  // Bare \n, extra whitespace, and empty lines are all accepted.
  d.Feed("  SET  k   v \n\r\n\nGET k\r\n");
  ASSERT_EQ(d.DecodeCommand(&argv), DecodeStatus::kOk);
  EXPECT_EQ(argv, (std::vector<std::string>{"SET", "k", "v"}));
  ASSERT_EQ(d.DecodeCommand(&argv), DecodeStatus::kOk);
  EXPECT_EQ(argv, (std::vector<std::string>{"GET", "k"}));
  EXPECT_EQ(d.DecodeCommand(&argv), DecodeStatus::kNeedMore);
}

TEST(RespStreamTest, InlineThenMultibulkMix) {
  Decoder d;
  d.Feed("PING\r\n" + EncodeCommand({"ECHO", "hi"}));
  std::vector<std::string> argv;
  ASSERT_EQ(d.DecodeCommand(&argv), DecodeStatus::kOk);
  ASSERT_EQ(d.DecodeCommand(&argv), DecodeStatus::kOk);
  EXPECT_EQ(argv, (std::vector<std::string>{"ECHO", "hi"}));
}

TEST(RespStreamTest, OversizedBulkRejectedBeforePayload) {
  Decoder d;
  DecodeLimits limits;
  limits.max_bulk_bytes = 16;
  d.set_limits(limits);
  std::vector<std::string> argv;
  std::string error;
  // The declared length alone must trigger the error — no payload sent.
  d.Feed("*2\r\n$3\r\nSET\r\n$1000\r\n");
  EXPECT_EQ(d.DecodeCommand(&argv, &error), DecodeStatus::kError);
  EXPECT_NE(error.find("proto-max-bulk-len"), std::string::npos);
}

TEST(RespStreamTest, OversizedMultibulkRejected) {
  Decoder d;
  DecodeLimits limits;
  limits.max_array_elems = 8;
  d.set_limits(limits);
  std::vector<std::string> argv;
  std::string error;
  d.Feed("*100000\r\n");
  EXPECT_EQ(d.DecodeCommand(&argv, &error), DecodeStatus::kError);
  EXPECT_NE(error.find("multibulk"), std::string::npos);
}

TEST(RespStreamTest, DeepNestingRejectedNotStackOverflow) {
  // Regression (found by fuzz/resp_decode_fuzz.cc): ParseAt recurses per
  // array level, so `*1\r\n` repeated used to run the parser thread out
  // of stack — a remote crash from ~2MB of hostile bytes. The nesting cap
  // must reject the stream as a protocol error instead.
  Decoder d;
  std::string deep;
  for (int i = 0; i < 200000; ++i) deep += "*1\r\n";
  deep += ":1\r\n";
  d.Feed(deep);
  Value v;
  std::string error;
  EXPECT_EQ(d.Decode(&v, &error), DecodeStatus::kError);
  EXPECT_NE(error.find("nesting"), std::string::npos);
}

TEST(RespStreamTest, NestingWithinLimitStillParses) {
  Decoder d;
  DecodeLimits limits;
  limits.max_nesting = 8;
  d.set_limits(limits);
  // 5 levels deep: comfortably legal under the cap of 8.
  d.Feed("*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n:42\r\n");
  Value v;
  std::string error;
  ASSERT_EQ(d.Decode(&v, &error), DecodeStatus::kOk) << error;
  const Value* inner = &v;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(inner->array.size(), 1u);
    inner = &inner->array[0];
  }
  EXPECT_EQ(inner->integer, 42);
}

TEST(RespStreamTest, OversizedInlineRejected) {
  Decoder d;
  DecodeLimits limits;
  limits.max_inline_bytes = 32;
  d.set_limits(limits);
  std::vector<std::string> argv;
  std::string error;
  d.Feed(std::string(100, 'a'));  // no newline yet, already over the cap
  EXPECT_EQ(d.DecodeCommand(&argv, &error), DecodeStatus::kError);
  EXPECT_NE(error.find("inline"), std::string::npos);
}

TEST(RespStreamTest, ProtocolErrorSurfacesMessage) {
  Decoder d;
  d.Feed("*1\r\n$3\r\nabcd\r\n");  // declared 3 bytes, sent 4
  std::vector<std::string> argv;
  std::string error;
  EXPECT_EQ(d.DecodeCommand(&argv, &error), DecodeStatus::kError);
  EXPECT_FALSE(error.empty());
}

TEST(RespStreamTest, StreamingValueDecode) {
  Decoder d;
  Value v;
  EXPECT_EQ(d.Decode(&v), DecodeStatus::kNeedMore);
  d.Feed("+OK\r\n:42\r\n");
  ASSERT_EQ(d.Decode(&v), DecodeStatus::kOk);
  EXPECT_EQ(v.str, "OK");
  ASSERT_EQ(d.Decode(&v), DecodeStatus::kOk);
  EXPECT_EQ(v.integer, 42);
  std::string error;
  d.Feed("?bogus\r\n");
  EXPECT_EQ(d.Decode(&v, &error), DecodeStatus::kError);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace memdb::resp
