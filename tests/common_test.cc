#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>

#include "common/coding.h"
#include "common/crc.h"
#include "common/histogram.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/trace.h"
#include "common/trace_export.h"

namespace memdb {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");

  EXPECT_TRUE(Status::WrongType().IsWrongType());
  EXPECT_TRUE(Status::ConditionFailed().IsConditionFailed());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::Corruption("bad crc").IsCorruption());
  EXPECT_TRUE(Status::Moved("MOVED 1 n2").IsMoved());
  EXPECT_TRUE(Status::Ask("ASK 1 n2").IsAsk());
}

TEST(StatusTest, ResultValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(StatusTest, ResultError) {
  Result<int> r = Status::NotFound();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnIfError(int x) {
  MEMDB_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_FALSE(UseReturnIfError(-1).ok());
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> UseAssignOrReturn(int x) {
  MEMDB_ASSIGN_OR_RETURN(int v, Doubled(x));
  return v + 1;
}

TEST(StatusTest, AssignOrReturnMacro) {
  auto ok = UseAssignOrReturn(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_FALSE(UseAssignOrReturn(-3).ok());
}

// ---------------------------------------------------------------- Slice

TEST(SliceTest, Basics) {
  std::string s = "hello";
  Slice sl(s);
  EXPECT_EQ(sl.size(), 5u);
  EXPECT_EQ(sl.ToString(), "hello");
  EXPECT_EQ(sl, Slice("hello"));
  EXPECT_NE(sl, Slice("hellO"));
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
}

// ---------------------------------------------------------------- CRC

TEST(CrcTest, Crc16KnownVector) {
  // "123456789" -> 0x31C3 for CRC16-CCITT/XMODEM (value in the Redis
  // Cluster specification).
  EXPECT_EQ(Crc16("123456789", 9), 0x31C3);
}

TEST(CrcTest, Crc16EmptyIsZero) { EXPECT_EQ(Crc16("", 0), 0); }

TEST(CrcTest, Crc64Properties) {
  // Streaming equals one-shot.
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint64_t one_shot = Crc64(0, data.data(), data.size());
  uint64_t streamed = 0;
  for (char c : data) streamed = Crc64(streamed, &c, 1);
  EXPECT_EQ(one_shot, streamed);
  EXPECT_NE(one_shot, 0u);
  // Sensitivity to single-bit change.
  std::string data2 = data;
  data2[7] ^= 1;
  EXPECT_NE(Crc64(0, data2.data(), data2.size()), one_shot);
}

TEST(CrcTest, HashSlotInRangeAndStable) {
  std::set<uint16_t> slots;
  for (int i = 0; i < 1000; ++i) {
    std::string key = "key:" + std::to_string(i);
    uint16_t slot = KeyHashSlot(key);
    EXPECT_LT(slot, kNumSlots);
    EXPECT_EQ(slot, KeyHashSlot(key));  // deterministic
    slots.insert(slot);
  }
  // Keys should spread over many slots.
  EXPECT_GT(slots.size(), 800u);
}

TEST(CrcTest, HashTagsRouteToSameSlot) {
  EXPECT_EQ(KeyHashSlot("{user1000}.following"),
            KeyHashSlot("{user1000}.followers"));
  EXPECT_EQ(KeyHashSlot("foo{bar}baz"), KeyHashSlot("{bar}"));
  // Empty tag means the whole key is hashed.
  const std::string k = "foo{}{bar}";
  EXPECT_EQ(KeyHashSlot(k), Crc16(k.data(), k.size()) % 16384);
  // Only the first '{' opens a tag.
  EXPECT_EQ(KeyHashSlot("foo{{bar}}zap"), KeyHashSlot("{{bar}"));
}

// ---------------------------------------------------------------- Coding

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  Decoder dec(buf);
  uint16_t a;
  uint32_t b;
  uint64_t c;
  ASSERT_TRUE(dec.GetFixed16(&a));
  ASSERT_TRUE(dec.GetFixed32(&b));
  ASSERT_TRUE(dec.GetFixed64(&c));
  EXPECT_EQ(a, 0xBEEF);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_EQ(c, 0x0123456789ABCDEFULL);
  EXPECT_TRUE(dec.Empty());
}

TEST(CodingTest, VarintRoundTrip) {
  std::string buf;
  const uint64_t values[] = {0,       1,        127,        128,
                             300,     16383,    16384,      1ULL << 32,
                             ~0ULL,   42,       (1ULL << 56) + 3};
  for (uint64_t v : values) PutVarint64(&buf, v);
  Decoder dec(buf);
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(dec.GetVarint64(&got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(dec.Empty());
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  Decoder dec(buf);
  std::string a, b, c;
  ASSERT_TRUE(dec.GetLengthPrefixed(&a));
  ASSERT_TRUE(dec.GetLengthPrefixed(&b));
  ASSERT_TRUE(dec.GetLengthPrefixed(&c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string(1000, 'x'));
}

TEST(CodingTest, DoubleRoundTrip) {
  std::string buf;
  PutDouble(&buf, 3.14159);
  PutDouble(&buf, -0.0);
  PutDouble(&buf, 1e300);
  Decoder dec(buf);
  double a, b, c;
  ASSERT_TRUE(dec.GetDouble(&a));
  ASSERT_TRUE(dec.GetDouble(&b));
  ASSERT_TRUE(dec.GetDouble(&c));
  EXPECT_DOUBLE_EQ(a, 3.14159);
  EXPECT_DOUBLE_EQ(b, -0.0);
  EXPECT_DOUBLE_EQ(c, 1e300);
}

TEST(CodingTest, TruncatedInputFails) {
  std::string buf;
  PutFixed64(&buf, 1);
  Decoder dec(Slice(buf.data(), 4));
  uint64_t v;
  EXPECT_FALSE(dec.GetFixed64(&v));

  std::string buf2;
  PutLengthPrefixed(&buf2, "hello world");
  Decoder dec2(Slice(buf2.data(), 3));
  std::string s;
  EXPECT_FALSE(dec2.GetLengthPrefixed(&s));
}

TEST(CodingTest, VarintOverlongFails) {
  std::string buf(11, '\xff');  // never terminates within 10 bytes
  Decoder dec(buf);
  uint64_t v;
  EXPECT_FALSE(dec.GetVarint64(&v));
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true;
  bool any_diff_seed = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t x = a.Next(), y = b.Next(), z = c.Next();
    all_equal &= (x == y);
    any_diff_seed |= (x != z);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, RandomStringLengthAndCharset) {
  Rng rng(9);
  std::string s = rng.RandomString(64);
  EXPECT_EQ(s.size(), 64u);
  for (char ch : s) EXPECT_TRUE(isalnum(static_cast<unsigned char>(ch)));
}

TEST(RngTest, SkewedStaysInRange) {
  Rng rng(11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.Skewed(100, 0.7);
    ASSERT_LT(v, 100u);
    counts[v]++;
  }
  // Skew should favor small values: far more mass below 10 than the 10%
  // a uniform distribution would place there.
  int low = 0;
  for (auto& [v, n] : counts) {
    if (v < 10) low += n;
  }
  EXPECT_GT(low, 2500);
}

// ---------------------------------------------------------------- Histogram

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.Mean(), 500.5, 0.01);
  // Bucketed percentiles: allow ~5% relative error.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 500.0, 30.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 990.0, 50.0);
  EXPECT_EQ(h.Percentile(1.0), 1000u);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, MergeMatchesCombined) {
  Histogram a, b, combined;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.Uniform(100000);
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.Percentile(0.5), combined.Percentile(0.5));
  EXPECT_EQ(a.Percentile(0.99), combined.Percentile(0.99));
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  h.Record(3'600'000'000ULL);  // one hour in us
  EXPECT_EQ(h.max(), 3'600'000'000ULL);
  EXPECT_EQ(h.Percentile(1.0), 3'600'000'000ULL);
  double p50 = static_cast<double>(h.Percentile(0.5));
  EXPECT_NEAR(p50, 3.6e9, 3.6e9 * 0.04);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(10);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, MergeWithEmpty) {
  Histogram populated, empty;
  for (uint64_t v = 1; v <= 100; ++v) populated.Record(v);
  const uint64_t p50 = populated.Percentile(0.5);

  // Empty into populated: no-op.
  populated.Merge(empty);
  EXPECT_EQ(populated.count(), 100u);
  EXPECT_EQ(populated.Percentile(0.5), p50);

  // Populated into empty: exact copy of the distribution.
  empty.Merge(populated);
  EXPECT_EQ(empty.count(), 100u);
  EXPECT_EQ(empty.min(), populated.min());
  EXPECT_EQ(empty.max(), populated.max());
  EXPECT_EQ(empty.sum(), populated.sum());
  EXPECT_EQ(empty.Percentile(0.99), populated.Percentile(0.99));

  // Empty into empty stays empty.
  Histogram a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.Percentile(0.5), 0u);
}

TEST(HistogramTest, MergePartialOverlap) {
  // Disjoint ranges: low values in one, high in the other.
  Histogram low, high;
  for (uint64_t v = 1; v <= 100; ++v) low.Record(v);
  for (uint64_t v = 10'000; v <= 10'100; ++v) high.Record(v);
  low.Merge(high);
  EXPECT_EQ(low.count(), 201u);
  EXPECT_EQ(low.min(), 1u);
  EXPECT_EQ(low.max(), 10'100u);
  // Median sits in the low range; p99 in the high range.
  EXPECT_LE(low.Percentile(0.45), 110u);
  EXPECT_GE(low.Percentile(0.99), 9'000u);
}

TEST(HistogramTest, PercentileMonotonicAcrossBuckets) {
  // A distribution spanning many power-of-two bucket boundaries; quantile
  // results must be non-decreasing in q even where the bucket width jumps.
  Histogram h;
  Rng rng(7);
  for (int i = 0; i < 20'000; ++i) h.Record(1 + rng.Uniform(1'000'000));
  uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const uint64_t v = h.Percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_EQ(h.Percentile(1.0), h.max());
}

TEST(HistogramTest, SubBucketEdges) {
  // Values at exact power-of-two and sub-bucket boundaries must round-trip
  // within the documented ~3.2% relative error (1/32 sub-bucket width).
  for (uint64_t v : {1ULL, 31ULL, 32ULL, 33ULL, 63ULL, 64ULL, 65ULL,
                     1023ULL, 1024ULL, 1025ULL, (1ULL << 20),
                     (1ULL << 20) + 1}) {
    Histogram h;
    h.Record(v);
    const double got = static_cast<double>(h.Percentile(0.5));
    EXPECT_NEAR(got, static_cast<double>(v), static_cast<double>(v) * 0.04)
        << "v=" << v;
  }
}

TEST(HistogramTest, NearUint64Max) {
  Histogram h;
  const uint64_t huge = ~0ULL - 1;
  h.Record(huge);
  h.Record(~0ULL);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ULL);
  // Bucketed representative must stay in range (no overflow wrap to 0).
  EXPECT_GE(h.Percentile(0.5), huge / 2);
  EXPECT_EQ(h.Percentile(1.0), ~0ULL);
}

TEST(HistogramTest, ResetThenRecord) {
  Histogram h;
  for (uint64_t v = 1'000; v <= 2'000; ++v) h.Record(v);
  h.Reset();
  h.Record(5);
  h.Record(7);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_EQ(h.sum(), 12u);
  // Percentiles reflect only post-reset samples.
  EXPECT_LE(h.Percentile(0.99), 8u);
}

// ---------------------------------------------------------------- Metrics

TEST(MetricsRegistryTest, InstrumentsAreStableAndShared) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("requests_total", {{"op", "GET"}});
  c->Increment(3);
  // Same name+labels (any order) returns the same instrument.
  EXPECT_EQ(reg.GetCounter("requests_total", {{"op", "GET"}}), c);
  EXPECT_EQ(c->value(), 3u);
  // Different labels make a different series.
  EXPECT_NE(reg.GetCounter("requests_total", {{"op", "SET"}}), c);
  // Find does not create.
  EXPECT_EQ(reg.FindCounter("absent"), nullptr);
  EXPECT_EQ(reg.FindCounter("requests_total", {{"op", "GET"}}), c);
}

TEST(MetricsRegistryTest, LabelOrderIsNormalized) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x", {{"a", "1"}, {"b", "2"}});
  Counter* b = reg.GetCounter("x", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistryTest, SnapshotDelta) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("ops");
  Histogram* h = reg.GetHistogram("lat_us");
  c->Increment(10);
  h->Record(100);
  auto before = reg.TakeSnapshot();
  c->Increment(5);
  h->Record(200);
  auto after = reg.TakeSnapshot();
  auto delta = MetricsRegistry::Delta(after, before);
  EXPECT_EQ(delta.values.at("ops"), 5);
  EXPECT_EQ(delta.values.at("lat_us_count"), 1);
  EXPECT_EQ(delta.values.at("lat_us_sum"), 200);
}

TEST(MetricsRegistryTest, ResetAllKeepsPointersValid) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("ops");
  Gauge* g = reg.GetGauge("depth");
  Histogram* h = reg.GetHistogram("lat_us");
  c->Increment(7);
  g->Set(9);
  h->Record(50);
  reg.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  // The same pointers keep working after the reset.
  c->Increment();
  EXPECT_EQ(reg.FindCounter("ops")->value(), 1u);
}

TEST(MetricsRegistryTest, ExpositionAndParse) {
  MetricsRegistry reg;
  reg.GetCounter("ops", {{"cmd", "SET"}})->Increment(42);
  reg.GetGauge("depth")->Set(-3);
  for (int i = 0; i < 100; ++i) reg.GetHistogram("lat_us")->Record(100);
  const std::string text = reg.ExpositionText();
  EXPECT_NE(text.find("# TYPE ops counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_us summary"), std::string::npos);
  double v = 0;
  ASSERT_TRUE(MetricsRegistry::ParseSeries(text, "ops{cmd=\"SET\"}", &v));
  EXPECT_EQ(v, 42.0);
  ASSERT_TRUE(MetricsRegistry::ParseSeries(text, "depth", &v));
  EXPECT_EQ(v, -3.0);
  ASSERT_TRUE(MetricsRegistry::ParseSeries(text, "lat_us_count", &v));
  EXPECT_EQ(v, 100.0);
  ASSERT_TRUE(
      MetricsRegistry::ParseSeries(text, "lat_us{quantile=\"0.99\"}", &v));
  EXPECT_NEAR(v, 100.0, 5.0);
  EXPECT_FALSE(MetricsRegistry::ParseSeries(text, "absent", &v));
}

// ---------------------------------------------------------------- TraceLog

TEST(TraceLogTest, RecordAndReconstruct) {
  TraceLog node, leader;
  const uint64_t id = 0x700000001ULL;
  node.Record(id, "cmd.receive", 10);
  node.Record(id, "pipeline.enqueue", 12);
  node.Record(id, "append.issue", 15);
  leader.Record(id, "log.append.receive", 16);
  leader.Record(id, "log.quorum.commit", 20, /*detail=*/7);
  node.Record(id, "append.ack", 22);
  node.Record(id, "cmd.release", 22);
  node.Record(999, "cmd.receive", 11);  // unrelated trace

  auto spans = TraceLog::Reconstruct(id, {&node, &leader});
  ASSERT_EQ(spans.size(), 7u);
  const char* expected[] = {"cmd.receive",        "pipeline.enqueue",
                            "append.issue",       "log.append.receive",
                            "log.quorum.commit",  "append.ack",
                            "cmd.release"};
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].stage, expected[i]) << i;
    if (i > 0) {
      EXPECT_GE(spans[i].at_us, spans[i - 1].at_us);
    }
  }
  EXPECT_EQ(spans[4].detail, 7u);
}

TEST(TraceLogTest, ZeroIdIsIgnoredAndCapacityBounded) {
  TraceLog log(/*capacity=*/4);
  log.Record(0, "cmd.receive", 1);  // untraced work records nothing
  EXPECT_TRUE(log.Snapshot().empty());
  for (uint64_t i = 1; i <= 10; ++i) log.Record(i, "s", i);
  const auto spans = log.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().trace_id, 7u);  // oldest dropped
  EXPECT_TRUE(log.ForTrace(1).empty());
  EXPECT_EQ(log.ForTrace(10).size(), 1u);
}

TEST(TraceLogTest, RingEvictionAtCapacityBoundary) {
  TraceLog log(/*capacity=*/4);
  // Exactly at capacity: nothing evicted, insertion order preserved.
  for (uint64_t i = 1; i <= 4; ++i) log.Record(i, "s", 100 + i, i);
  auto spans = log.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].trace_id, i + 1);
    EXPECT_EQ(spans[i].at_us, 101 + i);
    EXPECT_EQ(spans[i].detail, i + 1);
  }
  // One past capacity: exactly the oldest span falls off.
  log.Record(5, "s", 105, 5);
  spans = log.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().trace_id, 2u);
  EXPECT_EQ(spans.back().trace_id, 5u);
  // A full extra lap lands back on a full ring with the newest 4.
  for (uint64_t i = 6; i <= 9; ++i) log.Record(i, "s", 100 + i, i);
  spans = log.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().trace_id, 6u);
  EXPECT_EQ(spans.back().trace_id, 9u);
  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.size(), 0u);
}

TEST(TraceLogTest, ReconstructStableOrderOnEqualTimestamps) {
  // Same-stamp spans must keep per-log insertion order, and the merge order
  // must be the log-argument order — i.e. stable sort, never reshuffled.
  TraceLog a, b;
  const uint64_t id = 42;
  a.Record(id, "first", 100);
  a.Record(id, "second", 100);
  a.Record(id, "third", 100);
  b.Record(id, "fourth", 100);
  b.Record(id, "fifth", 100);
  const auto spans = TraceLog::Reconstruct(id, {&a, &b});
  ASSERT_EQ(spans.size(), 5u);
  const char* expected[] = {"first", "second", "third", "fourth", "fifth"};
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].stage, expected[i]) << i;
  }
}

TEST(TraceLogTest, LongStageNameIsTruncatedNotCorrupted) {
  TraceLog log(8);
  const std::string longname(200, 'x');
  log.Record(1, longname, 5);
  const auto spans = log.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].stage, longname.substr(0, 47));
}

TEST(TraceLogTest, ConcurrentRecordAndSnapshot) {
  // Writers hammer a small ring while a reader snapshots concurrently; every
  // span a snapshot yields must be internally consistent (stage matches the
  // trace id it was written with). TSan-checked via scripts/check.sh.
  TraceLog log(/*capacity=*/64);
  std::atomic<bool> stop{false};
  std::thread writers[2];
  for (int w = 0; w < 2; ++w) {
    writers[w] = std::thread([&log, &stop, w] {
      uint64_t n = 1;
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t id = (static_cast<uint64_t>(w + 1) << 32) | n++;
        log.Record(id, w == 0 ? "even.stage" : "odd.stage", n);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    for (const TraceSpan& s : log.Snapshot()) {
      ASSERT_NE(s.trace_id, 0u);
      const bool even = (s.trace_id >> 32) == 1;
      EXPECT_EQ(s.stage, even ? "even.stage" : "odd.stage");
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();
}

TEST(TraceSamplerTest, RateGatesTraceIds) {
  TraceSampler off(0);
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(off.Sample());
  TraceSampler all(1);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(all.Sample());
  TraceSampler tenth(10);
  int hits = 0;
  for (int i = 0; i < 100; ++i) hits += tenth.Sample() ? 1 : 0;
  EXPECT_EQ(hits, 10);
  // MakeTraceId keeps origins apart and counters within their 40-bit lane.
  EXPECT_NE(MakeTraceId(1, 5), MakeTraceId(2, 5));
  EXPECT_EQ(MakeTraceId(3, 5) >> 40, 3u);
}

// ------------------------------------------------------------ trace export

TEST(TraceExportTest, JsonlRoundTrip) {
  TraceLog log(16);
  log.Record(7, "cmd.receive", 100, 1);
  log.Record(7, "reply.release", 250, 2);
  log.Record(9, "cmd.receive", 300);
  const std::string jsonl = ExportSpansJsonl(log, "server");
  std::vector<ExportedSpan> spans;
  ASSERT_EQ(ParseSpansJsonl(jsonl, &spans), 3u);
  EXPECT_EQ(spans[0].proc, "server");
  EXPECT_EQ(spans[0].trace_id, 7u);
  EXPECT_EQ(spans[0].stage, "cmd.receive");
  EXPECT_EQ(spans[0].mono_us, 100u);
  EXPECT_EQ(spans[0].detail, 1u);
  // Wall stamps preserve monotonic deltas exactly (same anchor pair).
  EXPECT_EQ(spans[1].wall_us - spans[0].wall_us, 150u);
  const auto by_trace = GroupSpansByTrace(std::move(spans));
  ASSERT_EQ(by_trace.size(), 2u);
  EXPECT_EQ(by_trace.at(7).size(), 2u);
  EXPECT_EQ(by_trace.at(9).size(), 1u);
}

TEST(TraceExportTest, WritePathReportTelescopes) {
  // A synthetic two-process trace covering the full chain: per-stage deltas
  // must telescope to exactly the end-to-end latency.
  const std::vector<std::string>& chain = WritePathChain();
  std::vector<ExportedSpan> spans;
  uint64_t at = 1000;
  for (const std::string& stage : chain) {
    ExportedSpan s;
    s.proc = stage.rfind("log.", 0) == 0 ? "txlogd-1" : "server";
    s.trace_id = 11;
    s.stage = stage;
    s.wall_us = at;
    at += 10;
    spans.push_back(std::move(s));
  }
  // A second trace missing the middle stages still bridges front to back.
  spans.push_back(ExportedSpan{"server", 12, chain.front(), 5000, 0, 0});
  spans.push_back(ExportedSpan{"server", 12, chain.back(), 5400, 0, 0});
  const auto by_trace = GroupSpansByTrace(std::move(spans));
  const WritePathReport report = BuildWritePathReport(by_trace, chain);
  EXPECT_EQ(report.traces, 2u);
  EXPECT_EQ(report.complete_chains, 2u);
  ASSERT_EQ(report.end_to_end_us.count(), 2u);
  uint64_t delta_sum = 0;
  for (const StageDelta& d : report.deltas) delta_sum += d.latency_us.sum();
  EXPECT_EQ(delta_sum, report.end_to_end_us.sum());
  const uint64_t full_chain_total = 10 * (chain.size() - 1);
  EXPECT_EQ(report.end_to_end_us.sum(), full_chain_total + 400);
}

TEST(MetricsTest, ExpositionHelpAndLabelEscaping) {
  MetricsRegistry reg;
  reg.SetHelp("ops", "operations by command");
  reg.GetCounter("ops", {{"cmd", "we\"ird\\name\nx"}})->Increment(3);
  reg.GetCounter("plain")->Increment();
  const std::string text = reg.ExpositionText();
  EXPECT_NE(text.find("# HELP ops operations by command"), std::string::npos);
  // Families without registered help still get a HELP line (required to
  // precede TYPE + samples in the text format).
  EXPECT_NE(text.find("# HELP plain"), std::string::npos);
  EXPECT_NE(text.find("ops{cmd=\"we\\\"ird\\\\name\\nx\"} 3"),
            std::string::npos);
  EXPECT_EQ(MetricsRegistry::EscapeLabelValue("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd");
}

}  // namespace
}  // namespace memdb
