#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/coding.h"
#include "common/crc.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/slice.h"
#include "common/status.h"

namespace memdb {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");

  EXPECT_TRUE(Status::WrongType().IsWrongType());
  EXPECT_TRUE(Status::ConditionFailed().IsConditionFailed());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::Corruption("bad crc").IsCorruption());
  EXPECT_TRUE(Status::Moved("MOVED 1 n2").IsMoved());
  EXPECT_TRUE(Status::Ask("ASK 1 n2").IsAsk());
}

TEST(StatusTest, ResultValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(StatusTest, ResultError) {
  Result<int> r = Status::NotFound();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnIfError(int x) {
  MEMDB_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_FALSE(UseReturnIfError(-1).ok());
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> UseAssignOrReturn(int x) {
  MEMDB_ASSIGN_OR_RETURN(int v, Doubled(x));
  return v + 1;
}

TEST(StatusTest, AssignOrReturnMacro) {
  auto ok = UseAssignOrReturn(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_FALSE(UseAssignOrReturn(-3).ok());
}

// ---------------------------------------------------------------- Slice

TEST(SliceTest, Basics) {
  std::string s = "hello";
  Slice sl(s);
  EXPECT_EQ(sl.size(), 5u);
  EXPECT_EQ(sl.ToString(), "hello");
  EXPECT_EQ(sl, Slice("hello"));
  EXPECT_NE(sl, Slice("hellO"));
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
}

// ---------------------------------------------------------------- CRC

TEST(CrcTest, Crc16KnownVector) {
  // "123456789" -> 0x31C3 for CRC16-CCITT/XMODEM (value in the Redis
  // Cluster specification).
  EXPECT_EQ(Crc16("123456789", 9), 0x31C3);
}

TEST(CrcTest, Crc16EmptyIsZero) { EXPECT_EQ(Crc16("", 0), 0); }

TEST(CrcTest, Crc64Properties) {
  // Streaming equals one-shot.
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint64_t one_shot = Crc64(0, data.data(), data.size());
  uint64_t streamed = 0;
  for (char c : data) streamed = Crc64(streamed, &c, 1);
  EXPECT_EQ(one_shot, streamed);
  EXPECT_NE(one_shot, 0u);
  // Sensitivity to single-bit change.
  std::string data2 = data;
  data2[7] ^= 1;
  EXPECT_NE(Crc64(0, data2.data(), data2.size()), one_shot);
}

TEST(CrcTest, HashSlotInRangeAndStable) {
  std::set<uint16_t> slots;
  for (int i = 0; i < 1000; ++i) {
    std::string key = "key:" + std::to_string(i);
    uint16_t slot = KeyHashSlot(key);
    EXPECT_LT(slot, kNumSlots);
    EXPECT_EQ(slot, KeyHashSlot(key));  // deterministic
    slots.insert(slot);
  }
  // Keys should spread over many slots.
  EXPECT_GT(slots.size(), 800u);
}

TEST(CrcTest, HashTagsRouteToSameSlot) {
  EXPECT_EQ(KeyHashSlot("{user1000}.following"),
            KeyHashSlot("{user1000}.followers"));
  EXPECT_EQ(KeyHashSlot("foo{bar}baz"), KeyHashSlot("{bar}"));
  // Empty tag means the whole key is hashed.
  const std::string k = "foo{}{bar}";
  EXPECT_EQ(KeyHashSlot(k), Crc16(k.data(), k.size()) % 16384);
  // Only the first '{' opens a tag.
  EXPECT_EQ(KeyHashSlot("foo{{bar}}zap"), KeyHashSlot("{{bar}"));
}

// ---------------------------------------------------------------- Coding

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  Decoder dec(buf);
  uint16_t a;
  uint32_t b;
  uint64_t c;
  ASSERT_TRUE(dec.GetFixed16(&a));
  ASSERT_TRUE(dec.GetFixed32(&b));
  ASSERT_TRUE(dec.GetFixed64(&c));
  EXPECT_EQ(a, 0xBEEF);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_EQ(c, 0x0123456789ABCDEFULL);
  EXPECT_TRUE(dec.Empty());
}

TEST(CodingTest, VarintRoundTrip) {
  std::string buf;
  const uint64_t values[] = {0,       1,        127,        128,
                             300,     16383,    16384,      1ULL << 32,
                             ~0ULL,   42,       (1ULL << 56) + 3};
  for (uint64_t v : values) PutVarint64(&buf, v);
  Decoder dec(buf);
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(dec.GetVarint64(&got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(dec.Empty());
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  Decoder dec(buf);
  std::string a, b, c;
  ASSERT_TRUE(dec.GetLengthPrefixed(&a));
  ASSERT_TRUE(dec.GetLengthPrefixed(&b));
  ASSERT_TRUE(dec.GetLengthPrefixed(&c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string(1000, 'x'));
}

TEST(CodingTest, DoubleRoundTrip) {
  std::string buf;
  PutDouble(&buf, 3.14159);
  PutDouble(&buf, -0.0);
  PutDouble(&buf, 1e300);
  Decoder dec(buf);
  double a, b, c;
  ASSERT_TRUE(dec.GetDouble(&a));
  ASSERT_TRUE(dec.GetDouble(&b));
  ASSERT_TRUE(dec.GetDouble(&c));
  EXPECT_DOUBLE_EQ(a, 3.14159);
  EXPECT_DOUBLE_EQ(b, -0.0);
  EXPECT_DOUBLE_EQ(c, 1e300);
}

TEST(CodingTest, TruncatedInputFails) {
  std::string buf;
  PutFixed64(&buf, 1);
  Decoder dec(Slice(buf.data(), 4));
  uint64_t v;
  EXPECT_FALSE(dec.GetFixed64(&v));

  std::string buf2;
  PutLengthPrefixed(&buf2, "hello world");
  Decoder dec2(Slice(buf2.data(), 3));
  std::string s;
  EXPECT_FALSE(dec2.GetLengthPrefixed(&s));
}

TEST(CodingTest, VarintOverlongFails) {
  std::string buf(11, '\xff');  // never terminates within 10 bytes
  Decoder dec(buf);
  uint64_t v;
  EXPECT_FALSE(dec.GetVarint64(&v));
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true;
  bool any_diff_seed = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t x = a.Next(), y = b.Next(), z = c.Next();
    all_equal &= (x == y);
    any_diff_seed |= (x != z);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, RandomStringLengthAndCharset) {
  Rng rng(9);
  std::string s = rng.RandomString(64);
  EXPECT_EQ(s.size(), 64u);
  for (char ch : s) EXPECT_TRUE(isalnum(static_cast<unsigned char>(ch)));
}

TEST(RngTest, SkewedStaysInRange) {
  Rng rng(11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.Skewed(100, 0.7);
    ASSERT_LT(v, 100u);
    counts[v]++;
  }
  // Skew should favor small values: far more mass below 10 than the 10%
  // a uniform distribution would place there.
  int low = 0;
  for (auto& [v, n] : counts) {
    if (v < 10) low += n;
  }
  EXPECT_GT(low, 2500);
}

// ---------------------------------------------------------------- Histogram

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.Mean(), 500.5, 0.01);
  // Bucketed percentiles: allow ~5% relative error.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 500.0, 30.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 990.0, 50.0);
  EXPECT_EQ(h.Percentile(1.0), 1000u);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, MergeMatchesCombined) {
  Histogram a, b, combined;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.Uniform(100000);
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.Percentile(0.5), combined.Percentile(0.5));
  EXPECT_EQ(a.Percentile(0.99), combined.Percentile(0.99));
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  h.Record(3'600'000'000ULL);  // one hour in us
  EXPECT_EQ(h.max(), 3'600'000'000ULL);
  EXPECT_EQ(h.Percentile(1.0), 3'600'000'000ULL);
  double p50 = static_cast<double>(h.Percentile(0.5));
  EXPECT_NEAR(p50, 3.6e9, 3.6e9 * 0.04);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(10);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

}  // namespace
}  // namespace memdb
