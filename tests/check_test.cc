#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/linearizability.h"
#include "check/tester.h"
#include "memorydb/shard.h"
#include "redisbaseline/baseline_node.h"
#include "sim/simulation.h"
#include "storage/object_store.h"

namespace memdb::check {
namespace {

using resp::Value;
using sim::kMs;
using sim::kSec;
using sim::NodeId;

Operation Op(const std::vector<std::string>& input, Value output,
             uint64_t invoke, uint64_t ret) {
  Operation op;
  op.input = input;
  op.output = std::move(output);
  op.invoke_time = invoke;
  op.return_time = ret;
  return op;
}

// ------------------------------------------------------------- unit tests

TEST(LinearizabilityTest, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(CheckKvHistory({}).linearizable);
}

TEST(LinearizabilityTest, SequentialReadYourWrite) {
  std::vector<Operation> h = {
      Op({"SET", "x", "1"}, Value::Ok(), 0, 10),
      Op({"GET", "x"}, Value::Bulk("1"), 20, 30),
  };
  EXPECT_TRUE(CheckKvHistory(h).linearizable);
}

TEST(LinearizabilityTest, StaleReadAfterAckedWriteViolates) {
  std::vector<Operation> h = {
      Op({"SET", "x", "1"}, Value::Ok(), 0, 10),
      Op({"SET", "x", "2"}, Value::Ok(), 20, 30),
      Op({"GET", "x"}, Value::Bulk("1"), 40, 50),  // lost the second write
  };
  CheckResult r = CheckKvHistory(h);
  EXPECT_TRUE(r.conclusive);
  EXPECT_FALSE(r.linearizable);
}

TEST(LinearizabilityTest, ConcurrentWritesEitherOrderOk) {
  std::vector<Operation> h = {
      Op({"SET", "x", "a"}, Value::Ok(), 0, 100),
      Op({"SET", "x", "b"}, Value::Ok(), 0, 100),  // concurrent
      Op({"GET", "x"}, Value::Bulk("a"), 200, 210),
  };
  EXPECT_TRUE(CheckKvHistory(h).linearizable);
  h[2].output = Value::Bulk("b");
  EXPECT_TRUE(CheckKvHistory(h).linearizable);
  h[2].output = Value::Bulk("c");
  EXPECT_FALSE(CheckKvHistory(h).linearizable);
}

TEST(LinearizabilityTest, ReadMustFallWithinWriteWindow) {
  // The read overlaps the write, so it may see either old or new value.
  std::vector<Operation> h = {
      Op({"SET", "x", "new"}, Value::Ok(), 50, 150),
      Op({"GET", "x"}, Value::Null(), 60, 70),  // old (absent) value: ok
  };
  EXPECT_TRUE(CheckKvHistory(h).linearizable);
  // But a read strictly after the write's return must see it.
  h[1] = Op({"GET", "x"}, Value::Null(), 200, 210);
  EXPECT_FALSE(CheckKvHistory(h).linearizable);
}

TEST(LinearizabilityTest, IndeterminateWriteMayOrMayNotApply) {
  // A timed-out SET can be linearized anywhere after invoke — or never
  // observed (placed after everything).
  std::vector<Operation> h = {
      Op({"SET", "x", "1"}, Value::Ok(), 0, 10),
      Op({"SET", "x", "2"}, Value::Null(), 20, kNeverReturned),  // timeout
      Op({"GET", "x"}, Value::Bulk("1"), 30, 40),  // did not apply (yet)
  };
  EXPECT_TRUE(CheckKvHistory(h).linearizable);
  h[2].output = Value::Bulk("2");  // applied before the read
  EXPECT_TRUE(CheckKvHistory(h).linearizable);
  h[2].output = Value::Bulk("3");  // never written by anyone
  EXPECT_FALSE(CheckKvHistory(h).linearizable);
}

TEST(LinearizabilityTest, CounterSemantics) {
  std::vector<Operation> h = {
      Op({"INCR", "c"}, Value::Integer(1), 0, 10),
      Op({"INCR", "c"}, Value::Integer(2), 20, 30),
      Op({"GET", "c"}, Value::Bulk("2"), 40, 50),
  };
  EXPECT_TRUE(CheckKvHistory(h).linearizable);
  // Duplicate increment result = violation.
  h[1].output = Value::Integer(1);
  EXPECT_FALSE(CheckKvHistory(h).linearizable);
}

TEST(LinearizabilityTest, AppendOrderObservable) {
  std::vector<Operation> h = {
      Op({"APPEND", "x", "a"}, Value::Integer(1), 0, 100),
      Op({"APPEND", "x", "b"}, Value::Integer(2), 0, 100),  // concurrent
      Op({"GET", "x"}, Value::Bulk("ab"), 200, 210),
  };
  EXPECT_TRUE(CheckKvHistory(h).linearizable);
  h[2].output = Value::Bulk("ba");
  // "ba" requires b first, but then b's APPEND must return length 1, not 2.
  EXPECT_FALSE(CheckKvHistory(h).linearizable);
}

TEST(LinearizabilityTest, PerKeyPartitioning) {
  // Violation confined to one key is found even among other keys' traffic.
  std::vector<Operation> h = {
      Op({"SET", "a", "1"}, Value::Ok(), 0, 10),
      Op({"SET", "b", "1"}, Value::Ok(), 0, 10),
      Op({"GET", "a"}, Value::Bulk("1"), 20, 30),
      Op({"GET", "b"}, Value::Bulk("999"), 20, 30),
  };
  EXPECT_FALSE(CheckKvHistory(h).linearizable);
}

TEST(LinearizabilityTest, DelAndExists) {
  std::vector<Operation> h = {
      Op({"SET", "x", "1"}, Value::Ok(), 0, 10),
      Op({"EXISTS", "x"}, Value::Integer(1), 20, 30),
      Op({"DEL", "x"}, Value::Integer(1), 40, 50),
      Op({"EXISTS", "x"}, Value::Integer(0), 60, 70),
      Op({"DEL", "x"}, Value::Integer(0), 80, 90),
  };
  EXPECT_TRUE(CheckKvHistory(h).linearizable);
}

// ------------------------------------------------------------- generator

TEST(CommandGeneratorTest, ModelSubsetOnly) {
  engine::Engine spec;
  CommandGenerator::Options opts;
  CommandGenerator gen(spec, opts, 42);
  for (int i = 0; i < 200; ++i) {
    auto argv = gen.Next();
    ASSERT_FALSE(argv.empty());
    const std::string& c = argv[0];
    EXPECT_TRUE(c == "GET" || c == "SET" || c == "DEL" || c == "APPEND" ||
                c == "INCR" || c == "EXISTS")
        << c;
  }
}

TEST(CommandGeneratorTest, FullApiGeneratesValidArity) {
  engine::Engine spec;
  CommandGenerator::Options opts;
  opts.model_commands_only = false;
  CommandGenerator gen(spec, opts, 43);
  engine::Engine scratch;
  int wrong_arity = 0;
  for (int i = 0; i < 2000; ++i) {
    auto argv = gen.Next();
    engine::ExecContext ctx;
    ctx.now_ms = 1;
    ctx.rng = &scratch.rng();
    Value v = scratch.Execute(argv, &ctx);
    if (v.IsError() &&
        v.str.find("wrong number of arguments") != std::string::npos) {
      ++wrong_arity;
    }
  }
  // The generator respects arity specs (odd-pair commands like MSET/HSET
  // may still occasionally mismatch).
  EXPECT_LT(wrong_arity, 400);
}

// ------------------------------------------------------------ end to end

TEST(ConsistencyE2E, MemoryDbLinearizableUnderFailover) {
  sim::Simulation sim(909);
  storage::ObjectStore s3(&sim, sim.AddHost(0));
  memorydb::Shard::Options so;
  so.num_replicas = 2;
  so.object_store = s3.id();
  memorydb::Shard shard(&sim, so);
  sim.RunFor(3 * kSec);

  std::vector<std::unique_ptr<HistoryClient>> clients;
  for (int c = 0; c < 4; ++c) {
    HistoryClient::Options ho;
    ho.client_id = c;
    ho.total_ops = 120;
    ho.seed = 1000 + static_cast<uint64_t>(c);
    CommandGenerator::Options gen;
    gen.unique_values = true;
    clients.push_back(std::make_unique<HistoryClient>(
        &sim, sim.AddHost(0), shard.node_ids(), ho, gen));
  }
  // Crash the primary mid-workload, restart it later.
  sim.RunFor(150 * kMs);
  memorydb::Node* primary = shard.Primary();
  ASSERT_NE(primary, nullptr);
  size_t primary_idx = 0;
  for (size_t i = 0; i < shard.num_nodes(); ++i) {
    if (shard.node(i) == primary) primary_idx = i;
  }
  shard.CrashNode(primary_idx);
  sim.RunFor(2 * kSec);
  shard.RestartNode(primary_idx);

  for (int t = 0; t < 120000; ++t) {
    bool all_done = true;
    for (auto& c : clients) all_done &= c->finished();
    if (all_done) break;
    sim.RunFor(5 * kMs);
  }
  std::vector<Operation> history;
  for (auto& c : clients) {
    ASSERT_TRUE(c->finished());
    for (const Operation& op : c->history()) history.push_back(op);
  }
  ASSERT_GT(history.size(), 200u);
  CheckResult r = CheckKvHistory(history);
  EXPECT_TRUE(r.conclusive);
  EXPECT_TRUE(r.linearizable)
      << "MemoryDB produced a non-linearizable history";
}

TEST(ConsistencyE2E, BaselineViolatesLinearizabilityOnFailover) {
  // Aggregate across seeds: asynchronous replication loses acked writes on
  // failover, which the checker flags as a linearizability violation.
  int violations = 0;
  for (uint64_t seed = 1; seed <= 5 && violations == 0; ++seed) {
    sim::Simulation sim(seed);
    std::vector<NodeId> ids;
    std::vector<std::unique_ptr<redisbaseline::BaselineNode>> nodes;
    for (int i = 0; i < 3; ++i) {
      redisbaseline::BaselineConfig c;
      c.start_as_primary = (i == 0);
      c.repl_flush_interval = 40 * kMs;  // wide loss window
      const NodeId id = sim.AddHost(static_cast<sim::AzId>(i % 3));
      ids.push_back(id);
      nodes.push_back(
          std::make_unique<redisbaseline::BaselineNode>(&sim, id, c));
    }
    for (auto& n : nodes) {
      n->SetPeers(ids);
      n->SetPrimary(ids[0]);
    }
    std::vector<std::unique_ptr<HistoryClient>> clients;
    for (int c = 0; c < 4; ++c) {
      HistoryClient::Options ho;
      ho.client_id = c;
      ho.total_ops = 400;  // keep traffic flowing well past the failover
      ho.max_think_time = 1 * kMs;
      ho.rpc_timeout = 200 * kMs;
      ho.seed = seed * 100 + static_cast<uint64_t>(c);
      CommandGenerator::Options gen;
      gen.unique_values = true;  // lost writes cannot be masked
      clients.push_back(std::make_unique<HistoryClient>(
          &sim, sim.AddHost(0), ids, ho, gen));
    }
    sim.RunFor(100 * kMs);
    sim.Crash(ids[0]);  // kill the primary mid-burst
    for (int t = 0; t < 120000; ++t) {
      bool all_done = true;
      for (auto& c : clients) all_done &= c->finished();
      if (all_done) break;
      sim.RunFor(5 * kMs);
    }
    std::vector<Operation> history;
    for (auto& c : clients) {
      if (!c->finished()) continue;
      for (const Operation& op : c->history()) history.push_back(op);
    }
    CheckResult r = CheckKvHistory(history);
    if (r.conclusive && !r.linearizable) ++violations;
  }
  EXPECT_GT(violations, 0)
      << "expected at least one acked-write-loss violation across seeds";
}

}  // namespace
}  // namespace memdb::check
