// Loopback-socket tests for the real I/O path (src/net): partial-frame
// reassembly, deep pipelining, protocol guard rails, output-buffer-limit
// eviction, maxclients, INFO/METRICS over the wire, and clean shutdown
// with connections open. Every test drives a real RespServer through real
// TCP sockets on 127.0.0.1.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "net/server.h"
#include "resp/resp.h"

namespace memdb::net {
namespace {

using engine::Engine;
using resp::Value;

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// A small blocking RESP client over a real socket.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    struct timeval tv{5, 0};  // recv deadline: tests must never hang
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  bool Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool SendCommand(const std::vector<std::string>& argv) {
    return Send(resp::EncodeCommand(argv));
  }

  // Reads until `n` replies decoded. Fails the vector short on EOF/timeout.
  std::vector<Value> ReadReplies(size_t n) {
    std::vector<Value> out;
    char buf[16 * 1024];
    while (out.size() < n) {
      Value v;
      const resp::DecodeStatus st = dec_.Decode(&v);
      if (st == resp::DecodeStatus::kOk) {
        out.push_back(std::move(v));
        continue;
      }
      if (st == resp::DecodeStatus::kError) break;
      const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r <= 0) break;
      dec_.Feed(Slice(buf, static_cast<size_t>(r)));
    }
    return out;
  }

  Value RoundTrip(const std::vector<std::string>& argv) {
    if (!SendCommand(argv)) return Value::Error("send failed");
    std::vector<Value> replies = ReadReplies(1);
    return replies.empty() ? Value::Error("no reply") : replies[0];
  }

  // Drains until the server closes the connection (EOF or reset). Returns
  // true if the close was observed before the recv deadline.
  bool WaitForClose() {
    char buf[16 * 1024];
    for (;;) {
      const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r == 0) return true;
      if (r < 0) return errno == ECONNRESET || errno == EPIPE;
    }
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  resp::Decoder dec_;
};

struct ServerFixture {
  explicit ServerFixture(ServerConfig config = {}) {
    config.port = 0;  // kernel-assigned; no collisions across tests
    config.loop_timeout_ms = 10;
    engine = std::make_unique<Engine>();
    server = std::make_unique<RespServer>(engine.get(), config);
    const Status s = server->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  ~ServerFixture() { server->Stop(); }

  double Metric(const std::string& series) {
    TestClient c(server->port());
    const Value v = c.RoundTrip({"METRICS"});
    double out = 0;
    MetricsRegistry::ParseSeries(v.str, series, &out);
    return out;
  }

  std::unique_ptr<Engine> engine;
  std::unique_ptr<RespServer> server;
};

TEST(NetServerTest, PingSetGetRoundTrip) {
  ServerFixture f;
  TestClient c(f.server->port());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.RoundTrip({"PING"}).str, "PONG");
  EXPECT_EQ(c.RoundTrip({"SET", "k", "hello"}).str, "OK");
  const Value got = c.RoundTrip({"GET", "k"});
  EXPECT_EQ(got.type, resp::Type::kBulkString);
  EXPECT_EQ(got.str, "hello");
  EXPECT_TRUE(c.RoundTrip({"GET", "missing"}).IsNull());
}

TEST(NetServerTest, PartialFrameReassemblyAcrossReads) {
  ServerFixture f;
  TestClient c(f.server->port());
  ASSERT_TRUE(c.ok());
  const std::string wire = resp::EncodeCommand({"SET", "frag", "mented"});
  // Dribble the frame a few bytes at a time with pauses, so the server
  // observes many partial reads and must reassemble across them.
  for (size_t off = 0; off < wire.size(); off += 3) {
    ASSERT_TRUE(c.Send(wire.substr(off, 3)));
    SleepMs(5);
  }
  std::vector<Value> replies = c.ReadReplies(1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].str, "OK");
  EXPECT_EQ(c.RoundTrip({"GET", "frag"}).str, "mented");
}

TEST(NetServerTest, InlineCommands) {
  ServerFixture f;
  TestClient c(f.server->port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.Send("PING\r\n"));
  std::vector<Value> replies = c.ReadReplies(1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].str, "PONG");
  // Inline with arguments and a bare-\n terminator, mixed with multibulk.
  ASSERT_TRUE(c.Send("SET inlined yes\n"));
  ASSERT_TRUE(c.Send(resp::EncodeCommand({"GET", "inlined"})));
  replies = c.ReadReplies(2);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].str, "OK");
  EXPECT_EQ(replies[1].str, "yes");
}

TEST(NetServerTest, DeeplyPipelinedBatches) {
  ServerConfig config;
  config.io_threads = 4;  // exercise the io-thread fan-out under load
  ServerFixture f(config);
  TestClient c(f.server->port());
  ASSERT_TRUE(c.ok());
  constexpr int kPipeline = 2000;
  std::string wire;
  for (int i = 0; i < kPipeline; ++i) {
    wire += resp::EncodeCommand({"SET", "k" + std::to_string(i),
                                 "v" + std::to_string(i)});
    wire += resp::EncodeCommand({"GET", "k" + std::to_string(i)});
  }
  ASSERT_TRUE(c.Send(wire));
  std::vector<Value> replies = c.ReadReplies(2 * kPipeline);
  ASSERT_EQ(replies.size(), static_cast<size_t>(2 * kPipeline));
  for (int i = 0; i < kPipeline; ++i) {
    EXPECT_EQ(replies[static_cast<size_t>(2 * i)].str, "OK");
    EXPECT_EQ(replies[static_cast<size_t>(2 * i + 1)].str,
              "v" + std::to_string(i));
  }
  // The whole pipeline must have been executed in few, large batches.
  EXPECT_GE(f.Metric("net_batch_commands_sum"), 2.0 * kPipeline);
  const double count = f.Metric("net_batch_commands_count");
  ASSERT_GT(count, 0.0);
  EXPECT_LT(count, 2.0 * kPipeline);  // strictly batched, not one-by-one
}

TEST(NetServerTest, OversizedArgumentRejected) {
  ServerConfig config;
  config.decode.max_bulk_bytes = 1024;
  ServerFixture f(config);
  TestClient c(f.server->port());
  ASSERT_TRUE(c.ok());
  // Declared 1MB argument: rejected from the header alone, connection torn
  // down after the error reply.
  ASSERT_TRUE(c.Send("*2\r\n$3\r\nGET\r\n$1048576\r\n"));
  std::vector<Value> replies = c.ReadReplies(1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].IsError());
  EXPECT_NE(replies[0].str.find("Protocol error"), std::string::npos);
  EXPECT_TRUE(c.WaitForClose());
  EXPECT_GE(f.Metric("net_protocol_errors_total"), 1.0);
}

TEST(NetServerTest, MalformedFrameClosesConnection) {
  ServerFixture f;
  TestClient c(f.server->port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.Send("*1\r\n$3\r\nabcd\r\n"));  // declared 3 bytes, sent 4
  std::vector<Value> replies = c.ReadReplies(1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].IsError());
  EXPECT_TRUE(c.WaitForClose());
}

TEST(NetServerTest, SlowClientOutputBufferEviction) {
  ServerConfig config;
  config.output_hard_bytes = 256 * 1024;
  ServerFixture f(config);

  TestClient setter(f.server->port());
  ASSERT_TRUE(setter.ok());
  EXPECT_EQ(setter.RoundTrip({"SET", "big", std::string(32 * 1024, 'x')}).str,
            "OK");

  // The slow client pipelines 100 GETs of the 32KB value (3.2MB of
  // replies) and never reads: the reply backlog blows the hard limit and
  // the server must evict rather than buffer without bound or stall.
  TestClient slow(f.server->port());
  ASSERT_TRUE(slow.ok());
  std::string wire;
  for (int i = 0; i < 100; ++i) wire += resp::EncodeCommand({"GET", "big"});
  ASSERT_TRUE(slow.Send(wire));
  EXPECT_TRUE(slow.WaitForClose());

  // The loop stayed responsive throughout and recorded the eviction.
  EXPECT_EQ(setter.RoundTrip({"PING"}).str, "PONG");
  EXPECT_GE(f.Metric("net_evicted_clients_total"), 1.0);
}

TEST(NetServerTest, MaxClientsRejectsExcessConnections) {
  ServerConfig config;
  config.maxclients = 2;
  ServerFixture f(config);
  TestClient c1(f.server->port());
  TestClient c2(f.server->port());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  // Ensure both are registered with the loop before the third connects.
  EXPECT_EQ(c1.RoundTrip({"PING"}).str, "PONG");
  EXPECT_EQ(c2.RoundTrip({"PING"}).str, "PONG");

  TestClient c3(f.server->port());
  ASSERT_TRUE(c3.ok());
  std::vector<Value> replies = c3.ReadReplies(1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].IsError());
  EXPECT_NE(replies[0].str.find("max number of clients"), std::string::npos);
  EXPECT_TRUE(c3.WaitForClose());
  EXPECT_EQ(c1.RoundTrip({"PING"}).str, "PONG");  // survivors unaffected
}

TEST(NetServerTest, InfoClientsSectionOverWire) {
  ServerFixture f;
  TestClient c1(f.server->port());
  TestClient c2(f.server->port());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c2.RoundTrip({"PING"}).str, "PONG");
  const Value info = c1.RoundTrip({"INFO", "clients"});
  ASSERT_EQ(info.type, resp::Type::kBulkString);
  EXPECT_NE(info.str.find("# Clients"), std::string::npos);
  EXPECT_NE(info.str.find("connected_clients:2"), std::string::npos);
  EXPECT_NE(info.str.find("blocked_clients:0"), std::string::npos);
  EXPECT_NE(info.str.find("client_recent_max_input_buffer:"),
            std::string::npos);
}

TEST(NetServerTest, MetricsExposeBytesAndBatches) {
  ServerFixture f;
  TestClient c(f.server->port());
  ASSERT_TRUE(c.ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(c.RoundTrip({"SET", "k" + std::to_string(i), "v"}).str, "OK");
  }
  const Value v = c.RoundTrip({"METRICS"});
  ASSERT_EQ(v.type, resp::Type::kBulkString);
  double bytes_in = 0, bytes_out = 0, batches = 0, connected = 0;
  EXPECT_TRUE(
      MetricsRegistry::ParseSeries(v.str, "net_input_bytes_total", &bytes_in));
  EXPECT_TRUE(MetricsRegistry::ParseSeries(v.str, "net_output_bytes_total",
                                           &bytes_out));
  EXPECT_TRUE(MetricsRegistry::ParseSeries(v.str, "net_batch_commands_count",
                                           &batches));
  EXPECT_TRUE(MetricsRegistry::ParseSeries(v.str, "net_connected_clients",
                                           &connected));
  EXPECT_GT(bytes_in, 0.0);
  EXPECT_GT(bytes_out, 0.0);
  EXPECT_GT(batches, 0.0);
  EXPECT_EQ(connected, 1.0);
}

TEST(NetServerTest, QuitFlushesReplyThenCloses) {
  ServerFixture f;
  TestClient c(f.server->port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.SendCommand({"QUIT"}));
  std::vector<Value> replies = c.ReadReplies(1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].str, "OK");
  EXPECT_TRUE(c.WaitForClose());
}

TEST(NetServerTest, CleanShutdownWithConnectionsOpen) {
  auto f = std::make_unique<ServerFixture>();
  TestClient c1(f->server->port());
  TestClient c2(f->server->port());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c1.RoundTrip({"SET", "k", "v"}).str, "OK");
  // In-flight unread bytes on c2 while the server goes down.
  ASSERT_TRUE(c2.SendCommand({"PING"}));
  f->server->Stop();
  // Stop() is idempotent and the destructor repeats it harmlessly.
  f.reset();
  EXPECT_TRUE(c1.WaitForClose());
  EXPECT_TRUE(c2.WaitForClose());
}

TEST(NetServerTest, StopIsIdempotentAndRestartIsIndependent) {
  Engine engine;
  ServerConfig config;
  config.port = 0;
  config.loop_timeout_ms = 10;
  auto server = std::make_unique<RespServer>(&engine, config);
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();
  {
    TestClient c(port);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c.RoundTrip({"SET", "persist", "1"}).str, "OK");
  }
  server->Stop();
  server->Stop();
  server.reset();

  // A fresh server over the same engine sees the data.
  auto server2 = std::make_unique<RespServer>(&engine, config);
  ASSERT_TRUE(server2->Start().ok());
  TestClient c(server2->port());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.RoundTrip({"GET", "persist"}).str, "1");
  server2->Stop();
}

TEST(NetServerTest, IoThreadsServeManyConnections) {
  ServerConfig config;
  config.io_threads = 4;
  ServerFixture f(config);
  constexpr int kClients = 16;
  constexpr int kOpsPerClient = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      TestClient c(f.server->port());
      if (!c.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kOpsPerClient; ++i) {
        const std::string key = "t" + std::to_string(t) + ":" +
                                std::to_string(i);
        if (c.RoundTrip({"SET", key, key}).str != "OK" ||
            c.RoundTrip({"GET", key}).str != key) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// Regression: --maxmemory used to be accepted but unenforced on the write
// path — a write far bigger than the budget got +OK and blew straight past
// the ceiling. Over the wire, writes that do not fit must answer -OOM, the
// budget must hold, and the connection must survive to serve reads and
// memory-relieving writes.
TEST(NetServerTest, MaxMemoryAnswersOomOverWire) {
  constexpr uint64_t kBudget = 8 * 1024;
  ServerConfig config;
  config.port = 0;
  config.loop_timeout_ms = 10;
  Engine engine;
  engine.set_maxmemory(kBudget);  // default policy: noeviction
  RespServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());
  TestClient c(server.port());
  ASSERT_TRUE(c.ok());

  // One oversized write: rejected up front, nothing stored.
  const Value huge = c.RoundTrip({"SET", "huge", std::string(64 * 1024, 'x')});
  ASSERT_TRUE(huge.IsError());
  EXPECT_EQ(huge.str.rfind("OOM", 0), 0u) << huge.str;
  EXPECT_EQ(c.RoundTrip({"DBSIZE"}).integer, 0);

  // Fill until the ceiling answers -OOM, then verify the budget held and
  // the connection still serves reads and DELs.
  bool saw_oom = false;
  for (int i = 0; i < 200 && !saw_oom; ++i) {
    const Value v =
        c.RoundTrip({"SET", "k" + std::to_string(i), std::string(256, 'v')});
    if (v.IsError()) {
      EXPECT_EQ(v.str.rfind("OOM", 0), 0u) << v.str;
      saw_oom = true;
    }
  }
  EXPECT_TRUE(saw_oom);
  EXPECT_EQ(c.RoundTrip({"GET", "k0"}).str, std::string(256, 'v'));
  EXPECT_EQ(c.RoundTrip({"DEL", "k0"}).integer, 1);  // deny_oom exemption

  TestClient m(server.port());
  const Value metrics = m.RoundTrip({"METRICS"});
  double used = 0;
  ASSERT_TRUE(
      MetricsRegistry::ParseSeries(metrics.str, "used_memory_bytes", &used));
  EXPECT_GT(used, 0);
  EXPECT_LE(used, double(kBudget));
  server.Stop();
}

// Same wire path under allkeys-lru: the ceiling holds by evicting instead
// of refusing, with zero error replies.
TEST(NetServerTest, MaxMemoryEvictsUnderLruOverWire) {
  constexpr uint64_t kBudget = 8 * 1024;
  ServerConfig config;
  config.port = 0;
  config.loop_timeout_ms = 10;
  Engine engine;
  engine.set_maxmemory(kBudget);
  engine.set_eviction_policy(engine::EvictionPolicy::kAllKeysLru);
  RespServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());
  TestClient c(server.port());
  ASSERT_TRUE(c.ok());
  for (int i = 0; i < 200; ++i) {
    const Value v =
        c.RoundTrip({"SET", "k" + std::to_string(i), std::string(256, 'v')});
    ASSERT_EQ(v, Value::Simple("OK")) << "write " << i << ": " << v.str;
  }
  const Value metrics = c.RoundTrip({"METRICS"});
  double used = 0, evicted = 0;
  ASSERT_TRUE(
      MetricsRegistry::ParseSeries(metrics.str, "used_memory_bytes", &used));
  ASSERT_TRUE(MetricsRegistry::ParseSeries(metrics.str, "evicted_keys_total",
                                           &evicted));
  EXPECT_LE(used, double(kBudget));
  EXPECT_GT(evicted, 0);
  server.Stop();
}

}  // namespace
}  // namespace memdb::net
