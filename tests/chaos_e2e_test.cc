// Chaos/linearizability harness over the REAL binaries (the tentpole e2e):
// three memorydb-txlogd processes form the transaction-log group; a
// memorydb-server primary and two replicas run with --failover. Client
// threads drive live RESP traffic while the orchestrator SIGKILLs the
// current primary several times (plus one SIGSTOP/SIGCONT zombie round);
// each time a replica must self-promote — no operator, no --restore — and
// at the end the complete wire history, plus final reads pinning the
// surviving state, must be linearizable: every acked write survived, in
// order.
//
// Binary paths arrive via MEMDB_SERVER_BIN / MEMDB_TXLOGD_BIN (set by
// tests/CMakeLists.txt); the test skips when they are absent. Kill rounds
// default to 3; MEMDB_CHAOS_ROUNDS overrides (scripts/check.sh runs a
// 1-round smoke).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "chaos/history.h"
#include "chaos/process.h"
#include "chaos/workload.h"
#include "check/linearizability.h"
#include "resp/resp.h"

namespace memdb {
namespace {

using chaos::ChildProcess;
using chaos::HistoryRecorder;
using chaos::RespSocket;
using chaos::WireWorkload;

std::string EnvOr(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr ? v : "";
}

uint64_t SteadyMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SleepMs(uint64_t ms) {
  // lint:allow-blocking — chaos driver thread.
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// One INFO round-trip; true when the reply contains `needle`.
bool InfoContains(uint16_t port, const std::string& needle) {
  RespSocket s;
  if (!s.Connect(port, 1500)) return false;
  resp::Value v;
  if (!s.RoundTrip({"INFO"}, &v)) return false;
  return v.type == resp::Type::kBulkString &&
         v.str.find(needle) != std::string::npos;
}

// A database node under chaos: its fixed port, its process handle, and the
// lease-owner/writer id it was last spawned with.
struct Node {
  uint16_t port = 0;
  uint64_t writer = 0;
  ChildProcess proc;
};

class ChaosCluster {
 public:
  ChaosCluster(std::string server_bin, std::string txlogd_bin)
      : server_bin_(std::move(server_bin)),
        txlogd_bin_(std::move(txlogd_bin)) {}

  bool StartLogGroup() {
    for (int i = 0; i < 3; ++i) log_ports_[i] = chaos::PickFreePort();
    log_endpoints_ = "127.0.0.1:" + std::to_string(log_ports_[0]) +
                     ",127.0.0.1:" + std::to_string(log_ports_[1]) +
                     ",127.0.0.1:" + std::to_string(log_ports_[2]);
    for (int i = 0; i < 3; ++i) {
      char tmpl[] = "/tmp/memdb_chaos_log_XXXXXX";
      char* dir = ::mkdtemp(tmpl);
      if (dir == nullptr) return false;
      log_dirs_.push_back(dir);
      if (!txlogd_[i]
               .Spawn({txlogd_bin_, "--node-id", std::to_string(i + 1),
                       "--peers", log_endpoints_, "--data-dir", dir,
                       "--no-fsync", "--heartbeat-ms", "20",
                       "--election-min-ms", "50", "--election-max-ms", "120"})
               .ok()) {
        return false;
      }
    }
    for (const uint16_t p : log_ports_) {
      if (!chaos::WaitForPort(p, 10000)) return false;
    }
    return true;
  }

  ~ChaosCluster() {
    for (const std::string& d : log_dirs_) {
      const std::string cmd = "rm -rf '" + d + "'";
      [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
  }

  // Spawns a node on `node.port` (picking one if 0) with a fresh writer id.
  // as_primary nodes append through the log; replicas follow it. Both run
  // the failover manager.
  bool SpawnNode(Node* node, bool as_primary) {
    if (node->port == 0) node->port = chaos::PickFreePort();
    node->writer = next_writer_++;
    std::vector<std::string> argv = {
        server_bin_,
        "--port", std::to_string(node->port),
        as_primary ? "--txlog-endpoints" : "--replica-of-log", log_endpoints_,
        "--writer-id", std::to_string(node->writer),
        "--failover",
        "--lease-duration-ms", "600",
        "--lease-renew-ms", "150",
        "--failover-probe-ms", "100"};
    if (!node->proc.Spawn(std::move(argv)).ok()) return false;
    return chaos::WaitForPort(node->port, as_primary ? 45000 : 15000);
  }

  const std::string& log_endpoints() const { return log_endpoints_; }

 private:
  std::string server_bin_;
  std::string txlogd_bin_;
  ChildProcess txlogd_[3];
  uint16_t log_ports_[3] = {0, 0, 0};
  std::vector<std::string> log_dirs_;
  std::string log_endpoints_;
  uint64_t next_writer_ = 1;
};

// Index of the node currently reporting role:master, or -1 on timeout.
int FindMaster(std::vector<Node>* nodes, uint64_t timeout_ms,
               int exclude = -1) {
  const uint64_t deadline = SteadyMs() + timeout_ms;
  while (SteadyMs() < deadline) {
    for (size_t i = 0; i < nodes->size(); ++i) {
      if (static_cast<int>(i) == exclude) continue;
      if (!(*nodes)[i].proc.running()) continue;
      if (InfoContains((*nodes)[i].port, "role:master")) {
        return static_cast<int>(i);
      }
    }
    SleepMs(100);
  }
  return -1;
}

// Acked writes must advance by `delta` — proof the cluster is serving.
bool WaitForProgress(const WireWorkload& load, uint64_t delta,
                     uint64_t timeout_ms) {
  const uint64_t base = load.acked_writes();
  const uint64_t deadline = SteadyMs() + timeout_ms;
  while (SteadyMs() < deadline) {
    if (load.acked_writes() >= base + delta) return true;
    SleepMs(50);
  }
  return false;
}

TEST(ChaosE2eTest, RepeatedPrimaryKillsAutoPromoteWithLinearizableHistory) {
  const std::string server_bin = EnvOr("MEMDB_SERVER_BIN");
  const std::string txlogd_bin = EnvOr("MEMDB_TXLOGD_BIN");
  if (server_bin.empty() || txlogd_bin.empty()) {
    GTEST_SKIP() << "MEMDB_SERVER_BIN / MEMDB_TXLOGD_BIN not set; run under "
                    "ctest";
  }
  const std::string rounds_env = EnvOr("MEMDB_CHAOS_ROUNDS");
  const int kill_rounds =
      rounds_env.empty() ? 3 : std::max(1, std::atoi(rounds_env.c_str()));

  ChaosCluster cluster(server_bin, txlogd_bin);
  ASSERT_TRUE(cluster.StartLogGroup()) << "txlogd group failed to start";

  // One primary, two replicas — all with automatic failover.
  std::vector<Node> nodes(3);
  ASSERT_TRUE(cluster.SpawnNode(&nodes[0], /*as_primary=*/true));
  ASSERT_TRUE(cluster.SpawnNode(&nodes[1], /*as_primary=*/false));
  ASSERT_TRUE(cluster.SpawnNode(&nodes[2], /*as_primary=*/false));

  HistoryRecorder recorder;
  WireWorkload::Options wopt;
  for (const Node& n : nodes) wopt.ports.push_back(n.port);
  wopt.clients = 4;
  wopt.keys = 8;
  wopt.op_gap_ms = 5;
  wopt.recv_timeout_ms = 2500;
  WireWorkload load(wopt, &recorder);
  load.Start();
  ASSERT_TRUE(WaitForProgress(load, 20, 20000))
      << "workload never got going against the initial primary";

  // --- kill rounds: SIGKILL the serving primary, every time ---------------
  for (int round = 0; round < kill_rounds; ++round) {
    const int master = FindMaster(&nodes, 20000);
    ASSERT_GE(master, 0) << "round " << round << ": no master to kill";
    std::fprintf(stderr, "[chaos] round %d: SIGKILL primary on port %u\n",
                 round, nodes[static_cast<size_t>(master)].port);
    nodes[static_cast<size_t>(master)].proc.Kill(SIGKILL);

    // A survivor must self-promote and resume acking writes.
    const int next = FindMaster(&nodes, 30000, /*exclude=*/master);
    ASSERT_GE(next, 0) << "round " << round
                       << ": no replica promoted itself";
    EXPECT_NE(next, master);
    ASSERT_TRUE(WaitForProgress(load, 20, 30000))
        << "round " << round << ": writes did not resume after promotion";

    // The killed node rejoins as a log-fed replica (fresh writer id, same
    // port) — future rounds always have a promotion candidate.
    ASSERT_TRUE(cluster.SpawnNode(&nodes[static_cast<size_t>(master)],
                                  /*as_primary=*/false))
        << "round " << round << ": respawn failed";
    load.AddPort(nodes[static_cast<size_t>(master)].port);
  }

  // --- zombie round: freeze the primary instead of killing it -------------
  {
    const int master = FindMaster(&nodes, 20000);
    ASSERT_GE(master, 0) << "zombie round: no master";
    Node& zombie = nodes[static_cast<size_t>(master)];
    std::fprintf(stderr, "[chaos] zombie round: SIGSTOP primary on port %u\n",
                 zombie.port);
    zombie.proc.Pause();

    const int next = FindMaster(&nodes, 30000, /*exclude=*/master);
    ASSERT_GE(next, 0) << "zombie round: no replica promoted itself";
    ASSERT_TRUE(WaitForProgress(load, 20, 30000))
        << "zombie round: writes did not resume";

    // Resume the zombie: it comes back believing it holds the lease. The
    // expired-lease read gate plus the fenced append chain must force it to
    // demote — it may not ack a single write or serve a single stale read.
    zombie.proc.Resume();
    const uint64_t deadline = SteadyMs() + 30000;
    bool fenced = false;
    while (SteadyMs() < deadline && !fenced) {
      fenced = InfoContains(zombie.port, "role:fenced");
      if (!fenced) SleepMs(100);
    }
    EXPECT_TRUE(fenced) << "resumed zombie never demoted to fenced";
  }

  // --- wind down and pin the final state ----------------------------------
  load.Stop();
  int master = FindMaster(&nodes, 20000);
  ASSERT_GE(master, 0) << "no master for final reads";
  bool finals_ok = false;
  for (int attempt = 0; attempt < 3 && !finals_ok; ++attempt) {
    finals_ok =
        load.FinalReads(nodes[static_cast<size_t>(master)].port, &recorder);
    if (!finals_ok) {
      master = FindMaster(&nodes, 20000);
      ASSERT_GE(master, 0);
    }
  }
  ASSERT_TRUE(finals_ok) << "final reads failed against the last master";

  // The promoted master's failover instrumentation observed the chaos.
  EXPECT_TRUE(InfoContains(nodes[static_cast<size_t>(master)].port,
                           "master_failover_state:holding"));

  // --- the verdict: the whole wire history must be linearizable -----------
  const std::vector<check::Operation> history = recorder.TakeHistory();
  ASSERT_GT(history.size(), 100u) << "suspiciously thin history";
  std::fprintf(stderr,
               "[chaos] checking %zu operations (%llu acked writes) across "
               "%d kill rounds + 1 zombie round\n",
               history.size(),
               static_cast<unsigned long long>(load.acked_writes()),
               kill_rounds);
  const check::CheckResult verdict = check::CheckKvHistory(history);
  if (!verdict.linearizable || !verdict.conclusive) {
    const std::string dump = "/tmp/memdb_chaos_history.jsonl";
    std::ofstream out(dump, std::ios::binary | std::ios::trunc);
    out << HistoryRecorder::ToJsonl(history);
    std::fprintf(stderr, "[chaos] history dumped to %s\n", dump.c_str());
  }
  EXPECT_TRUE(verdict.conclusive)
      << "checker hit its iteration budget after " << verdict.iterations;
  ASSERT_TRUE(verdict.linearizable)
      << "acked-write loss or reordering detected (" << verdict.iterations
      << " iterations)";
}

}  // namespace
}  // namespace memdb
