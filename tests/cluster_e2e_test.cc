// End-to-end cluster test over the REAL binaries: three memorydb-txlogd
// processes form the transaction-log group, a memorydb-server primary
// writes through it, memorydb-snapshotd --once takes an off-box snapshot,
// the primary is SIGKILLed and restarted with --restore (peer-less
// recovery, §4.2.1), and a log-fed replica started from the same snapshot
// store converges — with zero acked-write loss end to end.
//
// Binary paths arrive via MEMDB_SERVER_BIN / MEMDB_TXLOGD_BIN /
// MEMDB_SNAPSHOTD_BIN (set by tests/CMakeLists.txt from the build's target
// locations); the test skips when they are absent so the suite still runs
// standalone.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/trace_export.h"
#include "resp/resp.h"

namespace memdb {
namespace {

using resp::Value;

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/memdb_e2e_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = (p != nullptr) ? p : "";
  }
  ~TempDir() {
    if (!path.empty()) {
      const std::string cmd = "rm -rf '" + path + "'";
      [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
  }
  std::string path;
};

// Kernel-assigned free TCP port. The socket is closed before the daemon
// binds it; the tiny reuse race is acceptable in tests.
uint16_t FreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct sockaddr_in sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  EXPECT_EQ(::bind(fd, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa)),
            0);
  socklen_t len = sizeof(sa);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<struct sockaddr*>(&sa), &len),
            0);
  ::close(fd);
  return ntohs(sa.sin_port);
}

// A spawned daemon; SIGKILLed and reaped on destruction if still running.
class Process {
 public:
  Process() = default;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { Kill(SIGKILL); }

  bool Spawn(const std::vector<std::string>& argv) {
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    pid_ = ::fork();
    if (pid_ == 0) {
      ::execv(cargv[0], cargv.data());
      ::_exit(127);  // exec failed
    }
    return pid_ > 0;
  }

  // Sends `sig` and reaps. Returns the exit status (or -1 if not running).
  int Kill(int sig) {
    if (pid_ <= 0) return -1;
    ::kill(pid_, sig);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return status;
  }

  // Reaps a process expected to exit on its own (snapshotd --once).
  // Returns its exit code, or -1 on timeout (then kills it).
  int WaitExit(int timeout_ms) {
    if (pid_ <= 0) return -1;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      int status = 0;
      const pid_t r = ::waitpid(pid_, &status, WNOHANG);
      if (r == pid_) {
        pid_ = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      }
      SleepMs(10);
    }
    Kill(SIGKILL);
    return -1;
  }

  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
};

bool WaitForPort(uint16_t port, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    const int rc =
        ::connect(fd, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa));
    ::close(fd);
    if (rc == 0) return true;
    SleepMs(25);
  }
  return false;
}

// Minimal blocking RESP client (the net_test idiom).
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    struct timeval tv{10, 0};  // appends ride quorum commits; be generous
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  Value RoundTrip(const std::vector<std::string>& argv) {
    const std::string bytes = resp::EncodeCommand(argv);
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return Value::Error("send failed");
      off += static_cast<size_t>(n);
    }
    char buf[16 * 1024];
    for (;;) {
      Value v;
      const resp::DecodeStatus st = dec_.Decode(&v);
      if (st == resp::DecodeStatus::kOk) return v;
      if (st == resp::DecodeStatus::kError) return Value::Error("protocol");
      const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r <= 0) return Value::Error("no reply");
      dec_.Feed(Slice(buf, static_cast<size_t>(r)));
    }
  }

 private:
  int fd_ = -1;
  resp::Decoder dec_;
};

bool WaitForKey(uint16_t port, const std::string& key, const std::string& want,
                int timeout_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    TestClient c(port);
    if (c.ok()) {
      const Value v = c.RoundTrip({"GET", key});
      if (v.type == resp::Type::kBulkString && v.str == want) return true;
    }
    SleepMs(50);
  }
  return false;
}

std::string EnvOr(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr ? v : "";
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Runs `cmd` via popen and captures stdout (offline-tool smoke checks).
std::string CaptureStdout(const std::string& cmd) {
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    out.append(buf, n);
  }
  ::pclose(pipe);
  return out;
}

TEST(ClusterE2eTest, KillPrimaryRestoreAndReplicaConvergeWithZeroAckedLoss) {
  const std::string server_bin = EnvOr("MEMDB_SERVER_BIN");
  const std::string txlogd_bin = EnvOr("MEMDB_TXLOGD_BIN");
  const std::string snapshotd_bin = EnvOr("MEMDB_SNAPSHOTD_BIN");
  if (server_bin.empty() || txlogd_bin.empty() || snapshotd_bin.empty()) {
    GTEST_SKIP() << "MEMDB_*_BIN not set; run under ctest";
  }

  TempDir log_dir1, log_dir2, log_dir3, store_dir, trace_dir;
  const uint16_t log_ports[3] = {FreePort(), FreePort(), FreePort()};
  const uint16_t primary_port = FreePort();
  const uint16_t replica_port = FreePort();
  const std::string log_endpoints = "127.0.0.1:" +
                                    std::to_string(log_ports[0]) +
                                    ",127.0.0.1:" +
                                    std::to_string(log_ports[1]) +
                                    ",127.0.0.1:" +
                                    std::to_string(log_ports[2]);

  // --- 1. the 3-replica transaction-log group (one process per AZ) --------
  const std::string* log_dirs[3] = {&log_dir1.path, &log_dir2.path,
                                    &log_dir3.path};
  Process txlogd[3];
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(txlogd[i].Spawn(
        {txlogd_bin, "--node-id", std::to_string(i + 1), "--peers",
         log_endpoints, "--data-dir", *log_dirs[i], "--no-fsync",
         "--heartbeat-ms", "20", "--election-min-ms", "50",
         "--election-max-ms", "120", "--trace-file",
         trace_dir.path + "/txlogd-" + std::to_string(i + 1) + ".jsonl"}));
  }
  for (const uint16_t p : log_ports) ASSERT_TRUE(WaitForPort(p));

  // --- 2. durable primary; 50 acked writes --------------------------------
  Process primary;
  ASSERT_TRUE(primary.Spawn({server_bin, "--port",
                             std::to_string(primary_port),
                             "--txlog-endpoints", log_endpoints,
                             "--checksum-every", "8", "--writer-id", "7"}));
  ASSERT_TRUE(WaitForPort(primary_port));
  {
    TestClient c(primary_port);
    ASSERT_TRUE(c.ok());
    for (int i = 1; i <= 50; ++i) {
      ASSERT_EQ(c.RoundTrip({"SET", "key" + std::to_string(i),
                             "val" + std::to_string(i)}),
                Value::Simple("OK"))
          << "write " << i << " was not acked";
    }
  }

  // --- 3. off-box snapshot of the first 50 writes -------------------------
  Process snapshotd;
  ASSERT_TRUE(snapshotd.Spawn({snapshotd_bin, "--txlog", log_endpoints,
                               "--store-dir", store_dir.path, "--no-fsync",
                               "--trim-slack", "8", "--once"}));
  ASSERT_EQ(snapshotd.WaitExit(30000), 0) << "snapshot cycle failed";

  // --- 4. 50 more acked writes, landing only in the log tail --------------
  {
    TestClient c(primary_port);
    ASSERT_TRUE(c.ok());
    for (int i = 51; i <= 100; ++i) {
      ASSERT_EQ(c.RoundTrip({"SET", "key" + std::to_string(i),
                             "val" + std::to_string(i)}),
                Value::Simple("OK"))
          << "write " << i << " was not acked";
    }
  }

  // --- 5. SIGKILL the primary: no flush, no goodbye -----------------------
  primary.Kill(SIGKILL);

  // --- 6. restart with --restore: snapshot + log tail, no peers -----------
  Process restored;
  ASSERT_TRUE(restored.Spawn(
      {server_bin, "--port", std::to_string(primary_port),
       "--txlog-endpoints", log_endpoints, "--checksum-every", "8",
       "--writer-id", "8", "--restore", "--store-dir", store_dir.path,
       "--trace-file", trace_dir.path + "/server.jsonl",
       "--slowlog-slower-than-us", "0"}));
  ASSERT_TRUE(WaitForPort(primary_port, 20000));
  {
    TestClient c(primary_port);
    ASSERT_TRUE(c.ok());
    // Every acked write survived the kill: first 50 via the off-box
    // snapshot, the rest via the replayed log tail.
    for (int i = 1; i <= 100; ++i) {
      EXPECT_EQ(c.RoundTrip({"GET", "key" + std::to_string(i)}),
                Value::Bulk("val" + std::to_string(i)))
          << "acked write " << i << " lost across SIGKILL + restore";
    }
    // And the restored primary still takes writes through the log.
    ASSERT_EQ(c.RoundTrip({"SET", "post-restore", "yes"}),
              Value::Simple("OK"));

    // Observability plane, live: INFO # Server identity fields...
    const Value info = c.RoundTrip({"INFO", "server"});
    ASSERT_EQ(info.type, resp::Type::kBulkString);
    EXPECT_NE(info.str.find("# Server"), std::string::npos);
    EXPECT_NE(info.str.find("process_id:"), std::string::npos);
    EXPECT_NE(info.str.find("run_id:"), std::string::npos);
    EXPECT_NE(info.str.find("uptime_in_seconds:"), std::string::npos);
    EXPECT_NE(info.str.find("build_sha:"), std::string::npos);

    // ...TRACE DUMP returns the span log with the acked write's receipt...
    const Value dump = c.RoundTrip({"TRACE", "DUMP"});
    ASSERT_EQ(dump.type, resp::Type::kBulkString);
    EXPECT_NE(dump.str.find("\"stage\":\"cmd.receive\""), std::string::npos);
    EXPECT_NE(dump.str.find("\"stage\":\"reply.release\""),
              std::string::npos);

    // ...and SLOWLOG (threshold 0: every durable write logs) has entries
    // in the Redis reply shape.
    const Value slen = c.RoundTrip({"SLOWLOG", "LEN"});
    ASSERT_EQ(slen.type, resp::Type::kInteger);
    EXPECT_GE(slen.integer, 1);
    const Value sget = c.RoundTrip({"SLOWLOG", "GET", "1"});
    ASSERT_EQ(sget.type, resp::Type::kArray);
    ASSERT_EQ(sget.array.size(), 1u);
    ASSERT_EQ(sget.array[0].type, resp::Type::kArray);
    ASSERT_EQ(sget.array[0].array.size(), 4u);  // id, ts, duration, argv
    EXPECT_EQ(sget.array[0].array[3].array[0], Value::Bulk("SET"));
  }

  // --- 7. log-fed replica seeded from the same snapshot store -------------
  Process replica;
  ASSERT_TRUE(replica.Spawn({server_bin, "--port",
                             std::to_string(replica_port), "--replica-of-log",
                             log_endpoints, "--restore", "--store-dir",
                             store_dir.path}));
  ASSERT_TRUE(WaitForPort(replica_port, 20000));
  EXPECT_TRUE(WaitForKey(replica_port, "key1", "val1"));
  EXPECT_TRUE(WaitForKey(replica_port, "key100", "val100"));
  EXPECT_TRUE(WaitForKey(replica_port, "post-restore", "yes"));
  {
    TestClient c(replica_port);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c.RoundTrip({"WAIT", "0", "100"}), Value::Integer(0));
    const Value err = c.RoundTrip({"SET", "nope", "x"});
    ASSERT_EQ(err.type, resp::Type::kError);
    EXPECT_EQ(err.str.rfind("READONLY", 0), 0u) << err.str;
    const Value info = c.RoundTrip({"INFO"});
    ASSERT_EQ(info.type, resp::Type::kBulkString);
    EXPECT_NE(info.str.find("role:replica"), std::string::npos);
  }
  // The link gauge flips to "up" once the follower's first long-poll read
  // returns; poll rather than race it.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    bool link_up = false;
    while (!link_up && std::chrono::steady_clock::now() < deadline) {
      TestClient c(replica_port);
      const Value info = c.RoundTrip({"INFO", "replication"});
      link_up = info.str.find("replica_link_status:up") != std::string::npos;
      if (!link_up) SleepMs(50);
    }
    EXPECT_TRUE(link_up);
  }

  // --- teardown: orderly SIGTERM (destructors SIGKILL as backstop) --------
  // Each daemon exports its TraceLog to --trace-file on the way down.
  replica.Kill(SIGTERM);
  restored.Kill(SIGTERM);
  for (auto& t : txlogd) t.Kill(SIGTERM);

  // --- 8. offline reconstruction: one acked write must leave a complete
  // cross-process span chain in the per-process JSONL exports -------------
  const std::vector<std::string> trace_files = {
      trace_dir.path + "/server.jsonl", trace_dir.path + "/txlogd-1.jsonl",
      trace_dir.path + "/txlogd-2.jsonl", trace_dir.path + "/txlogd-3.jsonl"};
  std::vector<ExportedSpan> spans;
  for (const std::string& f : trace_files) {
    ParseSpansJsonl(ReadFileOrEmpty(f), &spans);
  }
  ASSERT_FALSE(spans.empty()) << "no spans exported to " << trace_dir.path;
  const auto by_trace = GroupSpansByTrace(std::move(spans));
  bool chain_found = false;
  for (const auto& [trace_id, trace_spans] : by_trace) {
    std::set<std::string> stages;
    std::set<std::string> procs;
    for (const ExportedSpan& s : trace_spans) {
      stages.insert(s.stage);
      procs.insert(s.proc);
    }
    if (stages.count("cmd.receive") != 0 &&
        stages.count("log.append.receive") != 0 &&
        stages.count("log.quorum.commit") != 0 &&
        stages.count("reply.release") != 0 && procs.size() >= 2) {
      chain_found = true;
      break;
    }
  }
  EXPECT_TRUE(chain_found)
      << "no acked write reconstructs a complete cross-process chain";

  // The offline tool agrees: memorydb-trace over the same files reports at
  // least one complete chain.
  const std::string trace_bin = EnvOr("MEMDB_TRACE_BIN");
  if (!trace_bin.empty()) {
    std::string cmd = "'" + trace_bin + "'";
    for (const std::string& f : trace_files) cmd += " '" + f + "'";
    const std::string out = CaptureStdout(cmd);
    const size_t pos = out.find("complete_chains=");
    ASSERT_NE(pos, std::string::npos) << out;
    const long chains =
        std::strtol(out.c_str() + pos + std::strlen("complete_chains="),
                    nullptr, 10);
    EXPECT_GE(chains, 1) << out;
  }
}

}  // namespace
}  // namespace memdb
