#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/snapshot.h"

namespace memdb::engine {
namespace {

using resp::Value;

class EngineTest : public ::testing::Test {
 protected:
  Value Run(const Argv& argv, uint64_t now_ms = 1000) {
    ctx_ = ExecContext{};
    ctx_.now_ms = now_ms;
    ctx_.rng = &engine_.rng();
    return engine_.Execute(argv, &ctx_);
  }
  // Runs and returns the accumulated effects of that one command.
  std::vector<Argv> EffectsOf(const Argv& argv, uint64_t now_ms = 1000) {
    Run(argv, now_ms);
    return ctx_.effects;
  }

  Engine engine_;
  ExecContext ctx_;
};

// ---------------------------------------------------------------- strings

TEST_F(EngineTest, SetGet) {
  EXPECT_EQ(Run({"SET", "k", "v"}), Value::Ok());
  EXPECT_EQ(Run({"GET", "k"}), Value::Bulk("v"));
  EXPECT_EQ(Run({"GET", "missing"}), Value::Null());
}

TEST_F(EngineTest, SetNxXx) {
  EXPECT_EQ(Run({"SET", "k", "v1", "NX"}), Value::Ok());
  EXPECT_EQ(Run({"SET", "k", "v2", "NX"}), Value::Null());
  EXPECT_EQ(Run({"GET", "k"}), Value::Bulk("v1"));
  EXPECT_EQ(Run({"SET", "k", "v3", "XX"}), Value::Ok());
  EXPECT_EQ(Run({"SET", "other", "x", "XX"}), Value::Null());
  EXPECT_EQ(Run({"GET", "k"}), Value::Bulk("v3"));
}

TEST_F(EngineTest, SetWithGetOption) {
  Run({"SET", "k", "old"});
  EXPECT_EQ(Run({"SET", "k", "new", "GET"}), Value::Bulk("old"));
  EXPECT_EQ(Run({"SET", "fresh", "v", "GET"}), Value::Null());
}

TEST_F(EngineTest, SetExpiryOptionsAndTtl) {
  Run({"SET", "k", "v", "EX", "10"}, 1000);
  EXPECT_EQ(Run({"TTL", "k"}, 1000), Value::Integer(10));
  EXPECT_EQ(Run({"PTTL", "k"}, 1000), Value::Integer(10000));
  // Expired at 11001.
  EXPECT_EQ(Run({"GET", "k"}, 11001), Value::Null());
  EXPECT_EQ(Run({"TTL", "k"}, 11001), Value::Integer(-2));
}

TEST_F(EngineTest, SetKeepTtl) {
  Run({"SET", "k", "v", "PX", "5000"}, 1000);
  Run({"SET", "k", "v2"}, 2000);  // plain SET clears TTL
  EXPECT_EQ(Run({"TTL", "k"}, 2000), Value::Integer(-1));
  Run({"SET", "k", "v3", "PX", "5000"}, 2000);
  Run({"SET", "k", "v4", "KEEPTTL"}, 3000);
  EXPECT_EQ(Run({"PTTL", "k"}, 3000), Value::Integer(4000));
}

TEST_F(EngineTest, SetReplicatesAsAbsoluteExpiry) {
  auto effects = EffectsOf({"SET", "k", "v", "EX", "10"}, 1000);
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0], (Argv{"SET", "k", "v", "PXAT", "11000"}));
}

TEST_F(EngineTest, AppendStrlen) {
  EXPECT_EQ(Run({"APPEND", "k", "Hello"}), Value::Integer(5));
  EXPECT_EQ(Run({"APPEND", "k", " World"}), Value::Integer(11));
  EXPECT_EQ(Run({"STRLEN", "k"}), Value::Integer(11));
  EXPECT_EQ(Run({"GET", "k"}), Value::Bulk("Hello World"));
  EXPECT_EQ(Run({"STRLEN", "nope"}), Value::Integer(0));
}

TEST_F(EngineTest, IncrDecrFamily) {
  EXPECT_EQ(Run({"INCR", "n"}), Value::Integer(1));
  EXPECT_EQ(Run({"INCRBY", "n", "9"}), Value::Integer(10));
  EXPECT_EQ(Run({"DECR", "n"}), Value::Integer(9));
  EXPECT_EQ(Run({"DECRBY", "n", "4"}), Value::Integer(5));
  Run({"SET", "s", "abc"});
  EXPECT_TRUE(Run({"INCR", "s"}).IsError());
  Run({"SET", "big", "9223372036854775807"});
  EXPECT_TRUE(Run({"INCR", "big"}).IsError());  // overflow
}

TEST_F(EngineTest, IncrByFloatReplicatesAsSet) {
  Run({"SET", "f", "10.5"});
  EXPECT_EQ(Run({"INCRBYFLOAT", "f", "0.25"}), Value::Bulk("10.75"));
  auto effects = EffectsOf({"INCRBYFLOAT", "f", "0.25"});
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0], (Argv{"SET", "f", "11"}));  // 10.5 + 0.25 + 0.25
}

TEST_F(EngineTest, MSetMGetMSetNx) {
  EXPECT_EQ(Run({"MSET", "a", "1", "b", "2"}), Value::Ok());
  EXPECT_EQ(Run({"MGET", "a", "b", "c"}),
            Value::Array({Value::Bulk("1"), Value::Bulk("2"), Value::Null()}));
  EXPECT_EQ(Run({"MSETNX", "c", "3", "a", "x"}), Value::Integer(0));
  EXPECT_EQ(Run({"GET", "c"}), Value::Null());  // all-or-nothing
  EXPECT_EQ(Run({"MSETNX", "c", "3", "d", "4"}), Value::Integer(1));
}

TEST_F(EngineTest, GetSetGetDel) {
  EXPECT_EQ(Run({"GETSET", "k", "v1"}), Value::Null());
  EXPECT_EQ(Run({"GETSET", "k", "v2"}), Value::Bulk("v1"));
  EXPECT_EQ(Run({"GETDEL", "k"}), Value::Bulk("v2"));
  EXPECT_EQ(Run({"EXISTS", "k"}), Value::Integer(0));
  auto effects = EffectsOf({"GETDEL", "nope"});
  EXPECT_TRUE(effects.empty());
}

TEST_F(EngineTest, SetRangeGetRange) {
  Run({"SET", "k", "Hello World"});
  EXPECT_EQ(Run({"SETRANGE", "k", "6", "Redis"}), Value::Integer(11));
  EXPECT_EQ(Run({"GET", "k"}), Value::Bulk("Hello Redis"));
  EXPECT_EQ(Run({"GETRANGE", "k", "0", "4"}), Value::Bulk("Hello"));
  EXPECT_EQ(Run({"GETRANGE", "k", "-5", "-1"}), Value::Bulk("Redis"));
  EXPECT_EQ(Run({"SETRANGE", "pad", "5", "x"}), Value::Integer(6));
  EXPECT_EQ(Run({"GET", "pad"}), Value::Bulk(std::string("\0\0\0\0\0x", 6)));
  EXPECT_EQ(Run({"SETRANGE", "void", "0", ""}), Value::Integer(0));
  EXPECT_EQ(Run({"EXISTS", "void"}), Value::Integer(0));
}

TEST_F(EngineTest, TypeErrors) {
  Run({"LPUSH", "l", "x"});
  EXPECT_TRUE(Run({"GET", "l"}).IsError());
  EXPECT_TRUE(Run({"INCR", "l"}).IsError());
  Run({"SET", "s", "v"});
  EXPECT_TRUE(Run({"LPUSH", "s", "x"}).IsError());
  EXPECT_TRUE(Run({"SADD", "s", "x"}).IsError());
  EXPECT_TRUE(Run({"ZADD", "s", "1", "x"}).IsError());
  EXPECT_TRUE(Run({"HSET", "s", "f", "v"}).IsError());
}

// ---------------------------------------------------------------- keys

TEST_F(EngineTest, DelExistsType) {
  Run({"SET", "a", "1"});
  Run({"LPUSH", "l", "x"});
  EXPECT_EQ(Run({"EXISTS", "a", "l", "nope", "a"}), Value::Integer(3));
  EXPECT_EQ(Run({"TYPE", "a"}), Value::Simple("string"));
  EXPECT_EQ(Run({"TYPE", "l"}), Value::Simple("list"));
  EXPECT_EQ(Run({"TYPE", "nope"}), Value::Simple("none"));
  EXPECT_EQ(Run({"DEL", "a", "l", "nope"}), Value::Integer(2));
}

TEST_F(EngineTest, ExpireReplicatesAsPExpireAt) {
  Run({"SET", "k", "v"});
  auto effects = EffectsOf({"EXPIRE", "k", "30"}, 5000);
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0], (Argv{"PEXPIREAT", "k", "35000"}));
}

TEST_F(EngineTest, ExpireInPastDeletes) {
  Run({"SET", "k", "v"});
  auto effects = EffectsOf({"EXPIRE", "k", "-1"}, 5000);
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0], (Argv{"DEL", "k"}));
  EXPECT_EQ(Run({"EXISTS", "k"}), Value::Integer(0));
}

TEST_F(EngineTest, PersistClearsExpiry) {
  Run({"SET", "k", "v", "EX", "10"}, 1000);
  EXPECT_EQ(Run({"PERSIST", "k"}, 1000), Value::Integer(1));
  EXPECT_EQ(Run({"TTL", "k"}, 1000), Value::Integer(-1));
  EXPECT_EQ(Run({"PERSIST", "k"}, 1000), Value::Integer(0));
}

TEST_F(EngineTest, LazyExpiryOnPrimaryEmitsDel) {
  Run({"SET", "k", "v", "PX", "100"}, 1000);
  auto effects = EffectsOf({"GET", "k"}, 2000);
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0], (Argv{"DEL", "k"}));
  EXPECT_EQ(engine_.keyspace().Size(), 0u);
}

TEST_F(EngineTest, ReplicaReadDoesNotDeleteExpired) {
  Run({"SET", "k", "v", "PX", "100"}, 1000);
  ExecContext ctx;
  ctx.now_ms = 2000;
  ctx.role = Role::kReplicaRead;
  ctx.rng = &engine_.rng();
  EXPECT_EQ(engine_.Execute({"GET", "k"}, &ctx), Value::Null());
  EXPECT_TRUE(ctx.effects.empty());
  EXPECT_EQ(engine_.keyspace().Size(), 1u);  // data retained
}

TEST_F(EngineTest, ActiveExpireCycle) {
  for (int i = 0; i < 10; ++i) {
    Run({"SET", "k" + std::to_string(i), "v", "PX", "100"}, 1000);
  }
  Run({"SET", "stay", "v"}, 1000);
  ExecContext ctx;
  ctx.now_ms = 5000;
  EXPECT_EQ(engine_.ActiveExpire(&ctx, 100), 10u);
  EXPECT_EQ(ctx.effects.size(), 10u);
  EXPECT_EQ(engine_.keyspace().Size(), 1u);
}

TEST_F(EngineTest, KeysGlobMatch) {
  Run({"MSET", "user:1", "a", "user:2", "b", "item:1", "c"});
  Value v = Run({"KEYS", "user:*"});
  EXPECT_EQ(v.array.size(), 2u);
  v = Run({"KEYS", "*"});
  EXPECT_EQ(v.array.size(), 3u);
  v = Run({"KEYS", "user:?"});
  EXPECT_EQ(v.array.size(), 2u);
  v = Run({"KEYS", "[ui]*:1"});
  EXPECT_EQ(v.array.size(), 2u);
}

TEST_F(EngineTest, ScanIteratesEverythingOnce) {
  for (int i = 0; i < 95; ++i) Run({"SET", "k" + std::to_string(i), "v"});
  std::set<std::string> seen;
  std::string cursor = "0";
  do {
    Value v = Run({"SCAN", cursor, "COUNT", "10"});
    ASSERT_EQ(v.array.size(), 2u);
    cursor = v.array[0].str;
    for (const auto& k : v.array[1].array) {
      EXPECT_TRUE(seen.insert(k.str).second) << "duplicate " << k.str;
    }
  } while (cursor != "0");
  EXPECT_EQ(seen.size(), 95u);
}

TEST_F(EngineTest, RenameAndRenameNx) {
  Run({"SET", "a", "v", "EX", "100"}, 1000);
  EXPECT_EQ(Run({"RENAME", "a", "b"}, 1000), Value::Ok());
  EXPECT_EQ(Run({"EXISTS", "a"}, 1000), Value::Integer(0));
  EXPECT_EQ(Run({"TTL", "b"}, 1000), Value::Integer(100));  // TTL carried
  EXPECT_TRUE(Run({"RENAME", "ghost", "x"}, 1000).IsError());
  Run({"SET", "c", "v"});
  EXPECT_EQ(Run({"RENAMENX", "c", "b"}, 1000), Value::Integer(0));
}

// ---------------------------------------------------------------- lists

TEST_F(EngineTest, ListPushPopRange) {
  EXPECT_EQ(Run({"RPUSH", "l", "a", "b", "c"}), Value::Integer(3));
  EXPECT_EQ(Run({"LPUSH", "l", "z"}), Value::Integer(4));
  EXPECT_EQ(Run({"LLEN", "l"}), Value::Integer(4));
  EXPECT_EQ(Run({"LRANGE", "l", "0", "-1"}),
            Value::Array({Value::Bulk("z"), Value::Bulk("a"), Value::Bulk("b"),
                          Value::Bulk("c")}));
  EXPECT_EQ(Run({"LPOP", "l"}), Value::Bulk("z"));
  EXPECT_EQ(Run({"RPOP", "l"}), Value::Bulk("c"));
  EXPECT_EQ(Run({"RPOP", "l", "2"}),
            Value::Array({Value::Bulk("b"), Value::Bulk("a")}));
  // Fully popped list disappears.
  EXPECT_EQ(Run({"EXISTS", "l"}), Value::Integer(0));
  EXPECT_EQ(Run({"LPOP", "l"}), Value::Null());
}

TEST_F(EngineTest, PushXRequiresExisting) {
  EXPECT_EQ(Run({"LPUSHX", "l", "x"}), Value::Integer(0));
  EXPECT_EQ(Run({"RPUSHX", "l", "x"}), Value::Integer(0));
  EXPECT_EQ(Run({"EXISTS", "l"}), Value::Integer(0));
  Run({"RPUSH", "l", "a"});
  EXPECT_EQ(Run({"LPUSHX", "l", "x"}), Value::Integer(2));
}

TEST_F(EngineTest, ListIndexSetInsertRemTrim) {
  Run({"RPUSH", "l", "a", "b", "c", "b"});
  EXPECT_EQ(Run({"LINDEX", "l", "1"}), Value::Bulk("b"));
  EXPECT_EQ(Run({"LINDEX", "l", "-1"}), Value::Bulk("b"));
  EXPECT_EQ(Run({"LINDEX", "l", "99"}), Value::Null());
  EXPECT_EQ(Run({"LSET", "l", "0", "A"}), Value::Ok());
  EXPECT_TRUE(Run({"LSET", "l", "99", "X"}).IsError());
  EXPECT_EQ(Run({"LINSERT", "l", "BEFORE", "c", "bb"}), Value::Integer(5));
  EXPECT_EQ(Run({"LINSERT", "l", "AFTER", "zz", "x"}), Value::Integer(-1));
  EXPECT_EQ(Run({"LREM", "l", "0", "b"}), Value::Integer(2));
  EXPECT_EQ(Run({"LTRIM", "l", "0", "1"}), Value::Ok());
  EXPECT_EQ(Run({"LRANGE", "l", "0", "-1"}),
            Value::Array({Value::Bulk("A"), Value::Bulk("bb")}));
}

TEST_F(EngineTest, LMoveAndRPopLPush) {
  Run({"RPUSH", "src", "a", "b", "c"});
  EXPECT_EQ(Run({"LMOVE", "src", "dst", "LEFT", "RIGHT"}), Value::Bulk("a"));
  EXPECT_EQ(Run({"RPOPLPUSH", "src", "dst"}), Value::Bulk("c"));
  EXPECT_EQ(Run({"LRANGE", "dst", "0", "-1"}),
            Value::Array({Value::Bulk("c"), Value::Bulk("a")}));
  EXPECT_EQ(Run({"RPOPLPUSH", "ghost", "dst"}), Value::Null());
}

// ---------------------------------------------------------------- hashes

TEST_F(EngineTest, HashBasics) {
  EXPECT_EQ(Run({"HSET", "h", "f1", "v1", "f2", "v2"}), Value::Integer(2));
  EXPECT_EQ(Run({"HSET", "h", "f1", "v1b"}), Value::Integer(0));
  EXPECT_EQ(Run({"HGET", "h", "f1"}), Value::Bulk("v1b"));
  EXPECT_EQ(Run({"HGET", "h", "nope"}), Value::Null());
  EXPECT_EQ(Run({"HLEN", "h"}), Value::Integer(2));
  EXPECT_EQ(Run({"HEXISTS", "h", "f2"}), Value::Integer(1));
  EXPECT_EQ(Run({"HSTRLEN", "h", "f2"}), Value::Integer(2));
  EXPECT_EQ(Run({"HMGET", "h", "f1", "x", "f2"}),
            Value::Array({Value::Bulk("v1b"), Value::Null(), Value::Bulk("v2")}));
  EXPECT_EQ(Run({"HDEL", "h", "f1", "f2"}), Value::Integer(2));
  EXPECT_EQ(Run({"EXISTS", "h"}), Value::Integer(0));  // empty hash removed
}

TEST_F(EngineTest, HashSetNxAndDumps) {
  EXPECT_EQ(Run({"HSETNX", "h", "f", "1"}), Value::Integer(1));
  EXPECT_EQ(Run({"HSETNX", "h", "f", "2"}), Value::Integer(0));
  EXPECT_EQ(Run({"HGET", "h", "f"}), Value::Bulk("1"));
  Run({"HSET", "h", "g", "2"});
  EXPECT_EQ(Run({"HKEYS", "h"}),
            Value::Array({Value::Bulk("f"), Value::Bulk("g")}));
  EXPECT_EQ(Run({"HVALS", "h"}),
            Value::Array({Value::Bulk("1"), Value::Bulk("2")}));
  EXPECT_EQ(Run({"HGETALL", "h"}),
            Value::Array({Value::Bulk("f"), Value::Bulk("1"), Value::Bulk("g"),
                          Value::Bulk("2")}));
}

TEST_F(EngineTest, HashIncr) {
  EXPECT_EQ(Run({"HINCRBY", "h", "n", "5"}), Value::Integer(5));
  EXPECT_EQ(Run({"HINCRBY", "h", "n", "-3"}), Value::Integer(2));
  Run({"HSET", "h", "s", "abc"});
  EXPECT_TRUE(Run({"HINCRBY", "h", "s", "1"}).IsError());
  EXPECT_EQ(Run({"HINCRBYFLOAT", "h", "f", "1.5"}), Value::Bulk("1.5"));
  auto effects = EffectsOf({"HINCRBYFLOAT", "h", "f", "1.25"});
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0], (Argv{"HSET", "h", "f", "2.75"}));
}

// ---------------------------------------------------------------- sets

TEST_F(EngineTest, SetBasics) {
  EXPECT_EQ(Run({"SADD", "s", "a", "b", "c", "a"}), Value::Integer(3));
  EXPECT_EQ(Run({"SCARD", "s"}), Value::Integer(3));
  EXPECT_EQ(Run({"SISMEMBER", "s", "a"}), Value::Integer(1));
  EXPECT_EQ(Run({"SISMEMBER", "s", "z"}), Value::Integer(0));
  EXPECT_EQ(Run({"SMISMEMBER", "s", "a", "z"}),
            Value::Array({Value::Integer(1), Value::Integer(0)}));
  EXPECT_EQ(Run({"SREM", "s", "a", "z"}), Value::Integer(1));
  EXPECT_EQ(Run({"SREM", "s", "b", "c"}), Value::Integer(2));
  EXPECT_EQ(Run({"EXISTS", "s"}), Value::Integer(0));
}

TEST_F(EngineTest, SetOps) {
  Run({"SADD", "s1", "a", "b", "c"});
  Run({"SADD", "s2", "b", "c", "d"});
  EXPECT_EQ(Run({"SINTER", "s1", "s2"}),
            Value::Array({Value::Bulk("b"), Value::Bulk("c")}));
  EXPECT_EQ(Run({"SDIFF", "s1", "s2"}), Value::Array({Value::Bulk("a")}));
  EXPECT_EQ(Run({"SUNION", "s1", "s2"}).array.size(), 4u);
  EXPECT_EQ(Run({"SINTERSTORE", "dst", "s1", "s2"}), Value::Integer(2));
  EXPECT_EQ(Run({"SMEMBERS", "dst"}),
            Value::Array({Value::Bulk("b"), Value::Bulk("c")}));
  EXPECT_EQ(Run({"SDIFFSTORE", "dst", "s2", "s1"}), Value::Integer(1));
  // Store of an empty result deletes the destination.
  EXPECT_EQ(Run({"SINTERSTORE", "dst", "s1", "ghost"}), Value::Integer(0));
  EXPECT_EQ(Run({"EXISTS", "dst"}), Value::Integer(0));
}

TEST_F(EngineTest, SMove) {
  Run({"SADD", "src", "a", "b"});
  EXPECT_EQ(Run({"SMOVE", "src", "dst", "a"}), Value::Integer(1));
  EXPECT_EQ(Run({"SMOVE", "src", "dst", "ghost"}), Value::Integer(0));
  EXPECT_EQ(Run({"SISMEMBER", "dst", "a"}), Value::Integer(1));
}

TEST_F(EngineTest, SPopReplicatesAsSRem) {
  Run({"SADD", "s", "a", "b", "c"});
  Value popped = Run({"SPOP", "s"});
  ASSERT_EQ(popped.type, resp::Type::kBulkString);
  ASSERT_EQ(ctx_.effects.size(), 1u);
  EXPECT_EQ(ctx_.effects[0], (Argv{"SREM", "s", popped.str}));
  EXPECT_EQ(Run({"SISMEMBER", "s", popped.str}), Value::Integer(0));
}

TEST_F(EngineTest, SPopWithCountDrainsSet) {
  Run({"SADD", "s", "a", "b", "c"});
  Value popped = Run({"SPOP", "s", "10"});
  EXPECT_EQ(popped.array.size(), 3u);
  ASSERT_EQ(ctx_.effects.size(), 1u);
  EXPECT_EQ(ctx_.effects[0].size(), 5u);  // SREM s + 3 members
  EXPECT_EQ(Run({"EXISTS", "s"}), Value::Integer(0));
}

TEST_F(EngineTest, SPopOnMissingKeyNoEffect) {
  auto effects = EffectsOf({"SPOP", "ghost"});
  EXPECT_TRUE(effects.empty());
}

// ---------------------------------------------------------------- zsets

TEST_F(EngineTest, ZAddZScoreZCard) {
  EXPECT_EQ(Run({"ZADD", "z", "1", "a", "2", "b"}), Value::Integer(2));
  EXPECT_EQ(Run({"ZADD", "z", "3", "a"}), Value::Integer(0));  // update
  EXPECT_EQ(Run({"ZADD", "z", "CH", "4", "a", "5", "c"}), Value::Integer(2));
  EXPECT_EQ(Run({"ZSCORE", "z", "a"}), Value::Bulk("4"));
  EXPECT_EQ(Run({"ZSCORE", "z", "ghost"}), Value::Null());
  EXPECT_EQ(Run({"ZCARD", "z"}), Value::Integer(3));
  EXPECT_EQ(Run({"ZMSCORE", "z", "a", "ghost"}),
            Value::Array({Value::Bulk("4"), Value::Null()}));
}

TEST_F(EngineTest, ZAddConditionalFlags) {
  Run({"ZADD", "z", "5", "m"});
  EXPECT_EQ(Run({"ZADD", "z", "NX", "9", "m"}), Value::Integer(0));
  EXPECT_EQ(Run({"ZSCORE", "z", "m"}), Value::Bulk("5"));
  EXPECT_EQ(Run({"ZADD", "z", "XX", "9", "ghost"}), Value::Integer(0));
  EXPECT_EQ(Run({"ZSCORE", "z", "ghost"}), Value::Null());
  EXPECT_EQ(Run({"ZADD", "z", "GT", "3", "m"}), Value::Integer(0));
  EXPECT_EQ(Run({"ZSCORE", "z", "m"}), Value::Bulk("5"));  // 3 < 5 skipped
  Run({"ZADD", "z", "GT", "7", "m"});
  EXPECT_EQ(Run({"ZSCORE", "z", "m"}), Value::Bulk("7"));
  Run({"ZADD", "z", "LT", "2", "m"});
  EXPECT_EQ(Run({"ZSCORE", "z", "m"}), Value::Bulk("2"));
}

TEST_F(EngineTest, ZAddIncrMode) {
  EXPECT_EQ(Run({"ZADD", "z", "INCR", "5", "m"}), Value::Bulk("5"));
  EXPECT_EQ(Run({"ZADD", "z", "INCR", "2.5", "m"}), Value::Bulk("7.5"));
  EXPECT_EQ(Run({"ZADD", "z", "NX", "INCR", "1", "m"}), Value::Null());
  auto effects = EffectsOf({"ZINCRBY", "z", "0.5", "m"});
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0], (Argv{"ZADD", "z", "8", "m"}));  // resolved score
}

TEST_F(EngineTest, ZRankAndRanges) {
  Run({"ZADD", "z", "1", "a", "2", "b", "3", "c"});
  EXPECT_EQ(Run({"ZRANK", "z", "a"}), Value::Integer(0));
  EXPECT_EQ(Run({"ZREVRANK", "z", "a"}), Value::Integer(2));
  EXPECT_EQ(Run({"ZRANK", "z", "ghost"}), Value::Null());
  EXPECT_EQ(Run({"ZRANGE", "z", "0", "-1"}),
            Value::Array({Value::Bulk("a"), Value::Bulk("b"), Value::Bulk("c")}));
  EXPECT_EQ(
      Run({"ZRANGE", "z", "0", "0", "WITHSCORES"}),
      Value::Array({Value::Bulk("a"), Value::Bulk("1")}));
  EXPECT_EQ(Run({"ZREVRANGE", "z", "0", "1"}),
            Value::Array({Value::Bulk("c"), Value::Bulk("b")}));
  EXPECT_EQ(Run({"ZRANGE", "z", "0", "0", "REV"}),
            Value::Array({Value::Bulk("c")}));
}

TEST_F(EngineTest, ZRangeByScoreAndCount) {
  for (int i = 1; i <= 5; ++i) {
    Run({"ZADD", "z", std::to_string(i), "m" + std::to_string(i)});
  }
  EXPECT_EQ(Run({"ZRANGEBYSCORE", "z", "2", "4"}).array.size(), 3u);
  EXPECT_EQ(Run({"ZRANGEBYSCORE", "z", "(2", "4"}).array.size(), 2u);
  EXPECT_EQ(Run({"ZRANGEBYSCORE", "z", "-inf", "+inf"}).array.size(), 5u);
  EXPECT_EQ(Run({"ZREVRANGEBYSCORE", "z", "4", "2"}),
            Value::Array({Value::Bulk("m4"), Value::Bulk("m3"),
                          Value::Bulk("m2")}));
  EXPECT_EQ(Run({"ZCOUNT", "z", "2", "(4"}), Value::Integer(2));
  EXPECT_EQ(Run({"ZREMRANGEBYSCORE", "z", "1", "3"}), Value::Integer(3));
  EXPECT_EQ(Run({"ZCARD", "z"}), Value::Integer(2));
}

TEST_F(EngineTest, ZPopMinMaxReplicateAsZRem) {
  Run({"ZADD", "z", "1", "a", "2", "b", "3", "c"});
  EXPECT_EQ(Run({"ZPOPMIN", "z"}),
            Value::Array({Value::Bulk("a"), Value::Bulk("1")}));
  ASSERT_EQ(ctx_.effects.size(), 1u);
  EXPECT_EQ(ctx_.effects[0], (Argv{"ZREM", "z", "a"}));
  EXPECT_EQ(Run({"ZPOPMAX", "z", "2"}).array.size(), 4u);
  EXPECT_EQ(Run({"EXISTS", "z"}), Value::Integer(0));
}

// ---------------------------------------------------------------- server

TEST_F(EngineTest, PingEchoTimeDbsize) {
  EXPECT_EQ(Run({"PING"}), Value::Simple("PONG"));
  EXPECT_EQ(Run({"PING", "hi"}), Value::Bulk("hi"));
  EXPECT_EQ(Run({"ECHO", "x"}), Value::Bulk("x"));
  Run({"SET", "k", "v"});
  EXPECT_EQ(Run({"DBSIZE"}), Value::Integer(1));
  Value t = Run({"TIME"}, 12345);
  EXPECT_EQ(t.array[0].str, "12");
  EXPECT_EQ(Run({"SELECT", "0"}), Value::Ok());
  EXPECT_TRUE(Run({"SELECT", "1"}).IsError());
}

TEST_F(EngineTest, FlushAllReplicates) {
  Run({"MSET", "a", "1", "b", "2"});
  auto effects = EffectsOf({"FLUSHALL"});
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0], (Argv{"FLUSHALL"}));
  EXPECT_EQ(engine_.keyspace().Size(), 0u);
}

TEST_F(EngineTest, CommandIntrospection) {
  Value count = Run({"COMMAND", "COUNT"});
  EXPECT_GT(count.integer, 80);
  Value all = Run({"COMMAND"});
  EXPECT_EQ(static_cast<int64_t>(all.array.size()), count.integer);
}

TEST_F(EngineTest, UnknownCommandAndArity) {
  EXPECT_TRUE(Run({"BOGUS"}).IsError());
  EXPECT_TRUE(Run({"GET"}).IsError());
  EXPECT_TRUE(Run({"GET", "a", "b"}).IsError());
  EXPECT_TRUE(Run({"SET", "a"}).IsError());
}

TEST_F(EngineTest, MaxMemoryRejectsWrites) {
  // Admission is size-aware: with a 1-byte budget even the first write is
  // rejected up front — nothing ever slips past the ceiling.
  engine_.set_maxmemory(1);
  Value v = Run({"SET", "k", "v"});
  EXPECT_TRUE(v.IsError());
  EXPECT_NE(v.str.find("OOM"), std::string::npos);
  EXPECT_EQ(engine_.keyspace().Size(), 0u);

  // A budget with headroom admits writes until it is exhausted, then
  // rejects; reads and memory-relieving writes keep working at the ceiling.
  engine_.set_maxmemory(200);
  EXPECT_EQ(Run({"SET", "k", "v"}), Value::Ok());
  v = Run({"SET", "k2", std::string(200, 'x')});
  EXPECT_TRUE(v.IsError());
  EXPECT_NE(v.str.find("OOM"), std::string::npos);
  EXPECT_EQ(Run({"GET", "k"}), Value::Bulk("v"));
  EXPECT_EQ(Run({"DEL", "k"}), Value::Integer(1));  // deny_oom = false
}

TEST_F(EngineTest, CommandKeysExtraction) {
  const CommandSpec* mset = engine_.FindCommand("MSET");
  ASSERT_NE(mset, nullptr);
  auto keys = Engine::CommandKeys(*mset, {"MSET", "a", "1", "b", "2"});
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
  const CommandSpec* get = engine_.FindCommand("get");  // case-insensitive
  ASSERT_NE(get, nullptr);
  keys = Engine::CommandKeys(*get, {"GET", "k"});
  EXPECT_EQ(keys, (std::vector<std::string>{"k"}));
  const CommandSpec* ping = engine_.FindCommand("PING");
  EXPECT_TRUE(Engine::CommandKeys(*ping, {"PING"}).empty());
}

// ------------------------------------------------- replication property

// Replays the primary's effect stream into a replica engine and checks the
// two end states are byte-identical — the invariant the paper's transaction
// log design rests on.
TEST_F(EngineTest, EffectStreamConvergence) {
  Engine replica;
  Rng workload_rng(99);
  std::vector<Argv> log;
  const std::vector<std::string> keys = {"k1", "k2", "k3", "{t}l", "{t}s",
                                         "{t}z", "{t}h"};
  for (int i = 0; i < 5000; ++i) {
    ExecContext ctx;
    ctx.now_ms = 1000 + static_cast<uint64_t>(i);
    ctx.rng = &engine_.rng();
    const std::string& key = keys[workload_rng.Uniform(keys.size())];
    Argv cmd;
    switch (workload_rng.Uniform(12)) {
      case 0:
        cmd = {"SET", key, workload_rng.RandomString(8)};
        break;
      case 1:
        cmd = {"SET", key, "v", "PX", std::to_string(workload_rng.UniformRange(1, 50))};
        break;
      case 2:
        cmd = {"DEL", key};
        break;
      case 3:
        cmd = {"INCR", "counter"};
        break;
      case 4:
        cmd = {"LPUSH", "{t}l", workload_rng.RandomString(4)};
        break;
      case 5:
        cmd = {"RPOP", "{t}l"};
        break;
      case 6:
        cmd = {"SADD", "{t}s", std::to_string(workload_rng.Uniform(50))};
        break;
      case 7:
        cmd = {"SPOP", "{t}s"};
        break;
      case 8:
        cmd = {"ZADD", "{t}z", std::to_string(workload_rng.Uniform(100)),
               "m" + std::to_string(workload_rng.Uniform(20))};
        break;
      case 9:
        cmd = {"ZPOPMIN", "{t}z"};
        break;
      case 10:
        cmd = {"HSET", "{t}h", "f" + std::to_string(workload_rng.Uniform(10)),
               workload_rng.RandomString(4)};
        break;
      case 11:
        cmd = {"INCRBYFLOAT", "float", "0.1"};
        break;
    }
    engine_.Execute(cmd, &ctx);
    for (auto& effect : ctx.effects) log.push_back(std::move(effect));
  }
  // Final active-expire sweep so both sides agree on expired keys.
  ExecContext sweep;
  sweep.now_ms = 10'000'000;
  engine_.ActiveExpire(&sweep, 1'000'000);
  for (auto& effect : sweep.effects) log.push_back(std::move(effect));

  for (const Argv& effect : log) {
    Value v = replica.Apply(effect, 0);
    ASSERT_FALSE(v.IsError()) << v.ToString();
  }

  SnapshotMeta meta;
  const std::string a = SerializeSnapshot(engine_.keyspace(), meta);
  const std::string b = SerializeSnapshot(replica.keyspace(), meta);
  EXPECT_EQ(a, b) << "primary and replica diverged";
  EXPECT_GT(engine_.keyspace().Size(), 0u);  // workload left data behind
}

// ---------------------------------------------------------------- snapshot

TEST_F(EngineTest, SnapshotRoundTrip) {
  Run({"SET", "s", "hello", "EX", "100"}, 1000);
  Run({"RPUSH", "l", "a", "b"});
  Run({"HSET", "h", "f", "v"});
  Run({"SADD", "set", "1", "2", "x"});
  Run({"ZADD", "z", "1.5", "m"});

  SnapshotMeta meta;
  meta.log_position = 42;
  meta.log_running_checksum = 0xDEADBEEF;
  meta.created_at_ms = 777;
  const std::string blob = SerializeSnapshot(engine_.keyspace(), meta);

  SnapshotMeta header_only;
  ASSERT_TRUE(ReadSnapshotMeta(blob, &header_only).ok());
  EXPECT_EQ(header_only.log_position, 42u);
  EXPECT_EQ(header_only.log_running_checksum, 0xDEADBEEFu);

  Engine restored;
  SnapshotMeta restored_meta;
  ASSERT_TRUE(
      DeserializeSnapshot(blob, &restored.keyspace(), &restored_meta).ok());
  EXPECT_EQ(restored_meta.created_at_ms, 777u);
  EXPECT_EQ(restored.keyspace().Size(), 5u);

  ExecContext ctx;
  ctx.now_ms = 1000;
  ctx.rng = &restored.rng();
  EXPECT_EQ(restored.Execute({"GET", "s"}, &ctx), Value::Bulk("hello"));
  EXPECT_EQ(restored.Execute({"TTL", "s"}, &ctx), Value::Integer(100));
  EXPECT_EQ(restored.Execute({"LRANGE", "l", "0", "-1"}, &ctx),
            Value::Array({Value::Bulk("a"), Value::Bulk("b")}));
  EXPECT_EQ(restored.Execute({"ZSCORE", "z", "m"}, &ctx), Value::Bulk("1.5"));

  // Deterministic serialization: re-snapshot is byte-identical.
  EXPECT_EQ(SerializeSnapshot(restored.keyspace(), meta), blob);
}

TEST_F(EngineTest, SnapshotDetectsCorruption) {
  Run({"SET", "k", "v"});
  SnapshotMeta meta;
  std::string blob = SerializeSnapshot(engine_.keyspace(), meta);
  blob[blob.size() / 2] ^= 0x01;
  Engine restored;
  SnapshotMeta m2;
  Status s = DeserializeSnapshot(blob, &restored.keyspace(), &m2);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(EngineTest, SnapshotRejectsTruncation) {
  Run({"SET", "k", "v"});
  SnapshotMeta meta;
  std::string blob = SerializeSnapshot(engine_.keyspace(), meta);
  Engine restored;
  SnapshotMeta m2;
  EXPECT_TRUE(DeserializeSnapshot(Slice(blob.data(), blob.size() - 3),
                                  &restored.keyspace(), &m2)
                  .IsCorruption());
}

}  // namespace
}  // namespace memdb::engine
