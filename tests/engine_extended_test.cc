// Tests for the extended command families: bitmaps, HyperLogLog, GETEX,
// COPY, LPOS, SINTERCARD, random-member count variants, and the sorted-set
// store/aggregate commands.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "engine/engine.h"
#include "engine/snapshot.h"

namespace memdb::engine {
namespace {

using resp::Value;

class ExtendedTest : public ::testing::Test {
 protected:
  Value Run(const Argv& argv, uint64_t now_ms = 1000) {
    ctx_ = ExecContext{};
    ctx_.now_ms = now_ms;
    ctx_.rng = &engine_.rng();
    return engine_.Execute(argv, &ctx_);
  }
  Engine engine_;
  ExecContext ctx_;
};

// ----------------------------------------------------------------- bitmaps

TEST_F(ExtendedTest, SetBitGetBit) {
  EXPECT_EQ(Run({"SETBIT", "b", "7", "1"}), Value::Integer(0));
  EXPECT_EQ(Run({"GETBIT", "b", "7"}), Value::Integer(1));
  EXPECT_EQ(Run({"GETBIT", "b", "6"}), Value::Integer(0));
  EXPECT_EQ(Run({"SETBIT", "b", "7", "0"}), Value::Integer(1));
  EXPECT_EQ(Run({"GETBIT", "b", "7"}), Value::Integer(0));
  // MSB-first layout: bit 0 is the top bit of byte 0.
  Run({"SETBIT", "b2", "0", "1"});
  EXPECT_EQ(Run({"GET", "b2"}), Value::Bulk(std::string(1, '\x80')));
  EXPECT_EQ(Run({"GETBIT", "ghost", "100"}), Value::Integer(0));
  EXPECT_TRUE(Run({"SETBIT", "b", "-1", "1"}).IsError());
  EXPECT_TRUE(Run({"SETBIT", "b", "3", "2"}).IsError());
}

TEST_F(ExtendedTest, BitCountWholeAndRanges) {
  Run({"SET", "mykey", "foobar"});
  EXPECT_EQ(Run({"BITCOUNT", "mykey"}), Value::Integer(26));
  EXPECT_EQ(Run({"BITCOUNT", "mykey", "0", "0"}), Value::Integer(4));
  EXPECT_EQ(Run({"BITCOUNT", "mykey", "1", "1"}), Value::Integer(6));
  EXPECT_EQ(Run({"BITCOUNT", "mykey", "0", "-5"}), Value::Integer(10));
  EXPECT_EQ(Run({"BITCOUNT", "ghost"}), Value::Integer(0));
}

TEST_F(ExtendedTest, BitOps) {
  Run({"SET", "a", "abc"});
  Run({"SET", "b", "abd"});
  EXPECT_EQ(Run({"BITOP", "AND", "dst", "a", "b"}), Value::Integer(3));
  Value v = Run({"GET", "dst"});
  EXPECT_EQ(v.str[0], 'a');
  EXPECT_EQ(Run({"BITOP", "XOR", "dst", "a", "a"}), Value::Integer(3));
  EXPECT_EQ(Run({"GET", "dst"}), Value::Bulk(std::string(3, '\0')));
  EXPECT_EQ(Run({"BITOP", "NOT", "dst", "a"}), Value::Integer(3));
  EXPECT_TRUE(Run({"BITOP", "NOT", "dst", "a", "b"}).IsError());
  EXPECT_TRUE(Run({"BITOP", "NAND", "dst", "a"}).IsError());
}

// ------------------------------------------------------------- hyperloglog

TEST_F(ExtendedTest, PfAddCountApproximates) {
  for (int i = 0; i < 10000; ++i) {
    Run({"PFADD", "hll", "element-" + std::to_string(i)});
  }
  Value v = Run({"PFCOUNT", "hll"});
  ASSERT_EQ(v.type, resp::Type::kInteger);
  // HLL with 16384 registers has ~0.81% standard error; allow 5%.
  EXPECT_NEAR(static_cast<double>(v.integer), 10000.0, 500.0);
}

TEST_F(ExtendedTest, PfAddIdempotentForSeenElements) {
  EXPECT_EQ(Run({"PFADD", "hll", "x"}), Value::Integer(1));
  EXPECT_EQ(Run({"PFADD", "hll", "x"}), Value::Integer(0));
  EXPECT_EQ(Run({"PFCOUNT", "hll"}), Value::Integer(1));
  Run({"PFADD", "hll", "y", "z"});
  EXPECT_EQ(Run({"PFCOUNT", "hll"}), Value::Integer(3));
}

TEST_F(ExtendedTest, PfCountSmallRangeExact) {
  for (int i = 0; i < 100; ++i) {
    Run({"PFADD", "hll", "e" + std::to_string(i)});
  }
  // Linear counting makes the small range essentially exact.
  Value v = Run({"PFCOUNT", "hll"});
  EXPECT_NEAR(static_cast<double>(v.integer), 100.0, 3.0);
  EXPECT_EQ(Run({"PFCOUNT", "ghost"}), Value::Integer(0));
}

TEST_F(ExtendedTest, PfMergeUnions) {
  for (int i = 0; i < 1000; ++i) {
    Run({"PFADD", "h1", "a" + std::to_string(i)});
    Run({"PFADD", "h2", "b" + std::to_string(i)});
    Run({"PFADD", "h2", "a" + std::to_string(i)});  // overlap with h1
  }
  EXPECT_EQ(Run({"PFMERGE", "dst", "h1", "h2"}), Value::Ok());
  Value merged = Run({"PFCOUNT", "dst"});
  EXPECT_NEAR(static_cast<double>(merged.integer), 2000.0, 120.0);
  // Multi-key PFCOUNT estimates the union without writing.
  Value multi = Run({"PFCOUNT", "h1", "h2"});
  EXPECT_NEAR(static_cast<double>(multi.integer), 2000.0, 120.0);
}

TEST_F(ExtendedTest, PfRejectsPlainStrings) {
  Run({"SET", "s", "not an hll"});
  EXPECT_TRUE(Run({"PFCOUNT", "s"}).IsError());
  EXPECT_TRUE(Run({"PFADD", "s", "x"}).IsError());
}

// ------------------------------------------------------------------- getex

TEST_F(ExtendedTest, GetExAdjustsExpiry) {
  Run({"SET", "k", "v"});
  EXPECT_EQ(Run({"GETEX", "k", "EX", "100"}), Value::Bulk("v"));
  EXPECT_EQ(Run({"TTL", "k"}), Value::Integer(100));
  EXPECT_EQ(Run({"GETEX", "k", "PERSIST"}), Value::Bulk("v"));
  EXPECT_EQ(Run({"TTL", "k"}), Value::Integer(-1));
  EXPECT_EQ(Run({"GETEX", "k"}), Value::Bulk("v"));  // plain GET form
  EXPECT_EQ(Run({"GETEX", "ghost"}), Value::Null());
  // Expiry change replicates deterministically.
  Run({"GETEX", "k", "EX", "50"});
  ASSERT_EQ(ctx_.effects.size(), 1u);
  EXPECT_EQ(ctx_.effects[0][0], "PEXPIREAT");
}

TEST_F(ExtendedTest, CopyDuplicatesValueAndTtl) {
  Run({"ZADD", "src", "1", "a", "2", "b"});
  Run({"PEXPIRE", "src", "60000"});
  EXPECT_EQ(Run({"COPY", "src", "dst"}), Value::Integer(1));
  EXPECT_EQ(Run({"ZSCORE", "dst", "b"}), Value::Bulk("2"));
  EXPECT_GT(Run({"PTTL", "dst"}).integer, 0);
  // Existing destination requires REPLACE.
  EXPECT_EQ(Run({"COPY", "src", "dst"}), Value::Integer(0));
  Run({"SET", "other", "x"});
  EXPECT_EQ(Run({"COPY", "other", "dst", "REPLACE"}), Value::Integer(1));
  EXPECT_EQ(Run({"TYPE", "dst"}), Value::Simple("string"));
  EXPECT_EQ(Run({"COPY", "ghost", "dst2"}), Value::Integer(0));
}

TEST_F(ExtendedTest, ExpireTimeIntrospection) {
  Run({"SET", "k", "v"}, 5000);
  Run({"PEXPIREAT", "k", "90000"}, 5000);
  EXPECT_EQ(Run({"PEXPIRETIME", "k"}, 5000), Value::Integer(90000));
  EXPECT_EQ(Run({"EXPIRETIME", "k"}, 5000), Value::Integer(90));
  Run({"PERSIST", "k"}, 5000);
  EXPECT_EQ(Run({"EXPIRETIME", "k"}, 5000), Value::Integer(-1));
  EXPECT_EQ(Run({"EXPIRETIME", "ghost"}, 5000), Value::Integer(-2));
}

// -------------------------------------------------------------------- lpos

TEST_F(ExtendedTest, LPosBasicRankAndCount) {
  Run({"RPUSH", "l", "a", "b", "c", "b", "b"});
  EXPECT_EQ(Run({"LPOS", "l", "b"}), Value::Integer(1));
  EXPECT_EQ(Run({"LPOS", "l", "b", "RANK", "2"}), Value::Integer(3));
  EXPECT_EQ(Run({"LPOS", "l", "b", "RANK", "-1"}), Value::Integer(4));
  EXPECT_EQ(Run({"LPOS", "l", "b", "COUNT", "2"}),
            Value::Array({Value::Integer(1), Value::Integer(3)}));
  EXPECT_EQ(Run({"LPOS", "l", "b", "COUNT", "0"}),
            Value::Array({Value::Integer(1), Value::Integer(3),
                          Value::Integer(4)}));
  EXPECT_EQ(Run({"LPOS", "l", "zzz"}), Value::Null());
  EXPECT_TRUE(Run({"LPOS", "l", "b", "RANK", "0"}).IsError());
}

// -------------------------------------------------------------- sintercard

TEST_F(ExtendedTest, SInterCard) {
  Run({"SADD", "s1", "a", "b", "c", "d"});
  Run({"SADD", "s2", "b", "c", "d", "e"});
  EXPECT_EQ(Run({"SINTERCARD", "2", "s1", "s2"}), Value::Integer(3));
  EXPECT_EQ(Run({"SINTERCARD", "2", "s1", "s2", "LIMIT", "2"}),
            Value::Integer(2));
  EXPECT_EQ(Run({"SINTERCARD", "2", "s1", "ghost"}), Value::Integer(0));
  EXPECT_EQ(Run({"SINTERCARD", "1", "s1"}), Value::Integer(4));
}

// ------------------------------------------------------ random with counts

TEST_F(ExtendedTest, SRandMemberCounts) {
  Run({"SADD", "s", "a", "b", "c"});
  Value distinct = Run({"SRANDMEMBER", "s", "10"});
  EXPECT_EQ(distinct.array.size(), 3u);  // capped at set size, all distinct
  std::set<std::string> seen;
  for (const auto& m : distinct.array) seen.insert(m.str);
  EXPECT_EQ(seen.size(), 3u);
  Value repeated = Run({"SRANDMEMBER", "s", "-10"});
  EXPECT_EQ(repeated.array.size(), 10u);
  EXPECT_EQ(Run({"SRANDMEMBER", "ghost", "5"}), Value::Array({}));
}

TEST_F(ExtendedTest, HRandFieldCounts) {
  Run({"HSET", "h", "f1", "v1", "f2", "v2"});
  Value fields = Run({"HRANDFIELD", "h", "5"});
  EXPECT_EQ(fields.array.size(), 2u);
  Value with_values = Run({"HRANDFIELD", "h", "2", "WITHVALUES"});
  EXPECT_EQ(with_values.array.size(), 4u);
  Value sampled = Run({"HRANDFIELD", "h", "-5"});
  EXPECT_EQ(sampled.array.size(), 5u);
}

TEST_F(ExtendedTest, ZRandMember) {
  Run({"ZADD", "z", "1", "a", "2", "b"});
  Value one = Run({"ZRANDMEMBER", "z"});
  EXPECT_EQ(one.type, resp::Type::kBulkString);
  Value many = Run({"ZRANDMEMBER", "z", "5", "WITHSCORES"});
  EXPECT_EQ(many.array.size(), 4u);  // 2 members x (member, score)
  EXPECT_EQ(Run({"ZRANDMEMBER", "ghost"}), Value::Null());
}

// ---------------------------------------------------------- zset store ops

TEST_F(ExtendedTest, ZUnionStoreWeightsAggregate) {
  Run({"ZADD", "z1", "1", "a", "2", "b"});
  Run({"ZADD", "z2", "3", "b", "4", "c"});
  EXPECT_EQ(Run({"ZUNIONSTORE", "dst", "2", "z1", "z2"}), Value::Integer(3));
  EXPECT_EQ(Run({"ZSCORE", "dst", "b"}), Value::Bulk("5"));  // SUM default
  EXPECT_EQ(Run({"ZUNIONSTORE", "dst", "2", "z1", "z2", "WEIGHTS", "10",
                 "1"}),
            Value::Integer(3));
  EXPECT_EQ(Run({"ZSCORE", "dst", "a"}), Value::Bulk("10"));
  EXPECT_EQ(Run({"ZUNIONSTORE", "dst", "2", "z1", "z2", "AGGREGATE", "MAX"}),
            Value::Integer(3));
  EXPECT_EQ(Run({"ZSCORE", "dst", "b"}), Value::Bulk("3"));
  // Plain sets participate with score 1.
  Run({"SADD", "s", "a", "x"});
  EXPECT_EQ(Run({"ZUNIONSTORE", "dst", "2", "z1", "s"}), Value::Integer(3));
  EXPECT_EQ(Run({"ZSCORE", "dst", "x"}), Value::Bulk("1"));
}

TEST_F(ExtendedTest, ZInterAndDiffStore) {
  Run({"ZADD", "z1", "1", "a", "2", "b", "3", "c"});
  Run({"ZADD", "z2", "10", "b", "20", "c", "30", "d"});
  EXPECT_EQ(Run({"ZINTERSTORE", "inter", "2", "z1", "z2"}),
            Value::Integer(2));
  EXPECT_EQ(Run({"ZSCORE", "inter", "b"}), Value::Bulk("12"));
  EXPECT_EQ(Run({"ZDIFFSTORE", "diff", "2", "z1", "z2"}), Value::Integer(1));
  EXPECT_EQ(Run({"ZSCORE", "diff", "a"}), Value::Bulk("1"));
  // Empty result deletes the destination.
  Run({"SET", "marker", "x"});
  Run({"ZADD", "empty1", "1", "only"});
  EXPECT_EQ(Run({"ZINTERSTORE", "inter", "2", "empty1", "z2"}),
            Value::Integer(0));
  EXPECT_EQ(Run({"EXISTS", "inter"}), Value::Integer(0));
}

TEST_F(ExtendedTest, ZRangeStoreAndRemRangeByRank) {
  for (int i = 0; i < 10; ++i) {
    Run({"ZADD", "z", std::to_string(i), "m" + std::to_string(i)});
  }
  EXPECT_EQ(Run({"ZRANGESTORE", "top3", "z", "0", "2", "REV"}),
            Value::Integer(3));
  EXPECT_EQ(Run({"ZRANGE", "top3", "0", "-1"}),
            Value::Array({Value::Bulk("m7"), Value::Bulk("m8"),
                          Value::Bulk("m9")}));
  EXPECT_EQ(Run({"ZREMRANGEBYRANK", "z", "0", "4"}), Value::Integer(5));
  EXPECT_EQ(Run({"ZCARD", "z"}), Value::Integer(5));
  EXPECT_EQ(Run({"ZRANGE", "z", "0", "0"}), Value::Array({Value::Bulk("m5")}));
  EXPECT_EQ(Run({"ZREMRANGEBYRANK", "z", "0", "-1"}), Value::Integer(5));
  EXPECT_EQ(Run({"EXISTS", "z"}), Value::Integer(0));
}

// Effects replayed on a replica converge for the new families too.
TEST_F(ExtendedTest, ExtendedEffectsConverge) {
  Engine replica;
  std::vector<Argv> log;
  auto run = [&](const Argv& argv) {
    ExecContext ctx;
    ctx.now_ms = 1000;
    ctx.rng = &engine_.rng();
    engine_.Execute(argv, &ctx);
    for (auto& eff : ctx.effects) log.push_back(std::move(eff));
  };
  run({"SETBIT", "bits", "100", "1"});
  run({"BITOP", "NOT", "inverted", "bits"});
  run({"PFADD", "hll", "a", "b", "c"});
  run({"PFMERGE", "merged", "hll"});
  run({"ZADD", "z1", "1", "a", "2", "b"});
  run({"ZUNIONSTORE", "zu", "2", "z1", "z1", "WEIGHTS", "2", "3"});
  run({"COPY", "zu", "zu2"});
  run({"GETEX", "ghost", "EX", "5"});  // no-op, no effect
  for (const Argv& effect : log) {
    ASSERT_FALSE(replica.Apply(effect, 1000).IsError());
  }
  engine::SnapshotMeta meta;
  EXPECT_EQ(SerializeSnapshot(engine_.keyspace(), meta),
            SerializeSnapshot(replica.keyspace(), meta));
}

}  // namespace
}  // namespace memdb::engine
