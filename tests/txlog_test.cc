#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "rpc/loop.h"
#include "sim/simulation.h"
#include "txlog/client.h"
#include "txlog/group.h"
#include "txlog/remote_client.h"
#include "txlog/rpc_wire.h"
#include "txlog/service.h"

namespace memdb::txlog {
namespace {

using sim::kMs;
using sim::kSec;
using sim::NodeId;

// A simulated database-node-like client of the log service.
class TestClient : public sim::Actor {
 public:
  TestClient(sim::Simulation* sim, NodeId id, std::vector<NodeId> replicas)
      : Actor(sim, id), log(this, std::move(replicas)) {}

  TxLogClient log;
};

LogRecord DataRecord(const std::string& payload, uint64_t writer = 1,
                     uint64_t request_id = 0) {
  LogRecord r;
  r.type = RecordType::kData;
  r.writer = writer;
  r.request_id = request_id;
  r.payload = payload;
  return r;
}

class TxLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulation>(1234);
    group_ = std::make_unique<LogGroup>(sim_.get());
    client_node_ = sim_->AddHost(0);
    client_ = std::make_unique<TestClient>(sim_.get(), client_node_,
                                           group_->replica_ids());
    // Let the first election settle.
    sim_->RunFor(2 * kSec);
  }

  // Appends synchronously (runs the sim until the callback fires).
  Status AppendSync(uint64_t prev, const std::string& payload,
                    uint64_t* index_out = nullptr, uint64_t writer = 1,
                    uint64_t request_id = 0) {
    Status result = Status::Internal("callback never ran");
    bool done = false;
    client_->log.Append(prev, DataRecord(payload, writer, request_id),
                        [&](const Status& s, uint64_t index) {
                          result = s;
                          if (index_out != nullptr) *index_out = index;
                          done = true;
                        });
    for (int i = 0; i < 10000 && !done; ++i) {
      sim_->RunFor(10 * kMs);
    }
    EXPECT_TRUE(done);
    return result;
  }

  std::vector<LogEntry> ReadAllSync() {
    std::vector<LogEntry> all;
    uint64_t from = 1;
    while (true) {
      bool done = false;
      wire::ClientReadResponse got;
      Status status = Status::OK();
      client_->log.Read(from, 128, [&](const Status& s,
                                       const wire::ClientReadResponse& r) {
        status = s;
        got = r;
        done = true;
      });
      for (int i = 0; i < 10000 && !done; ++i) sim_->RunFor(10 * kMs);
      EXPECT_TRUE(done);
      if (!status.ok() || got.entries.empty()) break;
      from = got.entries.back().index + 1;
      for (auto& e : got.entries) all.push_back(std::move(e));
    }
    return all;
  }

  // Data payloads in committed order.
  std::vector<std::string> DataPayloads() {
    std::vector<std::string> out;
    for (const LogEntry& e : ReadAllSync()) {
      if (e.record.type == RecordType::kData) out.push_back(e.record.payload);
    }
    return out;
  }

  uint64_t TailSync() {
    bool done = false;
    wire::ClientTailResponse resp;
    client_->log.Tail([&](const Status& s, const wire::ClientTailResponse& r) {
      resp = r;
      done = true;
    });
    for (int i = 0; i < 10000 && !done; ++i) sim_->RunFor(10 * kMs);
    EXPECT_TRUE(done);
    return resp.last_index;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<LogGroup> group_;
  NodeId client_node_;
  std::unique_ptr<TestClient> client_;
};

TEST_F(TxLogTest, ElectsExactlyOneLeader) {
  int leaders = 0;
  for (size_t i = 0; i < group_->size(); ++i) {
    if (group_->replica(i)->IsLeader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST_F(TxLogTest, AppendCommitsAndReadsBack) {
  uint64_t index = 0;
  ASSERT_TRUE(AppendSync(wire::kUnconditional, "hello", &index).ok());
  EXPECT_GT(index, 0u);
  ASSERT_TRUE(AppendSync(wire::kUnconditional, "world").ok());
  EXPECT_EQ(DataPayloads(), (std::vector<std::string>{"hello", "world"}));
}

TEST_F(TxLogTest, AppendIsDurableOnAllReplicasEventually) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(AppendSync(wire::kUnconditional, "e" + std::to_string(i)).ok());
  }
  sim_->RunFor(1 * kSec);  // heartbeats propagate the commit index
  for (size_t i = 0; i < group_->size(); ++i) {
    auto entries = group_->replica(i)->CommittedEntries(1, 1000);
    int data = 0;
    for (const auto& e : entries) {
      if (e.record.type == RecordType::kData) ++data;
    }
    EXPECT_EQ(data, 10) << "replica " << i;
  }
}

TEST_F(TxLogTest, ConditionalAppendCasSemantics) {
  uint64_t tail = TailSync();
  uint64_t i1 = 0;
  ASSERT_TRUE(AppendSync(tail, "a", &i1).ok());
  EXPECT_EQ(i1, tail + 1);
  // Stale precondition fails and reports the actual tail.
  uint64_t actual = 0;
  Status s = AppendSync(tail, "b", &actual);
  EXPECT_TRUE(s.IsConditionFailed()) << s.ToString();
  EXPECT_EQ(actual, i1);
  // Correct precondition succeeds.
  ASSERT_TRUE(AppendSync(i1, "c").ok());
  EXPECT_EQ(DataPayloads(), (std::vector<std::string>{"a", "c"}));
}

TEST_F(TxLogTest, FencingTwoWriters) {
  // Both writers observe the same tail; only one conditional append wins —
  // the paper's leader-election primitive (§4.1.2).
  const uint64_t tail = TailSync();
  Status s1 = Status::Internal("pending"), s2 = Status::Internal("pending");
  int done = 0;
  client_->log.Append(tail, DataRecord("writer1-claim", 1),
                      [&](const Status& s, uint64_t) { s1 = s; ++done; });
  client_->log.Append(tail, DataRecord("writer2-claim", 2),
                      [&](const Status& s, uint64_t) { s2 = s; ++done; });
  for (int i = 0; i < 10000 && done < 2; ++i) sim_->RunFor(10 * kMs);
  ASSERT_EQ(done, 2);
  EXPECT_NE(s1.ok(), s2.ok());  // exactly one winner
  EXPECT_TRUE((s1.ok() && s2.IsConditionFailed()) ||
              (s2.ok() && s1.IsConditionFailed()));
}

TEST_F(TxLogTest, CommittedEntriesSurviveLeaderCrash) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(AppendSync(wire::kUnconditional, "pre" + std::to_string(i)).ok());
  }
  // Crash the leader.
  size_t leader_idx = 99;
  for (size_t i = 0; i < group_->size(); ++i) {
    if (group_->replica(i)->IsLeader()) leader_idx = i;
  }
  ASSERT_NE(leader_idx, 99u);
  group_->Crash(leader_idx);
  sim_->RunFor(2 * kSec);  // re-election
  EXPECT_NE(group_->Leader(), nullptr);
  ASSERT_TRUE(AppendSync(wire::kUnconditional, "post").ok());
  auto payloads = DataPayloads();
  ASSERT_EQ(payloads.size(), 6u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(payloads[static_cast<size_t>(i)], "pre" + std::to_string(i));
  }
  EXPECT_EQ(payloads[5], "post");
}

TEST_F(TxLogTest, ToleratesSingleAzLoss) {
  ASSERT_TRUE(AppendSync(wire::kUnconditional, "before").ok());
  sim_->PartitionAz(2);  // isolate one AZ entirely
  sim_->RunFor(1 * kSec);
  ASSERT_TRUE(AppendSync(wire::kUnconditional, "during").ok());
  sim_->HealAz(2);
  sim_->RunFor(2 * kSec);
  ASSERT_TRUE(AppendSync(wire::kUnconditional, "after").ok());
  EXPECT_EQ(DataPayloads(),
            (std::vector<std::string>{"before", "during", "after"}));
  // The healed replica catches up fully.
  sim_->RunFor(2 * kSec);
  uint64_t commit = group_->CommitIndex();
  for (size_t i = 0; i < group_->size(); ++i) {
    EXPECT_GE(group_->replica(i)->commit_index() + 2, commit) << i;
  }
}

TEST_F(TxLogTest, MinorityPartitionCannotCommit) {
  // Find the leader and partition it away with no companion.
  size_t leader_idx = 99;
  for (size_t i = 0; i < group_->size(); ++i) {
    if (group_->replica(i)->IsLeader()) leader_idx = i;
  }
  ASSERT_NE(leader_idx, 99u);
  const NodeId old_leader = group_->replica_ids()[leader_idx];
  sim_->network().Isolate(old_leader);
  sim_->RunFor(2 * kSec);

  // Majority side elects a new leader and accepts writes.
  RaftReplica* new_leader = nullptr;
  for (size_t i = 0; i < group_->size(); ++i) {
    if (i != leader_idx && group_->replica(i)->IsLeader()) {
      new_leader = group_->replica(i);
    }
  }
  ASSERT_NE(new_leader, nullptr);
  ASSERT_TRUE(AppendSync(wire::kUnconditional, "majority-write").ok());

  // The isolated old leader cannot have committed anything new.
  EXPECT_LT(group_->replica(leader_idx)->commit_index(),
            new_leader->commit_index());

  // After healing, the old leader steps down and converges.
  sim_->network().Heal(old_leader);
  sim_->RunFor(2 * kSec);
  EXPECT_FALSE(group_->replica(leader_idx)->IsLeader() &&
               new_leader->IsLeader());
  EXPECT_EQ(DataPayloads(), (std::vector<std::string>{"majority-write"}));
}

TEST_F(TxLogTest, RestartedReplicaKeepsDurableState) {
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(AppendSync(wire::kUnconditional, "x" + std::to_string(i)).ok());
  }
  group_->Crash(0);
  sim_->RunFor(1 * kSec);
  ASSERT_TRUE(AppendSync(wire::kUnconditional, "while-down").ok());
  group_->Restart(0);
  sim_->RunFor(3 * kSec);
  auto entries = group_->replica(0)->CommittedEntries(1, 1000);
  int data = 0;
  for (const auto& e : entries) {
    if (e.record.type == RecordType::kData) ++data;
  }
  EXPECT_EQ(data, 9);
}

TEST_F(TxLogTest, TrimRaisesFirstIndex) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(AppendSync(wire::kUnconditional, "t" + std::to_string(i)).ok());
  }
  sim_->RunFor(1 * kSec);
  client_->log.Trim(10);
  sim_->RunFor(1 * kSec);
  bool done = false;
  wire::ClientReadResponse resp;
  client_->log.Read(1, 10, [&](const Status& s,
                               const wire::ClientReadResponse& r) {
    resp = r;
    done = true;
  });
  sim_->RunFor(1 * kSec);
  ASSERT_TRUE(done);
  EXPECT_GT(resp.first_index, 1u);
  // Entries after the trim horizon are still served.
  EXPECT_FALSE(ReadAllSync().empty());
}

TEST_F(TxLogTest, IndeterminateAppendResolvableByRead) {
  // Commit an entry with a unique (writer, request_id), then verify a
  // reader can find it — the resolution path for timed-out appends.
  ASSERT_TRUE(
      AppendSync(wire::kUnconditional, "maybe", nullptr, 7, 12345).ok());
  bool found = false;
  for (const LogEntry& e : ReadAllSync()) {
    if (e.record.writer == 7 && e.record.request_id == 12345) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TxLogTest, ChaosConvergence) {
  // Random crashes, restarts, and partitions under continuous load. At the
  // end: all replicas agree on the committed prefix and every acknowledged
  // append is present exactly once.
  Rng chaos(777);
  std::vector<std::string> acked;
  int inflight = 0;
  int submitted = 0;

  for (int round = 0; round < 120; ++round) {
    // Fire off an unconditional append.
    const std::string payload = "c" + std::to_string(round);
    ++inflight;
    ++submitted;
    client_->log.Append(wire::kUnconditional, DataRecord(payload),
                        [&acked, &inflight, payload](const Status& s,
                                                     uint64_t) {
                          if (s.ok()) acked.push_back(payload);
                          --inflight;
                        });
    // Chaos.
    switch (chaos.Uniform(10)) {
      case 0: {
        const size_t victim = chaos.Uniform(3);
        if (sim_->IsAlive(group_->replica_ids()[victim])) {
          group_->Crash(victim);
        }
        break;
      }
      case 1: {
        const size_t victim = chaos.Uniform(3);
        if (!sim_->IsAlive(group_->replica_ids()[victim])) {
          group_->Restart(victim);
        }
        break;
      }
      case 2:
        sim_->PartitionAz(static_cast<sim::AzId>(chaos.Uniform(3)));
        break;
      case 3:
        sim_->network().HealAll();
        break;
      default:
        break;
    }
    // Keep a majority alive most of the time.
    int alive = 0;
    for (NodeId id : group_->replica_ids()) {
      if (sim_->IsAlive(id)) ++alive;
    }
    if (alive < 2) {
      for (size_t i = 0; i < 3; ++i) {
        if (!sim_->IsAlive(group_->replica_ids()[i])) group_->Restart(i);
      }
    }
    sim_->RunFor(chaos.UniformRange(20, 200) * kMs);
  }
  // Heal everything and drain.
  sim_->network().HealAll();
  for (size_t i = 0; i < 3; ++i) {
    if (!sim_->IsAlive(group_->replica_ids()[i])) group_->Restart(i);
  }
  sim_->RunFor(20 * kSec);
  EXPECT_EQ(inflight, 0);
  EXPECT_GT(acked.size(), 10u) << "chaos too aggressive to be meaningful";

  // Invariant 1: acked entries all present exactly once, in ack order
  // subsequence... order of acks matches commit order for a single client,
  // so the committed data payloads must contain acked as a subsequence.
  auto payloads = DataPayloads();
  std::multiset<std::string> committed(payloads.begin(), payloads.end());
  for (const std::string& a : acked) {
    EXPECT_EQ(committed.count(a), 1u) << "acked entry lost or duplicated: "
                                      << a;
  }

  // Invariant 2: replicas agree on the committed prefix.
  sim_->RunFor(5 * kSec);
  const uint64_t min_commit =
      std::min({group_->replica(0)->commit_index(),
                group_->replica(1)->commit_index(),
                group_->replica(2)->commit_index()});
  auto e0 = group_->replica(0)->CommittedEntries(1, min_commit);
  auto e1 = group_->replica(1)->CommittedEntries(1, min_commit);
  auto e2 = group_->replica(2)->CommittedEntries(1, min_commit);
  ASSERT_EQ(e0.size(), e1.size());
  ASSERT_EQ(e0.size(), e2.size());
  for (size_t i = 0; i < e0.size(); ++i) {
    EXPECT_EQ(e0[i].term, e1[i].term);
    EXPECT_EQ(e0[i].record.payload, e1[i].record.payload);
    EXPECT_EQ(e0[i].term, e2[i].term);
    EXPECT_EQ(e0[i].record.payload, e2[i].record.payload);
  }
}

TEST_F(TxLogTest, SequentialCasClientsGetDistinctIndices) {
  // CAS-based appends from one client, each chaining on the prior index,
  // must produce strictly increasing indices with no gaps from the client's
  // perspective.
  uint64_t tail = TailSync();
  std::vector<uint64_t> indices;
  for (int i = 0; i < 20; ++i) {
    uint64_t idx = 0;
    Status s = AppendSync(tail, "seq" + std::to_string(i), &idx);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(idx, tail + 1);
    tail = idx;
    indices.push_back(idx);
  }
  for (size_t i = 1; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], indices[i - 1] + 1);
  }
}

// ---------------------------------------------------------------------------
// Lease edge cases, against the real RPC LogService (§4.1). The sim suite
// above proves log safety under virtual time; leases are arbitrated by the
// leader's real clock, so these run the real daemon machinery in-process.

void RealSleepMs(uint64_t ms) {
  // lint:allow-blocking — test thread, wall-clock lease expiry.
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

struct RealLogGroup {
  explicit RealLogGroup(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      LogService::Options opt;
      opt.node_id = i + 1;
      opt.listen_port = 0;
      opt.fsync = false;
      opt.heartbeat_ms = 20;
      opt.election_min_ms = 50;
      opt.election_max_ms = 120;
      opt.raft_rpc_timeout_ms = 100;
      services.push_back(std::make_unique<LogService>(opt));
      EXPECT_TRUE(services.back()->Start().ok());
    }
    std::vector<std::pair<uint64_t, std::string>> membership;
    for (size_t i = 0; i < n; ++i) {
      endpoints.push_back("127.0.0.1:" + std::to_string(services[i]->port()));
      membership.emplace_back(i + 1, endpoints.back());
    }
    for (auto& s : services) s->SetPeers(membership);
  }
  ~RealLogGroup() {
    for (auto& s : services) s->Stop();
  }

  bool WaitForLeader(int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      for (auto& s : services) {
        if (s->IsLeader()) return true;
      }
      RealSleepMs(5);
    }
    return false;
  }

  std::vector<std::unique_ptr<LogService>> services;
  std::vector<std::string> endpoints;
};

struct LeaseClient {
  LeaseClient(const std::vector<std::string>& endpoints, uint64_t writer) {
    EXPECT_TRUE(loop.Start().ok());
    RemoteClient::Options opt;
    opt.writer_id = writer;
    opt.rpc_timeout_ms = 250;
    opt.backoff_base_ms = 10;
    opt.backoff_cap_ms = 100;
    client = std::make_unique<RemoteClient>(&loop, endpoints, opt, &registry);
  }
  ~LeaseClient() {
    client->Shutdown();
    loop.Stop();
  }

  rpc::LoopThread loop;
  MetricsRegistry registry;
  std::unique_ptr<RemoteClient> client;
};

// A holder partitioned away from the group cannot renew; once its lease
// expires on the leader's clock, a contender takes over. The stale holder's
// eventual renewal (partition healed) is rejected with the new holder's id.
TEST(LeaseEdgeTest, ExpiryDuringPartitionAllowsTakeover) {
  RealLogGroup group(3);
  ASSERT_TRUE(group.WaitForLeader());
  LeaseClient holder(group.endpoints, 1);
  LeaseClient contender(group.endpoints, 2);

  rpcwire::LeaseResponse rsp;
  ASSERT_TRUE(
      holder.client->AcquireLeaseSync(1, 300, "shard-part", &rsp).ok());

  // Partition the holder's renewals: every RenewLease request frame is
  // dropped on every node, so renewals die indeterminately.
  for (auto& svc : group.services) {
    svc->fault().DropRequests(rpcwire::kRenewLease, 100000);
  }
  rpcwire::LeaseResponse renew;
  const Status rs = holder.client->RenewLeaseSync(1, 300, "shard-part",
                                                  &renew);
  EXPECT_FALSE(rs.ok());
  EXPECT_FALSE(rs.IsConditionFailed()) << rs.ToString();  // indeterminate

  // After expiry the contender wins — acquire, not a manual override.
  rpcwire::LeaseResponse takeover;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    const Status s =
        contender.client->AcquireLeaseSync(2, 60000, "shard-part", &takeover);
    if (s.ok()) break;
    ASSERT_TRUE(s.IsConditionFailed() || s.IsUnavailable() || s.IsTimedOut())
        << s.ToString();
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    RealSleepMs(30);
  }
  EXPECT_GT(takeover.index, 0u);

  // Partition heals; the stale holder's renewal must NOT revive its lease.
  for (auto& svc : group.services) svc->fault().Clear();
  rpcwire::LeaseResponse stale;
  const Status ss = holder.client->RenewLeaseSync(1, 300, "shard-part",
                                                  &stale);
  ASSERT_TRUE(ss.IsConditionFailed()) << ss.ToString();
  EXPECT_EQ(stale.holder, 2u);
  EXPECT_GT(stale.remaining_ms, 0u);
}

// Two contenders racing AcquireLease for the same expired shard: exactly
// one wins, and the loser is told who. Covers the commit-window race — the
// leader must arbitrate against pending (not-yet-applied) grants, or both
// racers see the stale committed table and both win.
TEST(LeaseEdgeTest, TwoContendersRaceSingleWinner) {
  RealLogGroup group(3);
  ASSERT_TRUE(group.WaitForLeader());
  LeaseClient a(group.endpoints, 101);
  LeaseClient b(group.endpoints, 102);

  for (int round = 0; round < 5; ++round) {
    const std::string shard = "shard-race-" + std::to_string(round);
    Status sa, sb;
    rpcwire::LeaseResponse ra, rb;
    std::thread ta([&] {
      sa = a.client->AcquireLeaseSync(101, 60000, shard, &ra);
    });
    std::thread tb([&] {
      sb = b.client->AcquireLeaseSync(102, 60000, shard, &rb);
    });
    ta.join();
    tb.join();

    const int winners = (sa.ok() ? 1 : 0) + (sb.ok() ? 1 : 0);
    ASSERT_EQ(winners, 1) << "round " << round << ": a=" << sa.ToString()
                          << " b=" << sb.ToString();
    if (sa.ok()) {
      ASSERT_TRUE(sb.IsConditionFailed()) << sb.ToString();
      EXPECT_EQ(rb.holder, 101u);
    } else {
      ASSERT_TRUE(sa.IsConditionFailed()) << sa.ToString();
      EXPECT_EQ(ra.holder, 102u);
    }
  }
}

// Renewing a lease that was lost — expired, then granted to another owner —
// must be rejected even though the old holder was never partitioned: the
// fence is ownership, not connectivity.
TEST(LeaseEdgeTest, RenewAfterFenceRejected) {
  RealLogGroup group(3);
  ASSERT_TRUE(group.WaitForLeader());
  LeaseClient old_holder(group.endpoints, 1);
  LeaseClient usurper(group.endpoints, 2);

  rpcwire::LeaseResponse rsp;
  ASSERT_TRUE(
      old_holder.client->AcquireLeaseSync(1, 150, "shard-f", &rsp).ok());
  RealSleepMs(250);  // let it expire quietly — no renewals

  rpcwire::LeaseResponse grab;
  ASSERT_TRUE(usurper.client->AcquireLeaseSync(2, 60000, "shard-f", &grab)
                  .ok());

  rpcwire::LeaseResponse renew;
  const Status s =
      old_holder.client->RenewLeaseSync(1, 60000, "shard-f", &renew);
  ASSERT_TRUE(s.IsConditionFailed()) << s.ToString();
  EXPECT_EQ(renew.holder, 2u);
  EXPECT_GT(renew.remaining_ms, 0u);

  // The fence persists: a second renewal attempt is rejected identically
  // (no renew-after-fence resurrection on retry).
  rpcwire::LeaseResponse again;
  const Status s2 =
      old_holder.client->RenewLeaseSync(1, 60000, "shard-f", &again);
  ASSERT_TRUE(s2.IsConditionFailed()) << s2.ToString();
  EXPECT_EQ(again.holder, 2u);
}

}  // namespace
}  // namespace memdb::txlog
