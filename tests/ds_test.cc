#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ds/hash.h"
#include "ds/quicklist.h"
#include "ds/set.h"
#include "ds/value.h"
#include "ds/zset.h"

namespace memdb::ds {
namespace {

// ---------------------------------------------------------------- QuickList

TEST(QuickListTest, PushPopBothEnds) {
  QuickList l;
  l.PushBack("b");
  l.PushFront("a");
  l.PushBack("c");
  EXPECT_EQ(l.Size(), 3u);
  std::string v;
  ASSERT_TRUE(l.PopFront(&v));
  EXPECT_EQ(v, "a");
  ASSERT_TRUE(l.PopBack(&v));
  EXPECT_EQ(v, "c");
  ASSERT_TRUE(l.PopFront(&v));
  EXPECT_EQ(v, "b");
  EXPECT_FALSE(l.PopFront(&v));
  EXPECT_FALSE(l.PopBack(&v));
}

TEST(QuickListTest, SpansManyChunks) {
  QuickList l;
  for (int i = 0; i < 1000; ++i) l.PushBack(std::to_string(i));
  EXPECT_EQ(l.Size(), 1000u);
  std::string v;
  for (int i = 0; i < 1000; i += 97) {
    ASSERT_TRUE(l.Index(static_cast<size_t>(i), &v));
    EXPECT_EQ(v, std::to_string(i));
  }
  EXPECT_FALSE(l.Index(1000, &v));
}

TEST(QuickListTest, PushFrontOrdering) {
  QuickList l;
  for (int i = 0; i < 300; ++i) l.PushFront(std::to_string(i));
  std::string v;
  ASSERT_TRUE(l.Index(0, &v));
  EXPECT_EQ(v, "299");
  ASSERT_TRUE(l.Index(299, &v));
  EXPECT_EQ(v, "0");
}

TEST(QuickListTest, SetReplacesElement) {
  QuickList l;
  for (int i = 0; i < 10; ++i) l.PushBack("x");
  EXPECT_TRUE(l.Set(5, "y"));
  std::string v;
  ASSERT_TRUE(l.Index(5, &v));
  EXPECT_EQ(v, "y");
  EXPECT_FALSE(l.Set(10, "z"));
}

TEST(QuickListTest, Range) {
  QuickList l;
  for (int i = 0; i < 300; ++i) l.PushBack(std::to_string(i));
  std::vector<std::string> out;
  l.Range(100, 104, &out);
  EXPECT_EQ(out, (std::vector<std::string>{"100", "101", "102", "103", "104"}));
  out.clear();
  l.Range(298, 500, &out);  // stop clamped
  EXPECT_EQ(out, (std::vector<std::string>{"298", "299"}));
}

TEST(QuickListTest, RemoveFromHead) {
  QuickList l;
  for (const char* s : {"a", "b", "a", "c", "a"}) l.PushBack(s);
  EXPECT_EQ(l.Remove(2, "a"), 2u);
  EXPECT_EQ(l.ToVector(), (std::vector<std::string>{"b", "c", "a"}));
}

TEST(QuickListTest, RemoveFromTail) {
  QuickList l;
  for (const char* s : {"a", "b", "a", "c", "a"}) l.PushBack(s);
  EXPECT_EQ(l.Remove(-2, "a"), 2u);
  EXPECT_EQ(l.ToVector(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(QuickListTest, RemoveAll) {
  QuickList l;
  for (const char* s : {"a", "b", "a", "c", "a"}) l.PushBack(s);
  EXPECT_EQ(l.Remove(0, "a"), 3u);
  EXPECT_EQ(l.ToVector(), (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(l.Remove(0, "zzz"), 0u);
}

TEST(QuickListTest, InsertAround) {
  QuickList l;
  for (const char* s : {"a", "b", "c"}) l.PushBack(s);
  EXPECT_TRUE(l.InsertAround("b", /*before=*/true, "x"));
  EXPECT_TRUE(l.InsertAround("b", /*before=*/false, "y"));
  EXPECT_EQ(l.ToVector(), (std::vector<std::string>{"a", "x", "b", "y", "c"}));
  EXPECT_FALSE(l.InsertAround("nope", true, "z"));
}

TEST(QuickListTest, Trim) {
  QuickList l;
  for (int i = 0; i < 500; ++i) l.PushBack(std::to_string(i));
  l.Trim(100, 102);
  EXPECT_EQ(l.ToVector(), (std::vector<std::string>{"100", "101", "102"}));
  l.Trim(2, 1);  // empty range clears
  EXPECT_EQ(l.Size(), 0u);
}

TEST(QuickListTest, MemoryAccountingMonotonic) {
  QuickList l;
  size_t empty = l.ApproxMemory();
  for (int i = 0; i < 100; ++i) l.PushBack("payload");
  EXPECT_GT(l.ApproxMemory(), empty);
  std::string v;
  for (int i = 0; i < 100; ++i) l.PopFront(&v);
  EXPECT_EQ(l.ApproxMemory(), empty);
}

// ---------------------------------------------------------------- Hash

TEST(HashTest, SetGetDel) {
  Hash h;
  EXPECT_TRUE(h.Set("f1", "v1"));
  EXPECT_FALSE(h.Set("f1", "v2"));  // overwrite
  std::string v;
  ASSERT_TRUE(h.Get("f1", &v));
  EXPECT_EQ(v, "v2");
  EXPECT_TRUE(h.Has("f1"));
  EXPECT_TRUE(h.Del("f1"));
  EXPECT_FALSE(h.Del("f1"));
  EXPECT_FALSE(h.Get("f1", &v));
  EXPECT_EQ(h.Size(), 0u);
}

TEST(HashTest, StartsListpackUpgradesOnCount) {
  Hash h;
  for (size_t i = 0; i < Hash::kMaxListpackEntries; ++i) {
    h.Set("f" + std::to_string(i), "v");
  }
  EXPECT_TRUE(h.listpack_encoded());
  h.Set("one-more", "v");
  EXPECT_FALSE(h.listpack_encoded());
  // All fields survive the upgrade.
  EXPECT_EQ(h.Size(), Hash::kMaxListpackEntries + 1);
  std::string v;
  EXPECT_TRUE(h.Get("f0", &v));
  EXPECT_TRUE(h.Get("one-more", &v));
}

TEST(HashTest, UpgradesOnLargeValue) {
  Hash h;
  h.Set("small", "v");
  EXPECT_TRUE(h.listpack_encoded());
  h.Set("big", std::string(Hash::kMaxListpackValueLen + 1, 'x'));
  EXPECT_FALSE(h.listpack_encoded());
  std::string v;
  EXPECT_TRUE(h.Get("small", &v));
}

TEST(HashTest, ItemsListpackPreservesInsertionOrder) {
  Hash h;
  h.Set("z", "1");
  h.Set("a", "2");
  auto items = h.Items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].first, "z");
  EXPECT_EQ(items[1].first, "a");
}

TEST(HashTest, ItemsTableSorted) {
  Hash h;
  for (int i = 200; i > 0; --i) h.Set("f" + std::to_string(i), "v");
  auto items = h.Items();
  EXPECT_TRUE(std::is_sorted(
      items.begin(), items.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

// ---------------------------------------------------------------- Set

TEST(SetTest, IntsetBasics) {
  Set s;
  EXPECT_TRUE(s.Add("3"));
  EXPECT_TRUE(s.Add("1"));
  EXPECT_TRUE(s.Add("2"));
  EXPECT_FALSE(s.Add("2"));
  EXPECT_TRUE(s.intset_encoded());
  EXPECT_TRUE(s.Contains("1"));
  EXPECT_FALSE(s.Contains("9"));
  EXPECT_EQ(s.Members(), (std::vector<std::string>{"1", "2", "3"}));  // sorted
  EXPECT_TRUE(s.Remove("2"));
  EXPECT_FALSE(s.Remove("2"));
  EXPECT_EQ(s.Size(), 2u);
}

TEST(SetTest, UpgradeOnNonInteger) {
  Set s;
  s.Add("10");
  s.Add("20");
  EXPECT_TRUE(s.intset_encoded());
  s.Add("abc");
  EXPECT_FALSE(s.intset_encoded());
  EXPECT_TRUE(s.Contains("10"));
  EXPECT_TRUE(s.Contains("abc"));
  EXPECT_EQ(s.Size(), 3u);
}

TEST(SetTest, UpgradeOnSize) {
  Set s;
  for (size_t i = 0; i <= Set::kMaxIntsetEntries; ++i) {
    s.Add(std::to_string(i));
  }
  EXPECT_FALSE(s.intset_encoded());
  EXPECT_EQ(s.Size(), Set::kMaxIntsetEntries + 1);
  EXPECT_TRUE(s.Contains("0"));
}

TEST(SetTest, NonCanonicalIntegersAreStrings) {
  Set s;
  s.Add("007");
  EXPECT_FALSE(s.intset_encoded());  // "007" != "7"
  EXPECT_TRUE(s.Contains("007"));
  EXPECT_FALSE(s.Contains("7"));
}

TEST(SetTest, RandomMemberCoversSet) {
  Set s;
  for (int i = 0; i < 10; ++i) s.Add(std::to_string(i));
  Rng rng(3);
  std::set<std::string> seen;
  std::string m;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(s.RandomMember(&rng, &m));
    EXPECT_TRUE(s.Contains(m));
    seen.insert(m);
  }
  EXPECT_EQ(seen.size(), 10u);  // all members eventually picked
  Set empty;
  EXPECT_FALSE(empty.RandomMember(&rng, &m));
}

// ---------------------------------------------------------------- ZSet

TEST(ZSetTest, AddScoreRemove) {
  ZSet z;
  EXPECT_EQ(z.Add("a", 1.0), ZSet::AddOutcome::kAdded);
  EXPECT_EQ(z.Add("a", 1.0), ZSet::AddOutcome::kUnchanged);
  EXPECT_EQ(z.Add("a", 2.0), ZSet::AddOutcome::kUpdated);
  double score;
  ASSERT_TRUE(z.Score("a", &score));
  EXPECT_EQ(score, 2.0);
  EXPECT_TRUE(z.Remove("a"));
  EXPECT_FALSE(z.Remove("a"));
  EXPECT_FALSE(z.Score("a", &score));
  EXPECT_EQ(z.Size(), 0u);
}

TEST(ZSetTest, RankAscendingAndReverse) {
  ZSet z;
  z.Add("low", 1);
  z.Add("mid", 2);
  z.Add("high", 3);
  size_t r;
  ASSERT_TRUE(z.Rank("low", false, &r));
  EXPECT_EQ(r, 0u);
  ASSERT_TRUE(z.Rank("high", false, &r));
  EXPECT_EQ(r, 2u);
  ASSERT_TRUE(z.Rank("high", true, &r));
  EXPECT_EQ(r, 0u);
  EXPECT_FALSE(z.Rank("missing", false, &r));
}

TEST(ZSetTest, TieBrokenByMember) {
  ZSet z;
  z.Add("b", 5);
  z.Add("a", 5);
  z.Add("c", 5);
  std::vector<ScoredMember> out;
  z.RangeByRank(0, 2, false, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].member, "a");
  EXPECT_EQ(out[1].member, "b");
  EXPECT_EQ(out[2].member, "c");
}

TEST(ZSetTest, RangeByRankReverse) {
  ZSet z;
  for (int i = 0; i < 10; ++i) z.Add("m" + std::to_string(i), i);
  std::vector<ScoredMember> out;
  z.RangeByRank(0, 2, true, &out);  // top three
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].member, "m9");
  EXPECT_EQ(out[1].member, "m8");
  EXPECT_EQ(out[2].member, "m7");
}

TEST(ZSetTest, RangeByScoreInclusiveExclusive) {
  ZSet z;
  for (int i = 1; i <= 5; ++i) z.Add("m" + std::to_string(i), i);
  ScoreRange r;
  r.min = 2;
  r.max = 4;
  std::vector<ScoredMember> out;
  z.RangeByScore(r, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.front().member, "m2");
  EXPECT_EQ(out.back().member, "m4");

  r.min_exclusive = true;
  r.max_exclusive = true;
  out.clear();
  z.RangeByScore(r, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].member, "m3");
}

TEST(ZSetTest, CountAndRemoveRange) {
  ZSet z;
  for (int i = 0; i < 100; ++i) z.Add("m" + std::to_string(i), i);
  ScoreRange r;
  r.min = 10;
  r.max = 19;
  EXPECT_EQ(z.CountInRange(r), 10u);
  EXPECT_EQ(z.RemoveRangeByScore(r), 10u);
  EXPECT_EQ(z.Size(), 90u);
  EXPECT_EQ(z.CountInRange(r), 0u);
}

TEST(ZSetTest, LargeRandomizedAgainstReferenceModel) {
  ZSet z;
  std::map<std::string, double> model;
  Rng rng(17);
  for (int op = 0; op < 20000; ++op) {
    std::string member = "m" + std::to_string(rng.Uniform(500));
    double score = static_cast<double>(rng.Uniform(1000));
    switch (rng.Uniform(3)) {
      case 0:
      case 1:
        z.Add(member, score);
        model[member] = score;
        break;
      case 2:
        EXPECT_EQ(z.Remove(member), model.erase(member) > 0);
        break;
    }
  }
  ASSERT_EQ(z.Size(), model.size());
  // Full ascending range must match the model sorted by (score, member).
  std::vector<ScoredMember> out;
  z.RangeByRank(0, z.Size() - 1, false, &out);
  std::vector<ScoredMember> expected;
  for (const auto& [m, s] : model) expected.push_back({m, s});
  std::sort(expected.begin(), expected.end(),
            [](const ScoredMember& a, const ScoredMember& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.member < b.member;
            });
  ASSERT_EQ(out.size(), expected.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], expected[i]) << "at rank " << i;
  }
  // Spot-check ranks.
  for (size_t i = 0; i < expected.size(); i += 37) {
    size_t r;
    ASSERT_TRUE(z.Rank(expected[i].member, false, &r));
    EXPECT_EQ(r, i);
  }
}

TEST(ZSetTest, MoveSemantics) {
  ZSet a;
  a.Add("x", 1);
  ZSet b = std::move(a);
  double s;
  EXPECT_TRUE(b.Score("x", &s));
  EXPECT_EQ(a.Size(), 0u);  // NOLINT: moved-from is valid-empty by design
  a.Add("y", 2);
  EXPECT_EQ(a.Size(), 1u);
}

// ---------------------------------------------------------------- Value

TEST(ValueTest, TypesAndNames) {
  Value s(std::string("x"));
  EXPECT_EQ(s.type(), ValueType::kString);
  EXPECT_TRUE(s.IsString());
  EXPECT_STREQ(ValueTypeName(s.type()), "string");

  Value l{QuickList()};
  EXPECT_EQ(l.type(), ValueType::kList);
  Value h{Hash()};
  EXPECT_EQ(h.type(), ValueType::kHash);
  Value st{Set()};
  EXPECT_EQ(st.type(), ValueType::kSet);
  Value z{ZSet()};
  EXPECT_EQ(z.type(), ValueType::kZSet);
  EXPECT_STREQ(ValueTypeName(z.type()), "zset");
}

TEST(ValueTest, ApproxMemoryGrowsWithContent) {
  Value v(std::string(1000, 'x'));
  EXPECT_GE(v.ApproxMemory(), 1000u);
  Value z{ZSet()};
  size_t before = z.ApproxMemory();
  for (int i = 0; i < 100; ++i) z.zset().Add("member" + std::to_string(i), i);
  EXPECT_GT(z.ApproxMemory(), before);
}

}  // namespace
}  // namespace memdb::ds
