// End-to-end slot migration over the REAL binaries (§5): two cluster-mode
// memorydb-server primaries, each durable through its own memorydb-txlogd
// group and holding its shard lease (--failover), split the slot space.
// Under continuous ClusterClient write traffic on one slot, the source is
// told CLUSTER SETSLOT ... MIGRATE: it streams the slot's keys to the
// importing peer over the ASKING+RESTORE channel and commits the ownership
// flip as a lease-fenced kSlotOwnership append. The test asserts:
//
//   - zero acked-write loss: every value acked during the migration is
//     readable afterwards, served by the new owner;
//   - the redirect protocol was actually exercised: -ASK observed from the
//     source mid-migration, -MOVED observed and followed after the flip;
//   - zero wrong-shard acks: a write sent directly to the old owner after
//     the flip answers -MOVED, not +OK.
//
// Binary paths arrive via MEMDB_SERVER_BIN / MEMDB_TXLOGD_BIN; the test
// skips when absent so the suite still runs standalone.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "client/cluster_client.h"
#include "common/crc.h"
#include "resp/resp.h"

namespace memdb {
namespace {

using client::ClusterClient;
using resp::Value;

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/memdb_shard_e2e_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = (p != nullptr) ? p : "";
  }
  ~TempDir() {
    if (!path.empty()) {
      const std::string cmd = "rm -rf '" + path + "'";
      [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
  }
  std::string path;
};

uint16_t FreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  socklen_t len = sizeof(sa);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len), 0);
  ::close(fd);
  return ntohs(sa.sin_port);
}

class Process {
 public:
  Process() = default;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { Kill(SIGKILL); }

  bool Spawn(const std::vector<std::string>& argv) {
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    pid_ = ::fork();
    if (pid_ == 0) {
      ::execv(cargv[0], cargv.data());
      ::_exit(127);
    }
    return pid_ > 0;
  }

  int Kill(int sig) {
    if (pid_ <= 0) return -1;
    ::kill(pid_, sig);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return status;
  }

 private:
  pid_t pid_ = -1;
};

bool WaitForPort(uint16_t port, int timeout_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    ::close(fd);
    if (rc == 0) return true;
    SleepMs(25);
  }
  return false;
}

// Minimal blocking RESP client for DIRECT (non-routed) conversations with
// one node — exactly what's needed to witness raw -ASK/-MOVED replies.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    struct timeval tv{10, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  Value RoundTrip(const std::vector<std::string>& argv) {
    const std::string bytes = resp::EncodeCommand(argv);
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return Value::Error("send failed");
      off += static_cast<size_t>(n);
    }
    char buf[16 * 1024];
    for (;;) {
      Value v;
      const resp::DecodeStatus st = dec_.Decode(&v);
      if (st == resp::DecodeStatus::kOk) return v;
      if (st == resp::DecodeStatus::kError) return Value::Error("protocol");
      const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r <= 0) return Value::Error("no reply");
      dec_.Feed(Slice(buf, static_cast<size_t>(r)));
    }
  }

 private:
  int fd_ = -1;
  resp::Decoder dec_;
};

std::string EnvOr(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr ? v : "";
}

std::string Ep(uint16_t port) { return "127.0.0.1:" + std::to_string(port); }

TEST(ShardE2eTest, LiveSlotMigrationUnderTrafficWithZeroAckedLoss) {
  const std::string server_bin = EnvOr("MEMDB_SERVER_BIN");
  const std::string txlogd_bin = EnvOr("MEMDB_TXLOGD_BIN");
  if (server_bin.empty() || txlogd_bin.empty()) {
    GTEST_SKIP() << "MEMDB_*_BIN not set; run under ctest";
  }

  TempDir log_dir1, log_dir2;
  const uint16_t log_port1 = FreePort(), log_port2 = FreePort();
  const uint16_t port1 = FreePort(), port2 = FreePort();

  // --- each shard gets its own single-node transaction-log group ----------
  Process txlogd1, txlogd2;
  ASSERT_TRUE(txlogd1.Spawn({txlogd_bin, "--node-id", "1", "--peers",
                             Ep(log_port1), "--data-dir", log_dir1.path,
                             "--no-fsync"}));
  ASSERT_TRUE(txlogd2.Spawn({txlogd_bin, "--node-id", "1", "--peers",
                             Ep(log_port2), "--data-dir", log_dir2.path,
                             "--no-fsync"}));
  ASSERT_TRUE(WaitForPort(log_port1));
  ASSERT_TRUE(WaitForPort(log_port2));

  // --- two cluster-mode primaries, lease-holding, splitting the space ----
  Process server1, server2;
  ASSERT_TRUE(server1.Spawn(
      {server_bin, "--port", std::to_string(port1), "--txlog-endpoints",
       Ep(log_port1), "--writer-id", "1", "--failover", "--shard-id",
       "shard1", "--cluster", "--cluster-slots", "0-8191", "--cluster-peer",
       "shard2@" + Ep(port2) + "=8192-16383", "--migration-batch-keys",
       "8"}));
  ASSERT_TRUE(server2.Spawn(
      {server_bin, "--port", std::to_string(port2), "--txlog-endpoints",
       Ep(log_port2), "--writer-id", "2", "--failover", "--shard-id",
       "shard2", "--cluster", "--cluster-slots", "8192-16383",
       "--cluster-peer", "shard1@" + Ep(port1) + "=0-8191",
       "--migration-batch-keys", "8"}));
  ASSERT_TRUE(WaitForPort(port1));
  ASSERT_TRUE(WaitForPort(port2));

  // All migrating keys share the {m1} hash tag -> slot 6916, shard one.
  const uint16_t slot = KeyHashSlot(Slice("{m1}"));
  ASSERT_LT(slot, 8192);
  auto key_of = [](int i) { return "{m1}k" + std::to_string(i); };

  // --- seed the slot so the stream takes many batches ---------------------
  const int kKeys = 400;
  ClusterClient seeder({Ep(port1), Ep(port2)});
  ASSERT_TRUE(seeder.RefreshSlotMap().ok());
  Value reply;
  resp::Value r;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(seeder.Execute({"SET", key_of(i), "seed"}, &r).ok());
    ASSERT_EQ(r.str, "OK") << "seed write " << i;
  }
  // A couple of keys on shard two prove cross-shard routing stays intact.
  ASSERT_TRUE(seeder.Execute({"SET", "foo", "on-shard2"}, &r).ok());
  ASSERT_EQ(r.str, "OK");

  // --- live traffic on the migrating slot, stale map on purpose -----------
  // The writer's map is warmed BEFORE the migration and never manually
  // refreshed: every redirect it follows is the protocol working.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> write_failures{0};
  std::map<std::string, std::string> acked;  // writer thread only, then main
  ClusterClient writer({Ep(port1), Ep(port2)});
  ASSERT_TRUE(writer.RefreshSlotMap().ok());
  std::thread traffic([&] {
    uint64_t seq = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::string key = key_of(static_cast<int>(seq) % kKeys);
      const std::string val = "v" + std::to_string(seq);
      resp::Value wr;
      const Status s = writer.Execute({"SET", key, val}, &wr);
      if (s.ok() && wr.type == resp::Type::kSimpleString && wr.str == "OK") {
        acked[key] = val;  // acked: must never be lost
      } else {
        write_failures.fetch_add(1, std::memory_order_relaxed);
      }
      ++seq;
    }
  });
  SleepMs(100);  // let traffic establish against the pre-flip owner

  // --- kick the migration while writes are in flight ----------------------
  {
    TestClient admin(port1);
    ASSERT_TRUE(admin.ok());
    const Value v = admin.RoundTrip({"CLUSTER", "SETSLOT",
                                     std::to_string(slot), "MIGRATE",
                                     "shard2", Ep(port2)});
    ASSERT_EQ(v.str, "OK") << "migration failed to start: " << v.str;
  }

  // --- witness the mid-migration ASK window from the source itself --------
  // A key already streamed to the importer answers -ASK at the source while
  // the slot is still migrating. Scan a few keys per round until seen.
  int ask_seen = 0, moved_seen_direct = 0;
  {
    TestClient direct(port1);
    ASSERT_TRUE(direct.ok());
    for (int round = 0; round < 4000 && ask_seen == 0; ++round) {
      const Value v = direct.RoundTrip({"GET", key_of(round % kKeys)});
      if (v.type == resp::Type::kError) {
        if (v.str.rfind("ASK", 0) == 0) ++ask_seen;
        if (v.str.rfind("MOVED", 0) == 0) {
          ++moved_seen_direct;  // flip already committed; window missed
          break;
        }
      }
    }
  }
  EXPECT_GE(ask_seen + moved_seen_direct, 1)
      << "neither ASK nor MOVED ever observed from the source";

  // --- wait for the fenced flip to commit ---------------------------------
  bool flipped = false;
  for (int i = 0; i < 1200 && !flipped; ++i) {
    ClusterClient probe({Ep(port2)});
    flipped = probe.RefreshSlotMap().ok() &&
              probe.EndpointForSlot(slot) == Ep(port2);
    if (!flipped) SleepMs(25);
  }
  ASSERT_TRUE(flipped) << "ownership flip never committed";

  // Let the stale-map writer discover the flip through -MOVED, then stop.
  SleepMs(300);
  stop.store(true, std::memory_order_release);
  traffic.join();
  ASSERT_GT(acked.size(), 0u);
  EXPECT_GE(writer.moved_redirects(), 1u)
      << "stale-map writer never followed a MOVED";

  // --- zero wrong-shard acks: the old owner refuses the slot outright -----
  {
    TestClient direct(port1);
    ASSERT_TRUE(direct.ok());
    const Value stale_write = direct.RoundTrip({"SET", "{m1}stale", "x"});
    ASSERT_EQ(stale_write.type, resp::Type::kError);
    EXPECT_EQ(stale_write.str.rfind("MOVED", 0), 0u)
        << "stale owner acked a write for a slot it gave away: "
        << stale_write.str;
  }

  // --- zero acked-write loss: every acked value survives the move ---------
  ClusterClient verifier({Ep(port1), Ep(port2)});
  ASSERT_TRUE(verifier.RefreshSlotMap().ok());
  EXPECT_EQ(verifier.EndpointForSlot(slot), Ep(port2));
  for (const auto& [key, val] : acked) {
    resp::Value got;
    ASSERT_TRUE(verifier.Execute({"GET", key}, &got).ok()) << key;
    EXPECT_EQ(got.str, val) << "acked write lost across migration: " << key;
  }
  // Seeded keys the writer never overwrote must still exist too.
  for (int i = 0; i < kKeys; ++i) {
    if (acked.count(key_of(i)) != 0) continue;
    resp::Value got;
    ASSERT_TRUE(verifier.Execute({"GET", key_of(i)}, &got).ok());
    EXPECT_EQ(got.str, "seed") << key_of(i);
  }
  // Cross-shard key untouched by all of this.
  ASSERT_TRUE(verifier.Execute({"GET", "foo"}, &r).ok());
  EXPECT_EQ(r.str, "on-shard2");

  // The source's INFO accounts for the migration.
  {
    TestClient direct(port1);
    const Value info = direct.RoundTrip({"INFO", "CLUSTER"});
    EXPECT_NE(info.str.find("cluster_migrations_total:1"), std::string::npos)
        << info.str;
  }

  server1.Kill(SIGTERM);
  server2.Kill(SIGTERM);
  txlogd1.Kill(SIGTERM);
  txlogd2.Kill(SIGTERM);
}

}  // namespace
}  // namespace memdb
