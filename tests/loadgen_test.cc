// Load-generator tests: Zipfian generator sanity, then end-to-end runs
// against real in-process RespServers — standalone under a maxmemory budget
// (the harness must sustain zero protocol errors while the server evicts to
// stay within it) and a two-shard cluster through the slot-routing client.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "loadgen/loadgen.h"
#include "net/server.h"

namespace memdb {
namespace {

using engine::Engine;
using loadgen::KeyDist;
using loadgen::LoadConfig;
using loadgen::LoadGenerator;
using loadgen::LoadReport;
using loadgen::ZipfianGenerator;
using net::RespServer;
using net::ServerConfig;

uint16_t FreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  socklen_t len = sizeof(sa);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len), 0);
  ::close(fd);
  return ntohs(sa.sin_port);
}

std::string Ep(uint16_t port) { return "127.0.0.1:" + std::to_string(port); }

TEST(ZipfianGeneratorTest, SkewAndRange) {
  const uint64_t n = 10'000;
  ZipfianGenerator zipf(n, 0.99);
  Rng rng(1234);
  std::map<uint64_t, uint64_t> counts;
  const int draws = 200'000;
  for (int i = 0; i < draws; ++i) {
    const uint64_t k = zipf.Next(rng);
    ASSERT_LT(k, n);
    ++counts[k];
  }
  // Skewed: the single most popular key id takes a few percent of all
  // draws, and a small fraction of distinct ids covers most of the mass.
  uint64_t top = 0;
  std::vector<uint64_t> freq;
  for (const auto& [k, c] : counts) {
    top = std::max(top, c);
    freq.push_back(c);
  }
  EXPECT_GT(top, draws / 50u);  // >2% on one key, impossible for uniform
  EXPECT_LT(counts.size(), n);  // tail never fully touched in 200k draws

  std::sort(freq.begin(), freq.end(), std::greater<uint64_t>());
  uint64_t head_mass = 0;
  const size_t head = std::min<size_t>(freq.size(), 100);
  for (size_t i = 0; i < head; ++i) head_mass += freq[i];
  EXPECT_GT(head_mass, uint64_t(draws) / 2u);  // top-100 ids > 50% of draws
}

TEST(ZipfianGeneratorTest, NearUniformThetaIsFlat) {
  const uint64_t n = 100;
  ZipfianGenerator zipf(n, 0.01);  // near-uniform rank distribution
  Rng rng(99);
  std::map<uint64_t, uint64_t> counts;
  const int draws = 100'000;
  for (int i = 0; i < draws; ++i) ++counts[zipf.Next(rng)];
  // The FNV scramble folds ranks onto ids, so (like YCSB's scrambled
  // generator) some ids collide and others go unhit; flatness shows up as
  // no id dominating, not as full coverage.
  ASSERT_GT(counts.size(), n / 2);
  uint64_t top = 0;
  for (const auto& [k, c] : counts) top = std::max(top, c);
  EXPECT_LT(top, uint64_t(draws) / 10u);  // no Zipf-style hot id
}

struct StandaloneServer {
  explicit StandaloneServer(uint64_t maxmemory_bytes,
                            engine::EvictionPolicy policy) {
    port = FreePort();
    engine = std::make_unique<Engine>();
    engine->set_maxmemory(maxmemory_bytes);
    engine->set_eviction_policy(policy);
    ServerConfig config;
    config.port = port;
    config.loop_timeout_ms = 10;
    server = std::make_unique<RespServer>(engine.get(), config);
    const Status s = server->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  ~StandaloneServer() { server->Stop(); }

  uint16_t port = 0;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<RespServer> server;
};

// The acceptance scenario: working set (keys * value size) far exceeds
// maxmemory; the server must stay within budget by evicting while the
// harness sees zero error replies. Fixed-op mode keeps the test
// deterministic on loaded/sanitized runners: ~20k distinct-ish Zipfian
// writes of ~360-byte entries against a budget that fits ~1.5k entries
// forces evictions regardless of wall-clock throughput.
TEST(LoadGeneratorTest, StandaloneEvictsUnderPressureWithZeroErrors) {
  constexpr uint64_t kBudget = 512 * 1024;
  StandaloneServer srv(kBudget, engine::EvictionPolicy::kAllKeysLru);

  LoadConfig cfg;
  cfg.endpoints = {Ep(srv.port)};
  cfg.connections = 8;
  cfg.threads = 2;
  cfg.keyspace = 20'000;
  cfg.dist = KeyDist::kZipfian;
  cfg.write_ratio = 0.5;
  cfg.value_min = cfg.value_max = 256;
  cfg.pipeline = 8;
  cfg.duration_ms = 0;
  cfg.total_ops = 40'000;
  cfg.warmup_ms = 0;
  LoadGenerator gen(cfg);
  const LoadReport report = gen.Run();

  ASSERT_TRUE(report.ok) << report.error_detail;
  EXPECT_EQ(report.errors, 0u) << report.error_detail;
  EXPECT_EQ(report.ops, 40'000u);
  EXPECT_GT(report.throughput, 0);
  EXPECT_GT(report.latency.count(), 0u);
  EXPECT_GE(report.per_second.size(), 1u);

  EXPECT_LE(srv.engine->keyspace().used_memory(), kBudget);
  double evicted = 0;
  ASSERT_TRUE(
      loadgen::ScrapeMetric(Ep(srv.port), "evicted_keys_total", &evicted));
  EXPECT_GT(evicted, 0) << "working set over budget must force evictions";
  double used = 0;
  ASSERT_TRUE(
      loadgen::ScrapeMetric(Ep(srv.port), "used_memory_bytes", &used));
  EXPECT_GT(used, 0);
  EXPECT_LE(used, double(kBudget));
}

TEST(LoadGeneratorTest, FixedOpsRunsExactBudget) {
  StandaloneServer srv(0, engine::EvictionPolicy::kNoEviction);
  LoadConfig cfg;
  cfg.endpoints = {Ep(srv.port)};
  cfg.connections = 4;
  cfg.threads = 2;
  cfg.keyspace = 1000;
  cfg.write_ratio = 1.0;
  cfg.value_min = cfg.value_max = 32;
  cfg.pipeline = 4;
  cfg.duration_ms = 0;  // fixed-op mode
  cfg.total_ops = 5000;
  cfg.warmup_ms = 0;
  LoadGenerator gen(cfg);
  const LoadReport report = gen.Run();
  ASSERT_TRUE(report.ok) << report.error_detail;
  EXPECT_EQ(report.ops, 5000u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_GT(srv.engine->keyspace().Size(), 0u);
}

// With noeviction and a tiny budget the server answers -OOM; the harness
// must classify those as oom_errors, not protocol failures.
TEST(LoadGeneratorTest, NoEvictionSurfacesOomErrors) {
  StandaloneServer srv(64 * 1024, engine::EvictionPolicy::kNoEviction);
  LoadConfig cfg;
  cfg.endpoints = {Ep(srv.port)};
  cfg.connections = 2;
  cfg.threads = 1;
  cfg.keyspace = 10'000;
  cfg.write_ratio = 1.0;
  cfg.value_min = cfg.value_max = 256;
  cfg.pipeline = 4;
  cfg.duration_ms = 0;
  cfg.total_ops = 4000;  // ~1 MiB of writes into a 64 KiB budget
  cfg.warmup_ms = 0;
  LoadGenerator gen(cfg);
  const LoadReport report = gen.Run();
  ASSERT_TRUE(report.ok) << report.error_detail;
  EXPECT_GT(report.errors, 0u);
  EXPECT_EQ(report.oom_errors, report.errors);  // all errors are -OOM
  EXPECT_LE(srv.engine->keyspace().used_memory(), 64 * 1024u);
}

struct ClusterShard {
  ClusterShard(uint16_t port, const std::string& shard_id,
               const std::string& slots,
               const std::vector<ServerConfig::ClusterPeer>& peers) {
    ServerConfig config;
    config.port = port;
    config.loop_timeout_ms = 10;
    config.cluster = true;
    config.shard_id = shard_id;
    config.cluster_slots = slots;
    config.cluster_peers = peers;
    engine = std::make_unique<Engine>();
    server = std::make_unique<RespServer>(engine.get(), config);
    const Status s = server->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  ~ClusterShard() { server->Stop(); }

  std::unique_ptr<Engine> engine;
  std::unique_ptr<RespServer> server;
};

// Cluster mode: the generator routes through client::ClusterClient; with a
// scrambled-Zipfian key stream both shards must receive data, and the run
// must stay error-free.
TEST(LoadGeneratorTest, ClusterModeSpreadsLoadAcrossShards) {
  const uint16_t port1 = FreePort();
  const uint16_t port2 = FreePort();
  ClusterShard shard1(port1, "s1", "0-8191",
                      {{"s2", Ep(port2), "8192-16383"}});
  ClusterShard shard2(port2, "s2", "8192-16383",
                      {{"s1", Ep(port1), "0-8191"}});

  LoadConfig cfg;
  cfg.endpoints = {Ep(port1), Ep(port2)};
  cfg.cluster = true;
  cfg.connections = 8;  // cluster mode: one routing client per connection
  cfg.keyspace = 2000;
  cfg.write_ratio = 0.5;
  cfg.value_min = cfg.value_max = 64;
  cfg.duration_ms = 0;
  cfg.total_ops = 4000;
  cfg.warmup_ms = 0;
  LoadGenerator gen(cfg);
  const LoadReport report = gen.Run();
  ASSERT_TRUE(report.ok) << report.error_detail;
  EXPECT_EQ(report.ops, 4000u);
  EXPECT_EQ(report.errors, 0u) << report.error_detail;
  EXPECT_GT(shard1.engine->keyspace().Size(), 0u);
  EXPECT_GT(shard2.engine->keyspace().Size(), 0u);
}

}  // namespace
}  // namespace memdb
