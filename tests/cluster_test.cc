#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "client/db_client.h"
#include "cluster/cluster.h"
#include "sim/simulation.h"
#include "storage/object_store.h"

namespace memdb::cluster {
namespace {

using client::DbClient;
using memorydb::Node;
using resp::Value;
using sim::kMs;
using sim::kSec;
using sim::NodeId;

class ClientActor : public sim::Actor {
 public:
  ClientActor(sim::Simulation* sim, NodeId id, std::vector<NodeId> nodes)
      : Actor(sim, id), db(this, std::move(nodes)) {}
  DbClient db;
};

class ClusterTest : public ::testing::Test {
 protected:
  void Boot(int shards = 2, int replicas = 1) {
    client_.reset();
    cluster_.reset();
    s3_.reset();
    sim_ = std::make_unique<sim::Simulation>(31337);
    s3_ = std::make_unique<storage::ObjectStore>(sim_.get(), sim_->AddHost(0));
    Cluster::Options opts;
    opts.num_shards = shards;
    opts.replicas_per_shard = replicas;
    opts.object_store = s3_->id();
    cluster_ = std::make_unique<Cluster>(sim_.get(), opts);
    client_ = std::make_unique<ClientActor>(sim_.get(), sim_->AddHost(0),
                                            cluster_->AllNodeIds());
    sim_->RunFor(3 * kSec);
  }

  Value Run(std::vector<std::string> argv) {
    Value out = Value::Error("never completed");
    bool done = false;
    client_->db.Command(std::move(argv), [&](const Value& v) {
      out = v;
      done = true;
    });
    for (int i = 0; i < 60000 && !done; ++i) sim_->RunFor(1 * kMs);
    EXPECT_TRUE(done);
    return out;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<storage::ObjectStore> s3_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<ClientActor> client_;
};

TEST_F(ClusterTest, EveryShardElectsAPrimary) {
  Boot(3);
  for (size_t i = 0; i < cluster_->num_shards(); ++i) {
    EXPECT_NE(cluster_->shard(i)->Primary(), nullptr) << "shard " << i;
  }
}

TEST_F(ClusterTest, ClientRoutesAcrossShards) {
  Boot(2);
  // Keys spread over both shards; the client discovers routing via MOVED.
  std::set<size_t> shards_hit;
  for (int i = 0; i < 40; ++i) {
    const std::string key = "key:" + std::to_string(i);
    EXPECT_EQ(Run({"SET", key, "v" + std::to_string(i)}), Value::Ok());
    shards_hit.insert(cluster_->ShardForSlot(KeyHashSlot(key)));
  }
  EXPECT_EQ(shards_hit.size(), 2u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(Run({"GET", "key:" + std::to_string(i)}),
              Value::Bulk("v" + std::to_string(i)));
  }
}

TEST_F(ClusterTest, CrossSlotCommandsRejected) {
  Boot(2);
  // Multi-key commands spanning slots are refused (§2.1).
  Value v = Run({"MSET", "a", "1", "b", "2"});
  // "a" and "b" hash to different slots.
  ASSERT_NE(KeyHashSlot("a"), KeyHashSlot("b"));
  EXPECT_TRUE(v.IsError());
  EXPECT_NE(v.str.find("CROSSSLOT"), std::string::npos);
  // Hash tags route multi-key commands to one slot.
  EXPECT_EQ(Run({"MSET", "{user}a", "1", "{user}b", "2"}), Value::Ok());
}

TEST_F(ClusterTest, SlotMigrationMovesDataAndOwnership) {
  Boot(2);
  // Populate keys in one specific slot owned by shard 0.
  uint16_t slot = 0;
  std::string tag;
  for (int t = 0; t < 2000; ++t) {
    tag = "tag" + std::to_string(t);
    slot = KeyHashSlot("{" + tag + "}x");
    if (cluster_->ShardForSlot(slot) == 0) break;
  }
  ASSERT_EQ(cluster_->ShardForSlot(slot), 0u);
  std::vector<std::string> keys;
  for (int i = 0; i < 25; ++i) {
    keys.push_back("{" + tag + "}k" + std::to_string(i));
    ASSERT_EQ(Run({"SET", keys.back(), "v" + std::to_string(i)}),
              Value::Ok());
  }
  // Mixed types in the same slot survive migration.
  Run({"ZADD", "{" + tag + "}scores", "5", "alice", "7", "bob"});
  Run({"EXPIRE", keys[0], "10000"});

  Status result = Status::Internal("pending");
  bool done = false;
  cluster_->MigrateSlot(slot, 0, 1, [&](const Status& s) {
    result = s;
    done = true;
  });
  for (int i = 0; i < 60000 && !done; ++i) sim_->RunFor(1 * kMs);
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.ok()) << result.ToString();
  EXPECT_EQ(cluster_->ShardForSlot(slot), 1u);

  // Data readable after migration (client follows MOVED to shard 1).
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(Run({"GET", keys[static_cast<size_t>(i)]}),
              Value::Bulk("v" + std::to_string(i)));
  }
  EXPECT_EQ(Run({"ZSCORE", "{" + tag + "}scores", "bob"}), Value::Bulk("7"));
  Value ttl = Run({"TTL", keys[0]});
  EXPECT_GT(ttl.integer, 9000);

  // New writes to the slot land on shard 1 and the target owns the slot.
  EXPECT_EQ(Run({"SET", "{" + tag + "}new", "x"}), Value::Ok());
  Node* target_primary = cluster_->shard(1)->Primary();
  ASSERT_NE(target_primary, nullptr);
  EXPECT_EQ(target_primary->slot_state(slot), Node::SlotState::kOwned);
  Node* source_primary = cluster_->shard(0)->Primary();
  ASSERT_NE(source_primary, nullptr);
  EXPECT_EQ(source_primary->slot_state(slot), Node::SlotState::kNotOwned);

  // Source eventually deletes the transferred keys (background task).
  sim_->RunFor(3 * kSec);
  EXPECT_EQ(source_primary->engine().keyspace().KeysInSlot(slot).size(), 0u);
  // Write-unavailability was limited to the handshake (§5.2).
  EXPECT_LT(cluster_->coordinator()->last_write_block_duration(),
            500 * kMs);
}

TEST_F(ClusterTest, MigrationUnderLiveWrites) {
  Boot(2);
  uint16_t slot = 0;
  std::string tag;
  for (int t = 0; t < 2000; ++t) {
    tag = "w" + std::to_string(t);
    slot = KeyHashSlot("{" + tag + "}x");
    if (cluster_->ShardForSlot(slot) == 0) break;
  }
  for (int i = 0; i < 10; ++i) {
    Run({"SET", "{" + tag + "}k" + std::to_string(i), "v"});
  }
  // Start the migration and keep writing while it runs; every acknowledged
  // write must survive.
  bool migration_done = false;
  Status result = Status::OK();
  cluster_->MigrateSlot(slot, 0, 1, [&](const Status& s) {
    result = s;
    migration_done = true;
  });
  int acked = 0;
  for (int i = 0; i < 60 && !migration_done; ++i) {
    Value v = Run({"INCR", "{" + tag + "}counter"});
    if (v.type == resp::Type::kInteger) {
      EXPECT_EQ(v.integer, acked + 1) << "lost or duplicated increment";
      acked = static_cast<int>(v.integer);
    }
    sim_->RunFor(20 * kMs);
  }
  for (int i = 0; i < 60000 && !migration_done; ++i) sim_->RunFor(1 * kMs);
  ASSERT_TRUE(result.ok()) << result.ToString();
  EXPECT_GT(acked, 0);
  Value final = Run({"GET", "{" + tag + "}counter"});
  ASSERT_EQ(final.type, resp::Type::kBulkString);
  EXPECT_EQ(std::stoi(final.str), acked);
}

TEST_F(ClusterTest, ScaleOutAddsShardAndMovesSlots) {
  Boot(2, /*replicas=*/1);
  for (int i = 0; i < 30; ++i) {
    Run({"SET", "k" + std::to_string(i), std::to_string(i)});
  }
  memorydb::Shard* added = cluster_->AddShard();
  sim_->RunFor(3 * kSec);  // new shard bootstraps
  ASSERT_NE(added->Primary(), nullptr);
  EXPECT_EQ(cluster_->num_shards(), 3u);

  // Move a handful of slots (those containing our keys) to the new shard.
  std::set<uint16_t> moved;
  for (int i = 0; i < 5; ++i) {
    const uint16_t slot = KeyHashSlot("k" + std::to_string(i));
    if (moved.count(slot)) continue;
    moved.insert(slot);
    const size_t from = cluster_->ShardForSlot(slot);
    bool done = false;
    Status st = Status::OK();
    cluster_->MigrateSlot(slot, from, 2, [&](const Status& s) {
      st = s;
      done = true;
    });
    for (int t = 0; t < 60000 && !done; ++t) sim_->RunFor(1 * kMs);
    ASSERT_TRUE(done);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  // All data still readable, including keys now served by the new shard.
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(Run({"GET", "k" + std::to_string(i)}),
              Value::Bulk(std::to_string(i)));
  }
}

TEST_F(ClusterTest, MonitoringRepairsCrashedReplica) {
  Boot(1, /*replicas=*/2);
  Run({"SET", "k", "v"});
  memorydb::Shard* shard = cluster_->shard(0);
  Node* replica = shard->AnyReplica();
  ASSERT_NE(replica, nullptr);
  sim_->Crash(replica->id());
  // The watchdog polls every 5s and needs 2 consecutive misses.
  sim_->RunFor(25 * kSec);
  EXPECT_GE(cluster_->monitoring()->repairs(), 1u);
  EXPECT_TRUE(sim_->IsAlive(replica->id()));
  sim_->RunFor(5 * kSec);
  EXPECT_EQ(replica->db_role(), Node::DbRole::kReplica);
  EXPECT_TRUE(replica->caught_up());
}

TEST_F(ClusterTest, ReplicaScalingWhileServing) {
  Boot(1, /*replicas=*/1);
  for (int i = 0; i < 10; ++i) {
    Run({"SET", "k" + std::to_string(i), "v"});
  }
  Node* newbie = cluster_->shard(0)->AddReplica();
  sim_->RunFor(5 * kSec);
  EXPECT_TRUE(newbie->caught_up());
  EXPECT_EQ(Run({"GET", "k3"}), Value::Bulk("v"));
}


TEST_F(ClusterTest, MigrationAbortsCleanlyOnSourceCrash) {
  Boot(2);
  // Keys in a slot owned by shard 0.
  uint16_t slot = 0;
  std::string tag;
  for (int t = 0; t < 2000; ++t) {
    tag = "abort" + std::to_string(t);
    slot = KeyHashSlot("{" + tag + "}x");
    if (cluster_->ShardForSlot(slot) == 0) break;
  }
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(Run({"SET", "{" + tag + "}k" + std::to_string(i), "v"}),
              Value::Ok());
  }
  Node* source = cluster_->shard(0)->Primary();
  ASSERT_NE(source, nullptr);

  // Start the migration and kill the source primary while data moves.
  bool done = false;
  Status result = Status::OK();
  cluster_->MigrateSlot(slot, 0, 1, [&](const Status& s) {
    result = s;
    done = true;
  });
  sim_->RunFor(5 * kMs);
  sim_->Crash(source->id());
  for (int i = 0; i < 120000 && !done; ++i) sim_->RunFor(1 * kMs);
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.ok());  // abandoned, as designed (§5.2)
  EXPECT_EQ(cluster_->ShardForSlot(slot), 0u);  // ownership unchanged

  // Shard 0 fails over. 2PC progress is durable in the log, so the new
  // primary may come up with the slot still write-blocked — but reads keep
  // flowing and no data was lost.
  sim_->RunFor(3 * kSec);
  ASSERT_NE(cluster_->shard(0)->Primary(), nullptr);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(Run({"GET", "{" + tag + "}k" + std::to_string(i)}),
              Value::Bulk("v"));
  }

  // Re-driving the protocol completes the transfer (§5.2: "after a primary
  // node failure recovery, the ownership transfer protocol can continue").
  done = false;
  cluster_->MigrateSlot(slot, 0, 1, [&](const Status& s) {
    result = s;
    done = true;
  });
  for (int i = 0; i < 120000 && !done; ++i) sim_->RunFor(1 * kMs);
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok()) << result.ToString();
  EXPECT_EQ(cluster_->ShardForSlot(slot), 1u);
  // Writes are available again, served by the new owner.
  EXPECT_EQ(Run({"SET", "{" + tag + "}post", "x"}), Value::Ok());
  EXPECT_EQ(Run({"GET", "{" + tag + "}post"}), Value::Bulk("x"));
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(Run({"GET", "{" + tag + "}k" + std::to_string(i)}),
              Value::Bulk("v"));
  }
}

// A corrupted snapshot in the object store must not poison recovery: the
// restoring node detects the bad checksum and falls back to log replay;
// the off-box verifier flags it and refuses to publish on top of it.
TEST_F(ClusterTest, CorruptSnapshotDetectedAndBypassed) {
  Boot(1, /*replicas=*/1);
  for (int i = 0; i < 20; ++i) {
    Run({"SET", "k" + std::to_string(i), std::to_string(i)});
  }
  // Plant a corrupted "latest" snapshot for the shard.
  class Planter : public sim::Actor {
   public:
    Planter(sim::Simulation* sim, NodeId id, NodeId store)
        : Actor(sim, id), s3(this, store) {}
    storage::StorageClient s3;
  };
  Planter planter(sim_.get(), sim_->AddHost(0), s3_->id());
  bool planted = false;
  planter.s3.Put("snap/shard-0/99999999999999999999",
                 std::string(2048, 'G'),  // garbage blob
                 [&](const Status& s) { planted = s.ok(); });
  sim_->RunFor(1 * kSec);
  ASSERT_TRUE(planted);

  // A new replica restores: snapshot rejected, full log replay instead.
  Node* newbie = cluster_->shard(0)->AddReplica();
  sim_->RunFor(8 * kSec);
  EXPECT_TRUE(newbie->caught_up());
  EXPECT_FALSE(newbie->checksum_violation());
  engine::ExecContext ctx;
  ctx.now_ms = sim_->Now() / 1000;
  ctx.role = engine::Role::kReplicaRead;
  ctx.rng = &newbie->engine().rng();
  EXPECT_EQ(newbie->engine().Execute({"DBSIZE"}, &ctx), Value::Integer(20));
}

TEST_F(ClusterTest, MonitoringScrapesClusterHealth) {
  Boot(2, /*replicas=*/1);
  for (int i = 0; i < 20; ++i) {
    Run({"SET", "k" + std::to_string(i), "v"});
  }
  // Let a couple of scrape cycles (5s cadence) land after the writes.
  sim_->RunFor(12 * kSec);

  MonitoringService* mon = cluster_->monitoring();
  EXPECT_GT(mon->scrapes(), 0u);
  MonitoringService::ClusterHealth health = mon->ClusterSnapshot();
  // 2 shards x (primary + replica), all reachable.
  EXPECT_EQ(health.nodes_watched, 4u);
  EXPECT_EQ(health.nodes_reachable, 4u);
  EXPECT_EQ(health.primaries, 2u);
  EXPECT_EQ(health.replicas, 2u);
  EXPECT_EQ(health.loading, 0u);
  // Caught-up replicas, no load: lag is bounded.
  EXPECT_LE(health.max_replication_lag, 4);
  // Every shard committed writes; its primary reports a commit p99 in the
  // multi-AZ range.
  EXPECT_GT(health.max_commit_p99_us, 500.0);
  EXPECT_LT(health.max_commit_p99_us, 100'000.0);

  // Per-node detail: the scrape parsed each node's exposition.
  for (const auto& [node_id, h] : mon->node_health()) {
    EXPECT_TRUE(h.reachable);
    EXPECT_GE(h.role, 0);
    EXPECT_GT(h.applied_index, 0);
  }
}

}  // namespace
}  // namespace memdb::cluster
