#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "storage/object_store.h"

namespace memdb::storage {
namespace {

using sim::kMs;
using sim::kSec;
using sim::NodeId;

class ClientHost : public sim::Actor {
 public:
  ClientHost(sim::Simulation* sim, NodeId id, NodeId store)
      : Actor(sim, id), s3(this, store) {}
  StorageClient s3;
};

class StorageTest : public ::testing::Test {
 protected:
  StorageTest()
      : sim_(99),
        store_(&sim_, sim_.AddHost(0)),
        client_(&sim_, sim_.AddHost(1), store_.id()) {}

  Status PutSync(const std::string& key, std::string data) {
    Status out = Status::Internal("pending");
    bool done = false;
    client_.s3.Put(key, std::move(data), [&](const Status& s) {
      out = s;
      done = true;
    });
    for (int i = 0; i < 200000 && !done; ++i) sim_.RunFor(1 * kMs);
    EXPECT_TRUE(done);
    return out;
  }

  Status GetSync(const std::string& key, std::string* data) {
    Status out = Status::Internal("pending");
    bool done = false;
    client_.s3.Get(key, [&](const Status& s, const std::string& d) {
      out = s;
      *data = d;
      done = true;
    });
    for (int i = 0; i < 200000 && !done; ++i) sim_.RunFor(1 * kMs);
    EXPECT_TRUE(done);
    return out;
  }

  std::vector<std::string> ListSync(const std::string& prefix) {
    std::vector<std::string> out;
    bool done = false;
    client_.s3.List(prefix,
                    [&](const Status& s, const std::vector<std::string>& keys) {
                      if (s.ok()) out = keys;
                      done = true;
                    });
    for (int i = 0; i < 200000 && !done; ++i) sim_.RunFor(1 * kMs);
    EXPECT_TRUE(done);
    return out;
  }

  sim::Simulation sim_;
  ObjectStore store_;
  ClientHost client_;
};

TEST_F(StorageTest, PutGetRoundTrip) {
  ASSERT_TRUE(PutSync("a/b/c", "payload").ok());
  std::string data;
  ASSERT_TRUE(GetSync("a/b/c", &data).ok());
  EXPECT_EQ(data, "payload");
  EXPECT_EQ(store_.object_count(), 1u);
}

TEST_F(StorageTest, GetMissingIsNotFound) {
  std::string data;
  EXPECT_TRUE(GetSync("missing", &data).IsNotFound());
}

TEST_F(StorageTest, OverwriteReplaces) {
  ASSERT_TRUE(PutSync("k", "v1").ok());
  ASSERT_TRUE(PutSync("k", "v2").ok());
  std::string data;
  ASSERT_TRUE(GetSync("k", &data).ok());
  EXPECT_EQ(data, "v2");
  EXPECT_EQ(store_.object_count(), 1u);
}

TEST_F(StorageTest, ListByPrefixSorted) {
  ASSERT_TRUE(PutSync("snap/s1/002", "b").ok());
  ASSERT_TRUE(PutSync("snap/s1/001", "a").ok());
  ASSERT_TRUE(PutSync("snap/s2/001", "c").ok());
  ASSERT_TRUE(PutSync("other", "d").ok());
  auto keys = ListSync("snap/s1/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "snap/s1/001");
  EXPECT_EQ(keys[1], "snap/s1/002");
  EXPECT_EQ(ListSync("snap/").size(), 3u);
  EXPECT_TRUE(ListSync("nope/").empty());
}

TEST_F(StorageTest, BinarySafePayloads) {
  std::string blob(1000, '\0');
  blob[1] = '\xff';
  blob[500] = '\r';
  ASSERT_TRUE(PutSync("bin", blob).ok());
  std::string data;
  ASSERT_TRUE(GetSync("bin", &data).ok());
  EXPECT_EQ(data, blob);
}

TEST_F(StorageTest, LargeBlobPaysBandwidth) {
  // Small object first to measure the base latency.
  const sim::Time t0 = sim_.Now();
  ASSERT_TRUE(PutSync("small", "x").ok());
  const sim::Duration small_latency = sim_.Now() - t0;

  const sim::Time t1 = sim_.Now();
  ASSERT_TRUE(PutSync("big", std::string(200 << 20, 'x')).ok());
  const sim::Duration big_latency = sim_.Now() - t1;
  // 200 MB at 10 Gb/s is ~160 ms of transfer.
  EXPECT_GT(big_latency, small_latency + 100 * kMs);
}

TEST_F(StorageTest, SurvivesClientRestart) {
  ASSERT_TRUE(PutSync("durable", "v").ok());
  sim_.Restart(client_.id());
  std::string data;
  ASSERT_TRUE(GetSync("durable", &data).ok());
  EXPECT_EQ(data, "v");
}

}  // namespace
}  // namespace memdb::storage
