#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/actor.h"
#include "sim/queue_server.h"
#include "sim/scheduler.h"
#include "sim/simulation.h"

namespace memdb::sim {
namespace {

// ---------------------------------------------------------------- Scheduler

TEST(SchedulerTest, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.At(30, [&] { order.push_back(3); });
  s.At(10, [&] { order.push_back(1); });
  s.At(20, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 30u);
}

TEST(SchedulerTest, SameTimeIsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.At(5, [&order, i] { order.push_back(i); });
  s.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SchedulerTest, CancelPreventsFiring) {
  Scheduler s;
  int fired = 0;
  TimerHandle h = s.After(10, [&] { ++fired; });
  EXPECT_TRUE(h.Pending());
  h.Cancel();
  s.Run();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(h.Pending());
}

TEST(SchedulerTest, RunUntilAdvancesClock) {
  Scheduler s;
  int fired = 0;
  s.At(100, [&] { ++fired; });
  s.At(300, [&] { ++fired; });
  s.RunUntil(200);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), 200u);
  s.RunUntil(400);
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, EventsScheduledFromEventsRun) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) s.After(10, recurse);
  };
  s.After(10, recurse);
  s.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.Now(), 50u);
}

TEST(SchedulerTest, PastTimeClampsToNow) {
  Scheduler s;
  s.At(100, [] {});
  s.Run();
  Time fired_at = 0;
  s.At(50, [&] { fired_at = s.Now(); });  // in the past
  s.Run();
  EXPECT_EQ(fired_at, 100u);
}

// ---------------------------------------------------------------- QueueServer

TEST(QueueServerTest, SingleServerSerializes) {
  Scheduler s;
  QueueServer q(&s, 1);
  EXPECT_EQ(q.Submit(10), 10u);
  EXPECT_EQ(q.Submit(10), 20u);
  EXPECT_EQ(q.Submit(5), 25u);
  EXPECT_EQ(q.CurrentDelay(), 25u);  // server busy until 25, now=0
}

TEST(QueueServerTest, MultiServerParallelizes) {
  Scheduler s;
  QueueServer q(&s, 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.Submit(10), 10u);
  EXPECT_EQ(q.Submit(10), 20u);  // fifth job waits
}

TEST(QueueServerTest, IdleServerStartsAtNow) {
  Scheduler s;
  QueueServer q(&s, 1);
  s.At(100, [] {});
  s.Run();
  EXPECT_EQ(q.Submit(10), 110u);
}

TEST(QueueServerTest, StallPushesBackWork) {
  Scheduler s;
  QueueServer q(&s, 2);
  q.StallUntil(50);
  EXPECT_EQ(q.Submit(10), 60u);
}

TEST(QueueServerTest, SubmitAndSchedulesCompletion) {
  Scheduler s;
  QueueServer q(&s, 1);
  Time done = 0;
  q.SubmitAnd(42, [&] { done = s.Now(); });
  s.Run();
  EXPECT_EQ(done, 42u);
}

// ---------------------------------------------------------------- Actors

// Simple ping-pong actor for message tests.
class Echo : public Actor {
 public:
  Echo(Simulation* sim, NodeId id) : Actor(sim, id) {
    On("ping", [this](const Message& m) {
      ++pings_;
      if (m.rpc_id != 0) Reply(m, "pong:" + m.payload);
    });
    On("fail", [this](const Message& m) {
      ReplyError(m, Status::Unavailable("no lease"));
    });
  }
  int pings() const { return pings_; }

  using Actor::Rpc;
  using Actor::Send;

 private:
  int pings_ = 0;
};

struct SimFixture : public ::testing::Test {
  Simulation sim{42};
};

TEST_F(SimFixture, MessageDelivery) {
  NodeId a = sim.AddHost(0), b = sim.AddHost(1);
  Echo ea(&sim, a), eb(&sim, b);
  ea.Send(b, "ping", "x");
  sim.Run();
  EXPECT_EQ(eb.pings(), 1);
  EXPECT_GT(sim.Now(), 0u);  // took nonzero (cross-AZ) time
}

TEST_F(SimFixture, RpcRoundTrip) {
  NodeId a = sim.AddHost(0), b = sim.AddHost(0);
  Echo ea(&sim, a), eb(&sim, b);
  Status got_status = Status::Internal("never called");
  std::string got_payload;
  ea.Rpc(b, "ping", "hello", 1 * kSec,
         [&](const Status& s, const std::string& p) {
           got_status = s;
           got_payload = p;
         });
  sim.Run();
  EXPECT_TRUE(got_status.ok());
  EXPECT_EQ(got_payload, "pong:hello");
}

TEST_F(SimFixture, RpcErrorStatusPropagates) {
  NodeId a = sim.AddHost(0), b = sim.AddHost(0);
  Echo ea(&sim, a), eb(&sim, b);
  Status got = Status::OK();
  ea.Rpc(b, "fail", "", 1 * kSec,
         [&](const Status& s, const std::string&) { got = s; });
  sim.Run();
  EXPECT_TRUE(got.IsUnavailable());
  EXPECT_EQ(got.message(), "no lease");
}

TEST_F(SimFixture, RpcToDeadNodeTimesOut) {
  NodeId a = sim.AddHost(0), b = sim.AddHost(1);
  Echo ea(&sim, a), eb(&sim, b);
  sim.Crash(b);
  Status got = Status::OK();
  Time completed_at = 0;
  ea.Rpc(b, "ping", "", 500 * kMs,
         [&](const Status& s, const std::string&) {
           got = s;
           completed_at = sim.Now();
         });
  sim.Run();
  EXPECT_TRUE(got.IsTimedOut());
  EXPECT_EQ(completed_at, 500 * kMs);
}

TEST_F(SimFixture, PartitionBlocksTraffic) {
  NodeId a = sim.AddHost(0), b = sim.AddHost(1);
  Echo ea(&sim, a), eb(&sim, b);
  sim.PartitionAz(1);
  ea.Send(b, "ping", "");
  sim.Run();
  EXPECT_EQ(eb.pings(), 0);
  sim.HealAz(1);
  ea.Send(b, "ping", "");
  sim.Run();
  EXPECT_EQ(eb.pings(), 1);
}

TEST_F(SimFixture, IsolateAndHealNode) {
  NodeId a = sim.AddHost(0), b = sim.AddHost(0);
  Echo ea(&sim, a), eb(&sim, b);
  sim.network().Isolate(b);
  ea.Send(b, "ping", "");
  sim.Run();
  EXPECT_EQ(eb.pings(), 0);
  sim.network().Heal(b);
  ea.Send(b, "ping", "");
  sim.Run();
  EXPECT_EQ(eb.pings(), 1);
}

TEST_F(SimFixture, CrashDropsInFlightToNode) {
  NodeId a = sim.AddHost(0), b = sim.AddHost(1);
  Echo ea(&sim, a), eb(&sim, b);
  ea.Send(b, "ping", "");
  sim.Crash(b);  // crash before delivery
  sim.Run();
  EXPECT_EQ(eb.pings(), 0);
}

TEST_F(SimFixture, RestartDropsOldIncarnationMessages) {
  NodeId a = sim.AddHost(0), b = sim.AddHost(1);
  Echo ea(&sim, a), eb(&sim, b);
  ea.Send(b, "ping", "");  // in flight to incarnation 1
  sim.Restart(b);          // incarnation 2
  sim.Run();
  EXPECT_EQ(eb.pings(), 0);
  ea.Send(b, "ping", "");
  sim.Run();
  EXPECT_EQ(eb.pings(), 1);
}

// Actor that counts periodic ticks.
class Ticker : public Actor {
 public:
  Ticker(Simulation* sim, NodeId id) : Actor(sim, id) {
    Periodic(100, [this] { ++ticks_; });
  }
  int ticks() const { return ticks_; }

 private:
  int ticks_ = 0;
};

TEST_F(SimFixture, PeriodicTimerTicksUntilCrash) {
  NodeId a = sim.AddHost(0);
  Ticker t(&sim, a);
  sim.RunFor(1000);
  EXPECT_EQ(t.ticks(), 10);
  sim.Crash(a);
  sim.RunFor(1000);
  EXPECT_EQ(t.ticks(), 10);  // no ticks after crash
}

TEST_F(SimFixture, DeterministicReplay) {
  auto run_once = [](uint64_t seed) {
    Simulation sim(seed);
    NodeId a = sim.AddHost(0), b = sim.AddHost(1), c = sim.AddHost(2);
    Echo ea(&sim, a), eb(&sim, b), ec(&sim, c);
    for (int i = 0; i < 50; ++i) {
      ea.Send(i % 2 ? b : c, "ping", std::to_string(i));
    }
    sim.Run();
    return std::make_tuple(sim.Now(), eb.pings(), ec.pings());
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_EQ(run_once(99), run_once(99));
}

TEST_F(SimFixture, BulkPayloadTakesLonger) {
  NodeId a = sim.AddHost(0), b = sim.AddHost(0);
  Echo ea(&sim, a), eb(&sim, b);
  // Small message.
  ea.Send(b, "ping", "x");
  sim.Run();
  Time small_time = sim.Now();
  // 100 MB bulk message: at 10 Gbps this takes ~80 ms.
  ea.Send(b, "ping", std::string(100 << 20, 'x'));
  sim.Run();
  Time bulk_elapsed = sim.Now() - small_time;
  EXPECT_GT(bulk_elapsed, 50 * kMs);
}

}  // namespace
}  // namespace memdb::sim
