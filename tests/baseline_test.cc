#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "client/db_client.h"
#include "redisbaseline/baseline_node.h"
#include "sim/simulation.h"

namespace memdb::redisbaseline {
namespace {

using client::DbClient;
using resp::Value;
using sim::kMs;
using sim::kSec;
using sim::NodeId;

class ClientActor : public sim::Actor {
 public:
  ClientActor(sim::Simulation* sim, NodeId id, std::vector<NodeId> nodes)
      : Actor(sim, id), db(this, std::move(nodes)) {}
  DbClient db;
};

class BaselineTest : public ::testing::Test {
 protected:
  void Boot(int num_replicas = 2, BaselineConfig config = BaselineConfig()) {
    // Tear down dependents before the simulation they point into.
    client_.reset();
    nodes_.clear();
    sim_ = std::make_unique<sim::Simulation>(555);
    std::vector<NodeId> ids;
    for (int i = 0; i <= num_replicas; ++i) {
      BaselineConfig c = config;
      c.start_as_primary = (i == 0);
      const NodeId id = sim_->AddHost(static_cast<sim::AzId>(i % 3));
      ids.push_back(id);
      nodes_.push_back(std::make_unique<BaselineNode>(sim_.get(), id, c));
    }
    for (auto& n : nodes_) {
      n->SetPeers(ids);
      n->SetPrimary(ids[0]);
    }
    client_ = std::make_unique<ClientActor>(sim_.get(), sim_->AddHost(0), ids);
    sim_->RunFor(500 * kMs);
  }

  Value Run(std::vector<std::string> argv) {
    Value out = Value::Error("never completed");
    bool done = false;
    client_->db.Command(std::move(argv), [&](const Value& v) {
      out = v;
      done = true;
    });
    for (int i = 0; i < 30000 && !done; ++i) sim_->RunFor(1 * kMs);
    EXPECT_TRUE(done);
    return out;
  }

  BaselineNode* Primary() {
    for (auto& n : nodes_) {
      if (sim_->IsAlive(n->id()) && n->IsPrimary()) return n.get();
    }
    return nullptr;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::vector<std::unique_ptr<BaselineNode>> nodes_;
  std::unique_ptr<ClientActor> client_;
};

TEST_F(BaselineTest, BasicCommands) {
  Boot();
  EXPECT_EQ(Run({"SET", "k", "v"}), Value::Ok());
  EXPECT_EQ(Run({"GET", "k"}), Value::Bulk("v"));
  EXPECT_EQ(Run({"INCR", "n"}), Value::Integer(1));
}

TEST_F(BaselineTest, WritesAckBeforeReplication) {
  Boot();
  Run({"SET", "warm", "x"});  // teach the client where the primary is
  // A write acks fast (no cross-AZ commit), then reaches replicas on the
  // next replication flush.
  bool done = false;
  sim::Time start = sim_->Now();
  sim::Duration latency = 0;
  client_->db.Command({"SET", "k", "v"}, [&](const Value& v) {
    latency = sim_->Now() - start;
    done = true;
  });
  for (int i = 0; i < 1000 && !done; ++i) sim_->RunFor(1 * kMs);
  ASSERT_TRUE(done);
  EXPECT_LT(latency, 500u);  // same-AZ round trip + engine only

  sim_->RunFor(100 * kMs);
  for (auto& n : nodes_) {
    if (n->IsPrimary()) continue;
    engine::ExecContext ctx;
    ctx.now_ms = sim_->Now() / 1000;
    ctx.role = engine::Role::kReplicaRead;
    ctx.rng = &n->engine().rng();
    EXPECT_EQ(n->engine().Execute({"GET", "k"}, &ctx), Value::Bulk("v"));
  }
}

TEST_F(BaselineTest, RankedFailoverPromotesAReplica) {
  Boot();
  Run({"SET", "k", "v"});
  sim_->RunFor(100 * kMs);
  BaselineNode* old_primary = Primary();
  ASSERT_NE(old_primary, nullptr);
  sim_->Crash(old_primary->id());
  sim_->RunFor(3 * kSec);
  BaselineNode* new_primary = Primary();
  ASSERT_NE(new_primary, nullptr);
  EXPECT_NE(new_primary, old_primary);
  EXPECT_EQ(Run({"GET", "k"}), Value::Bulk("v"));  // replicated data kept
  EXPECT_EQ(Run({"SET", "k2", "v2"}), Value::Ok());
}

TEST_F(BaselineTest, FailoverLosesAcknowledgedWrites) {
  // The §2.2.1 failure mode: acknowledged writes that have not been
  // replicated die with the primary.
  BaselineConfig config;
  config.repl_flush_interval = 50 * kMs;  // widen the loss window
  Boot(2, config);
  Run({"SET", "durable", "yes"});
  sim_->RunFor(200 * kMs);  // replicated

  // Fire a burst of writes and crash the primary before the next flush.
  BaselineNode* primary = Primary();
  ASSERT_NE(primary, nullptr);
  int acked = 0;
  for (int i = 0; i < 5; ++i) {
    bool done = false;
    client_->db.Command({"SET", "lost" + std::to_string(i), "x"},
                        [&](const Value& v) {
                          if (v == Value::Ok()) ++acked;
                          done = true;
                        });
    for (int t = 0; t < 30 && !done; ++t) sim_->RunFor(1 * kMs);
  }
  ASSERT_GT(acked, 0);
  sim_->Crash(primary->id());
  sim_->RunFor(3 * kSec);
  ASSERT_NE(Primary(), nullptr);

  // The replicated write survives; the acked burst is gone.
  EXPECT_EQ(Run({"GET", "durable"}), Value::Bulk("yes"));
  int lost = 0;
  for (int i = 0; i < 5; ++i) {
    if (Run({"GET", "lost" + std::to_string(i)}).IsNull()) ++lost;
  }
  EXPECT_GT(lost, 0) << "baseline unexpectedly kept all acked writes";
}

TEST_F(BaselineTest, RestartedPrimaryRejoinsAsReplica) {
  Boot();
  Run({"SET", "k", "v"});
  sim_->RunFor(200 * kMs);
  BaselineNode* old_primary = Primary();
  const NodeId old_id = old_primary->id();
  sim_->Crash(old_id);
  sim_->RunFor(3 * kSec);
  ASSERT_NE(Primary(), nullptr);
  sim_->Restart(old_id);
  sim_->RunFor(3 * kSec);
  EXPECT_FALSE(old_primary->IsPrimary());
  // Full-synced from the new primary.
  engine::ExecContext ctx;
  ctx.now_ms = sim_->Now() / 1000;
  ctx.role = engine::Role::kReplicaRead;
  ctx.rng = &old_primary->engine().rng();
  EXPECT_EQ(old_primary->engine().Execute({"GET", "k"}, &ctx),
            Value::Bulk("v"));
}

TEST_F(BaselineTest, AofAlwaysAddsFsyncLatency) {
  BaselineConfig plain;
  Boot(0, plain);
  bool done = false;
  sim::Time start = sim_->Now();
  sim::Duration async_latency = 0;
  client_->db.Command({"SET", "a", "1"}, [&](const Value&) {
    async_latency = sim_->Now() - start;
    done = true;
  });
  for (int i = 0; i < 1000 && !done; ++i) sim_->RunFor(1 * kMs);

  BaselineConfig aof;
  aof.aof_mode = BaselineConfig::AofMode::kAlways;
  Boot(0, aof);
  done = false;
  start = sim_->Now();
  sim::Duration aof_latency = 0;
  client_->db.Command({"SET", "a", "1"}, [&](const Value&) {
    aof_latency = sim_->Now() - start;
    done = true;
  });
  for (int i = 0; i < 1000 && !done; ++i) sim_->RunFor(1 * kMs);
  EXPECT_GT(aof_latency, async_latency + 500);  // pays the fsync
}

TEST_F(BaselineTest, BgSaveForkStallsAndCowGrowsMemory) {
  BaselineConfig config;
  config.synthetic_dataset_bytes = 4ULL << 30;  // 4 GB resident
  config.ram_bytes = 16ULL << 30;
  Boot(0, config);
  Run({"SET", "k", "v"});
  BaselineNode* primary = Primary();
  ASSERT_NE(primary, nullptr);
  const uint64_t resident_before = primary->resident_bytes();

  EXPECT_EQ(Run({"BGSAVE"}).str, "Background saving started");
  ASSERT_TRUE(primary->bgsave_running());
  // The fork page-table clone stalls the workloop: the next command pays
  // roughly 12 ms per GB.
  bool done = false;
  sim::Time start = sim_->Now();
  sim::Duration latency = 0;
  client_->db.Command({"GET", "k"}, [&](const Value&) {
    latency = sim_->Now() - start;
    done = true;
  });
  for (int i = 0; i < 30000 && !done; ++i) sim_->RunFor(1 * kMs);
  EXPECT_GT(latency, 40 * kMs);  // 4 GB * 12 ms/GB = 48 ms

  // Writes during BGSave accumulate COW pages.
  for (int i = 0; i < 200; ++i) Run({"SET", "w" + std::to_string(i), "x"});
  EXPECT_GT(primary->cow_bytes(), 0u);
  EXPECT_GT(primary->resident_bytes(), resident_before);

  // BGSave finishes eventually and COW memory is released.
  sim_->RunFor(60 * kSec);
  EXPECT_FALSE(primary->bgsave_running());
  EXPECT_EQ(primary->cow_bytes(), 0u);
  EXPECT_EQ(primary->stats().bgsaves_completed, 1u);
}

TEST_F(BaselineTest, SwapCollapsesThroughput) {
  // Resident set already ~5% over DRAM: every operation has a substantial
  // chance of faulting on a swapped page and serializing on the disk.
  BaselineConfig config;
  config.synthetic_dataset_bytes = 10ULL << 30;
  config.ram_bytes = (10ULL << 30) - (512ULL << 20);
  Boot(0, config);
  BaselineNode* primary = Primary();
  Run({"SET", "k", "v"});
  ASSERT_GT(primary->swap_bytes(), 0u);

  // Measure read latency while swapping: the single disk queue dominates.
  uint64_t slow_reads = 0;
  for (int i = 0; i < 50; ++i) {
    bool done = false;
    sim::Time start = sim_->Now();
    client_->db.Command({"GET", "k"}, [&](const Value&) { done = true; });
    for (int t = 0; t < 60000 && !done; ++t) sim_->RunFor(250);
    if (sim_->Now() - start > 5 * kMs) ++slow_reads;
  }
  EXPECT_GT(slow_reads, 5u) << "swap penalty not observable";
}

TEST_F(BaselineTest, WaitReturnsReplicaCount) {
  Boot(2);
  Value v = Run({"WAIT", "1", "0"});
  EXPECT_EQ(v.type, resp::Type::kInteger);
}

}  // namespace
}  // namespace memdb::redisbaseline
