// Unit tests for the shard subsystem's data structures: slot-range parsing,
// the SlotTable state machine (bootstrap assignment, migration transitions,
// epoch-guarded ownership replay, redirect bodies, CLUSTER reply shapes),
// and the kSlotOwnership wire record.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/crc.h"
#include "shard/slot_table.h"
#include "shard/slot_wire.h"

namespace memdb::shard {
namespace {

TEST(SlotRanges, ParseAndFormatRoundTrip) {
  std::vector<uint16_t> slots;
  ASSERT_TRUE(ParseSlotRanges("0-3,10,100-101", &slots).ok());
  EXPECT_EQ(slots, (std::vector<uint16_t>{0, 1, 2, 3, 10, 100, 101}));
  EXPECT_EQ(FormatSlotRanges(slots), "0-3,10,100-101");
}

TEST(SlotRanges, RejectsMalformedSpecs) {
  std::vector<uint16_t> slots;
  EXPECT_FALSE(ParseSlotRanges("", &slots).ok());
  EXPECT_FALSE(ParseSlotRanges("5-3", &slots).ok());
  EXPECT_FALSE(ParseSlotRanges("0-16384", &slots).ok());
  EXPECT_FALSE(ParseSlotRanges("abc", &slots).ok());
}

SlotTable TwoShardTable() {
  SlotTable t;
  t.Init("s1", "127.0.0.1:7001");
  std::vector<uint16_t> mine, theirs;
  EXPECT_TRUE(ParseSlotRanges("0-8191", &mine).ok());
  EXPECT_TRUE(ParseSlotRanges("8192-16383", &theirs).ok());
  t.AssignLocal(mine);
  t.AssignRemote(theirs, "s2", "127.0.0.1:7002");
  return t;
}

TEST(SlotTable, BootstrapAssignmentAndRedirects) {
  SlotTable t = TwoShardTable();
  EXPECT_EQ(t.owned(), 8192u);
  EXPECT_EQ(t.at(0).state, SlotState::kOwned);
  EXPECT_EQ(t.at(9000).state, SlotState::kRemote);
  EXPECT_EQ(t.MovedError(9000), "MOVED 9000 127.0.0.1:7002");
}

TEST(SlotTable, UnservedSlotAnswersClusterDown) {
  SlotTable t;
  t.Init("s1", "127.0.0.1:7001");
  std::vector<uint16_t> mine;
  ASSERT_TRUE(ParseSlotRanges("0-10", &mine).ok());
  t.AssignLocal(mine);
  EXPECT_EQ(t.MovedError(5000), "CLUSTERDOWN Hash slot not served");
}

TEST(SlotTable, MigrationOutLifecycle) {
  SlotTable t = TwoShardTable();
  ASSERT_TRUE(t.BeginMigrating(7, "s2", "127.0.0.1:7002"));
  EXPECT_EQ(t.at(7).state, SlotState::kMigrating);
  // Still counted as served while migrating.
  EXPECT_EQ(t.owned(), 8192u);
  EXPECT_EQ(t.AskError(7), "ASK 7 127.0.0.1:7002");
  // Only an owned slot can start migrating.
  EXPECT_FALSE(t.BeginMigrating(9000, "s2", "127.0.0.1:7002"));
  EXPECT_FALSE(t.BeginMigrating(7, "s2", "127.0.0.1:7002"));

  ASSERT_TRUE(t.CommitMigrationOut(7, 1));
  EXPECT_EQ(t.at(7).state, SlotState::kRemote);
  EXPECT_EQ(t.at(7).shard, "s2");
  EXPECT_EQ(t.at(7).epoch, 1u);
  EXPECT_EQ(t.owned(), 8191u);
}

TEST(SlotTable, MigrationInLifecycle) {
  SlotTable t = TwoShardTable();
  ASSERT_TRUE(t.BeginImporting(9000, "s2", "127.0.0.1:7002"));
  EXPECT_EQ(t.at(9000).state, SlotState::kImporting);
  // An owned slot cannot be imported.
  EXPECT_FALSE(t.BeginImporting(3, "s2", "127.0.0.1:7002"));

  ASSERT_TRUE(t.CommitMigrationIn(9000, 5));
  EXPECT_EQ(t.at(9000).state, SlotState::kOwned);
  EXPECT_EQ(t.at(9000).shard, "s1");
  EXPECT_EQ(t.at(9000).epoch, 5u);
}

TEST(SlotTable, CancelRestoresPreviousState) {
  SlotTable t = TwoShardTable();
  ASSERT_TRUE(t.BeginMigrating(7, "s2", "127.0.0.1:7002"));
  ASSERT_TRUE(t.CancelMigration(7));
  EXPECT_EQ(t.at(7).state, SlotState::kOwned);
  ASSERT_TRUE(t.BeginImporting(9000, "s2", "127.0.0.1:7002"));
  ASSERT_TRUE(t.CancelMigration(9000));
  EXPECT_EQ(t.at(9000).state, SlotState::kRemote);
  EXPECT_FALSE(t.CancelMigration(3));  // not migrating
}

TEST(SlotTable, OwnershipReplayIsEpochGuarded) {
  SlotTable t = TwoShardTable();
  // A replayed flip of a local slot to a peer applies and demotes.
  EXPECT_TRUE(t.ApplyOwnership(7, 3, "s2", "127.0.0.1:7002"));
  EXPECT_EQ(t.at(7).state, SlotState::kRemote);
  // Stale and duplicate records are ignored (idempotent, order-safe).
  EXPECT_FALSE(t.ApplyOwnership(7, 3, "s1", "127.0.0.1:7001"));
  EXPECT_FALSE(t.ApplyOwnership(7, 2, "s1", "127.0.0.1:7001"));
  EXPECT_EQ(t.at(7).state, SlotState::kRemote);
  // A newer record flipping it back to us applies.
  EXPECT_TRUE(t.ApplyOwnership(7, 4, "s1", "127.0.0.1:7001"));
  EXPECT_EQ(t.at(7).state, SlotState::kOwned);
  EXPECT_EQ(t.at(7).epoch, 4u);
}

TEST(SlotTable, SlotsReplyMergesContiguousRuns) {
  SlotTable t = TwoShardTable();
  const resp::Value v = t.SlotsReply();
  ASSERT_EQ(v.type, resp::Type::kArray);
  ASSERT_EQ(v.array.size(), 2u);
  EXPECT_EQ(v.array[0].array[0].integer, 0);
  EXPECT_EQ(v.array[0].array[1].integer, 8191);
  EXPECT_EQ(v.array[0].array[2].array[0].str, "127.0.0.1");
  EXPECT_EQ(v.array[0].array[2].array[1].integer, 7001);
  EXPECT_EQ(v.array[0].array[2].array[2].str, "s1");
  EXPECT_EQ(v.array[1].array[0].integer, 8192);
  EXPECT_EQ(v.array[1].array[1].integer, 16383);
}

TEST(SlotTable, ShardsReplyListsBothShards) {
  SlotTable t = TwoShardTable();
  const resp::Value v = t.ShardsReply();
  ASSERT_EQ(v.type, resp::Type::kArray);
  EXPECT_EQ(v.array.size(), 2u);
}

TEST(SlotWire, OwnershipRecordRoundTrip) {
  SlotOwnershipRecord rec;
  rec.slot = 1234;
  rec.epoch = 99;
  rec.from_shard = "s1";
  rec.to_shard = "s2";
  rec.to_endpoint = "127.0.0.1:7002";
  SlotOwnershipRecord got;
  ASSERT_TRUE(SlotOwnershipRecord::Decode(Slice(rec.Encode()), &got));
  EXPECT_EQ(got.slot, rec.slot);
  EXPECT_EQ(got.epoch, rec.epoch);
  EXPECT_EQ(got.from_shard, rec.from_shard);
  EXPECT_EQ(got.to_shard, rec.to_shard);
  EXPECT_EQ(got.to_endpoint, rec.to_endpoint);
}

TEST(SlotWire, DecodeRejectsGarbage) {
  SlotOwnershipRecord got;
  EXPECT_FALSE(SlotOwnershipRecord::Decode(Slice("x"), &got));
  // Slot out of range (uint16_t admits values past the 16384 slot space).
  SlotOwnershipRecord rec;
  rec.slot = 20000;
  EXPECT_FALSE(SlotOwnershipRecord::Decode(Slice(rec.Encode()), &got));
}

TEST(HashSlot, HashTagsRouteTogether) {
  // {tag} hashing (Redis Cluster): only the tag participates.
  EXPECT_EQ(KeyHashSlot(Slice("{user1}.name")),
            KeyHashSlot(Slice("{user1}.age")));
  EXPECT_EQ(KeyHashSlot(Slice("foo")), 12182);
}

}  // namespace
}  // namespace memdb::shard
