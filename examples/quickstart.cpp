// Quickstart: the in-memory execution engine as an embedded library.
//
// The engine is the Redis-compatible core every node embeds: ~95 commands
// over strings, lists, hashes, sets, and sorted sets, with Redis semantics
// (expiry, type errors, effect-based replication). This example drives it
// directly — no simulator, no cluster — and shows the effect stream that
// MemoryDB redirects into its transaction log.
//
//   $ ./quickstart

#include <cstdio>
#include <string>

#include "engine/engine.h"

using memdb::engine::Argv;
using memdb::engine::Engine;
using memdb::engine::ExecContext;

namespace {

// Small REPL-style helper: run one command and print it like redis-cli.
memdb::resp::Value Run(Engine& db, ExecContext& ctx, const Argv& argv) {
  std::string line;
  for (const auto& a : argv) line += a + " ";
  memdb::resp::Value reply = db.Execute(argv, &ctx);
  std::printf("> %-40s %s\n", line.c_str(), reply.ToString().c_str());
  return reply;
}

}  // namespace

int main() {
  Engine db;
  ExecContext ctx;
  ctx.now_ms = 1000;
  ctx.rng = &db.rng();

  std::printf("-- strings and counters\n");
  Run(db, ctx, {"SET", "user:42:name", "Ada"});
  Run(db, ctx, {"GET", "user:42:name"});
  Run(db, ctx, {"INCR", "page:views"});
  Run(db, ctx, {"INCRBY", "page:views", "10"});
  Run(db, ctx, {"APPEND", "user:42:name", " Lovelace"});
  Run(db, ctx, {"GET", "user:42:name"});

  std::printf("\n-- expiry (engine time is explicit)\n");
  Run(db, ctx, {"SET", "session:abc", "token", "EX", "30"});
  Run(db, ctx, {"TTL", "session:abc"});
  ctx.now_ms += 31'000;  // 31 seconds later...
  Run(db, ctx, {"GET", "session:abc"});

  std::printf("\n-- lists, hashes, sets\n");
  Run(db, ctx, {"RPUSH", "queue", "job1", "job2", "job3"});
  Run(db, ctx, {"LPOP", "queue"});
  Run(db, ctx, {"LRANGE", "queue", "0", "-1"});
  Run(db, ctx, {"HSET", "user:42", "name", "Ada", "role", "admin"});
  Run(db, ctx, {"HGETALL", "user:42"});
  Run(db, ctx, {"SADD", "tags", "fast", "durable", "fast"});
  Run(db, ctx, {"SMEMBERS", "tags"});

  std::printf("\n-- sorted sets (leaderboards)\n");
  Run(db, ctx, {"ZADD", "scores", "120", "alice", "95", "bob", "87", "eve"});
  Run(db, ctx, {"ZRANGE", "scores", "0", "-1", "REV", "WITHSCORES"});
  Run(db, ctx, {"ZRANK", "scores", "bob"});

  std::printf("\n-- the replication effect stream (what goes into the log)\n");
  ctx.effects.clear();
  Run(db, ctx, {"SPOP", "tags"});
  Run(db, ctx, {"SET", "k", "v", "EX", "60"});
  std::printf("effects recorded for the transaction log:\n");
  for (const Argv& effect : ctx.effects) {
    std::printf("    ");
    for (const auto& a : effect) std::printf("%s ", a.c_str());
    std::printf("\n");
  }
  std::printf(
      "\nNote how SPOP (random) became a deterministic SREM, and the\n"
      "relative EX became an absolute PXAT — replicas replay these\n"
      "effects bit-identically (paper §3.1).\n");
  return 0;
}
