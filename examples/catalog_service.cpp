// Catalog microservice — the paper's motivating example (§1): an e-commerce
// catalog that previously needed DynamoDB + a pipeline + re-hydration jobs
// because Redis could lose data. With MemoryDB the service stores the
// catalog directly in the database: writes are durable, node failures are
// repaired by the monitoring service, and no reconciliation job exists.
//
// This example runs a small multi-shard cluster, spreads catalog items
// across shards, survives a node replacement, and then scales out by
// adding a shard and migrating a slot to it — all while reads keep working.
//
//   $ ./catalog_service

#include <cstdio>
#include <string>
#include <vector>

#include "client/db_client.h"
#include "cluster/cluster.h"
#include "sim/simulation.h"
#include "storage/object_store.h"

using memdb::client::DbClient;
using memdb::cluster::Cluster;
using memdb::resp::Value;
using memdb::sim::kMs;
using memdb::sim::kSec;

namespace {

class App : public memdb::sim::Actor {
 public:
  App(memdb::sim::Simulation* sim, memdb::sim::NodeId id,
      std::vector<memdb::sim::NodeId> nodes)
      : Actor(sim, id), db(this, std::move(nodes)) {}
  DbClient db;
};

Value Call(memdb::sim::Simulation& sim, App& app,
           std::vector<std::string> argv) {
  Value out;
  bool done = false;
  app.db.Command(std::move(argv), [&](const Value& v) {
    out = v;
    done = true;
  });
  while (!done) sim.RunFor(1 * kMs);
  return out;
}

}  // namespace

int main() {
  memdb::sim::Simulation sim(2026);
  memdb::storage::ObjectStore s3(&sim, sim.AddHost(0));
  Cluster::Options opts;
  opts.num_shards = 2;
  opts.replicas_per_shard = 1;
  opts.object_store = s3.id();
  Cluster cluster(&sim, opts);
  App app(&sim, sim.AddHost(0), cluster.AllNodeIds());
  sim.RunFor(3 * kSec);
  std::printf("catalog cluster: %zu shards x (1 primary + 1 replica)\n",
              cluster.num_shards());

  // Ingest the catalog — items are hashes, keyed item:<sku>, spread across
  // shards by slot. No DynamoDB, no pipeline: this IS the system of record.
  std::printf("ingesting 60 catalog items directly (no pipeline)...\n");
  for (int sku = 0; sku < 60; ++sku) {
    Call(sim, app,
         {"HSET", "item:" + std::to_string(sku),             //
          "title", "Item #" + std::to_string(sku),           //
          "price", std::to_string(999 + sku * 10),           //
          "stock", "25"});
  }

  // Page views read item details; a purchase decrements stock atomically.
  Value item = Call(sim, app, {"HGETALL", "item:7"});
  std::printf("page view item:7 -> %s\n", item.ToString().c_str());
  Call(sim, app, {"HINCRBY", "item:7", "stock", "-1"});
  std::printf("purchase: stock now %s\n",
              Call(sim, app, {"HGET", "item:7", "stock"}).ToString().c_str());

  // A replica host dies. The monitoring service (polling every 5s) detects
  // and repairs it; the node restores from durable state. Nothing for the
  // application to do — and crucially, no data loss to reconcile.
  memdb::memorydb::Node* victim = cluster.shard(0)->AnyReplica();
  std::printf("\n*** replica node%u hardware failure ***\n", victim->id());
  sim.Crash(victim->id());
  sim.RunFor(25 * kSec);
  std::printf("monitoring repaired it: repairs=%llu, node%u role=%s, "
              "caught_up=%s\n",
              static_cast<unsigned long long>(
                  cluster.monitoring()->repairs()),
              victim->id(),
              victim->IsPrimary() ? "primary" : "replica",
              victim->caught_up() ? "true" : "false");

  // Traffic grew: scale out. Add a shard, move a slot onto it live.
  std::printf("\nscaling out: adding shard-2 and migrating a slot...\n");
  cluster.AddShard();
  sim.RunFor(3 * kSec);
  const uint16_t slot = memdb::KeyHashSlot("item:7");
  bool done = false;
  memdb::Status status = memdb::Status::OK();
  cluster.MigrateSlot(slot, cluster.ShardForSlot(slot), 2,
                      [&](const memdb::Status& s) {
                        status = s;
                        done = true;
                      });
  while (!done) sim.RunFor(5 * kMs);
  std::printf("migration of slot %u: %s\n", slot, status.ToString().c_str());

  // The item is served by the new shard now; the client just follows MOVED.
  std::printf("item:7 after migration -> %s\n",
              Call(sim, app, {"HGET", "item:7", "title"}).ToString().c_str());
  std::printf("\ncatalog intact: %d items checked\n", 60);
  int present = 0;
  for (int sku = 0; sku < 60; ++sku) {
    Value v = Call(sim, app, {"HGET", "item:" + std::to_string(sku), "title"});
    if (v.type == memdb::resp::Type::kBulkString) ++present;
  }
  std::printf("items present: %d / 60\n", present);
  return present == 60 ? 0 : 1;
}
