// Real-time bidding leaderboard — the workload from the paper's
// introduction: an application that must aggregate over many user profiles
// with server-side data structures (sorted sets), at scale, with durable
// writes and read scaling via replicas.
//
// Strong reads go to the primary; READONLY reads are load-balanced across
// replicas (sequentially consistent per replica, §3.2).
//
//   $ ./leaderboard

#include <cstdio>
#include <string>
#include <vector>

#include "client/db_client.h"
#include "memorydb/shard.h"
#include "sim/simulation.h"
#include "storage/object_store.h"

using memdb::client::DbClient;
using memdb::memorydb::Shard;
using memdb::resp::Value;
using memdb::sim::kMs;
using memdb::sim::kSec;

namespace {

class App : public memdb::sim::Actor {
 public:
  App(memdb::sim::Simulation* sim, memdb::sim::NodeId id,
      std::vector<memdb::sim::NodeId> nodes)
      : Actor(sim, id), db(this, std::move(nodes)) {}
  DbClient db;
};

Value Call(memdb::sim::Simulation& sim, App& app,
           std::vector<std::string> argv, bool readonly = false) {
  Value out;
  bool done = false;
  auto cb = [&](const Value& v) {
    out = v;
    done = true;
  };
  if (readonly) {
    app.db.CommandReadonly(std::move(argv), cb);
  } else {
    app.db.Command(std::move(argv), cb);
  }
  while (!done) sim.RunFor(1 * kMs);
  return out;
}

}  // namespace

int main() {
  memdb::sim::Simulation sim(11);
  memdb::storage::ObjectStore s3(&sim, sim.AddHost(0));
  Shard::Options opts;
  opts.num_replicas = 2;
  opts.object_store = s3.id();
  Shard shard(&sim, opts);
  App app(&sim, sim.AddHost(0), shard.node_ids());
  sim.RunFor(3 * kSec);

  // Bidders place bids; ZADD GT keeps only each bidder's best bid. All keys
  // share a hash tag so multi-key reads stay in one slot.
  const char* bidders[] = {"alice", "bob", "carol", "dave", "eve"};
  memdb::Rng rng(99);
  std::printf("placing 200 bids from 5 bidders...\n");
  for (int i = 0; i < 200; ++i) {
    const char* who = bidders[rng.Uniform(5)];
    const uint64_t amount = 10 + rng.Uniform(990);
    Call(sim, app,
         {"ZADD", "{auction}board", "GT", std::to_string(amount), who});
    // Track per-bidder bid counts in a hash.
    Call(sim, app, {"HINCRBY", "{auction}stats", who, "1"});
  }

  // Strong read from the primary: the authoritative top-3.
  Value top = Call(sim, app,
                   {"ZRANGE", "{auction}board", "0", "2", "REV",
                    "WITHSCORES"});
  std::printf("\nauthoritative top-3 (primary read): %s\n",
              top.ToString().c_str());

  // Rank queries, server-side — no client-side aggregation needed.
  for (const char* who : bidders) {
    Value rank = Call(sim, app, {"ZREVRANK", "{auction}board", who});
    Value best = Call(sim, app, {"ZSCORE", "{auction}board", who});
    Value bids = Call(sim, app, {"HGET", "{auction}stats", who});
    std::printf("  %-6s rank=%-4s best=%-5s bids=%s\n", who,
                rank.ToString().c_str(), best.ToString().c_str(),
                bids.ToString().c_str());
  }

  // Read scaling: READONLY reads are served by replicas. Replicas only see
  // committed data, so these are consistent point-in-time views (§3.2).
  sim.RunFor(500 * kMs);  // let replicas drain the log
  std::printf("\nreplica reads (READONLY, round-robin):\n");
  for (int i = 0; i < 3; ++i) {
    Value v = Call(sim, app, {"ZCARD", "{auction}board"}, /*readonly=*/true);
    std::printf("  ZCARD from a replica -> %s\n", v.ToString().c_str());
  }

  // Atomic settle: MULTI executes and replicates as one unit.
  bool done = false;
  Value settle;
  app.db.Multi({{"ZPOPMAX", "{auction}board"},
                {"SET", "{auction}winner-announced", "true"}},
               [&](const Value& v) {
                 settle = v;
                 done = true;
               });
  while (!done) sim.RunFor(1 * kMs);
  std::printf("\natomic settlement (MULTI): %s\n", settle.ToString().c_str());
  return 0;
}
