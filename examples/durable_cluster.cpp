// Durable cluster: the paper's headline behaviour, end to end.
//
// Boots a full MemoryDB shard in the deterministic simulator — a primary
// and two replicas across three AZs, a 3-way replicated transaction log,
// an S3-like object store, off-box snapshotting — writes data, kills the
// primary, and shows that every acknowledged write survives the failover.
//
//   $ ./durable_cluster

#include <cstdio>
#include <string>
#include <vector>

#include "client/db_client.h"
#include "memorydb/shard.h"
#include "sim/simulation.h"
#include "storage/object_store.h"

using memdb::client::DbClient;
using memdb::memorydb::Node;
using memdb::memorydb::Shard;
using memdb::resp::Value;
using memdb::sim::kMs;
using memdb::sim::kSec;

namespace {

class App : public memdb::sim::Actor {
 public:
  App(memdb::sim::Simulation* sim, memdb::sim::NodeId id,
      std::vector<memdb::sim::NodeId> nodes)
      : Actor(sim, id), db(this, std::move(nodes)) {}
  DbClient db;
};

Value Call(memdb::sim::Simulation& sim, App& app,
           std::vector<std::string> argv) {
  Value out;
  bool done = false;
  app.db.Command(std::move(argv), [&](const Value& v) {
    out = v;
    done = true;
  });
  while (!done) sim.RunFor(1 * kMs);
  return out;
}

}  // namespace

int main() {
  memdb::sim::Simulation sim(/*seed=*/7);
  memdb::storage::ObjectStore s3(&sim, sim.AddHost(0));

  Shard::Options opts;
  opts.shard_id = "demo";
  opts.num_replicas = 2;       // placed in distinct AZs
  opts.object_store = s3.id();
  opts.with_offbox = true;     // snapshots without touching the cluster
  Shard shard(&sim, opts);
  App app(&sim, sim.AddHost(0), shard.node_ids());

  sim.RunFor(3 * kSec);  // log-service election + shard bootstrap
  Node* primary = shard.Primary();
  std::printf("cluster up: primary=node%u (%zu nodes, 3 AZs, 3-way log)\n",
              primary->id(), shard.num_nodes());

  // Write an order book through the client.
  std::printf("\nwriting 100 orders (each acknowledged only after commit "
              "to a majority of AZs)...\n");
  for (int i = 0; i < 100; ++i) {
    Value v = Call(sim, app,
                   {"SET", "order:" + std::to_string(i),
                    "{\"item\":\"sku-" + std::to_string(i) + "\"}"});
    if (!(v == Value::Ok())) {
      std::printf("write %d failed: %s\n", i, v.ToString().c_str());
      return 1;
    }
  }
  Call(sim, app, {"ZADD", "revenue", "100", "day-1"});
  std::printf("all 100 writes acknowledged.\n");

  // Disaster: the primary dies.
  std::printf("\n*** crashing the primary (node%u) ***\n", primary->id());
  sim.Crash(primary->id());
  const memdb::sim::Time crash = sim.Now();

  // The lease lapses, a fully caught-up replica wins the election.
  while (shard.Primary() == nullptr) sim.RunFor(10 * kMs);
  Node* successor = shard.Primary();
  std::printf("node%u promoted after %.0f ms (lease expiry + backoff + "
              "conditional append, paper §4.1)\n",
              successor->id(),
              static_cast<double>(sim.Now() - crash) / 1000.0);

  // Every acknowledged write is still there.
  int present = 0;
  for (int i = 0; i < 100; ++i) {
    Value v = Call(sim, app, {"GET", "order:" + std::to_string(i)});
    if (v.type == memdb::resp::Type::kBulkString) ++present;
  }
  std::printf("\nacknowledged writes surviving failover: %d / 100\n",
              present);

  // And the cluster keeps serving.
  Call(sim, app, {"SET", "order:100", "{\"item\":\"sku-100\"}"});
  Value dbsize = Call(sim, app, {"DBSIZE"});
  std::printf("writes continue on the new primary; DBSIZE = %s\n",
              dbsize.ToString().c_str());

  // The old primary returns as a replica and resyncs from durable state.
  sim.Restart(primary->id());
  sim.RunFor(5 * kSec);
  std::printf("old primary rejoined as %s, caught_up=%s\n",
              primary->IsPrimary() ? "primary" : "replica",
              primary->caught_up() ? "true" : "false");
  return present == 100 ? 0 : 1;
}
