# Empty compiler generated dependencies file for memorydb_test.
# This may be replaced when dependencies are built.
