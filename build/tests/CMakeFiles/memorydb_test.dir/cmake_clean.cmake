file(REMOVE_RECURSE
  "CMakeFiles/memorydb_test.dir/memorydb_test.cc.o"
  "CMakeFiles/memorydb_test.dir/memorydb_test.cc.o.d"
  "memorydb_test"
  "memorydb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memorydb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
