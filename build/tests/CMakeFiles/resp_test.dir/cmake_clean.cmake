file(REMOVE_RECURSE
  "CMakeFiles/resp_test.dir/resp_test.cc.o"
  "CMakeFiles/resp_test.dir/resp_test.cc.o.d"
  "resp_test"
  "resp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
