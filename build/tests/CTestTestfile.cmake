# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;memdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;15;memdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(resp_test "/root/repo/build/tests/resp_test")
set_tests_properties(resp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;18;memdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ds_test "/root/repo/build/tests/ds_test")
set_tests_properties(ds_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;21;memdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_test "/root/repo/build/tests/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;24;memdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(txlog_test "/root/repo/build/tests/txlog_test")
set_tests_properties(txlog_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;27;memdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(memorydb_test "/root/repo/build/tests/memorydb_test")
set_tests_properties(memorydb_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;30;memdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cluster_test "/root/repo/build/tests/cluster_test")
set_tests_properties(cluster_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;33;memdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baseline_test "/root/repo/build/tests/baseline_test")
set_tests_properties(baseline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;36;memdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(check_test "/root/repo/build/tests/check_test")
set_tests_properties(check_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;39;memdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;42;memdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_param_test "/root/repo/build/tests/engine_param_test")
set_tests_properties(engine_param_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;45;memdb_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_extended_test "/root/repo/build/tests/engine_extended_test")
set_tests_properties(engine_extended_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;48;memdb_test;/root/repo/tests/CMakeLists.txt;0;")
