file(REMOVE_RECURSE
  "CMakeFiles/leaderboard.dir/leaderboard.cpp.o"
  "CMakeFiles/leaderboard.dir/leaderboard.cpp.o.d"
  "leaderboard"
  "leaderboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaderboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
