file(REMOVE_RECURSE
  "CMakeFiles/catalog_service.dir/catalog_service.cpp.o"
  "CMakeFiles/catalog_service.dir/catalog_service.cpp.o.d"
  "catalog_service"
  "catalog_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
