# Empty compiler generated dependencies file for catalog_service.
# This may be replaced when dependencies are built.
