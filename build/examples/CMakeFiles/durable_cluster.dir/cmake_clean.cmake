file(REMOVE_RECURSE
  "CMakeFiles/durable_cluster.dir/durable_cluster.cpp.o"
  "CMakeFiles/durable_cluster.dir/durable_cluster.cpp.o.d"
  "durable_cluster"
  "durable_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
