# Empty dependencies file for durable_cluster.
# This may be replaced when dependencies are built.
