file(REMOVE_RECURSE
  "libmemdb_engine.a"
)
