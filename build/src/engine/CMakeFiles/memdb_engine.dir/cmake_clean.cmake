file(REMOVE_RECURSE
  "CMakeFiles/memdb_engine.dir/commands_bitmap.cc.o"
  "CMakeFiles/memdb_engine.dir/commands_bitmap.cc.o.d"
  "CMakeFiles/memdb_engine.dir/commands_extended.cc.o"
  "CMakeFiles/memdb_engine.dir/commands_extended.cc.o.d"
  "CMakeFiles/memdb_engine.dir/commands_hash.cc.o"
  "CMakeFiles/memdb_engine.dir/commands_hash.cc.o.d"
  "CMakeFiles/memdb_engine.dir/commands_hll.cc.o"
  "CMakeFiles/memdb_engine.dir/commands_hll.cc.o.d"
  "CMakeFiles/memdb_engine.dir/commands_key.cc.o"
  "CMakeFiles/memdb_engine.dir/commands_key.cc.o.d"
  "CMakeFiles/memdb_engine.dir/commands_list.cc.o"
  "CMakeFiles/memdb_engine.dir/commands_list.cc.o.d"
  "CMakeFiles/memdb_engine.dir/commands_server.cc.o"
  "CMakeFiles/memdb_engine.dir/commands_server.cc.o.d"
  "CMakeFiles/memdb_engine.dir/commands_set.cc.o"
  "CMakeFiles/memdb_engine.dir/commands_set.cc.o.d"
  "CMakeFiles/memdb_engine.dir/commands_string.cc.o"
  "CMakeFiles/memdb_engine.dir/commands_string.cc.o.d"
  "CMakeFiles/memdb_engine.dir/commands_zset.cc.o"
  "CMakeFiles/memdb_engine.dir/commands_zset.cc.o.d"
  "CMakeFiles/memdb_engine.dir/engine.cc.o"
  "CMakeFiles/memdb_engine.dir/engine.cc.o.d"
  "CMakeFiles/memdb_engine.dir/keyspace.cc.o"
  "CMakeFiles/memdb_engine.dir/keyspace.cc.o.d"
  "CMakeFiles/memdb_engine.dir/snapshot.cc.o"
  "CMakeFiles/memdb_engine.dir/snapshot.cc.o.d"
  "libmemdb_engine.a"
  "libmemdb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memdb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
