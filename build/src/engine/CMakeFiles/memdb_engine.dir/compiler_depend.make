# Empty compiler generated dependencies file for memdb_engine.
# This may be replaced when dependencies are built.
