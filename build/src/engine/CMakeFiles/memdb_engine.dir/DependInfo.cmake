
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/commands_bitmap.cc" "src/engine/CMakeFiles/memdb_engine.dir/commands_bitmap.cc.o" "gcc" "src/engine/CMakeFiles/memdb_engine.dir/commands_bitmap.cc.o.d"
  "/root/repo/src/engine/commands_extended.cc" "src/engine/CMakeFiles/memdb_engine.dir/commands_extended.cc.o" "gcc" "src/engine/CMakeFiles/memdb_engine.dir/commands_extended.cc.o.d"
  "/root/repo/src/engine/commands_hash.cc" "src/engine/CMakeFiles/memdb_engine.dir/commands_hash.cc.o" "gcc" "src/engine/CMakeFiles/memdb_engine.dir/commands_hash.cc.o.d"
  "/root/repo/src/engine/commands_hll.cc" "src/engine/CMakeFiles/memdb_engine.dir/commands_hll.cc.o" "gcc" "src/engine/CMakeFiles/memdb_engine.dir/commands_hll.cc.o.d"
  "/root/repo/src/engine/commands_key.cc" "src/engine/CMakeFiles/memdb_engine.dir/commands_key.cc.o" "gcc" "src/engine/CMakeFiles/memdb_engine.dir/commands_key.cc.o.d"
  "/root/repo/src/engine/commands_list.cc" "src/engine/CMakeFiles/memdb_engine.dir/commands_list.cc.o" "gcc" "src/engine/CMakeFiles/memdb_engine.dir/commands_list.cc.o.d"
  "/root/repo/src/engine/commands_server.cc" "src/engine/CMakeFiles/memdb_engine.dir/commands_server.cc.o" "gcc" "src/engine/CMakeFiles/memdb_engine.dir/commands_server.cc.o.d"
  "/root/repo/src/engine/commands_set.cc" "src/engine/CMakeFiles/memdb_engine.dir/commands_set.cc.o" "gcc" "src/engine/CMakeFiles/memdb_engine.dir/commands_set.cc.o.d"
  "/root/repo/src/engine/commands_string.cc" "src/engine/CMakeFiles/memdb_engine.dir/commands_string.cc.o" "gcc" "src/engine/CMakeFiles/memdb_engine.dir/commands_string.cc.o.d"
  "/root/repo/src/engine/commands_zset.cc" "src/engine/CMakeFiles/memdb_engine.dir/commands_zset.cc.o" "gcc" "src/engine/CMakeFiles/memdb_engine.dir/commands_zset.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/engine/CMakeFiles/memdb_engine.dir/engine.cc.o" "gcc" "src/engine/CMakeFiles/memdb_engine.dir/engine.cc.o.d"
  "/root/repo/src/engine/keyspace.cc" "src/engine/CMakeFiles/memdb_engine.dir/keyspace.cc.o" "gcc" "src/engine/CMakeFiles/memdb_engine.dir/keyspace.cc.o.d"
  "/root/repo/src/engine/snapshot.cc" "src/engine/CMakeFiles/memdb_engine.dir/snapshot.cc.o" "gcc" "src/engine/CMakeFiles/memdb_engine.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ds/CMakeFiles/memdb_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/resp/CMakeFiles/memdb_resp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
