file(REMOVE_RECURSE
  "CMakeFiles/memdb_memorydb.dir/node.cc.o"
  "CMakeFiles/memdb_memorydb.dir/node.cc.o.d"
  "CMakeFiles/memdb_memorydb.dir/node_slots.cc.o"
  "CMakeFiles/memdb_memorydb.dir/node_slots.cc.o.d"
  "CMakeFiles/memdb_memorydb.dir/offbox.cc.o"
  "CMakeFiles/memdb_memorydb.dir/offbox.cc.o.d"
  "CMakeFiles/memdb_memorydb.dir/shard.cc.o"
  "CMakeFiles/memdb_memorydb.dir/shard.cc.o.d"
  "libmemdb_memorydb.a"
  "libmemdb_memorydb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memdb_memorydb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
