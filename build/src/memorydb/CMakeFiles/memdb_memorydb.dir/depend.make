# Empty dependencies file for memdb_memorydb.
# This may be replaced when dependencies are built.
