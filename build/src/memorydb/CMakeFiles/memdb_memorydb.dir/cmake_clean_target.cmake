file(REMOVE_RECURSE
  "libmemdb_memorydb.a"
)
