
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memorydb/node.cc" "src/memorydb/CMakeFiles/memdb_memorydb.dir/node.cc.o" "gcc" "src/memorydb/CMakeFiles/memdb_memorydb.dir/node.cc.o.d"
  "/root/repo/src/memorydb/node_slots.cc" "src/memorydb/CMakeFiles/memdb_memorydb.dir/node_slots.cc.o" "gcc" "src/memorydb/CMakeFiles/memdb_memorydb.dir/node_slots.cc.o.d"
  "/root/repo/src/memorydb/offbox.cc" "src/memorydb/CMakeFiles/memdb_memorydb.dir/offbox.cc.o" "gcc" "src/memorydb/CMakeFiles/memdb_memorydb.dir/offbox.cc.o.d"
  "/root/repo/src/memorydb/shard.cc" "src/memorydb/CMakeFiles/memdb_memorydb.dir/shard.cc.o" "gcc" "src/memorydb/CMakeFiles/memdb_memorydb.dir/shard.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/memdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/memdb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/txlog/CMakeFiles/memdb_txlog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/memdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/memdb_client.dir/DependInfo.cmake"
  "/root/repo/build/src/ds/CMakeFiles/memdb_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/resp/CMakeFiles/memdb_resp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
