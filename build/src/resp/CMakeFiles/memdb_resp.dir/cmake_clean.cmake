file(REMOVE_RECURSE
  "CMakeFiles/memdb_resp.dir/resp.cc.o"
  "CMakeFiles/memdb_resp.dir/resp.cc.o.d"
  "libmemdb_resp.a"
  "libmemdb_resp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memdb_resp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
