file(REMOVE_RECURSE
  "libmemdb_resp.a"
)
