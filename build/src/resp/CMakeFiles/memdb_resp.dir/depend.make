# Empty dependencies file for memdb_resp.
# This may be replaced when dependencies are built.
