file(REMOVE_RECURSE
  "libmemdb_storage.a"
)
