file(REMOVE_RECURSE
  "CMakeFiles/memdb_storage.dir/object_store.cc.o"
  "CMakeFiles/memdb_storage.dir/object_store.cc.o.d"
  "libmemdb_storage.a"
  "libmemdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
