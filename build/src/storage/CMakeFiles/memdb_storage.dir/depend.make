# Empty dependencies file for memdb_storage.
# This may be replaced when dependencies are built.
