file(REMOVE_RECURSE
  "libmemdb_bench_support.a"
)
