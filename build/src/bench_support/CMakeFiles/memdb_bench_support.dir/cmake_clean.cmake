file(REMOVE_RECURSE
  "CMakeFiles/memdb_bench_support.dir/driver.cc.o"
  "CMakeFiles/memdb_bench_support.dir/driver.cc.o.d"
  "CMakeFiles/memdb_bench_support.dir/fixtures.cc.o"
  "CMakeFiles/memdb_bench_support.dir/fixtures.cc.o.d"
  "CMakeFiles/memdb_bench_support.dir/instances.cc.o"
  "CMakeFiles/memdb_bench_support.dir/instances.cc.o.d"
  "libmemdb_bench_support.a"
  "libmemdb_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memdb_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
