# Empty dependencies file for memdb_bench_support.
# This may be replaced when dependencies are built.
