# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("resp")
subdirs("ds")
subdirs("engine")
subdirs("txlog")
subdirs("storage")
subdirs("cluster")
subdirs("memorydb")
subdirs("redisbaseline")
subdirs("client")
subdirs("check")
subdirs("bench_support")
