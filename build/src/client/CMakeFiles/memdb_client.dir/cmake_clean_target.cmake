file(REMOVE_RECURSE
  "libmemdb_client.a"
)
