file(REMOVE_RECURSE
  "CMakeFiles/memdb_client.dir/db_client.cc.o"
  "CMakeFiles/memdb_client.dir/db_client.cc.o.d"
  "libmemdb_client.a"
  "libmemdb_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memdb_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
