# Empty dependencies file for memdb_client.
# This may be replaced when dependencies are built.
