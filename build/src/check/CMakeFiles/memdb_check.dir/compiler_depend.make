# Empty compiler generated dependencies file for memdb_check.
# This may be replaced when dependencies are built.
