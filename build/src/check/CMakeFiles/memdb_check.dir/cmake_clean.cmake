file(REMOVE_RECURSE
  "CMakeFiles/memdb_check.dir/linearizability.cc.o"
  "CMakeFiles/memdb_check.dir/linearizability.cc.o.d"
  "CMakeFiles/memdb_check.dir/tester.cc.o"
  "CMakeFiles/memdb_check.dir/tester.cc.o.d"
  "libmemdb_check.a"
  "libmemdb_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memdb_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
