file(REMOVE_RECURSE
  "libmemdb_check.a"
)
