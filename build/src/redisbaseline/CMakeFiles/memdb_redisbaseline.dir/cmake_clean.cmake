file(REMOVE_RECURSE
  "CMakeFiles/memdb_redisbaseline.dir/baseline_node.cc.o"
  "CMakeFiles/memdb_redisbaseline.dir/baseline_node.cc.o.d"
  "libmemdb_redisbaseline.a"
  "libmemdb_redisbaseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memdb_redisbaseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
