file(REMOVE_RECURSE
  "libmemdb_redisbaseline.a"
)
