# Empty compiler generated dependencies file for memdb_redisbaseline.
# This may be replaced when dependencies are built.
