file(REMOVE_RECURSE
  "CMakeFiles/memdb_sim.dir/actor.cc.o"
  "CMakeFiles/memdb_sim.dir/actor.cc.o.d"
  "CMakeFiles/memdb_sim.dir/network.cc.o"
  "CMakeFiles/memdb_sim.dir/network.cc.o.d"
  "CMakeFiles/memdb_sim.dir/scheduler.cc.o"
  "CMakeFiles/memdb_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/memdb_sim.dir/simulation.cc.o"
  "CMakeFiles/memdb_sim.dir/simulation.cc.o.d"
  "libmemdb_sim.a"
  "libmemdb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memdb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
