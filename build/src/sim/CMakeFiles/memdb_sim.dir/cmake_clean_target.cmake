file(REMOVE_RECURSE
  "libmemdb_sim.a"
)
