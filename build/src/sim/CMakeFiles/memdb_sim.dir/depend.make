# Empty dependencies file for memdb_sim.
# This may be replaced when dependencies are built.
