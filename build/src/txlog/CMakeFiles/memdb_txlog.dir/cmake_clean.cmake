file(REMOVE_RECURSE
  "CMakeFiles/memdb_txlog.dir/client.cc.o"
  "CMakeFiles/memdb_txlog.dir/client.cc.o.d"
  "CMakeFiles/memdb_txlog.dir/group.cc.o"
  "CMakeFiles/memdb_txlog.dir/group.cc.o.d"
  "CMakeFiles/memdb_txlog.dir/raft.cc.o"
  "CMakeFiles/memdb_txlog.dir/raft.cc.o.d"
  "libmemdb_txlog.a"
  "libmemdb_txlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memdb_txlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
