
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txlog/client.cc" "src/txlog/CMakeFiles/memdb_txlog.dir/client.cc.o" "gcc" "src/txlog/CMakeFiles/memdb_txlog.dir/client.cc.o.d"
  "/root/repo/src/txlog/group.cc" "src/txlog/CMakeFiles/memdb_txlog.dir/group.cc.o" "gcc" "src/txlog/CMakeFiles/memdb_txlog.dir/group.cc.o.d"
  "/root/repo/src/txlog/raft.cc" "src/txlog/CMakeFiles/memdb_txlog.dir/raft.cc.o" "gcc" "src/txlog/CMakeFiles/memdb_txlog.dir/raft.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/memdb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
