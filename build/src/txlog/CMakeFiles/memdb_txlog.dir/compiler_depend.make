# Empty compiler generated dependencies file for memdb_txlog.
# This may be replaced when dependencies are built.
