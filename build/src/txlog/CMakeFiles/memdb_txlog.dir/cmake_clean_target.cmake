file(REMOVE_RECURSE
  "libmemdb_txlog.a"
)
