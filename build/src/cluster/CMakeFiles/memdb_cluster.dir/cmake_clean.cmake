file(REMOVE_RECURSE
  "CMakeFiles/memdb_cluster.dir/cluster.cc.o"
  "CMakeFiles/memdb_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/memdb_cluster.dir/migration.cc.o"
  "CMakeFiles/memdb_cluster.dir/migration.cc.o.d"
  "CMakeFiles/memdb_cluster.dir/monitoring.cc.o"
  "CMakeFiles/memdb_cluster.dir/monitoring.cc.o.d"
  "libmemdb_cluster.a"
  "libmemdb_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memdb_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
