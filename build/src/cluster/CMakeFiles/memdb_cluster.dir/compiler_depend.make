# Empty compiler generated dependencies file for memdb_cluster.
# This may be replaced when dependencies are built.
