file(REMOVE_RECURSE
  "libmemdb_cluster.a"
)
