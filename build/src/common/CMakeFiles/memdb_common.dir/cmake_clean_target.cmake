file(REMOVE_RECURSE
  "libmemdb_common.a"
)
