# Empty compiler generated dependencies file for memdb_common.
# This may be replaced when dependencies are built.
