file(REMOVE_RECURSE
  "CMakeFiles/memdb_common.dir/coding.cc.o"
  "CMakeFiles/memdb_common.dir/coding.cc.o.d"
  "CMakeFiles/memdb_common.dir/crc.cc.o"
  "CMakeFiles/memdb_common.dir/crc.cc.o.d"
  "CMakeFiles/memdb_common.dir/histogram.cc.o"
  "CMakeFiles/memdb_common.dir/histogram.cc.o.d"
  "CMakeFiles/memdb_common.dir/status.cc.o"
  "CMakeFiles/memdb_common.dir/status.cc.o.d"
  "libmemdb_common.a"
  "libmemdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
