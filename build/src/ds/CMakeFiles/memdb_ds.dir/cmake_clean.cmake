file(REMOVE_RECURSE
  "CMakeFiles/memdb_ds.dir/hash.cc.o"
  "CMakeFiles/memdb_ds.dir/hash.cc.o.d"
  "CMakeFiles/memdb_ds.dir/quicklist.cc.o"
  "CMakeFiles/memdb_ds.dir/quicklist.cc.o.d"
  "CMakeFiles/memdb_ds.dir/set.cc.o"
  "CMakeFiles/memdb_ds.dir/set.cc.o.d"
  "CMakeFiles/memdb_ds.dir/value.cc.o"
  "CMakeFiles/memdb_ds.dir/value.cc.o.d"
  "CMakeFiles/memdb_ds.dir/zset.cc.o"
  "CMakeFiles/memdb_ds.dir/zset.cc.o.d"
  "libmemdb_ds.a"
  "libmemdb_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memdb_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
