file(REMOVE_RECURSE
  "libmemdb_ds.a"
)
