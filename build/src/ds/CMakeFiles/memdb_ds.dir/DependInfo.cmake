
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ds/hash.cc" "src/ds/CMakeFiles/memdb_ds.dir/hash.cc.o" "gcc" "src/ds/CMakeFiles/memdb_ds.dir/hash.cc.o.d"
  "/root/repo/src/ds/quicklist.cc" "src/ds/CMakeFiles/memdb_ds.dir/quicklist.cc.o" "gcc" "src/ds/CMakeFiles/memdb_ds.dir/quicklist.cc.o.d"
  "/root/repo/src/ds/set.cc" "src/ds/CMakeFiles/memdb_ds.dir/set.cc.o" "gcc" "src/ds/CMakeFiles/memdb_ds.dir/set.cc.o.d"
  "/root/repo/src/ds/value.cc" "src/ds/CMakeFiles/memdb_ds.dir/value.cc.o" "gcc" "src/ds/CMakeFiles/memdb_ds.dir/value.cc.o.d"
  "/root/repo/src/ds/zset.cc" "src/ds/CMakeFiles/memdb_ds.dir/zset.cc.o" "gcc" "src/ds/CMakeFiles/memdb_ds.dir/zset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/memdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
