# Empty dependencies file for memdb_ds.
# This may be replaced when dependencies are built.
