file(REMOVE_RECURSE
  "CMakeFiles/ablate_tracker.dir/ablate_tracker.cc.o"
  "CMakeFiles/ablate_tracker.dir/ablate_tracker.cc.o.d"
  "ablate_tracker"
  "ablate_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
