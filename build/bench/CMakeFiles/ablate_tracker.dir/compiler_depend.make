# Empty compiler generated dependencies file for ablate_tracker.
# This may be replaced when dependencies are built.
