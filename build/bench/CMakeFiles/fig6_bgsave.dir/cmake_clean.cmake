file(REMOVE_RECURSE
  "CMakeFiles/fig6_bgsave.dir/fig6_bgsave.cc.o"
  "CMakeFiles/fig6_bgsave.dir/fig6_bgsave.cc.o.d"
  "fig6_bgsave"
  "fig6_bgsave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bgsave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
