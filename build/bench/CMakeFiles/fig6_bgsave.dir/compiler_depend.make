# Empty compiler generated dependencies file for fig6_bgsave.
# This may be replaced when dependencies are built.
