# Empty compiler generated dependencies file for fig7_offbox.
# This may be replaced when dependencies are built.
