file(REMOVE_RECURSE
  "CMakeFiles/fig7_offbox.dir/fig7_offbox.cc.o"
  "CMakeFiles/fig7_offbox.dir/fig7_offbox.cc.o.d"
  "fig7_offbox"
  "fig7_offbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_offbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
