file(REMOVE_RECURSE
  "CMakeFiles/ablate_slot_migration.dir/ablate_slot_migration.cc.o"
  "CMakeFiles/ablate_slot_migration.dir/ablate_slot_migration.cc.o.d"
  "ablate_slot_migration"
  "ablate_slot_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_slot_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
