# Empty dependencies file for ablate_slot_migration.
# This may be replaced when dependencies are built.
