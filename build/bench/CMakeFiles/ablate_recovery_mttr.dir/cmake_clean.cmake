file(REMOVE_RECURSE
  "CMakeFiles/ablate_recovery_mttr.dir/ablate_recovery_mttr.cc.o"
  "CMakeFiles/ablate_recovery_mttr.dir/ablate_recovery_mttr.cc.o.d"
  "ablate_recovery_mttr"
  "ablate_recovery_mttr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_recovery_mttr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
