# Empty dependencies file for ablate_recovery_mttr.
# This may be replaced when dependencies are built.
