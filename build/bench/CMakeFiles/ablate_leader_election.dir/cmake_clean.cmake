file(REMOVE_RECURSE
  "CMakeFiles/ablate_leader_election.dir/ablate_leader_election.cc.o"
  "CMakeFiles/ablate_leader_election.dir/ablate_leader_election.cc.o.d"
  "ablate_leader_election"
  "ablate_leader_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_leader_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
