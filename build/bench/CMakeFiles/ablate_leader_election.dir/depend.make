# Empty dependencies file for ablate_leader_election.
# This may be replaced when dependencies are built.
