file(REMOVE_RECURSE
  "CMakeFiles/ablate_failover_durability.dir/ablate_failover_durability.cc.o"
  "CMakeFiles/ablate_failover_durability.dir/ablate_failover_durability.cc.o.d"
  "ablate_failover_durability"
  "ablate_failover_durability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_failover_durability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
