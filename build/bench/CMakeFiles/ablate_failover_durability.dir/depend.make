# Empty dependencies file for ablate_failover_durability.
# This may be replaced when dependencies are built.
