// Corpus replay driver: links with any LLVMFuzzerTestOneInput harness and
// runs it over explicit files/directories. This is the no-clang path —
// GCC has no -fsanitize=fuzzer, so the checked-in seed corpus replays
// under ASan/UBSan/TSan as a plain ctest regression; with clang the same
// harness object links against libFuzzer instead for coverage-guided runs.
//
// Usage: <harness>_driver <corpus-dir-or-file>...
// Exit 0 if every input ran to completion; the harness aborts on any
// invariant violation, so a crash IS the failure signal.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

namespace fs = std::filesystem;

bool RunFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "driver: cannot read %s\n", path.c_str());
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 2;
  }
  size_t ran = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path p(argv[i]);
    std::vector<fs::path> inputs;
    if (fs::is_directory(p)) {
      for (const auto& e : fs::recursive_directory_iterator(p)) {
        if (e.is_regular_file()) inputs.push_back(e.path());
      }
    } else {
      inputs.push_back(p);
    }
    std::sort(inputs.begin(), inputs.end());
    for (const auto& f : inputs) {
      if (!RunFile(f)) return 2;
      ++ran;
    }
  }
  std::printf("driver: %zu input(s) replayed clean\n", ran);
  return ran == 0 ? 2 : 0;  // an empty corpus is a harness wiring bug
}
