// Seed-corpus generator: writes the checked-in seeds under fuzz/corpus/.
// Kept as a tool (rather than a one-off script) so the binary rpc frames —
// which need the real CRC64 — can be regenerated whenever the wire format
// changes: `memorydb-fuzz-seedgen <repo>/fuzz/corpus`.
//
// RESP seeds lead with the harness' chunk-selector byte ('0' = one-shot
// feed, '3' = 3-byte chunks); the bytes after it are the protocol stream.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "resp/resp.h"
#include "rpc/frame.h"

namespace {

namespace fs = std::filesystem;

void WriteSeed(const fs::path& dir, const std::string& name,
               const std::string& bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  std::printf("wrote %s (%zu bytes)\n", (dir / name).c_str(), bytes.size());
}

void RespSeeds(const fs::path& dir) {
  using memdb::resp::EncodeCommand;
  using memdb::resp::Value;

  WriteSeed(dir, "simple_ok", "0+OK\r\n");
  WriteSeed(dir, "error", "0-ERR unknown command\r\n");
  WriteSeed(dir, "integer", "0:12345\r\n");
  WriteSeed(dir, "bulk", "0$5\r\nhello\r\n");
  WriteSeed(dir, "null_bulk", "0$-1\r\n");
  WriteSeed(dir, "null_array", "0*-1\r\n");
  WriteSeed(dir, "set_command", "0" + EncodeCommand({"SET", "key", "value"}));
  WriteSeed(dir, "get_chunked", "3" + EncodeCommand({"GET", "key"}));
  WriteSeed(dir, "inline_command", "0PING\r\n");
  WriteSeed(dir, "inline_args", "2SET key value\r\n");
  WriteSeed(dir, "nested_array",
            "0" + Value::Array({Value::Array({Value::Bulk("a")}),
                                Value::Integer(-7), Value::Null()})
                      .Encode());
  WriteSeed(dir, "pipelined",
            "0" + EncodeCommand({"INCR", "n"}) + EncodeCommand({"INCR", "n"}));
  // Declared sizes beyond the harness limits: must reject, not allocate.
  WriteSeed(dir, "oversize_bulk", "0$999999999\r\n");
  WriteSeed(dir, "oversize_array", "0*999999999\r\n");
  WriteSeed(dir, "truncated_bulk", "0$5\r\nhel");
  WriteSeed(dir, "bad_type_byte", "0@oops\r\n");
  // Deep nesting: the decoder must cap recursion, not run the stack out.
  std::string deep = "0";
  for (int i = 0; i < 100; ++i) deep += "*1\r\n";
  deep += ":1\r\n";
  WriteSeed(dir, "deep_nesting", deep);
}

void RpcSeeds(const fs::path& dir) {
  using memdb::rpc::Code;
  using memdb::rpc::EncodeFrame;
  using memdb::rpc::Frame;
  using memdb::rpc::FrameType;

  Frame req;
  req.type = FrameType::kRequest;
  req.request_id = 7;
  req.trace_id = 0x1122334455667788ull;
  req.deadline_ms = 250;
  req.method = "txlog.Append";
  req.payload = std::string("\x01\x00payload-bytes", 15);
  std::string bytes;
  EncodeFrame(req, &bytes);
  WriteSeed(dir, "request_append", bytes);

  Frame resp;
  resp.type = FrameType::kResponse;
  resp.code = Code::kOk;
  resp.request_id = 7;
  resp.payload = "ack";
  bytes.clear();
  EncodeFrame(resp, &bytes);
  WriteSeed(dir, "response_ok", bytes);

  Frame err;
  err.type = FrameType::kResponse;
  err.code = Code::kOverloaded;
  err.request_id = 9;
  bytes.clear();
  EncodeFrame(err, &bytes);
  WriteSeed(dir, "response_overloaded", bytes);

  Frame empty;
  empty.method = "ping";
  bytes.clear();
  EncodeFrame(empty, &bytes);
  WriteSeed(dir, "request_empty_payload", bytes);

  // Corrupt variants: flip a payload byte (checksum must catch it) and
  // truncate mid-header (must report kNeedMore, never kOk).
  bytes.clear();
  EncodeFrame(req, &bytes);
  bytes[bytes.size() / 2] ^= 0x40;
  WriteSeed(dir, "corrupt_checksum", bytes);
  bytes.clear();
  EncodeFrame(req, &bytes);
  WriteSeed(dir, "truncated_header", bytes.substr(0, 11));
  // Two frames back to back: consumed must stop at the first boundary.
  bytes.clear();
  EncodeFrame(req, &bytes);
  EncodeFrame(resp, &bytes);
  WriteSeed(dir, "pipelined_frames", bytes);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);
  RespSeeds(root / "resp_decode");
  RpcSeeds(root / "rpc_frame");
  return 0;
}
