// libFuzzer harness for the RESP streaming decoder — the first parser that
// touches untrusted client bytes (src/net feeds socket reads straight into
// Decoder::DecodeCommand). The harness drives all three entry points
// (value decode, command decode, TryParse) through arbitrary chunk splits
// and checks the invariants a socket reader depends on:
//
//   - no crash / no sanitizer report on any byte sequence,
//   - a decode step never consumes bytes it did not report,
//   - kOk frames survive an encode -> decode round trip bit-exactly,
//   - the decoder makes progress: a bounded input terminates in a bounded
//     number of steps (no infinite kOk loop on an empty buffer).
//
// Build modes: linked against driver_main.cc it replays a corpus under any
// compiler/sanitizer (the ctest regression); with clang's
// -fsanitize=fuzzer it becomes a real coverage-guided fuzzer.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "resp/resp.h"

namespace {

using memdb::Slice;
using memdb::resp::DecodeLimits;
using memdb::resp::Decoder;
using memdb::resp::DecodeStatus;
using memdb::resp::Value;

// Small limits so declared-size rejection paths run on tiny inputs and a
// hostile declaration cannot make the harness itself allocate gigabytes.
DecodeLimits FuzzLimits() {
  DecodeLimits limits;
  limits.max_bulk_bytes = 1u << 16;
  limits.max_array_elems = 1u << 10;
  limits.max_inline_bytes = 1u << 10;
  return limits;
}

void Abort(const char* what) {
  __builtin_trap();
  (void)what;
}

// One complete value decoded from `data` must re-decode from its own
// encoding to an equal value (the encoder and decoder agree on the wire).
void CheckRoundTrip(const Value& v) {
  Decoder redecode;
  redecode.set_limits(FuzzLimits());
  redecode.Feed(Slice(v.Encode()));
  Value again;
  std::string err;
  if (redecode.Decode(&again, &err) != DecodeStatus::kOk) {
    Abort("re-decode of an encoded value failed");
  }
  if (!(again == v)) Abort("encode/decode round trip changed the value");
}

void DriveValues(const uint8_t* data, size_t size, size_t chunk) {
  Decoder dec;
  dec.set_limits(FuzzLimits());
  size_t fed = 0;
  // Progress bound: every kOk consumes >= 1 byte (the smallest frame is
  // ":0\r\n" — 4, but be generous), every kNeedMore waits for a feed, and
  // kError terminates. size + steps slack bounds the loop.
  size_t budget = 2 * size + 16;
  while (budget-- > 0) {
    Value v;
    std::string err;
    const size_t before = dec.buffered();
    const DecodeStatus st = dec.Decode(&v, &err);
    if (st == DecodeStatus::kOk) {
      if (dec.buffered() > before) Abort("kOk grew the buffer");
      CheckRoundTrip(v);
      continue;
    }
    if (st == DecodeStatus::kError) return;
    if (fed >= size) return;  // kNeedMore with nothing left to feed
    const size_t n = chunk == 0 ? size - fed
                                : (chunk < size - fed ? chunk : size - fed);
    dec.Feed(Slice(reinterpret_cast<const char*>(data) + fed, n));
    fed += n;
  }
  Abort("decoder failed to terminate within the step budget");
}

void DriveCommands(const uint8_t* data, size_t size, size_t chunk) {
  Decoder dec;
  dec.set_limits(FuzzLimits());
  size_t fed = 0;
  size_t budget = 2 * size + 16;
  while (budget-- > 0) {
    std::vector<std::string> argv;
    std::string err;
    const DecodeStatus st = dec.DecodeCommand(&argv, &err);
    if (st == DecodeStatus::kOk) {
      if (argv.empty()) Abort("kOk command with empty argv");
      continue;
    }
    if (st == DecodeStatus::kError) return;
    if (fed >= size) return;
    const size_t n = chunk == 0 ? size - fed
                                : (chunk < size - fed ? chunk : size - fed);
    dec.Feed(Slice(reinterpret_cast<const char*>(data) + fed, n));
    fed += n;
  }
  Abort("command decoder failed to terminate within the step budget");
}

void DriveTryParse(const uint8_t* data, size_t size) {
  Decoder dec;
  dec.set_limits(FuzzLimits());
  dec.Feed(Slice(reinterpret_cast<const char*>(data), size));
  size_t budget = 2 * size + 16;
  while (budget-- > 0) {
    Value v;
    const memdb::Status st = dec.TryParse(&v);
    if (!st.ok()) return;  // NotFound (starved) or Corruption both end it
    CheckRoundTrip(v);
  }
  Abort("TryParse failed to terminate within the step budget");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  // First byte picks the chunking so coverage-guided mutation can explore
  // resume-from-partial-frame paths; the rest is the protocol stream.
  const size_t chunk = data[0] % 8;  // 0 = one shot, else 1..7 byte chunks
  data++;
  size--;
  DriveValues(data, size, chunk);
  DriveCommands(data, size, chunk);
  DriveTryParse(data, size);
  return 0;
}
