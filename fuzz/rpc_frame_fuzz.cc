// libFuzzer harness for the internal RPC frame decoder — the parser that
// fronts every service-plane connection (server <-> txlogd, txlogd <->
// txlogd). DecodeFrame consumes length-prefixed binary frames with a CRC64
// trailer; a hostile or corrupt peer must never crash the process or make
// it over-consume. Invariants checked:
//
//   - no crash / no sanitizer report on any byte sequence,
//   - kOk implies consumed >= the fixed header and consumed <= size,
//   - a decoded frame re-encodes to bytes that decode to equal fields
//     (encoder and decoder agree, checksum recomputation included),
//   - truncating a kOk frame by one byte yields kNeedMore or kError,
//     never a phantom kOk (stream resynchronization safety).

#include <cstddef>
#include <cstdint>
#include <string>

#include "rpc/frame.h"

namespace {

using memdb::rpc::DecodeFrame;
using memdb::rpc::EncodeFrame;
using memdb::rpc::Frame;
using memdb::rpc::FrameDecode;

void Abort(const char* what) {
  __builtin_trap();
  (void)what;
}

bool SameFrame(const Frame& a, const Frame& b) {
  return a.type == b.type && a.code == b.code &&
         a.request_id == b.request_id && a.trace_id == b.trace_id &&
         a.deadline_ms == b.deadline_ms && a.method == b.method &&
         a.payload == b.payload;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const char* bytes = reinterpret_cast<const char*>(data);
  size_t consumed = 0;
  Frame frame;
  std::string error;
  const FrameDecode st = DecodeFrame(bytes, size, &consumed, &frame, &error);
  if (st != FrameDecode::kOk) return 0;

  if (consumed == 0 || consumed > size) Abort("kOk with bogus consumed");

  // Round trip: what we decoded must encode back into a decodable frame
  // with identical fields (the checksum is recomputed on encode).
  std::string reencoded;
  EncodeFrame(frame, &reencoded);
  size_t consumed2 = 0;
  Frame frame2;
  std::string error2;
  if (DecodeFrame(reencoded.data(), reencoded.size(), &consumed2, &frame2,
                  &error2) != FrameDecode::kOk) {
    Abort("re-decode of an encoded frame failed");
  }
  if (consumed2 != reencoded.size()) Abort("re-decode left trailing bytes");
  if (!SameFrame(frame, frame2)) Abort("encode/decode changed the frame");

  // Truncation safety: one byte short of a complete frame must never
  // parse. (kError is acceptable: a truncated length prefix can look like
  // a malformed frame; claiming success is the only forbidden outcome.)
  size_t consumed3 = 0;
  Frame frame3;
  std::string error3;
  if (DecodeFrame(bytes, consumed - 1, &consumed3, &frame3, &error3) ==
      FrameDecode::kOk) {
    Abort("truncated frame decoded as complete");
  }
  return 0;
}
