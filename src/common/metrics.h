// MetricsRegistry: the per-process observability hub. Every node-like actor
// (MemoryDB node, Raft replica, monitoring service) owns one; composed
// components (the engine inside a node) can share their owner's registry so
// a single scrape covers the whole process.
//
// Three instrument kinds, all named and optionally labeled:
//   * Counter   — monotonically increasing uint64 (events, bytes),
//   * Gauge     — instantaneous int64 (queue depths, role, indices),
//   * Histogram — log-bucketed latency distribution (common/histogram.h).
//
// Instruments are created on first use and live as long as the registry;
// returned pointers are stable, so hot paths look them up once. Snapshots
// capture every scalar series for delta computation across a measurement
// window, and ExpositionText() renders the whole registry in Prometheus
// text format (histograms as <name>_count/_sum plus quantile gauges).

#ifndef MEMDB_COMMON_METRICS_H_
#define MEMDB_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/sync.h"

namespace memdb {

// Counter/Gauge updates are lock-free relaxed atomics: real-thread
// components (net loop, rpc client loop, txlogd raft loop) share one
// registry per process, and scrapes (INFO/METRICS) run concurrently with
// the hot paths. The series maps themselves are mutex-guarded, so late
// instrument creation (GetCounter & co.) no longer races a concurrent
// scrape; handed-out instrument pointers stay lock-free and stable.

class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class MetricsRegistry {
 public:
  // Label sets are small (0-2 pairs); order is normalized internally so
  // {a=1,b=2} and {b=2,a=1} name the same series.
  using Labels = std::vector<std::pair<std::string, std::string>>;

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  // Lookup without creation; nullptr if the series does not exist yet.
  const Counter* FindCounter(const std::string& name,
                             const Labels& labels = {}) const;
  const Gauge* FindGauge(const std::string& name,
                         const Labels& labels = {}) const;
  const Histogram* FindHistogram(const std::string& name,
                                 const Labels& labels = {}) const;

  // All series registered under `name`, with their labels (exposition order).
  std::vector<std::pair<Labels, const Counter*>> CounterSeries(
      const std::string& name) const;
  std::vector<std::pair<Labels, const Histogram*>> HistogramSeries(
      const std::string& name) const;

  // Point-in-time capture of every scalar series. Histograms contribute
  // their count and sum (as "<name>_count" / "<name>_sum" keys), so deltas
  // across a window are meaningful for all three instrument kinds.
  struct Snapshot {
    std::map<std::string, int64_t> values;  // fully-qualified series -> value
  };
  Snapshot TakeSnapshot() const;
  // later - earlier, per series (missing-in-earlier counts as 0).
  static Snapshot Delta(const Snapshot& later, const Snapshot& earlier);

  // Zeroes every instrument in place (process-restart semantics). Instrument
  // pointers handed out earlier remain valid.
  void ResetAll();

  // Optional help text for a metric family, rendered as its `# HELP` line.
  // Families without registered help get a generic line (Prometheus
  // requires HELP/TYPE to precede the samples of a family).
  void SetHelp(const std::string& name, const std::string& help);

  // Prometheus text exposition of the full registry: per family a `# HELP`
  // and `# TYPE` line followed by its samples, label values escaped per the
  // text-format rules (backslash, double-quote, newline).
  std::string ExpositionText() const;

  // Escapes a label value for the Prometheus text format.
  static std::string EscapeLabelValue(const std::string& value);

  // Parses one series value back out of exposition text; used by scrapers
  // (cluster monitoring) and tests. `series` is the fully-qualified name,
  // e.g. `node_role` or `cmd_latency_us_count{cmd="SET"}`. Returns false if
  // the series is absent.
  static bool ParseSeries(const std::string& exposition,
                          const std::string& series, double* out);

  // Fully-qualified series name: name{k="v",...} (or bare name).
  static std::string SeriesName(const std::string& name, const Labels& labels);

 private:
  static Labels Normalized(Labels labels);

  // Keyed by (metric name, normalized labels) so series of one family are
  // contiguous for exposition. Guarded: creation and scrape can run on
  // different threads (e.g. a late-created series vs an INFO/METRICS
  // handler on another loop).
  using Key = std::pair<std::string, Labels>;
  mutable Mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mu_);
  std::map<std::string, std::string> help_ GUARDED_BY(mu_);
};

}  // namespace memdb

#endif  // MEMDB_COMMON_METRICS_H_
