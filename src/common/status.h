// Status and Result<T>: the error-handling model used across the library.
// Library code does not throw exceptions; fallible operations return Status
// (or Result<T> when they also produce a value).

#ifndef MEMDB_COMMON_STATUS_H_
#define MEMDB_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace memdb {

enum class StatusCode {
  kOk = 0,
  kNotFound,          // key / object / entry absent
  kInvalidArgument,   // caller error: bad arguments, wrong types
  kWrongType,         // Redis WRONGTYPE: key holds another data structure
  kConditionFailed,   // conditional append precondition violated (fencing)
  kUnavailable,       // transient: leader lost lease, quorum unreachable
  kTimedOut,          // operation deadline exceeded
  kCorruption,        // checksum mismatch, malformed snapshot / log record
  kOutOfMemory,       // engine maxmemory exceeded
  kMoved,             // cluster redirect: slot owned by another shard
  kAsk,               // cluster redirect: slot mid-migration
  kInternal,          // invariant violation inside the library
};

// Value-semantic status word. Cheap to copy in the OK case.
// [[nodiscard]]: dropping a Status silently swallows an error; either
// handle it, propagate it, or cast to (void) with a
// `lint:allow-discard -- <reason>` comment (enforced by
// tools/memdb_analyzer.py).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string m = "not found") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status WrongType() {
    return Status(StatusCode::kWrongType,
                  "WRONGTYPE Operation against a key holding the wrong kind "
                  "of value");
  }
  static Status ConditionFailed(std::string m = "precondition failed") {
    return Status(StatusCode::kConditionFailed, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status TimedOut(std::string m = "timed out") {
    return Status(StatusCode::kTimedOut, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status OutOfMemory(std::string m = "OOM command not allowed") {
    return Status(StatusCode::kOutOfMemory, std::move(m));
  }
  static Status Moved(std::string m) {
    return Status(StatusCode::kMoved, std::move(m));
  }
  static Status Ask(std::string m) {
    return Status(StatusCode::kAsk, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsWrongType() const { return code_ == StatusCode::kWrongType; }
  bool IsConditionFailed() const {
    return code_ == StatusCode::kConditionFailed;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsMoved() const { return code_ == StatusCode::kMoved; }
  bool IsAsk() const { return code_ == StatusCode::kAsk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>" for logs and test output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T>: either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(value_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

// Propagates a non-OK status to the caller.
#define MEMDB_RETURN_IF_ERROR(expr)         \
  do {                                      \
    ::memdb::Status _st = (expr);           \
    if (!_st.ok()) return _st;              \
  } while (0)

// Evaluates a Result<T> expression, assigning the value or returning the
// error. Usage: MEMDB_ASSIGN_OR_RETURN(auto v, SomeResultCall());
#define MEMDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()
#define MEMDB_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define MEMDB_ASSIGN_OR_RETURN_NAME(a, b) MEMDB_ASSIGN_OR_RETURN_CAT(a, b)
#define MEMDB_ASSIGN_OR_RETURN(lhs, expr)                                  \
  MEMDB_ASSIGN_OR_RETURN_IMPL(                                             \
      MEMDB_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

}  // namespace memdb

#endif  // MEMDB_COMMON_STATUS_H_
