#include "common/coding.h"

#include <cstring>

namespace memdb {

void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  dst->append(buf, 2);
}

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  dst->append(buf, 8);
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutLengthPrefixed(std::string* dst, Slice value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(dst, bits);
}

bool Decoder::GetFixed16(uint16_t* v) {
  if (Remaining() < 2) return false;
  const auto* p = reinterpret_cast<const uint8_t*>(data_ + pos_);
  *v = static_cast<uint16_t>(p[0] | (p[1] << 8));
  pos_ += 2;
  return true;
}

bool Decoder::GetFixed32(uint32_t* v) {
  if (Remaining() < 4) return false;
  const auto* p = reinterpret_cast<const uint8_t*>(data_ + pos_);
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(p[i]) << (8 * i);
  pos_ += 4;
  return true;
}

bool Decoder::GetFixed64(uint64_t* v) {
  if (Remaining() < 8) return false;
  const auto* p = reinterpret_cast<const uint8_t*>(data_ + pos_);
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(p[i]) << (8 * i);
  pos_ += 8;
  return true;
}

bool Decoder::GetVarint64(uint64_t* v) {
  uint64_t result = 0;
  size_t p = pos_;
  for (int shift = 0; shift <= 63 && p < size_; shift += 7) {
    uint8_t byte = static_cast<uint8_t>(data_[p++]);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      pos_ = p;
      *v = result;
      return true;
    }
  }
  return false;
}

bool Decoder::GetLengthPrefixed(std::string* v) {
  Slice s;
  if (!GetLengthPrefixed(&s)) return false;
  v->assign(s.data(), s.size());
  return true;
}

bool Decoder::GetLengthPrefixed(Slice* v) {
  size_t saved = pos_;
  uint64_t len;
  if (!GetVarint64(&len) || Remaining() < len) {
    pos_ = saved;
    return false;
  }
  *v = Slice(data_ + pos_, len);
  pos_ += len;
  return true;
}

bool Decoder::GetDouble(double* v) {
  uint64_t bits;
  if (!GetFixed64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

}  // namespace memdb
