// Binary encoding helpers for snapshot files, transaction-log payloads, and
// the replication stream chunker. Little-endian fixed-width integers plus
// LEB128-style varints and length-prefixed strings.

#ifndef MEMDB_COMMON_CODING_H_
#define MEMDB_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace memdb {

void PutFixed16(std::string* dst, uint16_t v);
void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
void PutVarint64(std::string* dst, uint64_t v);
// Length-prefixed (varint) byte string.
void PutLengthPrefixed(std::string* dst, Slice value);
// Doubles are stored via their IEEE-754 bit pattern.
void PutDouble(std::string* dst, double v);

// Decoder over an input slice; all Get* methods advance the cursor and
// return false (without advancing) on truncated input.
class Decoder {
 public:
  explicit Decoder(Slice input) : data_(input.data()), size_(input.size()) {}

  bool GetFixed16(uint16_t* v);
  bool GetFixed32(uint32_t* v);
  bool GetFixed64(uint64_t* v);
  bool GetVarint64(uint64_t* v);
  bool GetLengthPrefixed(std::string* v);
  bool GetLengthPrefixed(Slice* v);
  bool GetDouble(double* v);

  bool Empty() const { return pos_ >= size_; }
  size_t Remaining() const { return size_ - pos_; }
  size_t Position() const { return pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace memdb

#endif  // MEMDB_COMMON_CODING_H_
