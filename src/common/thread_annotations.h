// Clang thread-safety-analysis attribute macros (no-ops on other
// compilers). Annotating a field with GUARDED_BY(mu_) or a method with
// REQUIRES(mu_) turns the repo's prose locking conventions into
// compile-time checks: building with clang and
// -DMEMDB_THREAD_SAFETY_ANALYSIS=ON promotes every violation to an error
// (-Werror=thread-safety). See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// and DESIGN.md §8 for the conventions used across this codebase.
//
// Only memdb::Mutex / memdb::MutexLock / memdb::CondVar (common/sync.h)
// carry the capability attributes; raw std::mutex is banned outside
// common/sync.h (enforced by tools/lint.py), so every lock in the tree is
// visible to the analysis.

#ifndef MEMDB_COMMON_THREAD_ANNOTATIONS_H_
#define MEMDB_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define MEMDB_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define MEMDB_THREAD_ANNOTATION__(x)  // no-op on GCC / MSVC
#endif

// A type that models a lock ("capability" in clang's terminology).
#ifndef CAPABILITY
#define CAPABILITY(x) MEMDB_THREAD_ANNOTATION__(capability(x))
#endif

// An RAII type that acquires a capability in its constructor and releases
// it in its destructor (MutexLock).
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY MEMDB_THREAD_ANNOTATION__(scoped_lockable)
#endif

// Data members: may only be read/written while holding the given mutex.
#ifndef GUARDED_BY
#define GUARDED_BY(x) MEMDB_THREAD_ANNOTATION__(guarded_by(x))
#endif

// Pointer members: the pointed-to data (not the pointer) is guarded.
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) MEMDB_THREAD_ANNOTATION__(pt_guarded_by(x))
#endif

// Declared lock ordering: this mutex must be acquired before/after the
// named ones. Feeds clang's -Wthread-safety and memdb-analyzer's
// lock-order cycle check (tools/memdb_analyzer.py).
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
  MEMDB_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) \
  MEMDB_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#endif

// Functions: caller must hold the given mutex(es) on entry (and still
// holds them on exit). The annotation for `private helpers that assume the
// lock`.
#ifndef REQUIRES
#define REQUIRES(...) \
  MEMDB_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#endif

#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  MEMDB_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#endif

// Functions: acquire the mutex on entry, caller must not already hold it.
#ifndef ACQUIRE
#define ACQUIRE(...) \
  MEMDB_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#endif

// Functions: release the mutex held on entry.
#ifndef RELEASE
#define RELEASE(...) \
  MEMDB_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#endif

// Functions: acquire the mutex only when returning `ret` (TryLock).
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(ret, ...) \
  MEMDB_THREAD_ANNOTATION__(try_acquire_capability(ret, __VA_ARGS__))
#endif

// Functions: caller must NOT hold the given mutex (deadlock prevention for
// public entry points that lock internally).
#ifndef EXCLUDES
#define EXCLUDES(...) MEMDB_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#endif

// Runtime assertion that the capability is held (Mutex::AssertHeld);
// informs the analysis without acquiring.
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) \
  MEMDB_THREAD_ANNOTATION__(assert_capability(x))
#endif

// Functions returning a reference to a capability (accessors).
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) MEMDB_THREAD_ANNOTATION__(lock_returned(x))
#endif

// Escape hatch: the function is deliberately outside the analysis (e.g.
// constructors/destructors that are single-threaded by contract).
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  MEMDB_THREAD_ANNOTATION__(no_thread_safety_analysis)
#endif

#endif  // MEMDB_COMMON_THREAD_ANNOTATIONS_H_
