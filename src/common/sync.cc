#include "common/sync.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace memdb {

namespace sync_internal {

void Die(const char* what) {
  std::fprintf(stderr, "memdb sync check failed: %s\n", what);
  std::fflush(stderr);
  std::abort();
}

}  // namespace sync_internal

void CondVar::Wait(Mutex* mu) {
  // The caller holds mu (REQUIRES); adopt it, let the condvar release and
  // reacquire around the sleep, then hand ownership back without unlocking.
  mu->owner_.store(std::thread::id(), std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
  mu->owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
}

bool CondVar::WaitFor(Mutex* mu, uint64_t timeout_ms) {
  mu->owner_.store(std::thread::id(), std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  const std::cv_status st =
      cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms));
  lock.release();
  mu->owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  return st == std::cv_status::no_timeout;
}

}  // namespace memdb
