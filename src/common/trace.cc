#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace memdb {

namespace {

uint64_t NowWallUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint64_t NowMonoUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceLog::TraceLog(size_t capacity)
    : capacity_(capacity),
      slots_(capacity > 0 ? std::make_unique<Slot[]>(capacity) : nullptr) {
  // Read back to back so the pair anchors one instant on both clocks.
  anchor_wall_us_ = NowWallUs();
  anchor_mono_us_ = NowMonoUs();
}

void TraceLog::Record(uint64_t trace_id, std::string_view stage,
                      uint64_t at_us, uint64_t detail) {
  if (trace_id == 0) return;  // untraced work (unsampled / service-internal)
  if (capacity_ == 0) return;
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t round = ticket / capacity_;
  Slot& slot = slots_[ticket % capacity_];

  // Seqlock write protocol over all-atomic fields: mark the slot mid-write
  // (odd), publish the payload with relaxed stores, then publish the stable
  // version with release so a reader that observes it also observes the
  // payload. A reader that races the window sees an odd or mismatched
  // version and skips the slot.
  slot.version.store(2 * round + 1, std::memory_order_release);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.at_us.store(at_us, std::memory_order_relaxed);
  slot.detail.store(detail, std::memory_order_relaxed);
  uint64_t words[kStageWords] = {};
  const size_t n = std::min(stage.size(), kMaxStageLen);
  std::memcpy(words, stage.data(), n);
  for (size_t i = 0; i < kStageWords; ++i) {
    slot.stage[i].store(words[i], std::memory_order_relaxed);
  }
  slot.version.store(2 * round + 2, std::memory_order_release);
}

bool TraceLog::ReadSlot(uint64_t ticket, TraceSpan* out) const {
  const Slot& slot = slots_[ticket % capacity_];
  const uint64_t want = 2 * (ticket / capacity_) + 2;
  if (slot.version.load(std::memory_order_acquire) != want) return false;
  TraceSpan span;
  span.trace_id = slot.trace_id.load(std::memory_order_relaxed);
  span.at_us = slot.at_us.load(std::memory_order_relaxed);
  span.detail = slot.detail.load(std::memory_order_relaxed);
  uint64_t words[kStageWords];
  for (size_t i = 0; i < kStageWords; ++i) {
    words[i] = slot.stage[i].load(std::memory_order_relaxed);
  }
  // Order the payload loads before the version recheck: if the version is
  // still `want`, no writer touched the slot while we read it.
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.version.load(std::memory_order_relaxed) != want) return false;
  char bytes[kStageWords * 8];
  std::memcpy(bytes, words, sizeof(bytes));
  bytes[sizeof(bytes) - 1] = '\0';
  span.stage = bytes;
  *out = std::move(span);
  return true;
}

std::vector<TraceSpan> TraceLog::Snapshot() const {
  std::vector<TraceSpan> out;
  if (capacity_ == 0) return out;
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t n = std::min<uint64_t>(head, capacity_);
  out.reserve(n);
  for (uint64_t ticket = head - n; ticket < head; ++ticket) {
    TraceSpan span;
    if (ReadSlot(ticket, &span)) out.push_back(std::move(span));
  }
  return out;
}

size_t TraceLog::size() const {
  if (capacity_ == 0) return 0;
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t n = std::min<uint64_t>(head, capacity_);
  size_t stable = 0;
  for (uint64_t ticket = head - n; ticket < head; ++ticket) {
    const Slot& slot = slots_[ticket % capacity_];
    const uint64_t want = 2 * (ticket / capacity_) + 2;
    if (slot.version.load(std::memory_order_acquire) == want) ++stable;
  }
  return stable;
}

void TraceLog::Clear() {
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].version.store(0, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_release);
}

std::vector<TraceSpan> TraceLog::ForTrace(uint64_t trace_id) const {
  std::vector<TraceSpan> out;
  for (TraceSpan& span : Snapshot()) {
    if (span.trace_id == trace_id) out.push_back(std::move(span));
  }
  return out;
}

std::vector<TraceSpan> TraceLog::Reconstruct(
    uint64_t trace_id, std::initializer_list<const TraceLog*> logs) {
  std::vector<TraceSpan> out;
  for (const TraceLog* log : logs) {
    if (log == nullptr) continue;
    std::vector<TraceSpan> part = log->ForTrace(trace_id);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.at_us < b.at_us;
                   });
  return out;
}

}  // namespace memdb
