#include "common/trace.h"

#include <algorithm>

namespace memdb {

void TraceLog::Record(uint64_t trace_id, std::string stage, uint64_t at_us,
                      uint64_t detail) {
  if (trace_id == 0) return;  // untraced work (service-internal records)
  spans_.push_back(TraceSpan{trace_id, std::move(stage), at_us, detail});
  if (spans_.size() > capacity_) spans_.pop_front();
}

std::vector<TraceSpan> TraceLog::ForTrace(uint64_t trace_id) const {
  std::vector<TraceSpan> out;
  for (const TraceSpan& s : spans_) {
    if (s.trace_id == trace_id) out.push_back(s);
  }
  return out;
}

std::vector<TraceSpan> TraceLog::Reconstruct(
    uint64_t trace_id, std::initializer_list<const TraceLog*> logs) {
  std::vector<TraceSpan> out;
  for (const TraceLog* log : logs) {
    if (log == nullptr) continue;
    std::vector<TraceSpan> part = log->ForTrace(trace_id);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.at_us < b.at_us;
                   });
  return out;
}

}  // namespace memdb
