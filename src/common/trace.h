// Write-path tracing (§3.1/§3.2 observability). A trace follows one client
// command through the stages of the durable write path:
//
//   cmd.receive -> pipeline.enqueue -> append.issue -> log.append.receive
//     -> log.durable.local / log.follower.durable -> log.quorum.commit
//     -> append.ack -> cmd.release
//
// (reads that hit a tracker hazard record read.hazard_defer / read.release
// instead of the append stages.)
//
// Each actor on the path — the database node and every log replica — owns a
// TraceLog and records the stages it executes, stamped with the simulation
// clock. The trace id is allocated at command receipt and carried through
// the record pipeline and the log wire format (LogRecord::trace_id), so a
// test or operator can merge the span logs of all actors and reconstruct a
// single write's causal chain end to end.

#ifndef MEMDB_COMMON_TRACE_H_
#define MEMDB_COMMON_TRACE_H_

#include <cstdint>
#include <deque>
#include <initializer_list>
#include <string>
#include <vector>

namespace memdb {

struct TraceSpan {
  uint64_t trace_id = 0;
  std::string stage;
  uint64_t at_us = 0;    // simulation clock at recording time
  uint64_t detail = 0;   // stage-specific (log index, recording node id, ...)
};

class TraceLog {
 public:
  // Bounded ring: oldest spans are dropped once `capacity` is exceeded, so
  // long-running nodes pay a constant memory cost.
  explicit TraceLog(size_t capacity = 8192) : capacity_(capacity) {}

  void Record(uint64_t trace_id, std::string stage, uint64_t at_us,
              uint64_t detail = 0);

  const std::deque<TraceSpan>& spans() const { return spans_; }
  void Clear() { spans_.clear(); }

  // All spans of one trace, in recording order.
  std::vector<TraceSpan> ForTrace(uint64_t trace_id) const;

  // Merges the given logs' spans for one trace, sorted by timestamp (stable
  // across logs for equal stamps). This is the reconstruction entry point:
  // pass the node's log plus the log replicas' logs.
  static std::vector<TraceSpan> Reconstruct(
      uint64_t trace_id, std::initializer_list<const TraceLog*> logs);

 private:
  size_t capacity_;
  std::deque<TraceSpan> spans_;
};

}  // namespace memdb

#endif  // MEMDB_COMMON_TRACE_H_
