// Write-path tracing (§3.1/§3.2 observability). A trace follows one client
// command through the stages of the durable write path:
//
//   cmd.receive -> gate.submit -> gate.append.issue -> rpc.send
//     -> rpc.dispatch -> log.append.receive
//     -> log.durable.local / log.follower.durable -> log.quorum.commit
//     -> rpc.recv -> append.ack -> reply.release
//
// (the simulation actors keep their PR-1 stage names — pipeline.enqueue,
// append.issue, cmd.release — the reconstruction machinery is shared.)
//
// Every process on the path — memorydb-server, each memorydb-txlogd
// replica, memorydb-snapshotd — owns a TraceLog and records the stages it
// executes. The trace id is allocated at command receipt (subject to
// sampling; see TraceSampler) and carried through the record pipeline, the
// rpc frame header, and the log wire format (LogRecord::trace_id), so a
// test or operator can merge the span logs of all processes and
// reconstruct a single write's causal chain end to end.
//
// Clock model: spans are stamped with a monotonic microsecond clock (the
// steady clock in real processes, the simulation clock in the sim). Each
// TraceLog captures a wall/monotonic anchor pair at construction;
// WallFromMono() rebases a monotonic stamp onto the epoch wall clock so
// span files exported by different processes on one host merge onto a
// common axis (common/trace_export.h).
//
// Concurrency: Record() is wait-free and takes no lock — slots are arrays
// of atomics claimed by a ticket counter, with a version word (2*round
// while stable, odd while mid-write) that lets Snapshot() detect and skip
// torn slots. This makes Record() safe from loop threads (tools/lint.py
// enforces that this file stays lock-free) and Snapshot()/ForTrace() safe
// from any thread while the owner is still recording.

#ifndef MEMDB_COMMON_TRACE_H_
#define MEMDB_COMMON_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace memdb {

struct TraceSpan {
  uint64_t trace_id = 0;
  std::string stage;
  uint64_t at_us = 0;    // monotonic (steady / simulation) clock at recording
  uint64_t detail = 0;   // stage-specific (log index, recording node id, ...)
};

class TraceLog {
 public:
  // Stage names are packed into fixed atomic words; longer names are
  // truncated at recording time (every stage in the taxonomy fits).
  static constexpr size_t kMaxStageLen = 47;

  // Bounded ring: oldest spans are overwritten once `capacity` is exceeded,
  // so long-running processes pay a constant memory cost.
  explicit TraceLog(size_t capacity = 8192);
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  // Wait-free, lock-free; callable from any thread. trace_id 0 means
  // "unsampled / untraced" and is ignored, so downstream stages pay nothing
  // for writes the sampler skipped.
  void Record(uint64_t trace_id, std::string_view stage, uint64_t at_us,
              uint64_t detail = 0);

  // Stable spans currently in the ring, oldest first. Safe to call while
  // other threads Record(); slots mid-write during the scan are skipped.
  std::vector<TraceSpan> Snapshot() const;

  // Number of stable spans a Snapshot() would return right now.
  size_t size() const;

  // Resets the ring. NOT linearizable against concurrent Record(); callers
  // quiesce writers first (tests, TRACE RESET between runs).
  void Clear();

  // All spans of one trace, in recording order.
  std::vector<TraceSpan> ForTrace(uint64_t trace_id) const;

  // Merges the given logs' spans for one trace, sorted by timestamp (stable
  // across logs for equal stamps). This is the reconstruction entry point:
  // pass the node's log plus the log replicas' logs. Cross-process
  // reconstruction from exported span files lives in common/trace_export.h
  // and follows the same merge + stable-sort semantics.
  static std::vector<TraceSpan> Reconstruct(
      uint64_t trace_id, std::initializer_list<const TraceLog*> logs);

  // Wall-clock anchor captured at construction: anchor_wall_us() (epoch
  // microseconds, system clock) and anchor_mono_us() (steady clock) were
  // read back to back, so wall ≈ anchor_wall + (mono - anchor_mono).
  uint64_t anchor_wall_us() const { return anchor_wall_us_; }
  uint64_t anchor_mono_us() const { return anchor_mono_us_; }
  uint64_t WallFromMono(uint64_t mono_us) const {
    return anchor_wall_us_ + mono_us - anchor_mono_us_;
  }

 private:
  // 8 words = 64 bytes of payload per slot: version, trace id, stamp,
  // detail, plus kStageWords words of NUL-padded stage name.
  static constexpr size_t kStageWords = 6;  // 48 bytes incl. terminator

  struct Slot {
    // 2*round + 1 while the owner of ticket (round*capacity + index) is
    // writing, 2*round + 2 once that write is stable, 0 = never written.
    std::atomic<uint64_t> version{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> at_us{0};
    std::atomic<uint64_t> detail{0};
    std::atomic<uint64_t> stage[kStageWords] = {};
  };

  // Reads slot `ticket % capacity_`, expecting the stable version for
  // `ticket`. Returns false (and leaves *out untouched) if the slot is
  // mid-write or was lapped by a newer ticket.
  bool ReadSlot(uint64_t ticket, TraceSpan* out) const;

  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};  // next ticket to claim
  uint64_t anchor_wall_us_ = 0;
  uint64_t anchor_mono_us_ = 0;
};

// Decides at trace-id allocation time whether a write is traced. rate 0
// disables tracing entirely, rate 1 (the default) traces every write, rate
// N traces 1 in N. Not thread-safe: lives on the thread that allocates
// trace ids (the server loop).
class TraceSampler {
 public:
  explicit TraceSampler(uint64_t rate = 1) : rate_(rate) {}

  bool Sample() {
    if (rate_ == 0) return false;
    return (n_++ % rate_) == 0;
  }

  uint64_t rate() const { return rate_; }

 private:
  uint64_t rate_;
  uint64_t n_ = 0;
};

// Process-unique trace ids: the origin (writer id for servers) in the top
// 24 bits, a local counter below, so ids from different processes on the
// write path never collide. (The simulation keeps its own node_id << 32
// scheme; both only need nonzero + unique.)
inline uint64_t MakeTraceId(uint64_t origin, uint64_t counter) {
  return (origin << 40) | (counter & ((uint64_t{1} << 40) - 1));
}

}  // namespace memdb

#endif  // MEMDB_COMMON_TRACE_H_
