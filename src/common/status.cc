#include "common/status.h"

namespace memdb {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kWrongType:
      return "WrongType";
    case StatusCode::kConditionFailed:
      return "ConditionFailed";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kMoved:
      return "Moved";
    case StatusCode::kAsk:
      return "Ask";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace memdb
