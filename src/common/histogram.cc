#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace memdb {

Histogram::Histogram() : buckets_(64 * kSub, 0) {}

int Histogram::BucketFor(uint64_t v) {
  if (v < kSub) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kSubBits;
  const int sub = static_cast<int>((v >> shift) & (kSub - 1));
  return (msb - kSubBits + 1) * kSub + sub;
}

uint64_t Histogram::BucketValue(int index) {
  const int major = index / kSub;
  const int sub = index % kSub;
  if (major == 0) return static_cast<uint64_t>(sub);
  const int msb = major + kSubBits - 1;
  // Midpoint of the sub-bucket range.
  const uint64_t base = (1ULL << msb) | (static_cast<uint64_t>(sub) << (msb - kSubBits));
  const uint64_t width = 1ULL << (msb - kSubBits);
  return base + width / 2;
}

void Histogram::Record(uint64_t value_us) {
  ++count_;
  sum_ += value_us;
  min_ = std::min(min_, value_us);
  max_ = std::max(max_, value_us);
  ++buckets_[static_cast<size_t>(BucketFor(value_us))];
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  if (q >= 1.0) return max_;
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      uint64_t v = BucketValue(static_cast<int>(i));
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1fus p50=%lluus p99=%lluus p100=%lluus",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace memdb
