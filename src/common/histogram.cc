#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace memdb {

namespace {

// Relaxed is sufficient everywhere in this file: instruments carry no
// cross-thread happens-before obligations, only eventually-consistent totals.
void AtomicMin(std::atomic<uint64_t>* slot, uint64_t v) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (v < cur && !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* slot, uint64_t v) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (v > cur && !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram()
    : buckets_(std::make_unique<std::atomic<uint64_t>[]>(kBuckets)) {
  for (size_t i = 0; i < kBuckets; ++i) buckets_[i].store(0, std::memory_order_relaxed);
}

Histogram::Histogram(const Histogram& other) : Histogram() { Merge(other); }

Histogram& Histogram::operator=(const Histogram& other) {
  if (this != &other) {
    Reset();
    Merge(other);
  }
  return *this;
}

int Histogram::BucketFor(uint64_t v) {
  if (v < kSub) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kSubBits;
  const int sub = static_cast<int>((v >> shift) & (kSub - 1));
  return (msb - kSubBits + 1) * kSub + sub;
}

uint64_t Histogram::BucketValue(int index) {
  const int major = index / kSub;
  const int sub = index % kSub;
  if (major == 0) return static_cast<uint64_t>(sub);
  const int msb = major + kSubBits - 1;
  // Midpoint of the sub-bucket range.
  const uint64_t base =
      (1ULL << msb) | (static_cast<uint64_t>(sub) << (msb - kSubBits));
  const uint64_t width = 1ULL << (msb - kSubBits);
  return base + width / 2;
}

void Histogram::Record(uint64_t value_us) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value_us, std::memory_order_relaxed);
  AtomicMin(&min_, value_us);
  AtomicMax(&max_, value_us);
  buckets_[static_cast<size_t>(BucketFor(value_us))].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed), std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  AtomicMin(&min_, other.min_.load(std::memory_order_relaxed));
  AtomicMax(&max_, other.max_.load(std::memory_order_relaxed));
}

void Histogram::Reset() {
  for (size_t i = 0; i < kBuckets; ++i) buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ULL, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

double Histogram::Mean() const {
  const uint64_t c = count();
  return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
}

uint64_t Histogram::Percentile(double q) const {
  const uint64_t c = count();
  if (c == 0) return 0;
  const uint64_t mx = max();
  if (q >= 1.0) return mx;
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(c));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > target) {
      uint64_t v = BucketValue(static_cast<int>(i));
      return std::clamp(v, min(), mx);
    }
  }
  return mx;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1fus p50=%lluus p99=%lluus p100=%lluus",
                static_cast<unsigned long long>(count()), Mean(),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace memdb
