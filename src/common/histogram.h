// Log-bucketed latency histogram (HdrHistogram-style) used by the benchmark
// harness and by per-node metrics. Values are recorded in microseconds.

#ifndef MEMDB_COMMON_HISTOGRAM_H_
#define MEMDB_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace memdb {

class Histogram {
 public:
  Histogram();

  void Record(uint64_t value_us);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  // q in [0, 1]; Percentile(0.99) is p99. Returns a bucket-representative
  // value (≤ ~3.2% relative error by construction).
  uint64_t Percentile(double q) const;

  std::string Summary() const;  // "p50=... p99=... p100=... mean=..."

 private:
  // Buckets: 64 powers-of-two, each split into 32 linear sub-buckets.
  static constexpr int kSubBits = 5;
  static constexpr int kSub = 1 << kSubBits;
  static int BucketFor(uint64_t v);
  static uint64_t BucketValue(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
};

}  // namespace memdb

#endif  // MEMDB_COMMON_HISTOGRAM_H_
