// Log-bucketed latency histogram (HdrHistogram-style) used by the benchmark
// harness and by per-node metrics. Values are recorded in microseconds.
//
// Thread-safety: Record() is lock-free and safe to call concurrently with
// readers and other writers (relaxed atomics per bucket). Readers observe a
// possibly-torn but monotonically-consistent view — good enough for metrics
// scrapes, which is exactly how shared registries are used once real
// threads (net loop, rpc client loop) feed one registry. Merge/Reset are
// not atomic as a whole and are meant for single-writer phases.

#ifndef MEMDB_COMMON_HISTOGRAM_H_
#define MEMDB_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace memdb {

class Histogram {
 public:
  Histogram();
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void Record(uint64_t value_us);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const {
    const uint64_t m = min_.load(std::memory_order_relaxed);
    return count() == 0 ? 0 : m;
  }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;
  // q in [0, 1]; Percentile(0.99) is p99. Returns a bucket-representative
  // value (≤ ~3.2% relative error by construction).
  uint64_t Percentile(double q) const;

  std::string Summary() const;  // "p50=... p99=... p100=... mean=..."

 private:
  // Buckets: 64 powers-of-two, each split into 32 linear sub-buckets.
  static constexpr int kSubBits = 5;
  static constexpr int kSub = 1 << kSubBits;
  static constexpr size_t kBuckets = 64 * kSub;
  static int BucketFor(uint64_t v);
  static uint64_t BucketValue(int index);

  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ULL};
  std::atomic<uint64_t> max_{0};
};

}  // namespace memdb

#endif  // MEMDB_COMMON_HISTOGRAM_H_
