// Checksums used throughout the system:
//  - Crc16: the CCITT variant Redis uses to map keys to the 16384 hash slots.
//  - Crc64: the Jones polynomial variant Redis uses for RDB snapshot files;
//    we use it for snapshot payloads and the transaction-log running
//    checksum chain (§7.2.1 of the paper).

#ifndef MEMDB_COMMON_CRC_H_
#define MEMDB_COMMON_CRC_H_

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace memdb {

// CRC16-CCITT (XModem), as specified in the Redis Cluster spec.
uint16_t Crc16(const char* data, size_t size);
inline uint16_t Crc16(Slice s) { return Crc16(s.data(), s.size()); }

// CRC64 (Jones polynomial, reflected), as used by Redis RDB. `crc` is the
// running value (0 for a fresh computation).
uint64_t Crc64(uint64_t crc, const char* data, size_t size);
inline uint64_t Crc64(uint64_t crc, Slice s) {
  return Crc64(crc, s.data(), s.size());
}

// Hash slot for a key, honoring Redis hash tags: if the key contains a
// "{...}" section with a non-empty interior, only that interior is hashed.
// This is what lets multi-key operations target one slot.
uint16_t KeyHashSlot(Slice key);

inline constexpr int kNumSlots = 16384;

}  // namespace memdb

#endif  // MEMDB_COMMON_CRC_H_
