#include "common/metrics.h"

#include <algorithm>
#include <cstdio>

namespace memdb {

MetricsRegistry::Labels MetricsRegistry::Normalized(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string MetricsRegistry::EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string MetricsRegistry::SeriesName(const std::string& name,
                                        const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  out += "}";
  return out;
}

void MetricsRegistry::SetHelp(const std::string& name,
                              const std::string& help) {
  MutexLock lock(&mu_);
  help_[name] = help;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  MutexLock lock(&mu_);
  auto& slot = counters_[{name, Normalized(labels)}];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[{name, Normalized(labels)}];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[{name, Normalized(labels)}];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name,
                                            const Labels& labels) const {
  MutexLock lock(&mu_);
  auto it = counters_.find({name, Normalized(labels)});
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name,
                                        const Labels& labels) const {
  MutexLock lock(&mu_);
  auto it = gauges_.find({name, Normalized(labels)});
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name,
                                                const Labels& labels) const {
  MutexLock lock(&mu_);
  auto it = histograms_.find({name, Normalized(labels)});
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<std::pair<MetricsRegistry::Labels, const Counter*>>
MetricsRegistry::CounterSeries(const std::string& name) const {
  MutexLock lock(&mu_);
  std::vector<std::pair<Labels, const Counter*>> out;
  for (auto it = counters_.lower_bound({name, Labels{}});
       it != counters_.end() && it->first.first == name; ++it) {
    out.emplace_back(it->first.second, it->second.get());
  }
  return out;
}

std::vector<std::pair<MetricsRegistry::Labels, const Histogram*>>
MetricsRegistry::HistogramSeries(const std::string& name) const {
  MutexLock lock(&mu_);
  std::vector<std::pair<Labels, const Histogram*>> out;
  for (auto it = histograms_.lower_bound({name, Labels{}});
       it != histograms_.end() && it->first.first == name; ++it) {
    out.emplace_back(it->first.second, it->second.get());
  }
  return out;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  MutexLock lock(&mu_);
  Snapshot snap;
  for (const auto& [key, c] : counters_) {
    snap.values[SeriesName(key.first, key.second)] =
        static_cast<int64_t>(c->value());
  }
  for (const auto& [key, g] : gauges_) {
    snap.values[SeriesName(key.first, key.second)] = g->value();
  }
  for (const auto& [key, h] : histograms_) {
    snap.values[SeriesName(key.first + "_count", key.second)] =
        static_cast<int64_t>(h->count());
    snap.values[SeriesName(key.first + "_sum", key.second)] =
        static_cast<int64_t>(h->sum());
  }
  return snap;
}

MetricsRegistry::Snapshot MetricsRegistry::Delta(const Snapshot& later,
                                                 const Snapshot& earlier) {
  Snapshot out;
  for (const auto& [name, v] : later.values) {
    auto it = earlier.values.find(name);
    out.values[name] = v - (it == earlier.values.end() ? 0 : it->second);
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(&mu_);
  for (auto& [key, c] : counters_) c->Reset();
  for (auto& [key, g] : gauges_) g->Set(0);
  for (auto& [key, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::ExpositionText() const {
  MutexLock lock(&mu_);
  std::string out;
  std::string last_family;
  // Prometheus text format: each family's samples are preceded by its
  // `# HELP` and `# TYPE` lines exactly once.
  auto type_line = [&](const std::string& family, const char* type) {
    if (family != last_family) {
      auto help = help_.find(family);
      out += "# HELP " + family + " " +
             (help != help_.end() ? help->second
                                  : std::string("memorydb metric ") + family) +
             "\n";
      out += "# TYPE " + family + " " + type + "\n";
      last_family = family;
    }
  };
  for (const auto& [key, c] : counters_) {
    type_line(key.first, "counter");
    out += SeriesName(key.first, key.second) + " " +
           std::to_string(c->value()) + "\n";
  }
  last_family.clear();
  for (const auto& [key, g] : gauges_) {
    type_line(key.first, "gauge");
    out += SeriesName(key.first, key.second) + " " +
           std::to_string(g->value()) + "\n";
  }
  last_family.clear();
  for (const auto& [key, h] : histograms_) {
    type_line(key.first, "summary");
    for (const auto& [q, label] :
         {std::pair<double, const char*>{0.50, "0.5"},
          std::pair<double, const char*>{0.99, "0.99"},
          std::pair<double, const char*>{0.999, "0.999"}}) {
      Labels with_q = key.second;
      with_q.emplace_back("quantile", label);
      out += SeriesName(key.first, with_q) + " " +
             std::to_string(h->Percentile(q)) + "\n";
    }
    out += SeriesName(key.first + "_count", key.second) + " " +
           std::to_string(h->count()) + "\n";
    out += SeriesName(key.first + "_sum", key.second) + " " +
           std::to_string(h->sum()) + "\n";
  }
  return out;
}

bool MetricsRegistry::ParseSeries(const std::string& exposition,
                                  const std::string& series, double* out) {
  size_t pos = 0;
  while (pos < exposition.size()) {
    size_t eol = exposition.find('\n', pos);
    if (eol == std::string::npos) eol = exposition.size();
    // A sample line is "<series> <value>"; match the series prefix exactly.
    if (eol > pos + series.size() &&
        exposition.compare(pos, series.size(), series) == 0 &&
        exposition[pos + series.size()] == ' ') {
      *out = std::atof(exposition.c_str() + pos + series.size() + 1);
      return true;
    }
    pos = eol + 1;
  }
  return false;
}

}  // namespace memdb
