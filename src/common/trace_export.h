// Cross-process span exchange for the write-path tracing plane.
//
// Every traced binary exports its TraceLog as JSONL — one span per line,
// monotonic stamp rebased onto the epoch wall clock via the log's anchor
// pair — either to a file at shutdown (--trace-file) or over a scrape
// endpoint (RESP `TRACE DUMP`, rpc `svc.TraceDump`). tools/memorydb-trace
// parses the per-process files back, groups spans by trace id (the
// cross-process analogue of TraceLog::Reconstruct: merge, then stable-sort
// by wall stamp), and folds each write's causal chain into per-stage
// latency histograms plus a critical-path report.
//
// Line format (stable; bench + tools + e2e tests parse it):
//   {"proc":"server","trace":7696581394432,"stage":"cmd.receive",
//    "wall_us":1754556000123456,"mono_us":8123456,"detail":0}

#ifndef MEMDB_COMMON_TRACE_EXPORT_H_
#define MEMDB_COMMON_TRACE_EXPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/trace.h"

namespace memdb {

// One span as it crosses a process boundary: the recording process's label
// plus the span itself, with `wall_us` carrying the epoch-anchored stamp.
struct ExportedSpan {
  std::string proc;
  uint64_t trace_id = 0;
  std::string stage;
  uint64_t wall_us = 0;  // epoch microseconds (anchor-rebased)
  uint64_t mono_us = 0;  // original monotonic stamp, kept for debugging
  uint64_t detail = 0;
};

// Serializes the log's current Snapshot() as JSONL, wall-anchoring each
// span via log.WallFromMono(). Safe while the process is still recording.
std::string ExportSpansJsonl(const TraceLog& log, const std::string& proc);

// Parses ExportSpansJsonl output, appending to *out. Malformed lines are
// skipped. Returns the number of spans parsed.
size_t ParseSpansJsonl(const std::string& text, std::vector<ExportedSpan>* out);

// Groups spans by trace id; within each trace, spans are stable-sorted by
// wall stamp (ties keep input order — the Reconstruct semantics).
std::map<uint64_t, std::vector<ExportedSpan>> GroupSpansByTrace(
    std::vector<ExportedSpan> spans);

// The canonical durable-write chain, in causal order. Per-stage deltas are
// consecutive differences along this chain, so for a trace carrying every
// stage the deltas telescope: their sum equals the end-to-end latency.
const std::vector<std::string>& WritePathChain();

// Latency attribution along a stage chain.
struct StageDelta {
  std::string from;
  std::string to;
  Histogram latency_us;
};

struct WritePathReport {
  size_t traces = 0;           // traces with >= 2 chain stages
  size_t complete_chains = 0;  // traces carrying both chain endpoints
  Histogram end_to_end_us;     // last chain stage - first chain stage
  std::vector<StageDelta> deltas;  // in chain order; absent pairs omitted
};

// Folds grouped spans into per-stage histograms along `chain` (pass
// WritePathChain() for the durable write path). For each trace the first
// occurrence of each chain stage is kept; deltas are recorded between
// consecutive *present* stages, so a trace missing a middle stage still
// contributes a (bridging) delta and the telescoping-sum property holds.
WritePathReport BuildWritePathReport(
    const std::map<uint64_t, std::vector<ExportedSpan>>& by_trace,
    const std::vector<std::string>& chain);

}  // namespace memdb

#endif  // MEMDB_COMMON_TRACE_EXPORT_H_
