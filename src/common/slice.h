// Slice: a non-owning view of bytes, interconvertible with std::string and
// std::string_view. Kept minimal; most of the codebase uses std::string for
// owned data and Slice at read-only API boundaries.

#ifndef MEMDB_COMMON_SLICE_H_
#define MEMDB_COMMON_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace memdb {

class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT
  Slice(const char* s) : data_(s), size_(std::strlen(s)) {}          // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  int compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return 1;
    }
    return r;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }

}  // namespace memdb

#endif  // MEMDB_COMMON_SLICE_H_
