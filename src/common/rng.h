// Deterministic random number generation. Every stochastic decision in the
// simulator and the workload generators draws from an explicitly seeded Rng
// so that whole-cluster failure-injection runs replay bit-identically.

#ifndef MEMDB_COMMON_RNG_H_
#define MEMDB_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace memdb {

// xoshiro256** — fast, high-quality, and small enough to embed per-actor.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  // Random printable-ASCII string of the given length.
  std::string RandomString(size_t len) {
    static constexpr char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    std::string out(len, '\0');
    for (size_t i = 0; i < len; ++i) {
      out[i] = kAlphabet[Uniform(sizeof(kAlphabet) - 1)];
    }
    return out;
  }

  // Zipfian-ish skewed pick in [0, n): repeatedly halves the range with
  // probability `skew`. skew=0 yields uniform.
  uint64_t Skewed(uint64_t n, double skew) {
    uint64_t hi = n;
    while (hi > 1 && NextDouble() < skew) hi = (hi + 1) / 2;
    return Uniform(hi);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace memdb

#endif  // MEMDB_COMMON_RNG_H_
