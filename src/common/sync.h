// Annotated synchronization primitives — the only place in the tree allowed
// to touch <mutex>/<condition_variable> (enforced by tools/lint.py). Every
// other file uses memdb::Mutex/MutexLock/CondVar so that clang's
// thread-safety analysis (common/thread_annotations.h) sees every lock and
// -DMEMDB_THREAD_SAFETY_ANALYSIS=ON can reject unguarded access at compile
// time.
//
// Beyond the static annotations, two runtime checks encode the repo's two
// ownership disciplines:
//   * Mutex::AssertHeld()            — "this state is mutex-guarded":
//     aborts (on every build type) if the calling thread does not hold the
//     lock. Cheap: one relaxed atomic compare.
//   * ThreadAffinity::AssertHeldThread() — "this state is loop-thread-
//     affine" (owned by exactly one thread, no lock at all): aborts if
//     called from any thread other than the one that bound the affinity.
//     Unbound affinities pass, so single-threaded setup before the owning
//     thread spawns needs no special-casing.
//
// CondVar deliberately has no predicate-lambda Wait overload: clang's
// analysis treats a lambda body as a separate function, so a predicate
// reading GUARDED_BY state would produce false positives. Callers write
// the standard explicit loop instead:
//
//   MutexLock lock(&mu_);
//   while (!ready_) cv_.Wait(&mu_);

#ifndef MEMDB_COMMON_SYNC_H_
#define MEMDB_COMMON_SYNC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/thread_annotations.h"

namespace memdb {

namespace sync_internal {
// Prints `what` to stderr and aborts; out-of-line so the assert fast path
// stays small enough to inline.
[[noreturn]] void Die(const char* what);
}  // namespace sync_internal

class CondVar;

// A std::mutex wrapper carrying the CAPABILITY attribute plus a runtime
// owner check. Non-reentrant, non-shared; pairs with MutexLock (scoped) or
// explicit Lock/Unlock.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }

  void Unlock() RELEASE() {
    owner_.store(std::thread::id(), std::memory_order_relaxed);
    mu_.unlock();
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    return true;
  }

  // Aborts unless the calling thread holds this mutex. Use at the top of
  // helpers whose REQUIRES contract is reached through a std::function or
  // other boundary the static analysis cannot see through.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
    if (owner_.load(std::memory_order_relaxed) !=
        std::this_thread::get_id()) {
      sync_internal::Die("Mutex::AssertHeld failed: lock not held by this thread");
    }
  }

 private:
  friend class CondVar;
  std::mutex mu_;
  // Owner tracking for AssertHeld; relaxed is enough — a thread always
  // observes its own store, and any other value fails the assert either way.
  std::atomic<std::thread::id> owner_{};
};

// RAII lock for Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable bound to memdb::Mutex. Wait atomically releases the
// mutex and reacquires it before returning (standard semantics); the
// REQUIRES annotation makes the analysis check the caller holds the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu);

  // Returns false if `timeout_ms` elapsed without a notification (the
  // mutex is reacquired either way). Spurious wakeups return true; callers
  // loop on their predicate as usual.
  bool WaitFor(Mutex* mu, uint64_t timeout_ms) REQUIRES(mu);

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// Encodes "this state belongs to exactly one thread" (the event-loop
// discipline used by net::RespServer, rpc::LoopThread and everything built
// on them) as a runtime check instead of a comment. The owning thread calls
// BindToCurrentThread() once at startup; methods touching affine state call
// AssertHeldThread(). An unbound affinity passes every assert, so
// construction-time setup from the spawning thread is fine.
class ThreadAffinity {
 public:
  ThreadAffinity() = default;
  ThreadAffinity(const ThreadAffinity&) = delete;
  ThreadAffinity& operator=(const ThreadAffinity&) = delete;

  // Binds (or re-binds, e.g. across a Stop/Start cycle) to the caller.
  void BindToCurrentThread() {
    tid_.store(std::this_thread::get_id(), std::memory_order_release);
  }

  // Back to the unbound (assert-anything) state; call after joining the
  // owning thread if the state becomes free-threaded again.
  void Reset() { tid_.store(std::thread::id(), std::memory_order_release); }

  bool Bound() const {
    return tid_.load(std::memory_order_acquire) != std::thread::id();
  }

  bool BoundToCurrentThread() const {
    return tid_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  // Aborts if bound to a different thread than the caller.
  void AssertHeldThread() const {
    const std::thread::id t = tid_.load(std::memory_order_acquire);
    if (t != std::thread::id() && t != std::this_thread::get_id()) {
      sync_internal::Die(
          "ThreadAffinity::AssertHeldThread failed: called off the owning "
          "thread");
    }
  }

 private:
  std::atomic<std::thread::id> tid_{};
};

}  // namespace memdb

#endif  // MEMDB_COMMON_SYNC_H_
