#include "common/crc.h"

#include <array>

namespace memdb {

namespace {

// Table generation at static-init time would be dynamic initialization of a
// non-trivial global; instead build the tables lazily behind function-local
// statics of trivially-destructible array type references.
struct Crc16Table {
  uint16_t t[256];
  constexpr Crc16Table() : t{} {
    for (int i = 0; i < 256; ++i) {
      uint16_t crc = static_cast<uint16_t>(i << 8);
      for (int j = 0; j < 8; ++j) {
        crc = static_cast<uint16_t>((crc & 0x8000) ? (crc << 1) ^ 0x1021
                                                   : (crc << 1));
      }
      t[i] = crc;
    }
  }
};

struct Crc64Table {
  uint64_t t[256];
  constexpr Crc64Table() : t{} {
    // Jones polynomial 0xad93d23594c935a9, bit-reflected implementation.
    constexpr uint64_t kPoly = 0x95ac9329ac4bc9b5ULL;  // reflected form
    for (uint64_t i = 0; i < 256; ++i) {
      uint64_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : (crc >> 1);
      }
      t[i] = crc;
    }
  }
};

constexpr Crc16Table kCrc16Table;
constexpr Crc64Table kCrc64Table;

}  // namespace

uint16_t Crc16(const char* data, size_t size) {
  uint16_t crc = 0;
  for (size_t i = 0; i < size; ++i) {
    crc = static_cast<uint16_t>(
        (crc << 8) ^
        kCrc16Table.t[((crc >> 8) ^ static_cast<uint8_t>(data[i])) & 0xff]);
  }
  return crc;
}

uint64_t Crc64(uint64_t crc, const char* data, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    crc = kCrc64Table.t[(crc ^ static_cast<uint8_t>(data[i])) & 0xff] ^
          (crc >> 8);
  }
  return crc;
}

uint16_t KeyHashSlot(Slice key) {
  // Find "{...}" hash tag per the Redis Cluster specification.
  size_t open = key.size();
  for (size_t i = 0; i < key.size(); ++i) {
    if (key[i] == '{') {
      open = i;
      break;
    }
  }
  if (open < key.size()) {
    for (size_t j = open + 1; j < key.size(); ++j) {
      if (key[j] == '}') {
        if (j > open + 1) {
          return Crc16(key.data() + open + 1, j - open - 1) %
                 static_cast<uint16_t>(kNumSlots);
        }
        break;  // empty tag: hash the whole key
      }
    }
  }
  return Crc16(key.data(), key.size()) % static_cast<uint16_t>(kNumSlots);
}

}  // namespace memdb
