#include "common/trace_export.h"

#include <algorithm>
#include <cstdlib>

namespace memdb {

namespace {

// proc/stage are identifier-like; escape just enough that arbitrary values
// can't break the line format.
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string JsonUnescape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '\\' || i + 1 >= in.size()) {
      out.push_back(in[i]);
      continue;
    }
    ++i;
    switch (in[i]) {
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 't':
        out.push_back('\t');
        break;
      default:
        out.push_back(in[i]);
    }
  }
  return out;
}

// Finds `"key":` in `line` and returns the offset just past the colon, or
// std::string::npos.
size_t FindValue(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return std::string::npos;
  return at + needle.size();
}

bool ParseUintField(const std::string& line, const char* key, uint64_t* out) {
  const size_t at = FindValue(line, key);
  if (at == std::string::npos) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(line.c_str() + at, &end, 10);
  if (end == line.c_str() + at) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseStringField(const std::string& line, const char* key,
                      std::string* out) {
  size_t at = FindValue(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '"') {
    return false;
  }
  ++at;
  std::string raw;
  for (size_t i = at; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      raw.push_back(line[i]);
      raw.push_back(line[i + 1]);
      ++i;
      continue;
    }
    if (line[i] == '"') {
      *out = JsonUnescape(raw);
      return true;
    }
    raw.push_back(line[i]);
  }
  return false;
}

}  // namespace

std::string ExportSpansJsonl(const TraceLog& log, const std::string& proc) {
  std::string out;
  const std::string proc_escaped = JsonEscape(proc);
  for (const TraceSpan& span : log.Snapshot()) {
    out += "{\"proc\":\"";
    out += proc_escaped;
    out += "\",\"trace\":";
    out += std::to_string(span.trace_id);
    out += ",\"stage\":\"";
    out += JsonEscape(span.stage);
    out += "\",\"wall_us\":";
    out += std::to_string(log.WallFromMono(span.at_us));
    out += ",\"mono_us\":";
    out += std::to_string(span.at_us);
    out += ",\"detail\":";
    out += std::to_string(span.detail);
    out += "}\n";
  }
  return out;
}

size_t ParseSpansJsonl(const std::string& text,
                       std::vector<ExportedSpan>* out) {
  size_t parsed = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    ExportedSpan span;
    if (!ParseStringField(line, "proc", &span.proc)) continue;
    if (!ParseUintField(line, "trace", &span.trace_id)) continue;
    if (!ParseStringField(line, "stage", &span.stage)) continue;
    if (!ParseUintField(line, "wall_us", &span.wall_us)) continue;
    ParseUintField(line, "mono_us", &span.mono_us);  // optional
    ParseUintField(line, "detail", &span.detail);    // optional
    out->push_back(std::move(span));
    ++parsed;
  }
  return parsed;
}

std::map<uint64_t, std::vector<ExportedSpan>> GroupSpansByTrace(
    std::vector<ExportedSpan> spans) {
  std::map<uint64_t, std::vector<ExportedSpan>> by_trace;
  for (ExportedSpan& span : spans) {
    if (span.trace_id == 0) continue;
    by_trace[span.trace_id].push_back(std::move(span));
  }
  for (auto& [id, trace_spans] : by_trace) {
    std::stable_sort(trace_spans.begin(), trace_spans.end(),
                     [](const ExportedSpan& a, const ExportedSpan& b) {
                       return a.wall_us < b.wall_us;
                     });
  }
  return by_trace;
}

const std::vector<std::string>& WritePathChain() {
  static const std::vector<std::string> kChain = {
      "cmd.receive",        "gate.submit",    "gate.append.issue",
      "rpc.send",           "rpc.dispatch",   "log.append.receive",
      "log.durable.local",  "log.quorum.commit",
      "rpc.recv",           "append.ack",     "reply.release",
  };
  return kChain;
}

WritePathReport BuildWritePathReport(
    const std::map<uint64_t, std::vector<ExportedSpan>>& by_trace,
    const std::vector<std::string>& chain) {
  WritePathReport report;
  if (chain.empty()) return report;

  // delta histograms keyed by chain position of the destination stage.
  std::map<size_t, StageDelta> deltas;

  for (const auto& [id, spans] : by_trace) {
    // First occurrence of each chain stage, as (chain position, wall stamp).
    std::vector<std::pair<size_t, uint64_t>> hits;
    for (size_t ci = 0; ci < chain.size(); ++ci) {
      for (const ExportedSpan& span : spans) {
        if (span.stage == chain[ci]) {
          hits.emplace_back(ci, span.wall_us);
          break;
        }
      }
    }
    if (hits.size() < 2) continue;
    ++report.traces;
    // Deltas between consecutive present stages telescope to end-to-end.
    for (size_t i = 1; i < hits.size(); ++i) {
      const auto [from_ci, from_us] = hits[i - 1];
      const auto [to_ci, to_us] = hits[i];
      StageDelta& d = deltas[to_ci];
      if (d.latency_us.count() == 0) {
        d.from = chain[from_ci];
        d.to = chain[to_ci];
      }
      d.latency_us.Record(to_us >= from_us ? to_us - from_us : 0);
    }
    const bool complete =
        hits.front().first == 0 && hits.back().first == chain.size() - 1;
    if (complete) {
      ++report.complete_chains;
      report.end_to_end_us.Record(hits.back().second - hits.front().second);
    }
  }

  for (auto& [ci, delta] : deltas) {
    report.deltas.push_back(std::move(delta));
  }
  return report;
}

}  // namespace memdb
