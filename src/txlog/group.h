// LogGroup: provisions one shard's transaction log — three RaftReplica
// actors, one per AZ — and owns their persistent state so crash/restart
// cycles keep the "disk".

#ifndef MEMDB_TXLOG_GROUP_H_
#define MEMDB_TXLOG_GROUP_H_

#include <memory>
#include <vector>

#include "sim/simulation.h"
#include "txlog/raft.h"

namespace memdb::txlog {

class LogGroup {
 public:
  LogGroup(sim::Simulation* sim, RaftOptions options = RaftOptions());

  const std::vector<sim::NodeId>& replica_ids() const { return ids_; }
  RaftReplica* replica(size_t i) { return replicas_[i].get(); }
  size_t size() const { return replicas_.size(); }

  // The current leader replica, or nullptr mid-election.
  RaftReplica* Leader();
  // Highest commit index across live replicas (test convenience).
  uint64_t CommitIndex();

  // Crash/restart helpers (persistent state survives).
  void Crash(size_t i);
  void Restart(size_t i);

 private:
  sim::Simulation* sim_;
  std::vector<sim::NodeId> ids_;
  std::vector<std::shared_ptr<RaftPersistentState>> states_;
  std::vector<std::unique_ptr<RaftReplica>> replicas_;
};

}  // namespace memdb::txlog

#endif  // MEMDB_TXLOG_GROUP_H_
