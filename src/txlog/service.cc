#include "txlog/service.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/coding.h"
#include "common/crc.h"
#include "common/trace_export.h"

namespace memdb::txlog {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Splits "host:port"; returns false on malformed input.
bool SplitEndpoint(const std::string& ep, std::string* host,
                   uint16_t* port) {
  const size_t colon = ep.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= ep.size()) {
    return false;
  }
  unsigned long p = 0;
  for (size_t i = colon + 1; i < ep.size(); ++i) {
    if (ep[i] < '0' || ep[i] > '9') return false;
    p = p * 10 + static_cast<unsigned long>(ep[i] - '0');
    if (p > 65535) return false;
  }
  *host = ep.substr(0, colon);
  *port = static_cast<uint16_t>(p);
  return true;
}

}  // namespace

LogService::LogService(Options options)
    : options_(std::move(options)),
      server_(std::make_unique<rpc::Server>(&loop_, options_.listen_host,
                                            options_.listen_port)),
      raft_stats_(&metrics_, {rpcwire::kRaftVote, rpcwire::kRaftAppendEntries}),
      rng_(options_.seed != 0 ? options_.seed
                              : 0x7178 /* 'tx' */ + options_.node_id) {
  elections_started_ = metrics_.GetCounter("raft_elections_started_total");
  leader_elected_ = metrics_.GetCounter("raft_leader_elected_total");
  client_appends_ = metrics_.GetCounter("txlog_client_appends_total");
  dedup_hits_ = metrics_.GetCounter("txlog_dedup_hits_total");
  dedup_evictions_ = metrics_.GetCounter("txlog_dedup_evictions_total");
  trims_ = metrics_.GetCounter("txlog_trims_total");
  dedup_entries_gauge_ = metrics_.GetGauge("txlog_dedup_entries");
  base_index_gauge_ = metrics_.GetGauge("txlog_base_index");
  entries_replicated_ = metrics_.GetCounter("raft_entries_replicated_total");
  fsyncs_ = metrics_.GetCounter("txlog_fsyncs_total");
  term_gauge_ = metrics_.GetGauge("raft_term");
  commit_gauge_ = metrics_.GetGauge("raft_commit_index");
  role_gauge_ = metrics_.GetGauge("raft_role");
  read_waiters_gauge_ = metrics_.GetGauge("txlog_read_waiters");
  commit_latency_ = metrics_.GetHistogram("txlog_commit_latency_us");
  fsync_us_ = metrics_.GetHistogram("txlog_fsync_us");

  server_->set_metrics(&metrics_);
  server_->RegisterHandler(rpcwire::kRaftVote, [this](rpc::Server::Call&& c) {
    HandleRaftVote(std::move(c));
  });
  server_->RegisterHandler(
      rpcwire::kRaftAppendEntries,
      [this](rpc::Server::Call&& c) { HandleRaftAppendEntries(std::move(c)); });
  server_->RegisterHandler(rpcwire::kAppend, [this](rpc::Server::Call&& c) {
    HandleClientAppend(std::move(c));
  });
  server_->RegisterHandler(rpcwire::kRead, [this](rpc::Server::Call&& c) {
    HandleReadStream(std::move(c));
  });
  server_->RegisterHandler(rpcwire::kTail, [this](rpc::Server::Call&& c) {
    HandleTail(std::move(c));
  });
  server_->RegisterHandler(rpcwire::kTrim, [this](rpc::Server::Call&& c) {
    HandleTrim(std::move(c));
  });
  server_->RegisterHandler(
      rpcwire::kAcquireLease,
      [this](rpc::Server::Call&& c) { HandleLease(std::move(c), false); });
  server_->RegisterHandler(
      rpcwire::kRenewLease,
      [this](rpc::Server::Call&& c) { HandleLease(std::move(c), true); });
  server_->RegisterHandler(rpcwire::kMetrics, [this](rpc::Server::Call&& c) {
    HandleMetricsScrape(std::move(c));
  });
  server_->RegisterHandler(rpcwire::kTraceDump, [this](rpc::Server::Call&& c) {
    HandleTraceDump(std::move(c));
  });
  server_->set_trace_log(&trace_);
}

// lint:off-loop -- teardown runs on the embedding thread.
LogService::~LogService() { Stop(); }

// lint:off-loop -- startup runs on the embedding (txlogd main) thread;
// PostSync hands the disk-loaded raft state to the loop before serving.
Status LogService::Start() {
  if (started_) return Status::OK();
  Status s = loop_.Start();
  if (!s.ok()) return s;
  s = server_->Start();
  if (!s.ok()) {
    loop_.Stop();
    return s;
  }
  port_ = server_->port();
  Status load = Status::OK();
  loop_.PostSync([this, &load] { load = LoadDisk(); });
  if (!load.ok()) {
    server_->Stop();
    loop_.Stop();
    return load;
  }
  started_ = true;
  return Status::OK();
}

// lint:off-loop -- setup runs on the embedding thread before traffic.
void LogService::SetPeers(std::vector<std::pair<uint64_t, std::string>> peers) {
  loop_.PostSync([this, peers = std::move(peers)] {
    for (const auto& [id, endpoint] : peers) {
      if (id == options_.node_id) continue;
      std::string host;
      uint16_t port = 0;
      if (!SplitEndpoint(endpoint, &host, &port)) continue;
      peer_channels_[id] =
          std::make_unique<rpc::Channel>(&loop_, host, port, &raft_stats_);
      peer_ids_.push_back(id);
      next_index_[id] = last_index() + 1;
      match_index_[id] = 0;
      append_inflight_[id] = false;
    }
    ResetElectionTimer();
  });
}

// lint:off-loop -- teardown runs on the embedding thread (see Start).
void LogService::Stop() {
  if (!started_) return;
  started_ = false;
  loop_.PostSync([this] {
    if (election_timer_ != 0) loop_.CancelTimer(election_timer_);
    if (heartbeat_timer_ != 0) loop_.CancelTimer(heartbeat_timer_);
    election_timer_ = heartbeat_timer_ = 0;
    ++election_epoch_;  // invalidate in-flight vote/append callbacks
    FailPendingAppends();
    for (auto& [id, w] : read_waiters_) {
      if (w.timer_id != 0) loop_.CancelTimer(w.timer_id);
      ServeRead(w.req, w.call);
    }
    read_waiters_.clear();
    if (log_fd_ >= 0) {
      ::close(log_fd_);
      log_fd_ = -1;
    }
  });
  // Channels PostSync internally; shut them down while the loop is alive.
  for (auto& [id, ch] : peer_channels_) ch->Shutdown();
  server_->Stop();
  loop_.Stop();
  if (!options_.trace_file.empty()) {
    const std::string jsonl = ExportSpansJsonl(trace_, TraceProcLabel());
    if (std::FILE* f = std::fopen(options_.trace_file.c_str(), "w")) {
      std::fwrite(jsonl.data(), 1, jsonl.size(), f);
      std::fclose(f);
    }
  }
}

// --- log helpers -----------------------------------------------------------

const LogEntry* LogService::EntryAt(uint64_t index) const {
  if (index <= base_index_ || index > last_index()) return nullptr;
  return &log_[index - base_index_ - 1];
}

uint64_t LogService::TermAt(uint64_t index) const {
  if (index == base_index_) return base_term_;
  const LogEntry* e = EntryAt(index);
  return e != nullptr ? e->term : 0;
}

void LogService::DedupInsert(uint64_t writer, uint64_t request_id,
                             uint64_t index) {
  loop_.AssertOnLoopThread();
  const std::pair<uint64_t, uint64_t> key{writer, request_id};
  dedup_[key] = index;
  dedup_order_.emplace_back(key, index);
  if (options_.dedup_max_entries > 0) {
    while (dedup_.size() > options_.dedup_max_entries &&
           !dedup_order_.empty()) {
      const auto& [old_key, old_index] = dedup_order_.front();
      auto it = dedup_.find(old_key);
      // Only evict if this order slot still describes the live mapping —
      // a re-inserted key's older slot must not cut its fresh lifetime
      // short. Stale slots are simply dropped.
      if (it != dedup_.end() && it->second == old_index) {
        dedup_.erase(it);
        dedup_evictions_->Increment();
      }
      dedup_order_.pop_front();
    }
  }
  dedup_entries_gauge_->Set(static_cast<int64_t>(dedup_.size()));
}

void LogService::TruncatePrefixTo(uint64_t new_base) {
  loop_.AssertOnLoopThread();
  if (new_base <= base_index_) return;
  base_term_ = TermAt(new_base);
  while (base_index_ < new_base && !log_.empty()) {
    log_.pop_front();
    ++base_index_;
  }
  base_index_gauge_->Set(static_cast<int64_t>(base_index_));
  trims_->Increment();
  // The new base must survive a restart: LoadDisk needs it to anchor the
  // first on-disk entry's index.
  PersistMeta();
  RewriteLogFile();
}

void LogService::TruncateSuffixFrom(uint64_t index) {
  while (last_index() >= index && !log_.empty()) {
    const LogEntry& e = log_.back();
    if (e.record.writer != 0 || e.record.request_id != 0) {
      auto it = dedup_.find({e.record.writer, e.record.request_id});
      if (it != dedup_.end() && it->second == e.index) dedup_.erase(it);
    }
    auto ack = pending_acks_.find(e.index);
    if (ack != pending_acks_.end()) {
      for (AckCallback& cb : ack->second) cb(false, 0);
      pending_acks_.erase(ack);
    }
    append_received_at_us_.erase(e.index);
    log_.pop_back();
  }
  if (durable_index_ > last_index()) durable_index_ = last_index();
  dedup_entries_gauge_->Set(static_cast<int64_t>(dedup_.size()));
  RewriteLogFile();
}

// --- raft core -------------------------------------------------------------

void LogService::SetRole(Role role) {
  role_ = role;
  role_atomic_.store(static_cast<uint8_t>(role), std::memory_order_release);
  role_gauge_->Set(static_cast<int64_t>(role));
}

void LogService::ResetElectionTimer() {
  if (election_timer_ != 0) loop_.CancelTimer(election_timer_);
  const uint64_t delay =
      rng_.UniformRange(options_.election_min_ms, options_.election_max_ms);
  election_timer_ = loop_.After(delay, [this] {
    election_timer_ = 0;
    StartElection();
  });
}

void LogService::BecomeFollower(uint64_t term) {
  loop_.AssertOnLoopThread();
  if (term > current_term_) {
    current_term_ = term;
    voted_for_ = 0;
    PersistMeta();
    term_atomic_.store(current_term_, std::memory_order_release);
    term_gauge_->Set(static_cast<int64_t>(current_term_));
  }
  const bool was_leader = role_ == Role::kLeader;
  SetRole(Role::kFollower);
  ++election_epoch_;
  if (heartbeat_timer_ != 0) {
    loop_.CancelTimer(heartbeat_timer_);
    heartbeat_timer_ = 0;
  }
  if (was_leader) FailPendingAppends();
  // A deposed leader's uncommitted grants may be overwritten by the new
  // leader's log; the next leader re-arbitrates from committed state.
  pending_leases_.clear();
  barrier_index_ = 0;
  ResetElectionTimer();
}

void LogService::StartElection() {
  loop_.AssertOnLoopThread();
  if (role_ == Role::kLeader) return;
  SetRole(Role::kCandidate);
  ++current_term_;
  voted_for_ = options_.node_id;
  PersistMeta();
  term_atomic_.store(current_term_, std::memory_order_release);
  term_gauge_->Set(static_cast<int64_t>(current_term_));
  elections_started_->Increment();
  votes_received_ = 1;  // self
  const uint64_t epoch = ++election_epoch_;
  const int majority = static_cast<int>(peer_ids_.size() + 1) / 2 + 1;
  if (votes_received_ >= majority) {
    BecomeLeader();
    return;
  }
  ResetElectionTimer();

  wire::VoteRequest req;
  req.term = current_term_;
  req.candidate = static_cast<sim::NodeId>(options_.node_id);
  req.last_log_index = last_index();
  req.last_log_term = TermAt(last_index());
  const std::string body = req.Encode();
  for (uint64_t peer : peer_ids_) {
    peer_channels_[peer]->Call(
        rpcwire::kRaftVote, body, options_.raft_rpc_timeout_ms, 0,
        [this, epoch, majority](Status status, std::string payload) {
          if (!status.ok() || epoch != election_epoch_ ||
              role_ != Role::kCandidate) {
            return;
          }
          wire::VoteResponse resp;
          if (!wire::VoteResponse::Decode(Slice(payload), &resp)) return;
          if (resp.term > current_term_) {
            BecomeFollower(resp.term);
            return;
          }
          if (resp.granted && resp.term == current_term_ &&
              ++votes_received_ >= majority) {
            BecomeLeader();
          }
        });
  }
}

void LogService::BecomeLeader() {
  loop_.AssertOnLoopThread();
  SetRole(Role::kLeader);
  leader_elected_->Increment();
  leader_hint_ = options_.node_id;
  ++election_epoch_;
  if (election_timer_ != 0) {
    loop_.CancelTimer(election_timer_);
    election_timer_ = 0;
  }
  for (uint64_t peer : peer_ids_) {
    next_index_[peer] = last_index() + 1;
    match_index_[peer] = 0;
    append_inflight_[peer] = false;
  }
  // Leader-completeness barrier: a no-op in the new term. Client-visible
  // reads (Tail) and leases stay Unavailable until it commits, which proves
  // every entry from earlier terms that could have committed is committed.
  LogRecord barrier;
  barrier.type = RecordType::kNoop;
  AppendToLocalLog(std::move(barrier));
  barrier_index_ = last_index();
  AdvanceCommitIndex();
  BroadcastAppendEntries();
  HeartbeatTick();
}

void LogService::HeartbeatTick() {
  if (role_ != Role::kLeader) return;
  BroadcastAppendEntries();
  heartbeat_timer_ =
      loop_.After(options_.heartbeat_ms, [this] { HeartbeatTick(); });
}

void LogService::AppendToLocalLog(LogRecord record) {
  loop_.AssertOnLoopThread();
  LogEntry entry;
  entry.term = current_term_;
  entry.index = last_index() + 1;
  entry.record = std::move(record);
  const uint64_t trace_id = entry.record.trace_id;
  if (entry.record.writer != 0 || entry.record.request_id != 0) {
    DedupInsert(entry.record.writer, entry.record.request_id, entry.index);
  }
  log_.push_back(std::move(entry));
  PersistLogSuffix(last_index());
  durable_index_ = last_index();
  if (trace_id != 0) {
    trace_.Record(trace_id, "log.durable.local", NowUs(), durable_index_);
  }
}

void LogService::BroadcastAppendEntries() {
  for (uint64_t peer : peer_ids_) SendAppendEntries(peer);
}

void LogService::SendAppendEntries(uint64_t peer) {
  if (role_ != Role::kLeader || append_inflight_[peer]) return;
  uint64_t next = std::max(next_index_[peer], base_index_ + 1);
  next_index_[peer] = next;

  wire::AppendEntriesRequest req;
  req.term = current_term_;
  req.leader = static_cast<sim::NodeId>(options_.node_id);
  req.prev_index = next - 1;
  req.prev_term = TermAt(next - 1);
  req.commit_index = commit_index_;
  const uint64_t until =
      std::min(last_index(), next + options_.max_append_entries - 1);
  for (uint64_t i = next; i <= until; ++i) req.entries.push_back(*EntryAt(i));

  append_inflight_[peer] = true;
  const uint64_t term = current_term_;
  const size_t sent = req.entries.size();
  peer_channels_[peer]->Call(
      rpcwire::kRaftAppendEntries, req.Encode(), options_.raft_rpc_timeout_ms,
      0, [this, peer, term, sent](Status status, std::string payload) {
        append_inflight_[peer] = false;
        if (!status.ok() || role_ != Role::kLeader || current_term_ != term) {
          return;
        }
        wire::AppendEntriesResponse resp;
        if (!wire::AppendEntriesResponse::Decode(Slice(payload), &resp)) {
          return;
        }
        if (resp.term > current_term_) {
          BecomeFollower(resp.term);
          return;
        }
        if (resp.success) {
          if (sent > 0) entries_replicated_->Increment(sent);
          match_index_[peer] = std::max(match_index_[peer], resp.match_index);
          next_index_[peer] = match_index_[peer] + 1;
          AdvanceCommitIndex();
          if (next_index_[peer] <= last_index()) SendAppendEntries(peer);
        } else {
          // Follower's log diverges; back up (bounded below by its hint).
          next_index_[peer] =
              std::max(base_index_ + 1,
                       std::min(next_index_[peer] - 1, resp.match_index + 1));
          SendAppendEntries(peer);
        }
      });
}

void LogService::AdvanceCommitIndex() {
  loop_.AssertOnLoopThread();
  if (role_ != Role::kLeader) return;
  std::vector<uint64_t> durable;
  durable.push_back(durable_index_);
  for (uint64_t peer : peer_ids_) durable.push_back(match_index_[peer]);
  std::sort(durable.begin(), durable.end(), std::greater<uint64_t>());
  const size_t majority = (peer_ids_.size() + 1) / 2;  // 0-based quorum slot
  const uint64_t candidate = durable[majority];
  // Only entries of the current term commit by counting (Raft §5.4.2);
  // earlier-term entries commit transitively.
  if (candidate > commit_index_ && TermAt(candidate) == current_term_) {
    commit_index_ = candidate;
    commit_atomic_.store(commit_index_, std::memory_order_release);
    OnCommitAdvanced();
  }
}

void LogService::OnCommitAdvanced() {
  commit_gauge_->Set(static_cast<int64_t>(commit_index_));
  // Ack quorum-committed client appends (leader only; no-op elsewhere).
  while (!pending_acks_.empty() &&
         pending_acks_.begin()->first <= commit_index_) {
    const uint64_t index = pending_acks_.begin()->first;
    std::vector<AckCallback> cbs = std::move(pending_acks_.begin()->second);
    pending_acks_.erase(pending_acks_.begin());
    auto t0 = append_received_at_us_.find(index);
    if (t0 != append_received_at_us_.end()) {
      commit_latency_->Record(NowUs() - t0->second);
      append_received_at_us_.erase(t0);
    }
    if (const LogEntry* e = EntryAt(index);
        e != nullptr && e->record.trace_id != 0) {
      trace_.Record(e->record.trace_id, "log.quorum.commit", NowUs(), index);
    }
    for (AckCallback& cb : cbs) cb(true, index);
  }
  ApplyCommitted();
  WakeLongPolls();
}

void LogService::FailPendingAppends() {
  std::map<uint64_t, std::vector<AckCallback>> acks;
  acks.swap(pending_acks_);
  append_received_at_us_.clear();
  for (auto& [index, cbs] : acks) {
    for (AckCallback& cb : cbs) cb(false, 0);
  }
}

void LogService::ApplyCommitted() {
  loop_.AssertOnLoopThread();
  while (applied_index_ < commit_index_) {
    const LogEntry* e = EntryAt(applied_index_ + 1);
    if (e == nullptr) break;  // below base (trimmed) — nothing to apply
    if (e->record.type == RecordType::kLease) {
      rpcwire::LeaseGrant grant;
      if (rpcwire::LeaseGrant::Decode(Slice(e->record.payload), &grant)) {
        Lease& l = leases_[grant.shard_id];
        l.owner = grant.owner;
        l.expiry_ms = rpc::LoopThread::NowMs() + grant.duration_ms;
        // The committed table caught up to (at least) this grant; a newer
        // pending renewal re-registers itself when it applies.
        pending_leases_.erase(grant.shard_id);
      }
    }
    ++applied_index_;
  }
  if (applied_index_ < commit_index_) applied_index_ = commit_index_;
}

// --- raft message handlers -------------------------------------------------

void LogService::HandleRaftVote(rpc::Server::Call&& call) {
  loop_.AssertOnLoopThread();
  wire::VoteRequest req;
  if (!wire::VoteRequest::Decode(Slice(call.payload), &req)) {
    call.respond(rpc::Code::kBadRequest, std::string());
    return;
  }
  if (req.term > current_term_) BecomeFollower(req.term);
  wire::VoteResponse resp;
  resp.term = current_term_;
  const uint64_t cand = static_cast<uint64_t>(req.candidate);
  const uint64_t my_last_term = TermAt(last_index());
  const bool up_to_date =
      req.last_log_term > my_last_term ||
      (req.last_log_term == my_last_term && req.last_log_index >= last_index());
  if (req.term == current_term_ && (voted_for_ == 0 || voted_for_ == cand) &&
      up_to_date) {
    resp.granted = true;
    if (voted_for_ != cand) {
      voted_for_ = cand;
      PersistMeta();
    }
    ResetElectionTimer();
  }
  call.respond(rpc::Code::kOk, resp.Encode());
}

void LogService::HandleRaftAppendEntries(rpc::Server::Call&& call) {
  loop_.AssertOnLoopThread();
  wire::AppendEntriesRequest req;
  if (!wire::AppendEntriesRequest::Decode(Slice(call.payload), &req)) {
    call.respond(rpc::Code::kBadRequest, std::string());
    return;
  }
  wire::AppendEntriesResponse resp;
  if (req.term < current_term_) {
    resp.term = current_term_;
    resp.success = false;
    call.respond(rpc::Code::kOk, resp.Encode());
    return;
  }
  if (req.term > current_term_ || role_ != Role::kFollower) {
    BecomeFollower(req.term);
  } else {
    ResetElectionTimer();
  }
  leader_hint_ = static_cast<uint64_t>(req.leader);
  resp.term = current_term_;

  // Consistency check at prev_index.
  if (req.prev_index > last_index() ||
      (req.prev_index > base_index_ &&
       TermAt(req.prev_index) != req.prev_term)) {
    resp.success = false;
    resp.match_index = std::min(req.prev_index > 0 ? req.prev_index - 1 : 0,
                                durable_index_);
    call.respond(rpc::Code::kOk, resp.Encode());
    return;
  }

  uint64_t first_new = 0;
  for (LogEntry& entry : req.entries) {
    if (entry.index <= base_index_) continue;
    if (entry.index <= last_index()) {
      if (TermAt(entry.index) == entry.term) continue;  // already have it
      TruncateSuffixFrom(entry.index);                  // conflict: drop suffix
    }
    const uint64_t trace_id = entry.record.trace_id;
    if (entry.record.writer != 0 || entry.record.request_id != 0) {
      DedupInsert(entry.record.writer, entry.record.request_id, entry.index);
    }
    if (first_new == 0) first_new = entry.index;
    log_.push_back(std::move(entry));
    if (trace_id != 0) {
      trace_.Record(trace_id, "log.follower.durable", NowUs(), last_index());
    }
  }
  if (first_new != 0) {
    PersistLogSuffix(first_new);
    entries_replicated_->Increment(last_index() - first_new + 1);
  }
  durable_index_ = last_index();

  const uint64_t new_commit = std::min(req.commit_index, durable_index_);
  if (new_commit > commit_index_) {
    commit_index_ = new_commit;
    commit_atomic_.store(commit_index_, std::memory_order_release);
    OnCommitAdvanced();
  }
  resp.success = true;
  resp.match_index = durable_index_;
  call.respond(rpc::Code::kOk, resp.Encode());
}

// --- client-facing handlers ------------------------------------------------

void LogService::HandleClientAppend(rpc::Server::Call&& call) {
  loop_.AssertOnLoopThread();
  client_appends_->Increment();
  wire::ClientAppendRequest req;
  if (!wire::ClientAppendRequest::Decode(Slice(call.payload), &req)) {
    call.respond(rpc::Code::kBadRequest, std::string());
    return;
  }
  auto reply = [respond = call.respond](wire::ClientAppendResponse r) {
    respond(rpc::Code::kOk, r.Encode());
  };
  wire::ClientAppendResponse resp;
  if (role_ != Role::kLeader) {
    resp.result = wire::ClientResult::kNotLeader;
    resp.leader_hint = static_cast<sim::NodeId>(leader_hint_);
    reply(resp);
    return;
  }

  // Idempotent retry: if this (writer, request_id) already entered the log,
  // re-ack the original index instead of appending a duplicate. This is what
  // makes a retried append after a dropped ack safe (§3.1).
  const LogRecord& rec = req.record;
  if (rec.writer != 0 && rec.request_id != 0) {
    auto it = dedup_.find({rec.writer, rec.request_id});
    if (it != dedup_.end()) {
      dedup_hits_->Increment();
      const uint64_t index = it->second;
      if (index <= commit_index_) {
        resp.result = wire::ClientResult::kOk;
        resp.index = index;
        reply(resp);
      } else {
        pending_acks_[index].push_back(
            [this, reply](bool committed, uint64_t idx) {
              wire::ClientAppendResponse r;
              if (committed) {
                r.result = wire::ClientResult::kOk;
                r.index = idx;
              } else {
                r.result = wire::ClientResult::kNotLeader;
                r.leader_hint = static_cast<sim::NodeId>(leader_hint_);
              }
              reply(r);
            });
      }
      return;
    }
  }

  if (commit_index_ < barrier_index_) {
    resp.result = wire::ClientResult::kUnavailable;
    reply(resp);
    return;
  }
  if (req.prev_index != wire::kUnconditional &&
      req.prev_index != last_index()) {
    resp.result = wire::ClientResult::kConditionFailed;
    resp.index = last_index();
    reply(resp);
    return;
  }

  if (rec.trace_id != 0) {
    trace_.Record(rec.trace_id, "log.append.receive", NowUs(),
                  last_index() + 1);
  }
  AppendToLocalLog(req.record);
  const uint64_t index = last_index();
  append_received_at_us_[index] = NowUs();
  pending_acks_[index].push_back([this, reply](bool committed, uint64_t idx) {
    wire::ClientAppendResponse r;
    if (committed) {
      r.result = wire::ClientResult::kOk;
      r.index = idx;
    } else {
      r.result = wire::ClientResult::kNotLeader;
      r.leader_hint = static_cast<sim::NodeId>(leader_hint_);
    }
    reply(r);
  });
  AdvanceCommitIndex();  // single-replica groups commit immediately
  BroadcastAppendEntries();
}

void LogService::ServeRead(const rpcwire::ReadStreamRequest& req,
                           rpc::Server::Call& call) {
  wire::ClientReadResponse resp;
  resp.commit_index = commit_index_;
  resp.first_index = base_index_ + 1;
  const uint64_t max_count =
      std::min<uint64_t>(req.max_count, options_.max_read_batch);
  uint64_t index = std::max(req.from_index, base_index_ + 1);
  while (index <= commit_index_ && resp.entries.size() < max_count) {
    resp.entries.push_back(*EntryAt(index));
    ++index;
  }
  call.respond(rpc::Code::kOk, resp.Encode());
}

void LogService::HandleReadStream(rpc::Server::Call&& call) {
  loop_.AssertOnLoopThread();
  rpcwire::ReadStreamRequest req;
  if (!rpcwire::ReadStreamRequest::Decode(Slice(call.payload), &req)) {
    call.respond(rpc::Code::kBadRequest, std::string());
    return;
  }
  if (commit_index_ >= req.from_index || req.wait_ms == 0) {
    ServeRead(req, call);
    return;
  }
  // Long poll: park until commit reaches from_index or wait_ms elapses.
  const uint64_t id = next_waiter_id_++;
  Waiter w;
  w.id = id;
  w.req = req;
  w.call = std::move(call);
  w.timer_id = loop_.After(req.wait_ms, [this, id] {
    auto it = read_waiters_.find(id);
    if (it == read_waiters_.end()) return;
    it->second.timer_id = 0;
    ServeRead(it->second.req, it->second.call);  // answers empty
    read_waiters_.erase(it);
    read_waiters_gauge_->Set(static_cast<int64_t>(read_waiters_.size()));
  });
  read_waiters_.emplace(id, std::move(w));
  read_waiters_gauge_->Set(static_cast<int64_t>(read_waiters_.size()));
}

void LogService::WakeLongPolls() {
  for (auto it = read_waiters_.begin(); it != read_waiters_.end();) {
    if (commit_index_ >= it->second.req.from_index) {
      if (it->second.timer_id != 0) loop_.CancelTimer(it->second.timer_id);
      ServeRead(it->second.req, it->second.call);
      it = read_waiters_.erase(it);
    } else {
      ++it;
    }
  }
  read_waiters_gauge_->Set(static_cast<int64_t>(read_waiters_.size()));
}

void LogService::HandleTail(rpc::Server::Call&& call) {
  loop_.AssertOnLoopThread();
  wire::ClientTailResponse resp;
  if (role_ != Role::kLeader) {
    resp.result = wire::ClientResult::kNotLeader;
    resp.leader_hint = static_cast<sim::NodeId>(leader_hint_);
  } else if (commit_index_ < barrier_index_) {
    resp.result = wire::ClientResult::kUnavailable;
  } else {
    resp.result = wire::ClientResult::kOk;
    resp.commit_index = commit_index_;
    resp.last_index = last_index();
    resp.consumers = read_waiters_.size();
  }
  call.respond(rpc::Code::kOk, resp.Encode());
}

void LogService::HandleTrim(rpc::Server::Call&& call) {
  loop_.AssertOnLoopThread();
  rpcwire::TrimRequest req;
  if (!rpcwire::TrimRequest::Decode(Slice(call.payload), &req)) {
    call.respond(rpc::Code::kBadRequest, std::string());
    return;
  }
  // Never trim past what this replica has committed; the leader also keeps
  // everything a lagging follower still needs (there is no snapshot-install
  // path to catch a follower up once its history is gone).
  uint64_t upto = std::min(req.upto_index, commit_index_);
  if (role_ == Role::kLeader) {
    for (uint64_t peer : peer_ids_) {
      upto = std::min(upto, match_index_[peer]);
    }
  }
  if (upto > base_index_) TruncatePrefixTo(upto);
  rpcwire::TrimResponse resp;
  resp.first_index = base_index_ + 1;
  call.respond(rpc::Code::kOk, resp.Encode());
}

void LogService::HandleLease(rpc::Server::Call&& call, bool renew) {
  loop_.AssertOnLoopThread();
  rpcwire::LeaseRequest req;
  if (!rpcwire::LeaseRequest::Decode(Slice(call.payload), &req)) {
    call.respond(rpc::Code::kBadRequest, std::string());
    return;
  }
  auto reply = [respond = call.respond](rpcwire::LeaseResponse r) {
    respond(rpc::Code::kOk, r.Encode());
  };
  rpcwire::LeaseResponse resp;
  if (role_ != Role::kLeader) {
    resp.result = wire::ClientResult::kNotLeader;
    resp.leader_hint = leader_hint_;
    reply(resp);
    return;
  }
  if (commit_index_ < barrier_index_) {
    resp.result = wire::ClientResult::kUnavailable;
    reply(resp);
    return;
  }
  // Expiry is evaluated against the leader's clock only (§4.1.3): replicas
  // apply grants with their own clocks, but only the leader arbitrates.
  // A grant still in the commit window counts: otherwise two contenders
  // racing AcquireLease would both see the stale committed table and both
  // win. The newer (pending) grant shadows the committed one.
  const uint64_t now_ms = rpc::LoopThread::NowMs();
  const Lease* cur = nullptr;
  auto committed = leases_.find(req.shard_id);
  if (committed != leases_.end()) cur = &committed->second;
  auto pending = pending_leases_.find(req.shard_id);
  if (pending != pending_leases_.end() &&
      (cur == nullptr || pending->second.expiry_ms > cur->expiry_ms)) {
    cur = &pending->second;
  }
  const bool active = cur != nullptr && cur->expiry_ms > now_ms;
  const bool owned = active && cur->owner == req.owner;
  if ((renew && !owned) || (!renew && active && !owned)) {
    resp.result = wire::ClientResult::kConditionFailed;
    if (active) {
      resp.holder = cur->owner;
      resp.remaining_ms = cur->expiry_ms - now_ms;
    }
    reply(resp);
    return;
  }

  rpcwire::LeaseGrant grant;
  grant.owner = req.owner;
  grant.duration_ms = req.duration_ms;
  grant.shard_id = req.shard_id;
  LogRecord rec;
  rec.type = RecordType::kLease;
  rec.writer = req.owner;
  rec.trace_id = call.trace_id;
  rec.payload = grant.Encode();
  pending_leases_[req.shard_id] = {req.owner, now_ms + req.duration_ms};
  AppendToLocalLog(std::move(rec));
  const uint64_t index = last_index();
  append_received_at_us_[index] = NowUs();
  const uint64_t owner = req.owner;
  const uint64_t duration = req.duration_ms;
  pending_acks_[index].push_back(
      [this, reply, owner, duration](bool committed, uint64_t idx) {
        rpcwire::LeaseResponse r;
        if (committed) {
          r.result = wire::ClientResult::kOk;
          r.holder = owner;
          r.remaining_ms = duration;
          r.index = idx;
        } else {
          r.result = wire::ClientResult::kUnavailable;
        }
        reply(r);
      });
  AdvanceCommitIndex();
  BroadcastAppendEntries();
}

void LogService::HandleMetricsScrape(rpc::Server::Call&& call) {
  call.respond(rpc::Code::kOk, metrics_.ExpositionText());
}

void LogService::HandleTraceDump(rpc::Server::Call&& call) {
  call.respond(rpc::Code::kOk,
               ExportSpansJsonl(trace_, TraceProcLabel()));
}

// --- persistence -----------------------------------------------------------
//
// Two files per replica:
//   meta: fixed-size term/voted_for block, written atomically (tmp+rename).
//   log:  framed entries (u32 len | entry | u32 crc), appended and fsynced
//         before the entry counts toward the quorum; suffix truncation
//         rewrites the file.

std::string LogService::MetaPath() const { return options_.data_dir + "/meta"; }
std::string LogService::LogPath() const { return options_.data_dir + "/log"; }

void LogService::PersistMeta() {
  loop_.AssertOnLoopThread();
  if (options_.data_dir.empty()) return;
  std::string body;
  PutFixed64(&body, current_term_);
  PutFixed64(&body, voted_for_);
  PutFixed64(&body, base_index_);
  PutFixed64(&body, base_term_);
  PutFixed32(&body, static_cast<uint32_t>(Crc64(0, body.data(), body.size())));
  const std::string tmp = MetaPath() + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return;
  ssize_t unused = ::write(fd, body.data(), body.size());
  (void)unused;
  // lint:allow-blocking -- fsync gates quorum acks by design (paper 3.1).
  if (options_.fsync) ::fsync(fd);
  ::close(fd);
  ::rename(tmp.c_str(), MetaPath().c_str());
}

void LogService::PersistLogSuffix(uint64_t from_index) {
  loop_.AssertOnLoopThread();
  if (options_.data_dir.empty()) return;
  if (log_fd_ < 0) {
    log_fd_ = ::open(LogPath().c_str(),
                     O_CREAT | O_APPEND | O_WRONLY | O_CLOEXEC, 0644);
    if (log_fd_ < 0) return;
  }
  std::string buf;
  for (uint64_t i = from_index; i <= last_index(); ++i) {
    std::string body;
    EntryAt(i)->EncodeTo(&body);
    PutFixed32(&buf, static_cast<uint32_t>(body.size()));
    buf.append(body);
    PutFixed32(&buf,
               static_cast<uint32_t>(Crc64(0, body.data(), body.size())));
  }
  size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(log_fd_, buf.data() + off, buf.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
  if (options_.fsync) {
    const uint64_t t0 = NowUs();
    ::fsync(log_fd_);  // lint:allow-blocking -- durability gate (paper 3.1)
    fsync_us_->Record(NowUs() - t0);
  }
  fsyncs_->Increment();
}

void LogService::RewriteLogFile() {
  if (options_.data_dir.empty()) return;
  if (log_fd_ >= 0) {
    ::close(log_fd_);
    log_fd_ = -1;
  }
  const std::string tmp = LogPath() + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return;
  std::string buf;
  for (const LogEntry& e : log_) {
    std::string body;
    e.EncodeTo(&body);
    PutFixed32(&buf, static_cast<uint32_t>(body.size()));
    buf.append(body);
    PutFixed32(&buf,
               static_cast<uint32_t>(Crc64(0, body.data(), body.size())));
  }
  size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    off += static_cast<size_t>(n);
  }
  // lint:allow-blocking -- fsync gates quorum acks by design (paper 3.1).
  if (options_.fsync) ::fsync(fd);
  ::close(fd);
  ::rename(tmp.c_str(), LogPath().c_str());
  log_fd_ =
      ::open(LogPath().c_str(), O_CREAT | O_APPEND | O_WRONLY | O_CLOEXEC,
             0644);
}

Status LogService::LoadDisk() {
  if (options_.data_dir.empty()) return Status::OK();
  ::mkdir(options_.data_dir.c_str(), 0755);

  // Meta: term/vote plus the trimmed-prefix base (4 fixed64 + crc). The
  // legacy 2-field layout (pre-trim) is still accepted.
  {
    int fd = ::open(MetaPath().c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0) {
      char raw[8 * 4 + 4];
      const ssize_t n = ::read(fd, raw, sizeof(raw));
      ::close(fd);
      uint64_t term = 0, voted = 0, base = 0, bterm = 0;
      bool valid = false;
      if (n == static_cast<ssize_t>(sizeof(raw))) {
        Decoder dec(Slice(raw, sizeof(raw)));
        uint32_t crc;
        valid = dec.GetFixed64(&term) && dec.GetFixed64(&voted) &&
                dec.GetFixed64(&base) && dec.GetFixed64(&bterm) &&
                dec.GetFixed32(&crc) &&
                crc == static_cast<uint32_t>(Crc64(0, raw, 32));
      } else if (n == 8 * 2 + 4) {
        Decoder dec(Slice(raw, 8 * 2 + 4));
        uint32_t crc;
        valid = dec.GetFixed64(&term) && dec.GetFixed64(&voted) &&
                dec.GetFixed32(&crc) &&
                crc == static_cast<uint32_t>(Crc64(0, raw, 16));
      }
      if (valid) {
        current_term_ = term;
        voted_for_ = voted;
        base_index_ = base;
        base_term_ = bterm;
        // History below the base was only discarded after it committed, so
        // the base is a committed floor across restarts.
        commit_index_ = applied_index_ = base_index_;
        commit_atomic_.store(commit_index_, std::memory_order_release);
        term_atomic_.store(current_term_, std::memory_order_release);
        term_gauge_->Set(static_cast<int64_t>(current_term_));
        base_index_gauge_->Set(static_cast<int64_t>(base_index_));
      }
    }
  }

  // Log: read frames until EOF or corruption (a torn tail is expected after
  // a crash mid-append — recover the clean prefix and drop the rest).
  std::string raw;
  {
    int fd = ::open(LogPath().c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0) {
      char chunk[64 * 1024];
      for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0) break;
        raw.append(chunk, static_cast<size_t>(n));
      }
      ::close(fd);
    }
  }
  size_t off = 0;
  bool torn = false;
  while (off + 8 <= raw.size()) {
    Decoder head(Slice(raw.data() + off, 4));
    uint32_t len = 0;
    head.GetFixed32(&len);
    if (off + 4 + len + 4 > raw.size()) break;
    const char* body = raw.data() + off + 4;
    Decoder tail(Slice(body + len, 4));
    uint32_t crc = 0;
    tail.GetFixed32(&crc);
    if (crc != static_cast<uint32_t>(Crc64(0, body, len))) {
      torn = true;
      break;
    }
    Decoder dec(Slice(body, len));
    LogEntry entry;
    if (!LogEntry::DecodeFrom(&dec, &entry)) {
      torn = true;
      break;
    }
    if (entry.index != last_index() + 1) {
      torn = true;
      break;
    }
    if (entry.record.writer != 0 || entry.record.request_id != 0) {
      DedupInsert(entry.record.writer, entry.record.request_id, entry.index);
    }
    log_.push_back(std::move(entry));
    off += 4 + len + 4;
  }
  durable_index_ = last_index();
  if (torn || off < raw.size()) RewriteLogFile();
  return Status::OK();
}

}  // namespace memdb::txlog
