#include "txlog/raft.h"

#include <algorithm>

#include "txlog/wire.h"

namespace memdb::txlog {

using sim::Duration;
using sim::Message;
using sim::NodeId;

RaftReplica::RaftReplica(sim::Simulation* sim, NodeId id,
                         std::vector<NodeId> peers,
                         std::shared_ptr<RaftPersistentState> persistent,
                         RaftOptions options)
    : Actor(sim, id),
      peers_(std::move(peers)),
      persistent_(std::move(persistent)),
      options_(options),
      rng_(sim->rng().Next() ^ id),
      disk_(&sim->scheduler(), 1) {
  On(wire::kVoteReq, [this](const Message& m) { HandleVoteRequest(m); });
  On(wire::kAppendEntriesReq,
     [this](const Message& m) { HandleAppendEntriesRequest(m); });
  On(wire::kClientAppend, [this](const Message& m) { HandleClientAppend(m); });
  On(wire::kClientRead, [this](const Message& m) { HandleClientRead(m); });
  On(wire::kClientTail, [this](const Message& m) { HandleClientTail(m); });
  On(wire::kClientTrim, [this](const Message& m) { HandleClientTrim(m); });
  // On process start, everything already fsynced counts as durable.
  durable_index_ = last_index();
  elections_started_ = metrics_.GetCounter("raft_elections_started_total");
  leader_elected_ = metrics_.GetCounter("raft_leader_elected_total");
  client_appends_ = metrics_.GetCounter("raft_client_appends_total");
  entries_replicated_ = metrics_.GetCounter("raft_entries_replicated_total");
  term_gauge_ = metrics_.GetGauge("raft_term");
  commit_gauge_ = metrics_.GetGauge("raft_commit_index");
  commit_latency_ = metrics_.GetHistogram("raft_append_commit_latency_us");
  term_gauge_->Set(static_cast<int64_t>(persistent_->current_term));
  ResetElectionTimer();
}

void RaftReplica::OnRestart() {
  Actor::OnRestart();
  // Volatile state resets; persistent_ (the disk) survives.
  role_ = RaftRole::kFollower;
  leader_hint_ = sim::kInvalidNode;
  commit_index_ = 0;
  durable_index_ = last_index();
  votes_received_ = 0;
  ++election_epoch_;
  next_index_.clear();
  match_index_.clear();
  append_inflight_.clear();
  pending_appends_.clear();
  append_received_at_.clear();
  barrier_index_ = 0;
  heartbeat_loop_running_ = false;  // the periodic timer died with the crash
  ResetElectionTimer();
}

uint64_t RaftReplica::last_index() const {
  return persistent_->base_index + persistent_->log.size();
}

const LogEntry* RaftReplica::EntryAt(uint64_t index) const {
  if (index <= persistent_->base_index || index > last_index()) return nullptr;
  return &persistent_->log[index - persistent_->base_index - 1];
}

uint64_t RaftReplica::TermAt(uint64_t index) const {
  if (index == 0) return 0;
  if (index == persistent_->base_index) return persistent_->base_term;
  const LogEntry* e = EntryAt(index);
  return e == nullptr ? 0 : e->term;
}

void RaftReplica::TruncateSuffixFrom(uint64_t index) {
  while (last_index() >= index && !persistent_->log.empty()) {
    persistent_->log.pop_back();
  }
  durable_index_ = std::min(durable_index_, last_index());
}

std::vector<LogEntry> RaftReplica::CommittedEntries(uint64_t from,
                                                    size_t count) const {
  std::vector<LogEntry> out;
  for (uint64_t i = std::max(from, persistent_->base_index + 1);
       i <= commit_index_ && out.size() < count; ++i) {
    const LogEntry* e = EntryAt(i);
    if (e == nullptr) break;
    out.push_back(*e);
  }
  return out;
}

// --------------------------------------------------------------- elections

void RaftReplica::ResetElectionTimer() {
  election_timer_.Cancel();
  const Duration timeout =
      rng_.UniformRange(options_.election_timeout_min,
                        options_.election_timeout_max);
  election_timer_ = After(timeout, [this] { StartElection(); });
}

void RaftReplica::BecomeFollower(uint64_t term) {
  if (term > persistent_->current_term) {
    persistent_->current_term = term;
    persistent_->voted_for = sim::kInvalidNode;
    term_gauge_->Set(static_cast<int64_t>(term));
  }
  const bool was_leader = (role_ == RaftRole::kLeader);
  role_ = RaftRole::kFollower;
  ++election_epoch_;
  if (was_leader) {
    FailPendingAppends(Status::Unavailable("log leadership lost"));
  }
  ResetElectionTimer();
}

void RaftReplica::StartElection() {
  role_ = RaftRole::kCandidate;
  ++persistent_->current_term;
  elections_started_->Increment();
  term_gauge_->Set(static_cast<int64_t>(persistent_->current_term));
  persistent_->voted_for = id();
  votes_received_ = 1;  // self
  const uint64_t epoch = ++election_epoch_;
  ResetElectionTimer();

  wire::VoteRequest req;
  req.term = persistent_->current_term;
  req.candidate = id();
  req.last_log_index = last_index();
  req.last_log_term = TermAt(last_index());
  const std::string payload = req.Encode();
  for (NodeId peer : peers_) {
    Rpc(peer, wire::kVoteReq, payload, options_.rpc_timeout,
        [this, epoch](const Status& s, const std::string& body) {
          if (!s.ok() || epoch != election_epoch_ ||
              role_ != RaftRole::kCandidate) {
            return;
          }
          wire::VoteResponse resp;
          if (!wire::VoteResponse::Decode(body, &resp)) return;
          if (resp.term > persistent_->current_term) {
            BecomeFollower(resp.term);
            return;
          }
          if (resp.granted && resp.term == persistent_->current_term) {
            if (++votes_received_ >
                static_cast<int>(peers_.size() + 1) / 2) {
              BecomeLeader();
            }
          }
        });
  }
}

void RaftReplica::HandleVoteRequest(const Message& m) {
  wire::VoteRequest req;
  if (!wire::VoteRequest::Decode(m.payload, &req)) return;
  if (req.term > persistent_->current_term) BecomeFollower(req.term);

  wire::VoteResponse resp;
  resp.term = persistent_->current_term;
  const bool up_to_date =
      req.last_log_term > TermAt(last_index()) ||
      (req.last_log_term == TermAt(last_index()) &&
       req.last_log_index >= last_index());
  if (req.term == persistent_->current_term &&
      (persistent_->voted_for == sim::kInvalidNode ||
       persistent_->voted_for == req.candidate) &&
      up_to_date) {
    persistent_->voted_for = req.candidate;
    resp.granted = true;
    ResetElectionTimer();
  }
  Reply(m, resp.Encode());
}

void RaftReplica::BecomeLeader() {
  role_ = RaftRole::kLeader;
  leader_hint_ = id();
  leader_elected_->Increment();
  ++election_epoch_;
  election_timer_.Cancel();
  next_index_.clear();
  match_index_.clear();
  append_inflight_.clear();
  for (NodeId peer : peers_) {
    next_index_[peer] = last_index() + 1;
    match_index_[peer] = 0;
    append_inflight_[peer] = false;
  }
  // Barrier no-op: conditional appends wait until an entry of this term
  // commits, which establishes the true tail (Raft leader completeness).
  LogRecord noop;
  noop.type = RecordType::kNoop;
  AppendToLocalLog(std::move(noop));
  barrier_index_ = last_index();
  BroadcastAppendEntries();
  if (!heartbeat_loop_running_) {
    heartbeat_loop_running_ = true;
    Periodic(options_.heartbeat_interval, [this] {
      if (role_ == RaftRole::kLeader) BroadcastAppendEntries();
    });
  }
}

// --------------------------------------------------------------- leader ops

void RaftReplica::AppendToLocalLog(LogRecord record) {
  LogEntry entry;
  entry.term = persistent_->current_term;
  entry.index = last_index() + 1;
  entry.record = std::move(record);
  const uint64_t trace_id = entry.record.trace_id;
  persistent_->log.push_back(std::move(entry));
  const uint64_t upto = last_index();
  disk_.SubmitAnd(options_.disk_write_us, [this, upto, trace_id] {
    if (!alive()) return;
    durable_index_ = std::max(durable_index_, std::min(upto, last_index()));
    trace_.Record(trace_id, "log.durable.local", Now(), upto);
    if (role_ == RaftRole::kLeader) AdvanceCommitIndex();
  });
}

void RaftReplica::BroadcastAppendEntries() {
  for (NodeId peer : peers_) SendAppendEntries(peer);
}

void RaftReplica::SendAppendEntries(NodeId peer) {
  if (role_ != RaftRole::kLeader || append_inflight_[peer]) return;
  const uint64_t next = next_index_[peer];
  // If the follower is behind our truncated prefix it must restore from a
  // snapshot; we keep probing at the base (migration/recovery layers handle
  // snapshot installs at the DB level).
  wire::AppendEntriesRequest req;
  req.term = persistent_->current_term;
  req.leader = id();
  req.prev_index = next - 1;
  req.prev_term = TermAt(next - 1);
  req.commit_index = commit_index_;
  for (uint64_t i = next; i <= last_index() && req.entries.size() < 64; ++i) {
    const LogEntry* e = EntryAt(i);
    if (e == nullptr) break;
    req.entries.push_back(*e);
  }
  append_inflight_[peer] = true;
  const uint64_t epoch = election_epoch_;
  Rpc(peer, wire::kAppendEntriesReq, req.Encode(), options_.rpc_timeout,
      [this, peer, epoch](const Status& s, const std::string& body) {
        if (epoch != election_epoch_ || role_ != RaftRole::kLeader) return;
        append_inflight_[peer] = false;
        if (!s.ok()) return;  // retry on next heartbeat
        wire::AppendEntriesResponse resp;
        if (!wire::AppendEntriesResponse::Decode(body, &resp)) return;
        if (resp.term > persistent_->current_term) {
          BecomeFollower(resp.term);
          return;
        }
        if (resp.success) {
          match_index_[peer] = std::max(match_index_[peer], resp.match_index);
          next_index_[peer] = match_index_[peer] + 1;
          Gauge*& lag = peer_lag_gauges_[peer];
          if (lag == nullptr) {
            lag = metrics_.GetGauge("raft_replication_lag",
                                    {{"peer", std::to_string(peer)}});
          }
          lag->Set(static_cast<int64_t>(last_index() - match_index_[peer]));
          AdvanceCommitIndex();
        } else {
          next_index_[peer] =
              std::max<uint64_t>(1, std::min(resp.match_index + 1,
                                             next_index_[peer] - 1));
        }
        if (next_index_[peer] <= last_index()) SendAppendEntries(peer);
      });
}

void RaftReplica::AdvanceCommitIndex() {
  if (role_ != RaftRole::kLeader) return;
  std::vector<uint64_t> matches;
  matches.push_back(durable_index_);
  for (const auto& [peer, match] : match_index_) matches.push_back(match);
  std::sort(matches.begin(), matches.end(), std::greater<uint64_t>());
  const uint64_t majority_match = matches[matches.size() / 2];
  if (majority_match > commit_index_ &&
      TermAt(majority_match) == persistent_->current_term) {
    commit_index_ = majority_match;
    commit_gauge_->Set(static_cast<int64_t>(commit_index_));
    MaybeAckClients();
  }
}

void RaftReplica::MaybeAckClients() {
  while (!pending_appends_.empty() &&
         pending_appends_.begin()->first <= commit_index_) {
    auto it = pending_appends_.begin();
    const LogEntry* e = EntryAt(it->first);
    if (e != nullptr) {
      trace_.Record(e->record.trace_id, "log.quorum.commit", Now(), it->first);
    }
    auto recv = append_received_at_.find(it->first);
    if (recv != append_received_at_.end()) {
      commit_latency_->Record(Now() - recv->second);
      append_received_at_.erase(recv);
    }
    wire::ClientAppendResponse resp;
    resp.result = wire::ClientResult::kOk;
    resp.index = it->first;
    resp.leader_hint = id();
    Reply(it->second, resp.Encode());
    pending_appends_.erase(it);
  }
}

void RaftReplica::FailPendingAppends(const Status& status) {
  for (auto& [index, msg] : pending_appends_) {
    wire::ClientAppendResponse resp;
    resp.result = wire::ClientResult::kUnavailable;
    resp.leader_hint = leader_hint_;
    Reply(msg, resp.Encode());
  }
  pending_appends_.clear();
  append_received_at_.clear();
}

// --------------------------------------------------------------- followers

void RaftReplica::HandleAppendEntriesRequest(const Message& m) {
  wire::AppendEntriesRequest req;
  if (!wire::AppendEntriesRequest::Decode(m.payload, &req)) return;

  wire::AppendEntriesResponse resp;
  if (req.term < persistent_->current_term) {
    resp.term = persistent_->current_term;
    resp.success = false;
    Reply(m, resp.Encode());
    return;
  }
  if (req.term > persistent_->current_term ||
      role_ != RaftRole::kFollower) {
    BecomeFollower(req.term);
  }
  leader_hint_ = req.leader;
  ResetElectionTimer();
  resp.term = persistent_->current_term;

  // Consistency check on the previous entry.
  if (req.prev_index > last_index() ||
      (req.prev_index > persistent_->base_index &&
       TermAt(req.prev_index) != req.prev_term)) {
    resp.success = false;
    resp.match_index = std::min(req.prev_index == 0 ? 0 : req.prev_index - 1,
                                last_index());
    Reply(m, resp.Encode());
    return;
  }

  // Append new entries, resolving conflicts by truncation.
  uint64_t appended_upto = req.prev_index;
  // (trace_id, index) of entries newly persisted by this call, stamped as
  // follower-durable once the modeled fsync completes.
  std::vector<std::pair<uint64_t, uint64_t>> traced;
  for (const LogEntry& e : req.entries) {
    const LogEntry* existing = EntryAt(e.index);
    if (existing != nullptr) {
      if (existing->term == e.term) {
        appended_upto = e.index;
        continue;  // already have it
      }
      TruncateSuffixFrom(e.index);
    }
    if (e.index == last_index() + 1) {
      persistent_->log.push_back(e);
      entries_replicated_->Increment();
      if (e.record.trace_id != 0) {
        traced.emplace_back(e.record.trace_id, e.index);
      }
      appended_upto = e.index;
    }
  }

  const uint64_t match = appended_upto;
  const uint64_t leader_commit = req.commit_index;
  // Ack only after the batch is durable locally (this is the multi-AZ
  // durability guarantee: commit requires 2 of 3 AZ fsyncs).
  const Duration cost =
      options_.disk_write_us * std::max<uint64_t>(1, req.entries.size());
  disk_.SubmitAnd(cost, [this, m, match, leader_commit,
                         traced = std::move(traced)] {
    if (!alive()) return;
    durable_index_ = std::max(durable_index_, std::min(match, last_index()));
    commit_index_ =
        std::max(commit_index_, std::min(leader_commit, durable_index_));
    commit_gauge_->Set(static_cast<int64_t>(commit_index_));
    for (const auto& [trace_id, index] : traced) {
      trace_.Record(trace_id, "log.follower.durable", Now(), index);
    }
    wire::AppendEntriesResponse out;
    out.term = persistent_->current_term;
    out.success = true;
    out.match_index = match;
    Reply(m, out.Encode());
  });
}

// --------------------------------------------------------------- client API

void RaftReplica::HandleClientAppend(const Message& m) {
  wire::ClientAppendRequest req;
  if (!wire::ClientAppendRequest::Decode(m.payload, &req)) {
    ReplyError(m, Status::InvalidArgument("bad append request"));
    return;
  }
  wire::ClientAppendResponse resp;
  resp.leader_hint = leader_hint_;
  if (role_ != RaftRole::kLeader) {
    resp.result = wire::ClientResult::kNotLeader;
    Reply(m, resp.Encode());
    return;
  }
  if (commit_index_ < barrier_index_) {
    resp.result = wire::ClientResult::kUnavailable;
    resp.leader_hint = id();
    Reply(m, resp.Encode());
    return;
  }
  if (req.prev_index != wire::kUnconditional &&
      req.prev_index != last_index()) {
    resp.result = wire::ClientResult::kConditionFailed;
    resp.index = last_index();
    resp.leader_hint = id();
    Reply(m, resp.Encode());
    return;
  }
  client_appends_->Increment();
  const uint64_t trace_id = req.record.trace_id;
  AppendToLocalLog(std::move(req.record));
  trace_.Record(trace_id, "log.append.receive", Now(), last_index());
  append_received_at_[last_index()] = Now();
  pending_appends_.emplace(last_index(), m);
  BroadcastAppendEntries();
}

void RaftReplica::HandleClientRead(const Message& m) {
  wire::ClientReadRequest req;
  if (!wire::ClientReadRequest::Decode(m.payload, &req)) {
    ReplyError(m, Status::InvalidArgument("bad read request"));
    return;
  }
  wire::ClientReadResponse resp;
  resp.commit_index = commit_index_;
  resp.first_index = persistent_->base_index + 1;
  const size_t cap = std::min<uint64_t>(req.max_count, options_.max_read_batch);
  resp.entries = CommittedEntries(req.from_index, cap);
  Reply(m, resp.Encode());
}

void RaftReplica::HandleClientTail(const Message& m) {
  wire::ClientTailResponse resp;
  resp.commit_index = commit_index_;
  resp.last_index = last_index();
  resp.leader_hint = leader_hint_;
  if (role_ != RaftRole::kLeader) {
    resp.result = wire::ClientResult::kNotLeader;
  } else if (commit_index_ < barrier_index_) {
    resp.result = wire::ClientResult::kUnavailable;
  } else {
    resp.result = wire::ClientResult::kOk;
  }
  Reply(m, resp.Encode());
}

void RaftReplica::HandleClientTrim(const Message& m) {
  wire::ClientReadRequest req;  // reuse: from_index = trim-up-to
  if (!wire::ClientReadRequest::Decode(m.payload, &req)) return;
  uint64_t upto = std::min(req.from_index, commit_index_);
  if (role_ == RaftRole::kLeader) {
    // Never trim entries a follower may still need for catch-up.
    for (const auto& [peer, match] : match_index_) {
      upto = std::min(upto, match);
    }
  }
  while (persistent_->base_index < upto && !persistent_->log.empty()) {
    persistent_->base_term = persistent_->log.front().term;
    persistent_->log.pop_front();
    ++persistent_->base_index;
  }
  Reply(m, "");
}

}  // namespace memdb::txlog
