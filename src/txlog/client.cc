#include "txlog/client.h"

#include <algorithm>

namespace memdb::txlog {

using sim::NodeId;

TxLogClient::TxLogClient(sim::Actor* owner, std::vector<NodeId> replicas)
    : TxLogClient(owner, std::move(replicas), Options{}) {}

TxLogClient::TxLogClient(sim::Actor* owner, std::vector<NodeId> replicas,
                         Options options)
    : owner_(owner), replicas_(std::move(replicas)), options_(options) {}

NodeId TxLogClient::PickTarget() {
  if (leader_hint_ != sim::kInvalidNode) {
    for (NodeId r : replicas_) {
      if (r == leader_hint_) return r;
    }
  }
  round_robin_ = (round_robin_ + 1) % replicas_.size();
  return replicas_[round_robin_];
}

void TxLogClient::Append(uint64_t prev_index, LogRecord record,
                         AppendCallback cb) {
  AppendAttempt(prev_index, record, std::move(cb), options_.max_attempts,
                /*sent_once=*/false);
}

void TxLogClient::AppendAttempt(uint64_t prev_index, const LogRecord& record,
                                AppendCallback cb, int attempts_left,
                                bool sent_once) {
  if (attempts_left <= 0) {
    // If any attempt actually reached a replica, the append may have landed.
    cb(sent_once ? Status::TimedOut("append unresolved")
                 : Status::Unavailable("log unreachable"),
       0);
    return;
  }
  wire::ClientAppendRequest req;
  req.prev_index = prev_index;
  req.record = record;
  const NodeId target = PickTarget();
  owner_->Rpc(
      target, wire::kClientAppend, req.Encode(), options_.rpc_timeout,
      [this, prev_index, record, cb = std::move(cb), attempts_left,
       sent_once](const Status& s, const std::string& body) mutable {
        if (s.IsTimedOut() || s.IsUnavailable()) {
          // The request may have been executed (leader crashed after
          // committing, network partition...). Retry against another
          // replica; a duplicate conditional append cannot double-commit
          // (the precondition fails) and is resolved below.
          leader_hint_ = sim::kInvalidNode;
          owner_->After(options_.retry_backoff,
                        [this, prev_index, record, cb = std::move(cb),
                         attempts_left]() mutable {
                          AppendAttempt(prev_index, record, std::move(cb),
                                        attempts_left - 1, /*sent_once=*/true);
                        });
          return;
        }
        if (!s.ok()) {
          cb(s, 0);
          return;
        }
        wire::ClientAppendResponse resp;
        if (!wire::ClientAppendResponse::Decode(body, &resp)) {
          cb(Status::Corruption("bad append response"), 0);
          return;
        }
        switch (resp.result) {
          case wire::ClientResult::kOk:
            leader_hint_ = resp.leader_hint;
            cb(Status::OK(), resp.index);
            return;
          case wire::ClientResult::kConditionFailed:
            leader_hint_ = resp.leader_hint;
            if (sent_once && prev_index != wire::kUnconditional &&
                record.request_id != 0) {
              // An earlier attempt may have landed; search for it.
              ResolveAppend(prev_index, record, resp.index, std::move(cb));
              return;
            }
            cb(Status::ConditionFailed("log tail moved"), resp.index);
            return;
          case wire::ClientResult::kNotLeader:
          case wire::ClientResult::kUnavailable:
            leader_hint_ = resp.leader_hint;
            owner_->After(options_.retry_backoff,
                          [this, prev_index, record, cb = std::move(cb),
                           attempts_left, sent_once]() mutable {
                            AppendAttempt(prev_index, record, std::move(cb),
                                          attempts_left - 1, sent_once);
                          });
            return;
        }
      });
}

void TxLogClient::ResolveAppend(uint64_t prev_index, const LogRecord& record,
                                uint64_t tail, AppendCallback cb) {
  // Scan (prev_index, tail] for an entry matching (writer, request_id). If
  // present, an earlier attempt committed: report success at that index.
  Read(prev_index + 1, tail > prev_index ? tail - prev_index : 64,
       [this, prev_index, record, tail, cb = std::move(cb)](
           const Status& s, const wire::ClientReadResponse& resp) mutable {
         if (!s.ok()) {
           cb(Status::TimedOut("append unresolved (read failed)"), 0);
           return;
         }
         for (const LogEntry& e : resp.entries) {
           if (e.record.writer == record.writer &&
               e.record.request_id == record.request_id) {
             cb(Status::OK(), e.index);
             return;
           }
         }
         if (!resp.entries.empty() && resp.entries.back().index < tail &&
             resp.commit_index > resp.entries.back().index) {
           ResolveAppend(resp.entries.back().index, record, tail,
                         std::move(cb));
           return;
         }
         cb(Status::ConditionFailed("log tail moved"), tail);
       });
}

void TxLogClient::Read(uint64_t from_index, uint64_t max_count,
                       ReadCallback cb) {
  wire::ClientReadRequest req;
  req.from_index = from_index;
  req.max_count = max_count;
  // Reads are served from any replica's committed prefix; prefer a replica
  // in our own AZ-free round-robin for load spreading.
  const NodeId target = replicas_[round_robin_++ % replicas_.size()];
  owner_->Rpc(target, wire::kClientRead, req.Encode(), options_.rpc_timeout,
              [cb = std::move(cb)](const Status& s, const std::string& body) {
                wire::ClientReadResponse resp;
                if (!s.ok()) {
                  cb(s, resp);
                  return;
                }
                if (!wire::ClientReadResponse::Decode(body, &resp)) {
                  cb(Status::Corruption("bad read response"), resp);
                  return;
                }
                cb(Status::OK(), resp);
              });
}

void TxLogClient::Tail(TailCallback cb) {
  TailAttempt(std::move(cb), options_.max_attempts);
}

void TxLogClient::TailAttempt(TailCallback cb, int attempts_left) {
  if (attempts_left <= 0) {
    cb(Status::Unavailable("no log leader reachable"),
       wire::ClientTailResponse{});
    return;
  }
  const NodeId target = PickTarget();
  owner_->Rpc(
      target, wire::kClientTail, "", options_.rpc_timeout,
      [this, cb = std::move(cb), attempts_left](const Status& s,
                                                const std::string& body) mutable {
        wire::ClientTailResponse resp;
        if (!s.ok() || !wire::ClientTailResponse::Decode(body, &resp) ||
            resp.result == wire::ClientResult::kNotLeader ||
            resp.result == wire::ClientResult::kUnavailable) {
          if (s.ok()) leader_hint_ = resp.leader_hint;
          if (!s.ok()) leader_hint_ = sim::kInvalidNode;
          owner_->After(options_.retry_backoff,
                        [this, cb = std::move(cb), attempts_left]() mutable {
                          TailAttempt(std::move(cb), attempts_left - 1);
                        });
          return;
        }
        leader_hint_ = resp.leader_hint;
        cb(Status::OK(), resp);
      });
}

void TxLogClient::Trim(uint64_t upto_index) {
  wire::ClientReadRequest req;
  req.from_index = upto_index;
  for (NodeId r : replicas_) {
    owner_->Rpc(r, wire::kClientTrim, req.Encode(), options_.rpc_timeout,
                [](const Status&, const std::string&) {});
  }
}

}  // namespace memdb::txlog
