// LogService: one memorydb-txlogd replica — the out-of-process transaction
// log service. Where src/txlog/raft.cc implements the replica as a
// simulation actor, LogService implements the same protocol as a real
// process: an rpc::Server for the client-facing API and raft traffic, an
// rpc::Channel per peer, and a write-ahead file per replica whose fsync
// gates every acknowledgement — commit still requires a majority of AZs
// durable, now across real processes.
//
// Service API (see txlog/rpc_wire.h for method names):
//   * ConditionalAppend — leader-only CAS append; acks only after quorum
//     persistence; idempotent under retry via (writer, request_id) dedup:
//     a retried append whose record already entered the log returns the
//     original index instead of appending twice.
//   * ReadStream — committed entries from any replica, with long-poll
//     follow (wait_ms) so replicas can tail the log without busy polling.
//   * Tail — linearizable tail query (leader, post-barrier).
//   * AcquireLease / RenewLease — leader fencing for database primaries;
//     grants are replicated kLease records, so the table survives txlogd
//     failover.
//
// Threading: the entire replica runs on one rpc::LoopThread; every member
// below is loop-thread state unless noted, enforced at runtime by
// loop_.AssertOnLoopThread() at every raft-core and handler entry point
// (common/sync.h ThreadAffinity). Cross-thread observers (tests, the stats
// banner) read the *_atomic_ mirrors.

#ifndef MEMDB_TXLOG_SERVICE_H_
#define MEMDB_TXLOG_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "rpc/channel.h"
#include "rpc/loop.h"
#include "rpc/server.h"
#include "txlog/record.h"
#include "txlog/rpc_wire.h"
#include "txlog/wire.h"

namespace memdb::txlog {

class LogService {
 public:
  struct Options {
    uint64_t node_id = 1;  // 1-based replica id (one per simulated AZ)
    std::string listen_host = "127.0.0.1";
    uint16_t listen_port = 0;  // 0 = kernel-assigned
    // Durable state directory; empty = memory-only (tests). With a data
    // dir, every append is fsynced before it counts toward the quorum.
    std::string data_dir;
    bool fsync = true;

    uint64_t heartbeat_ms = 40;
    uint64_t election_min_ms = 150;
    uint64_t election_max_ms = 300;
    uint64_t raft_rpc_timeout_ms = 150;
    size_t max_read_batch = 256;
    size_t max_append_entries = 64;
    // Cap on the (writer, request_id) idempotency table. Oldest entries are
    // evicted first; a retry arriving after its entry was evicted re-appends
    // (a duplicate), so size this to cover the longest plausible retry
    // window, not to zero. 0 = unbounded (tests).
    size_t dedup_max_entries = 65536;
    uint64_t seed = 0;  // 0 = derived from node_id
    // When set, the daemon's TraceLog is exported as JSONL (proc label
    // "txlogd-<node_id>") to this path at Stop(); the offline analogue of
    // the svc.TraceDump scrape.
    std::string trace_file;
  };

  enum class Role : uint8_t { kFollower, kCandidate, kLeader };

  explicit LogService(Options options);
  ~LogService();
  LogService(const LogService&) = delete;
  LogService& operator=(const LogService&) = delete;

  // Opens the listener (port() valid afterwards) and loads persistent
  // state. Raft stays dormant until SetPeers().
  Status Start();
  // Full membership as (node_id, "host:port"); entries matching node_id are
  // skipped. Starts the election timer — call on every replica once all
  // ports are known.
  void SetPeers(std::vector<std::pair<uint64_t, std::string>> peers);
  void Stop();

  uint16_t port() const { return port_; }
  uint64_t node_id() const { return options_.node_id; }

  // Cross-thread-safe observers.
  bool IsLeader() const {
    return role_atomic_.load(std::memory_order_acquire) ==
           static_cast<uint8_t>(Role::kLeader);
  }
  uint64_t commit_index() const {
    return commit_atomic_.load(std::memory_order_acquire);
  }
  uint64_t current_term() const {
    return term_atomic_.load(std::memory_order_acquire);
  }

  MetricsRegistry& metrics() { return metrics_; }
  rpc::FaultInjector& fault() { return server_->fault(); }
  // Thread-safe: TraceLog::Snapshot tolerates concurrent loop-thread
  // recording (lock-free slot versioning).
  const TraceLog& trace_log() const { return trace_; }

 private:
  using AckCallback = std::function<void(bool committed, uint64_t index)>;

  // --- raft core (loop thread) ---------------------------------------------
  uint64_t last_index() const { return base_index_ + log_.size(); }
  const LogEntry* EntryAt(uint64_t index) const;
  uint64_t TermAt(uint64_t index) const;
  void TruncateSuffixFrom(uint64_t index);
  // Discards entries [base+1, new_base]; caller guarantees new_base is
  // committed and applied. Persists the new base and rewrites the log file.
  void TruncatePrefixTo(uint64_t new_base);
  void DedupInsert(uint64_t writer, uint64_t request_id, uint64_t index);

  void ResetElectionTimer();
  void BecomeFollower(uint64_t term);
  void StartElection();
  void BecomeLeader();
  void HeartbeatTick();

  void AppendToLocalLog(LogRecord record);
  void BroadcastAppendEntries();
  void SendAppendEntries(uint64_t peer);
  void AdvanceCommitIndex();
  void OnCommitAdvanced();
  void FailPendingAppends();

  // --- message handlers (loop thread) --------------------------------------
  void HandleRaftVote(rpc::Server::Call&& call);
  void HandleRaftAppendEntries(rpc::Server::Call&& call);
  void HandleClientAppend(rpc::Server::Call&& call);
  void HandleReadStream(rpc::Server::Call&& call);
  void HandleTail(rpc::Server::Call&& call);
  void HandleTrim(rpc::Server::Call&& call);
  void HandleLease(rpc::Server::Call&& call, bool renew);
  void HandleMetricsScrape(rpc::Server::Call&& call);
  void HandleTraceDump(rpc::Server::Call&& call);

  std::string TraceProcLabel() const {
    return "txlogd-" + std::to_string(options_.node_id);
  }

  void ServeRead(const rpcwire::ReadStreamRequest& req,
                 rpc::Server::Call& call);
  void ApplyCommitted();
  void WakeLongPolls();

  // --- persistence (loop thread) -------------------------------------------
  Status LoadDisk();
  void PersistMeta();
  // Appends log entries [from_index, last_index()] to the log file.
  void PersistLogSuffix(uint64_t from_index);
  void RewriteLogFile();
  std::string MetaPath() const;
  std::string LogPath() const;

  void SetRole(Role role);

  Options options_;
  uint16_t port_ = 0;
  bool started_ = false;

  // Declared before raft_stats_/server_: both are constructed against this
  // registry in the member-init list.
  MetricsRegistry metrics_;
  TraceLog trace_;

  rpc::LoopThread loop_;
  std::unique_ptr<rpc::Server> server_;
  // Peer raft channels; key = peer node id.
  std::map<uint64_t, std::unique_ptr<rpc::Channel>> peer_channels_;
  std::vector<uint64_t> peer_ids_;
  rpc::RpcStats raft_stats_;

  // Persistent state (mirrored to disk when data_dir is set).
  uint64_t current_term_ = 0;
  uint64_t voted_for_ = 0;  // 0 = none
  std::deque<LogEntry> log_;
  uint64_t base_index_ = 0;
  uint64_t base_term_ = 0;
  int log_fd_ = -1;

  // Volatile raft state.
  Role role_ = Role::kFollower;
  uint64_t leader_hint_ = 0;
  uint64_t commit_index_ = 0;
  uint64_t durable_index_ = 0;
  uint64_t applied_index_ = 0;
  uint64_t election_epoch_ = 0;
  int votes_received_ = 0;
  uint64_t election_timer_ = 0;
  uint64_t heartbeat_timer_ = 0;
  uint64_t barrier_index_ = 0;
  std::map<uint64_t, uint64_t> next_index_;
  std::map<uint64_t, uint64_t> match_index_;
  std::map<uint64_t, bool> append_inflight_;

  // Client appends (and lease grants) awaiting quorum: index -> callbacks.
  std::map<uint64_t, std::vector<AckCallback>> pending_acks_;
  std::map<uint64_t, uint64_t> append_received_at_us_;

  // Idempotency: (writer, request_id) -> log index, maintained with the
  // in-memory log (inserted on append, removed on suffix truncation) and
  // bounded by options_.dedup_max_entries: dedup_order_ records insertion
  // order, and the oldest entries are evicted once the map exceeds the cap.
  // An order slot whose (key -> index) mapping was since replaced or erased
  // is skipped at eviction time, so re-inserted keys get a fresh lifetime.
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> dedup_;
  std::deque<std::pair<std::pair<uint64_t, uint64_t>, uint64_t>> dedup_order_;

  // Long-poll readers parked until commit reaches from_index.
  struct Waiter {
    uint64_t id = 0;
    rpcwire::ReadStreamRequest req;
    rpc::Server::Call call;
    uint64_t timer_id = 0;
  };
  std::map<uint64_t, Waiter> read_waiters_;
  uint64_t next_waiter_id_ = 1;

  // Lease table derived from committed kLease records.
  struct Lease {
    uint64_t owner = 0;
    uint64_t expiry_ms = 0;  // local steady clock at apply + duration
  };
  std::map<std::string, Lease> leases_;
  // Leader-only: grants appended but not yet applied. Arbitration must see
  // these too, or two contenders racing AcquireLease in the commit window
  // would BOTH be granted (both see the stale committed table). Latest grant
  // per shard; cleared when its record applies and on step-down.
  std::map<std::string, Lease> pending_leases_;

  Rng rng_;

  // Cross-thread mirrors.
  std::atomic<uint8_t> role_atomic_{0};
  std::atomic<uint64_t> commit_atomic_{0};
  std::atomic<uint64_t> term_atomic_{0};

  // Observability (instruments created in the constructor).
  Counter* elections_started_ = nullptr;
  Counter* leader_elected_ = nullptr;
  Counter* client_appends_ = nullptr;
  Counter* dedup_hits_ = nullptr;
  Counter* dedup_evictions_ = nullptr;
  Counter* trims_ = nullptr;
  Counter* entries_replicated_ = nullptr;
  Counter* fsyncs_ = nullptr;
  Gauge* dedup_entries_gauge_ = nullptr;
  Gauge* base_index_gauge_ = nullptr;
  Gauge* term_gauge_ = nullptr;
  Gauge* commit_gauge_ = nullptr;
  Gauge* role_gauge_ = nullptr;
  Gauge* read_waiters_gauge_ = nullptr;
  Histogram* commit_latency_ = nullptr;
  Histogram* fsync_us_ = nullptr;
};

}  // namespace memdb::txlog

#endif  // MEMDB_TXLOG_SERVICE_H_
