// TxLogClient: the database node's handle to one shard's transaction log.
// Wraps leader discovery, redirects, bounded retries, and the append
// indeterminacy contract:
//
//   OK               -> entry committed at `index`
//   ConditionFailed  -> precondition stale; `index` holds the actual tail
//   Unavailable      -> determinate failure (entry NOT appended)
//   TimedOut         -> INDETERMINATE: the entry may or may not have been
//                       committed; the caller must resolve by reading the
//                       log (MemoryDB nodes match on writer/request_id)
//
// This is the §3.2 boundary: a write whose commit is not acknowledged must
// not become visible, so the caller keeps replies blocked until resolution.

#ifndef MEMDB_TXLOG_CLIENT_H_
#define MEMDB_TXLOG_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/actor.h"
#include "txlog/record.h"
#include "txlog/wire.h"

namespace memdb::txlog {

class TxLogClient {
 public:
  using AppendCallback = std::function<void(const Status&, uint64_t index)>;
  using ReadCallback =
      std::function<void(const Status&, const wire::ClientReadResponse&)>;
  using TailCallback =
      std::function<void(const Status&, const wire::ClientTailResponse&)>;

  struct Options {
    sim::Duration rpc_timeout = 150 * sim::kMs;
    sim::Duration retry_backoff = 20 * sim::kMs;
    int max_attempts = 8;
  };

  TxLogClient() = default;
  TxLogClient(sim::Actor* owner, std::vector<sim::NodeId> replicas);
  TxLogClient(sim::Actor* owner, std::vector<sim::NodeId> replicas,
              Options options);

  bool valid() const { return owner_ != nullptr; }

  // Conditional append (wire::kUnconditional skips the precondition).
  void Append(uint64_t prev_index, LogRecord record, AppendCallback cb);

  // Committed entries from `from_index`, served by any replica.
  void Read(uint64_t from_index, uint64_t max_count, ReadCallback cb);

  // Linearizable tail query (leader only).
  void Tail(TailCallback cb);

  // Compaction hint; best-effort fan-out to every replica.
  void Trim(uint64_t upto_index);

  const std::vector<sim::NodeId>& replicas() const { return replicas_; }

 private:
  sim::NodeId PickTarget();
  void AppendAttempt(uint64_t prev_index, const LogRecord& record,
                     AppendCallback cb, int attempts_left, bool sent_once);
  void ResolveAppend(uint64_t prev_index, const LogRecord& record,
                     uint64_t tail, AppendCallback cb);
  void TailAttempt(TailCallback cb, int attempts_left);

  sim::Actor* owner_ = nullptr;
  std::vector<sim::NodeId> replicas_;
  Options options_;
  sim::NodeId leader_hint_ = sim::kInvalidNode;
  size_t round_robin_ = 0;
};

}  // namespace memdb::txlog

#endif  // MEMDB_TXLOG_CLIENT_H_
