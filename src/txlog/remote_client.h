// txlog::RemoteClient: the database node's handle to an out-of-process
// transaction-log group (a set of memorydb-txlogd endpoints), speaking the
// rpc frame protocol. It mirrors TxLogClient's contract over real sockets:
//
//   OK               -> entry committed at `index`
//   ConditionFailed  -> precondition stale; `index` holds the actual tail
//   Unavailable      -> determinate failure (entry NOT appended)
//   TimedOut         -> INDETERMINATE after retries: the entry may or may
//                       not have committed; the caller must keep the client
//                       reply blocked and resolve by reading the log
//
// Retry machinery:
//   * leader redirects — kNotLeader carries the leader's node id (1-based
//     position in the endpoint list); redirects are bounded per operation
//     (max_redirects) and don't burn backoff.
//   * exponential backoff with jitter — delay = min(cap, base << attempt)
//     scaled by uniform [0.5, 1.0), so a fleet of retrying nodes doesn't
//     thundering-herd a recovering leader.
//   * idempotent retries — every attempt of one Append carries the same
//     (writer, request_id); the daemon's dedup table maps a retried append
//     whose first ack was lost back to the original log index, so retries
//     can never double-commit.
//
// Async callbacks run on the client's LoopThread; *Sync wrappers block the
// calling thread (never call them from the loop thread).

#ifndef MEMDB_TXLOG_REMOTE_CLIENT_H_
#define MEMDB_TXLOG_REMOTE_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/trace.h"
#include "rpc/channel.h"
#include "rpc/loop.h"
#include "txlog/record.h"
#include "txlog/rpc_wire.h"
#include "txlog/wire.h"

namespace memdb::txlog {

class RemoteClient {
 public:
  using AppendCallback = std::function<void(const Status&, uint64_t index)>;
  using ReadCallback =
      std::function<void(const Status&, const wire::ClientReadResponse&)>;
  using TailCallback =
      std::function<void(const Status&, const wire::ClientTailResponse&)>;
  using LeaseCallback =
      std::function<void(const Status&, const rpcwire::LeaseResponse&)>;
  // first_index = highest "first index still present" among replicas that
  // answered (how far trimming actually got).
  using TrimCallback = std::function<void(const Status&, uint64_t first_index)>;

  struct Options {
    uint64_t writer_id = 0;  // stamped into records whose writer is 0
    uint64_t rpc_timeout_ms = 300;
    uint64_t backoff_base_ms = 20;
    uint64_t backoff_cap_ms = 1000;
    int max_attempts = 8;
    int max_redirects = 4;  // bounded leader-chase per operation
    uint64_t seed = 0;      // jitter rng; 0 = derived from writer_id
    // Optional write-path tracing: traced calls record rpc.send/rpc.recv
    // spans into this log (owned by the embedding process).
    TraceLog* trace = nullptr;
  };

  // Endpoints as "host:port"; position i serves txlogd node id i+1 (that is
  // how kNotLeader hints resolve to an endpoint). `registry` (optional)
  // receives rpc_requests_total / rpc_errors_total / rpc_rtt_us /
  // rpc_inflight plus txlog_retries_total / txlog_redirects_total.
  RemoteClient(rpc::LoopThread* loop, std::vector<std::string> endpoints,
               Options options, MetricsRegistry* registry = nullptr);
  ~RemoteClient();
  RemoteClient(const RemoteClient&) = delete;
  RemoteClient& operator=(const RemoteClient&) = delete;

  // Must be called before destruction while the loop still runs.
  void Shutdown();

  // --- async API (callbacks on the loop thread) ----------------------------
  void Append(uint64_t prev_index, LogRecord record, AppendCallback cb);
  void Read(uint64_t from_index, uint64_t max_count, uint64_t wait_ms,
            ReadCallback cb);
  void Tail(TailCallback cb);
  void AcquireLease(uint64_t owner, uint64_t duration_ms, std::string shard,
                    LeaseCallback cb);
  void RenewLease(uint64_t owner, uint64_t duration_ms, std::string shard,
                  LeaseCallback cb);
  // Broadcasts the trim hint to every endpoint (each replica bounds it by
  // its own commit). Best-effort: OK if at least one replica answered.
  void Trim(uint64_t upto_index, TrimCallback cb);

  // --- blocking wrappers (not from the loop thread) ------------------------
  Status AppendSync(uint64_t prev_index, LogRecord record, uint64_t* index);
  Status ReadSync(uint64_t from_index, uint64_t max_count, uint64_t wait_ms,
                  wire::ClientReadResponse* out);
  Status TailSync(wire::ClientTailResponse* out);
  Status AcquireLeaseSync(uint64_t owner, uint64_t duration_ms,
                          std::string shard, rpcwire::LeaseResponse* out);
  Status RenewLeaseSync(uint64_t owner, uint64_t duration_ms,
                        std::string shard, rpcwire::LeaseResponse* out);
  Status TrimSync(uint64_t upto_index, uint64_t* first_index);

  // Allocates a writer-unique request id (thread-safe); used to stamp
  // records before Append so retries stay idempotent.
  uint64_t NextRequestId() {
    return next_request_id_.fetch_add(1, std::memory_order_relaxed);
  }

  size_t endpoint_count() const { return channels_.size(); }

  // Test hook, fired on the loop thread before every backoff sleep with the
  // attempt ordinal and the jittered delay actually scheduled.
  std::function<void(int attempt, uint64_t delay_ms)> backoff_hook;

 private:
  struct LeaderOp;  // one leader-directed operation's retry state

  rpc::Channel* ChannelFor(size_t index) { return channels_[index].get(); }
  size_t PickTarget();  // leader hint if known, else round-robin
  uint64_t BackoffMs(int attempt);

  void StartLeaderOp(std::shared_ptr<LeaderOp> op);
  void FinishAttempt(std::shared_ptr<LeaderOp> op, Status status,
                     std::string payload);
  void RetryLater(std::shared_ptr<LeaderOp> op);

  void ReadAttempt(uint64_t from_index, uint64_t max_count, uint64_t wait_ms,
                   ReadCallback cb, int attempts_left);
  void LeaseCall(const char* method, uint64_t owner, uint64_t duration_ms,
                 std::string shard, LeaseCallback cb);

  rpc::LoopThread* const loop_;
  Options options_;
  std::unique_ptr<rpc::RpcStats> stats_;
  std::vector<std::unique_ptr<rpc::Channel>> channels_;
  Counter* retries_ = nullptr;
  Counter* redirects_ = nullptr;

  // Loop-thread state.
  size_t leader_hint_ = SIZE_MAX;  // endpoint index
  size_t round_robin_ = 0;
  Rng rng_;

  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<bool> shutdown_{false};
};

}  // namespace memdb::txlog

#endif  // MEMDB_TXLOG_REMOTE_CLIENT_H_
