// Wire formats for transaction-log RPCs (internal Raft traffic and the
// client-facing service API). Shared by RaftReplica and TxLogClient.

#ifndef MEMDB_TXLOG_WIRE_H_
#define MEMDB_TXLOG_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/coding.h"
#include "sim/types.h"
#include "txlog/record.h"

namespace memdb::txlog::wire {

// Message type strings.
inline constexpr char kVoteReq[] = "raft.vote";
inline constexpr char kAppendEntriesReq[] = "raft.append_entries";
inline constexpr char kClientAppend[] = "txlog.append";
inline constexpr char kClientRead[] = "txlog.read";
inline constexpr char kClientTail[] = "txlog.tail";
inline constexpr char kClientTrim[] = "txlog.trim";

// Outcome of a client-facing operation.
enum class ClientResult : uint8_t {
  kOk = 0,
  kConditionFailed = 1,  // precondition index was stale
  kNotLeader = 2,        // retry at leader_hint
  kUnavailable = 3,      // election in progress / barrier pending
};

struct VoteRequest {
  uint64_t term = 0;
  sim::NodeId candidate = sim::kInvalidNode;
  uint64_t last_log_index = 0;
  uint64_t last_log_term = 0;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, term);
    PutVarint64(&out, candidate);
    PutVarint64(&out, last_log_index);
    PutVarint64(&out, last_log_term);
    return out;
  }
  static bool Decode(Slice data, VoteRequest* out) {
    Decoder dec(data);
    uint64_t cand;
    if (!dec.GetVarint64(&out->term) || !dec.GetVarint64(&cand) ||
        !dec.GetVarint64(&out->last_log_index) ||
        !dec.GetVarint64(&out->last_log_term)) {
      return false;
    }
    out->candidate = static_cast<sim::NodeId>(cand);
    return true;
  }
};

struct VoteResponse {
  uint64_t term = 0;
  bool granted = false;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, term);
    PutVarint64(&out, granted ? 1 : 0);
    return out;
  }
  static bool Decode(Slice data, VoteResponse* out) {
    Decoder dec(data);
    uint64_t g;
    if (!dec.GetVarint64(&out->term) || !dec.GetVarint64(&g)) return false;
    out->granted = g != 0;
    return true;
  }
};

struct AppendEntriesRequest {
  uint64_t term = 0;
  sim::NodeId leader = sim::kInvalidNode;
  uint64_t prev_index = 0;
  uint64_t prev_term = 0;
  uint64_t commit_index = 0;
  std::vector<LogEntry> entries;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, term);
    PutVarint64(&out, leader);
    PutVarint64(&out, prev_index);
    PutVarint64(&out, prev_term);
    PutVarint64(&out, commit_index);
    PutVarint64(&out, entries.size());
    for (const LogEntry& e : entries) e.EncodeTo(&out);
    return out;
  }
  static bool Decode(Slice data, AppendEntriesRequest* out) {
    Decoder dec(data);
    uint64_t leader, count;
    if (!dec.GetVarint64(&out->term) || !dec.GetVarint64(&leader) ||
        !dec.GetVarint64(&out->prev_index) ||
        !dec.GetVarint64(&out->prev_term) ||
        !dec.GetVarint64(&out->commit_index) || !dec.GetVarint64(&count)) {
      return false;
    }
    out->leader = static_cast<sim::NodeId>(leader);
    out->entries.resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      if (!LogEntry::DecodeFrom(&dec, &out->entries[i])) return false;
    }
    return true;
  }
};

struct AppendEntriesResponse {
  uint64_t term = 0;
  bool success = false;
  uint64_t match_index = 0;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, term);
    PutVarint64(&out, success ? 1 : 0);
    PutVarint64(&out, match_index);
    return out;
  }
  static bool Decode(Slice data, AppendEntriesResponse* out) {
    Decoder dec(data);
    uint64_t s;
    if (!dec.GetVarint64(&out->term) || !dec.GetVarint64(&s) ||
        !dec.GetVarint64(&out->match_index)) {
      return false;
    }
    out->success = s != 0;
    return true;
  }
};

// Conditional append. prev_index == kUnconditional skips the CAS check.
inline constexpr uint64_t kUnconditional = ~0ULL;

struct ClientAppendRequest {
  uint64_t prev_index = kUnconditional;
  LogRecord record;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, prev_index);
    record.EncodeTo(&out);
    return out;
  }
  static bool Decode(Slice data, ClientAppendRequest* out) {
    Decoder dec(data);
    return dec.GetVarint64(&out->prev_index) &&
           LogRecord::DecodeFrom(&dec, &out->record);
  }
};

struct ClientAppendResponse {
  ClientResult result = ClientResult::kUnavailable;
  uint64_t index = 0;      // assigned index on kOk; current tail on CAS fail
  sim::NodeId leader_hint = sim::kInvalidNode;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, static_cast<uint64_t>(result));
    PutVarint64(&out, index);
    PutVarint64(&out, leader_hint);
    return out;
  }
  static bool Decode(Slice data, ClientAppendResponse* out) {
    Decoder dec(data);
    uint64_t r, hint;
    if (!dec.GetVarint64(&r) || !dec.GetVarint64(&out->index) ||
        !dec.GetVarint64(&hint)) {
      return false;
    }
    out->result = static_cast<ClientResult>(r);
    out->leader_hint = static_cast<sim::NodeId>(hint);
    return true;
  }
};

struct ClientReadRequest {
  uint64_t from_index = 1;
  uint64_t max_count = 64;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, from_index);
    PutVarint64(&out, max_count);
    return out;
  }
  static bool Decode(Slice data, ClientReadRequest* out) {
    Decoder dec(data);
    return dec.GetVarint64(&out->from_index) &&
           dec.GetVarint64(&out->max_count);
  }
};

struct ClientReadResponse {
  std::vector<LogEntry> entries;
  uint64_t commit_index = 0;
  // First index still present (reads below this hit truncated history and
  // the reader must restore from a snapshot instead).
  uint64_t first_index = 1;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, entries.size());
    for (const LogEntry& e : entries) e.EncodeTo(&out);
    PutVarint64(&out, commit_index);
    PutVarint64(&out, first_index);
    return out;
  }
  static bool Decode(Slice data, ClientReadResponse* out) {
    Decoder dec(data);
    uint64_t count;
    if (!dec.GetVarint64(&count)) return false;
    out->entries.resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      if (!LogEntry::DecodeFrom(&dec, &out->entries[i])) return false;
    }
    return dec.GetVarint64(&out->commit_index) &&
           dec.GetVarint64(&out->first_index);
  }
};

struct ClientTailResponse {
  ClientResult result = ClientResult::kUnavailable;
  uint64_t commit_index = 0;
  uint64_t last_index = 0;
  sim::NodeId leader_hint = sim::kInvalidNode;
  // Log consumers the answering replica can observe: readers currently
  // parked in its long-poll table. A lower bound — reads round-robin across
  // replicas, so each replica sees only its own followers.
  uint64_t consumers = 0;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, static_cast<uint64_t>(result));
    PutVarint64(&out, commit_index);
    PutVarint64(&out, last_index);
    PutVarint64(&out, leader_hint);
    PutVarint64(&out, consumers);
    return out;
  }
  static bool Decode(Slice data, ClientTailResponse* out) {
    Decoder dec(data);
    uint64_t r, hint;
    if (!dec.GetVarint64(&r) || !dec.GetVarint64(&out->commit_index) ||
        !dec.GetVarint64(&out->last_index) || !dec.GetVarint64(&hint)) {
      return false;
    }
    out->result = static_cast<ClientResult>(r);
    out->leader_hint = static_cast<sim::NodeId>(hint);
    // Absent in encodings from the simulation path; default 0.
    if (!dec.GetVarint64(&out->consumers)) out->consumers = 0;
    return true;
  }
};

}  // namespace memdb::txlog::wire

#endif  // MEMDB_TXLOG_WIRE_H_
