// Log record and entry types for the transaction log service.
//
// The service stores opaque, typed records. MemoryDB layers meaning on top:
// data records carry chunks of the replication stream; leadership and lease
// records implement the paper's §4.1 election; checksum records implement
// the §7.2.1 verification chain; slot-ownership records implement the §5.2
// 2PC migration protocol.

#ifndef MEMDB_TXLOG_RECORD_H_
#define MEMDB_TXLOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/status.h"

namespace memdb::txlog {

enum class RecordType : uint8_t {
  kNoop = 0,        // internal barrier appended by a new log-service leader
  kData = 1,        // replication-stream chunk
  kLeadership = 2,  // DB leader election claim (§4.1.1)
  kLease = 3,       // DB lease renewal / heartbeat (§4.1.3, §4.2)
  kChecksum = 4,    // running-checksum injection (§7.2.1)
  kSlotOwnership = 5,  // 2PC slot ownership transfer message (§5.2)
};

struct LogRecord {
  RecordType type = RecordType::kData;
  // Identity of the database node that appended the record (its sim NodeId);
  // 0 for service-internal records.
  uint64_t writer = 0;
  // Writer-local unique id; lets a writer resolve indeterminate appends by
  // re-reading the log after a timeout.
  uint64_t request_id = 0;
  // Write-path trace context (common/trace.h); 0 for untraced records. Log
  // replicas stamp their append/durability/commit stages under this id so a
  // write's causal chain spans the node and the log service.
  uint64_t trace_id = 0;
  std::string payload;

  void EncodeTo(std::string* out) const {
    out->push_back(static_cast<char>(type));
    PutVarint64(out, writer);
    PutVarint64(out, request_id);
    PutVarint64(out, trace_id);
    PutLengthPrefixed(out, payload);
  }

  static bool DecodeFrom(Decoder* dec, LogRecord* out) {
    uint64_t type_raw;
    if (!dec->GetVarint64(&type_raw) || type_raw > 5) return false;
    out->type = static_cast<RecordType>(type_raw);
    return dec->GetVarint64(&out->writer) &&
           dec->GetVarint64(&out->request_id) &&
           dec->GetVarint64(&out->trace_id) &&
           dec->GetLengthPrefixed(&out->payload);
  }
};

// A committed log entry as seen by readers. `index` is the client-visible
// entry identifier used in conditional-append preconditions.
struct LogEntry {
  uint64_t term = 0;
  uint64_t index = 0;
  LogRecord record;

  void EncodeTo(std::string* out) const {
    PutVarint64(out, term);
    PutVarint64(out, index);
    record.EncodeTo(out);
  }

  static bool DecodeFrom(Decoder* dec, LogEntry* out) {
    return dec->GetVarint64(&out->term) && dec->GetVarint64(&out->index) &&
           LogRecord::DecodeFrom(dec, &out->record);
  }
};

}  // namespace memdb::txlog

#endif  // MEMDB_TXLOG_RECORD_H_
