// Wire messages for the out-of-process transaction-log service
// (memorydb-txlogd), carried as rpc frame payloads. The client-facing
// append/read/tail bodies reuse txlog/wire.h encodings; this header adds
// the service method names, the long-poll ReadStream request, and the
// lease (leader fencing) API.

#ifndef MEMDB_TXLOG_RPC_WIRE_H_
#define MEMDB_TXLOG_RPC_WIRE_H_

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "txlog/wire.h"

namespace memdb::txlog::rpcwire {

// Client-facing service methods.
inline constexpr char kAppend[] = "txlog.ConditionalAppend";
inline constexpr char kRead[] = "txlog.ReadStream";
inline constexpr char kTail[] = "txlog.Tail";
inline constexpr char kAcquireLease[] = "txlog.AcquireLease";
inline constexpr char kRenewLease[] = "txlog.RenewLease";
// Trim hint from the snapshotter (§4.2.3): history up to upto_index is
// covered by a durable snapshot and may be discarded.
inline constexpr char kTrim[] = "txlog.Trim";
// Diagnostics: Prometheus text exposition of the daemon's registry.
inline constexpr char kMetrics[] = "svc.Metrics";
// Diagnostics: JSONL dump of the daemon's TraceLog (common/trace_export.h
// line format); the scrape analogue of the server's RESP `TRACE DUMP`.
inline constexpr char kTraceDump[] = "svc.TraceDump";
// Replica-internal raft traffic (leader election / replication).
inline constexpr char kRaftVote[] = "raft.Vote";
inline constexpr char kRaftAppendEntries[] = "raft.AppendEntries";

// ReadStream: committed entries from from_index. wait_ms > 0 turns the call
// into a long poll — a replica with no entries at from_index holds the
// response until its commit index reaches from_index or wait_ms elapses
// (then answers empty). This is how replicas follow the log over the wire
// without a tight poll loop.
struct ReadStreamRequest {
  uint64_t from_index = 1;
  uint64_t max_count = 64;
  uint64_t wait_ms = 0;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, from_index);
    PutVarint64(&out, max_count);
    PutVarint64(&out, wait_ms);
    return out;
  }
  static bool Decode(Slice data, ReadStreamRequest* out) {
    Decoder dec(data);
    return dec.GetVarint64(&out->from_index) &&
           dec.GetVarint64(&out->max_count) &&
           dec.GetVarint64(&out->wait_ms);
  }
};

// Trim: each replica discards committed history up to upto_index, bounded
// by what it can safely drop (its own commit index; the leader additionally
// keeps everything a lagging follower still needs, since there is no
// snapshot-install path). Always answered by the receiving replica — the
// client broadcasts the hint to the whole group.
struct TrimRequest {
  uint64_t upto_index = 0;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, upto_index);
    return out;
  }
  static bool Decode(Slice data, TrimRequest* out) {
    Decoder dec(data);
    return dec.GetVarint64(&out->upto_index);
  }
};

struct TrimResponse {
  // First index still present after the trim (base + 1).
  uint64_t first_index = 1;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, first_index);
    return out;
  }
  static bool Decode(Slice data, TrimResponse* out) {
    Decoder dec(data);
    return dec.GetVarint64(&out->first_index);
  }
};

// AcquireLease/RenewLease: leader fencing for database primaries (§4.1).
// Lease grants are replicated through the log as kLease records, so the
// lease table survives txlogd leader failover; only the txlogd leader
// evaluates expiry (against its own clock).
struct LeaseRequest {
  uint64_t owner = 0;        // database node identity (writer id)
  uint64_t duration_ms = 0;  // requested validity window
  std::string shard_id;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, owner);
    PutVarint64(&out, duration_ms);
    PutLengthPrefixed(&out, shard_id);
    return out;
  }
  static bool Decode(Slice data, LeaseRequest* out) {
    Decoder dec(data);
    return dec.GetVarint64(&out->owner) &&
           dec.GetVarint64(&out->duration_ms) &&
           dec.GetLengthPrefixed(&out->shard_id);
  }
};

struct LeaseResponse {
  wire::ClientResult result = wire::ClientResult::kUnavailable;
  uint64_t holder = 0;        // current holder on kConditionFailed
  uint64_t remaining_ms = 0;  // holder's remaining validity on rejection
  uint64_t index = 0;         // log index of the granting record on kOk
  uint64_t leader_hint = 0;   // txlogd node id to retry at on kNotLeader

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, static_cast<uint64_t>(result));
    PutVarint64(&out, holder);
    PutVarint64(&out, remaining_ms);
    PutVarint64(&out, index);
    PutVarint64(&out, leader_hint);
    return out;
  }
  static bool Decode(Slice data, LeaseResponse* out) {
    Decoder dec(data);
    uint64_t r;
    if (!dec.GetVarint64(&r) || !dec.GetVarint64(&out->holder) ||
        !dec.GetVarint64(&out->remaining_ms) ||
        !dec.GetVarint64(&out->index) ||
        !dec.GetVarint64(&out->leader_hint)) {
      return false;
    }
    out->result = static_cast<wire::ClientResult>(r);
    return true;
  }
};

// Payload of a replicated kLease record.
struct LeaseGrant {
  uint64_t owner = 0;
  uint64_t duration_ms = 0;
  std::string shard_id;

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, owner);
    PutVarint64(&out, duration_ms);
    PutLengthPrefixed(&out, shard_id);
    return out;
  }
  static bool Decode(Slice data, LeaseGrant* out) {
    Decoder dec(data);
    return dec.GetVarint64(&out->owner) &&
           dec.GetVarint64(&out->duration_ms) &&
           dec.GetLengthPrefixed(&out->shard_id);
  }
};

}  // namespace memdb::txlog::rpcwire

#endif  // MEMDB_TXLOG_RPC_WIRE_H_
