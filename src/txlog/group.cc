#include "txlog/group.h"

namespace memdb::txlog {

LogGroup::LogGroup(sim::Simulation* sim, RaftOptions options) : sim_(sim) {
  for (sim::AzId az = 0; az < sim::kNumAzs; ++az) {
    ids_.push_back(sim->AddHost(az));
  }
  for (size_t i = 0; i < ids_.size(); ++i) {
    std::vector<sim::NodeId> peers;
    for (size_t j = 0; j < ids_.size(); ++j) {
      if (j != i) peers.push_back(ids_[j]);
    }
    states_.push_back(std::make_shared<RaftPersistentState>());
    replicas_.push_back(std::make_unique<RaftReplica>(
        sim, ids_[i], std::move(peers), states_.back(), options));
  }
}

RaftReplica* LogGroup::Leader() {
  for (auto& r : replicas_) {
    if (sim_->IsAlive(r->id()) && r->IsLeader()) return r.get();
  }
  return nullptr;
}

uint64_t LogGroup::CommitIndex() {
  uint64_t max_commit = 0;
  for (auto& r : replicas_) {
    if (sim_->IsAlive(r->id())) {
      max_commit = std::max(max_commit, r->commit_index());
    }
  }
  return max_commit;
}

void LogGroup::Crash(size_t i) { sim_->Crash(ids_[i]); }
void LogGroup::Restart(size_t i) { sim_->Restart(ids_[i]); }

}  // namespace memdb::txlog
