// memorydb-txlogd: standalone transaction-log daemon — one raft replica of
// the durable multi-AZ log (paper §3.1), run as its own process (one per
// simulated AZ). Database nodes reach it through txlog::RemoteClient.
//
//   memorydb-txlogd --node-id N --peers HOST:PORT,HOST:PORT,...
//                   [--bind ADDR] [--port N] [--data-dir PATH] [--no-fsync]
//                   [--dedup-max N] [--heartbeat-ms N] [--election-min-ms N]
//                   [--election-max-ms N] [--trace-file PATH]
//
// --peers lists the FULL group membership (including this node) in node-id
// order: entry i serves node id i+1. --node-id selects which entry is this
// process; its port is taken from that entry unless --port overrides it.
// With a --data-dir, appends are fsynced before they count toward the
// commit quorum; without one the replica is memory-only (tests/demos).
//
// Runs until SIGINT/SIGTERM.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "txlog/service.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

bool ParseUint(const char* s, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

std::vector<std::string> SplitList(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --node-id N --peers HOST:PORT,HOST:PORT,...\n"
               "          [--bind ADDR] [--port N] [--data-dir PATH]\n"
               "          [--no-fsync] [--dedup-max N] [--heartbeat-ms N]\n"
               "          [--election-min-ms N] [--election-max-ms N]\n"
               "          [--trace-file PATH]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  memdb::txlog::LogService::Options options;
  options.node_id = 0;
  std::vector<std::string> peers;
  bool port_overridden = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    uint64_t v = 0;
    if (arg == "--node-id" && has_value && ParseUint(argv[++i], &v) && v > 0) {
      options.node_id = v;
    } else if (arg == "--peers" && has_value) {
      peers = SplitList(argv[++i]);
    } else if (arg == "--bind" && has_value) {
      options.listen_host = argv[++i];
    } else if (arg == "--port" && has_value && ParseUint(argv[++i], &v) &&
               v <= 65535) {
      options.listen_port = static_cast<uint16_t>(v);
      port_overridden = true;
    } else if (arg == "--data-dir" && has_value) {
      options.data_dir = argv[++i];
    } else if (arg == "--no-fsync") {
      options.fsync = false;
    } else if (arg == "--dedup-max" && has_value && ParseUint(argv[++i], &v)) {
      options.dedup_max_entries = v;
    } else if (arg == "--heartbeat-ms" && has_value &&
               ParseUint(argv[++i], &v) && v > 0) {
      options.heartbeat_ms = v;
    } else if (arg == "--election-min-ms" && has_value &&
               ParseUint(argv[++i], &v) && v > 0) {
      options.election_min_ms = v;
    } else if (arg == "--election-max-ms" && has_value &&
               ParseUint(argv[++i], &v) && v > 0) {
      options.election_max_ms = v;
    } else if (arg == "--trace-file" && has_value) {
      options.trace_file = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.node_id == 0 || peers.empty() ||
      options.node_id > peers.size() ||
      options.election_min_ms > options.election_max_ms) {
    return Usage(argv[0]);
  }

  // This node's listen port defaults to its own --peers entry.
  if (!port_overridden) {
    const std::string& self = peers[options.node_id - 1];
    const size_t colon = self.rfind(':');
    uint64_t p = 0;
    if (colon == std::string::npos ||
        !ParseUint(self.c_str() + colon + 1, &p) || p > 65535) {
      std::fprintf(stderr, "memorydb-txlogd: bad self endpoint '%s'\n",
                   self.c_str());
      return 2;
    }
    options.listen_port = static_cast<uint16_t>(p);
  }

  memdb::txlog::LogService service(options);
  const memdb::Status s = service.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "memorydb-txlogd: %s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<std::pair<uint64_t, std::string>> membership;
  for (size_t i = 0; i < peers.size(); ++i) {
    membership.emplace_back(static_cast<uint64_t>(i + 1), peers[i]);
  }
  service.SetPeers(std::move(membership));

  std::printf(
      "memorydb-txlogd node %llu listening on %s:%u (%zu-replica group%s%s)\n",
      static_cast<unsigned long long>(options.node_id),
      options.listen_host.c_str(), service.port(), peers.size(),
      options.data_dir.empty() ? ", memory-only" : ", data-dir=",
      options.data_dir.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("memorydb-txlogd node %llu: shutting down\n",
              static_cast<unsigned long long>(options.node_id));
  service.Stop();
  return 0;
}
