// RaftReplica: one member of a 3-node (one per AZ) replication group backing
// a single shard's transaction log. Implements leader election, log
// replication, and commitment with the standard Raft safety rules; on top of
// the replicated log it exposes the service API the paper describes:
//
//   - conditional append: the request names the entry id it intends to
//     follow; a stale precondition is rejected (this is what fences stale
//     DB primaries, §4.1.1),
//   - committed reads from any replica,
//   - prefix truncation (after a verified snapshot covers it).
//
// Appends are acknowledged only after a majority of AZs has the entry
// durably on "disk" (a modeled fsync latency), matching §3.1.

#ifndef MEMDB_TXLOG_RAFT_H_
#define MEMDB_TXLOG_RAFT_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "sim/actor.h"
#include "sim/queue_server.h"
#include "txlog/record.h"

namespace memdb::txlog {

struct RaftOptions {
  sim::Duration heartbeat_interval = 30 * sim::kMs;
  sim::Duration election_timeout_min = 150 * sim::kMs;
  sim::Duration election_timeout_max = 300 * sim::kMs;
  sim::Duration rpc_timeout = 60 * sim::kMs;
  // Modeled fsync cost for appending a batch to local storage.
  sim::Duration disk_write_us = 120;
  // Max entries returned by one read.
  size_t max_read_batch = 256;
};

// State that survives crash/restart of the replica process (the "disk").
struct RaftPersistentState {
  uint64_t current_term = 0;
  sim::NodeId voted_for = sim::kInvalidNode;
  // log_[i] holds the entry with index base_index + i + 1.
  std::deque<LogEntry> log;
  uint64_t base_index = 0;  // entries <= base_index have been truncated
  uint64_t base_term = 0;
};

class RaftReplica : public sim::Actor {
 public:
  enum class RaftRole { kFollower, kCandidate, kLeader };

  RaftReplica(sim::Simulation* sim, sim::NodeId id,
              std::vector<sim::NodeId> peers,  // excludes self
              std::shared_ptr<RaftPersistentState> persistent,
              RaftOptions options);

  void OnRestart() override;

  RaftRole role() const { return role_; }
  bool IsLeader() const { return role_ == RaftRole::kLeader; }
  uint64_t current_term() const { return persistent_->current_term; }
  uint64_t commit_index() const { return commit_index_; }
  uint64_t last_index() const;

  // Test/inspection helper: committed entries in [from, from+count).
  std::vector<LogEntry> CommittedEntries(uint64_t from, size_t count) const;

  // Observability: per-replica metrics (elections, per-peer replication lag,
  // append->quorum-commit latency) and the write-path span log for records
  // carrying a trace id.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const TraceLog& trace_log() const { return trace_; }

 private:
  // --- role transitions ---------------------------------------------------
  void BecomeFollower(uint64_t term);
  void StartElection();
  void BecomeLeader();
  void ResetElectionTimer();

  // --- leader operation ---------------------------------------------------
  void BroadcastAppendEntries();
  void SendAppendEntries(sim::NodeId peer);
  void AdvanceCommitIndex();
  void AppendToLocalLog(LogRecord record);
  void FailPendingAppends(const Status& status);
  void MaybeAckClients();

  // --- log access -----------------------------------------------------
  const LogEntry* EntryAt(uint64_t index) const;
  uint64_t TermAt(uint64_t index) const;
  void TruncateSuffixFrom(uint64_t index);

  // --- message handlers -----------------------------------------------
  void HandleVoteRequest(const sim::Message& m);
  void HandleAppendEntriesRequest(const sim::Message& m);
  void HandleClientAppend(const sim::Message& m);
  void HandleClientRead(const sim::Message& m);
  void HandleClientTail(const sim::Message& m);
  void HandleClientTrim(const sim::Message& m);

  std::vector<sim::NodeId> peers_;
  std::shared_ptr<RaftPersistentState> persistent_;
  RaftOptions options_;
  Rng rng_;
  sim::QueueServer disk_;

  // Volatile state.
  RaftRole role_ = RaftRole::kFollower;
  sim::NodeId leader_hint_ = sim::kInvalidNode;
  uint64_t commit_index_ = 0;
  // Durability horizon of the local log (entries fsynced so far).
  uint64_t durable_index_ = 0;
  sim::TimerHandle election_timer_;
  int votes_received_ = 0;
  uint64_t election_epoch_ = 0;  // invalidates stale vote responses
  bool heartbeat_loop_running_ = false;

  // Leader bookkeeping.
  std::map<sim::NodeId, uint64_t> next_index_;
  std::map<sim::NodeId, uint64_t> match_index_;
  std::map<sim::NodeId, bool> append_inflight_;
  // Client appends awaiting commitment: index -> request message.
  std::map<uint64_t, sim::Message> pending_appends_;
  // Index of the no-op barrier this leader appended at election; client
  // appends are deferred with Unavailable until it commits.
  uint64_t barrier_index_ = 0;

  // Observability.
  MetricsRegistry metrics_;
  TraceLog trace_;
  // Receipt time of client appends awaiting quorum, for the
  // append->commit latency histogram: index -> receipt time.
  std::map<uint64_t, sim::Time> append_received_at_;
  std::map<sim::NodeId, Gauge*> peer_lag_gauges_;
  Counter* elections_started_ = nullptr;
  Counter* leader_elected_ = nullptr;
  Counter* client_appends_ = nullptr;
  Counter* entries_replicated_ = nullptr;
  Gauge* term_gauge_ = nullptr;
  Gauge* commit_gauge_ = nullptr;
  Histogram* commit_latency_ = nullptr;
};

}  // namespace memdb::txlog

#endif  // MEMDB_TXLOG_RAFT_H_
