#include "txlog/remote_client.h"

#include <algorithm>
#include <utility>

#include "common/sync.h"

namespace memdb::txlog {

namespace {

bool SplitEndpoint(const std::string& ep, std::string* host,
                   uint16_t* port) {
  const size_t colon = ep.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= ep.size()) {
    return false;
  }
  unsigned long p = 0;
  for (size_t i = colon + 1; i < ep.size(); ++i) {
    if (ep[i] < '0' || ep[i] > '9') return false;
    p = p * 10 + static_cast<unsigned long>(ep[i] - '0');
    if (p > 65535) return false;
  }
  *host = ep.substr(0, colon);
  *port = static_cast<uint16_t>(p);
  return true;
}

}  // namespace

// One leader-directed operation (Append / Tail / lease) across its retries.
// `handle` decodes a successful RPC payload: returns true once the user
// callback ran; otherwise sets *redirect_hint (txlogd node id, 0 = none) and
// the op is retried. `fail` delivers the terminal error.
struct RemoteClient::LeaderOp {
  std::string method;
  std::string body;  // identical bytes every attempt — retries stay idempotent
  uint64_t trace_id = 0;
  uint64_t timeout_ms = 0;
  int attempts_left = 0;
  int redirects_left = 0;
  int attempt_no = 0;
  bool indeterminate = false;  // a timed-out attempt may have committed
  std::function<bool(const std::string& payload, uint64_t* redirect_hint)>
      handle;
  std::function<void(const Status&)> fail;
};

RemoteClient::RemoteClient(rpc::LoopThread* loop,
                           std::vector<std::string> endpoints, Options options,
                           MetricsRegistry* registry)
    : loop_(loop),
      options_(options),
      rng_(options.seed != 0 ? options.seed : 0x726c + options.writer_id) {
  if (registry != nullptr) {
    stats_ = std::make_unique<rpc::RpcStats>(
        registry, std::vector<std::string>{
                      rpcwire::kAppend, rpcwire::kRead, rpcwire::kTail,
                      rpcwire::kTrim, rpcwire::kAcquireLease,
                      rpcwire::kRenewLease});
    retries_ = registry->GetCounter("txlog_retries_total");
    redirects_ = registry->GetCounter("txlog_redirects_total");
  }
  for (const std::string& ep : endpoints) {
    std::string host;
    uint16_t port = 0;
    if (!SplitEndpoint(ep, &host, &port)) continue;
    channels_.push_back(
        std::make_unique<rpc::Channel>(loop_, host, port, stats_.get()));
    if (options_.trace != nullptr) {
      channels_.back()->set_trace_log(options_.trace);
    }
  }
}

RemoteClient::~RemoteClient() = default;

void RemoteClient::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& ch : channels_) ch->Shutdown();
}

size_t RemoteClient::PickTarget() {
  loop_->AssertOnLoopThread();
  if (leader_hint_ < channels_.size()) return leader_hint_;
  return round_robin_++ % channels_.size();
}

uint64_t RemoteClient::BackoffMs(int attempt) {
  uint64_t base = options_.backoff_base_ms;
  for (int i = 0; i < attempt && base < options_.backoff_cap_ms; ++i) {
    base <<= 1;
  }
  base = std::min(base, options_.backoff_cap_ms);
  // Jitter: uniform in [base/2, base) so retrying nodes decorrelate.
  const uint64_t half = std::max<uint64_t>(1, base / 2);
  return half + rng_.Uniform(half);
}

void RemoteClient::StartLeaderOp(std::shared_ptr<LeaderOp> op) {
  loop_->AssertOnLoopThread();
  if (shutdown_.load(std::memory_order_acquire) || channels_.empty()) {
    op->fail(Status::Unavailable("txlog client shut down"));
    return;
  }
  const size_t target = PickTarget();
  ChannelFor(target)->Call(
      op->method, op->body, op->timeout_ms, op->trace_id,
      [this, op](Status status, std::string payload) {
        FinishAttempt(std::move(op), std::move(status), std::move(payload));
      });
}

void RemoteClient::FinishAttempt(std::shared_ptr<LeaderOp> op, Status status,
                                 std::string payload) {
  loop_->AssertOnLoopThread();
  if (shutdown_.load(std::memory_order_acquire)) {
    op->fail(Status::Unavailable("txlog client shut down"));
    return;
  }
  if (!status.ok()) {
    if (status.IsTimedOut()) op->indeterminate = true;
    // The endpoint we trusted failed; rediscover the leader.
    leader_hint_ = SIZE_MAX;
    RetryLater(std::move(op));
    return;
  }
  uint64_t hint = 0;
  if (op->handle(payload, &hint)) return;
  if (hint >= 1 && hint <= channels_.size()) {
    if (op->redirects_left > 0) {
      --op->redirects_left;
      leader_hint_ = static_cast<size_t>(hint - 1);
      if (redirects_ != nullptr) redirects_->Increment();
      StartLeaderOp(std::move(op));  // redirects don't burn backoff
      return;
    }
    // Redirect budget exhausted (hint loop?) — fall through to backoff.
    leader_hint_ = SIZE_MAX;
  } else if (hint != 0) {
    leader_hint_ = SIZE_MAX;  // hint names an endpoint we don't know
  }
  RetryLater(std::move(op));
}

void RemoteClient::RetryLater(std::shared_ptr<LeaderOp> op) {
  loop_->AssertOnLoopThread();
  if (--op->attempts_left <= 0) {
    op->fail(op->indeterminate
                 ? Status::TimedOut("append unresolved after retries")
                 : Status::Unavailable("txlog group unreachable"));
    return;
  }
  if (retries_ != nullptr) retries_->Increment();
  const int attempt = op->attempt_no++;
  const uint64_t delay = BackoffMs(attempt);
  if (backoff_hook) backoff_hook(attempt, delay);
  loop_->After(delay, [this, op = std::move(op)]() mutable {
    StartLeaderOp(std::move(op));
  });
}

void RemoteClient::Append(uint64_t prev_index, LogRecord record,
                          AppendCallback cb) {
  // Stamp identity once; every retry reuses it, which is what lets the
  // daemon's (writer, request_id) dedup collapse duplicates.
  if (record.writer == 0) record.writer = options_.writer_id;
  if (record.request_id == 0) record.request_id = NextRequestId();

  wire::ClientAppendRequest req;
  req.prev_index = prev_index;
  req.record = std::move(record);

  auto op = std::make_shared<LeaderOp>();
  op->method = rpcwire::kAppend;
  op->trace_id = req.record.trace_id;
  op->body = req.Encode();
  op->timeout_ms = options_.rpc_timeout_ms;
  op->attempts_left = options_.max_attempts;
  op->redirects_left = options_.max_redirects;
  op->handle = [cb](const std::string& payload, uint64_t* hint) {
    wire::ClientAppendResponse resp;
    if (!wire::ClientAppendResponse::Decode(Slice(payload), &resp)) {
      cb(Status::Corruption("bad append response"), 0);
      return true;
    }
    switch (resp.result) {
      case wire::ClientResult::kOk:
        cb(Status::OK(), resp.index);
        return true;
      case wire::ClientResult::kConditionFailed:
        cb(Status::ConditionFailed("log tail moved"), resp.index);
        return true;
      case wire::ClientResult::kNotLeader:
        *hint = static_cast<uint64_t>(resp.leader_hint);
        return false;
      case wire::ClientResult::kUnavailable:
        return false;
    }
    return false;
  };
  op->fail = [cb](const Status& s) { cb(s, 0); };
  loop_->Post([this, op = std::move(op)]() mutable {
    StartLeaderOp(std::move(op));
  });
}

void RemoteClient::Tail(TailCallback cb) {
  auto op = std::make_shared<LeaderOp>();
  op->method = rpcwire::kTail;
  op->timeout_ms = options_.rpc_timeout_ms;
  op->attempts_left = options_.max_attempts;
  op->redirects_left = options_.max_redirects;
  op->handle = [cb](const std::string& payload, uint64_t* hint) {
    wire::ClientTailResponse resp;
    if (!wire::ClientTailResponse::Decode(Slice(payload), &resp)) {
      cb(Status::Corruption("bad tail response"), resp);
      return true;
    }
    switch (resp.result) {
      case wire::ClientResult::kOk:
        cb(Status::OK(), resp);
        return true;
      case wire::ClientResult::kNotLeader:
        *hint = static_cast<uint64_t>(resp.leader_hint);
        return false;
      default:
        return false;
    }
  };
  op->fail = [cb](const Status& s) {
    cb(s, wire::ClientTailResponse{});
  };
  loop_->Post([this, op = std::move(op)]() mutable {
    StartLeaderOp(std::move(op));
  });
}

void RemoteClient::LeaseCall(const char* method, uint64_t owner,
                             uint64_t duration_ms, std::string shard,
                             LeaseCallback cb) {
  rpcwire::LeaseRequest req;
  req.owner = owner != 0 ? owner : options_.writer_id;
  req.duration_ms = duration_ms;
  req.shard_id = std::move(shard);

  auto op = std::make_shared<LeaderOp>();
  op->method = method;
  op->body = req.Encode();
  op->timeout_ms = options_.rpc_timeout_ms;
  op->attempts_left = options_.max_attempts;
  op->redirects_left = options_.max_redirects;
  op->handle = [cb](const std::string& payload, uint64_t* hint) {
    rpcwire::LeaseResponse resp;
    if (!rpcwire::LeaseResponse::Decode(Slice(payload), &resp)) {
      cb(Status::Corruption("bad lease response"), resp);
      return true;
    }
    switch (resp.result) {
      case wire::ClientResult::kOk:
        cb(Status::OK(), resp);
        return true;
      case wire::ClientResult::kConditionFailed:
        cb(Status::ConditionFailed("lease held"), resp);
        return true;
      case wire::ClientResult::kNotLeader:
        *hint = resp.leader_hint;
        return false;
      case wire::ClientResult::kUnavailable:
        return false;
    }
    return false;
  };
  op->fail = [cb](const Status& s) { cb(s, rpcwire::LeaseResponse{}); };
  loop_->Post([this, op = std::move(op)]() mutable {
    StartLeaderOp(std::move(op));
  });
}

void RemoteClient::AcquireLease(uint64_t owner, uint64_t duration_ms,
                                std::string shard, LeaseCallback cb) {
  LeaseCall(rpcwire::kAcquireLease, owner, duration_ms, std::move(shard),
            std::move(cb));
}

void RemoteClient::RenewLease(uint64_t owner, uint64_t duration_ms,
                              std::string shard, LeaseCallback cb) {
  LeaseCall(rpcwire::kRenewLease, owner, duration_ms, std::move(shard),
            std::move(cb));
}

void RemoteClient::Trim(uint64_t upto_index, TrimCallback cb) {
  loop_->Post([this, upto_index, cb = std::move(cb)] {
    loop_->AssertOnLoopThread();
    if (shutdown_.load(std::memory_order_acquire) || channels_.empty()) {
      cb(Status::Unavailable("txlog client shut down"), 0);
      return;
    }
    rpcwire::TrimRequest req;
    req.upto_index = upto_index;
    const std::string body = req.Encode();
    struct Fanout {
      size_t remaining = 0;
      bool any_ok = false;
      uint64_t first_index = 0;
    };
    auto state = std::make_shared<Fanout>();
    state->remaining = channels_.size();
    for (auto& ch : channels_) {
      ch->Call(rpcwire::kTrim, body, options_.rpc_timeout_ms, 0,
               [state, cb](Status status, std::string payload) {
                 rpcwire::TrimResponse resp;
                 if (status.ok() &&
                     rpcwire::TrimResponse::Decode(Slice(payload), &resp)) {
                   state->any_ok = true;
                   state->first_index =
                       std::max(state->first_index, resp.first_index);
                 }
                 if (--state->remaining == 0) {
                   cb(state->any_ok
                          ? Status::OK()
                          : Status::Unavailable("no txlogd answered trim"),
                      state->first_index);
                 }
               });
    }
  });
}

void RemoteClient::Read(uint64_t from_index, uint64_t max_count,
                        uint64_t wait_ms, ReadCallback cb) {
  loop_->Post([this, from_index, max_count, wait_ms, cb = std::move(cb)] {
    ReadAttempt(from_index, max_count, wait_ms, std::move(cb),
                options_.max_attempts);
  });
}

void RemoteClient::ReadAttempt(uint64_t from_index, uint64_t max_count,
                               uint64_t wait_ms, ReadCallback cb,
                               int attempts_left) {
  loop_->AssertOnLoopThread();
  if (shutdown_.load(std::memory_order_acquire) || channels_.empty()) {
    cb(Status::Unavailable("txlog client shut down"),
       wire::ClientReadResponse{});
    return;
  }
  rpcwire::ReadStreamRequest req;
  req.from_index = from_index;
  req.max_count = max_count;
  req.wait_ms = wait_ms;
  // Reads are served by any replica; don't chase the leader hint.
  const size_t target = round_robin_++ % channels_.size();
  ChannelFor(target)->Call(
      rpcwire::kRead, req.Encode(), options_.rpc_timeout_ms + wait_ms, 0,
      [this, from_index, max_count, wait_ms, cb, attempts_left](
          Status status, std::string payload) {
        wire::ClientReadResponse resp;
        if (status.ok() &&
            !wire::ClientReadResponse::Decode(Slice(payload), &resp)) {
          status = Status::Corruption("bad read response");
        }
        if (status.ok()) {
          cb(status, resp);
          return;
        }
        if (attempts_left <= 1) {
          cb(status, resp);
          return;
        }
        if (retries_ != nullptr) retries_->Increment();
        const int attempt = options_.max_attempts - attempts_left;
        const uint64_t delay = BackoffMs(attempt);
        if (backoff_hook) backoff_hook(attempt, delay);
        loop_->After(delay, [this, from_index, max_count, wait_ms, cb,
                             attempts_left] {
          ReadAttempt(from_index, max_count, wait_ms, cb, attempts_left - 1);
        });
      });
}

// --- blocking wrappers -----------------------------------------------------

namespace {

// One-shot rendezvous between a loop-thread callback and a blocked caller.
template <typename T>
struct SyncSlot {
  Mutex mu;
  CondVar cv;
  bool done GUARDED_BY(mu) = false;
  Status status GUARDED_BY(mu) = Status::OK();
  T value GUARDED_BY(mu){};

  void Set(const Status& s, T v) {
    MutexLock lock(&mu);
    status = s;
    value = std::move(v);
    done = true;
    cv.Signal();
  }
  // lint:off-loop -- the blocking half of the sync API below; only ever
  // entered from a non-loop caller thread.
  Status Wait(T* out) {
    MutexLock lock(&mu);
    while (!done) cv.Wait(&mu);
    if (out != nullptr) *out = std::move(value);
    return status;
  }
};

}  // namespace

// lint:off-loop -- blocking sync wrapper for non-loop callers
// (tests, restore, the offbox runner); parks on SyncSlot::Wait.
Status RemoteClient::AppendSync(uint64_t prev_index, LogRecord record,
                                uint64_t* index) {
  auto slot = std::make_shared<SyncSlot<uint64_t>>();
  Append(prev_index, std::move(record),
         [slot](const Status& s, uint64_t idx) { slot->Set(s, idx); });
  return slot->Wait(index);
}

// lint:off-loop -- blocking sync wrapper for non-loop callers
// (tests, restore, the offbox runner); parks on SyncSlot::Wait.
Status RemoteClient::ReadSync(uint64_t from_index, uint64_t max_count,
                              uint64_t wait_ms,
                              wire::ClientReadResponse* out) {
  auto slot = std::make_shared<SyncSlot<wire::ClientReadResponse>>();
  Read(from_index, max_count, wait_ms,
       [slot](const Status& s, const wire::ClientReadResponse& r) {
         slot->Set(s, r);
       });
  return slot->Wait(out);
}

// lint:off-loop -- blocking sync wrapper for non-loop callers
// (tests, restore, the offbox runner); parks on SyncSlot::Wait.
Status RemoteClient::TailSync(wire::ClientTailResponse* out) {
  auto slot = std::make_shared<SyncSlot<wire::ClientTailResponse>>();
  Tail([slot](const Status& s, const wire::ClientTailResponse& r) {
    slot->Set(s, r);
  });
  return slot->Wait(out);
}

// lint:off-loop -- blocking sync wrapper for non-loop callers
// (tests, restore, the offbox runner); parks on SyncSlot::Wait.
Status RemoteClient::AcquireLeaseSync(uint64_t owner, uint64_t duration_ms,
                                      std::string shard,
                                      rpcwire::LeaseResponse* out) {
  auto slot = std::make_shared<SyncSlot<rpcwire::LeaseResponse>>();
  AcquireLease(owner, duration_ms, std::move(shard),
               [slot](const Status& s, const rpcwire::LeaseResponse& r) {
                 slot->Set(s, r);
               });
  return slot->Wait(out);
}

// lint:off-loop -- blocking sync wrapper for non-loop callers
// (tests, restore, the offbox runner); parks on SyncSlot::Wait.
Status RemoteClient::TrimSync(uint64_t upto_index, uint64_t* first_index) {
  auto slot = std::make_shared<SyncSlot<uint64_t>>();
  Trim(upto_index,
       [slot](const Status& s, uint64_t first) { slot->Set(s, first); });
  return slot->Wait(first_index);
}

// lint:off-loop -- blocking sync wrapper for non-loop callers
// (tests, restore, the offbox runner); parks on SyncSlot::Wait.
Status RemoteClient::RenewLeaseSync(uint64_t owner, uint64_t duration_ms,
                                    std::string shard,
                                    rpcwire::LeaseResponse* out) {
  auto slot = std::make_shared<SyncSlot<rpcwire::LeaseResponse>>();
  RenewLease(owner, duration_ms, std::move(shard),
             [slot](const Status& s, const rpcwire::LeaseResponse& r) {
               slot->Set(s, r);
             });
  return slot->Wait(out);
}

}  // namespace memdb::txlog
