// SlotMigrator: the source-side live slot migration state machine (§5).
//
//   kIdle ──StartMigration──► kHandshake   (target marks slot IMPORTING)
//                                  │ ack
//                                  ▼
//                             kStreaming   (batch keys: DUMP locally, mark
//                                  │        in-flight, ASKING+RESTORE to the
//                                  │        target, DEL locally once acked)
//                                  │ slot empty, all DELs durable
//                                  ▼
//                             kCommitting  (kSlotOwnership conditional
//                                  │        append through the source's own
//                                  │        fenced gate — a stale owner's
//                                  │        append fails, so the flip can
//                                  │        only be committed by the lease
//                                  │        holder)
//                                  │ append committed
//                                  ▼
//                             kNotifying   (target told to flip IMPORTING →
//                                  │        OWNED and publish to its log)
//                                  ▼
//                             kIdle        (slot now kRemote here)
//
// Any channel or gate failure aborts the migration: already-transferred
// keys stay deleted locally (they are durable on the target and the slot
// entry still answers -ASK for them), the slot reverts to kOwned, and the
// client retries. Nothing is lost either way because a key is only deleted
// locally after the target's quorum-committed RESTORE ack.
//
// Threading: the state machine (Pump, StartMigration, OnGateCompletion) is
// loop-thread-only, same contract as the engine and slot table. The only
// other thread is the channel worker, which performs the blocking RESP
// round-trips to the target; it exchanges jobs/results with the loop thread
// through a small mutex-guarded queue and wakes the loop via the host hook.

#ifndef MEMDB_SHARD_MIGRATION_H_
#define MEMDB_SHARD_MIGRATION_H_

#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"
#include "shard/slot_table.h"

namespace memdb::shard {

// Everything the migrator needs from the embedding server. All methods are
// called on the server loop thread except MigrationWakeup (any thread).
class MigrationHost {
 public:
  virtual ~MigrationHost() = default;
  // Up to `max` keys still present in `slot` (expired keys excluded).
  virtual std::vector<std::string> MigrationKeys(uint16_t slot,
                                                 size_t max) = 0;
  // DUMP-serializes `key` (snapshot blob + CRC64 trailer, same shape the
  // DUMP command emits) and its absolute expiry (0 = none). False when the
  // key vanished (expired/deleted) since it was listed.
  virtual bool MigrationDump(const std::string& key, uint64_t* expire_at_ms,
                             std::string* blob) = 0;
  // Applies DEL(keys) to the local engine and replicates it through the
  // gate. Returns the gate sequence to await, or 0 when there is no gate
  // (standalone mode: the delete is immediately final).
  virtual uint64_t MigrationDelete(const std::vector<std::string>& keys) = 0;
  // Submits the ownership flip as a typed kSlotOwnership conditional append
  // through the fenced gate. Returns the gate sequence, or 0 when there is
  // no gate (the flip commits immediately).
  virtual uint64_t MigrationSubmitOwnership(uint16_t slot, uint64_t epoch,
                                            const std::string& to_shard,
                                            const std::string& to_endpoint)
      = 0;
  // Thread-safe: wake the server loop so Pump() runs soon.
  virtual void MigrationWakeup() = 0;
};

class SlotMigrator {
 public:
  struct Options {
    size_t batch_keys = 64;          // keys per channel round-trip
    uint64_t channel_timeout_ms = 5000;
  };

  SlotMigrator(Options options, SlotTable* table, MigrationHost* host,
               MetricsRegistry* registry);
  ~SlotMigrator();
  SlotMigrator(const SlotMigrator&) = delete;
  SlotMigrator& operator=(const SlotMigrator&) = delete;

  // Loop thread. Marks the slot MIGRATING and starts the channel worker.
  // Fails when a migration is already running or the slot is not kOwned.
  Status StartMigration(uint16_t slot, std::string to_shard,
                        std::string to_endpoint);

  // Loop thread, every iteration: drains channel results and advances the
  // state machine.
  void Pump();

  // Loop thread: a gate completion for a sequence this migrator submitted
  // (DEL batch or ownership record). Returns true if the seq was ours.
  bool OnGateCompletion(uint64_t seq, bool ok);

  bool active() const { return state_ != State::kIdle; }
  uint16_t slot() const { return slot_; }
  // True while `key` is between DUMP and durable local DEL — writes must
  // answer -TRYAGAIN so the transferred value cannot be silently shadowed.
  bool KeyInFlight(const std::string& key) const {
    return in_flight_.count(key) > 0;
  }
  const std::string& last_error() const { return last_error_; }

  // Joins the worker (server shutdown). Loop thread.
  void Shutdown();

 private:
  enum class State : uint8_t { kIdle, kHandshake, kStreaming, kCommitting,
                               kNotifying };

  struct ChannelJob {
    uint64_t id = 0;
    std::vector<std::vector<std::string>> commands;  // pipelined round-trip
  };
  struct ChannelResult {
    uint64_t id = 0;
    bool ok = false;
    std::string error;
  };

  void WorkerMain();
  void EnqueueJob(std::vector<std::vector<std::string>> commands);
  bool TakeResult(ChannelResult* out);  // loop thread; false when none
  void Fail(const std::string& why);    // loop thread; aborts the migration
  void FinishWorker();                  // loop thread; joins + clears queues
  void StartNextBatch();                // loop thread; kStreaming step

  const Options options_;
  SlotTable* const table_;
  MigrationHost* const host_;

  Counter* migrations_total_ = nullptr;
  Counter* migration_failures_total_ = nullptr;
  Counter* keys_migrated_total_ = nullptr;

  // Loop-thread state.
  State state_ = State::kIdle;
  uint16_t slot_ = 0;
  std::string to_shard_;
  std::string to_endpoint_;
  uint64_t commit_epoch_ = 0;
  uint64_t next_job_id_ = 1;
  uint64_t outstanding_job_ = 0;        // 0 = none
  std::vector<std::string> batch_keys_;  // keys in the outstanding RESTORE
  std::set<std::string> in_flight_;
  std::set<uint64_t> pending_del_seqs_;
  uint64_t ownership_seq_ = 0;          // gate seq of the flip append
  std::string last_error_;

  // Channel worker bridge.
  std::thread worker_;
  bool worker_running_ = false;  // loop thread's view
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<ChannelJob> jobs_ GUARDED_BY(mu_);
  std::deque<ChannelResult> results_ GUARDED_BY(mu_);
  bool stop_worker_ GUARDED_BY(mu_) = false;
};

}  // namespace memdb::shard

#endif  // MEMDB_SHARD_MIGRATION_H_
