// Payload of a replicated kSlotOwnership record: the durable, fenced commit
// point of a slot migration (§5). The losing owner appends this through its
// own conditional-append gate — if its lease was lost, the append fails with
// ConditionFailed and the flip never happens, so a stale owner can neither
// keep acking the slot nor give it away. Replicas of either shard replay the
// record to keep their slot tables consistent; the per-slot epoch makes
// replay idempotent and order-safe.

#ifndef MEMDB_SHARD_SLOT_WIRE_H_
#define MEMDB_SHARD_SLOT_WIRE_H_

#include <cstdint>
#include <string>

#include "common/coding.h"

namespace memdb::shard {

struct SlotOwnershipRecord {
  uint16_t slot = 0;
  uint64_t epoch = 0;        // per-slot, must exceed the table's current
  std::string from_shard;    // losing owner (informational)
  std::string to_shard;      // gaining owner
  std::string to_endpoint;   // gaining owner's client endpoint

  std::string Encode() const {
    std::string out;
    PutVarint64(&out, slot);
    PutVarint64(&out, epoch);
    PutLengthPrefixed(&out, from_shard);
    PutLengthPrefixed(&out, to_shard);
    PutLengthPrefixed(&out, to_endpoint);
    return out;
  }
  static bool Decode(Slice data, SlotOwnershipRecord* out) {
    Decoder dec(data);
    uint64_t slot;
    if (!dec.GetVarint64(&slot) || slot >= 16384 ||
        !dec.GetVarint64(&out->epoch) ||
        !dec.GetLengthPrefixed(&out->from_shard) ||
        !dec.GetLengthPrefixed(&out->to_shard) ||
        !dec.GetLengthPrefixed(&out->to_endpoint)) {
      return false;
    }
    out->slot = static_cast<uint16_t>(slot);
    return true;
  }
};

}  // namespace memdb::shard

#endif  // MEMDB_SHARD_SLOT_WIRE_H_
