#include "shard/slot_table.h"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace memdb::shard {

namespace {

// "host:port" -> {host, port}; port 0 when malformed.
std::pair<std::string, int64_t> SplitEndpoint(const std::string& ep) {
  const size_t colon = ep.rfind(':');
  if (colon == std::string::npos) return {ep, 0};
  return {ep.substr(0, colon),
          std::strtoll(ep.c_str() + colon + 1, nullptr, 10)};
}

bool ParseSlotNumber(const std::string& s, uint16_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' ||
      v >= static_cast<unsigned long>(kNumSlots)) {
    return false;
  }
  *out = static_cast<uint16_t>(v);
  return true;
}

}  // namespace

const char* SlotStateName(SlotState s) {
  switch (s) {
    case SlotState::kOwned:     return "owned";
    case SlotState::kRemote:    return "remote";
    case SlotState::kMigrating: return "migrating";
    case SlotState::kImporting: return "importing";
  }
  return "unknown";
}

Status ParseSlotRanges(const std::string& spec, std::vector<uint16_t>* out) {
  out->clear();
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(start, comma - start);
    start = comma + 1;
    if (part.empty()) continue;
    const size_t dash = part.find('-');
    uint16_t lo = 0, hi = 0;
    if (dash == std::string::npos) {
      if (!ParseSlotNumber(part, &lo)) {
        return Status::InvalidArgument("bad slot '" + part + "'");
      }
      hi = lo;
    } else {
      if (!ParseSlotNumber(part.substr(0, dash), &lo) ||
          !ParseSlotNumber(part.substr(dash + 1), &hi) || hi < lo) {
        return Status::InvalidArgument("bad slot range '" + part + "'");
      }
    }
    for (uint32_t s = lo; s <= hi; ++s) {
      out->push_back(static_cast<uint16_t>(s));
    }
  }
  if (out->empty()) return Status::InvalidArgument("empty slot spec");
  return Status::OK();
}

std::string FormatSlotRanges(const std::vector<uint16_t>& slots) {
  std::vector<uint16_t> sorted = slots;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::string out;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[j] + 1) ++j;
    if (!out.empty()) out += ",";
    out += std::to_string(sorted[i]);
    if (j > i) out += "-" + std::to_string(sorted[j]);
    i = j + 1;
  }
  return out;
}

void SlotTable::Init(std::string self_shard, std::string self_endpoint) {
  self_shard_ = std::move(self_shard);
  self_endpoint_ = std::move(self_endpoint);
  for (Entry& e : entries_) {
    e = Entry{};  // kRemote, unknown owner: -CLUSTERDOWN until assigned
  }
}

void SlotTable::AssignLocal(const std::vector<uint16_t>& slots) {
  for (const uint16_t s : slots) {
    Entry& e = entries_[s];
    e.state = SlotState::kOwned;
    e.shard = self_shard_;
    e.endpoint = self_endpoint_;
  }
}

void SlotTable::AssignRemote(const std::vector<uint16_t>& slots,
                             std::string shard, std::string endpoint) {
  for (const uint16_t s : slots) {
    Entry& e = entries_[s];
    e.state = SlotState::kRemote;
    e.shard = shard;
    e.endpoint = endpoint;
  }
}

bool SlotTable::BeginMigrating(uint16_t slot, std::string to_shard,
                               std::string to_endpoint) {
  Entry& e = entries_[slot];
  if (e.state != SlotState::kOwned) return false;
  e.state = SlotState::kMigrating;
  e.peer_shard = std::move(to_shard);
  e.peer_endpoint = std::move(to_endpoint);
  return true;
}

bool SlotTable::BeginImporting(uint16_t slot, std::string from_shard,
                               std::string from_endpoint) {
  Entry& e = entries_[slot];
  if (e.state == SlotState::kOwned || e.state == SlotState::kMigrating) {
    return false;  // already ours; nothing to import
  }
  e.state = SlotState::kImporting;
  e.shard = std::move(from_shard);
  e.endpoint = std::move(from_endpoint);
  return true;
}

bool SlotTable::CancelMigration(uint16_t slot) {
  Entry& e = entries_[slot];
  if (e.state == SlotState::kMigrating) {
    e.state = SlotState::kOwned;
    e.peer_shard.clear();
    e.peer_endpoint.clear();
    return true;
  }
  if (e.state == SlotState::kImporting) {
    e.state = SlotState::kRemote;
    return true;
  }
  return false;
}

bool SlotTable::CommitMigrationOut(uint16_t slot, uint64_t epoch) {
  Entry& e = entries_[slot];
  if (e.state != SlotState::kMigrating || epoch <= e.epoch) return false;
  e.state = SlotState::kRemote;
  e.shard = std::move(e.peer_shard);
  e.endpoint = std::move(e.peer_endpoint);
  e.peer_shard.clear();
  e.peer_endpoint.clear();
  e.epoch = epoch;
  return true;
}

bool SlotTable::CommitMigrationIn(uint16_t slot, uint64_t epoch) {
  Entry& e = entries_[slot];
  if (e.state != SlotState::kImporting || epoch <= e.epoch) return false;
  e.state = SlotState::kOwned;
  e.shard = self_shard_;
  e.endpoint = self_endpoint_;
  e.epoch = epoch;
  return true;
}

bool SlotTable::ApplyOwnership(uint16_t slot, uint64_t epoch,
                               const std::string& to_shard,
                               const std::string& to_endpoint) {
  Entry& e = entries_[slot];
  if (epoch <= e.epoch) return false;
  e.epoch = epoch;
  e.peer_shard.clear();
  e.peer_endpoint.clear();
  if (to_shard == self_shard_) {
    e.state = SlotState::kOwned;
    e.shard = self_shard_;
    e.endpoint = self_endpoint_;
  } else {
    e.state = SlotState::kRemote;
    e.shard = to_shard;
    e.endpoint = to_endpoint;
  }
  return true;
}

void SlotTable::SetRemote(uint16_t slot, std::string shard,
                          std::string endpoint) {
  Entry& e = entries_[slot];
  e.state = SlotState::kRemote;
  e.shard = std::move(shard);
  e.endpoint = std::move(endpoint);
  e.peer_shard.clear();
  e.peer_endpoint.clear();
}

size_t SlotTable::CountState(SlotState s) const {
  size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.state == s) ++n;
  }
  return n;
}

std::string SlotTable::MovedError(uint16_t slot) const {
  const Entry& e = entries_[slot];
  if (e.endpoint.empty()) {
    return "CLUSTERDOWN Hash slot not served";
  }
  return "MOVED " + std::to_string(slot) + " " + e.endpoint;
}

std::string SlotTable::AskError(uint16_t slot) const {
  const Entry& e = entries_[slot];
  return "ASK " + std::to_string(slot) + " " + e.peer_endpoint;
}

resp::Value SlotTable::SlotsReply() const {
  std::vector<resp::Value> out;
  int run_start = -1;
  auto serving_entry = [&](uint16_t slot) -> const Entry& {
    return entries_[slot];
  };
  auto same_owner = [&](uint16_t a, uint16_t b) {
    const Entry& ea = serving_entry(a);
    const Entry& eb = serving_entry(b);
    return ea.shard == eb.shard && ea.endpoint == eb.endpoint;
  };
  auto flush_run = [&](int start, int end) {
    const Entry& e = entries_[static_cast<uint16_t>(start)];
    if (e.endpoint.empty()) return;  // unserved slots are omitted
    const auto [host, port] = SplitEndpoint(e.endpoint);
    out.push_back(resp::Value::Array(
        {resp::Value::Integer(start), resp::Value::Integer(end),
         resp::Value::Array({resp::Value::Bulk(host),
                             resp::Value::Integer(port),
                             resp::Value::Bulk(e.shard)})}));
  };
  for (int s = 0; s < kNumSlots; ++s) {
    if (run_start < 0) {
      run_start = s;
    } else if (!same_owner(static_cast<uint16_t>(run_start),
                           static_cast<uint16_t>(s))) {
      flush_run(run_start, s - 1);
      run_start = s;
    }
  }
  if (run_start >= 0) flush_run(run_start, kNumSlots - 1);
  return resp::Value::Array(std::move(out));
}

resp::Value SlotTable::ShardsReply() const {
  // shard id -> (endpoint, slots). Migrating slots still list under the
  // current owner; the flip moves them atomically.
  std::map<std::string, std::pair<std::string, std::vector<uint16_t>>> shards;
  for (int s = 0; s < kNumSlots; ++s) {
    const Entry& e = entries_[static_cast<uint16_t>(s)];
    if (e.shard.empty()) continue;
    auto& rec = shards[e.shard];
    rec.first = e.endpoint;
    rec.second.push_back(static_cast<uint16_t>(s));
  }
  std::vector<resp::Value> out;
  for (auto& [shard, rec] : shards) {
    out.push_back(resp::Value::Array(
        {resp::Value::Bulk(shard), resp::Value::Bulk(rec.first),
         resp::Value::Bulk(FormatSlotRanges(rec.second)),
         resp::Value::Integer(static_cast<int64_t>(rec.second.size()))}));
  }
  return resp::Value::Array(std::move(out));
}

}  // namespace memdb::shard
