// SlotTable: the 16384-entry hash-slot ownership map every cluster-mode
// server consults on each keyed command (§5). Each slot is in one of four
// states from this node's point of view:
//
//   kOwned      — this shard serves the slot; commands execute locally.
//   kRemote     — another shard owns it; keyed commands answer
//                 -MOVED <slot> <endpoint> (Redis Cluster redirect shape).
//   kMigrating  — this shard owns the slot but is streaming its keys to an
//                 importing peer; keys already gone answer -ASK.
//   kImporting  — the peer is streaming this slot's keys to us; only
//                 ASKING-prefixed commands may touch it until the owner
//                 commits the flip.
//
// Every flip carries a per-slot epoch. Ownership records replayed from the
// transaction log (kSlotOwnership) apply only when their epoch is newer,
// so reordered or duplicated records cannot roll the table backwards.
//
// Threading: owned by the RespServer and touched only on its loop thread
// (same contract as the engine). The migrator reads it through the server.

#ifndef MEMDB_SHARD_SLOT_TABLE_H_
#define MEMDB_SHARD_SLOT_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/crc.h"
#include "common/status.h"
#include "resp/resp.h"

namespace memdb::shard {

enum class SlotState : uint8_t { kOwned = 0, kRemote = 1, kMigrating = 2,
                                 kImporting = 3 };

const char* SlotStateName(SlotState s);

// Parses "0-8191,9000,9005-9010" into slot numbers. Returns InvalidArgument
// on malformed ranges, out-of-range slots, or an empty spec.
Status ParseSlotRanges(const std::string& spec, std::vector<uint16_t>* out);

// Renders a sorted slot list back to the compact "a-b,c" range form.
std::string FormatSlotRanges(const std::vector<uint16_t>& slots);

class SlotTable {
 public:
  struct Entry {
    SlotState state = SlotState::kRemote;
    // Owning shard and its client endpoint. For kMigrating this stays the
    // local shard and `peer_*` names the importing target; for kImporting
    // it stays the remote owner and `peer_*` is unused.
    std::string shard;
    std::string endpoint;
    std::string peer_shard;
    std::string peer_endpoint;
    uint64_t epoch = 0;
  };

  // `self_shard`/`self_endpoint`: this node's identity as advertised in
  // CLUSTER SLOTS and redirects.
  void Init(std::string self_shard, std::string self_endpoint);

  // Marks `slots` owned by this shard (epoch 0 bootstrap assignment).
  void AssignLocal(const std::vector<uint16_t>& slots);
  // Marks `slots` owned by a remote peer (bootstrap assignment).
  void AssignRemote(const std::vector<uint16_t>& slots, std::string shard,
                    std::string endpoint);

  const Entry& at(uint16_t slot) const { return entries_[slot]; }
  const std::string& self_shard() const { return self_shard_; }
  const std::string& self_endpoint() const { return self_endpoint_; }

  // State transitions (loop thread). Each returns false when the current
  // state does not admit the transition.
  bool BeginMigrating(uint16_t slot, std::string to_shard,
                      std::string to_endpoint);
  bool BeginImporting(uint16_t slot, std::string from_shard,
                      std::string from_endpoint);
  bool CancelMigration(uint16_t slot);  // kMigrating/kImporting -> previous
  // Commit on the losing side: kMigrating -> kRemote(to), epoch bumped.
  bool CommitMigrationOut(uint16_t slot, uint64_t epoch);
  // Commit on the gaining side: kImporting -> kOwned, epoch bumped.
  bool CommitMigrationIn(uint16_t slot, uint64_t epoch);
  // Replayed kSlotOwnership record (replicas, late observers): applies only
  // when `epoch` is newer than the slot's. Returns true if applied.
  bool ApplyOwnership(uint16_t slot, uint64_t epoch,
                      const std::string& to_shard,
                      const std::string& to_endpoint);
  // Admin override (CLUSTER SETSLOT ... NODE for a remote shard).
  void SetRemote(uint16_t slot, std::string shard, std::string endpoint);

  size_t CountState(SlotState s) const;
  size_t owned() const { return CountState(SlotState::kOwned) +
                                CountState(SlotState::kMigrating); }

  // Redirect reply bodies, Redis Cluster shapes:
  //   -MOVED <slot> <host:port>   /   -ASK <slot> <host:port>
  std::string MovedError(uint16_t slot) const;
  std::string AskError(uint16_t slot) const;

  // CLUSTER SLOTS: array of [start, end, [host, port, shard-id]] entries,
  // contiguous same-owner runs merged.
  resp::Value SlotsReply() const;
  // CLUSTER SHARDS: one [shard-id, endpoint, "a-b,c", slot-count] entry per
  // known shard (compact reproduction shape, not the full Redis 7 map).
  resp::Value ShardsReply() const;

 private:
  std::string self_shard_;
  std::string self_endpoint_;
  std::vector<Entry> entries_{static_cast<size_t>(kNumSlots)};
};

}  // namespace memdb::shard

#endif  // MEMDB_SHARD_SLOT_TABLE_H_
