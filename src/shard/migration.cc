#include "shard/migration.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <utility>

#include "resp/resp.h"

namespace memdb::shard {

namespace {

// Minimal blocking RESP client for the migration channel (worker thread
// only; never an event loop). The channel speaks to the target's normal
// RESP port, so the transfer rides the same durability gate as any client
// write — a RESTORE ack means the key is quorum-committed on the target.
class ChannelSocket {
 public:
  ~ChannelSocket() { Close(); }

  bool Connect(const std::string& endpoint, uint64_t timeout_ms) {
    Close();
    const size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos) return false;
    const std::string host = endpoint.substr(0, colon);
    const int port = std::atoi(endpoint.c_str() + colon + 1);
    if (port <= 0 || port > 65535) return false;

    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host == "localhost" ? "127.0.0.1" : host.c_str(),
                    &addr.sin_addr) != 1) {
      Close();
      return false;
    }
    // lint:allow-blocking -- migration channel worker thread, not the loop
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    return true;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool connected() const { return fd_ >= 0; }

  bool SendAll(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadReply(resp::Value* out) {
    for (;;) {
      const resp::DecodeStatus st = dec_.Decode(out);
      if (st == resp::DecodeStatus::kOk) return true;
      if (st == resp::DecodeStatus::kError) return false;
      char buf[16 << 10];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      dec_.Feed(Slice(buf, static_cast<size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  resp::Decoder dec_;
};

}  // namespace

SlotMigrator::SlotMigrator(Options options, SlotTable* table,
                           MigrationHost* host, MetricsRegistry* registry)
    : options_(options), table_(table), host_(host) {
  if (registry != nullptr) {
    registry->SetHelp("cluster_migrations_total",
                      "Slot migrations completed by this node as source");
    migrations_total_ = registry->GetCounter("cluster_migrations_total");
    registry->SetHelp("cluster_migration_failures_total",
                      "Slot migrations aborted (channel or gate failure)");
    migration_failures_total_ =
        registry->GetCounter("cluster_migration_failures_total");
    registry->SetHelp("cluster_keys_migrated_total",
                      "Keys streamed to an importing peer and deleted here");
    keys_migrated_total_ =
        registry->GetCounter("cluster_keys_migrated_total");
  }
}

SlotMigrator::~SlotMigrator() { Shutdown(); }

Status SlotMigrator::StartMigration(uint16_t slot, std::string to_shard,
                                    std::string to_endpoint) {
  if (state_ != State::kIdle) {
    return Status::InvalidArgument("migration already in progress for slot " +
                                   std::to_string(slot_));
  }
  const SlotTable::Entry& entry = table_->at(slot);
  const bool resuming = entry.state == SlotState::kMigrating &&
                        entry.peer_shard == to_shard &&
                        entry.peer_endpoint == to_endpoint;
  if (!resuming && !table_->BeginMigrating(slot, to_shard, to_endpoint)) {
    return Status::InvalidArgument(
        "slot " + std::to_string(slot) + " is " +
        SlotStateName(table_->at(slot).state) + ", not owned");
  }
  slot_ = slot;
  to_shard_ = std::move(to_shard);
  to_endpoint_ = std::move(to_endpoint);
  commit_epoch_ = table_->at(slot).epoch + 1;
  last_error_.clear();
  in_flight_.clear();
  batch_keys_.clear();
  pending_del_seqs_.clear();
  ownership_seq_ = 0;
  outstanding_job_ = 0;

  {
    MutexLock lock(&mu_);
    stop_worker_ = false;
    jobs_.clear();
    results_.clear();
  }
  worker_ = std::thread([this] { WorkerMain(); });
  worker_running_ = true;

  state_ = State::kHandshake;
  EnqueueJob({{"CLUSTER", "SETSLOT", std::to_string(slot_), "IMPORTING",
               table_->self_shard(), table_->self_endpoint()}});
  return Status::OK();
}

void SlotMigrator::Pump() {
  if (state_ == State::kIdle) return;

  ChannelResult res;
  while (TakeResult(&res)) {
    if (res.id != outstanding_job_) continue;  // stale (post-abort)
    outstanding_job_ = 0;
    if (!res.ok) {
      Fail("channel: " + res.error);
      return;
    }
    switch (state_) {
      case State::kHandshake:
        state_ = State::kStreaming;
        break;
      case State::kStreaming: {
        // The whole batch is durable on the target: delete it here. The
        // keys stay in in_flight_ until the DEL itself is durable, so a
        // client write cannot slip in between and be shadowed by the flip.
        if (!batch_keys_.empty()) {
          const uint64_t seq = host_->MigrationDelete(batch_keys_);
          if (seq != 0) {
            pending_del_seqs_.insert(seq);
          } else {
            for (const std::string& k : batch_keys_) in_flight_.erase(k);
          }
          if (keys_migrated_total_ != nullptr) {
            keys_migrated_total_->Increment(batch_keys_.size());
          }
          batch_keys_.clear();
        }
        break;
      }
      case State::kNotifying:
        // Target committed its side; we are done.
        FinishWorker();
        state_ = State::kIdle;
        if (migrations_total_ != nullptr) migrations_total_->Increment();
        return;
      case State::kCommitting:
      case State::kIdle:
        break;
    }
  }

  if (state_ == State::kStreaming && outstanding_job_ == 0) {
    StartNextBatch();
  }
}

void SlotMigrator::StartNextBatch() {
  const std::vector<std::string> keys =
      host_->MigrationKeys(slot_, options_.batch_keys);
  std::vector<std::vector<std::string>> commands;
  batch_keys_.clear();
  for (const std::string& key : keys) {
    if (in_flight_.count(key) > 0) continue;  // DEL still in the gate
    uint64_t expire_at = 0;
    std::string blob;
    if (!host_->MigrationDump(key, &expire_at, &blob)) continue;
    commands.push_back({"ASKING"});
    commands.push_back({"RESTORE", key, std::to_string(expire_at),
                        std::move(blob), "REPLACE", "ABSTTL"});
    batch_keys_.push_back(key);
    in_flight_.insert(key);
  }
  if (!commands.empty()) {
    EnqueueJob(std::move(commands));
    return;
  }
  // Slot drained; wait for the outstanding DELs to become durable before
  // committing the flip, so the log order is "every key left" before
  // "ownership moved".
  if (!pending_del_seqs_.empty()) return;
  state_ = State::kCommitting;
  ownership_seq_ = host_->MigrationSubmitOwnership(slot_, commit_epoch_,
                                                   to_shard_, to_endpoint_);
  if (ownership_seq_ == 0) {
    // No gate (standalone): the flip is immediately final.
    OnGateCompletion(0, true);
  }
}

bool SlotMigrator::OnGateCompletion(uint64_t seq, bool ok) {
  if (state_ == State::kIdle) return false;
  if (pending_del_seqs_.erase(seq) > 0) {
    if (!ok) {
      Fail("gate: DEL batch failed (fenced?)");
      return true;
    }
    // Durable: the transferred keys can stop answering -TRYAGAIN.
    // (We do not track seq->keys; once no DELs are pending, everything
    // previously batched is durable — clear what is no longer local.)
    if (pending_del_seqs_.empty() && batch_keys_.empty()) {
      in_flight_.clear();
    }
    if (state_ == State::kStreaming && outstanding_job_ == 0) {
      StartNextBatch();
    }
    return true;
  }
  if (state_ == State::kCommitting && seq == ownership_seq_) {
    if (!ok) {
      Fail("gate: ownership append rejected (lease lost)");
      return true;
    }
    table_->CommitMigrationOut(slot_, commit_epoch_);
    state_ = State::kNotifying;
    EnqueueJob({{"CLUSTER", "SETSLOT", std::to_string(slot_), "NODE",
                 to_shard_, to_endpoint_, std::to_string(commit_epoch_)}});
    return true;
  }
  return false;
}

void SlotMigrator::Fail(const std::string& why) {
  last_error_ = why;
  if (migration_failures_total_ != nullptr) {
    migration_failures_total_->Increment();
  }
  // The slot table is deliberately left as-is. Pre-commit the slot stays
  // kMigrating: already-transferred keys are gone locally but durable on
  // the target, and kMigrating keeps answering -ASK for them — reverting
  // to kOwned would turn them into false misses. A retried CLUSTER SETSLOT
  // MIGRATE to the same peer resumes from where the stream stopped.
  // Post-commit (kNotifying) the flip is already durable; only the
  // courtesy notification was lost, and the target flips anyway when it
  // next observes the ownership record or a retried NODE command.
  FinishWorker();
  in_flight_.clear();
  batch_keys_.clear();
  pending_del_seqs_.clear();
  outstanding_job_ = 0;
  state_ = State::kIdle;
}

void SlotMigrator::Shutdown() {
  FinishWorker();
  state_ = State::kIdle;
}

void SlotMigrator::FinishWorker() {
  {
    MutexLock lock(&mu_);
    stop_worker_ = true;
    cv_.Signal();
  }
  if (worker_.joinable()) worker_.join();
  worker_running_ = false;
  MutexLock lock(&mu_);
  jobs_.clear();
  results_.clear();
}

void SlotMigrator::EnqueueJob(std::vector<std::vector<std::string>> commands) {
  ChannelJob job;
  job.id = next_job_id_++;
  job.commands = std::move(commands);
  outstanding_job_ = job.id;
  MutexLock lock(&mu_);
  jobs_.push_back(std::move(job));
  cv_.Signal();
}

bool SlotMigrator::TakeResult(ChannelResult* out) {
  MutexLock lock(&mu_);
  if (results_.empty()) return false;
  *out = std::move(results_.front());
  results_.pop_front();
  return true;
}

// lint:off-loop -- migration channel worker thread body: the one place in
// src/shard allowed to block (socket I/O to the target shard); the loop
// talks to it only through the mutex-guarded job/result queues.
void SlotMigrator::WorkerMain() {
  ChannelSocket sock;
  const std::string endpoint = to_endpoint_;
  for (;;) {
    ChannelJob job;
    {
      MutexLock lock(&mu_);
      while (jobs_.empty() && !stop_worker_) cv_.Wait(&mu_);
      if (stop_worker_) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }

    ChannelResult res;
    res.id = job.id;
    res.ok = true;
    if (!sock.connected() &&
        !sock.Connect(endpoint, options_.channel_timeout_ms)) {
      res.ok = false;
      res.error = "connect to " + endpoint + " failed";
    } else {
      std::string frame;
      for (const auto& argv : job.commands) {
        frame += resp::EncodeCommand(argv);
      }
      if (!sock.SendAll(frame)) {
        res.ok = false;
        res.error = "send to " + endpoint + " failed";
      } else {
        for (size_t i = 0; i < job.commands.size(); ++i) {
          resp::Value reply;
          if (!sock.ReadReply(&reply)) {
            res.ok = false;
            res.error = "read from " + endpoint + " failed";
            break;
          }
          if (reply.IsError()) {
            res.ok = false;
            res.error = job.commands[i][0] + ": " + reply.str;
            break;
          }
        }
      }
    }
    if (!res.ok) sock.Close();

    {
      MutexLock lock(&mu_);
      results_.push_back(std::move(res));
    }
    host_->MigrationWakeup();
  }
}

}  // namespace memdb::shard
