// Cluster: the control-plane view of a multi-shard MemoryDB deployment
// (§5.1): provisions shards (each with its own transaction log and nodes
// across 3 AZs), assigns the 16384 hash slots in contiguous ranges, wires
// the monitoring service, and orchestrates scaling operations — adding
// replicas, adding shards, and migrating slots between shards.

#ifndef MEMDB_CLUSTER_CLUSTER_H_
#define MEMDB_CLUSTER_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/migration.h"
#include "cluster/monitoring.h"
#include "memorydb/shard.h"

namespace memdb::cluster {

class Cluster {
 public:
  struct Options {
    int num_shards = 2;
    int replicas_per_shard = 2;
    sim::NodeId object_store = sim::kInvalidNode;
    bool with_offbox = false;
    bool with_monitoring = true;
    memorydb::NodeConfig node_template;
  };

  Cluster(sim::Simulation* sim, Options options);

  size_t num_shards() const { return shards_.size(); }
  memorydb::Shard* shard(size_t i) { return shards_[i].get(); }
  MonitoringService* monitoring() { return monitoring_.get(); }
  MigrationCoordinator* coordinator() { return coordinator_.get(); }

  // Every database node id in the cluster (for clients).
  std::vector<sim::NodeId> AllNodeIds() const;

  // Which shard currently owns `slot` per the control-plane table.
  size_t ShardForSlot(uint16_t slot) const { return slot_to_shard_[slot]; }

  // Scale out: provision a new shard owning no slots (§5.2). Slots are then
  // moved onto it with MigrateSlot.
  memorydb::Shard* AddShard();

  // Moves one slot between shards through the full §5.2 protocol.
  void MigrateSlot(uint16_t slot, size_t from_shard, size_t to_shard,
                   MigrationCoordinator::DoneCallback done);

 private:
  void ConfigureInitialSlotOwnership();
  memorydb::Shard::Options ShardOptions(const std::string& id) const;

  sim::Simulation* sim_;
  Options options_;
  std::vector<std::unique_ptr<memorydb::Shard>> shards_;
  std::vector<size_t> slot_to_shard_ =
      std::vector<size_t>(static_cast<size_t>(kNumSlots), 0);
  std::unique_ptr<MonitoringService> monitoring_;
  std::unique_ptr<MigrationCoordinator> coordinator_;
};

}  // namespace memdb::cluster

#endif  // MEMDB_CLUSTER_CLUSTER_H_
