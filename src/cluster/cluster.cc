#include "cluster/cluster.h"

namespace memdb::cluster {

using memorydb::Node;
using memorydb::Shard;

Cluster::Cluster(sim::Simulation* sim, Options options)
    : sim_(sim), options_(std::move(options)) {
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        sim_, ShardOptions("shard-" + std::to_string(i))));
  }
  // Contiguous range assignment, like default cluster creation.
  for (int slot = 0; slot < kNumSlots; ++slot) {
    slot_to_shard_[static_cast<size_t>(slot)] =
        static_cast<size_t>(slot) * shards_.size() /
        static_cast<size_t>(kNumSlots);
  }
  ConfigureInitialSlotOwnership();

  if (options_.with_monitoring) {
    monitoring_ = std::make_unique<MonitoringService>(
        sim_, sim_->AddHost(0), MonitoringService::Config{});
    for (sim::NodeId id : AllNodeIds()) monitoring_->Watch(id);
  }
  coordinator_ =
      std::make_unique<MigrationCoordinator>(sim_, sim_->AddHost(1));
}

Shard::Options Cluster::ShardOptions(const std::string& id) const {
  Shard::Options so;
  so.shard_id = id;
  so.num_replicas = options_.replicas_per_shard;
  so.object_store = options_.object_store;
  so.with_offbox = options_.with_offbox;
  so.node_template = options_.node_template;
  return so;
}

void Cluster::ConfigureInitialSlotOwnership() {
  // Push the not-owned ranges to every node; redirect hints point at the
  // owning shard's first node (clients chase MOVED to the real primary).
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (size_t n = 0; n < shards_[s]->num_nodes(); ++n) {
      Node* node = shards_[s]->node(n);
      for (int slot = 0; slot < kNumSlots; ++slot) {
        const size_t owner = slot_to_shard_[static_cast<size_t>(slot)];
        if (owner != s) {
          node->SetSlotState(static_cast<uint16_t>(slot),
                             Node::SlotState::kNotOwned,
                             shards_[owner]->node_ids()[0]);
        }
      }
    }
  }
}

std::vector<sim::NodeId> Cluster::AllNodeIds() const {
  std::vector<sim::NodeId> out;
  for (const auto& shard : shards_) {
    for (sim::NodeId id : shard->node_ids()) out.push_back(id);
  }
  return out;
}

Shard* Cluster::AddShard() {
  auto so = ShardOptions("shard-" + std::to_string(shards_.size()));
  shards_.push_back(std::make_unique<Shard>(sim_, so));
  Shard* added = shards_.back().get();
  // The new shard owns nothing yet.
  for (size_t n = 0; n < added->num_nodes(); ++n) {
    for (int slot = 0; slot < kNumSlots; ++slot) {
      const size_t owner = slot_to_shard_[static_cast<size_t>(slot)];
      added->node(n)->SetSlotState(
          static_cast<uint16_t>(slot), Node::SlotState::kNotOwned,
          shards_[owner]->node_ids()[0]);
    }
  }
  if (monitoring_ != nullptr) {
    for (sim::NodeId id : added->node_ids()) monitoring_->Watch(id);
  }
  return added;
}

void Cluster::MigrateSlot(uint16_t slot, size_t from_shard, size_t to_shard,
                          MigrationCoordinator::DoneCallback done) {
  Node* source = shards_[from_shard]->Primary();
  Node* target = shards_[to_shard]->Primary();
  if (source == nullptr || target == nullptr) {
    done(Status::Unavailable("shard primary not available"));
    return;
  }
  MigrationCoordinator::Plan plan;
  plan.slot = slot;
  plan.source_primary = source->id();
  plan.target_primary = target->id();
  plan.all_nodes = AllNodeIds();
  coordinator_->Migrate(std::move(plan),
                        [this, slot, to_shard, done](const Status& s) {
                          if (s.ok()) slot_to_shard_[slot] = to_shard;
                          done(s);
                        });
}

}  // namespace memdb::cluster
