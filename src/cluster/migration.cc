#include "cluster/migration.h"

#include "common/coding.h"

namespace memdb::cluster {

using sim::Duration;
using sim::kMs;
using sim::NodeId;

namespace {
std::string SlotPayload(uint16_t slot) {
  std::string out;
  PutVarint64(&out, slot);
  return out;
}
std::string SlotPeerPayload(uint16_t slot, uint64_t peer) {
  std::string out;
  PutVarint64(&out, slot);
  PutVarint64(&out, peer);
  return out;
}
std::string OwnershipPayload(int phase, uint16_t slot, uint64_t peer) {
  std::string out;
  PutVarint64(&out, static_cast<uint64_t>(phase));
  PutVarint64(&out, slot);
  PutVarint64(&out, peer);
  return out;
}
}  // namespace

MigrationCoordinator::MigrationCoordinator(sim::Simulation* sim,
                                           NodeId id)
    : Actor(sim, id) {}

void MigrationCoordinator::Migrate(Plan plan, DoneCallback done) {
  if (busy_) {
    done(Status::Unavailable("migration already in progress"));
    return;
  }
  busy_ = true;
  plan_ = std::move(plan);
  done_ = std::move(done);
  ++run_;
  Step(1);
}

void MigrationCoordinator::Fail(const Status& s) {
  // Abandon: resume writes at the source, drop transferred data at the
  // target (the easy-recovery property the paper calls out).
  Rpc(plan_.source_primary, "db.slot_abort",
      SlotPeerPayload(plan_.slot, /*resume_owned=*/1), 2 * sim::kSec,
      [](const Status&, const std::string&) {});
  Rpc(plan_.target_primary, "db.slot_abort",
      SlotPeerPayload(plan_.slot, /*resume_owned=*/0), 2 * sim::kSec,
      [](const Status&, const std::string&) {});
  busy_ = false;
  if (done_) {
    DoneCallback cb = std::move(done_);
    done_ = nullptr;
    cb(s);
  }
}

void MigrationCoordinator::Step(int step) {
  const uint64_t run = run_;
  switch (step) {
    case 1:  // target: start importing
      Rpc(plan_.target_primary, "db.slot_set_importing",
          SlotPeerPayload(plan_.slot, plan_.source_primary), 2 * sim::kSec,
          [this, run](const Status& s, const std::string&) {
            if (run != run_) return;
            if (!s.ok()) {
              Fail(s);
              return;
            }
            Step(2);
          });
      return;
    case 2:  // source: start streaming
      Rpc(plan_.source_primary, "db.slot_migrate_start",
          SlotPeerPayload(plan_.slot, plan_.target_primary), 2 * sim::kSec,
          [this, run](const Status& s, const std::string&) {
            if (run != run_) return;
            if (!s.ok()) {
              Fail(s);
              return;
            }
            PollDataMovement();
          });
      return;
    case 3:  // source: block writes and drain
      block_started_ = Now();
      Rpc(plan_.source_primary, "db.slot_block", SlotPayload(plan_.slot),
          10 * sim::kSec, [this, run](const Status& s, const std::string&) {
            if (run != run_) return;
            if (!s.ok()) {
              Fail(s);
              return;
            }
            CompareDigests();
          });
      return;
    case 4:  // 2PC: prepare source -> prepare target -> commit source ->
             // commit target
      Ownership(1, plan_.source_primary, 5);
      return;
    case 5:
      Ownership(2, plan_.target_primary, 6);
      return;
    case 6:
      Ownership(3, plan_.source_primary, 7);
      return;
    case 7:
      Ownership(4, plan_.target_primary, 8);
      return;
    case 8:
      last_write_block_duration_ = Now() - block_started_;
      Broadcast();
      return;
    default:
      Fail(Status::Internal("bad step"));
  }
}

void MigrationCoordinator::PollDataMovement() {
  const uint64_t run = run_;
  Rpc(plan_.source_primary, "db.slot_migrate_status", SlotPayload(plan_.slot),
      2 * sim::kSec, [this, run](const Status& s, const std::string& body) {
        if (run != run_) return;
        if (!s.ok()) {
          Fail(s);
          return;
        }
        Decoder dec(body);
        uint64_t complete = 0;
        dec.GetVarint64(&complete);
        if (complete != 0) {
          Step(3);
        } else {
          After(20 * kMs, [this, run] {
            if (run == run_) PollDataMovement();
          });
        }
      });
}

void MigrationCoordinator::CompareDigests() {
  const uint64_t run = run_;
  Rpc(plan_.source_primary, "db.slot_digest", SlotPayload(plan_.slot),
      2 * sim::kSec, [this, run](const Status& s, const std::string& body) {
        if (run != run_) return;
        if (!s.ok()) {
          Fail(s);
          return;
        }
        Decoder dec(body);
        uint64_t pending;
        dec.GetVarint64(&source_digest_count_);
        dec.GetFixed64(&source_digest_crc_);
        dec.GetVarint64(&pending);
        Rpc(plan_.target_primary, "db.slot_digest", SlotPayload(plan_.slot),
            2 * sim::kSec,
            [this, run](const Status& ts, const std::string& tbody) {
              if (run != run_) return;
              if (!ts.ok()) {
                Fail(ts);
                return;
              }
              Decoder tdec(tbody);
              uint64_t count, pending;
              uint64_t crc;
              tdec.GetVarint64(&count);
              tdec.GetFixed64(&crc);
              tdec.GetVarint64(&pending);
              if (pending != 0) {
                // Target log still draining; re-check shortly.
                After(10 * kMs, [this, run] {
                  if (run == run_) CompareDigests();
                });
                return;
              }
              if (count != source_digest_count_ ||
                  crc != source_digest_crc_) {
                Fail(Status::Corruption(
                    "slot digest mismatch between source and target"));
                return;
              }
              Step(4);
            });
      });
}

void MigrationCoordinator::Ownership(int phase, NodeId target,
                                     int next_step, int retries_left) {
  const uint64_t run = run_;
  const uint64_t peer = phase == 1 || phase == 3 ? plan_.target_primary
                                                 : plan_.source_primary;
  Rpc(target, "db.slot_ownership", OwnershipPayload(phase, plan_.slot, peer),
      5 * sim::kSec, [this, run, next_step, phase, target, retries_left](
                         const Status& s, const std::string&) {
        if (run != run_) return;
        if (!s.ok()) {
          if (retries_left <= 0) {
            // The 2PC progress is durable in the logs; a later re-drive of
            // the migration resumes from the recorded phase (§5.2).
            Fail(Status::Unavailable("ownership transfer stalled"));
            return;
          }
          After(100 * kMs, [this, run, phase, target, next_step,
                            retries_left] {
            if (run == run_) {
              Ownership(phase, target, next_step, retries_left - 1);
            }
          });
          return;
        }
        Step(next_step);
      });
}

void MigrationCoordinator::Broadcast() {
  for (NodeId node : plan_.all_nodes) {
    Rpc(node, "db.slot_update",
        SlotPeerPayload(plan_.slot, plan_.target_primary), 2 * sim::kSec,
        [](const Status&, const std::string&) {});
  }
  busy_ = false;
  if (done_) {
    DoneCallback cb = std::move(done_);
    done_ = nullptr;
    cb(Status::OK());
  }
}

}  // namespace memdb::cluster
