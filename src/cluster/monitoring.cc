#include "cluster/monitoring.h"

namespace memdb::cluster {

MonitoringService::MonitoringService(sim::Simulation* sim, sim::NodeId id,
                                     Config config)
    : Actor(sim, id), config_(config) {
  Periodic(config_.poll_interval, [this] { PollAll(); });
}

void MonitoringService::Watch(sim::NodeId node) { watched_.push_back(node); }

void MonitoringService::PollAll() {
  for (sim::NodeId node : watched_) {
    Rpc(node, "db.health", "", 2 * sim::kSec,
        [this, node](const Status& s, const std::string&) {
          if (s.ok()) {
            failures_[node] = 0;
            return;
          }
          // External view says unreachable; consult the internal view
          // before acting (§4.2: both views are combined to improve
          // failure-detection accuracy).
          const bool internally_dead = !simulation()->IsAlive(node);
          if (++failures_[node] >= config_.failure_threshold &&
              internally_dead && config_.auto_repair) {
            // Repair: restart the database process / replace the host. The
            // node rejoins as a recovering replica.
            simulation()->Restart(node);
            failures_[node] = 0;
            ++repairs_;
          }
        });
  }
}

}  // namespace memdb::cluster
