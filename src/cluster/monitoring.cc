#include "cluster/monitoring.h"

#include <algorithm>

namespace memdb::cluster {

MonitoringService::MonitoringService(sim::Simulation* sim, sim::NodeId id,
                                     Config config)
    : Actor(sim, id), config_(config) {
  Periodic(config_.poll_interval, [this] {
    PollAll();
    if (config_.scrape_metrics) ScrapeAll();
  });
}

void MonitoringService::Watch(sim::NodeId node) { watched_.push_back(node); }

void MonitoringService::PollAll() {
  for (sim::NodeId node : watched_) {
    Rpc(node, "db.health", "", 2 * sim::kSec,
        [this, node](const Status& s, const std::string&) {
          if (s.ok()) {
            failures_[node] = 0;
            return;
          }
          // External view says unreachable; consult the internal view
          // before acting (§4.2: both views are combined to improve
          // failure-detection accuracy).
          const bool internally_dead = !simulation()->IsAlive(node);
          if (++failures_[node] >= config_.failure_threshold &&
              internally_dead && config_.auto_repair) {
            // Repair: restart the database process / replace the host. The
            // node rejoins as a recovering replica.
            simulation()->Restart(node);
            failures_[node] = 0;
            ++repairs_;
          }
        });
  }
}

void MonitoringService::ScrapeAll() {
  for (sim::NodeId node : watched_) {
    Rpc(node, "db.metrics", "", 2 * sim::kSec,
        [this, node](const Status& s, const std::string& exposition) {
          NodeHealth& h = health_[node];
          if (!s.ok()) {
            h.reachable = false;
            return;
          }
          ++scrapes_;
          h.reachable = true;
          h.scraped_at = Now();
          double v = 0;
          if (MetricsRegistry::ParseSeries(exposition, "node_role", &v)) {
            h.role = static_cast<int64_t>(v);
          }
          if (MetricsRegistry::ParseSeries(exposition, "node_applied_index",
                                           &v)) {
            h.applied_index = static_cast<int64_t>(v);
          }
          if (MetricsRegistry::ParseSeries(exposition, "node_replication_lag",
                                           &v)) {
            h.replication_lag = static_cast<int64_t>(v);
          }
          if (MetricsRegistry::ParseSeries(
                  exposition,
                  "write_commit_latency_us{quantile=\"0.99\"}", &v)) {
            h.commit_p99_us = v;
          }
        });
  }
}

MonitoringService::ClusterHealth MonitoringService::ClusterSnapshot() const {
  ClusterHealth out;
  out.nodes_watched = watched_.size();
  for (const auto& [node, h] : health_) {
    if (!h.reachable) continue;
    ++out.nodes_reachable;
    if (h.role == 1) {
      ++out.primaries;
    } else if (h.role == 0) {
      ++out.replicas;
    } else if (h.role == 2) {
      ++out.loading;
    }
    out.max_replication_lag = std::max(out.max_replication_lag,
                                       h.replication_lag);
    out.max_commit_p99_us = std::max(out.max_commit_p99_us, h.commit_p99_us);
  }
  return out;
}

}  // namespace memdb::cluster
