// MigrationCoordinator: drives one slot's transfer between two shards
// (§5.2). The control plane invokes it during shard scaling; progress of
// the ownership flip is durable in both shards' transaction logs (2PC), so
// primary failures on either side can be recovered by re-driving the
// protocol.

#ifndef MEMDB_CLUSTER_MIGRATION_H_
#define MEMDB_CLUSTER_MIGRATION_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/actor.h"

namespace memdb::cluster {

class MigrationCoordinator : public sim::Actor {
 public:
  using DoneCallback = std::function<void(const Status&)>;

  MigrationCoordinator(sim::Simulation* sim, sim::NodeId id);

  struct Plan {
    uint16_t slot = 0;
    sim::NodeId source_primary = sim::kInvalidNode;
    sim::NodeId target_primary = sim::kInvalidNode;
    // Every node in the cluster, for the final ownership broadcast.
    std::vector<sim::NodeId> all_nodes;
  };

  // Runs the full protocol: data movement -> block -> digest handshake ->
  // 2PC ownership transfer -> topology broadcast. One migration at a time.
  void Migrate(Plan plan, DoneCallback done);

  bool busy() const { return busy_; }
  // Duration writes to the slot were blocked during the last migration.
  sim::Duration last_write_block_duration() const {
    return last_write_block_duration_;
  }

 private:
  void Step(int step);
  void PollDataMovement();
  void CompareDigests();
  void Ownership(int phase, sim::NodeId target, int next_step,
                 int retries_left = 20);
  void Broadcast();
  void Fail(const Status& s);

  bool busy_ = false;
  Plan plan_;
  DoneCallback done_;
  uint64_t run_ = 0;
  sim::Time block_started_ = 0;
  sim::Duration last_write_block_duration_ = 0;
  uint64_t source_digest_count_ = 0, source_digest_crc_ = 0;
};

}  // namespace memdb::cluster

#endif  // MEMDB_CLUSTER_MIGRATION_H_
