// MonitoringService (§5.1, §4.2): the external watchdog. Polls every node
// every few seconds to build the external health view, combines it with the
// internal view (the simulator's liveness ground truth stands in for peer
// gossip), and repairs nodes it declares failed by restarting/replacing
// them. Repaired nodes come back as recovering replicas.

#ifndef MEMDB_CLUSTER_MONITORING_H_
#define MEMDB_CLUSTER_MONITORING_H_

#include <map>
#include <vector>

#include "sim/actor.h"

namespace memdb::cluster {

class MonitoringService : public sim::Actor {
 public:
  struct Config {
    sim::Duration poll_interval = 5 * sim::kSec;
    // Consecutive failed polls before declaring a node failed.
    int failure_threshold = 2;
    bool auto_repair = true;
  };

  MonitoringService(sim::Simulation* sim, sim::NodeId id, Config config);

  void Watch(sim::NodeId node);

  uint64_t repairs() const { return repairs_; }
  int consecutive_failures(sim::NodeId node) const {
    auto it = failures_.find(node);
    return it == failures_.end() ? 0 : it->second;
  }

 private:
  void PollAll();

  Config config_;
  std::vector<sim::NodeId> watched_;
  std::map<sim::NodeId, int> failures_;
  uint64_t repairs_ = 0;
};

}  // namespace memdb::cluster

#endif  // MEMDB_CLUSTER_MONITORING_H_
