// MonitoringService (§5.1, §4.2): the external watchdog. Polls every node
// every few seconds to build the external health view, combines it with the
// internal view (the simulator's liveness ground truth stands in for peer
// gossip), and repairs nodes it declares failed by restarting/replacing
// them. Repaired nodes come back as recovering replicas.
//
// It also scrapes each node's metrics endpoint ("db.metrics", Prometheus
// text exposition) on the same cadence and folds the per-node series into a
// cluster-wide health snapshot: role census, worst replication lag, worst
// server-side commit p99.

#ifndef MEMDB_CLUSTER_MONITORING_H_
#define MEMDB_CLUSTER_MONITORING_H_

#include <map>
#include <vector>

#include "common/metrics.h"
#include "sim/actor.h"

namespace memdb::cluster {

class MonitoringService : public sim::Actor {
 public:
  struct Config {
    sim::Duration poll_interval = 5 * sim::kSec;
    // Consecutive failed polls before declaring a node failed.
    int failure_threshold = 2;
    bool auto_repair = true;
    // Scrape "db.metrics" alongside the health probe.
    bool scrape_metrics = true;
  };

  // Last successful scrape of one node, parsed from its exposition text.
  struct NodeHealth {
    bool reachable = false;
    int64_t role = -1;  // node_role gauge: 1 primary, 0 replica, 2 loading
    int64_t applied_index = 0;
    int64_t replication_lag = 0;
    double commit_p99_us = 0;  // write_commit_latency_us{quantile="0.99"}
    sim::Time scraped_at = 0;
  };

  // Aggregate over the latest scrape of every watched node.
  struct ClusterHealth {
    size_t nodes_watched = 0;
    size_t nodes_reachable = 0;
    size_t primaries = 0;
    size_t replicas = 0;
    size_t loading = 0;
    int64_t max_replication_lag = 0;
    double max_commit_p99_us = 0;
  };

  MonitoringService(sim::Simulation* sim, sim::NodeId id, Config config);

  void Watch(sim::NodeId node);

  uint64_t repairs() const { return repairs_; }
  int consecutive_failures(sim::NodeId node) const {
    auto it = failures_.find(node);
    return it == failures_.end() ? 0 : it->second;
  }

  const std::map<sim::NodeId, NodeHealth>& node_health() const {
    return health_;
  }
  ClusterHealth ClusterSnapshot() const;
  uint64_t scrapes() const { return scrapes_; }

 private:
  void PollAll();
  void ScrapeAll();

  Config config_;
  std::vector<sim::NodeId> watched_;
  std::map<sim::NodeId, int> failures_;
  std::map<sim::NodeId, NodeHealth> health_;
  uint64_t repairs_ = 0;
  uint64_t scrapes_ = 0;
};

}  // namespace memdb::cluster

#endif  // MEMDB_CLUSTER_MONITORING_H_
