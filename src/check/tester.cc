#include "check/tester.h"

#include <algorithm>

#include "client/db_wire.h"

namespace memdb::check {

using resp::Value;
using sim::NodeId;

// ------------------------------------------------------- CommandGenerator

CommandGenerator::CommandGenerator(const engine::Engine& spec_source,
                                   Options options, uint64_t seed)
    : options_(options), rng_(seed), seed_tag_(seed) {
  static const char* kModelCommands[] = {"GET",    "SET",  "DEL",
                                         "APPEND", "INCR", "EXISTS"};
  for (const engine::CommandSpec* spec : spec_source.ListCommands()) {
    if (options_.model_commands_only) {
      const bool in_model =
          std::any_of(std::begin(kModelCommands), std::end(kModelCommands),
                      [&](const char* c) { return spec->name == c; });
      if (!in_model) continue;
    } else {
      // Skip commands that change global session/server state.
      if (spec->name == "FLUSHALL" || spec->name == "FLUSHDB" ||
          spec->name == "SELECT" || spec->name == "RESTORE") {
        continue;
      }
    }
    commands_.push_back(spec);
  }
}

std::string CommandGenerator::BiasedKey() {
  // Argument biasing: a tiny key space maximizes contention and edge cases.
  return "k" + std::to_string(rng_.Uniform(static_cast<uint64_t>(
                   options_.num_keys)));
}

std::string CommandGenerator::BiasedValue() {
  if (options_.unique_values) {
    return "u" + std::to_string(seed_tag_) + "-" +
           std::to_string(value_counter_++);
  }
  switch (rng_.Uniform(4)) {
    case 0:
      return "";  // empty values stress deletion/empty-string paths
    case 1:
      return std::to_string(rng_.Uniform(static_cast<uint64_t>(
          options_.num_values)));  // integers enable INCR interplay
    case 2:
      return std::string(1, static_cast<char>('a' + rng_.Uniform(3)));
    default:
      return "v" + std::to_string(rng_.Uniform(static_cast<uint64_t>(
                       options_.num_values)));
  }
}

std::vector<std::string> CommandGenerator::Next() {
  const engine::CommandSpec* spec =
      commands_[rng_.Uniform(commands_.size())];
  std::vector<std::string> argv = {spec->name};
  // Determine argument count from the arity spec.
  int argc = spec->arity >= 0 ? spec->arity : -spec->arity;
  // Extra optional arguments exercise parser edge cases, but only outside
  // the model subset (SET's GET/NX options change reply semantics in ways
  // the register model does not track).
  if (!options_.model_commands_only && spec->arity < 0 && rng_.OneIn(3)) {
    ++argc;
  }
  for (int i = 1; i < argc; ++i) {
    const bool is_key_position =
        spec->first_key > 0 && i >= spec->first_key &&
        (spec->last_key == -1 || i <= spec->last_key) &&
        (spec->key_step == 0 ||
         (i - spec->first_key) % spec->key_step == 0);
    if (is_key_position) {
      argv.push_back(BiasedKey());
    } else if (rng_.OneIn(4)) {
      argv.push_back(std::to_string(rng_.Uniform(10)));  // small integers
    } else {
      argv.push_back(BiasedValue());
    }
  }
  return argv;
}

// ----------------------------------------------------------- HistoryClient

HistoryClient::HistoryClient(sim::Simulation* sim, NodeId id,
                             std::vector<NodeId> nodes, Options options,
                             CommandGenerator::Options gen_options)
    : Actor(sim, id),
      nodes_(std::move(nodes)),
      options_(options),
      spec_(),
      generator_(spec_, gen_options, options.seed) {
  After(1, [this] { IssueNext(); });
}

void HistoryClient::IssueNext() {
  if (issued_ >= options_.total_ops) {
    finished_ = true;
    return;
  }
  ++issued_;
  const std::vector<std::string> argv = generator_.Next();
  SendTo(preferred_node_, argv, Now(), /*redirects_left=*/6);
}

void HistoryClient::SendTo(size_t node_index,
                           const std::vector<std::string>& argv,
                           uint64_t invoke_time, int redirects_left) {
  client::DbRequest req;
  req.argv = argv;
  Rpc(nodes_[node_index % nodes_.size()], client::kDbCommand, req.Encode(),
      options_.rpc_timeout,
      [this, node_index, argv, invoke_time, redirects_left](
          const Status& s, const std::string& body) {
        const auto think = [this] {
          After(1 + simulation()->rng().Uniform(options_.max_think_time),
                [this] { IssueNext(); });
        };
        if (!s.ok()) {
          // Timeout: the command may or may not have executed.
          Record(argv, Value::Null(), invoke_time, kNeverReturned);
          preferred_node_ = (node_index + 1) % nodes_.size();
          think();
          return;
        }
        resp::Decoder dec;
        dec.Feed(body);
        Value out;
        if (dec.Decode(&out) != resp::DecodeStatus::kOk) {
          think();
          return;
        }
        if (out.IsError()) {
          client::Redirect redirect;
          if (client::ParseRedirect(out.str, &redirect)) {
            // MOVED/ASK means the command did NOT execute: safe to chase.
            for (size_t i = 0; i < nodes_.size(); ++i) {
              if (nodes_[i] == redirect.node) preferred_node_ = i;
            }
            if (redirects_left > 0) {
              After(2 * sim::kMs, [this, argv, invoke_time, redirects_left] {
                SendTo(preferred_node_, argv, invoke_time,
                       redirects_left - 1);
              });
              return;
            }
            think();  // drop: never executed
            return;
          }
          if (out.str.rfind("LOADING", 0) == 0 ||
              out.str.rfind("TRYAGAIN", 0) == 0) {
            think();  // definitely not executed; drop
            return;
          }
          // UNAVAILABLE / demotion errors: may have executed.
          Record(argv, Value::Null(), invoke_time, kNeverReturned);
          preferred_node_ = (node_index + 1) % nodes_.size();
          think();
          return;
        }
        Record(argv, out, invoke_time, Now());
        think();
      });
}

void HistoryClient::Record(const std::vector<std::string>& argv,
                           const Value& out, uint64_t invoke, uint64_t ret) {
  const engine::CommandSpec* spec = spec_.FindCommand(argv[0]);
  const bool is_write = spec != nullptr && spec->is_write;
  if (ret == kNeverReturned && !is_write) {
    return;  // an unapplied read constrains nothing; drop it
  }
  Operation op;
  op.client = options_.client_id;
  op.input = argv;
  op.output = out;
  op.invoke_time = invoke;
  op.return_time = ret;
  history_.push_back(std::move(op));
}

}  // namespace memdb::check
