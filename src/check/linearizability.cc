#include "check/linearizability.h"

#include <algorithm>
#include <charconv>
#include <map>
#include <memory>
#include <unordered_set>

namespace memdb::check {

using resp::Value;

// ------------------------------------------------------------ KV model

namespace {
// State encoding: "" = key absent, "+<bytes>" = key holds <bytes>.
bool StatePresent(const std::string& s) { return !s.empty(); }
std::string StateValue(const std::string& s) { return s.substr(1); }
std::string MakeState(const std::string& v) { return "+" + v; }

bool ParseI64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && p == s.data() + s.size();
}

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}
}  // namespace

std::string KvRegisterModel::InitialState() const { return ""; }

bool KvRegisterModel::Step(const std::string& state, const Operation& op,
                           std::string* next_state,
                           bool check_output) const {
  if (op.input.empty()) return false;
  const std::string cmd = Upper(op.input[0]);
  const Value& out = op.output;

  if (cmd == "GET") {
    *next_state = state;
    if (!check_output) return true;
    if (!StatePresent(state)) return out.IsNull();
    return out.type == resp::Type::kBulkString && out.str == StateValue(state);
  }
  if (cmd == "SET") {
    if (op.input.size() < 3) return false;
    *next_state = MakeState(op.input[2]);
    return !check_output || out == Value::Ok();
  }
  if (cmd == "DEL") {
    *next_state = "";
    const int64_t expected = StatePresent(state) ? 1 : 0;
    return !check_output || out == Value::Integer(expected);
  }
  if (cmd == "APPEND") {
    if (op.input.size() < 3) return false;
    const std::string base = StatePresent(state) ? StateValue(state) : "";
    const std::string appended = base + op.input[2];
    *next_state = MakeState(appended);
    return !check_output ||
           out == Value::Integer(static_cast<int64_t>(appended.size()));
  }
  if (cmd == "INCR") {
    int64_t current = 0;
    if (StatePresent(state) && !ParseI64(StateValue(state), &current)) {
      *next_state = state;
      return !check_output || out.IsError();
    }
    *next_state = MakeState(std::to_string(current + 1));
    return !check_output || out == Value::Integer(current + 1);
  }
  if (cmd == "EXISTS") {
    *next_state = state;
    return !check_output || out == Value::Integer(StatePresent(state) ? 1 : 0);
  }
  return false;  // command outside the model
}

// ------------------------------------------------------------ WGL checker

namespace {

struct Entry {
  int op = -1;          // index into history
  Entry* match = nullptr;  // for a call entry: its return entry
  uint64_t time = 0;
  Entry* next = nullptr;
  Entry* prev = nullptr;
};

void Lift(Entry* call) {
  // Detach the call and its return from the list.
  call->prev->next = call->next;
  call->next->prev = call->prev;
  Entry* ret = call->match;
  ret->prev->next = ret->next;
  if (ret->next != nullptr) ret->next->prev = ret->prev;
}

void Unlift(Entry* call) {
  Entry* ret = call->match;
  ret->prev->next = ret;
  if (ret->next != nullptr) ret->next->prev = ret;
  call->prev->next = call;
  call->next->prev = call;
}

// Dynamic bitset sized at construction.
struct Bits {
  std::vector<uint64_t> words;
  explicit Bits(size_t n) : words((n + 63) / 64, 0) {}
  void Set(size_t i) { words[i / 64] |= 1ULL << (i % 64); }
  void Clear(size_t i) { words[i / 64] &= ~(1ULL << (i % 64)); }
  std::string KeyWith(const std::string& state) const {
    std::string key(reinterpret_cast<const char*>(words.data()),
                    words.size() * sizeof(uint64_t));
    key.push_back('\x1f');
    key += state;
    return key;
  }
};

}  // namespace

CheckResult CheckLinearizable(const Model& model,
                              const std::vector<Operation>& history,
                              uint64_t max_iterations) {
  CheckResult result;
  const size_t n = history.size();
  if (n == 0) {
    result.linearizable = true;
    return result;
  }
  if (n > 64 * 1024) {
    result.conclusive = false;  // beyond practical search size
    return result;
  }

  // Build the entry list: a call and a return entry per op, sorted by time;
  // calls sort before returns at equal timestamps (equal-time ops are
  // considered concurrent).
  std::vector<std::unique_ptr<Entry>> storage;
  std::vector<std::pair<uint64_t, Entry*>> order;  // (sort key, entry)
  storage.reserve(2 * n + 2);
  for (size_t i = 0; i < n; ++i) {
    auto call = std::make_unique<Entry>();
    auto ret = std::make_unique<Entry>();
    call->op = static_cast<int>(i);
    call->time = history[i].invoke_time;
    ret->op = static_cast<int>(i);
    ret->time = history[i].return_time;
    call->match = ret.get();
    order.emplace_back(0, call.get());
    order.emplace_back(0, ret.get());
    storage.push_back(std::move(call));
    storage.push_back(std::move(ret));
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) {
                     const Entry* ea = a.second;
                     const Entry* eb = b.second;
                     if (ea->time != eb->time) return ea->time < eb->time;
                     const bool a_is_call = ea->match != nullptr;
                     const bool b_is_call = eb->match != nullptr;
                     return a_is_call && !b_is_call;
                   });

  auto head = std::make_unique<Entry>();  // sentinel
  Entry* prev = head.get();
  for (auto& [k, e] : order) {
    prev->next = e;
    e->prev = prev;
    prev = e;
  }
  prev->next = nullptr;

  std::string state = model.InitialState();
  Bits linearized(n);
  std::unordered_set<std::string> cache;
  struct Frame {
    Entry* call;
    std::string prior_state;
  };
  std::vector<Frame> calls;

  Entry* entry = head->next;
  while (head->next != nullptr) {
    if (++result.iterations > max_iterations) {
      result.conclusive = false;
      return result;
    }
    if (entry == nullptr) {
      // Reached the end without linearizing everything: backtrack.
      if (calls.empty()) {
        result.linearizable = false;
        return result;
      }
      Frame frame = std::move(calls.back());
      calls.pop_back();
      state = std::move(frame.prior_state);
      linearized.Clear(static_cast<size_t>(frame.call->op));
      Unlift(frame.call);
      entry = frame.call->next;
      continue;
    }
    if (entry->match != nullptr) {
      // A call: try to linearize this operation here.
      std::string next_state;
      const Operation& op = history[static_cast<size_t>(entry->op)];
      const bool check_output = op.return_time != kNeverReturned;
      if (model.Step(state, op, &next_state, check_output)) {
        linearized.Set(static_cast<size_t>(entry->op));
        const std::string cache_key = linearized.KeyWith(next_state);
        if (cache.insert(cache_key).second) {
          calls.push_back(Frame{entry, state});
          state = std::move(next_state);
          Lift(entry);
          entry = head->next;
          continue;
        }
        linearized.Clear(static_cast<size_t>(entry->op));
      }
      entry = entry->next;
    } else {
      // A return: every operation that returned before now must already be
      // linearized; otherwise backtrack.
      if (calls.empty()) {
        result.linearizable = false;
        return result;
      }
      Frame frame = std::move(calls.back());
      calls.pop_back();
      state = std::move(frame.prior_state);
      linearized.Clear(static_cast<size_t>(frame.call->op));
      Unlift(frame.call);
      entry = frame.call->next;
    }
  }
  result.linearizable = true;
  return result;
}

CheckResult CheckKvHistory(const std::vector<Operation>& history,
                           uint64_t max_iterations) {
  std::map<std::string, std::vector<Operation>> by_key;
  for (const Operation& op : history) by_key[op.Key()].push_back(op);
  KvRegisterModel model;
  CheckResult combined;
  combined.linearizable = true;
  for (auto& [key, ops] : by_key) {
    CheckResult r = CheckLinearizable(model, ops, max_iterations);
    combined.iterations += r.iterations;
    if (!r.conclusive) combined.conclusive = false;
    if (!r.linearizable) {
      combined.linearizable = false;
      return combined;
    }
  }
  return combined;
}

}  // namespace memdb::check
