// Consistency testing framework (§7.2.2.2): spec-driven command generation
// with argument biasing, concurrent history recording against a live
// (simulated) cluster, and failure injection. The recorded history feeds
// the linearizability checker.

#ifndef MEMDB_CHECK_TESTER_H_
#define MEMDB_CHECK_TESTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/linearizability.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "sim/actor.h"

namespace memdb::check {

// Spec-driven generator: reads the engine's command table (name, arity, key
// positions) and produces commands with biased arguments — few distinct
// keys, short values, boundary integers — to maximize collision coverage.
class CommandGenerator {
 public:
  struct Options {
    int num_keys = 4;
    int num_values = 6;
    // Restrict to commands the linearizability model understands; when
    // false, generates across the full registered API (for smoke testing).
    bool model_commands_only = true;
    // Every generated value is globally unique. This maximizes the
    // checker's discriminating power: a lost write can never be masked by
    // another client happening to write the same value.
    bool unique_values = false;
  };

  CommandGenerator(const engine::Engine& spec_source, Options options,
                   uint64_t seed);

  std::vector<std::string> Next();

 private:
  std::string BiasedKey();
  std::string BiasedValue();

  Options options_;
  Rng rng_;
  std::vector<const engine::CommandSpec*> commands_;
  uint64_t seed_tag_;
  uint64_t value_counter_ = 0;
};

// A closed-loop client actor that issues generated commands against a set
// of database nodes, follows MOVED redirects (which are guaranteed to not
// have executed), and records a precise invoke/return history. Errors that
// may have executed (demotions, timeouts) are recorded as indeterminate.
class HistoryClient : public sim::Actor {
 public:
  struct Options {
    int client_id = 0;
    int total_ops = 200;
    sim::Duration max_think_time = 2 * sim::kMs;
    sim::Duration rpc_timeout = 400 * sim::kMs;
    uint64_t seed = 1;
  };

  HistoryClient(sim::Simulation* sim, sim::NodeId id,
                std::vector<sim::NodeId> nodes, Options options,
                CommandGenerator::Options gen_options);

  bool finished() const { return finished_; }
  const std::vector<Operation>& history() const { return history_; }

 private:
  void IssueNext();
  void SendTo(size_t node_index, const std::vector<std::string>& argv,
              uint64_t invoke_time, int redirects_left);
  void Record(const std::vector<std::string>& argv, const resp::Value& out,
              uint64_t invoke, uint64_t ret);

  std::vector<sim::NodeId> nodes_;
  Options options_;
  engine::Engine spec_;  // only for command metadata; initialized before
                         // generator_, which borrows its command table
  CommandGenerator generator_;
  std::vector<Operation> history_;
  int issued_ = 0;
  bool finished_ = false;
  size_t preferred_node_ = 0;
};

}  // namespace memdb::check

#endif  // MEMDB_CHECK_TESTER_H_
