// Linearizability checking (§7.2.2.2): a C++ implementation of the
// Wing–Gong / Lowe algorithm with caching, as used by Porcupine. Takes a
// concurrent history of client operations (invoke/return intervals plus
// observed outputs) and decides whether it is linearizable with respect to
// a sequential model.
//
// Indeterminate operations (timeouts, error replies that may or may not
// have taken effect) are recorded with an infinite return time: the checker
// may place them anywhere after their invocation — including after every
// other operation, which models "never took effect".
//
// Histories over the key-value API are P-compositional: a history is
// linearizable iff each per-key sub-history is, so CheckKvHistory partitions
// by key first.

#ifndef MEMDB_CHECK_LINEARIZABILITY_H_
#define MEMDB_CHECK_LINEARIZABILITY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "resp/resp.h"

namespace memdb::check {

inline constexpr uint64_t kNeverReturned =
    std::numeric_limits<uint64_t>::max();

struct Operation {
  int client = 0;
  std::vector<std::string> input;  // command argv
  resp::Value output;
  uint64_t invoke_time = 0;
  uint64_t return_time = kNeverReturned;  // kNeverReturned = indeterminate

  // The key the operation addresses (for partitioning).
  std::string Key() const { return input.size() > 1 ? input[1] : ""; }
};

// Sequential specification. States are opaque serialized strings so the
// checker can hash and memoize them.
class Model {
 public:
  virtual ~Model() = default;
  virtual std::string InitialState() const = 0;
  // If (op.input, op.output) is a legal transition from `state`, returns
  // true and fills *next_state. When `check_output` is false (indeterminate
  // operations whose reply was never observed), only the state transition
  // is computed and any output is accepted.
  virtual bool Step(const std::string& state, const Operation& op,
                    std::string* next_state, bool check_output) const = 0;
};

// Single-key register/counter model covering GET / SET / DEL / APPEND /
// INCR / EXISTS (enough for read-write linearizability histories).
class KvRegisterModel : public Model {
 public:
  std::string InitialState() const override;
  bool Step(const std::string& state, const Operation& op,
            std::string* next_state, bool check_output) const override;
};

struct CheckResult {
  bool linearizable = false;
  // False when the search hit the iteration budget before deciding.
  bool conclusive = true;
  uint64_t iterations = 0;
};

// Checks one history against a model.
CheckResult CheckLinearizable(const Model& model,
                              const std::vector<Operation>& history,
                              uint64_t max_iterations = 20'000'000);

// Partitions a key-value history per key (P-compositionality) and checks
// every partition with KvRegisterModel.
CheckResult CheckKvHistory(const std::vector<Operation>& history,
                           uint64_t max_iterations = 20'000'000);

}  // namespace memdb::check

#endif  // MEMDB_CHECK_LINEARIZABILITY_H_
