// Hash: field -> value map with Redis-style adaptive encoding. Small hashes
// use a flat listpack-like vector (cache friendly, insertion ordered); large
// ones upgrade to an ordered map (deterministic iteration keeps replicas and
// snapshot restores byte-comparable).

#ifndef MEMDB_DS_HASH_H_
#define MEMDB_DS_HASH_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace memdb::ds {

class Hash {
 public:
  // Upgrade thresholds mirroring hash-max-listpack-entries / -value.
  static constexpr size_t kMaxListpackEntries = 128;
  static constexpr size_t kMaxListpackValueLen = 64;

  // Returns true if the field was newly created (HSET reply semantics).
  bool Set(const std::string& field, std::string value);
  bool Get(const std::string& field, std::string* value) const;
  bool Has(const std::string& field) const;
  // Returns true if the field existed.
  bool Del(const std::string& field);

  size_t Size() const;
  bool Empty() const { return Size() == 0; }

  // Field/value pairs in iteration order (insertion order for listpack,
  // lexicographic for table encoding).
  std::vector<std::pair<std::string, std::string>> Items() const;

  bool listpack_encoded() const { return !upgraded_; }
  size_t ApproxMemory() const { return mem_bytes_ + 64; }

 private:
  void MaybeUpgrade(size_t value_len);

  bool upgraded_ = false;
  std::vector<std::pair<std::string, std::string>> listpack_;
  std::map<std::string, std::string> table_;
  size_t mem_bytes_ = 0;
};

}  // namespace memdb::ds

#endif  // MEMDB_DS_HASH_H_
