// Set: Redis-style adaptive encoding. Sets whose members are all integers
// stay in a sorted int vector ("intset"); adding a non-integer member or
// exceeding the size threshold upgrades to an ordered string set
// (deterministic iteration).

#ifndef MEMDB_DS_SET_H_
#define MEMDB_DS_SET_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"

namespace memdb::ds {

class Set {
 public:
  static constexpr size_t kMaxIntsetEntries = 512;

  // Returns true if the member was newly added.
  bool Add(const std::string& member);
  // Returns true if the member was present.
  bool Remove(const std::string& member);
  bool Contains(const std::string& member) const;

  size_t Size() const;
  bool Empty() const { return Size() == 0; }

  std::vector<std::string> Members() const;

  // Picks a uniformly random member (does not remove). Returns false on an
  // empty set. Drives SRANDMEMBER and the selection step of SPOP; the engine
  // replicates the *effect* (an SREM of the chosen member), which is how the
  // paper's §3.1 non-deterministic command handling works.
  bool RandomMember(Rng* rng, std::string* out) const;

  bool intset_encoded() const { return !upgraded_; }
  size_t ApproxMemory() const { return mem_bytes_ + 64; }

 private:
  static bool ParseInt(const std::string& s, int64_t* out);
  void Upgrade();

  bool upgraded_ = false;
  std::vector<int64_t> ints_;  // sorted
  std::set<std::string> strs_;
  size_t mem_bytes_ = 0;
};

}  // namespace memdb::ds

#endif  // MEMDB_DS_SET_H_
