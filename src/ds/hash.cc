#include "ds/hash.h"

#include <algorithm>

namespace memdb::ds {

void Hash::MaybeUpgrade(size_t value_len) {
  if (upgraded_) return;
  if (listpack_.size() < kMaxListpackEntries &&
      value_len <= kMaxListpackValueLen) {
    return;
  }
  for (auto& [f, v] : listpack_) table_.emplace(std::move(f), std::move(v));
  listpack_.clear();
  listpack_.shrink_to_fit();
  upgraded_ = true;
}

bool Hash::Set(const std::string& field, std::string value) {
  MaybeUpgrade(std::max(field.size(), value.size()));
  if (upgraded_) {
    auto [it, inserted] = table_.insert_or_assign(field, std::move(value));
    if (inserted) {
      mem_bytes_ += field.size() + it->second.size() + 48;
    }
    return inserted;
  }
  for (auto& [f, v] : listpack_) {
    if (f == field) {
      mem_bytes_ += value.size();
      mem_bytes_ -= v.size();
      v = std::move(value);
      return false;
    }
  }
  mem_bytes_ += field.size() + value.size() + 16;
  listpack_.emplace_back(field, std::move(value));
  return true;
}

bool Hash::Get(const std::string& field, std::string* value) const {
  if (upgraded_) {
    auto it = table_.find(field);
    if (it == table_.end()) return false;
    *value = it->second;
    return true;
  }
  for (const auto& [f, v] : listpack_) {
    if (f == field) {
      *value = v;
      return true;
    }
  }
  return false;
}

bool Hash::Has(const std::string& field) const {
  std::string unused;
  return Get(field, &unused);
}

bool Hash::Del(const std::string& field) {
  if (upgraded_) {
    auto it = table_.find(field);
    if (it == table_.end()) return false;
    mem_bytes_ -= field.size() + it->second.size() + 48;
    table_.erase(it);
    return true;
  }
  for (auto it = listpack_.begin(); it != listpack_.end(); ++it) {
    if (it->first == field) {
      mem_bytes_ -= it->first.size() + it->second.size() + 16;
      listpack_.erase(it);
      return true;
    }
  }
  return false;
}

size_t Hash::Size() const {
  return upgraded_ ? table_.size() : listpack_.size();
}

std::vector<std::pair<std::string, std::string>> Hash::Items() const {
  if (!upgraded_) return listpack_;
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(table_.size());
  for (const auto& [f, v] : table_) out.emplace_back(f, v);
  return out;
}

}  // namespace memdb::ds
