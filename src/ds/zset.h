// ZSet: sorted set backed by a skiplist with rank spans (the zskiplist
// design) plus a member->score index. Ordering is by (score, member).

#ifndef MEMDB_DS_ZSET_H_
#define MEMDB_DS_ZSET_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace memdb::ds {

struct ScoredMember {
  std::string member;
  double score;
  bool operator==(const ScoredMember& o) const {
    return member == o.member && score == o.score;
  }
};

// Score interval with optional exclusive bounds ("(1.5" syntax in Redis).
struct ScoreRange {
  double min = -std::numeric_limits<double>::infinity();
  double max = std::numeric_limits<double>::infinity();
  bool min_exclusive = false;
  bool max_exclusive = false;

  bool Contains(double s) const {
    if (min_exclusive ? s <= min : s < min) return false;
    if (max_exclusive ? s >= max : s > max) return false;
    return true;
  }
};

class ZSet {
 public:
  enum class AddOutcome { kAdded, kUpdated, kUnchanged };

  ZSet();
  ~ZSet();
  ZSet(const ZSet&) = delete;
  ZSet& operator=(const ZSet&) = delete;
  ZSet(ZSet&&) noexcept;
  ZSet& operator=(ZSet&&) noexcept;

  AddOutcome Add(const std::string& member, double score);
  bool Remove(const std::string& member);
  bool Score(const std::string& member, double* score) const;
  // 0-based rank in ascending order (reverse=true counts from the top).
  bool Rank(const std::string& member, bool reverse, size_t* rank) const;

  size_t Size() const { return index_.size(); }
  bool Empty() const { return index_.empty(); }

  // Elements with ranks in [start, stop] (inclusive, normalized by caller).
  void RangeByRank(size_t start, size_t stop, bool reverse,
                   std::vector<ScoredMember>* out) const;
  void RangeByScore(const ScoreRange& range,
                    std::vector<ScoredMember>* out) const;
  size_t CountInRange(const ScoreRange& range) const;
  // Removes all elements within the score range; returns count removed.
  size_t RemoveRangeByScore(const ScoreRange& range);

  size_t ApproxMemory() const { return mem_bytes_ + 128; }

 private:
  static constexpr int kMaxLevel = 32;

  struct Node;
  int RandomLevel();
  // First node with score/member >= the range start, nullptr if none.
  Node* FirstInRange(const ScoreRange& range) const;
  void DeleteNode(Node* node, Node** update);
  // Finds the node and fills update[]/rank bookkeeping for deletion.
  Node* FindWithUpdate(const std::string& member, double score,
                       Node** update) const;

  Node* head_;
  Node* tail_ = nullptr;
  int level_ = 1;
  std::unordered_map<std::string, double> index_;
  Rng rng_{0x5A5A5A5AULL};  // fixed seed: same op sequence -> same shape
  size_t mem_bytes_ = 0;
};

}  // namespace memdb::ds

#endif  // MEMDB_DS_ZSET_H_
