#include "ds/set.h"

#include <algorithm>
#include <charconv>
#include <cstddef>

namespace memdb::ds {

bool Set::ParseInt(const std::string& s, int64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  // Reject non-canonical forms ("007", "+1") so intset round-trips exactly.
  return std::to_string(*out) == s;
}

void Set::Upgrade() {
  for (int64_t v : ints_) strs_.insert(std::to_string(v));
  ints_.clear();
  ints_.shrink_to_fit();
  upgraded_ = true;
}

bool Set::Add(const std::string& member) {
  if (!upgraded_) {
    int64_t v;
    if (ParseInt(member, &v)) {
      auto it = std::lower_bound(ints_.begin(), ints_.end(), v);
      if (it != ints_.end() && *it == v) return false;
      ints_.insert(it, v);
      mem_bytes_ += 8;
      if (ints_.size() > kMaxIntsetEntries) Upgrade();
      return true;
    }
    Upgrade();
  }
  auto [it, inserted] = strs_.insert(member);
  if (inserted) mem_bytes_ += member.size() + 48;
  return inserted;
}

bool Set::Remove(const std::string& member) {
  if (!upgraded_) {
    int64_t v;
    if (!ParseInt(member, &v)) return false;
    auto it = std::lower_bound(ints_.begin(), ints_.end(), v);
    if (it == ints_.end() || *it != v) return false;
    ints_.erase(it);
    mem_bytes_ -= 8;
    return true;
  }
  auto it = strs_.find(member);
  if (it == strs_.end()) return false;
  mem_bytes_ -= member.size() + 48;
  strs_.erase(it);
  return true;
}

bool Set::Contains(const std::string& member) const {
  if (!upgraded_) {
    int64_t v;
    if (!ParseInt(member, &v)) return false;
    return std::binary_search(ints_.begin(), ints_.end(), v);
  }
  return strs_.count(member) > 0;
}

size_t Set::Size() const { return upgraded_ ? strs_.size() : ints_.size(); }

std::vector<std::string> Set::Members() const {
  std::vector<std::string> out;
  out.reserve(Size());
  if (!upgraded_) {
    for (int64_t v : ints_) out.push_back(std::to_string(v));
  } else {
    out.assign(strs_.begin(), strs_.end());
  }
  return out;
}

bool Set::RandomMember(Rng* rng, std::string* out) const {
  const size_t n = Size();
  if (n == 0) return false;
  const size_t idx = rng->Uniform(n);
  if (!upgraded_) {
    *out = std::to_string(ints_[idx]);
    return true;
  }
  auto it = strs_.begin();
  std::advance(it, static_cast<ptrdiff_t>(idx));
  *out = *it;
  return true;
}

}  // namespace memdb::ds
