// QuickList: the engine's list representation. Like Redis' quicklist it is a
// doubly-linked chain of small fixed-capacity chunks, giving O(1) push/pop
// at both ends and O(n/chunk) indexed access, without per-element node
// overhead.

#ifndef MEMDB_DS_QUICKLIST_H_
#define MEMDB_DS_QUICKLIST_H_

#include <cstdint>
#include <list>
#include <string>
#include <vector>

namespace memdb::ds {

class QuickList {
 public:
  static constexpr size_t kChunkCapacity = 128;

  size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }

  void PushFront(std::string value);
  void PushBack(std::string value);
  // Return false when the list is empty.
  bool PopFront(std::string* out);
  bool PopBack(std::string* out);

  // Index may not be negative here; callers normalize Redis-style negative
  // indices first. Returns false if out of range.
  bool Index(size_t index, std::string* out) const;
  bool Set(size_t index, std::string value);

  // Appends elements [start, stop] (inclusive, already normalized and
  // clamped by the caller) to *out.
  void Range(size_t start, size_t stop, std::vector<std::string>* out) const;

  // LREM semantics: removes up to `count` occurrences of `value` scanning
  // head->tail (count > 0), tail->head (count < 0), or all (count == 0).
  // Returns the number removed.
  size_t Remove(int64_t count, const std::string& value);

  // LINSERT: inserts `value` before/after the first occurrence of `pivot`.
  // Returns false if pivot was not found.
  bool InsertAround(const std::string& pivot, bool before, std::string value);

  // LTRIM to the inclusive range [start, stop] (normalized by caller). If
  // start > stop the list is cleared.
  void Trim(size_t start, size_t stop);

  // Total payload bytes plus bookkeeping estimate (for memory accounting).
  size_t ApproxMemory() const { return mem_bytes_ + 64; }

  std::vector<std::string> ToVector() const;

 private:
  using Chunk = std::vector<std::string>;
  // Locates the chunk containing `index`; returns iterator and offset.
  std::list<Chunk>::const_iterator Locate(size_t index, size_t* offset) const;
  std::list<Chunk>::iterator Locate(size_t index, size_t* offset);

  std::list<Chunk> chunks_;
  size_t size_ = 0;
  size_t mem_bytes_ = 0;
};

}  // namespace memdb::ds

#endif  // MEMDB_DS_QUICKLIST_H_
