#include "ds/zset.h"

#include <cassert>

namespace memdb::ds {

namespace {
// (score, member) total order used by the skiplist.
bool NodeLess(double s1, const std::string& m1, double s2,
              const std::string& m2) {
  if (s1 != s2) return s1 < s2;
  return m1 < m2;
}
}  // namespace

struct ZSet::Node {
  std::string member;
  double score;
  struct Level {
    Node* forward = nullptr;
    size_t span = 0;  // nodes skipped by following `forward` at this level
  };
  std::vector<Level> levels;
  Node* backward = nullptr;

  Node(std::string m, double s, int level)
      : member(std::move(m)), score(s), levels(static_cast<size_t>(level)) {}
};

ZSet::ZSet() { head_ = new Node("", 0.0, kMaxLevel); }

ZSet::~ZSet() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->levels[0].forward;
    delete n;
    n = next;
  }
}

ZSet::ZSet(ZSet&& other) noexcept
    : head_(other.head_),
      tail_(other.tail_),
      level_(other.level_),
      index_(std::move(other.index_)),
      rng_(other.rng_),
      mem_bytes_(other.mem_bytes_) {
  other.head_ = new Node("", 0.0, kMaxLevel);
  other.tail_ = nullptr;
  other.level_ = 1;
  other.index_.clear();
  other.mem_bytes_ = 0;
}

ZSet& ZSet::operator=(ZSet&& other) noexcept {
  if (this == &other) return *this;
  this->~ZSet();
  new (this) ZSet(std::move(other));
  return *this;
}

int ZSet::RandomLevel() {
  int level = 1;
  while (level < kMaxLevel && rng_.OneIn(4)) ++level;
  return level;
}

ZSet::Node* ZSet::FindWithUpdate(const std::string& member, double score,
                                 Node** update) const {
  Node* x = head_;
  for (int i = level_ - 1; i >= 0; --i) {
    while (x->levels[static_cast<size_t>(i)].forward != nullptr) {
      Node* next = x->levels[static_cast<size_t>(i)].forward;
      if (NodeLess(next->score, next->member, score, member)) {
        x = next;
      } else {
        break;
      }
    }
    update[i] = x;
  }
  Node* candidate = x->levels[0].forward;
  if (candidate != nullptr && candidate->score == score &&
      candidate->member == member) {
    return candidate;
  }
  return nullptr;
}

ZSet::AddOutcome ZSet::Add(const std::string& member, double score) {
  auto it = index_.find(member);
  if (it != index_.end()) {
    if (it->second == score) return AddOutcome::kUnchanged;
    // Remove + reinsert with the new score.
    Node* update[kMaxLevel];
    Node* node = FindWithUpdate(member, it->second, update);
    assert(node != nullptr);
    DeleteNode(node, update);
    index_.erase(it);
    Add(member, score);
    // Add() above re-inserted into index_; fix memory double count.
    mem_bytes_ -= member.size() + 96;
    return AddOutcome::kUpdated;
  }

  Node* update[kMaxLevel];
  size_t rank[kMaxLevel];
  Node* x = head_;
  for (int i = level_ - 1; i >= 0; --i) {
    rank[i] = (i == level_ - 1) ? 0 : rank[i + 1];
    while (x->levels[static_cast<size_t>(i)].forward != nullptr) {
      Node* next = x->levels[static_cast<size_t>(i)].forward;
      if (NodeLess(next->score, next->member, score, member)) {
        rank[i] += x->levels[static_cast<size_t>(i)].span;
        x = next;
      } else {
        break;
      }
    }
    update[i] = x;
  }

  const int new_level = RandomLevel();
  if (new_level > level_) {
    for (int i = level_; i < new_level; ++i) {
      rank[i] = 0;
      update[i] = head_;
      update[i]->levels[static_cast<size_t>(i)].span = index_.size();
    }
    level_ = new_level;
  }

  Node* node = new Node(member, score, new_level);
  for (int i = 0; i < new_level; ++i) {
    auto& ulvl = update[i]->levels[static_cast<size_t>(i)];
    node->levels[static_cast<size_t>(i)].forward = ulvl.forward;
    ulvl.forward = node;
    node->levels[static_cast<size_t>(i)].span = ulvl.span - (rank[0] - rank[i]);
    ulvl.span = (rank[0] - rank[i]) + 1;
  }
  for (int i = new_level; i < level_; ++i) {
    ++update[i]->levels[static_cast<size_t>(i)].span;
  }
  node->backward = (update[0] == head_) ? nullptr : update[0];
  if (node->levels[0].forward != nullptr) {
    node->levels[0].forward->backward = node;
  } else {
    tail_ = node;
  }
  index_.emplace(member, score);
  mem_bytes_ += member.size() + 96;
  return AddOutcome::kAdded;
}

void ZSet::DeleteNode(Node* node, Node** update) {
  for (int i = 0; i < level_; ++i) {
    auto& ulvl = update[i]->levels[static_cast<size_t>(i)];
    if (ulvl.forward == node) {
      ulvl.span += node->levels[static_cast<size_t>(i)].span - 1;
      ulvl.forward = node->levels[static_cast<size_t>(i)].forward;
    } else {
      --ulvl.span;
    }
  }
  if (node->levels[0].forward != nullptr) {
    node->levels[0].forward->backward = node->backward;
  } else {
    tail_ = node->backward;  // nullptr when the zset becomes empty
  }
  while (level_ > 1 &&
         head_->levels[static_cast<size_t>(level_ - 1)].forward == nullptr) {
    --level_;
  }
  delete node;
}

bool ZSet::Remove(const std::string& member) {
  auto it = index_.find(member);
  if (it == index_.end()) return false;
  Node* update[kMaxLevel];
  Node* node = FindWithUpdate(member, it->second, update);
  assert(node != nullptr);
  DeleteNode(node, update);
  mem_bytes_ -= member.size() + 96;
  index_.erase(it);
  return true;
}

bool ZSet::Score(const std::string& member, double* score) const {
  auto it = index_.find(member);
  if (it == index_.end()) return false;
  *score = it->second;
  return true;
}

bool ZSet::Rank(const std::string& member, bool reverse, size_t* rank) const {
  auto it = index_.find(member);
  if (it == index_.end()) return false;
  const double score = it->second;
  size_t traversed = 0;
  const Node* x = head_;
  for (int i = level_ - 1; i >= 0; --i) {
    while (x->levels[static_cast<size_t>(i)].forward != nullptr) {
      const Node* next = x->levels[static_cast<size_t>(i)].forward;
      if (NodeLess(next->score, next->member, score, member) ||
          (next->score == score && next->member == member)) {
        traversed += x->levels[static_cast<size_t>(i)].span;
        x = next;
        if (x->member == member && x->score == score) {
          const size_t asc = traversed - 1;  // head contributes 1
          *rank = reverse ? index_.size() - 1 - asc : asc;
          return true;
        }
      } else {
        break;
      }
    }
  }
  return false;
}

void ZSet::RangeByRank(size_t start, size_t stop, bool reverse,
                       std::vector<ScoredMember>* out) const {
  const size_t n = index_.size();
  if (n == 0 || start > stop || start >= n) return;
  if (stop >= n) stop = n - 1;

  // Walk to ascending rank `target_asc` using spans (1-based internally;
  // the head sentinel occupies rank 0).
  const size_t target_asc = reverse ? n - 1 - stop : start;
  const size_t target_1based = target_asc + 1;
  const Node* x = head_;
  size_t traversed = 0;
  for (int i = level_ - 1; i >= 0; --i) {
    while (x->levels[static_cast<size_t>(i)].forward != nullptr &&
           traversed + x->levels[static_cast<size_t>(i)].span <=
               target_1based) {
      traversed += x->levels[static_cast<size_t>(i)].span;
      x = x->levels[static_cast<size_t>(i)].forward;
    }
  }
  assert(traversed == target_1based);

  const size_t count = stop - start + 1;
  std::vector<ScoredMember> ascending;
  ascending.reserve(count);
  const Node* cur = x;
  for (size_t i = 0; i < count && cur != nullptr; ++i) {
    ascending.push_back({cur->member, cur->score});
    cur = cur->levels[0].forward;
  }
  if (reverse) {
    for (auto it = ascending.rbegin(); it != ascending.rend(); ++it) {
      out->push_back(std::move(*it));
    }
  } else {
    for (auto& sm : ascending) out->push_back(std::move(sm));
  }
}

ZSet::Node* ZSet::FirstInRange(const ScoreRange& range) const {
  Node* x = head_;
  for (int i = level_ - 1; i >= 0; --i) {
    while (x->levels[static_cast<size_t>(i)].forward != nullptr) {
      Node* next = x->levels[static_cast<size_t>(i)].forward;
      const bool below =
          range.min_exclusive ? next->score <= range.min : next->score < range.min;
      if (below) {
        x = next;
      } else {
        break;
      }
    }
  }
  Node* candidate = x->levels[0].forward;
  if (candidate == nullptr || !range.Contains(candidate->score)) return nullptr;
  return candidate;
}

void ZSet::RangeByScore(const ScoreRange& range,
                        std::vector<ScoredMember>* out) const {
  for (const Node* x = FirstInRange(range);
       x != nullptr && range.Contains(x->score); x = x->levels[0].forward) {
    out->push_back({x->member, x->score});
  }
}

size_t ZSet::CountInRange(const ScoreRange& range) const {
  size_t count = 0;
  for (const Node* x = FirstInRange(range);
       x != nullptr && range.Contains(x->score); x = x->levels[0].forward) {
    ++count;
  }
  return count;
}

size_t ZSet::RemoveRangeByScore(const ScoreRange& range) {
  std::vector<ScoredMember> victims;
  RangeByScore(range, &victims);
  for (const auto& sm : victims) Remove(sm.member);
  return victims.size();
}

}  // namespace memdb::ds
