#include "ds/value.h"

namespace memdb::ds {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kString:
      return "string";
    case ValueType::kList:
      return "list";
    case ValueType::kHash:
      return "hash";
    case ValueType::kSet:
      return "set";
    case ValueType::kZSet:
      return "zset";
  }
  return "unknown";
}

size_t Value::ApproxMemory() const {
  switch (type()) {
    case ValueType::kString:
      return str().size() + 48;
    case ValueType::kList:
      return list().ApproxMemory();
    case ValueType::kHash:
      return hash().ApproxMemory();
    case ValueType::kSet:
      return set().ApproxMemory();
    case ValueType::kZSet:
      return zset().ApproxMemory();
  }
  return 0;
}

}  // namespace memdb::ds
