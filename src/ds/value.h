// Value: the engine's per-key object — one of the five supported data
// structures. Equivalent to Redis' robj, minus reference counting (keys own
// their values exclusively).

#ifndef MEMDB_DS_VALUE_H_
#define MEMDB_DS_VALUE_H_

#include <cassert>
#include <string>
#include <variant>

#include "ds/hash.h"
#include "ds/quicklist.h"
#include "ds/set.h"
#include "ds/zset.h"

namespace memdb::ds {

enum class ValueType : uint8_t {
  kString = 0,
  kList = 1,
  kHash = 2,
  kSet = 3,
  kZSet = 4,
};

const char* ValueTypeName(ValueType t);

class Value {
 public:
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(QuickList l) : v_(std::move(l)) {}
  explicit Value(Hash h) : v_(std::move(h)) {}
  explicit Value(Set s) : v_(std::move(s)) {}
  explicit Value(ZSet z) : v_(std::move(z)) {}

  Value(Value&&) noexcept = default;
  Value& operator=(Value&&) noexcept = default;
  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  ValueType type() const { return static_cast<ValueType>(v_.index()); }
  bool IsString() const { return type() == ValueType::kString; }

  std::string& str() { return std::get<std::string>(v_); }
  const std::string& str() const { return std::get<std::string>(v_); }
  QuickList& list() { return std::get<QuickList>(v_); }
  const QuickList& list() const { return std::get<QuickList>(v_); }
  Hash& hash() { return std::get<Hash>(v_); }
  const Hash& hash() const { return std::get<Hash>(v_); }
  Set& set() { return std::get<Set>(v_); }
  const Set& set() const { return std::get<Set>(v_); }
  ZSet& zset() { return std::get<ZSet>(v_); }
  const ZSet& zset() const { return std::get<ZSet>(v_); }

  // Rough resident-memory estimate, used for maxmemory accounting and the
  // fork/COW model in the snapshotting experiments.
  size_t ApproxMemory() const;

 private:
  std::variant<std::string, QuickList, Hash, Set, ZSet> v_;
};

}  // namespace memdb::ds

#endif  // MEMDB_DS_VALUE_H_
