#include "ds/quicklist.h"

#include <cassert>
#include <cstddef>

namespace memdb::ds {

void QuickList::PushFront(std::string value) {
  mem_bytes_ += value.size() + 24;
  if (chunks_.empty() || chunks_.front().size() >= kChunkCapacity) {
    chunks_.emplace_front();
    chunks_.front().reserve(kChunkCapacity);
  }
  Chunk& c = chunks_.front();
  c.insert(c.begin(), std::move(value));
  ++size_;
}

void QuickList::PushBack(std::string value) {
  mem_bytes_ += value.size() + 24;
  if (chunks_.empty() || chunks_.back().size() >= kChunkCapacity) {
    chunks_.emplace_back();
    chunks_.back().reserve(kChunkCapacity);
  }
  chunks_.back().push_back(std::move(value));
  ++size_;
}

bool QuickList::PopFront(std::string* out) {
  if (size_ == 0) return false;
  Chunk& c = chunks_.front();
  *out = std::move(c.front());
  c.erase(c.begin());
  if (c.empty()) chunks_.pop_front();
  --size_;
  mem_bytes_ -= out->size() + 24;
  return true;
}

bool QuickList::PopBack(std::string* out) {
  if (size_ == 0) return false;
  Chunk& c = chunks_.back();
  *out = std::move(c.back());
  c.pop_back();
  if (c.empty()) chunks_.pop_back();
  --size_;
  mem_bytes_ -= out->size() + 24;
  return true;
}

std::list<QuickList::Chunk>::const_iterator QuickList::Locate(
    size_t index, size_t* offset) const {
  assert(index < size_);
  auto it = chunks_.begin();
  while (index >= it->size()) {
    index -= it->size();
    ++it;
  }
  *offset = index;
  return it;
}

std::list<QuickList::Chunk>::iterator QuickList::Locate(size_t index,
                                                        size_t* offset) {
  assert(index < size_);
  auto it = chunks_.begin();
  while (index >= it->size()) {
    index -= it->size();
    ++it;
  }
  *offset = index;
  return it;
}

bool QuickList::Index(size_t index, std::string* out) const {
  if (index >= size_) return false;
  size_t offset;
  auto it = Locate(index, &offset);
  *out = (*it)[offset];
  return true;
}

bool QuickList::Set(size_t index, std::string value) {
  if (index >= size_) return false;
  size_t offset;
  auto it = Locate(index, &offset);
  mem_bytes_ += value.size();
  mem_bytes_ -= (*it)[offset].size();
  (*it)[offset] = std::move(value);
  return true;
}

void QuickList::Range(size_t start, size_t stop,
                      std::vector<std::string>* out) const {
  if (size_ == 0 || start > stop || start >= size_) return;
  if (stop >= size_) stop = size_ - 1;
  size_t offset;
  auto it = Locate(start, &offset);
  for (size_t i = start; i <= stop; ++i) {
    out->push_back((*it)[offset]);
    if (++offset == it->size()) {
      ++it;
      offset = 0;
    }
  }
}

size_t QuickList::Remove(int64_t count, const std::string& value) {
  // Flatten, filter, rebuild. LREM is O(n) in Redis too; chunk juggling in
  // place is not worth the subtlety.
  std::vector<std::string> elems = ToVector();
  const size_t limit =
      count == 0 ? elems.size()
                 : static_cast<size_t>(count > 0 ? count : -count);
  std::vector<bool> drop(elems.size(), false);
  size_t removed = 0;
  if (count >= 0) {
    for (size_t i = 0; i < elems.size() && removed < limit; ++i) {
      if (elems[i] == value) {
        drop[i] = true;
        ++removed;
      }
    }
  } else {
    for (size_t i = elems.size(); i-- > 0 && removed < limit;) {
      if (elems[i] == value) {
        drop[i] = true;
        ++removed;
      }
    }
  }
  if (removed == 0) return 0;
  chunks_.clear();
  size_ = 0;
  mem_bytes_ = 0;
  for (size_t i = 0; i < elems.size(); ++i) {
    if (!drop[i]) PushBack(std::move(elems[i]));
  }
  return removed;
}

bool QuickList::InsertAround(const std::string& pivot, bool before,
                             std::string value) {
  size_t index = 0;
  for (auto it = chunks_.begin(); it != chunks_.end(); ++it) {
    for (size_t offset = 0; offset < it->size(); ++offset, ++index) {
      if ((*it)[offset] == pivot) {
        mem_bytes_ += value.size() + 24;
        const size_t insert_at = before ? offset : offset + 1;
        it->insert(it->begin() + static_cast<ptrdiff_t>(insert_at),
                   std::move(value));
        ++size_;
        return true;
      }
    }
  }
  return false;
}

void QuickList::Trim(size_t start, size_t stop) {
  std::vector<std::string> kept;
  if (start <= stop) Range(start, stop, &kept);
  chunks_.clear();
  size_ = 0;
  mem_bytes_ = 0;
  for (auto& v : kept) PushBack(std::move(v));
}

std::vector<std::string> QuickList::ToVector() const {
  std::vector<std::string> out;
  out.reserve(size_);
  if (size_ > 0) Range(0, size_ - 1, &out);
  return out;
}

}  // namespace memdb::ds
