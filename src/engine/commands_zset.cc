// Sorted-set command family, backed by ds::ZSet.

#include <algorithm>

#include "engine/commands_common.h"
#include "engine/engine.h"

namespace memdb::engine {
namespace {

using resp::Value;

Keyspace::Entry* GetOrCreateZSet(Engine& e, const std::string& key,
                                 ExecContext& ctx, Value* err) {
  Keyspace::Entry* entry = e.LookupWrite(key, ctx);
  if (entry == nullptr) return e.keyspace().Put(key, ds::Value(ds::ZSet()));
  if (entry->value.type() != ds::ValueType::kZSet) {
    *err = ErrWrongType();
    return nullptr;
  }
  return entry;
}

void EraseIfEmptyZSet(Engine& e, const std::string& key) {
  Keyspace::Entry* entry = e.keyspace().FindRaw(key);
  if (entry != nullptr && entry->value.type() == ds::ValueType::kZSet &&
      entry->value.zset().Empty()) {
    e.keyspace().Erase(key);
  }
}

// Parses a ZRANGEBYSCORE-style bound: "5", "(5", "inf", "-inf", "+inf".
bool ParseScoreBound(const std::string& s, double* value, bool* exclusive) {
  *exclusive = false;
  std::string body = s;
  if (!body.empty() && body[0] == '(') {
    *exclusive = true;
    body = body.substr(1);
  }
  return ParseDouble(body, value);
}

// ZADD key [NX|XX] [GT|LT] [CH] [INCR] score member [score member ...]
Value CmdZAdd(Engine& e, const Argv& argv, ExecContext& ctx) {
  bool nx = false, xx = false, gt = false, lt = false, ch = false,
       incr = false;
  size_t i = 2;
  for (; i < argv.size(); ++i) {
    const std::string opt = Engine::Upper(argv[i]);
    if (opt == "NX") {
      nx = true;
    } else if (opt == "XX") {
      xx = true;
    } else if (opt == "GT") {
      gt = true;
    } else if (opt == "LT") {
      lt = true;
    } else if (opt == "CH") {
      ch = true;
    } else if (opt == "INCR") {
      incr = true;
    } else {
      break;
    }
  }
  if ((nx && xx) || (gt && lt) || (nx && (gt || lt))) {
    return Value::Error(
        "ERR GT, LT, and/or NX options at the same time are not compatible");
  }
  const size_t pairs_start = i;
  if (pairs_start >= argv.size() || (argv.size() - pairs_start) % 2 != 0) {
    return ErrSyntax();
  }
  if (incr && argv.size() - pairs_start != 2) {
    return Value::Error(
        "ERR INCR option supports a single increment-element pair");
  }
  // Validate scores before mutating.
  std::vector<std::pair<double, std::string>> updates;
  for (size_t j = pairs_start; j + 1 < argv.size(); j += 2) {
    double score;
    if (!ParseDouble(argv[j], &score)) return ErrNotFloat();
    updates.emplace_back(score, argv[j + 1]);
  }

  Value err = Value::Null();
  Keyspace::Entry* entry = GetOrCreateZSet(e, argv[1], ctx, &err);
  if (entry == nullptr) return err;
  ds::ZSet& z = entry->value.zset();

  int64_t added = 0, changed = 0;
  double incr_result = 0;
  bool incr_skipped = false;
  // Deterministic effect with resolved scores (INCR and GT/LT resolve to
  // absolute scores so replicas converge bit-identically).
  Argv effect = {"ZADD", argv[1]};
  for (auto& [score, member] : updates) {
    double existing;
    const bool exists = z.Score(member, &existing);
    double target = score;
    if (incr) {
      target = exists ? existing + score : score;
      if ((nx && exists) || (xx && !exists) ||
          (gt && exists && target <= existing) ||
          (lt && exists && target >= existing)) {
        incr_skipped = true;
        continue;
      }
      incr_result = target;
    } else {
      if ((nx && exists) || (xx && !exists)) continue;
      if (exists && ((gt && target <= existing) || (lt && target >= existing)))
        continue;
    }
    const ds::ZSet::AddOutcome outcome = z.Add(member, target);
    if (outcome == ds::ZSet::AddOutcome::kAdded) ++added;
    if (outcome != ds::ZSet::AddOutcome::kUnchanged) ++changed;
    effect.push_back(FormatDouble(target));
    effect.push_back(member);
  }
  if (effect.size() > 2) {
    e.Touch(argv[1], ctx);
    ctx.effects.push_back(std::move(effect));
  } else {
    EraseIfEmptyZSet(e, argv[1]);
  }
  ctx.effects_overridden = true;
  if (incr) {
    if (incr_skipped) return Value::Null();
    return Value::Bulk(FormatDouble(incr_result));
  }
  return Value::Integer(ch ? changed : added);
}

Value CmdZIncrBy(Engine& e, const Argv& argv, ExecContext& ctx) {
  double delta;
  if (!ParseDouble(argv[2], &delta)) return ErrNotFloat();
  Value err = Value::Null();
  Keyspace::Entry* entry = GetOrCreateZSet(e, argv[1], ctx, &err);
  if (entry == nullptr) return err;
  double existing = 0;
  entry->value.zset().Score(argv[3], &existing);
  const double target = existing + delta;
  if (std::isnan(target)) {
    EraseIfEmptyZSet(e, argv[1]);
    return Value::Error("ERR resulting score is not a number (NaN)");
  }
  entry->value.zset().Add(argv[3], target);
  e.Touch(argv[1], ctx);
  ctx.effects.push_back({"ZADD", argv[1], FormatDouble(target), argv[3]});
  ctx.effects_overridden = true;
  return Value::Bulk(FormatDouble(target));
}

Value CmdZScore(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kZSet, ctx, false, &err);
  if (err.IsError()) return err;
  double score;
  if (entry == nullptr || !entry->value.zset().Score(argv[2], &score)) {
    return Value::Null();
  }
  return Value::Bulk(FormatDouble(score));
}

Value CmdZMScore(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kZSet, ctx, false, &err);
  if (err.IsError()) return err;
  std::vector<Value> out;
  for (size_t i = 2; i < argv.size(); ++i) {
    double score;
    if (entry != nullptr && entry->value.zset().Score(argv[i], &score)) {
      out.push_back(Value::Bulk(FormatDouble(score)));
    } else {
      out.push_back(Value::Null());
    }
  }
  return Value::Array(std::move(out));
}

Value CmdZCard(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kZSet, ctx, false, &err);
  if (err.IsError()) return err;
  return Value::Integer(
      entry == nullptr ? 0 : static_cast<int64_t>(entry->value.zset().Size()));
}

Value CmdZRem(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kZSet, ctx, true, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Integer(0);
  int64_t removed = 0;
  for (size_t i = 2; i < argv.size(); ++i) {
    if (entry->value.zset().Remove(argv[i])) ++removed;
  }
  if (removed > 0) {
    e.Touch(argv[1], ctx);
    EraseIfEmptyZSet(e, argv[1]);
  }
  return Value::Integer(removed);
}

Value GenericZRank(Engine& e, const Argv& argv, ExecContext& ctx,
                   bool reverse) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kZSet, ctx, false, &err);
  if (err.IsError()) return err;
  size_t rank;
  if (entry == nullptr || !entry->value.zset().Rank(argv[2], reverse, &rank)) {
    return Value::Null();
  }
  return Value::Integer(static_cast<int64_t>(rank));
}

Value CmdZRank(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericZRank(e, argv, ctx, false);
}
Value CmdZRevRank(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericZRank(e, argv, ctx, true);
}

Value EncodeScored(std::vector<ds::ScoredMember> items, bool withscores) {
  std::vector<Value> out;
  out.reserve(items.size() * (withscores ? 2 : 1));
  for (auto& sm : items) {
    out.push_back(Value::Bulk(std::move(sm.member)));
    if (withscores) out.push_back(Value::Bulk(FormatDouble(sm.score)));
  }
  return Value::Array(std::move(out));
}

// ZRANGE key start stop [REV] [WITHSCORES] — rank form only (the BYSCORE
// form is covered by ZRANGEBYSCORE).
Value GenericZRange(Engine& e, const Argv& argv, ExecContext& ctx,
                    bool reverse) {
  int64_t start, stop;
  if (!ParseInt64(argv[2], &start) || !ParseInt64(argv[3], &stop)) {
    return ErrNotInt();
  }
  bool withscores = false;
  for (size_t i = 4; i < argv.size(); ++i) {
    const std::string opt = Engine::Upper(argv[i]);
    if (opt == "WITHSCORES") {
      withscores = true;
    } else if (opt == "REV") {
      reverse = true;
    } else {
      return ErrSyntax();
    }
  }
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kZSet, ctx, false, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Array({});
  const size_t n = entry->value.zset().Size();
  start = NormalizeIndex(start, n);
  stop = NormalizeIndex(stop, n);
  if (start < 0) start = 0;
  if (start >= static_cast<int64_t>(n) || start > stop) {
    return Value::Array({});
  }
  std::vector<ds::ScoredMember> items;
  entry->value.zset().RangeByRank(static_cast<size_t>(start),
                                  static_cast<size_t>(stop), reverse, &items);
  return EncodeScored(std::move(items), withscores);
}

Value CmdZRange(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericZRange(e, argv, ctx, false);
}
Value CmdZRevRange(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericZRange(e, argv, ctx, true);
}

Value GenericZRangeByScore(Engine& e, const Argv& argv, ExecContext& ctx,
                           bool reverse) {
  ds::ScoreRange range;
  const std::string& lo = reverse ? argv[3] : argv[2];
  const std::string& hi = reverse ? argv[2] : argv[3];
  if (!ParseScoreBound(lo, &range.min, &range.min_exclusive) ||
      !ParseScoreBound(hi, &range.max, &range.max_exclusive)) {
    return Value::Error("ERR min or max is not a float");
  }
  bool withscores = false;
  if (argv.size() == 5 && Engine::Upper(argv[4]) == "WITHSCORES") {
    withscores = true;
  } else if (argv.size() > 4) {
    return ErrSyntax();
  }
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kZSet, ctx, false, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Array({});
  std::vector<ds::ScoredMember> items;
  entry->value.zset().RangeByScore(range, &items);
  if (reverse) std::reverse(items.begin(), items.end());
  return EncodeScored(std::move(items), withscores);
}

Value CmdZRangeByScore(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericZRangeByScore(e, argv, ctx, false);
}
Value CmdZRevRangeByScore(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericZRangeByScore(e, argv, ctx, true);
}

Value CmdZCount(Engine& e, const Argv& argv, ExecContext& ctx) {
  ds::ScoreRange range;
  if (!ParseScoreBound(argv[2], &range.min, &range.min_exclusive) ||
      !ParseScoreBound(argv[3], &range.max, &range.max_exclusive)) {
    return Value::Error("ERR min or max is not a float");
  }
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kZSet, ctx, false, &err);
  if (err.IsError()) return err;
  return Value::Integer(
      entry == nullptr
          ? 0
          : static_cast<int64_t>(entry->value.zset().CountInRange(range)));
}

Value CmdZRemRangeByScore(Engine& e, const Argv& argv, ExecContext& ctx) {
  ds::ScoreRange range;
  if (!ParseScoreBound(argv[2], &range.min, &range.min_exclusive) ||
      !ParseScoreBound(argv[3], &range.max, &range.max_exclusive)) {
    return Value::Error("ERR min or max is not a float");
  }
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kZSet, ctx, true, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Integer(0);
  const size_t removed = entry->value.zset().RemoveRangeByScore(range);
  if (removed > 0) {
    e.Touch(argv[1], ctx);
    EraseIfEmptyZSet(e, argv[1]);
  }
  return Value::Integer(static_cast<int64_t>(removed));
}

// ZPOPMIN/ZPOPMAX key [count] — deterministic (lowest/highest), replicates
// as explicit ZREM so replicas and the log stay effect-based.
Value GenericZPop(Engine& e, const Argv& argv, ExecContext& ctx, bool min) {
  int64_t count = 1;
  if (argv.size() == 3 && (!ParseInt64(argv[2], &count) || count < 0)) {
    return ErrNotInt();
  }
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kZSet, ctx, true, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Array({});
  ds::ZSet& z = entry->value.zset();
  std::vector<ds::ScoredMember> victims;
  const size_t n = std::min(static_cast<size_t>(count), z.Size());
  if (n > 0) z.RangeByRank(0, n - 1, /*reverse=*/!min, &victims);
  Argv effect = {"ZREM", argv[1]};
  std::vector<Value> out;
  for (const auto& sm : victims) {
    z.Remove(sm.member);
    effect.push_back(sm.member);
    out.push_back(Value::Bulk(sm.member));
    out.push_back(Value::Bulk(FormatDouble(sm.score)));
  }
  if (!victims.empty()) {
    e.Touch(argv[1], ctx);
    EraseIfEmptyZSet(e, argv[1]);
    ctx.effects.push_back(std::move(effect));
  }
  ctx.effects_overridden = true;
  return Value::Array(std::move(out));
}

Value CmdZPopMin(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericZPop(e, argv, ctx, true);
}
Value CmdZPopMax(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericZPop(e, argv, ctx, false);
}

}  // namespace

void RegisterZSetCommands(Engine* e,
                          const std::function<void(CommandSpec)>& add) {
  add({"ZADD", -4, true, 1, 1, 1, CmdZAdd});
  add({"ZINCRBY", 4, true, 1, 1, 1, CmdZIncrBy});
  add({"ZSCORE", 3, false, 1, 1, 1, CmdZScore});
  add({"ZMSCORE", -3, false, 1, 1, 1, CmdZMScore});
  add({"ZCARD", 2, false, 1, 1, 1, CmdZCard});
  add({"ZREM", -3, true, 1, 1, 1, CmdZRem, /*deny_oom=*/false});
  add({"ZRANK", 3, false, 1, 1, 1, CmdZRank});
  add({"ZREVRANK", 3, false, 1, 1, 1, CmdZRevRank});
  add({"ZRANGE", -4, false, 1, 1, 1, CmdZRange});
  add({"ZREVRANGE", -4, false, 1, 1, 1, CmdZRevRange});
  add({"ZRANGEBYSCORE", -4, false, 1, 1, 1, CmdZRangeByScore});
  add({"ZREVRANGEBYSCORE", -4, false, 1, 1, 1, CmdZRevRangeByScore});
  add({"ZCOUNT", 4, false, 1, 1, 1, CmdZCount});
  add({"ZREMRANGEBYSCORE", 4, true, 1, 1, 1, CmdZRemRangeByScore, /*deny_oom=*/false});
  add({"ZPOPMIN", -2, true, 1, 1, 1, CmdZPopMin, /*deny_oom=*/false});
  add({"ZPOPMAX", -2, true, 1, 1, 1, CmdZPopMax, /*deny_oom=*/false});
}

}  // namespace memdb::engine
