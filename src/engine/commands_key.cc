// Generic key-space commands: existence, expiry, rename, scan, and the
// DUMP/RESTORE pair that slot migration is built on (§5.2).

#include <algorithm>

#include "common/crc.h"
#include "engine/commands_common.h"
#include "engine/engine.h"
#include "engine/snapshot.h"

namespace memdb::engine {
namespace {

using resp::Value;

Value CmdDel(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t removed = 0;
  for (size_t i = 1; i < argv.size(); ++i) {
    if (e.LookupWrite(argv[i], ctx) != nullptr && e.keyspace().Erase(argv[i])) {
      ctx.dirty_keys.push_back(argv[i]);
      ++removed;
    }
  }
  return Value::Integer(removed);
}

Value CmdExists(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t count = 0;
  for (size_t i = 1; i < argv.size(); ++i) {
    if (e.LookupRead(argv[i], ctx) != nullptr) ++count;
  }
  return Value::Integer(count);
}

Value CmdType(Engine& e, const Argv& argv, ExecContext& ctx) {
  Keyspace::Entry* entry = e.LookupRead(argv[1], ctx);
  if (entry == nullptr) return Value::Simple("none");
  return Value::Simple(ds::ValueTypeName(entry->value.type()));
}

// EXPIRE/PEXPIRE/EXPIREAT/PEXPIREAT all normalize to an absolute
// millisecond deadline and replicate as PEXPIREAT (§3.1 determinism).
Value GenericExpire(Engine& e, const Argv& argv, ExecContext& ctx,
                    uint64_t multiplier, bool absolute) {
  int64_t n;
  if (!ParseInt64(argv[2], &n)) return ErrNotInt();
  Keyspace::Entry* entry = e.LookupWrite(argv[1], ctx);
  if (entry == nullptr) return Value::Integer(0);
  int64_t deadline_ms =
      absolute ? n * static_cast<int64_t>(multiplier)
               : static_cast<int64_t>(ctx.now_ms) +
                     n * static_cast<int64_t>(multiplier);
  if (deadline_ms <= static_cast<int64_t>(ctx.now_ms)) {
    // Expiry in the past deletes immediately; replicated as DEL.
    e.keyspace().Erase(argv[1]);
    ctx.dirty_keys.push_back(argv[1]);
    ctx.effects.push_back({"DEL", argv[1]});
    ctx.effects_overridden = true;
    return Value::Integer(1);
  }
  entry->expire_at_ms = static_cast<uint64_t>(deadline_ms);
  ctx.dirty_keys.push_back(argv[1]);
  ctx.effects.push_back({"PEXPIREAT", argv[1], std::to_string(deadline_ms)});
  ctx.effects_overridden = true;
  return Value::Integer(1);
}

Value CmdExpire(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericExpire(e, argv, ctx, 1000, false);
}
Value CmdPExpire(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericExpire(e, argv, ctx, 1, false);
}
Value CmdExpireAt(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericExpire(e, argv, ctx, 1000, true);
}
Value CmdPExpireAt(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericExpire(e, argv, ctx, 1, true);
}

Value GenericTtl(Engine& e, const Argv& argv, ExecContext& ctx,
                 uint64_t divisor) {
  Keyspace::Entry* entry = e.LookupRead(argv[1], ctx);
  if (entry == nullptr) return Value::Integer(-2);
  if (entry->expire_at_ms == 0) return Value::Integer(-1);
  const uint64_t remaining_ms = entry->expire_at_ms - ctx.now_ms;
  return Value::Integer(static_cast<int64_t>(remaining_ms / divisor));
}

Value CmdTtl(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericTtl(e, argv, ctx, 1000);
}
Value CmdPTtl(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericTtl(e, argv, ctx, 1);
}

Value CmdPersist(Engine& e, const Argv& argv, ExecContext& ctx) {
  Keyspace::Entry* entry = e.LookupWrite(argv[1], ctx);
  if (entry == nullptr || entry->expire_at_ms == 0) return Value::Integer(0);
  entry->expire_at_ms = 0;
  ctx.dirty_keys.push_back(argv[1]);
  return Value::Integer(1);
}

// Glob-style matcher supporting * ? [abc] and backslash escapes.
bool GlobMatch(const std::string& pattern, const std::string& str,
               size_t p = 0, size_t s = 0) {
  while (p < pattern.size()) {
    switch (pattern[p]) {
      case '*': {
        while (p + 1 < pattern.size() && pattern[p + 1] == '*') ++p;
        if (p + 1 == pattern.size()) return true;
        for (size_t i = s; i <= str.size(); ++i) {
          if (GlobMatch(pattern, str, p + 1, i)) return true;
        }
        return false;
      }
      case '?':
        if (s == str.size()) return false;
        ++p;
        ++s;
        break;
      case '[': {
        if (s == str.size()) return false;
        size_t q = p + 1;
        bool negate = q < pattern.size() && pattern[q] == '^';
        if (negate) ++q;
        bool matched = false;
        while (q < pattern.size() && pattern[q] != ']') {
          if (q + 2 < pattern.size() && pattern[q + 1] == '-' &&
              pattern[q + 2] != ']') {
            if (pattern[q] <= str[s] && str[s] <= pattern[q + 2])
              matched = true;
            q += 3;
          } else {
            if (pattern[q] == str[s]) matched = true;
            ++q;
          }
        }
        if (q == pattern.size()) return false;  // unterminated class
        if (matched == negate) return false;
        p = q + 1;
        ++s;
        break;
      }
      case '\\':
        if (p + 1 < pattern.size()) ++p;
        [[fallthrough]];
      default:
        if (s == str.size() || pattern[p] != str[s]) return false;
        ++p;
        ++s;
        break;
    }
  }
  return s == str.size();
}

Value CmdKeys(Engine& e, const Argv& argv, ExecContext& ctx) {
  std::vector<Value> out;
  e.keyspace().ForEach([&](const std::string& key, const Keyspace::Entry& en) {
    if (e.keyspace().IsLogicallyExpired(en, ctx.now_ms)) return;
    if (GlobMatch(argv[1], key)) out.push_back(Value::Bulk(key));
  });
  return Value::Array(std::move(out));
}

// SCAN cursor [MATCH pattern] [COUNT n]. Simplified guarantee: a full
// iteration started on a quiescent keyspace visits every key exactly once.
Value CmdScan(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t cursor;
  if (!ParseInt64(argv[1], &cursor) || cursor < 0) return ErrNotInt();
  std::string pattern = "*";
  int64_t count = 10;
  for (size_t i = 2; i < argv.size(); i += 2) {
    if (i + 1 >= argv.size()) return ErrSyntax();
    const std::string opt = Engine::Upper(argv[i]);
    if (opt == "MATCH") {
      pattern = argv[i + 1];
    } else if (opt == "COUNT") {
      if (!ParseInt64(argv[i + 1], &count) || count <= 0) return ErrSyntax();
    } else {
      return ErrSyntax();
    }
  }
  // Iterate keys in sorted order; the cursor is the rank of the next key.
  std::vector<std::string> keys;
  e.keyspace().ForEach([&](const std::string& key, const Keyspace::Entry& en) {
    if (!e.keyspace().IsLogicallyExpired(en, ctx.now_ms)) keys.push_back(key);
  });
  std::sort(keys.begin(), keys.end());
  std::vector<Value> batch;
  size_t i = static_cast<size_t>(cursor);
  for (; i < keys.size() && batch.size() < static_cast<size_t>(count); ++i) {
    if (GlobMatch(pattern, keys[i])) batch.push_back(Value::Bulk(keys[i]));
  }
  const int64_t next = i >= keys.size() ? 0 : static_cast<int64_t>(i);
  return Value::Array({Value::Bulk(std::to_string(next)),
                       Value::Array(std::move(batch))});
}

Value CmdRandomKey(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (ctx.rng == nullptr) return Value::Error("ERR no entropy source");
  for (int attempt = 0; attempt < 16; ++attempt) {
    std::string key = e.keyspace().RandomKey(ctx.rng->Next());
    if (key.empty()) return Value::Null();
    Keyspace::Entry* entry = e.keyspace().FindRaw(key);
    if (entry != nullptr &&
        !e.keyspace().IsLogicallyExpired(*entry, ctx.now_ms)) {
      return Value::Bulk(key);
    }
  }
  return Value::Null();
}

Value CmdRename(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (e.LookupWrite(argv[1], ctx) == nullptr) return ErrNoSuchKey();
  e.keyspace().Rename(argv[1], argv[2]);
  ctx.dirty_keys.push_back(argv[1]);
  ctx.dirty_keys.push_back(argv[2]);
  return Value::Ok();
}

Value CmdRenameNx(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (e.LookupWrite(argv[1], ctx) == nullptr) return ErrNoSuchKey();
  if (e.LookupWrite(argv[2], ctx) != nullptr) return Value::Integer(0);
  e.keyspace().Rename(argv[1], argv[2]);
  ctx.dirty_keys.push_back(argv[1]);
  ctx.dirty_keys.push_back(argv[2]);
  return Value::Integer(1);
}

// DUMP key -> opaque serialized value (with a trailing CRC64), nil if
// missing. TTL is not included, matching Redis semantics.
Value CmdDump(Engine& e, const Argv& argv, ExecContext& ctx) {
  Keyspace::Entry* entry = e.LookupRead(argv[1], ctx);
  if (entry == nullptr) return Value::Null();
  std::string out;
  SerializeValue(entry->value, &out);
  PutFixed64(&out, Crc64(0, out.data(), out.size()));
  return Value::Bulk(std::move(out));
}

// RESTORE key ttl-ms serialized [REPLACE] [ABSTTL]
Value CmdRestore(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t ttl;
  if (!ParseInt64(argv[2], &ttl) || ttl < 0) {
    return Value::Error("ERR Invalid TTL value, must be >= 0");
  }
  bool replace = false, absttl = false;
  for (size_t i = 4; i < argv.size(); ++i) {
    const std::string opt = Engine::Upper(argv[i]);
    if (opt == "REPLACE") {
      replace = true;
    } else if (opt == "ABSTTL") {
      absttl = true;
    } else {
      return ErrSyntax();
    }
  }
  if (!replace && e.LookupWrite(argv[1], ctx) != nullptr) {
    return Value::Error("BUSYKEY Target key name already exists");
  }
  const std::string& blob = argv[3];
  if (blob.size() < 8) {
    return Value::Error("ERR DUMP payload version or checksum are wrong");
  }
  Decoder crc_dec(Slice(blob.data() + blob.size() - 8, 8));
  uint64_t stored_crc;
  crc_dec.GetFixed64(&stored_crc);
  if (stored_crc != Crc64(0, blob.data(), blob.size() - 8)) {
    return Value::Error("ERR DUMP payload version or checksum are wrong");
  }
  Decoder dec(Slice(blob.data(), blob.size() - 8));
  ds::Value value{std::string()};
  if (!DeserializeValue(&dec, &value).ok() || !dec.Empty()) {
    return Value::Error("ERR Bad data format");
  }
  Keyspace::Entry* entry = e.keyspace().Put(argv[1], std::move(value));
  const uint64_t expire_at =
      ttl == 0 ? 0
               : (absttl ? static_cast<uint64_t>(ttl)
                         : ctx.now_ms + static_cast<uint64_t>(ttl));
  entry->expire_at_ms = expire_at;
  e.Touch(argv[1], ctx);
  // Deterministic effect: relative TTLs become absolute.
  Argv effect = {"RESTORE", argv[1], std::to_string(expire_at), argv[3],
                 "REPLACE", "ABSTTL"};
  ctx.effects.push_back(std::move(effect));
  ctx.effects_overridden = true;
  return Value::Ok();
}

Value CmdTouchCmd(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t count = 0;
  for (size_t i = 1; i < argv.size(); ++i) {
    if (e.LookupRead(argv[i], ctx) != nullptr) ++count;
  }
  return Value::Integer(count);
}

}  // namespace

void RegisterKeyCommands(Engine* e,
                         const std::function<void(CommandSpec)>& add) {
  add({"DEL", -2, true, 1, -1, 1, CmdDel, /*deny_oom=*/false});
  add({"UNLINK", -2, true, 1, -1, 1, CmdDel, /*deny_oom=*/false});
  add({"EXISTS", -2, false, 1, -1, 1, CmdExists});
  add({"TYPE", 2, false, 1, 1, 1, CmdType});
  add({"EXPIRE", 3, true, 1, 1, 1, CmdExpire, /*deny_oom=*/false});
  add({"PEXPIRE", 3, true, 1, 1, 1, CmdPExpire, /*deny_oom=*/false});
  add({"EXPIREAT", 3, true, 1, 1, 1, CmdExpireAt, /*deny_oom=*/false});
  add({"PEXPIREAT", 3, true, 1, 1, 1, CmdPExpireAt, /*deny_oom=*/false});
  add({"TTL", 2, false, 1, 1, 1, CmdTtl});
  add({"PTTL", 2, false, 1, 1, 1, CmdPTtl});
  add({"PERSIST", 2, true, 1, 1, 1, CmdPersist, /*deny_oom=*/false});
  add({"KEYS", 2, false, 0, 0, 0, CmdKeys});
  add({"SCAN", -2, false, 0, 0, 0, CmdScan});
  add({"RANDOMKEY", 1, false, 0, 0, 0, CmdRandomKey});
  add({"RENAME", 3, true, 1, 2, 1, CmdRename});
  add({"RENAMENX", 3, true, 1, 2, 1, CmdRenameNx});
  add({"TOUCH", -2, false, 1, -1, 1, CmdTouchCmd});
  add({"DUMP", 2, false, 1, 1, 1, CmdDump});
  add({"RESTORE", -4, true, 1, 1, 1, CmdRestore});
}

}  // namespace memdb::engine
