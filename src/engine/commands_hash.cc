// Hash command family, backed by ds::Hash.

#include <algorithm>

#include "engine/commands_common.h"
#include "engine/engine.h"

namespace memdb::engine {
namespace {

using resp::Value;

Keyspace::Entry* GetOrCreateHash(Engine& e, const std::string& key,
                                 ExecContext& ctx, Value* err) {
  Keyspace::Entry* entry = e.LookupWrite(key, ctx);
  if (entry == nullptr) return e.keyspace().Put(key, ds::Value(ds::Hash()));
  if (entry->value.type() != ds::ValueType::kHash) {
    *err = ErrWrongType();
    return nullptr;
  }
  return entry;
}

void EraseIfEmptyHash(Engine& e, const std::string& key) {
  Keyspace::Entry* entry = e.keyspace().FindRaw(key);
  if (entry != nullptr && entry->value.type() == ds::ValueType::kHash &&
      entry->value.hash().Empty()) {
    e.keyspace().Erase(key);
  }
}

// HSET key field value [field value ...]
Value CmdHSet(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (argv.size() % 2 != 0) {
    return Value::Error("ERR wrong number of arguments for 'HSET' command");
  }
  Value err = Value::Null();
  Keyspace::Entry* entry = GetOrCreateHash(e, argv[1], ctx, &err);
  if (entry == nullptr) return err;
  int64_t added = 0;
  for (size_t i = 2; i + 1 < argv.size(); i += 2) {
    if (entry->value.hash().Set(argv[i], argv[i + 1])) ++added;
  }
  e.Touch(argv[1], ctx);
  return Value::Integer(added);
}

Value CmdHSetNx(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry = GetOrCreateHash(e, argv[1], ctx, &err);
  if (entry == nullptr) return err;
  if (entry->value.hash().Has(argv[2])) {
    EraseIfEmptyHash(e, argv[1]);  // may have just created an empty hash
    return Value::Integer(0);
  }
  entry->value.hash().Set(argv[2], argv[3]);
  e.Touch(argv[1], ctx);
  return Value::Integer(1);
}

Value CmdHGet(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kHash, ctx, false, &err);
  if (err.IsError()) return err;
  std::string v;
  if (entry == nullptr || !entry->value.hash().Get(argv[2], &v)) {
    return Value::Null();
  }
  return Value::Bulk(std::move(v));
}

Value CmdHMGet(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kHash, ctx, false, &err);
  if (err.IsError()) return err;
  std::vector<Value> out;
  for (size_t i = 2; i < argv.size(); ++i) {
    std::string v;
    if (entry != nullptr && entry->value.hash().Get(argv[i], &v)) {
      out.push_back(Value::Bulk(std::move(v)));
    } else {
      out.push_back(Value::Null());
    }
  }
  return Value::Array(std::move(out));
}

Value CmdHDel(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kHash, ctx, true, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Integer(0);
  int64_t removed = 0;
  for (size_t i = 2; i < argv.size(); ++i) {
    if (entry->value.hash().Del(argv[i])) ++removed;
  }
  if (removed > 0) {
    e.Touch(argv[1], ctx);
    EraseIfEmptyHash(e, argv[1]);
  }
  return Value::Integer(removed);
}

Value CmdHExists(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kHash, ctx, false, &err);
  if (err.IsError()) return err;
  return Value::Integer(
      entry != nullptr && entry->value.hash().Has(argv[2]) ? 1 : 0);
}

Value CmdHLen(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kHash, ctx, false, &err);
  if (err.IsError()) return err;
  return Value::Integer(
      entry == nullptr ? 0 : static_cast<int64_t>(entry->value.hash().Size()));
}

Value CmdHStrlen(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kHash, ctx, false, &err);
  if (err.IsError()) return err;
  std::string v;
  if (entry == nullptr || !entry->value.hash().Get(argv[2], &v)) {
    return Value::Integer(0);
  }
  return Value::Integer(static_cast<int64_t>(v.size()));
}

enum class HashDump { kFields, kValues, kBoth };

Value DumpHash(Engine& e, const Argv& argv, ExecContext& ctx, HashDump mode) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kHash, ctx, false, &err);
  if (err.IsError()) return err;
  std::vector<Value> out;
  if (entry != nullptr) {
    for (auto& [f, v] : entry->value.hash().Items()) {
      if (mode != HashDump::kValues) out.push_back(Value::Bulk(f));
      if (mode != HashDump::kFields) out.push_back(Value::Bulk(v));
    }
  }
  return Value::Array(std::move(out));
}

Value CmdHKeys(Engine& e, const Argv& argv, ExecContext& ctx) {
  return DumpHash(e, argv, ctx, HashDump::kFields);
}
Value CmdHVals(Engine& e, const Argv& argv, ExecContext& ctx) {
  return DumpHash(e, argv, ctx, HashDump::kValues);
}
Value CmdHGetAll(Engine& e, const Argv& argv, ExecContext& ctx) {
  return DumpHash(e, argv, ctx, HashDump::kBoth);
}

Value CmdHIncrBy(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t delta;
  if (!ParseInt64(argv[3], &delta)) return ErrNotInt();
  Value err = Value::Null();
  Keyspace::Entry* entry = GetOrCreateHash(e, argv[1], ctx, &err);
  if (entry == nullptr) return err;
  std::string current = "0";
  entry->value.hash().Get(argv[2], &current);
  int64_t n;
  if (!ParseInt64(current, &n)) {
    EraseIfEmptyHash(e, argv[1]);
    return Value::Error("ERR hash value is not an integer");
  }
  if ((delta > 0 && n > INT64_MAX - delta) ||
      (delta < 0 && n < INT64_MIN - delta)) {
    EraseIfEmptyHash(e, argv[1]);
    return Value::Error("ERR increment or decrement would overflow");
  }
  n += delta;
  entry->value.hash().Set(argv[2], std::to_string(n));
  e.Touch(argv[1], ctx);
  return Value::Integer(n);
}

Value CmdHIncrByFloat(Engine& e, const Argv& argv, ExecContext& ctx) {
  double delta;
  if (!ParseDouble(argv[3], &delta)) return ErrNotFloat();
  Value err = Value::Null();
  Keyspace::Entry* entry = GetOrCreateHash(e, argv[1], ctx, &err);
  if (entry == nullptr) return err;
  std::string current = "0";
  entry->value.hash().Get(argv[2], &current);
  double n;
  if (!ParseDouble(current, &n)) {
    EraseIfEmptyHash(e, argv[1]);
    return Value::Error("ERR hash value is not a float");
  }
  n += delta;
  if (std::isnan(n) || std::isinf(n)) {
    EraseIfEmptyHash(e, argv[1]);
    return Value::Error("ERR increment would produce NaN or Infinity");
  }
  const std::string formatted = FormatDouble(n);
  entry->value.hash().Set(argv[2], formatted);
  e.Touch(argv[1], ctx);
  // Replicated by value (float determinism), as HSET.
  ctx.effects.push_back({"HSET", argv[1], argv[2], formatted});
  ctx.effects_overridden = true;
  return Value::Bulk(formatted);
}

// HRANDFIELD key [count [WITHVALUES]]
Value CmdHRandField(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (ctx.rng == nullptr) return Value::Error("ERR no entropy source");
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kHash, ctx, false, &err);
  if (err.IsError()) return err;
  if (argv.size() == 2) {
    if (entry == nullptr) return Value::Null();
    auto items = entry->value.hash().Items();
    return Value::Bulk(items[ctx.rng->Uniform(items.size())].first);
  }
  int64_t count;
  if (!ParseInt64(argv[2], &count)) return ErrNotInt();
  bool withvalues = false;
  if (argv.size() == 4) {
    if (Engine::Upper(argv[3]) != "WITHVALUES") return ErrSyntax();
    withvalues = true;
  } else if (argv.size() > 4) {
    return ErrSyntax();
  }
  if (entry == nullptr) return Value::Array({});
  const auto items = entry->value.hash().Items();
  std::vector<Value> out;
  auto push = [&](size_t idx) {
    out.push_back(Value::Bulk(items[idx].first));
    if (withvalues) out.push_back(Value::Bulk(items[idx].second));
  };
  if (count >= 0) {
    std::vector<size_t> order(items.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    const size_t want =
        std::min<size_t>(static_cast<size_t>(count), items.size());
    for (size_t i = 0; i < want; ++i) {
      const size_t j = i + ctx.rng->Uniform(order.size() - i);
      std::swap(order[i], order[j]);
      push(order[i]);
    }
  } else {
    for (int64_t i = 0; i < -count; ++i) push(ctx.rng->Uniform(items.size()));
  }
  return Value::Array(std::move(out));
}

}  // namespace

void RegisterHashCommands(Engine* e,
                          const std::function<void(CommandSpec)>& add) {
  add({"HSET", -4, true, 1, 1, 1, CmdHSet});
  add({"HMSET", -4, true, 1, 1, 1, CmdHSet});
  add({"HSETNX", 4, true, 1, 1, 1, CmdHSetNx});
  add({"HGET", 3, false, 1, 1, 1, CmdHGet});
  add({"HMGET", -3, false, 1, 1, 1, CmdHMGet});
  add({"HDEL", -3, true, 1, 1, 1, CmdHDel, /*deny_oom=*/false});
  add({"HEXISTS", 3, false, 1, 1, 1, CmdHExists});
  add({"HLEN", 2, false, 1, 1, 1, CmdHLen});
  add({"HSTRLEN", 3, false, 1, 1, 1, CmdHStrlen});
  add({"HKEYS", 2, false, 1, 1, 1, CmdHKeys});
  add({"HVALS", 2, false, 1, 1, 1, CmdHVals});
  add({"HGETALL", 2, false, 1, 1, 1, CmdHGetAll});
  add({"HINCRBY", 4, true, 1, 1, 1, CmdHIncrBy});
  add({"HINCRBYFLOAT", 4, true, 1, 1, 1, CmdHIncrByFloat});
  add({"HRANDFIELD", -2, false, 1, 1, 1, CmdHRandField});
}

}  // namespace memdb::engine
