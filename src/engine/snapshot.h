// RDB-style point-in-time snapshot serialization. A snapshot carries, in
// addition to the data, the transaction-log position it reflects and the
// running log checksum at that position — the ingredients of the paper's
// snapshot correctness verification (§7.2.1).

#ifndef MEMDB_ENGINE_SNAPSHOT_H_
#define MEMDB_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"
#include "engine/keyspace.h"

namespace memdb::engine {

struct SnapshotMeta {
  // Engine version that produced the snapshot (upgrade protection, §7.1).
  std::string engine_version = "7.0.7";
  // Identifier of the last log entry whose effects the snapshot contains.
  uint64_t log_position = 0;
  // Running CRC64 over the transaction log up to log_position.
  uint64_t log_running_checksum = 0;
  uint64_t created_at_ms = 0;
};

// Serializes the whole keyspace + metadata. The returned blob ends with a
// CRC64 over everything preceding it ("checksum covering the data it
// contains", §7.2.1).
std::string SerializeSnapshot(const Keyspace& keyspace,
                              const SnapshotMeta& meta);

// Reads only the metadata header (cheap; used by schedulers and verifiers).
Status ReadSnapshotMeta(Slice blob, SnapshotMeta* meta);

// Full restore: validates magic and data checksum, replaces *keyspace.
Status DeserializeSnapshot(Slice blob, Keyspace* keyspace, SnapshotMeta* meta);

// Single-value serialization, shared with DUMP/RESTORE (slot migration).
void SerializeValue(const ds::Value& value, std::string* out);
Status DeserializeValue(Decoder* dec, ds::Value* out);

}  // namespace memdb::engine

#endif  // MEMDB_ENGINE_SNAPSHOT_H_
