#include "engine/engine.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "engine/commands_common.h"

namespace memdb::engine {

std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  // Integral doubles print without a decimal point, like Redis.
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e17) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Keyspace::Entry* FetchTyped(Engine& e, const std::string& key,
                            ds::ValueType type, ExecContext& ctx,
                            bool for_write, resp::Value* err) {
  Keyspace::Entry* entry =
      for_write ? e.LookupWrite(key, ctx) : e.LookupRead(key, ctx);
  if (entry == nullptr) return nullptr;
  if (entry->value.type() != type) {
    *err = ErrWrongType();
    return nullptr;
  }
  return entry;
}

std::string Engine::Upper(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

Engine::Engine() : Engine(Config{}) {}

Engine::Engine(Config config)
    : config_(config), rng_(config.rng_seed) {
  RegisterAll();
}

void Engine::Register(CommandSpec spec) {
  table_.emplace(spec.name, std::move(spec));
}

void Engine::RegisterAll() {
  auto add = [this](CommandSpec spec) { Register(std::move(spec)); };
  RegisterStringCommands(this, add);
  RegisterKeyCommands(this, add);
  RegisterListCommands(this, add);
  RegisterHashCommands(this, add);
  RegisterSetCommands(this, add);
  RegisterZSetCommands(this, add);
  RegisterServerCommands(this, add);
  RegisterBitmapCommands(this, add);
  RegisterHllCommands(this, add);
  RegisterExtendedCommands(this, add);
}

void Engine::set_metrics(MetricsRegistry* registry) {
  metrics_override_ = registry;
  calls_cache_.clear();  // counters live in the old registry
  evicted_total_ = nullptr;
  expired_total_ = nullptr;
  used_memory_gauge_ = nullptr;
  maxmemory_gauge_ = nullptr;
}

const CommandSpec* Engine::FindCommand(const std::string& name) const {
  auto it = table_.find(Upper(name));
  return it == table_.end() ? nullptr : &it->second;
}

std::vector<const CommandSpec*> Engine::ListCommands() const {
  std::vector<const CommandSpec*> out;
  out.reserve(table_.size());
  for (const auto& [name, spec] : table_) out.push_back(&spec);
  return out;
}

std::vector<std::string> Engine::CommandKeys(const CommandSpec& spec,
                                             const Argv& argv) {
  std::vector<std::string> keys;
  if (spec.first_key == 0) return keys;
  const int argc = static_cast<int>(argv.size());
  int last = spec.last_key == -1 ? argc - 1 : spec.last_key;
  if (last >= argc) last = argc - 1;
  for (int i = spec.first_key; i <= last; i += spec.key_step) {
    keys.push_back(argv[static_cast<size_t>(i)]);
  }
  return keys;
}

void Engine::ExpireNow(const std::string& key, ExecContext& ctx) {
  keyspace_.Erase(key);
  ctx.effects.push_back({"DEL", key});
  ctx.dirty_keys.push_back(key);
  EnsureMemoryMetrics();
  expired_total_->Increment();
}

Keyspace::Entry* Engine::LookupRead(const std::string& key, ExecContext& ctx) {
  Keyspace::Entry* e = keyspace_.FindRaw(key);
  if (e == nullptr) return nullptr;
  if (ctx.role == Role::kReplicaApply) return e;  // effects are literal
  if (keyspace_.IsLogicallyExpired(*e, ctx.now_ms)) {
    if (ctx.role == Role::kPrimary) ExpireNow(key, ctx);
    return nullptr;
  }
  BumpAccess(e, ctx.now_ms);
  return e;
}

Keyspace::Entry* Engine::LookupWrite(const std::string& key,
                                     ExecContext& ctx) {
  return LookupRead(key, ctx);
}

void Engine::Touch(const std::string& key, ExecContext& ctx) {
  keyspace_.OnValueMutated(key);
  Keyspace::Entry* e = keyspace_.FindRaw(key);
  if (e != nullptr) BumpAccess(e, ctx.now_ms);
  ctx.dirty_keys.push_back(key);
}

resp::Value Engine::Execute(const Argv& argv, ExecContext* ctx) {
  if (argv.empty()) return resp::Value::Error("ERR empty command");
  const CommandSpec* spec = FindCommand(argv[0]);
  if (spec == nullptr) {
    return resp::Value::Error("ERR unknown command '" + argv[0] + "'");
  }
  const int argc = static_cast<int>(argv.size());
  if ((spec->arity >= 0 && argc != spec->arity) ||
      (spec->arity < 0 && argc < -spec->arity)) {
    return resp::Value::Error("ERR wrong number of arguments for '" +
                              spec->name + "' command");
  }
  // Fresh entries created by the handler get stamped with this clock.
  keyspace_.set_clock_ms(ctx->now_ms);
  // Admission under maxmemory: size the incoming payload BEFORE running the
  // handler, so a single write larger than the remaining budget is rejected
  // (or evicted around) instead of silently blowing past the ceiling.
  // Memory-relieving writes (deny_oom = false) always run.
  if (spec->is_write && spec->deny_oom && ctx->role == Role::kPrimary &&
      config_.maxmemory_bytes != 0) {
    size_t incoming = 0;
    for (size_t i = 1; i < argv.size(); ++i) incoming += argv[i].size();
    if (!EnsureMemoryFor(incoming, *ctx)) return ErrOom();
  }
  if (ctx->role != Role::kReplicaApply) {
    Counter*& calls = calls_cache_[spec];
    if (calls == nullptr) {
      calls = metrics().GetCounter("engine_commands_total",
                                   {{"cmd", spec->name}});
    }
    calls->Increment();
  }
  // Marks are taken AFTER the admission check: eviction DELs already in
  // ctx->effects survive handlers that rewrite their own effects, and the
  // victims' dirty entries never trigger spurious verbatim replication.
  ctx->effects_overridden = false;
  ctx->effects_mark = ctx->effects.size();
  const size_t dirty_mark = ctx->dirty_keys.size();
  resp::Value reply = spec->handler(*this, argv, *ctx);
  // Default replication: a write that changed something and did not emit
  // custom effects replicates verbatim (matching Redis command
  // propagation).
  if (spec->is_write && ctx->role != Role::kReplicaApply &&
      !ctx->effects_overridden && ctx->dirty_keys.size() > dirty_mark &&
      !reply.IsError()) {
    ctx->effects.push_back(argv);
  }
  if (spec->is_write) {
    EnsureMemoryMetrics();
    used_memory_gauge_->Set(static_cast<int64_t>(keyspace_.used_memory()));
  }
  return reply;
}

resp::Value Engine::Apply(const Argv& argv, uint64_t now_ms) {
  ExecContext ctx;
  ctx.now_ms = now_ms;
  ctx.role = Role::kReplicaApply;
  ctx.rng = &rng_;
  return Execute(argv, &ctx);
}

size_t Engine::ActiveExpire(ExecContext* ctx, size_t limit) {
  keyspace_.set_clock_ms(ctx->now_ms);
  std::vector<std::string> victims = keyspace_.ExpiredKeys(ctx->now_ms, limit);
  for (const std::string& key : victims) ExpireNow(key, *ctx);
  if (!victims.empty()) {
    used_memory_gauge_->Set(static_cast<int64_t>(keyspace_.used_memory()));
  }
  return victims.size();
}

}  // namespace memdb::engine
