// Engine: the in-memory execution engine — the role OSS Redis plays in the
// paper. Executes commands against a Keyspace and emits a *deterministic
// effect stream* (the replication stream of §3.1): most write commands
// replicate verbatim, while non-deterministic ones (SPOP, SRANDMEMBER-driven
// mutations, relative expiries) are rewritten into deterministic effects.
//
// The engine is deliberately unaware of durability, clustering, and
// networking; MemoryDB nodes (src/memorydb) and the Redis baseline
// (src/redisbaseline) both embed it and consume its effect stream.

#ifndef MEMDB_ENGINE_ENGINE_H_
#define MEMDB_ENGINE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "engine/keyspace.h"
#include "resp/resp.h"

namespace memdb::engine {

using Argv = std::vector<std::string>;

// Identity of the embedding server process, surfaced through INFO. The node
// layer (MemoryDB or the Redis baseline) fills this from its own
// configuration and role state; a bare engine reports defaults.
struct ServerInfo {
  std::string engine_version = "7.0.7";
  std::string role = "master";  // "master" | "replica" | "loading"
  uint64_t node_id = 0;
  uint64_t applied_index = 0;   // last applied transaction-log entry
  // Process identity (INFO # Server; fleet scrapers label rows with it).
  // A bare engine / simulated node reports the zero defaults.
  uint64_t pid = 0;
  std::string run_id;           // random hex id, fresh per process start
  uint64_t start_unix_ms = 0;   // wall clock at process start; 0 = unknown
  std::string build_sha;        // git sha the binary was built from
  // Cluster identity (INFO # Cluster): the shard this node belongs to and
  // whether hash-slot routing is active on it.
  std::string shard_id;
  bool cluster_enabled = false;
};

// Who is running the command; controls lazy-expiry behaviour (§2.1: replicas
// never expire keys themselves, they wait for the primary's DEL).
enum class Role {
  kPrimary,       // reads+writes; lazy expiry deletes and emits DEL effects
  kReplicaApply,  // applying replicated effects; expiry checks bypassed
  kReplicaRead,   // serving reads; expired keys invisible but not deleted
};

struct ExecContext {
  uint64_t now_ms = 0;
  Role role = Role::kPrimary;
  Rng* rng = nullptr;  // required for SPOP / SRANDMEMBER / RANDOMKEY
  // Server identity for INFO; nullptr when running the engine standalone.
  const ServerInfo* server = nullptr;

  // -- outputs ------------------------------------------------------------
  // Replication effects produced by the commands executed under this
  // context (already deterministic; ready for the transaction log).
  std::vector<Argv> effects;
  // Keys whose value or expiry changed (drives the client blocking
  // tracker's key-level hazard detection, §3.2).
  std::vector<std::string> dirty_keys;

  // Internal: set by handlers that emit custom effects.
  bool effects_overridden = false;
  size_t effects_mark = 0;
};

struct CommandSpec {
  using Handler = resp::Value (*)(class Engine&, const Argv&, ExecContext&);

  std::string name;
  // Redis arity convention: positive = exact argc, negative = minimum.
  int arity = 0;
  bool is_write = false;
  // Key positions (Redis style): first/last argv index holding keys, step
  // between them; last = -1 means "through the end". 0/0/0 = no keys.
  int first_key = 0;
  int last_key = 0;
  int key_step = 0;
  Handler handler = nullptr;
  // Writes that can only shrink or re-stamp state (DEL, EXPIRE, FLUSHALL…)
  // must stay executable at the memory ceiling — they are how pressure is
  // relieved. Mirrors the inverse of Redis's CMD_DENYOOM flag.
  bool deny_oom = true;
};

// How the primary makes room under `maxmemory` (sampled approximation of
// the Redis policies; DESIGN.md "Memory pressure & load harness").
enum class EvictionPolicy {
  kNoEviction,   // writes beyond the budget fail with -OOM
  kAllKeysLru,   // evict the least-recently-used of a random sample
  kAllKeysLfu,   // evict the least-frequently-used of a random sample
  kVolatileTtl,  // evict the nearest-to-expire of a random TTL'd sample
};

// "noeviction" | "allkeys-lru" | "allkeys-lfu" | "volatile-ttl".
const char* EvictionPolicyName(EvictionPolicy policy);
bool ParseEvictionPolicy(const std::string& name, EvictionPolicy* out);

class Engine {
 public:
  struct Config {
    // 0 = unlimited. A write that would push `used_memory` beyond this
    // either evicts per `eviction_policy` or fails with -OOM.
    uint64_t maxmemory_bytes = 0;
    EvictionPolicy eviction_policy = EvictionPolicy::kNoEviction;
    // Candidates examined per eviction round (Redis maxmemory-samples):
    // larger samples approximate exact LRU/LFU more closely, at more
    // per-write work.
    int eviction_samples = 5;
    uint64_t rng_seed = 0x9e3779b9;
  };

  Engine();  // default configuration
  explicit Engine(Config config);

  // Executes one command. Fills ctx->effects / ctx->dirty_keys for writes.
  resp::Value Execute(const Argv& argv, ExecContext* ctx);

  // Convenience for replicas: applies one replicated effect command.
  resp::Value Apply(const Argv& argv, uint64_t now_ms);

  // Active expiry cycle (primary only): removes up to `limit` expired keys,
  // emitting DEL effects into ctx. Returns number expired.
  size_t ActiveExpire(ExecContext* ctx, size_t limit);

  Keyspace& keyspace() { return keyspace_; }
  const Keyspace& keyspace() const { return keyspace_; }
  Rng& rng() { return rng_; }
  const Config& config() const { return config_; }
  void set_maxmemory(uint64_t bytes) { config_.maxmemory_bytes = bytes; }
  void set_eviction_policy(EvictionPolicy policy) {
    config_.eviction_policy = policy;
  }
  void set_eviction_samples(int samples) { config_.eviction_samples = samples; }

  // The registry backing Commandstats/Latencystats and the METRICS command.
  // An embedding node shares its own registry so engine- and node-level
  // series appear in one scrape; a bare engine uses a private one.
  MetricsRegistry& metrics() {
    return metrics_override_ != nullptr ? *metrics_override_ : own_metrics_;
  }
  const MetricsRegistry& metrics() const {
    return metrics_override_ != nullptr ? *metrics_override_ : own_metrics_;
  }
  void set_metrics(MetricsRegistry* registry);

  const CommandSpec* FindCommand(const std::string& name) const;
  // All registered commands (drives the consistency-test generator, which
  // mirrors the paper's "parse the API specification" approach, §7.2.2.2).
  std::vector<const CommandSpec*> ListCommands() const;

  // Extracts the keys a command addresses, per its key spec.
  static std::vector<std::string> CommandKeys(const CommandSpec& spec,
                                              const Argv& argv);

  static std::string Upper(const std::string& s);

  // ---- helpers shared by command implementations (internal) -------------
  // Read lookup honoring role-specific expiry semantics. Bumps the entry's
  // LRU clock / LFU counter, so eviction sampling sees real access recency.
  Keyspace::Entry* LookupRead(const std::string& key, ExecContext& ctx);
  // Write lookup: on the primary an expired key is deleted (DEL effect).
  Keyspace::Entry* LookupWrite(const std::string& key, ExecContext& ctx);
  // Marks a key dirty and refreshes its memory accounting.
  void Touch(const std::string& key, ExecContext& ctx);

  // LFU counter of `e` after time decay (one step per elapsed minute),
  // without mutating the entry. Exposed for tests and victim scoring.
  static uint8_t LfuDecayedCount(const Keyspace::Entry& e, uint64_t now_ms);

 private:
  void RegisterAll();
  void Register(CommandSpec spec);
  // Deletes an expired key on the primary and replicates the removal.
  void ExpireNow(const std::string& key, ExecContext& ctx);

  // ---- memory pressure (eviction.cc) -------------------------------------
  // Admission check for a primary write of ~`incoming` payload bytes: true
  // if it fits under maxmemory, evicting per policy when needed. False
  // means the command must answer -OOM without running.
  bool EnsureMemoryFor(size_t incoming, ExecContext& ctx);
  // One sampled eviction round; false when nothing is evictable.
  bool EvictOne(ExecContext& ctx);
  // Removes `key` for eviction and replicates the removal as a DEL effect.
  void EvictNow(const std::string& key, ExecContext& ctx);
  // Refreshes the entry's access metadata (LRU clock, probabilistic LFU
  // increment with decay).
  void BumpAccess(Keyspace::Entry* e, uint64_t now_ms);
  // Lazily binds + describes the memory metrics in the current registry.
  void EnsureMemoryMetrics();

  Config config_;
  Keyspace keyspace_;
  Rng rng_;
  std::map<std::string, CommandSpec> table_;  // keyed by uppercase name

  MetricsRegistry own_metrics_;
  MetricsRegistry* metrics_override_ = nullptr;
  // Per-spec cached calls counters so the hot path avoids name lookups.
  std::map<const CommandSpec*, Counter*> calls_cache_;
  // Memory-pressure series, cached for the same reason (reset when the
  // embedding node swaps in its shared registry).
  Counter* evicted_total_ = nullptr;
  Counter* expired_total_ = nullptr;
  Gauge* used_memory_gauge_ = nullptr;
  Gauge* maxmemory_gauge_ = nullptr;
};

// Per-category registration, implemented in commands_*.cc.
void RegisterStringCommands(Engine* e,
                            const std::function<void(CommandSpec)>& add);
void RegisterKeyCommands(Engine* e,
                         const std::function<void(CommandSpec)>& add);
void RegisterListCommands(Engine* e,
                          const std::function<void(CommandSpec)>& add);
void RegisterHashCommands(Engine* e,
                          const std::function<void(CommandSpec)>& add);
void RegisterSetCommands(Engine* e,
                         const std::function<void(CommandSpec)>& add);
void RegisterZSetCommands(Engine* e,
                          const std::function<void(CommandSpec)>& add);
void RegisterServerCommands(Engine* e,
                            const std::function<void(CommandSpec)>& add);
void RegisterBitmapCommands(Engine* e,
                            const std::function<void(CommandSpec)>& add);
void RegisterHllCommands(Engine* e,
                         const std::function<void(CommandSpec)>& add);
void RegisterExtendedCommands(Engine* e,
                              const std::function<void(CommandSpec)>& add);

}  // namespace memdb::engine

#endif  // MEMDB_ENGINE_ENGINE_H_
