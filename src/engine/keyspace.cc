#include "engine/keyspace.h"

namespace memdb::engine {

Keyspace::Entry* Keyspace::FindRaw(const std::string& key) {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

const Keyspace::Entry* Keyspace::FindRaw(const std::string& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

Keyspace::Entry* Keyspace::Find(const std::string& key, uint64_t now_ms) {
  Entry* e = FindRaw(key);
  if (e == nullptr || IsLogicallyExpired(*e, now_ms)) return nullptr;
  return e;
}

const Keyspace::Entry* Keyspace::Find(const std::string& key,
                                      uint64_t now_ms) const {
  const Entry* e = FindRaw(key);
  if (e == nullptr || IsLogicallyExpired(*e, now_ms)) return nullptr;
  return e;
}

Keyspace::Entry* Keyspace::Put(const std::string& key, ds::Value value) {
  Erase(key);
  auto [it, inserted] = map_.emplace(key, Entry(std::move(value)));
  it->second.cached_mem = it->second.value.ApproxMemory() + key.size() + 48;
  used_memory_ += it->second.cached_mem;
  slot_keys_[KeyHashSlot(key)].insert(key);
  return &it->second;
}

bool Keyspace::Erase(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  used_memory_ -= it->second.cached_mem;
  slot_keys_[KeyHashSlot(key)].erase(key);
  map_.erase(it);
  return true;
}

bool Keyspace::Rename(const std::string& src, const std::string& dst) {
  auto it = map_.find(src);
  if (it == map_.end()) return false;
  ds::Value v = std::move(it->second.value);
  const uint64_t expire = it->second.expire_at_ms;
  Erase(src);
  Entry* e = Put(dst, std::move(v));
  e->expire_at_ms = expire;
  return true;
}

void Keyspace::Clear() {
  map_.clear();
  for (auto& s : slot_keys_) s.clear();
  used_memory_ = 0;
}

void Keyspace::OnValueMutated(const std::string& key) {
  Entry* e = FindRaw(key);
  if (e == nullptr) return;
  const size_t new_mem = e->value.ApproxMemory() + key.size() + 48;
  used_memory_ += new_mem;
  used_memory_ -= e->cached_mem;
  e->cached_mem = new_mem;
}

void Keyspace::SetExpiry(const std::string& key, uint64_t expire_at_ms) {
  Entry* e = FindRaw(key);
  if (e != nullptr) e->expire_at_ms = expire_at_ms;
}

std::string Keyspace::RandomKey(uint64_t random_draw) const {
  if (map_.empty()) return "";
  // Deterministic pick: walk to the (draw % size)-th bucket entry. O(n) but
  // RANDOMKEY is rare; acceptable.
  size_t idx = static_cast<size_t>(random_draw % map_.size());
  auto it = map_.begin();
  std::advance(it, static_cast<long>(idx));
  return it->first;
}

const std::set<std::string>& Keyspace::KeysInSlot(uint16_t slot) const {
  return slot_keys_[slot];
}

void Keyspace::ForEach(
    const std::function<void(const std::string&, const Entry&)>& fn) const {
  for (const auto& [k, e] : map_) fn(k, e);
}

std::vector<std::string> Keyspace::ExpiredKeys(uint64_t now_ms,
                                               size_t limit) const {
  std::vector<std::string> out;
  for (const auto& [k, e] : map_) {
    if (IsLogicallyExpired(e, now_ms)) {
      out.push_back(k);
      if (out.size() >= limit) break;
    }
  }
  return out;
}

}  // namespace memdb::engine
