#include "engine/keyspace.h"

namespace memdb::engine {

Keyspace::Entry* Keyspace::FindRaw(const std::string& key) {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

const Keyspace::Entry* Keyspace::FindRaw(const std::string& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

Keyspace::Entry* Keyspace::Find(const std::string& key, uint64_t now_ms) {
  Entry* e = FindRaw(key);
  if (e == nullptr || IsLogicallyExpired(*e, now_ms)) return nullptr;
  return e;
}

const Keyspace::Entry* Keyspace::Find(const std::string& key,
                                      uint64_t now_ms) const {
  const Entry* e = FindRaw(key);
  if (e == nullptr || IsLogicallyExpired(*e, now_ms)) return nullptr;
  return e;
}

Keyspace::Entry* Keyspace::Put(const std::string& key, ds::Value value) {
  Erase(key);
  auto [it, inserted] = map_.emplace(key, Entry(std::move(value)));
  it->second.cached_mem = it->second.value.ApproxMemory() + key.size() + 48;
  it->second.access_at_ms = clock_ms_;
  used_memory_ += it->second.cached_mem;
  if (used_memory_ > peak_memory_) peak_memory_ = used_memory_;
  slot_keys_[KeyHashSlot(key)].insert(key);
  return &it->second;
}

bool Keyspace::Erase(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  used_memory_ -= it->second.cached_mem;
  slot_keys_[KeyHashSlot(key)].erase(key);
  map_.erase(it);
  return true;
}

bool Keyspace::Rename(const std::string& src, const std::string& dst) {
  auto it = map_.find(src);
  if (it == map_.end()) return false;
  ds::Value v = std::move(it->second.value);
  const uint64_t expire = it->second.expire_at_ms;
  Erase(src);
  Entry* e = Put(dst, std::move(v));
  e->expire_at_ms = expire;
  return true;
}

void Keyspace::Clear() {
  map_.clear();
  for (auto& s : slot_keys_) s.clear();
  used_memory_ = 0;
}

void Keyspace::OnValueMutated(const std::string& key) {
  Entry* e = FindRaw(key);
  if (e == nullptr) return;
  const size_t new_mem = e->value.ApproxMemory() + key.size() + 48;
  used_memory_ += new_mem;
  used_memory_ -= e->cached_mem;
  e->cached_mem = new_mem;
  if (used_memory_ > peak_memory_) peak_memory_ = used_memory_;
}

void Keyspace::SetExpiry(const std::string& key, uint64_t expire_at_ms) {
  Entry* e = FindRaw(key);
  if (e != nullptr) e->expire_at_ms = expire_at_ms;
}

std::string Keyspace::RandomKey(uint64_t random_draw) const {
  if (map_.empty()) return "";
  // Deterministic pick: walk to the (draw % size)-th bucket entry. O(n) but
  // RANDOMKEY is rare; acceptable.
  size_t idx = static_cast<size_t>(random_draw % map_.size());
  auto it = map_.begin();
  std::advance(it, static_cast<long>(idx));
  return it->first;
}

std::vector<Keyspace::Sampled> Keyspace::SampleEntries(Rng& rng, size_t want,
                                                       bool volatile_only) {
  std::vector<Sampled> out;
  if (map_.empty() || want == 0) return out;
  const size_t buckets = map_.bucket_count();
  // Bounded random bucket probing, the std::unordered_map analogue of
  // Redis's dictGetSomeKeys: with a volatile-only pool most probes may come
  // up empty, so the probe budget is a small multiple of the sample size —
  // fewer candidates under pressure beats an unbounded scan.
  const size_t max_probes = want * 8 + 8;
  for (size_t probe = 0; probe < max_probes && out.size() < want; ++probe) {
    const size_t b = rng.Uniform(buckets);
    for (auto it = map_.begin(b); it != map_.end(b) && out.size() < want;
         ++it) {
      if (volatile_only && it->second.expire_at_ms == 0) continue;
      out.push_back(Sampled{&it->first, &it->second});
    }
  }
  return out;
}

const std::set<std::string>& Keyspace::KeysInSlot(uint16_t slot) const {
  return slot_keys_[slot];
}

void Keyspace::ForEach(
    const std::function<void(const std::string&, const Entry&)>& fn) const {
  for (const auto& [k, e] : map_) fn(k, e);
}

std::vector<std::string> Keyspace::ExpiredKeys(uint64_t now_ms,
                                               size_t limit) const {
  std::vector<std::string> out;
  for (const auto& [k, e] : map_) {
    if (IsLogicallyExpired(e, now_ms)) {
      out.push_back(k);
      if (out.size() >= limit) break;
    }
  }
  return out;
}

}  // namespace memdb::engine
