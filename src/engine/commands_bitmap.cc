// Bitmap commands over string values: SETBIT / GETBIT / BITCOUNT / BITOP.
// Offsets are capped well below Redis' 4-gigabit limit to keep simulated
// hosts honest about memory.

#include <algorithm>

#include "engine/commands_common.h"
#include "engine/engine.h"

namespace memdb::engine {
namespace {

using resp::Value;

// 64 MiB of bitmap per key is plenty for a simulation target.
constexpr int64_t kMaxBitOffset = 64LL * 1024 * 1024 * 8 - 1;

Value CmdSetBit(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t offset, bit;
  if (!ParseInt64(argv[2], &offset) || offset < 0 ||
      offset > kMaxBitOffset) {
    return Value::Error("ERR bit offset is not an integer or out of range");
  }
  if (!ParseInt64(argv[3], &bit) || (bit != 0 && bit != 1)) {
    return Value::Error("ERR bit is not an integer or out of range");
  }
  Keyspace::Entry* entry = e.LookupWrite(argv[1], ctx);
  if (entry == nullptr) {
    entry = e.keyspace().Put(argv[1], ds::Value(std::string()));
  } else if (!entry->value.IsString()) {
    return ErrWrongType();
  }
  std::string& s = entry->value.str();
  const size_t byte = static_cast<size_t>(offset) / 8;
  const int shift = 7 - static_cast<int>(offset % 8);  // MSB-first, like Redis
  if (s.size() <= byte) s.resize(byte + 1, '\0');
  const int old = (static_cast<uint8_t>(s[byte]) >> shift) & 1;
  if (bit != 0) {
    s[byte] = static_cast<char>(static_cast<uint8_t>(s[byte]) | (1u << shift));
  } else {
    s[byte] =
        static_cast<char>(static_cast<uint8_t>(s[byte]) & ~(1u << shift));
  }
  e.Touch(argv[1], ctx);
  return Value::Integer(old);
}

Value CmdGetBit(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t offset;
  if (!ParseInt64(argv[2], &offset) || offset < 0 ||
      offset > kMaxBitOffset) {
    return Value::Error("ERR bit offset is not an integer or out of range");
  }
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kString, ctx, false, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Integer(0);
  const std::string& s = entry->value.str();
  const size_t byte = static_cast<size_t>(offset) / 8;
  if (byte >= s.size()) return Value::Integer(0);
  const int shift = 7 - static_cast<int>(offset % 8);
  return Value::Integer((static_cast<uint8_t>(s[byte]) >> shift) & 1);
}

// BITCOUNT key [start end]  (byte ranges; negatives count from the end).
Value CmdBitCount(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (argv.size() != 2 && argv.size() != 4) return ErrSyntax();
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kString, ctx, false, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Integer(0);
  const std::string& s = entry->value.str();
  int64_t start = 0, stop = static_cast<int64_t>(s.size()) - 1;
  if (argv.size() == 4) {
    if (!ParseInt64(argv[2], &start) || !ParseInt64(argv[3], &stop)) {
      return ErrNotInt();
    }
    start = NormalizeIndex(start, s.size());
    stop = NormalizeIndex(stop, s.size());
    if (start < 0) start = 0;
    if (stop >= static_cast<int64_t>(s.size())) {
      stop = static_cast<int64_t>(s.size()) - 1;
    }
  }
  int64_t count = 0;
  for (int64_t i = start; i <= stop && i < static_cast<int64_t>(s.size());
       ++i) {
    count += __builtin_popcount(static_cast<uint8_t>(s[static_cast<size_t>(i)]));
  }
  return Value::Integer(count);
}

// BITOP AND|OR|XOR|NOT dst src [src ...]
Value CmdBitOp(Engine& e, const Argv& argv, ExecContext& ctx) {
  const std::string op = Engine::Upper(argv[1]);
  const bool is_not = op == "NOT";
  if (op != "AND" && op != "OR" && op != "XOR" && !is_not) return ErrSyntax();
  if (is_not && argv.size() != 4) {
    return Value::Error("ERR BITOP NOT must be called with a single source");
  }
  std::vector<std::string> sources;
  for (size_t i = 3; i < argv.size(); ++i) {
    Value err = Value::Null();
    Keyspace::Entry* entry =
        FetchTyped(e, argv[i], ds::ValueType::kString, ctx, false, &err);
    if (err.IsError()) return err;
    sources.push_back(entry == nullptr ? "" : entry->value.str());
  }
  size_t max_len = 0;
  for (const auto& s : sources) max_len = std::max(max_len, s.size());
  std::string result(max_len, '\0');
  for (size_t b = 0; b < max_len; ++b) {
    uint8_t acc = sources.empty() || b >= sources[0].size()
                      ? 0
                      : static_cast<uint8_t>(sources[0][b]);
    if (is_not) {
      acc = static_cast<uint8_t>(~acc);
    } else {
      for (size_t i = 1; i < sources.size(); ++i) {
        const uint8_t v =
            b < sources[i].size() ? static_cast<uint8_t>(sources[i][b]) : 0;
        if (op == "AND") {
          acc &= v;
        } else if (op == "OR") {
          acc |= v;
        } else {
          acc ^= v;
        }
      }
    }
    result[b] = static_cast<char>(acc);
  }
  if (result.empty()) {
    if (e.LookupWrite(argv[2], ctx) != nullptr) {
      e.keyspace().Erase(argv[2]);
      ctx.dirty_keys.push_back(argv[2]);
    }
    return Value::Integer(0);
  }
  e.keyspace().Put(argv[2], ds::Value(result));
  e.Touch(argv[2], ctx);
  return Value::Integer(static_cast<int64_t>(result.size()));
}

}  // namespace

void RegisterBitmapCommands(Engine* e,
                            const std::function<void(CommandSpec)>& add) {
  add({"SETBIT", 4, true, 1, 1, 1, CmdSetBit});
  add({"GETBIT", 3, false, 1, 1, 1, CmdGetBit});
  add({"BITCOUNT", -2, false, 1, 1, 1, CmdBitCount});
  add({"BITOP", -4, true, 2, -1, 1, CmdBitOp});
}

}  // namespace memdb::engine
