// String command family: GET/SET and friends, counters, ranges.

#include <algorithm>

#include "engine/commands_common.h"
#include "engine/engine.h"

namespace memdb::engine {
namespace {

using resp::Value;

Keyspace::Entry* GetOrCreateString(Engine& e, const std::string& key,
                                   ExecContext& ctx, Value* err) {
  Keyspace::Entry* entry = e.LookupWrite(key, ctx);
  if (entry == nullptr) return e.keyspace().Put(key, ds::Value(std::string()));
  if (!entry->value.IsString()) {
    *err = ErrWrongType();
    return nullptr;
  }
  return entry;
}

Value CmdGet(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kString, ctx, false, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Null();
  return Value::Bulk(entry->value.str());
}

// SET key value [NX|XX] [GET] [EX s|PX ms|EXAT s|PXAT ms|KEEPTTL]
Value CmdSet(Engine& e, const Argv& argv, ExecContext& ctx) {
  const std::string& key = argv[1];
  const std::string& value = argv[2];
  bool nx = false, xx = false, get = false, keepttl = false;
  uint64_t expire_at_ms = 0;
  bool has_expiry = false;
  for (size_t i = 3; i < argv.size(); ++i) {
    const std::string opt = Engine::Upper(argv[i]);
    auto need_arg = [&](uint64_t multiplier, bool absolute) -> bool {
      if (i + 1 >= argv.size()) return false;
      int64_t n;
      if (!ParseInt64(argv[++i], &n) || (!absolute && n <= 0)) return false;
      expire_at_ms = absolute ? static_cast<uint64_t>(n) * multiplier
                              : ctx.now_ms + static_cast<uint64_t>(n) * multiplier;
      has_expiry = true;
      return true;
    };
    if (opt == "NX") {
      nx = true;
    } else if (opt == "XX") {
      xx = true;
    } else if (opt == "GET") {
      get = true;
    } else if (opt == "KEEPTTL") {
      keepttl = true;
    } else if (opt == "EX") {
      if (!need_arg(1000, false)) return ErrSyntax();
    } else if (opt == "PX") {
      if (!need_arg(1, false)) return ErrSyntax();
    } else if (opt == "EXAT") {
      if (!need_arg(1000, true)) return ErrSyntax();
    } else if (opt == "PXAT") {
      if (!need_arg(1, true)) return ErrSyntax();
    } else {
      return ErrSyntax();
    }
  }
  if (nx && xx) return ErrSyntax();

  Keyspace::Entry* existing = e.LookupWrite(key, ctx);
  Value prior = Value::Null();
  if (get) {
    if (existing != nullptr && !existing->value.IsString())
      return ErrWrongType();
    if (existing != nullptr) prior = Value::Bulk(existing->value.str());
  }
  if ((nx && existing != nullptr) || (xx && existing == nullptr)) {
    return get ? prior : Value::Null();
  }

  const uint64_t kept_expiry =
      (keepttl && existing != nullptr) ? existing->expire_at_ms : 0;
  Keyspace::Entry* entry = e.keyspace().Put(key, ds::Value(value));
  entry->expire_at_ms = has_expiry ? expire_at_ms : kept_expiry;
  e.Touch(key, ctx);

  // Deterministic effect: NX/XX/GET resolved, relative expiries made
  // absolute.
  Argv effect = {"SET", key, value};
  if (has_expiry) {
    effect.push_back("PXAT");
    effect.push_back(std::to_string(expire_at_ms));
  } else if (keepttl) {
    effect.push_back("KEEPTTL");
  }
  ctx.effects.push_back(std::move(effect));
  ctx.effects_overridden = true;
  return get ? prior : Value::Ok();
}

Value CmdSetNx(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (e.LookupWrite(argv[1], ctx) != nullptr) return Value::Integer(0);
  e.keyspace().Put(argv[1], ds::Value(argv[2]));
  e.Touch(argv[1], ctx);
  return Value::Integer(1);
}

Value SetWithTtl(Engine& e, const Argv& argv, ExecContext& ctx,
                 uint64_t multiplier) {
  int64_t ttl;
  if (!ParseInt64(argv[2], &ttl)) return ErrNotInt();
  if (ttl <= 0) {
    return Value::Error("ERR invalid expire time in '" +
                        Engine::Upper(argv[0]) + "' command");
  }
  const uint64_t expire_at =
      ctx.now_ms + static_cast<uint64_t>(ttl) * multiplier;
  Keyspace::Entry* entry = e.keyspace().Put(argv[1], ds::Value(argv[3]));
  entry->expire_at_ms = expire_at;
  e.Touch(argv[1], ctx);
  ctx.effects.push_back(
      {"SET", argv[1], argv[3], "PXAT", std::to_string(expire_at)});
  ctx.effects_overridden = true;
  return Value::Ok();
}

Value CmdSetEx(Engine& e, const Argv& argv, ExecContext& ctx) {
  return SetWithTtl(e, argv, ctx, 1000);
}

Value CmdPSetEx(Engine& e, const Argv& argv, ExecContext& ctx) {
  return SetWithTtl(e, argv, ctx, 1);
}

Value CmdGetSet(Engine& e, const Argv& argv, ExecContext& ctx) {
  Keyspace::Entry* existing = e.LookupWrite(argv[1], ctx);
  if (existing != nullptr && !existing->value.IsString())
    return ErrWrongType();
  Value prior = existing == nullptr ? Value::Null()
                                    : Value::Bulk(existing->value.str());
  e.keyspace().Put(argv[1], ds::Value(argv[2]));
  e.Touch(argv[1], ctx);
  ctx.effects.push_back({"SET", argv[1], argv[2]});
  ctx.effects_overridden = true;
  return prior;
}

Value CmdGetDel(Engine& e, const Argv& argv, ExecContext& ctx) {
  Keyspace::Entry* existing = e.LookupWrite(argv[1], ctx);
  if (existing == nullptr) return Value::Null();
  if (!existing->value.IsString()) return ErrWrongType();
  Value prior = Value::Bulk(existing->value.str());
  e.keyspace().Erase(argv[1]);
  ctx.dirty_keys.push_back(argv[1]);
  ctx.effects.push_back({"DEL", argv[1]});
  ctx.effects_overridden = true;
  return prior;
}

Value CmdAppend(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry = GetOrCreateString(e, argv[1], ctx, &err);
  if (entry == nullptr) return err;
  entry->value.str().append(argv[2]);
  e.Touch(argv[1], ctx);
  return Value::Integer(static_cast<int64_t>(entry->value.str().size()));
}

Value CmdStrlen(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kString, ctx, false, &err);
  if (err.IsError()) return err;
  return Value::Integer(
      entry == nullptr ? 0 : static_cast<int64_t>(entry->value.str().size()));
}

Value IncrDecrBy(Engine& e, const Argv& argv, ExecContext& ctx,
                 int64_t delta) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kString, ctx, true, &err);
  if (err.IsError()) return err;
  int64_t current = 0;
  if (entry != nullptr && !ParseInt64(entry->value.str(), &current)) {
    return ErrNotInt();
  }
  // Overflow check.
  if ((delta > 0 && current > INT64_MAX - delta) ||
      (delta < 0 && current < INT64_MIN - delta)) {
    return Value::Error("ERR increment or decrement would overflow");
  }
  const int64_t result = current + delta;
  if (entry == nullptr) {
    e.keyspace().Put(argv[1], ds::Value(std::to_string(result)));
  } else {
    entry->value.str() = std::to_string(result);
  }
  e.Touch(argv[1], ctx);
  return Value::Integer(result);
}

Value CmdIncr(Engine& e, const Argv& argv, ExecContext& ctx) {
  return IncrDecrBy(e, argv, ctx, 1);
}

Value CmdDecr(Engine& e, const Argv& argv, ExecContext& ctx) {
  return IncrDecrBy(e, argv, ctx, -1);
}

Value CmdIncrBy(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t delta;
  if (!ParseInt64(argv[2], &delta)) return ErrNotInt();
  return IncrDecrBy(e, argv, ctx, delta);
}

Value CmdDecrBy(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t delta;
  if (!ParseInt64(argv[2], &delta)) return ErrNotInt();
  if (delta == INT64_MIN) return ErrNotInt();
  return IncrDecrBy(e, argv, ctx, -delta);
}

Value CmdIncrByFloat(Engine& e, const Argv& argv, ExecContext& ctx) {
  double delta;
  if (!ParseDouble(argv[2], &delta)) return ErrNotFloat();
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kString, ctx, true, &err);
  if (err.IsError()) return err;
  double current = 0;
  if (entry != nullptr && !ParseDouble(entry->value.str(), &current)) {
    return ErrNotFloat();
  }
  const double result = current + delta;
  if (std::isnan(result) || std::isinf(result)) {
    return Value::Error("ERR increment would produce NaN or Infinity");
  }
  const std::string formatted = FormatDouble(result);
  if (entry == nullptr) {
    e.keyspace().Put(argv[1], ds::Value(formatted));
  } else {
    entry->value.str() = formatted;
  }
  e.Touch(argv[1], ctx);
  // Float arithmetic replicated by value, not by operation (Redis does the
  // same to keep replicas bit-identical).
  ctx.effects.push_back({"SET", argv[1], formatted});
  ctx.effects_overridden = true;
  return Value::Bulk(formatted);
}

Value CmdMSet(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (argv.size() % 2 != 1) {
    return Value::Error("ERR wrong number of arguments for 'MSET' command");
  }
  for (size_t i = 1; i + 1 < argv.size(); i += 2) {
    e.keyspace().Put(argv[i], ds::Value(argv[i + 1]));
    e.Touch(argv[i], ctx);
  }
  return Value::Ok();
}

Value CmdMSetNx(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (argv.size() % 2 != 1) {
    return Value::Error("ERR wrong number of arguments for 'MSETNX' command");
  }
  for (size_t i = 1; i + 1 < argv.size(); i += 2) {
    if (e.LookupWrite(argv[i], ctx) != nullptr) return Value::Integer(0);
  }
  for (size_t i = 1; i + 1 < argv.size(); i += 2) {
    e.keyspace().Put(argv[i], ds::Value(argv[i + 1]));
    e.Touch(argv[i], ctx);
  }
  return Value::Integer(1);
}

Value CmdMGet(Engine& e, const Argv& argv, ExecContext& ctx) {
  std::vector<Value> out;
  out.reserve(argv.size() - 1);
  for (size_t i = 1; i < argv.size(); ++i) {
    Keyspace::Entry* entry = e.LookupRead(argv[i], ctx);
    if (entry == nullptr || !entry->value.IsString()) {
      out.push_back(Value::Null());
    } else {
      out.push_back(Value::Bulk(entry->value.str()));
    }
  }
  return Value::Array(std::move(out));
}

Value CmdSetRange(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t offset;
  if (!ParseInt64(argv[2], &offset) || offset < 0) {
    return Value::Error("ERR offset is out of range");
  }
  if (argv[3].empty()) {
    // Zero-length writes never create or extend the key.
    Keyspace::Entry* existing = e.LookupRead(argv[1], ctx);
    if (existing != nullptr && !existing->value.IsString())
      return ErrWrongType();
    return Value::Integer(
        existing == nullptr
            ? 0
            : static_cast<int64_t>(existing->value.str().size()));
  }
  Value err = Value::Null();
  Keyspace::Entry* entry = GetOrCreateString(e, argv[1], ctx, &err);
  if (entry == nullptr) return err;
  std::string& s = entry->value.str();
  const size_t end = static_cast<size_t>(offset) + argv[3].size();
  if (s.size() < end) s.resize(end, '\0');
  s.replace(static_cast<size_t>(offset), argv[3].size(), argv[3]);
  e.Touch(argv[1], ctx);
  return Value::Integer(static_cast<int64_t>(s.size()));
}

Value CmdGetRange(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kString, ctx, false, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Bulk("");
  int64_t start, stop;
  if (!ParseInt64(argv[2], &start) || !ParseInt64(argv[3], &stop)) {
    return ErrNotInt();
  }
  const std::string& s = entry->value.str();
  const int64_t n = static_cast<int64_t>(s.size());
  start = NormalizeIndex(start, s.size());
  stop = NormalizeIndex(stop, s.size());
  if (start < 0) start = 0;
  if (stop >= n) stop = n - 1;
  if (n == 0 || start > stop) return Value::Bulk("");
  return Value::Bulk(s.substr(static_cast<size_t>(start),
                              static_cast<size_t>(stop - start + 1)));
}

}  // namespace

void RegisterStringCommands(Engine* e,
                            const std::function<void(CommandSpec)>& add) {
  add({"GET", 2, false, 1, 1, 1, CmdGet});
  add({"SET", -3, true, 1, 1, 1, CmdSet});
  add({"SETNX", 3, true, 1, 1, 1, CmdSetNx});
  add({"SETEX", 4, true, 1, 1, 1, CmdSetEx});
  add({"PSETEX", 4, true, 1, 1, 1, CmdPSetEx});
  add({"GETSET", 3, true, 1, 1, 1, CmdGetSet});
  add({"GETDEL", 2, true, 1, 1, 1, CmdGetDel, /*deny_oom=*/false});
  add({"APPEND", 3, true, 1, 1, 1, CmdAppend});
  add({"STRLEN", 2, false, 1, 1, 1, CmdStrlen});
  add({"INCR", 2, true, 1, 1, 1, CmdIncr});
  add({"DECR", 2, true, 1, 1, 1, CmdDecr});
  add({"INCRBY", 3, true, 1, 1, 1, CmdIncrBy});
  add({"DECRBY", 3, true, 1, 1, 1, CmdDecrBy});
  add({"INCRBYFLOAT", 3, true, 1, 1, 1, CmdIncrByFloat});
  add({"MSET", -3, true, 1, -1, 2, CmdMSet});
  add({"MSETNX", -3, true, 1, -1, 2, CmdMSetNx});
  add({"MGET", -2, false, 1, -1, 1, CmdMGet});
  add({"SETRANGE", 4, true, 1, 1, 1, CmdSetRange});
  add({"GETRANGE", 4, false, 1, 1, 1, CmdGetRange});
}

}  // namespace memdb::engine
