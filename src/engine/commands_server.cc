// Server / connection commands that execute inside the engine. Cluster and
// session concerns (WAIT, READONLY, MULTI/EXEC queueing) live in the node
// layers, which intercept those commands before dispatching here.

#include "engine/commands_common.h"
#include "engine/engine.h"

namespace memdb::engine {
namespace {

using resp::Value;

Value CmdPing(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (argv.size() == 2) return Value::Bulk(argv[1]);
  return Value::Simple("PONG");
}

Value CmdEcho(Engine& e, const Argv& argv, ExecContext& ctx) {
  return Value::Bulk(argv[1]);
}

Value CmdDbSize(Engine& e, const Argv& argv, ExecContext& ctx) {
  return Value::Integer(static_cast<int64_t>(e.keyspace().Size()));
}

Value CmdFlushAll(Engine& e, const Argv& argv, ExecContext& ctx) {
  e.keyspace().Clear();
  ctx.effects.push_back({"FLUSHALL"});
  ctx.effects_overridden = true;
  ctx.dirty_keys.push_back("*flushall*");
  return Value::Ok();
}

Value CmdTime(Engine& e, const Argv& argv, ExecContext& ctx) {
  const uint64_t secs = ctx.now_ms / 1000;
  const uint64_t usecs = (ctx.now_ms % 1000) * 1000;
  return Value::Array(
      {Value::Bulk(std::to_string(secs)), Value::Bulk(std::to_string(usecs))});
}

Value CmdSelect(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t db;
  if (!ParseInt64(argv[1], &db)) return ErrNotInt();
  // Cluster-mode engines expose only database 0, like Redis Cluster.
  if (db != 0) return Value::Error("ERR DB index is out of range");
  return Value::Ok();
}

Value CmdCommand(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (argv.size() >= 2 && Engine::Upper(argv[1]) == "COUNT") {
    return Value::Integer(static_cast<int64_t>(e.ListCommands().size()));
  }
  // COMMAND with no args: reply with per-command metadata arrays
  // [name, arity, flags, first_key, last_key, step].
  std::vector<Value> out;
  for (const CommandSpec* spec : e.ListCommands()) {
    std::vector<Value> flags;
    flags.push_back(Value::Simple(spec->is_write ? "write" : "readonly"));
    out.push_back(Value::Array({
        Value::Bulk(spec->name),
        Value::Integer(spec->arity),
        Value::Array(std::move(flags)),
        Value::Integer(spec->first_key),
        Value::Integer(spec->last_key),
        Value::Integer(spec->key_step),
    }));
  }
  return Value::Array(std::move(out));
}

Value CmdInfo(Engine& e, const Argv& argv, ExecContext& ctx) {
  std::string out;
  out += "# Server\r\nengine_version:7.0.7-memdb\r\n";
  out += "# Memory\r\nused_memory:" +
         std::to_string(e.keyspace().used_memory()) + "\r\n";
  out += "maxmemory:" + std::to_string(e.config().maxmemory_bytes) + "\r\n";
  out += "# Keyspace\r\ndb0:keys=" + std::to_string(e.keyspace().Size()) +
         "\r\n";
  return Value::Bulk(std::move(out));
}

}  // namespace

void RegisterServerCommands(Engine* e,
                            const std::function<void(CommandSpec)>& add) {
  add({"PING", -1, false, 0, 0, 0, CmdPing});
  add({"ECHO", 2, false, 0, 0, 0, CmdEcho});
  add({"DBSIZE", 1, false, 0, 0, 0, CmdDbSize});
  add({"FLUSHALL", -1, true, 0, 0, 0, CmdFlushAll});
  add({"FLUSHDB", -1, true, 0, 0, 0, CmdFlushAll});
  add({"TIME", 1, false, 0, 0, 0, CmdTime});
  add({"SELECT", 2, false, 0, 0, 0, CmdSelect});
  add({"COMMAND", -1, false, 0, 0, 0, CmdCommand});
  add({"INFO", -1, false, 0, 0, 0, CmdInfo});
}

}  // namespace memdb::engine
