// Server / connection commands that execute inside the engine. Cluster and
// session concerns (WAIT, READONLY, MULTI/EXEC queueing) live in the node
// layers, which intercept those commands before dispatching here.

#include <cctype>
#include <cstdio>

#include "engine/commands_common.h"
#include "engine/engine.h"

namespace memdb::engine {
namespace {

using resp::Value;

Value CmdPing(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (argv.size() == 2) return Value::Bulk(argv[1]);
  return Value::Simple("PONG");
}

Value CmdEcho(Engine& e, const Argv& argv, ExecContext& ctx) {
  return Value::Bulk(argv[1]);
}

Value CmdDbSize(Engine& e, const Argv& argv, ExecContext& ctx) {
  return Value::Integer(static_cast<int64_t>(e.keyspace().Size()));
}

Value CmdFlushAll(Engine& e, const Argv& argv, ExecContext& ctx) {
  e.keyspace().Clear();
  ctx.effects.push_back({"FLUSHALL"});
  ctx.effects_overridden = true;
  ctx.dirty_keys.push_back("*flushall*");
  return Value::Ok();
}

Value CmdTime(Engine& e, const Argv& argv, ExecContext& ctx) {
  const uint64_t secs = ctx.now_ms / 1000;
  const uint64_t usecs = (ctx.now_ms % 1000) * 1000;
  return Value::Array(
      {Value::Bulk(std::to_string(secs)), Value::Bulk(std::to_string(usecs))});
}

Value CmdSelect(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t db;
  if (!ParseInt64(argv[1], &db)) return ErrNotInt();
  // Cluster-mode engines expose only database 0, like Redis Cluster.
  if (db != 0) return Value::Error("ERR DB index is out of range");
  return Value::Ok();
}

Value CmdCommand(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (argv.size() >= 2 && Engine::Upper(argv[1]) == "COUNT") {
    return Value::Integer(static_cast<int64_t>(e.ListCommands().size()));
  }
  // COMMAND with no args: reply with per-command metadata arrays
  // [name, arity, flags, first_key, last_key, step].
  std::vector<Value> out;
  for (const CommandSpec* spec : e.ListCommands()) {
    std::vector<Value> flags;
    flags.push_back(Value::Simple(spec->is_write ? "write" : "readonly"));
    out.push_back(Value::Array({
        Value::Bulk(spec->name),
        Value::Integer(spec->arity),
        Value::Array(std::move(flags)),
        Value::Integer(spec->first_key),
        Value::Integer(spec->last_key),
        Value::Integer(spec->key_step),
    }));
  }
  return Value::Array(std::move(out));
}

std::string LowerName(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

Value CmdInfo(Engine& e, const Argv& argv, ExecContext& ctx) {
  static const ServerInfo kDefaultInfo;
  const ServerInfo& srv = ctx.server != nullptr ? *ctx.server : kDefaultInfo;
  const std::string section =
      argv.size() >= 2 ? Engine::Upper(argv[1]) : std::string();
  auto want = [&](const char* s) { return section.empty() || section == s; };
  const MetricsRegistry& reg = e.metrics();
  std::string out;

  if (want("SERVER")) {
    out += "# Server\r\n";
    out += "engine_version:" + srv.engine_version + "\r\n";
    out += "engine:memorydb\r\n";
    out += "node_id:" + std::to_string(srv.node_id) + "\r\n";
    out += "process_id:" + std::to_string(srv.pid) + "\r\n";
    out += "run_id:" + (srv.run_id.empty() ? std::string("0") : srv.run_id) +
           "\r\n";
    const uint64_t uptime_s =
        (srv.start_unix_ms != 0 && ctx.now_ms > srv.start_unix_ms)
            ? (ctx.now_ms - srv.start_unix_ms) / 1000
            : 0;
    out += "uptime_in_seconds:" + std::to_string(uptime_s) + "\r\n";
    out += "build_sha:" +
           (srv.build_sha.empty() ? std::string("unknown") : srv.build_sha) +
           "\r\n";
  }
  if (want("CLIENTS")) {
    // Backed by the net layer's gauges when a RespServer shares this
    // registry; a bare engine (or the simulated path) reports zeros.
    auto gauge = [&](const char* name) -> int64_t {
      const Gauge* g = reg.FindGauge(name);
      return g == nullptr ? 0 : g->value();
    };
    out += "# Clients\r\n";
    out += "connected_clients:" +
           std::to_string(gauge("net_connected_clients")) + "\r\n";
    out += "blocked_clients:" + std::to_string(gauge("net_blocked_clients")) +
           "\r\n";
    out += "client_recent_max_input_buffer:" +
           std::to_string(gauge("net_client_recent_max_input_buffer")) +
           "\r\n";
    out += "maxclients:" + std::to_string(gauge("net_maxclients")) + "\r\n";
  }
  if (want("REPLICATION")) {
    // Gauges come from the replication layer when a log-fed replica or a
    // durable primary shares this registry; a bare engine reports the
    // neutral defaults.
    auto gauge = [&](const char* name) -> int64_t {
      const Gauge* g = reg.FindGauge(name);
      return g == nullptr ? 0 : g->value();
    };
    auto counter = [&](const char* name) -> uint64_t {
      const Counter* c = reg.FindCounter(name);
      return c == nullptr ? 0 : c->value();
    };
    out += "# Replication\r\n";
    out += "role:" + srv.role + "\r\n";
    out += "applied_index:" + std::to_string(srv.applied_index) + "\r\n";
    // Automatic-failover state (§4.1/§4.2): present on every role so a
    // monitor can watch a promotion progress through replica -> master.
    // The gauge holds failover::FailoverState; map it back to its name.
    auto failover_state_name = [](int64_t s) -> const char* {
      switch (s) {
        case 1: return "acquiring";
        case 2: return "holding";
        case 3: return "monitoring";
        case 4: return "electing";
        case 5: return "replaying";
        case 6: return "fenced";
        default: return "none";
      }
    };
    out += "master_failover_state:" +
           std::string(failover_state_name(gauge("failover_state"))) + "\r\n";
    out += "failovers_total:" + std::to_string(counter("failovers_total")) +
           "\r\n";
    out += "last_failover_duration_ms:" +
           std::to_string(gauge("failover_last_duration_ms")) + "\r\n";
    if (srv.role == "replica" || srv.role == "fenced") {
      // Link to the transaction log, and how far behind its commit index
      // this replica's applied state is.
      out += "replica_link_status:" +
             std::string(gauge("repl_link_up") != 0 ? "up" : "down") + "\r\n";
      out += "replica_lag_records:" +
             std::to_string(gauge("repl_lag_records")) + "\r\n";
      out += "replica_lag_bytes:" + std::to_string(gauge("repl_lag_bytes")) +
             "\r\n";
      out += "replica_log_commit_index:" +
             std::to_string(gauge("repl_last_commit_index")) + "\r\n";
      out += "replica_entries_applied:" +
             std::to_string(counter("repl_entries_applied_total")) + "\r\n";
      out += "replica_bytes_applied:" +
             std::to_string(counter("repl_bytes_applied_total")) + "\r\n";
      out += "replica_checksum_failures:" +
             std::to_string(counter("repl_checksum_failures_total")) + "\r\n";
    } else {
      // Primary: consumers parked on the log group (lower bound — each log
      // replica only sees its own long-poll followers) and the log's
      // commit index from the last tail poll.
      out += "log_consumers:" + std::to_string(gauge("repl_log_consumers")) +
             "\r\n";
      out += "log_commit_index:" +
             std::to_string(gauge("txlog_tail_commit_index")) + "\r\n";
      out += "checksum_records_injected:" +
             std::to_string(counter("txlog_checksum_records_total")) + "\r\n";
    }
  }
  if (want("MEMORY")) {
    auto counter = [&](const char* name) -> uint64_t {
      const Counter* c = reg.FindCounter(name);
      return c == nullptr ? 0 : c->value();
    };
    out += "# Memory\r\nused_memory:" +
           std::to_string(e.keyspace().used_memory()) + "\r\n";
    out += "used_memory_peak:" +
           std::to_string(e.keyspace().used_memory_peak()) + "\r\n";
    out += "maxmemory:" + std::to_string(e.config().maxmemory_bytes) + "\r\n";
    out += "maxmemory_policy:" +
           std::string(EvictionPolicyName(e.config().eviction_policy)) +
           "\r\n";
    out += "maxmemory_samples:" +
           std::to_string(e.config().eviction_samples) + "\r\n";
    out += "evicted_keys:" + std::to_string(counter("evicted_keys_total")) +
           "\r\n";
    out += "expired_keys:" + std::to_string(counter("expired_keys_total")) +
           "\r\n";
  }
  if (want("STATS")) {
    uint64_t total_calls = 0;
    for (const auto& [labels, c] : reg.CounterSeries("engine_commands_total")) {
      total_calls += c->value();
    }
    out += "# Stats\r\n";
    out += "total_commands_processed:" + std::to_string(total_calls) + "\r\n";
    // Node-level counters appear once the embedding layer shares its
    // registry (zero for a bare engine).
    for (const auto& [metric, field] :
         {std::pair<const char*, const char*>{"node_records_appended_total",
                                              "total_records_appended"},
          std::pair<const char*, const char*>{"node_reads_deferred_total",
                                              "reads_deferred_by_tracker"}}) {
      const Counter* c = reg.FindCounter(metric);
      out += std::string(field) + ":" +
             std::to_string(c == nullptr ? 0 : c->value()) + "\r\n";
    }
  }
  if (want("COMMANDSTATS")) {
    out += "# Commandstats\r\n";
    for (const auto& [labels, c] : reg.CounterSeries("engine_commands_total")) {
      if (c->value() == 0 || labels.empty()) continue;
      const std::string& cmd = labels.front().second;
      const Histogram* h = reg.FindHistogram("cmd_latency_us", labels);
      const uint64_t usec = h == nullptr ? 0 : h->sum();
      char line[160];
      std::snprintf(line, sizeof(line),
                    "cmdstat_%s:calls=%llu,usec=%llu,usec_per_call=%.2f\r\n",
                    LowerName(cmd).c_str(),
                    static_cast<unsigned long long>(c->value()),
                    static_cast<unsigned long long>(usec),
                    c->value() == 0
                        ? 0.0
                        : static_cast<double>(usec) /
                              static_cast<double>(c->value()));
      out += line;
    }
  }
  if (want("LATENCYSTATS")) {
    out += "# Latencystats\r\n";
    for (const auto& [labels, h] : reg.HistogramSeries("cmd_latency_us")) {
      if (h->count() == 0 || labels.empty()) continue;
      char line[160];
      std::snprintf(line, sizeof(line),
                    "latency_percentiles_usec_%s:p50=%llu,p99=%llu,"
                    "p99.9=%llu\r\n",
                    LowerName(labels.front().second).c_str(),
                    static_cast<unsigned long long>(h->Percentile(0.50)),
                    static_cast<unsigned long long>(h->Percentile(0.99)),
                    static_cast<unsigned long long>(h->Percentile(0.999)));
      out += line;
    }
  }
  if (want("RPC")) {
    // Populated when the embedding layer talks to an out-of-process
    // transaction log (rpc client instruments live in the shared registry);
    // a bare engine or sim deployment reports an empty section.
    out += "# Rpc\r\n";
    for (const auto& [labels, c] : reg.CounterSeries("rpc_requests_total")) {
      if (labels.empty() || c->value() == 0) continue;
      const std::string& method = labels.front().second;
      const Counter* errs = reg.FindCounter("rpc_errors_total", labels);
      const Histogram* rtt = reg.FindHistogram("rpc_rtt_us", labels);
      char line[192];
      std::snprintf(line, sizeof(line),
                    "rpc_%s:calls=%llu,errors=%llu,rtt_p50_usec=%llu,"
                    "rtt_p99_usec=%llu\r\n",
                    LowerName(method).c_str(),
                    static_cast<unsigned long long>(c->value()),
                    static_cast<unsigned long long>(
                        errs == nullptr ? 0 : errs->value()),
                    static_cast<unsigned long long>(
                        rtt == nullptr ? 0 : rtt->Percentile(0.50)),
                    static_cast<unsigned long long>(
                        rtt == nullptr ? 0 : rtt->Percentile(0.99)));
      out += line;
    }
    const Gauge* inflight = reg.FindGauge("rpc_inflight");
    out += "rpc_inflight:" +
           std::to_string(inflight == nullptr ? 0 : inflight->value()) +
           "\r\n";
    for (const char* name :
         {"txlog_retries_total", "txlog_redirects_total",
          "txlog_gate_appends_total", "txlog_gate_append_failures_total"}) {
      const Counter* c = reg.FindCounter(name);
      if (c != nullptr) {
        out += std::string(name) + ":" + std::to_string(c->value()) + "\r\n";
      }
    }
  }
  if (want("CLUSTER")) {
    // Backed by the shard layer's instruments when a cluster-mode
    // RespServer shares this registry; a non-cluster node reports
    // cluster_enabled:0 and zeros.
    auto gauge = [&](const char* name) -> int64_t {
      const Gauge* g = reg.FindGauge(name);
      return g == nullptr ? 0 : g->value();
    };
    auto counter = [&](const char* name) -> uint64_t {
      const Counter* c = reg.FindCounter(name);
      return c == nullptr ? 0 : c->value();
    };
    out += "# Cluster\r\n";
    out += "cluster_enabled:" + std::string(srv.cluster_enabled ? "1" : "0") +
           "\r\n";
    out += "shard_id:" + (srv.shard_id.empty() ? std::string("-")
                                               : srv.shard_id) + "\r\n";
    out += "cluster_slots_owned:" +
           std::to_string(gauge("cluster_slots_owned")) + "\r\n";
    out += "cluster_slots_migrating:" +
           std::to_string(gauge("cluster_slots_migrating")) + "\r\n";
    out += "cluster_slots_importing:" +
           std::to_string(gauge("cluster_slots_importing")) + "\r\n";
    out += "cluster_redirects_total:" +
           std::to_string(counter("cluster_redirects_total")) + "\r\n";
    out += "cluster_migrations_total:" +
           std::to_string(counter("cluster_migrations_total")) + "\r\n";
    out += "cluster_keys_migrated_total:" +
           std::to_string(counter("cluster_keys_migrated_total")) + "\r\n";
  }
  if (want("KEYSPACE")) {
    out += "# Keyspace\r\ndb0:keys=" + std::to_string(e.keyspace().Size()) +
           "\r\n";
  }
  return Value::Bulk(std::move(out));
}

// Prometheus text exposition of the process registry (engine series plus
// whatever the embedding node records into the shared registry).
Value CmdMetrics(Engine& e, const Argv& argv, ExecContext& ctx) {
  return Value::Bulk(e.metrics().ExpositionText());
}

}  // namespace

void RegisterServerCommands(Engine* e,
                            const std::function<void(CommandSpec)>& add) {
  add({"PING", -1, false, 0, 0, 0, CmdPing});
  add({"ECHO", 2, false, 0, 0, 0, CmdEcho});
  add({"DBSIZE", 1, false, 0, 0, 0, CmdDbSize});
  add({"FLUSHALL", -1, true, 0, 0, 0, CmdFlushAll, /*deny_oom=*/false});
  add({"FLUSHDB", -1, true, 0, 0, 0, CmdFlushAll, /*deny_oom=*/false});
  add({"TIME", 1, false, 0, 0, 0, CmdTime});
  add({"SELECT", 2, false, 0, 0, 0, CmdSelect});
  add({"COMMAND", -1, false, 0, 0, 0, CmdCommand});
  add({"INFO", -1, false, 0, 0, 0, CmdInfo});
  add({"METRICS", 1, false, 0, 0, 0, CmdMetrics});
}

}  // namespace memdb::engine
