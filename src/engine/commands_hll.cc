// HyperLogLog commands (PFADD / PFCOUNT / PFMERGE): approximate distinct
// counting in a fixed 12 KiB footprint, one of the probabilistic structures
// the paper lists among Redis' data types. Dense representation only:
// 16384 six-bit registers packed into a string value with a short header.

#include <algorithm>
#include <cmath>

#include "engine/commands_common.h"
#include "engine/engine.h"

namespace memdb::engine {
namespace {

using resp::Value;

constexpr int kRegisterBits = 14;                     // 2^14 registers
constexpr int kNumRegisters = 1 << kRegisterBits;     // 16384
constexpr size_t kDenseBytes = kNumRegisters * 6 / 8; // 12288
constexpr char kMagic[5] = {'H', 'Y', 'L', 'L', '1'};
constexpr size_t kHeaderBytes = sizeof(kMagic);

bool IsHll(const std::string& s) {
  return s.size() == kHeaderBytes + kDenseBytes &&
         std::equal(std::begin(kMagic), std::end(kMagic), s.begin());
}

std::string EmptyHll() {
  std::string s(kHeaderBytes + kDenseBytes, '\0');
  std::copy(std::begin(kMagic), std::end(kMagic), s.begin());
  return s;
}

uint8_t GetRegister(const std::string& s, int idx) {
  const size_t bit = static_cast<size_t>(idx) * 6;
  const size_t byte = kHeaderBytes + bit / 8;
  const int shift = static_cast<int>(bit % 8);
  const uint16_t two = static_cast<uint8_t>(s[byte]) |
                       (byte + 1 < s.size()
                            ? static_cast<uint16_t>(
                                  static_cast<uint8_t>(s[byte + 1]))
                                  << 8
                            : 0);
  return static_cast<uint8_t>((two >> shift) & 0x3f);
}

void SetRegister(std::string* s, int idx, uint8_t value) {
  const size_t bit = static_cast<size_t>(idx) * 6;
  const size_t byte = kHeaderBytes + bit / 8;
  const int shift = static_cast<int>(bit % 8);
  uint16_t two = static_cast<uint8_t>((*s)[byte]) |
                 (static_cast<uint16_t>(static_cast<uint8_t>((*s)[byte + 1]))
                  << 8);
  two = static_cast<uint16_t>(two & ~(0x3f << shift));
  two = static_cast<uint16_t>(two | (static_cast<uint16_t>(value & 0x3f)
                                     << shift));
  (*s)[byte] = static_cast<char>(two & 0xff);
  (*s)[byte + 1] = static_cast<char>((two >> 8) & 0xff);
}

// 64-bit mix hash (murmur3 finalizer over a streaming xor/multiply).
uint64_t Hash64(const std::string& data) {
  uint64_t h = 0x9368e53c2f6af274ULL ^ (data.size() * 0xff51afd7ed558ccdULL);
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
  }
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

// Returns true if the register grew (the HLL changed).
bool AddElement(std::string* hll, const std::string& element) {
  const uint64_t h = Hash64(element);
  const int idx = static_cast<int>(h & (kNumRegisters - 1));
  const uint64_t rest = h >> kRegisterBits;
  // Rank = position of the first set bit in `rest`, 1-based; `rest` has 50
  // meaningful bits, so rank <= 51 < 2^6.
  uint8_t rank = 1;
  uint64_t probe = rest;
  while ((probe & 1) == 0 && rank <= 50) {
    probe >>= 1;
    ++rank;
  }
  if (rank > GetRegister(*hll, idx)) {
    SetRegister(hll, idx, rank);
    return true;
  }
  return false;
}

int64_t Estimate(const std::string& hll) {
  const double m = kNumRegisters;
  const double alpha = 0.7213 / (1.0 + 1.079 / m);
  double sum = 0;
  int zeros = 0;
  for (int i = 0; i < kNumRegisters; ++i) {
    const uint8_t r = GetRegister(hll, i);
    sum += std::ldexp(1.0, -r);
    if (r == 0) ++zeros;
  }
  double estimate = alpha * m * m / sum;
  // Linear counting for the small range, as in the HLL paper.
  if (estimate <= 2.5 * m && zeros > 0) {
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return static_cast<int64_t>(estimate + 0.5);
}

// Fetches an existing HLL-typed string or creates one; err is set on a
// non-HLL string value.
Keyspace::Entry* GetOrCreateHll(Engine& e, const std::string& key,
                                ExecContext& ctx, Value* err) {
  Keyspace::Entry* entry = e.LookupWrite(key, ctx);
  if (entry == nullptr) {
    return e.keyspace().Put(key, ds::Value(EmptyHll()));
  }
  if (!entry->value.IsString()) {
    *err = ErrWrongType();
    return nullptr;
  }
  if (!IsHll(entry->value.str())) {
    *err = Value::Error(
        "WRONGTYPE Key is not a valid HyperLogLog string value.");
    return nullptr;
  }
  return entry;
}

Value CmdPfAdd(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry = GetOrCreateHll(e, argv[1], ctx, &err);
  if (entry == nullptr) return err;
  bool changed = false;
  for (size_t i = 2; i < argv.size(); ++i) {
    changed |= AddElement(&entry->value.str(), argv[i]);
  }
  if (changed || argv.size() == 2) e.Touch(argv[1], ctx);
  return Value::Integer(changed ? 1 : 0);
}

Value CmdPfCount(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (argv.size() == 2) {
    Keyspace::Entry* entry = e.LookupRead(argv[1], ctx);
    if (entry == nullptr) return Value::Integer(0);
    if (!entry->value.IsString() || !IsHll(entry->value.str())) {
      return Value::Error(
          "WRONGTYPE Key is not a valid HyperLogLog string value.");
    }
    return Value::Integer(Estimate(entry->value.str()));
  }
  // Multi-key: estimate of the union.
  std::string merged = EmptyHll();
  for (size_t i = 1; i < argv.size(); ++i) {
    Keyspace::Entry* entry = e.LookupRead(argv[i], ctx);
    if (entry == nullptr) continue;
    if (!entry->value.IsString() || !IsHll(entry->value.str())) {
      return Value::Error(
          "WRONGTYPE Key is not a valid HyperLogLog string value.");
    }
    for (int r = 0; r < kNumRegisters; ++r) {
      const uint8_t v = GetRegister(entry->value.str(), r);
      if (v > GetRegister(merged, r)) SetRegister(&merged, r, v);
    }
  }
  return Value::Integer(Estimate(merged));
}

Value CmdPfMerge(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* dst = GetOrCreateHll(e, argv[1], ctx, &err);
  if (dst == nullptr) return err;
  for (size_t i = 2; i < argv.size(); ++i) {
    Keyspace::Entry* src = e.LookupRead(argv[i], ctx);
    if (src == nullptr) continue;
    if (!src->value.IsString() || !IsHll(src->value.str())) {
      return Value::Error(
          "WRONGTYPE Key is not a valid HyperLogLog string value.");
    }
    for (int r = 0; r < kNumRegisters; ++r) {
      const uint8_t v = GetRegister(src->value.str(), r);
      if (v > GetRegister(dst->value.str(), r)) {
        SetRegister(&dst->value.str(), r, v);
      }
    }
  }
  e.Touch(argv[1], ctx);
  return Value::Ok();
}

}  // namespace

void RegisterHllCommands(Engine* e,
                         const std::function<void(CommandSpec)>& add) {
  add({"PFADD", -2, true, 1, 1, 1, CmdPfAdd});
  add({"PFCOUNT", -2, false, 1, -1, 1, CmdPfCount});
  add({"PFMERGE", -2, true, 1, -1, 1, CmdPfMerge});
}

}  // namespace memdb::engine
