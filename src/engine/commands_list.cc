// List command family, backed by ds::QuickList.

#include "engine/commands_common.h"
#include "engine/engine.h"

namespace memdb::engine {
namespace {

using resp::Value;

Keyspace::Entry* GetOrCreateList(Engine& e, const std::string& key,
                                 ExecContext& ctx, Value* err) {
  Keyspace::Entry* entry = e.LookupWrite(key, ctx);
  if (entry == nullptr)
    return e.keyspace().Put(key, ds::Value(ds::QuickList()));
  if (entry->value.type() != ds::ValueType::kList) {
    *err = ErrWrongType();
    return nullptr;
  }
  return entry;
}

void EraseIfEmptyList(Engine& e, const std::string& key) {
  Keyspace::Entry* entry = e.keyspace().FindRaw(key);
  if (entry != nullptr && entry->value.type() == ds::ValueType::kList &&
      entry->value.list().Empty()) {
    e.keyspace().Erase(key);
  }
}

Value GenericPush(Engine& e, const Argv& argv, ExecContext& ctx, bool front,
                  bool require_existing) {
  if (require_existing) {
    Value err = Value::Null();
    Keyspace::Entry* entry =
        FetchTyped(e, argv[1], ds::ValueType::kList, ctx, true, &err);
    if (err.IsError()) return err;
    if (entry == nullptr) return Value::Integer(0);
  }
  Value err = Value::Null();
  Keyspace::Entry* entry = GetOrCreateList(e, argv[1], ctx, &err);
  if (entry == nullptr) return err;
  for (size_t i = 2; i < argv.size(); ++i) {
    if (front) {
      entry->value.list().PushFront(argv[i]);
    } else {
      entry->value.list().PushBack(argv[i]);
    }
  }
  e.Touch(argv[1], ctx);
  return Value::Integer(static_cast<int64_t>(entry->value.list().Size()));
}

Value CmdLPush(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericPush(e, argv, ctx, true, false);
}
Value CmdRPush(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericPush(e, argv, ctx, false, false);
}
Value CmdLPushX(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericPush(e, argv, ctx, true, true);
}
Value CmdRPushX(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericPush(e, argv, ctx, false, true);
}

// LPOP/RPOP key [count]
Value GenericPop(Engine& e, const Argv& argv, ExecContext& ctx, bool front) {
  int64_t count = 1;
  bool has_count = argv.size() == 3;
  if (has_count && (!ParseInt64(argv[2], &count) || count < 0)) {
    return ErrNotInt();
  }
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kList, ctx, true, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return has_count ? Value::Null() : Value::Null();
  std::vector<Value> popped;
  std::string v;
  for (int64_t i = 0; i < count; ++i) {
    const bool ok =
        front ? entry->value.list().PopFront(&v) : entry->value.list().PopBack(&v);
    if (!ok) break;
    popped.push_back(Value::Bulk(std::move(v)));
  }
  if (!popped.empty()) {
    e.Touch(argv[1], ctx);
    EraseIfEmptyList(e, argv[1]);
    // Deterministic already, but count-less vs counted replies differ;
    // replicate verbatim via the default path.
  }
  if (!has_count) {
    return popped.empty() ? Value::Null() : std::move(popped[0]);
  }
  if (popped.empty()) return Value::Null();
  return Value::Array(std::move(popped));
}

Value CmdLPop(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericPop(e, argv, ctx, true);
}
Value CmdRPop(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericPop(e, argv, ctx, false);
}

Value CmdLLen(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kList, ctx, false, &err);
  if (err.IsError()) return err;
  return Value::Integer(
      entry == nullptr ? 0 : static_cast<int64_t>(entry->value.list().Size()));
}

Value CmdLRange(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t start, stop;
  if (!ParseInt64(argv[2], &start) || !ParseInt64(argv[3], &stop)) {
    return ErrNotInt();
  }
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kList, ctx, false, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Array({});
  const ds::QuickList& list = entry->value.list();
  const size_t n = list.Size();
  start = NormalizeIndex(start, n);
  stop = NormalizeIndex(stop, n);
  if (start < 0) start = 0;
  if (start >= static_cast<int64_t>(n) || start > stop) {
    return Value::Array({});
  }
  std::vector<std::string> items;
  list.Range(static_cast<size_t>(start), static_cast<size_t>(stop), &items);
  std::vector<Value> out;
  out.reserve(items.size());
  for (auto& s : items) out.push_back(Value::Bulk(std::move(s)));
  return Value::Array(std::move(out));
}

Value CmdLIndex(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t index;
  if (!ParseInt64(argv[2], &index)) return ErrNotInt();
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kList, ctx, false, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Null();
  index = NormalizeIndex(index, entry->value.list().Size());
  std::string v;
  if (index < 0 || !entry->value.list().Index(static_cast<size_t>(index), &v)) {
    return Value::Null();
  }
  return Value::Bulk(std::move(v));
}

Value CmdLSet(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t index;
  if (!ParseInt64(argv[2], &index)) return ErrNotInt();
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kList, ctx, true, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return ErrNoSuchKey();
  index = NormalizeIndex(index, entry->value.list().Size());
  if (index < 0 ||
      !entry->value.list().Set(static_cast<size_t>(index), argv[3])) {
    return Value::Error("ERR index out of range");
  }
  e.Touch(argv[1], ctx);
  return Value::Ok();
}

Value CmdLRem(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t count;
  if (!ParseInt64(argv[2], &count)) return ErrNotInt();
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kList, ctx, true, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Integer(0);
  const size_t removed = entry->value.list().Remove(count, argv[3]);
  if (removed > 0) {
    e.Touch(argv[1], ctx);
    EraseIfEmptyList(e, argv[1]);
  }
  return Value::Integer(static_cast<int64_t>(removed));
}

Value CmdLInsert(Engine& e, const Argv& argv, ExecContext& ctx) {
  const std::string where = Engine::Upper(argv[2]);
  if (where != "BEFORE" && where != "AFTER") return ErrSyntax();
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kList, ctx, true, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Integer(0);
  if (!entry->value.list().InsertAround(argv[3], where == "BEFORE", argv[4])) {
    return Value::Integer(-1);
  }
  e.Touch(argv[1], ctx);
  return Value::Integer(static_cast<int64_t>(entry->value.list().Size()));
}

Value CmdLTrim(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t start, stop;
  if (!ParseInt64(argv[2], &start) || !ParseInt64(argv[3], &stop)) {
    return ErrNotInt();
  }
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kList, ctx, true, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Ok();
  const size_t n = entry->value.list().Size();
  start = NormalizeIndex(start, n);
  stop = NormalizeIndex(stop, n);
  if (start < 0) start = 0;
  if (start > stop || start >= static_cast<int64_t>(n)) {
    entry->value.list().Trim(1, 0);  // clear
  } else {
    entry->value.list().Trim(static_cast<size_t>(start),
                             static_cast<size_t>(stop));
  }
  e.Touch(argv[1], ctx);
  EraseIfEmptyList(e, argv[1]);
  return Value::Ok();
}

// LMOVE src dst LEFT|RIGHT LEFT|RIGHT (and RPOPLPUSH as the classic form).
Value GenericMove(Engine& e, const Argv& argv, ExecContext& ctx,
                  const std::string& src, const std::string& dst,
                  bool from_left, bool to_left) {
  Value err = Value::Null();
  Keyspace::Entry* src_entry =
      FetchTyped(e, src, ds::ValueType::kList, ctx, true, &err);
  if (err.IsError()) return err;
  if (src_entry == nullptr) return Value::Null();
  // Destination type check before mutating the source.
  Keyspace::Entry* dst_probe = e.LookupWrite(dst, ctx);
  if (dst_probe != nullptr &&
      dst_probe->value.type() != ds::ValueType::kList) {
    return ErrWrongType();
  }
  std::string moved;
  const bool ok = from_left ? src_entry->value.list().PopFront(&moved)
                            : src_entry->value.list().PopBack(&moved);
  if (!ok) return Value::Null();
  e.Touch(src, ctx);
  EraseIfEmptyList(e, src);
  Keyspace::Entry* dst_entry = GetOrCreateList(e, dst, ctx, &err);
  if (to_left) {
    dst_entry->value.list().PushFront(moved);
  } else {
    dst_entry->value.list().PushBack(moved);
  }
  e.Touch(dst, ctx);
  return Value::Bulk(std::move(moved));
}

Value CmdLMove(Engine& e, const Argv& argv, ExecContext& ctx) {
  const std::string from = Engine::Upper(argv[3]);
  const std::string to = Engine::Upper(argv[4]);
  if ((from != "LEFT" && from != "RIGHT") || (to != "LEFT" && to != "RIGHT")) {
    return ErrSyntax();
  }
  return GenericMove(e, argv, ctx, argv[1], argv[2], from == "LEFT",
                     to == "LEFT");
}

Value CmdRPopLPush(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericMove(e, argv, ctx, argv[1], argv[2], /*from_left=*/false,
                     /*to_left=*/true);
}

}  // namespace

void RegisterListCommands(Engine* e,
                          const std::function<void(CommandSpec)>& add) {
  add({"LPUSH", -3, true, 1, 1, 1, CmdLPush});
  add({"RPUSH", -3, true, 1, 1, 1, CmdRPush});
  add({"LPUSHX", -3, true, 1, 1, 1, CmdLPushX});
  add({"RPUSHX", -3, true, 1, 1, 1, CmdRPushX});
  add({"LPOP", -2, true, 1, 1, 1, CmdLPop, /*deny_oom=*/false});
  add({"RPOP", -2, true, 1, 1, 1, CmdRPop, /*deny_oom=*/false});
  add({"LLEN", 2, false, 1, 1, 1, CmdLLen});
  add({"LRANGE", 4, false, 1, 1, 1, CmdLRange});
  add({"LINDEX", 3, false, 1, 1, 1, CmdLIndex});
  add({"LSET", 4, true, 1, 1, 1, CmdLSet});
  add({"LREM", 4, true, 1, 1, 1, CmdLRem, /*deny_oom=*/false});
  add({"LINSERT", 5, true, 1, 1, 1, CmdLInsert});
  add({"LTRIM", 4, true, 1, 1, 1, CmdLTrim, /*deny_oom=*/false});
  add({"LMOVE", 5, true, 1, 2, 1, CmdLMove});
  add({"RPOPLPUSH", 3, true, 1, 2, 1, CmdRPopLPush});
}

}  // namespace memdb::engine
