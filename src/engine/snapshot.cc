#include "engine/snapshot.h"

#include <map>

#include "common/coding.h"
#include "common/crc.h"

namespace memdb::engine {

namespace {

constexpr char kMagic[] = "MDBS";
constexpr uint32_t kVersion = 1;

}  // namespace

void SerializeValue(const ds::Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ds::ValueType::kString:
      PutLengthPrefixed(out, v.str());
      break;
    case ds::ValueType::kList: {
      const auto items = v.list().ToVector();
      PutVarint64(out, items.size());
      for (const auto& s : items) PutLengthPrefixed(out, s);
      break;
    }
    case ds::ValueType::kHash: {
      const auto items = v.hash().Items();
      PutVarint64(out, items.size());
      for (const auto& [f, val] : items) {
        PutLengthPrefixed(out, f);
        PutLengthPrefixed(out, val);
      }
      break;
    }
    case ds::ValueType::kSet: {
      const auto members = v.set().Members();
      PutVarint64(out, members.size());
      for (const auto& m : members) PutLengthPrefixed(out, m);
      break;
    }
    case ds::ValueType::kZSet: {
      std::vector<ds::ScoredMember> items;
      if (!v.zset().Empty()) {
        v.zset().RangeByRank(0, v.zset().Size() - 1, false, &items);
      }
      PutVarint64(out, items.size());
      for (const auto& sm : items) {
        PutLengthPrefixed(out, sm.member);
        PutDouble(out, sm.score);
      }
      break;
    }
  }
}

Status DeserializeValue(Decoder* dec, ds::Value* out) {
  uint64_t count = 0;
  // The type tag is one raw byte in [0, 4], which decodes identically as a
  // varint.
  uint64_t type_raw;
  if (!dec->GetVarint64(&type_raw) || type_raw > 4) {
    return Status::Corruption("bad value type tag");
  }
  const auto type = static_cast<ds::ValueType>(type_raw);
  switch (type) {
    case ds::ValueType::kString: {
      std::string s;
      if (!dec->GetLengthPrefixed(&s))
        return Status::Corruption("truncated string value");
      *out = ds::Value(std::move(s));
      return Status::OK();
    }
    case ds::ValueType::kList: {
      if (!dec->GetVarint64(&count))
        return Status::Corruption("truncated list count");
      ds::QuickList l;
      std::string s;
      for (uint64_t i = 0; i < count; ++i) {
        if (!dec->GetLengthPrefixed(&s))
          return Status::Corruption("truncated list element");
        l.PushBack(std::move(s));
      }
      *out = ds::Value(std::move(l));
      return Status::OK();
    }
    case ds::ValueType::kHash: {
      if (!dec->GetVarint64(&count))
        return Status::Corruption("truncated hash count");
      ds::Hash h;
      std::string f, v;
      for (uint64_t i = 0; i < count; ++i) {
        if (!dec->GetLengthPrefixed(&f) || !dec->GetLengthPrefixed(&v))
          return Status::Corruption("truncated hash entry");
        h.Set(f, std::move(v));
      }
      *out = ds::Value(std::move(h));
      return Status::OK();
    }
    case ds::ValueType::kSet: {
      if (!dec->GetVarint64(&count))
        return Status::Corruption("truncated set count");
      ds::Set s;
      std::string m;
      for (uint64_t i = 0; i < count; ++i) {
        if (!dec->GetLengthPrefixed(&m))
          return Status::Corruption("truncated set member");
        s.Add(m);
      }
      *out = ds::Value(std::move(s));
      return Status::OK();
    }
    case ds::ValueType::kZSet: {
      if (!dec->GetVarint64(&count))
        return Status::Corruption("truncated zset count");
      ds::ZSet z;
      std::string m;
      double score;
      for (uint64_t i = 0; i < count; ++i) {
        if (!dec->GetLengthPrefixed(&m) || !dec->GetDouble(&score))
          return Status::Corruption("truncated zset entry");
        z.Add(m, score);
      }
      *out = ds::Value(std::move(z));
      return Status::OK();
    }
  }
  return Status::Corruption("unreachable value type");
}

namespace {

Status ParseHeader(Decoder* dec, SnapshotMeta* meta) {
  std::string magic_str;
  if (dec->Remaining() < 4) return Status::Corruption("snapshot too short");
  // Magic is 4 raw ASCII bytes (each < 0x80, so varint-decoding one at a
  // time reads exactly one byte each).
  for (int i = 0; i < 4; ++i) {
    uint64_t b;
    // Raw bytes are < 128 so varint decoding reads exactly one byte each.
    if (!dec->GetVarint64(&b)) return Status::Corruption("bad magic");
    magic_str.push_back(static_cast<char>(b));
  }
  if (magic_str != kMagic) return Status::Corruption("bad snapshot magic");
  uint32_t version;
  if (!dec->GetFixed32(&version) || version != kVersion) {
    return Status::Corruption("unsupported snapshot version");
  }
  if (!dec->GetLengthPrefixed(&meta->engine_version) ||
      !dec->GetFixed64(&meta->log_position) ||
      !dec->GetFixed64(&meta->log_running_checksum) ||
      !dec->GetFixed64(&meta->created_at_ms)) {
    return Status::Corruption("truncated snapshot metadata");
  }
  return Status::OK();
}

}  // namespace

std::string SerializeSnapshot(const Keyspace& keyspace,
                              const SnapshotMeta& meta) {
  std::string out;
  out.append(kMagic, 4);
  PutFixed32(&out, kVersion);
  PutLengthPrefixed(&out, meta.engine_version);
  PutFixed64(&out, meta.log_position);
  PutFixed64(&out, meta.log_running_checksum);
  PutFixed64(&out, meta.created_at_ms);

  // Deterministic body: keys in sorted order so that two snapshots of
  // identical logical state are byte-identical.
  std::map<std::string, const Keyspace::Entry*> ordered;
  keyspace.ForEach([&](const std::string& key, const Keyspace::Entry& e) {
    ordered.emplace(key, &e);
  });
  PutVarint64(&out, ordered.size());
  for (const auto& [key, entry] : ordered) {
    PutLengthPrefixed(&out, key);
    PutFixed64(&out, entry->expire_at_ms);
    SerializeValue(entry->value, &out);
  }
  PutFixed64(&out, Crc64(0, out.data(), out.size()));
  return out;
}

Status ReadSnapshotMeta(Slice blob, SnapshotMeta* meta) {
  Decoder dec(blob);
  return ParseHeader(&dec, meta);
}

Status DeserializeSnapshot(Slice blob, Keyspace* keyspace,
                           SnapshotMeta* meta) {
  if (blob.size() < 12) return Status::Corruption("snapshot too short");
  // Verify the trailing data checksum first.
  Decoder footer(Slice(blob.data() + blob.size() - 8, 8));
  uint64_t stored_crc;
  footer.GetFixed64(&stored_crc);
  const uint64_t actual_crc = Crc64(0, blob.data(), blob.size() - 8);
  if (stored_crc != actual_crc) {
    return Status::Corruption("snapshot data checksum mismatch");
  }

  Decoder dec(Slice(blob.data(), blob.size() - 8));
  MEMDB_RETURN_IF_ERROR(ParseHeader(&dec, meta));
  uint64_t count;
  if (!dec.GetVarint64(&count))
    return Status::Corruption("truncated key count");
  keyspace->Clear();
  std::string key;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t expire_at_ms;
    if (!dec.GetLengthPrefixed(&key) || !dec.GetFixed64(&expire_at_ms)) {
      return Status::Corruption("truncated snapshot entry");
    }
    ds::Value value{std::string()};
    MEMDB_RETURN_IF_ERROR(DeserializeValue(&dec, &value));
    Keyspace::Entry* e = keyspace->Put(key, std::move(value));
    e->expire_at_ms = expire_at_ms;
  }
  if (!dec.Empty()) return Status::Corruption("trailing bytes in snapshot");
  return Status::OK();
}

}  // namespace memdb::engine
