// Shared helpers for command implementations. Internal to src/engine.

#ifndef MEMDB_ENGINE_COMMANDS_COMMON_H_
#define MEMDB_ENGINE_COMMANDS_COMMON_H_

#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>

#include "engine/engine.h"
#include "resp/resp.h"

namespace memdb::engine {

inline resp::Value ErrWrongType() {
  return resp::Value::Error(
      "WRONGTYPE Operation against a key holding the wrong kind of value");
}

inline resp::Value ErrNotInt() {
  return resp::Value::Error("ERR value is not an integer or out of range");
}

inline resp::Value ErrNotFloat() {
  return resp::Value::Error("ERR value is not a valid float");
}

inline resp::Value ErrSyntax() {
  return resp::Value::Error("ERR syntax error");
}

inline resp::Value ErrNoSuchKey() {
  return resp::Value::Error("ERR no such key");
}

inline resp::Value ErrOom() {
  return resp::Value::Error(
      "OOM command not allowed when used memory > 'maxmemory'");
}

inline bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

inline bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  if (s == "inf" || s == "+inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (s == "-inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size() && !std::isnan(*out);
}

// Formats a double the way Redis replies do (17 significant digits trimmed).
std::string FormatDouble(double v);

// Normalizes a Redis index (possibly negative) against a container of size
// n. Returns the clamped non-negative index; out-of-range low values clamp
// to 0, callers handle the "beyond end" case.
inline int64_t NormalizeIndex(int64_t idx, size_t n) {
  if (idx < 0) idx += static_cast<int64_t>(n);
  return idx;
}

// Fetches an existing entry expected to hold `type`; returns nullptr and
// sets *err when the key exists with another type. Missing key -> nullptr
// with err untouched.
Keyspace::Entry* FetchTyped(Engine& e, const std::string& key,
                            ds::ValueType type, ExecContext& ctx,
                            bool for_write, resp::Value* err);

}  // namespace memdb::engine

#endif  // MEMDB_ENGINE_COMMANDS_COMMON_H_
