// Memory pressure: maxmemory admission and sampled eviction (the engine
// half of DESIGN.md "Memory pressure & load harness").
//
// Like Redis, eviction is an approximation: each round samples a handful of
// random entries and removes the worst-scoring one, repeating until the
// incoming write fits. The removal is replicated as an ordinary DEL effect
// *before* the triggering command's own effect, so replicas and restored
// nodes converge to the primary's post-eviction keyspace without ever
// making eviction decisions themselves (§2.1).

#include "engine/engine.h"

namespace memdb::engine {
namespace {

// Bounds the work one admission can do. A write that still does not fit
// after this many evictions answers -OOM; in practice a single payload
// needing thousands of victims is itself bigger than any sane budget.
constexpr int kMaxEvictionsPerWrite = 1024;

// Redis lfu-log-factor: growth damping for the 8-bit frequency counter.
constexpr double kLfuLogFactor = 10.0;

// Admission sizes a write as the sum of its argv payload bytes, but the
// keyspace charges entry overhead on top (key + value bookkeeping, 48+48
// for a string). Reserving this headroom keeps used_memory at or under the
// budget after the write lands; multi-entry writes (MSET) may still run a
// few overheads over for one round, corrected at the next admission.
constexpr size_t kEntryOverheadHeadroom = 128;

}  // namespace

const char* EvictionPolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kNoEviction: return "noeviction";
    case EvictionPolicy::kAllKeysLru: return "allkeys-lru";
    case EvictionPolicy::kAllKeysLfu: return "allkeys-lfu";
    case EvictionPolicy::kVolatileTtl: return "volatile-ttl";
  }
  return "noeviction";
}

bool ParseEvictionPolicy(const std::string& name, EvictionPolicy* out) {
  if (name == "noeviction") {
    *out = EvictionPolicy::kNoEviction;
  } else if (name == "allkeys-lru") {
    *out = EvictionPolicy::kAllKeysLru;
  } else if (name == "allkeys-lfu") {
    *out = EvictionPolicy::kAllKeysLfu;
  } else if (name == "volatile-ttl") {
    *out = EvictionPolicy::kVolatileTtl;
  } else {
    return false;
  }
  return true;
}

uint8_t Engine::LfuDecayedCount(const Keyspace::Entry& e, uint64_t now_ms) {
  // One decay step per minute since the last touch (Redis lfu-decay-time=1),
  // so yesterday's hot key does not shadow today's working set.
  const uint64_t since = now_ms > e.access_at_ms ? now_ms - e.access_at_ms : 0;
  const uint64_t steps = since / 60000;
  return steps >= e.lfu_count ? 0
                              : static_cast<uint8_t>(e.lfu_count - steps);
}

void Engine::BumpAccess(Keyspace::Entry* e, uint64_t now_ms) {
  if (config_.eviction_policy == EvictionPolicy::kAllKeysLfu) {
    e->lfu_count = LfuDecayedCount(*e, now_ms);
    // Logarithmic probabilistic increment: the hotter the key, the rarer
    // the bump — an 8-bit counter then spans millions of hits.
    const double base =
        e->lfu_count > kLfuInitVal ? e->lfu_count - kLfuInitVal : 0;
    if (e->lfu_count < 255 &&
        rng_.NextDouble() < 1.0 / (1.0 + base * kLfuLogFactor)) {
      ++e->lfu_count;
    }
  }
  e->access_at_ms = now_ms;
}

void Engine::EnsureMemoryMetrics() {
  if (evicted_total_ != nullptr) return;
  MetricsRegistry& reg = metrics();
  evicted_total_ = reg.GetCounter("evicted_keys_total");
  reg.SetHelp("evicted_keys_total",
              "keys removed by the maxmemory eviction policy");
  expired_total_ = reg.GetCounter("expired_keys_total");
  reg.SetHelp("expired_keys_total",
              "keys removed by lazy or active TTL expiry");
  used_memory_gauge_ = reg.GetGauge("used_memory_bytes");
  reg.SetHelp("used_memory_bytes",
              "approximate keyspace memory (values + keys + overhead)");
  maxmemory_gauge_ = reg.GetGauge("maxmemory_bytes");
  reg.SetHelp("maxmemory_bytes", "configured memory budget; 0 = unlimited");
  maxmemory_gauge_->Set(static_cast<int64_t>(config_.maxmemory_bytes));
}

void Engine::EvictNow(const std::string& key, ExecContext& ctx) {
  keyspace_.Erase(key);
  // Victims replicate exactly like expired keys: a plain DEL effect. The
  // dirty entry also hazards the key, so a §3.2 read of an evicted key
  // waits for the removal to be durable before observing absence.
  ctx.effects.push_back({"DEL", key});
  ctx.dirty_keys.push_back(key);
  EnsureMemoryMetrics();
  evicted_total_->Increment();
}

bool Engine::EvictOne(ExecContext& ctx) {
  const bool volatile_only =
      config_.eviction_policy == EvictionPolicy::kVolatileTtl;
  const auto samples = keyspace_.SampleEntries(
      rng_, static_cast<size_t>(config_.eviction_samples), volatile_only);
  if (samples.empty()) return false;
  // Higher score = better victim. LRU: idle time. LFU: inverted decayed
  // count, idle time breaking ties. volatile-ttl: nearest deadline.
  const std::string* victim = nullptr;
  uint64_t best = 0;
  for (const Keyspace::Sampled& s : samples) {
    const uint64_t idle = ctx.now_ms > s.entry->access_at_ms
                              ? ctx.now_ms - s.entry->access_at_ms
                              : 0;
    uint64_t score = 0;
    switch (config_.eviction_policy) {
      case EvictionPolicy::kAllKeysLru:
        score = idle;
        break;
      case EvictionPolicy::kAllKeysLfu:
        score = (static_cast<uint64_t>(
                     255 - LfuDecayedCount(*s.entry, ctx.now_ms))
                 << 40) |
                (idle & ((1ULL << 40) - 1));
        break;
      case EvictionPolicy::kVolatileTtl:
        score = ~s.entry->expire_at_ms;
        break;
      case EvictionPolicy::kNoEviction:
        return false;
    }
    if (victim == nullptr || score > best) {
      victim = s.key;
      best = score;
    }
  }
  const std::string key = *victim;  // Erase invalidates the sampled pointer
  EvictNow(key, ctx);
  return true;
}

bool Engine::EnsureMemoryFor(size_t incoming, ExecContext& ctx) {
  const uint64_t budget = config_.maxmemory_bytes;
  const size_t needed = incoming + kEntryOverheadHeadroom;
  if (keyspace_.used_memory() + needed <= budget) return true;
  // A payload that cannot fit even in an empty keyspace is rejected up
  // front — evicting everything first would just add insult to injury.
  if (needed > budget) return false;
  if (config_.eviction_policy == EvictionPolicy::kNoEviction) return false;
  for (int evictions = 0; evictions < kMaxEvictionsPerWrite; ++evictions) {
    if (!EvictOne(ctx)) return false;
    if (keyspace_.used_memory() + needed <= budget) return true;
  }
  return keyspace_.used_memory() + needed <= budget;
}

}  // namespace memdb::engine
