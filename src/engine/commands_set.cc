// Set command family. SPOP is the paper's example of non-deterministic
// command replication (§2.1/§3.1): the randomly chosen member is selected on
// the primary and the *effect* — an explicit SREM — is what enters the
// replication stream / transaction log.

#include <algorithm>

#include "engine/commands_common.h"
#include "engine/engine.h"

namespace memdb::engine {
namespace {

using resp::Value;

Keyspace::Entry* GetOrCreateSet(Engine& e, const std::string& key,
                                ExecContext& ctx, Value* err) {
  Keyspace::Entry* entry = e.LookupWrite(key, ctx);
  if (entry == nullptr) return e.keyspace().Put(key, ds::Value(ds::Set()));
  if (entry->value.type() != ds::ValueType::kSet) {
    *err = ErrWrongType();
    return nullptr;
  }
  return entry;
}

void EraseIfEmptySet(Engine& e, const std::string& key) {
  Keyspace::Entry* entry = e.keyspace().FindRaw(key);
  if (entry != nullptr && entry->value.type() == ds::ValueType::kSet &&
      entry->value.set().Empty()) {
    e.keyspace().Erase(key);
  }
}

Value CmdSAdd(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry = GetOrCreateSet(e, argv[1], ctx, &err);
  if (entry == nullptr) return err;
  int64_t added = 0;
  for (size_t i = 2; i < argv.size(); ++i) {
    if (entry->value.set().Add(argv[i])) ++added;
  }
  if (added > 0) {
    e.Touch(argv[1], ctx);
  } else {
    EraseIfEmptySet(e, argv[1]);
  }
  return Value::Integer(added);
}

Value CmdSRem(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kSet, ctx, true, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Integer(0);
  int64_t removed = 0;
  for (size_t i = 2; i < argv.size(); ++i) {
    if (entry->value.set().Remove(argv[i])) ++removed;
  }
  if (removed > 0) {
    e.Touch(argv[1], ctx);
    EraseIfEmptySet(e, argv[1]);
  }
  return Value::Integer(removed);
}

Value CmdSMembers(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kSet, ctx, false, &err);
  if (err.IsError()) return err;
  std::vector<Value> out;
  if (entry != nullptr) {
    for (auto& m : entry->value.set().Members())
      out.push_back(Value::Bulk(std::move(m)));
  }
  return Value::Array(std::move(out));
}

Value CmdSIsMember(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kSet, ctx, false, &err);
  if (err.IsError()) return err;
  return Value::Integer(
      entry != nullptr && entry->value.set().Contains(argv[2]) ? 1 : 0);
}

Value CmdSMIsMember(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kSet, ctx, false, &err);
  if (err.IsError()) return err;
  std::vector<Value> out;
  for (size_t i = 2; i < argv.size(); ++i) {
    out.push_back(Value::Integer(
        entry != nullptr && entry->value.set().Contains(argv[i]) ? 1 : 0));
  }
  return Value::Array(std::move(out));
}

Value CmdSCard(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kSet, ctx, false, &err);
  if (err.IsError()) return err;
  return Value::Integer(
      entry == nullptr ? 0 : static_cast<int64_t>(entry->value.set().Size()));
}

// SPOP key [count] — non-deterministic: replicated as explicit SREMs.
Value CmdSPop(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (ctx.rng == nullptr) return Value::Error("ERR no entropy source");
  int64_t count = 1;
  const bool has_count = argv.size() == 3;
  if (has_count && (!ParseInt64(argv[2], &count) || count < 0)) {
    return ErrNotInt();
  }
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kSet, ctx, true, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) {
    return has_count ? Value::Array({}) : Value::Null();
  }
  std::vector<Value> popped;
  Argv effect = {"SREM", argv[1]};
  std::string member;
  for (int64_t i = 0; i < count && !entry->value.set().Empty(); ++i) {
    entry->value.set().RandomMember(ctx.rng, &member);
    entry->value.set().Remove(member);
    effect.push_back(member);
    popped.push_back(Value::Bulk(member));
  }
  if (!popped.empty()) {
    e.Touch(argv[1], ctx);
    EraseIfEmptySet(e, argv[1]);
    ctx.effects.push_back(std::move(effect));
  }
  ctx.effects_overridden = true;
  if (!has_count) {
    return popped.empty() ? Value::Null() : std::move(popped[0]);
  }
  return Value::Array(std::move(popped));
}

// SRANDMEMBER key [count] — without count: one member; positive count:
// up to that many distinct members; negative: |count| samples with
// repetition.
Value CmdSRandMember(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (ctx.rng == nullptr) return Value::Error("ERR no entropy source");
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kSet, ctx, false, &err);
  if (err.IsError()) return err;
  if (argv.size() == 2) {
    if (entry == nullptr) return Value::Null();
    std::string member;
    entry->value.set().RandomMember(ctx.rng, &member);
    return Value::Bulk(std::move(member));
  }
  int64_t count;
  if (!ParseInt64(argv[2], &count)) return ErrNotInt();
  if (entry == nullptr) return Value::Array({});
  const auto members = entry->value.set().Members();
  std::vector<Value> out;
  if (count >= 0) {
    std::vector<size_t> order(members.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    const size_t want =
        std::min<size_t>(static_cast<size_t>(count), members.size());
    for (size_t i = 0; i < want; ++i) {
      const size_t j = i + ctx.rng->Uniform(order.size() - i);
      std::swap(order[i], order[j]);
      out.push_back(Value::Bulk(members[order[i]]));
    }
  } else {
    for (int64_t i = 0; i < -count; ++i) {
      out.push_back(Value::Bulk(members[ctx.rng->Uniform(members.size())]));
    }
  }
  return Value::Array(std::move(out));
}

enum class SetOp { kInter, kUnion, kDiff };

std::vector<std::string> ComputeSetOp(Engine& e, const Argv& argv,
                                      ExecContext& ctx, size_t first_key,
                                      SetOp op, Value* err) {
  std::vector<std::string> acc;
  bool first = true;
  for (size_t i = first_key; i < argv.size(); ++i) {
    Keyspace::Entry* entry =
        FetchTyped(e, argv[i], ds::ValueType::kSet, ctx, false, err);
    if (err->IsError()) return {};
    std::vector<std::string> members =
        entry == nullptr ? std::vector<std::string>{}
                         : entry->value.set().Members();
    std::sort(members.begin(), members.end());
    if (first) {
      acc = std::move(members);
      first = false;
      continue;
    }
    std::vector<std::string> next;
    switch (op) {
      case SetOp::kInter:
        std::set_intersection(acc.begin(), acc.end(), members.begin(),
                              members.end(), std::back_inserter(next));
        break;
      case SetOp::kUnion:
        std::set_union(acc.begin(), acc.end(), members.begin(), members.end(),
                       std::back_inserter(next));
        break;
      case SetOp::kDiff:
        std::set_difference(acc.begin(), acc.end(), members.begin(),
                            members.end(), std::back_inserter(next));
        break;
    }
    acc = std::move(next);
  }
  return acc;
}

Value GenericSetOp(Engine& e, const Argv& argv, ExecContext& ctx, SetOp op) {
  Value err = Value::Null();
  auto result = ComputeSetOp(e, argv, ctx, 1, op, &err);
  if (err.IsError()) return err;
  std::vector<Value> out;
  out.reserve(result.size());
  for (auto& m : result) out.push_back(Value::Bulk(std::move(m)));
  return Value::Array(std::move(out));
}

Value CmdSInter(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericSetOp(e, argv, ctx, SetOp::kInter);
}
Value CmdSUnion(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericSetOp(e, argv, ctx, SetOp::kUnion);
}
Value CmdSDiff(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericSetOp(e, argv, ctx, SetOp::kDiff);
}

Value GenericSetOpStore(Engine& e, const Argv& argv, ExecContext& ctx,
                        SetOp op) {
  Value err = Value::Null();
  auto result = ComputeSetOp(e, argv, ctx, 2, op, &err);
  if (err.IsError()) return err;
  // Destination is replaced atomically.
  Keyspace::Entry* dst_probe = e.LookupWrite(argv[1], ctx);
  if (result.empty()) {
    if (dst_probe != nullptr) {
      e.keyspace().Erase(argv[1]);
      ctx.dirty_keys.push_back(argv[1]);
    }
    return Value::Integer(0);
  }
  ds::Set s;
  for (const auto& m : result) s.Add(m);
  e.keyspace().Put(argv[1], ds::Value(std::move(s)));
  e.Touch(argv[1], ctx);
  return Value::Integer(static_cast<int64_t>(result.size()));
}

Value CmdSInterStore(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericSetOpStore(e, argv, ctx, SetOp::kInter);
}
Value CmdSUnionStore(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericSetOpStore(e, argv, ctx, SetOp::kUnion);
}
Value CmdSDiffStore(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericSetOpStore(e, argv, ctx, SetOp::kDiff);
}

Value CmdSMove(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* src =
      FetchTyped(e, argv[1], ds::ValueType::kSet, ctx, true, &err);
  if (err.IsError()) return err;
  // Destination type check first.
  Keyspace::Entry* dst_probe = e.LookupWrite(argv[2], ctx);
  if (dst_probe != nullptr && dst_probe->value.type() != ds::ValueType::kSet) {
    return ErrWrongType();
  }
  if (src == nullptr || !src->value.set().Remove(argv[3])) {
    return Value::Integer(0);
  }
  e.Touch(argv[1], ctx);
  EraseIfEmptySet(e, argv[1]);
  Keyspace::Entry* dst = GetOrCreateSet(e, argv[2], ctx, &err);
  dst->value.set().Add(argv[3]);
  e.Touch(argv[2], ctx);
  return Value::Integer(1);
}

}  // namespace

void RegisterSetCommands(Engine* e,
                         const std::function<void(CommandSpec)>& add) {
  add({"SADD", -3, true, 1, 1, 1, CmdSAdd});
  add({"SREM", -3, true, 1, 1, 1, CmdSRem, /*deny_oom=*/false});
  add({"SMEMBERS", 2, false, 1, 1, 1, CmdSMembers});
  add({"SISMEMBER", 3, false, 1, 1, 1, CmdSIsMember});
  add({"SMISMEMBER", -3, false, 1, 1, 1, CmdSMIsMember});
  add({"SCARD", 2, false, 1, 1, 1, CmdSCard});
  add({"SPOP", -2, true, 1, 1, 1, CmdSPop, /*deny_oom=*/false});
  add({"SRANDMEMBER", -2, false, 1, 1, 1, CmdSRandMember});
  add({"SINTER", -2, false, 1, -1, 1, CmdSInter});
  add({"SUNION", -2, false, 1, -1, 1, CmdSUnion});
  add({"SDIFF", -2, false, 1, -1, 1, CmdSDiff});
  add({"SINTERSTORE", -3, true, 1, -1, 1, CmdSInterStore});
  add({"SUNIONSTORE", -3, true, 1, -1, 1, CmdSUnionStore});
  add({"SDIFFSTORE", -3, true, 1, -1, 1, CmdSDiffStore});
  add({"SMOVE", 4, true, 1, 2, 1, CmdSMove});
}

}  // namespace memdb::engine
