// Keyspace: the engine's key -> value dictionary, with per-key expiry,
// CRC16 slot tracking (for cluster mode and slot migration), and
// approximate memory accounting (for maxmemory and the fork/COW model).

#ifndef MEMDB_ENGINE_KEYSPACE_H_
#define MEMDB_ENGINE_KEYSPACE_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/crc.h"
#include "common/rng.h"
#include "ds/value.h"

namespace memdb::engine {

// Initial LFU counter for a fresh entry (Redis LFU_INIT_VAL): new keys start
// warm enough that they are not evicted before they had a chance to be hit.
inline constexpr uint8_t kLfuInitVal = 5;

class Keyspace {
 public:
  struct Entry {
    ds::Value value;
    // Absolute expiry in milliseconds of engine time; 0 = no expiry.
    uint64_t expire_at_ms = 0;
    // Cached ApproxMemory of `value`, maintained by Keyspace.
    size_t cached_mem = 0;
    // Eviction sidecar (never replicated: access patterns are local to a
    // node, and only the serving primary evicts — its removals reach the
    // replicas as logged DELs, §2.1). `access_at_ms` is the LRU clock;
    // `lfu_count` the Redis-style 8-bit logarithmic frequency counter.
    uint64_t access_at_ms = 0;
    uint8_t lfu_count = kLfuInitVal;

    explicit Entry(ds::Value v) : value(std::move(v)) {}
  };

  // Lookup that ignores expiry (used by replication/migration internals).
  Entry* FindRaw(const std::string& key);
  const Entry* FindRaw(const std::string& key) const;

  // Lookup honoring expiry: an entry past its expiry at `now_ms` is treated
  // as absent. Does NOT delete it (deletion is the caller's decision so that
  // primaries can replicate the removal and replicas can wait for it).
  Entry* Find(const std::string& key, uint64_t now_ms);
  const Entry* Find(const std::string& key, uint64_t now_ms) const;

  bool IsLogicallyExpired(const Entry& e, uint64_t now_ms) const {
    return e.expire_at_ms != 0 && e.expire_at_ms <= now_ms;
  }

  // Inserts or replaces. Returns the entry.
  Entry* Put(const std::string& key, ds::Value value);
  // Removes the key. Returns true if it existed.
  bool Erase(const std::string& key);
  // Renames; dst is overwritten. Returns false if src missing.
  bool Rename(const std::string& src, const std::string& dst);

  void Clear();

  // Recomputes the cached memory of `key` after in-place mutation of its
  // value. Call after any write through Find/FindRaw.
  void OnValueMutated(const std::string& key);
  void SetExpiry(const std::string& key, uint64_t expire_at_ms);

  size_t Size() const { return map_.size(); }
  size_t used_memory() const { return used_memory_; }
  size_t used_memory_peak() const { return peak_memory_; }

  // Engine clock: refreshed by Engine::Execute before each command so that
  // Put can stamp fresh entries' access time without threading a context
  // through every handler.
  void set_clock_ms(uint64_t now_ms) { clock_ms_ = now_ms; }
  uint64_t clock_ms() const { return clock_ms_; }

  // Eviction candidate sampling (Redis-style approximation): up to `want`
  // live entries picked by probing random hash buckets. May return fewer
  // than `want` (duplicates across probes are possible and harmless — the
  // caller picks one victim per round). `volatile_only` restricts the pool
  // to entries carrying an expiry, for volatile-* policies.
  struct Sampled {
    const std::string* key;
    Entry* entry;
  };
  std::vector<Sampled> SampleEntries(Rng& rng, size_t want,
                                     bool volatile_only);

  // Uniform random existing key; empty if keyspace is empty.
  std::string RandomKey(uint64_t random_draw) const;

  // All keys currently mapped to `slot` (migration support).
  const std::set<std::string>& KeysInSlot(uint16_t slot) const;

  // Iterates every live entry (expiry not consulted).
  void ForEach(
      const std::function<void(const std::string&, const Entry&)>& fn) const;

  // Keys whose expiry has passed at now_ms, up to `limit` (active expiry
  // cycle support).
  std::vector<std::string> ExpiredKeys(uint64_t now_ms, size_t limit) const;

 private:
  std::unordered_map<std::string, Entry> map_;
  std::vector<std::set<std::string>> slot_keys_{
      static_cast<size_t>(kNumSlots)};
  size_t used_memory_ = 0;
  size_t peak_memory_ = 0;
  uint64_t clock_ms_ = 0;
};

}  // namespace memdb::engine

#endif  // MEMDB_ENGINE_KEYSPACE_H_
