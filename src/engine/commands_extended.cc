// Extended command set: newer-generation Redis commands (GETEX, COPY,
// LPOS, SINTERCARD, ZRANGESTORE, the Z*STORE aggregations, random-member
// variants with counts, expiry introspection).

#include <algorithm>
#include <map>

#include "engine/commands_common.h"
#include "engine/engine.h"
#include "engine/snapshot.h"

namespace memdb::engine {
namespace {

using resp::Value;

// ------------------------------------------------------------- strings/keys

// GETEX key [EX s|PX ms|EXAT s|PXAT ms|PERSIST] — a GET that can also
// adjust expiry (replicated as PEXPIREAT / PERSIST).
Value CmdGetEx(Engine& e, const Argv& argv, ExecContext& ctx) {
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kString, ctx, true, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Null();
  const Value reply = Value::Bulk(entry->value.str());

  if (argv.size() == 2) return reply;
  bool persist = false;
  uint64_t expire_at_ms = 0;
  bool has_expiry = false;
  for (size_t i = 2; i < argv.size(); ++i) {
    const std::string opt = Engine::Upper(argv[i]);
    if (opt == "PERSIST") {
      persist = true;
      continue;
    }
    if (i + 1 >= argv.size()) return ErrSyntax();
    int64_t n;
    if (!ParseInt64(argv[i + 1], &n)) return ErrSyntax();
    if (opt == "EX") {
      expire_at_ms = ctx.now_ms + static_cast<uint64_t>(n) * 1000;
    } else if (opt == "PX") {
      expire_at_ms = ctx.now_ms + static_cast<uint64_t>(n);
    } else if (opt == "EXAT") {
      expire_at_ms = static_cast<uint64_t>(n) * 1000;
    } else if (opt == "PXAT") {
      expire_at_ms = static_cast<uint64_t>(n);
    } else {
      return ErrSyntax();
    }
    has_expiry = true;
    ++i;
  }
  if (persist && entry->expire_at_ms != 0) {
    entry->expire_at_ms = 0;
    ctx.dirty_keys.push_back(argv[1]);
    ctx.effects.push_back({"PERSIST", argv[1]});
    ctx.effects_overridden = true;
  } else if (has_expiry) {
    entry->expire_at_ms = expire_at_ms;
    ctx.dirty_keys.push_back(argv[1]);
    ctx.effects.push_back(
        {"PEXPIREAT", argv[1], std::to_string(expire_at_ms)});
    ctx.effects_overridden = true;
  }
  return reply;
}

// COPY src dst [REPLACE]
Value CmdCopy(Engine& e, const Argv& argv, ExecContext& ctx) {
  bool replace = false;
  if (argv.size() == 4) {
    if (Engine::Upper(argv[3]) != "REPLACE") return ErrSyntax();
    replace = true;
  } else if (argv.size() != 3) {
    return ErrSyntax();
  }
  Keyspace::Entry* src = e.LookupWrite(argv[1], ctx);
  if (src == nullptr) return Value::Integer(0);
  if (!replace && e.LookupWrite(argv[2], ctx) != nullptr) {
    return Value::Integer(0);
  }
  // Deep copy through the serialization path (structure-agnostic).
  std::string blob;
  SerializeValue(src->value, &blob);
  Decoder dec{Slice(blob)};
  ds::Value copy{std::string()};
  if (!DeserializeValue(&dec, &copy).ok()) {
    return Value::Error("ERR copy failed");
  }
  const uint64_t expire = src->expire_at_ms;
  Keyspace::Entry* dst = e.keyspace().Put(argv[2], std::move(copy));
  dst->expire_at_ms = expire;
  e.Touch(argv[2], ctx);
  return Value::Integer(1);
}

Value GenericExpireTime(Engine& e, const Argv& argv, ExecContext& ctx,
                        uint64_t divisor) {
  Keyspace::Entry* entry = e.LookupRead(argv[1], ctx);
  if (entry == nullptr) return Value::Integer(-2);
  if (entry->expire_at_ms == 0) return Value::Integer(-1);
  return Value::Integer(static_cast<int64_t>(entry->expire_at_ms / divisor));
}

Value CmdExpireTime(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericExpireTime(e, argv, ctx, 1000);
}
Value CmdPExpireTime(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericExpireTime(e, argv, ctx, 1);
}

// ------------------------------------------------------------------- lists

// LPOS key element [RANK r] [COUNT c]
Value CmdLPos(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t rank = 1, count = -1;  // count -1 = single reply
  for (size_t i = 3; i + 1 < argv.size(); i += 2) {
    const std::string opt = Engine::Upper(argv[i]);
    if (opt == "RANK") {
      if (!ParseInt64(argv[i + 1], &rank) || rank == 0) {
        return Value::Error("ERR RANK can't be zero");
      }
    } else if (opt == "COUNT") {
      if (!ParseInt64(argv[i + 1], &count) || count < 0) {
        return Value::Error("ERR COUNT can't be negative");
      }
    } else {
      return ErrSyntax();
    }
  }
  const bool want_array = count >= 0;
  if (count == -1) count = 1;
  if (count == 0) count = INT64_MAX;

  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kList, ctx, false, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) {
    return want_array ? Value::Array({}) : Value::Null();
  }
  const auto items = entry->value.list().ToVector();
  std::vector<Value> matches;
  int64_t to_skip = (rank > 0 ? rank : -rank) - 1;
  auto scan = [&](int64_t idx) {
    if (items[static_cast<size_t>(idx)] != argv[2]) return;
    if (to_skip > 0) {
      --to_skip;
      return;
    }
    if (static_cast<int64_t>(matches.size()) < count) {
      matches.push_back(Value::Integer(idx));
    }
  };
  if (rank > 0) {
    for (int64_t i = 0; i < static_cast<int64_t>(items.size()); ++i) scan(i);
  } else {
    for (int64_t i = static_cast<int64_t>(items.size()) - 1; i >= 0; --i) {
      scan(i);
    }
  }
  if (want_array) return Value::Array(std::move(matches));
  return matches.empty() ? Value::Null() : std::move(matches[0]);
}

// -------------------------------------------------------------------- sets

// SINTERCARD numkeys key [key ...] [LIMIT n]
Value CmdSInterCard(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t numkeys;
  if (!ParseInt64(argv[1], &numkeys) || numkeys <= 0 ||
      static_cast<size_t>(numkeys) + 2 > argv.size() + 1) {
    return Value::Error("ERR numkeys should be greater than 0");
  }
  int64_t limit = INT64_MAX;
  const size_t after_keys = 2 + static_cast<size_t>(numkeys);
  if (after_keys < argv.size()) {
    if (after_keys + 2 != argv.size() ||
        Engine::Upper(argv[after_keys]) != "LIMIT" ||
        !ParseInt64(argv[after_keys + 1], &limit) || limit < 0) {
      return ErrSyntax();
    }
    if (limit == 0) limit = INT64_MAX;
  }
  // Intersect progressively.
  std::vector<std::string> acc;
  for (int64_t k = 0; k < numkeys; ++k) {
    Value err = Value::Null();
    Keyspace::Entry* entry = FetchTyped(e, argv[2 + static_cast<size_t>(k)],
                                        ds::ValueType::kSet, ctx, false, &err);
    if (err.IsError()) return err;
    if (entry == nullptr) return Value::Integer(0);
    std::vector<std::string> members = entry->value.set().Members();
    std::sort(members.begin(), members.end());
    if (k == 0) {
      acc = std::move(members);
    } else {
      std::vector<std::string> next;
      std::set_intersection(acc.begin(), acc.end(), members.begin(),
                            members.end(), std::back_inserter(next));
      acc = std::move(next);
    }
    if (acc.empty()) break;
  }
  return Value::Integer(
      std::min<int64_t>(limit, static_cast<int64_t>(acc.size())));
}

// ------------------------------------------------------------------ hashes

// ------------------------------------------------------------------- zsets

// ZRANDMEMBER key [count [WITHSCORES]]
Value CmdZRandMember(Engine& e, const Argv& argv, ExecContext& ctx) {
  if (ctx.rng == nullptr) return Value::Error("ERR no entropy source");
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kZSet, ctx, false, &err);
  if (err.IsError()) return err;
  if (argv.size() == 2) {
    if (entry == nullptr) return Value::Null();
    std::vector<ds::ScoredMember> all;
    entry->value.zset().RangeByRank(0, entry->value.zset().Size() - 1, false,
                                    &all);
    return Value::Bulk(all[ctx.rng->Uniform(all.size())].member);
  }
  int64_t count;
  if (!ParseInt64(argv[2], &count)) return ErrNotInt();
  bool withscores = argv.size() == 4 &&
                    Engine::Upper(argv[3]) == "WITHSCORES";
  if (argv.size() == 4 && !withscores) return ErrSyntax();
  if (entry == nullptr) return Value::Array({});
  std::vector<ds::ScoredMember> all;
  entry->value.zset().RangeByRank(0, entry->value.zset().Size() - 1, false,
                                  &all);
  std::vector<Value> out;
  auto push = [&](size_t idx) {
    out.push_back(Value::Bulk(all[idx].member));
    if (withscores) out.push_back(Value::Bulk(FormatDouble(all[idx].score)));
  };
  if (count >= 0) {
    std::vector<size_t> order(all.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    const size_t want = std::min<size_t>(static_cast<size_t>(count),
                                         all.size());
    for (size_t i = 0; i < want; ++i) {
      const size_t j = i + ctx.rng->Uniform(order.size() - i);
      std::swap(order[i], order[j]);
      push(order[i]);
    }
  } else {
    for (int64_t i = 0; i < -count; ++i) push(ctx.rng->Uniform(all.size()));
  }
  return Value::Array(std::move(out));
}

// ZREMRANGEBYRANK key start stop
Value CmdZRemRangeByRank(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t start, stop;
  if (!ParseInt64(argv[2], &start) || !ParseInt64(argv[3], &stop)) {
    return ErrNotInt();
  }
  Value err = Value::Null();
  Keyspace::Entry* entry =
      FetchTyped(e, argv[1], ds::ValueType::kZSet, ctx, true, &err);
  if (err.IsError()) return err;
  if (entry == nullptr) return Value::Integer(0);
  ds::ZSet& z = entry->value.zset();
  const size_t n = z.Size();
  start = NormalizeIndex(start, n);
  stop = NormalizeIndex(stop, n);
  if (start < 0) start = 0;
  if (start > stop || start >= static_cast<int64_t>(n)) {
    return Value::Integer(0);
  }
  std::vector<ds::ScoredMember> victims;
  z.RangeByRank(static_cast<size_t>(start), static_cast<size_t>(stop), false,
                &victims);
  for (const auto& sm : victims) z.Remove(sm.member);
  if (!victims.empty()) {
    e.Touch(argv[1], ctx);
    if (z.Empty()) e.keyspace().Erase(argv[1]);
  }
  return Value::Integer(static_cast<int64_t>(victims.size()));
}

// Shared by ZUNIONSTORE / ZINTERSTORE / ZDIFFSTORE:
// CMD dst numkeys key... [WEIGHTS w...] [AGGREGATE SUM|MIN|MAX]
enum class ZOp { kUnion, kInter, kDiff };

Value GenericZStore(Engine& e, const Argv& argv, ExecContext& ctx, ZOp op) {
  int64_t numkeys;
  if (!ParseInt64(argv[2], &numkeys) || numkeys <= 0 ||
      3 + static_cast<size_t>(numkeys) > argv.size()) {
    return Value::Error("ERR at least 1 input key is needed");
  }
  std::vector<double> weights(static_cast<size_t>(numkeys), 1.0);
  std::string aggregate = "SUM";
  size_t i = 3 + static_cast<size_t>(numkeys);
  while (i < argv.size()) {
    const std::string opt = Engine::Upper(argv[i]);
    if (opt == "WEIGHTS" && op != ZOp::kDiff) {
      if (i + static_cast<size_t>(numkeys) >= argv.size()) return ErrSyntax();
      for (size_t w = 0; w < static_cast<size_t>(numkeys); ++w) {
        if (!ParseDouble(argv[i + 1 + w], &weights[w])) return ErrNotFloat();
      }
      i += 1 + static_cast<size_t>(numkeys);
    } else if (opt == "AGGREGATE" && op != ZOp::kDiff) {
      if (i + 1 >= argv.size()) return ErrSyntax();
      aggregate = Engine::Upper(argv[i + 1]);
      if (aggregate != "SUM" && aggregate != "MIN" && aggregate != "MAX") {
        return ErrSyntax();
      }
      i += 2;
    } else {
      return ErrSyntax();
    }
  }

  // Collect member->score per source (sets count as score 1).
  std::map<std::string, double> acc;
  std::map<std::string, int> seen_in;
  for (int64_t k = 0; k < numkeys; ++k) {
    const std::string& key = argv[3 + static_cast<size_t>(k)];
    Keyspace::Entry* entry = e.LookupRead(key, ctx);
    std::vector<ds::ScoredMember> members;
    if (entry != nullptr) {
      if (entry->value.type() == ds::ValueType::kZSet) {
        entry->value.zset().RangeByRank(0, entry->value.zset().Size() - 1,
                                        false, &members);
      } else if (entry->value.type() == ds::ValueType::kSet) {
        for (auto& m : entry->value.set().Members()) members.push_back({m, 1});
      } else {
        return ErrWrongType();
      }
    }
    for (const auto& sm : members) {
      const double weighted = sm.score * weights[static_cast<size_t>(k)];
      auto [it, inserted] = acc.emplace(sm.member, weighted);
      if (!inserted) {
        if (aggregate == "SUM") {
          it->second += weighted;
        } else if (aggregate == "MIN") {
          it->second = std::min(it->second, weighted);
        } else {
          it->second = std::max(it->second, weighted);
        }
      }
      ++seen_in[sm.member];
    }
  }

  ds::ZSet result;
  for (const auto& [member, score] : acc) {
    if (op == ZOp::kInter && seen_in[member] != numkeys) continue;
    if (op == ZOp::kDiff) continue;  // handled below
    result.Add(member, score);
  }
  if (op == ZOp::kDiff) {
    // Members of the first key absent from every other key.
    Keyspace::Entry* first = e.LookupRead(argv[3], ctx);
    if (first != nullptr && first->value.type() == ds::ValueType::kZSet) {
      std::vector<ds::ScoredMember> members;
      first->value.zset().RangeByRank(0, first->value.zset().Size() - 1,
                                      false, &members);
      for (const auto& sm : members) {
        if (seen_in[sm.member] == 1) result.Add(sm.member, sm.score);
      }
    }
  }

  const int64_t size = static_cast<int64_t>(result.Size());
  if (size == 0) {
    if (e.LookupWrite(argv[1], ctx) != nullptr) {
      e.keyspace().Erase(argv[1]);
      ctx.dirty_keys.push_back(argv[1]);
    }
    return Value::Integer(0);
  }
  e.keyspace().Put(argv[1], ds::Value(std::move(result)));
  e.Touch(argv[1], ctx);
  return Value::Integer(size);
}

Value CmdZUnionStore(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericZStore(e, argv, ctx, ZOp::kUnion);
}
Value CmdZInterStore(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericZStore(e, argv, ctx, ZOp::kInter);
}
Value CmdZDiffStore(Engine& e, const Argv& argv, ExecContext& ctx) {
  return GenericZStore(e, argv, ctx, ZOp::kDiff);
}

// ZRANGESTORE dst src start stop [REV]
Value CmdZRangeStore(Engine& e, const Argv& argv, ExecContext& ctx) {
  int64_t start, stop;
  if (!ParseInt64(argv[3], &start) || !ParseInt64(argv[4], &stop)) {
    return ErrNotInt();
  }
  bool rev = false;
  if (argv.size() == 6) {
    if (Engine::Upper(argv[5]) != "REV") return ErrSyntax();
    rev = true;
  }
  Value err = Value::Null();
  Keyspace::Entry* src =
      FetchTyped(e, argv[2], ds::ValueType::kZSet, ctx, false, &err);
  if (err.IsError()) return err;
  ds::ZSet result;
  if (src != nullptr) {
    const size_t n = src->value.zset().Size();
    start = NormalizeIndex(start, n);
    stop = NormalizeIndex(stop, n);
    if (start < 0) start = 0;
    if (start <= stop && start < static_cast<int64_t>(n)) {
      std::vector<ds::ScoredMember> items;
      src->value.zset().RangeByRank(static_cast<size_t>(start),
                                    static_cast<size_t>(stop), rev, &items);
      for (const auto& sm : items) result.Add(sm.member, sm.score);
    }
  }
  const int64_t size = static_cast<int64_t>(result.Size());
  if (size == 0) {
    if (e.LookupWrite(argv[1], ctx) != nullptr) {
      e.keyspace().Erase(argv[1]);
      ctx.dirty_keys.push_back(argv[1]);
    }
    return Value::Integer(0);
  }
  e.keyspace().Put(argv[1], ds::Value(std::move(result)));
  e.Touch(argv[1], ctx);
  return Value::Integer(size);
}

}  // namespace

void RegisterExtendedCommands(Engine* e,
                              const std::function<void(CommandSpec)>& add) {
  add({"GETEX", -2, true, 1, 1, 1, CmdGetEx, /*deny_oom=*/false});
  add({"COPY", -3, true, 1, 2, 1, CmdCopy});
  add({"EXPIRETIME", 2, false, 1, 1, 1, CmdExpireTime});
  add({"PEXPIRETIME", 2, false, 1, 1, 1, CmdPExpireTime});
  add({"LPOS", -3, false, 1, 1, 1, CmdLPos});
  add({"SINTERCARD", -3, false, 2, -1, 1, CmdSInterCard});
  add({"ZRANDMEMBER", -2, false, 1, 1, 1, CmdZRandMember});
  add({"ZREMRANGEBYRANK", 4, true, 1, 1, 1, CmdZRemRangeByRank, /*deny_oom=*/false});
  add({"ZUNIONSTORE", -4, true, 1, 1, 1, CmdZUnionStore});
  add({"ZINTERSTORE", -4, true, 1, 1, 1, CmdZInterStore});
  add({"ZDIFFSTORE", -4, true, 1, 1, 1, CmdZDiffStore});
  add({"ZRANGESTORE", -5, true, 1, 2, 1, CmdZRangeStore});
}

}  // namespace memdb::engine
