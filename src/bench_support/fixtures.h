// Benchmark fixtures: one-call setup of a MemoryDB shard or a Redis-like
// replication group sized to an instance model, with direct-keyspace
// prefill (the §6.1.1 "pre-filled with keys so GETs have a 100% hit rate").

#ifndef MEMDB_BENCH_SUPPORT_FIXTURES_H_
#define MEMDB_BENCH_SUPPORT_FIXTURES_H_

#include <memory>
#include <vector>

#include "bench_support/instances.h"
#include "memorydb/shard.h"
#include "redisbaseline/baseline_node.h"
#include "sim/simulation.h"
#include "storage/object_store.h"

namespace memdb::bench {

// A MemoryDB shard (primary + replicas + 3-AZ transaction log [+ off-box
// snapshotting]) ready to serve.
struct MemDbFixture {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<storage::ObjectStore> s3;
  std::unique_ptr<memorydb::Shard> shard;
  memorydb::Node* primary = nullptr;

  struct Params {
    int replicas = 1;
    uint64_t seed = 42;
    bool with_offbox = false;
    uint64_t snapshot_max_log_distance = 4096;
    uint64_t maxmemory_bytes = 0;
  };

  static MemDbFixture Create(const InstanceModel& m, Params params);

  // Installs `keys` short string keys directly into every node's keyspace.
  void Prefill(uint64_t keys, size_t value_bytes,
               const std::string& prefix = "key:");
};

// A Redis-like primary with async replicas.
struct RedisFixture {
  std::unique_ptr<sim::Simulation> sim;
  std::vector<std::unique_ptr<redisbaseline::BaselineNode>> nodes;
  redisbaseline::BaselineNode* primary = nullptr;

  struct Params {
    int replicas = 1;
    uint64_t seed = 42;
    redisbaseline::BaselineConfig base_config;
  };

  static RedisFixture Create(const InstanceModel& m, Params params);

  void Prefill(uint64_t keys, size_t value_bytes,
               const std::string& prefix = "key:");
};

// Fills one engine keyspace with `keys` string entries.
void PrefillEngine(engine::Engine* engine, uint64_t keys, size_t value_bytes,
                   const std::string& prefix);

}  // namespace memdb::bench

#endif  // MEMDB_BENCH_SUPPORT_FIXTURES_H_
