#include "bench_support/envelope.h"

#ifndef MEMDB_BUILD_SHA
#define MEMDB_BUILD_SHA "unknown"
#endif

namespace memdb::bench {

std::string QuoteJson(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string BenchEnvelopeJson(
    const std::string& bench_name,
    const std::vector<std::pair<std::string, std::string>>& config) {
  std::string out = "\"envelope\":{";
  out += "\"schema_version\":" + std::to_string(kBenchSchemaVersion);
  out += ",\"bench\":" + QuoteJson(bench_name);
  out += ",\"build_sha\":" + QuoteJson(MEMDB_BUILD_SHA);
  out += ",\"config\":{";
  bool first = true;
  for (const auto& [key, value] : config) {
    if (!first) out += ",";
    first = false;
    out += QuoteJson(key) + ":" + value;
  }
  out += "}}";
  return out;
}

}  // namespace memdb::bench
