#include "bench_support/fixtures.h"

namespace memdb::bench {

void PrefillEngine(engine::Engine* engine, uint64_t keys, size_t value_bytes,
                   const std::string& prefix) {
  const std::string value(value_bytes, 'x');
  for (uint64_t i = 0; i < keys; ++i) {
    engine->keyspace().Put(prefix + std::to_string(i), ds::Value(value));
  }
}

MemDbFixture MemDbFixture::Create(const InstanceModel& m, Params params) {
  MemDbFixture f;
  f.sim = std::make_unique<sim::Simulation>(params.seed);
  f.s3 = std::make_unique<storage::ObjectStore>(f.sim.get(),
                                                f.sim->AddHost(0));
  memorydb::Shard::Options so;
  so.shard_id = "bench-shard";
  so.num_replicas = params.replicas;
  so.object_store = f.s3->id();
  so.with_offbox = params.with_offbox;
  so.scheduler_config.max_log_distance = params.snapshot_max_log_distance;
  so.node_template.io_threads = m.io_threads;
  so.node_template.io_op_cost_ns = m.io_op_ns;
  so.node_template.engine_read_cost_ns = m.memdb_read_ns;
  so.node_template.engine_write_cost_ns = m.memdb_write_ns;
  so.node_template.maxmemory_bytes = params.maxmemory_bytes;
  f.shard = std::make_unique<memorydb::Shard>(f.sim.get(), so);
  f.sim->RunFor(3 * sim::kSec);
  f.primary = f.shard->Primary();
  return f;
}

void MemDbFixture::Prefill(uint64_t keys, size_t value_bytes,
                           const std::string& prefix) {
  for (size_t i = 0; i < shard->num_nodes(); ++i) {
    PrefillEngine(&shard->node(i)->engine(), keys, value_bytes, prefix);
  }
}

RedisFixture RedisFixture::Create(const InstanceModel& m, Params params) {
  RedisFixture f;
  f.sim = std::make_unique<sim::Simulation>(params.seed);
  std::vector<sim::NodeId> ids;
  for (int i = 0; i <= params.replicas; ++i) {
    redisbaseline::BaselineConfig c = params.base_config;
    c.start_as_primary = (i == 0);
    c.io_threads = m.io_threads;
    c.io_op_cost_ns = m.io_op_ns;
    c.engine_read_cost_ns = m.redis_read_ns;
    c.engine_write_cost_ns = m.redis_write_ns;
    c.ram_bytes = m.memory_gb << 30;
    const sim::NodeId id =
        f.sim->AddHost(static_cast<sim::AzId>(i % sim::kNumAzs));
    ids.push_back(id);
    f.nodes.push_back(
        std::make_unique<redisbaseline::BaselineNode>(f.sim.get(), id, c));
  }
  for (auto& n : f.nodes) {
    n->SetPeers(ids);
    n->SetPrimary(ids[0]);
  }
  f.sim->RunFor(200 * sim::kMs);
  f.primary = f.nodes[0].get();
  return f;
}

void RedisFixture::Prefill(uint64_t keys, size_t value_bytes,
                           const std::string& prefix) {
  for (auto& n : nodes) {
    PrefillEngine(&n->engine(), keys, value_bytes, prefix);
  }
}

}  // namespace memdb::bench
