#include "bench_support/metrics_json.h"

namespace memdb::bench {
namespace {

// Series names embed Prometheus label syntax (name{k="v"}); the quotes must
// be escaped to keep them legal JSON object keys.
std::string JsonKey(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string MetricsJson(const MetricsRegistry& reg,
                        const std::vector<std::string>& histograms,
                        const std::vector<std::string>& counters) {
  std::string out = "{";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",";
    first = false;
  };
  for (const std::string& name : histograms) {
    for (const auto& [labels, h] : reg.HistogramSeries(name)) {
      sep();
      out += "\"" + JsonKey(MetricsRegistry::SeriesName(name, labels)) +
             "\":{";
      out += "\"count\":" + std::to_string(h->count());
      out += ",\"sum_us\":" + std::to_string(h->sum());
      out += ",\"p50_us\":" + std::to_string(h->Percentile(0.50));
      out += ",\"p99_us\":" + std::to_string(h->Percentile(0.99));
      out += "}";
    }
  }
  for (const std::string& name : counters) {
    for (const auto& [labels, c] : reg.CounterSeries(name)) {
      sep();
      out += "\"" + JsonKey(MetricsRegistry::SeriesName(name, labels)) +
             "\":" + std::to_string(c->value());
    }
  }
  out += "}";
  return out;
}

}  // namespace memdb::bench
