#include "bench_support/driver.h"

namespace memdb::bench {

using sim::Duration;
using sim::NodeId;

LoadDriver::LoadDriver(sim::Simulation* sim, NodeId id, NodeId target,
                       Options options)
    : Actor(sim, id), options_(options), target_(target), rng_(options.seed) {}

void LoadDriver::Start() {
  if (running_) return;
  running_ = true;
  window_start_ = Now();
  if (options_.offered_ops_per_sec == 0) {
    for (int c = 0; c < options_.connections; ++c) IssueOne();
  } else {
    // Batch arrivals on a 200 us tick to bound event count.
    Periodic(200, [this] { OpenLoopTick(); });
  }
}

void LoadDriver::ResetStats() {
  completed_ = 0;
  errors_ = 0;
  read_hist_.Reset();
  write_hist_.Reset();
  window_start_ = Now();
}

double LoadDriver::Throughput() const {
  const sim::Duration elapsed = Now() - window_start_;
  if (elapsed == 0) return 0;
  return static_cast<double>(completed_) * 1e6 /
         static_cast<double>(elapsed);
}

void LoadDriver::OpenLoopTick() {
  if (!running_) return;
  arrival_backlog_ +=
      static_cast<double>(options_.offered_ops_per_sec) * 200e-6;
  while (arrival_backlog_ >= 1.0) {
    arrival_backlog_ -= 1.0;
    if (outstanding_ < options_.max_outstanding) IssueOne();
  }
}

void LoadDriver::IssueOne() {
  if (!running_) {
    return;
  }
  const bool is_set = rng_.NextDouble() < options_.set_ratio;
  client::DbRequest req;
  const std::string key =
      options_.key_prefix + std::to_string(rng_.Uniform(options_.key_space));
  if (is_set) {
    req.argv = {"SET", key, std::string(options_.value_bytes, 'x')};
  } else {
    req.argv = {"GET", key};
  }
  ++outstanding_;
  const sim::Time start = Now();
  Rpc(target_, client::kDbCommand, req.Encode(), options_.rpc_timeout,
      [this, start, is_set](const Status& s, const std::string& body) {
        --outstanding_;
        const Duration latency = Now() - start;
        if (!s.ok() || (!body.empty() && body[0] == '-')) {
          ++errors_;
        } else {
          ++completed_;
          (is_set ? write_hist_ : read_hist_).Record(latency);
        }
        // Closed loop: this connection immediately issues its next request.
        if (options_.offered_ops_per_sec == 0 && running_) IssueOne();
      });
}

}  // namespace memdb::bench
