// Instance catalog for the evaluation (§6.1.1): the Graviton3 (r7g) family
// from r7g.large to r7g.16xlarge, mapped onto the simulator's CPU cost
// model.
//
// The model: the engine workloop is a single thread whose per-command cost
// is execution + IO-dispatch overhead. On small instances the IO threads
// contend with the workloop for cores, inflating per-op cost (both engines
// equally — the paper shows parity below 2xlarge). From 2xlarge up the
// workloop has a dedicated core: Redis' per-connection dispatch bounds it
// near ~330K reads/s, while MemoryDB's Enhanced IO multiplexing aggregates
// connections and shrinks dispatch, reaching ~500K reads/s. Writes add
// execution cost (and, for MemoryDB, replication-stream chunking), bounding
// Redis near ~300K and MemoryDB near ~185K writes/s (§6.1.2).

#ifndef MEMDB_BENCH_SUPPORT_INSTANCES_H_
#define MEMDB_BENCH_SUPPORT_INSTANCES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace memdb::bench {

struct InstanceModel {
  std::string name;
  int vcpus = 2;
  uint64_t memory_gb = 16;
  int io_threads = 1;

  // Per-command engine-thread costs, nanoseconds.
  uint64_t redis_read_ns = 0;
  uint64_t redis_write_ns = 0;
  uint64_t memdb_read_ns = 0;
  uint64_t memdb_write_ns = 0;
  uint64_t io_op_ns = 900;
};

// The seven instance types of Figure 4, in size order.
const std::vector<InstanceModel>& R7gCatalog();

// Lookup by name ("r7g.16xlarge"); aborts on unknown names.
const InstanceModel& R7g(const std::string& name);

}  // namespace memdb::bench

#endif  // MEMDB_BENCH_SUPPORT_INSTANCES_H_
