// LoadDriver: the redis-benchmark stand-in. One driver actor models a fleet
// of benchmark clients:
//
//  * closed-loop mode (offered_ops_per_sec == 0): each of `connections`
//    logical connections issues one blocking request at a time — the §6.1.1
//    setup (10 hosts x 100 connections, no pipelining) used to find the
//    maximum throughput;
//  * open-loop mode: arrivals at a fixed offered rate, used for the
//    latency-vs-throughput sweeps of Figure 5.

#ifndef MEMDB_BENCH_SUPPORT_DRIVER_H_
#define MEMDB_BENCH_SUPPORT_DRIVER_H_

#include <string>

#include "common/histogram.h"
#include "common/rng.h"
#include "client/db_wire.h"
#include "sim/actor.h"

namespace memdb::bench {

class LoadDriver : public sim::Actor {
 public:
  struct Options {
    int connections = 100;
    // Fraction of SETs; 0.0 = read-only, 1.0 = write-only, 0.2 = the
    // paper's mixed workload.
    double set_ratio = 0.0;
    size_t value_bytes = 100;
    uint64_t key_space = 100'000;
    std::string key_prefix = "key:";
    // 0 = closed loop; otherwise open-loop offered rate.
    uint64_t offered_ops_per_sec = 0;
    // Open-loop backpressure bound (overload protection).
    int max_outstanding = 20'000;
    sim::Duration rpc_timeout = 5 * sim::kSec;
    uint64_t seed = 7;
  };

  LoadDriver(sim::Simulation* sim, sim::NodeId id, sim::NodeId target,
             Options options);

  void Start();
  void Stop() { running_ = false; }

  // Measurement window control: stats cover only the period since the last
  // ResetStats() call (warmup exclusion).
  void ResetStats();

  uint64_t completed() const { return completed_; }
  uint64_t errors() const { return errors_; }
  const Histogram& read_latency() const { return read_hist_; }
  const Histogram& write_latency() const { return write_hist_; }
  Histogram& mutable_read_latency() { return read_hist_; }
  Histogram& mutable_write_latency() { return write_hist_; }
  sim::Time window_start() const { return window_start_; }

  // Completed ops per second over the current measurement window.
  double Throughput() const;

 private:
  void IssueOne();
  void OpenLoopTick();

  Options options_;
  sim::NodeId target_;
  Rng rng_;
  bool running_ = false;
  int outstanding_ = 0;
  double arrival_backlog_ = 0;

  uint64_t completed_ = 0;
  uint64_t errors_ = 0;
  Histogram read_hist_;
  Histogram write_hist_;
  sim::Time window_start_ = 0;
};

}  // namespace memdb::bench

#endif  // MEMDB_BENCH_SUPPORT_DRIVER_H_
