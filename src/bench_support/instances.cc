#include "bench_support/instances.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace memdb::bench {

namespace {

InstanceModel Make(const std::string& name, int vcpus, uint64_t memory_gb) {
  InstanceModel m;
  m.name = name;
  m.vcpus = vcpus;
  m.memory_gb = memory_gb;
  m.io_threads = vcpus >= 16 ? 8 : (vcpus >= 8 ? 6 : (vcpus >= 4 ? 2 : 1));

  // Core contention factor: below 8 vCPUs the IO threads and background
  // work steal cycles from the single engine workloop.
  const double contention =
      vcpus >= 8 ? 1.0 : std::pow(8.0 / static_cast<double>(vcpus), 0.8);

  constexpr double kExecRead = 1200;      // ns: command execution proper
  constexpr double kExecWrite = 1500;     // ns: writes mutate structures
  constexpr double kDispatchRedis = 1800;  // ns: per-connection IO dispatch
  constexpr double kDispatchMemdb = 800;   // ns: multiplexed dispatch
  // Replication-stream interception + chunking + append bookkeeping on the
  // MemoryDB write path (§3.1).
  constexpr double kChunking = 3100;

  // Below 2xlarge the multiplexing advantage is not realizable (not enough
  // cores to dedicate to the aggregator), matching the observed parity.
  const double memdb_dispatch = vcpus >= 8 ? kDispatchMemdb : kDispatchRedis;

  m.redis_read_ns =
      static_cast<uint64_t>((kExecRead + kDispatchRedis) * contention);
  m.redis_write_ns =
      static_cast<uint64_t>((kExecWrite + kDispatchRedis) * contention);
  m.memdb_read_ns =
      static_cast<uint64_t>((kExecRead + memdb_dispatch) * contention);
  m.memdb_write_ns = static_cast<uint64_t>(
      (kExecWrite + memdb_dispatch + kChunking) * contention);
  return m;
}

}  // namespace

const std::vector<InstanceModel>& R7gCatalog() {
  static const auto* kCatalog = new std::vector<InstanceModel>{
      Make("r7g.large", 2, 16),       Make("r7g.xlarge", 4, 32),
      Make("r7g.2xlarge", 8, 64),     Make("r7g.4xlarge", 16, 128),
      Make("r7g.8xlarge", 32, 256),   Make("r7g.12xlarge", 48, 384),
      Make("r7g.16xlarge", 64, 512),
  };
  return *kCatalog;
}

const InstanceModel& R7g(const std::string& name) {
  for (const InstanceModel& m : R7gCatalog()) {
    if (m.name == name) return m;
  }
  std::fprintf(stderr, "unknown instance type: %s\n", name.c_str());
  std::abort();
}

}  // namespace memdb::bench
