// Node-side metrics as JSON for benchmark output files. Benchmarks scrape a
// node's MetricsRegistry after a measurement window and emit the selected
// series so offline analysis can cross-check client-observed latency against
// server-side histograms (e.g. fig5 client p99 vs write_commit_latency_us).

#ifndef MEMDB_BENCH_SUPPORT_METRICS_JSON_H_
#define MEMDB_BENCH_SUPPORT_METRICS_JSON_H_

#include <string>
#include <vector>

#include "common/metrics.h"

namespace memdb::bench {

// Renders the named histogram families (every labeled series of each) and
// counter families from `reg` as one JSON object:
//   {"write_commit_latency_us":{"count":12,"sum_us":3400,"p50_us":210,
//    "p99_us":900},"node_records_appended_total":12,...}
std::string MetricsJson(const MetricsRegistry& reg,
                        const std::vector<std::string>& histograms,
                        const std::vector<std::string>& counters = {});

}  // namespace memdb::bench

#endif  // MEMDB_BENCH_SUPPORT_METRICS_JSON_H_
