// Common provenance envelope for every BENCH_*.json the bench/ binaries
// write: schema version, the build's git sha, the bench name, and an echo
// of the run's configuration. Downstream tooling (regression trackers,
// ROADMAP baselines like the group-commit comparison) can thus tell WHICH
// build and WHAT parameters produced a number before trusting a delta.

#ifndef MEMDB_BENCH_SUPPORT_ENVELOPE_H_
#define MEMDB_BENCH_SUPPORT_ENVELOPE_H_

#include <string>
#include <utility>
#include <vector>

namespace memdb::bench {

// Envelope schema; bump when the envelope's own layout changes (bench
// payloads version independently via their bench-specific fields).
inline constexpr int kBenchSchemaVersion = 1;

// Renders `"envelope":{...}` (no surrounding braces/comma) for splicing
// into a BENCH_*.json object. `config` holds (key, raw-JSON-value) pairs —
// the value is emitted verbatim, so pass numbers unquoted and strings
// pre-quoted via QuoteJson.
std::string BenchEnvelopeJson(
    const std::string& bench_name,
    const std::vector<std::pair<std::string, std::string>>& config);

// Escapes + double-quotes a string for use as a JSON value.
std::string QuoteJson(const std::string& s);

}  // namespace memdb::bench

#endif  // MEMDB_BENCH_SUPPORT_ENVELOPE_H_
