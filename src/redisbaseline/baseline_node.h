// BaselineNode: an OSS-Redis-like node, the comparison system for every
// experiment in the paper's evaluation. Shares the execution engine with
// MemoryDB but keeps Redis' durability model (§2):
//
//  * asynchronous replication — the primary acknowledges writes before the
//    effects reach any replica, so a failover can lose acknowledged writes;
//  * ranked failover — on primary timeout the most-up-to-date replica (by
//    replication offset, from each node's local view) promotes itself;
//    there is no fencing, so this can elect a stale node;
//  * optional AOF persistence (always / everysec fsync);
//  * fork-based BGSave with the copy-on-write and swap behaviour that
//    Figure 6 measures: fork stalls the workloop ~12 ms per GB of resident
//    memory, dirty pages are copied while the child serializes, and once
//    resident memory exceeds DRAM the node pages through a single disk
//    queue and throughput collapses.

#ifndef MEMDB_REDISBASELINE_BASELINE_NODE_H_
#define MEMDB_REDISBASELINE_BASELINE_NODE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "client/db_wire.h"
#include "engine/engine.h"
#include "engine/snapshot.h"
#include "sim/actor.h"
#include "sim/queue_server.h"

namespace memdb::redisbaseline {

struct BaselineConfig {
  bool start_as_primary = false;

  // --- replication ---------------------------------------------------------
  sim::Duration repl_flush_interval = 1 * sim::kMs;
  sim::Duration ping_interval = 100 * sim::kMs;
  sim::Duration failure_timeout = 600 * sim::kMs;

  // --- AOF -----------------------------------------------------------------
  enum class AofMode { kOff, kEverySec, kAlways };
  AofMode aof_mode = AofMode::kOff;
  sim::Duration fsync_cost = 800;  // us, per fsync on the local disk

  // --- memory / BGSave model ----------------------------------------------
  uint64_t ram_bytes = 16ULL << 30;
  uint64_t maxmemory_bytes = 0;
  // Extra resident bytes representing a large prefilled dataset without
  // materializing it (keeps host-machine memory sane in benchmarks).
  uint64_t synthetic_dataset_bytes = 0;
  // Page-table clone cost of fork(): ~12 ms per GB (paper §6.2.1).
  uint64_t fork_us_per_gb = 12000;
  // Child serialization throughput during BGSave.
  uint64_t bgsave_bytes_per_sec = 150ULL << 20;
  uint64_t page_bytes = 4096;
  // Fraction of dump-file bytes written so far that linger in the OS page
  // cache while BGSave runs; together with COW this is what pushes the
  // resident set past DRAM in the paper's memory-constrained setup.
  double dump_page_cache_fraction = 0.35;
  // Cost of paging in/out one page once swapping starts.
  sim::Duration swap_page_io = 8 * sim::kMs;

  // --- CPU model -----------------------------------------------------------
  int io_threads = 4;
  uint64_t io_op_cost_ns = 1000;
  uint64_t engine_read_cost_ns = 1900;
  uint64_t engine_write_cost_ns = 3100;
};

class BaselineNode : public sim::Actor {
 public:
  enum class DbRole { kPrimary, kReplica };

  BaselineNode(sim::Simulation* sim, sim::NodeId id, BaselineConfig config);

  void OnRestart() override;

  // Wires the (static) replication topology; every node learns all peers.
  void SetPeers(std::vector<sim::NodeId> peers);
  void SetPrimary(sim::NodeId primary);

  DbRole db_role() const { return role_; }
  bool IsPrimary() const { return role_ == DbRole::kPrimary; }
  uint64_t repl_offset() const { return repl_offset_; }
  engine::Engine& engine() { return engine_; }

  // --- BGSave (fig 6) ------------------------------------------------------
  void StartBgSave();
  bool bgsave_running() const { return bgsave_running_; }
  // Resident set: dataset + COW copies accumulated by the running BGSave.
  uint64_t resident_bytes() const;
  uint64_t swap_bytes() const;
  uint64_t cow_bytes() const { return cow_bytes_; }

  struct Stats {
    uint64_t commands = 0;
    uint64_t writes = 0;
    uint64_t acked_then_unreplicated = 0;  // written but not yet flushed
    uint64_t promotions = 0;
    uint64_t full_syncs = 0;
    uint64_t bgsaves_completed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void HandleCommand(const sim::Message& m);
  void HandleMulti(const sim::Message& m);
  void ExecutePrimary(const sim::Message& m,
                      const std::vector<engine::Argv>& commands, bool multi);
  // Extra engine-side latency from swapping, if any (fig 6 mechanism).
  sim::Duration SwapPenalty();

  // Replication.
  void FlushReplication();
  void HandleReplicate(const sim::Message& m);
  void RequestFullSync();
  void HandleFullSyncRequest(const sim::Message& m);

  // Failure detection + ranked failover (no fencing, §2.2).
  void PingPrimary();
  void MaybeStartFailover();
  void Promote();
  void HandleClaim(const sim::Message& m);
  void HandleNewPrimary(const sim::Message& m);

  // AOF.
  void AppendAof(const std::vector<engine::Argv>& effects);

  // BGSave progress bookkeeping.
  void BgSaveTick();

  BaselineConfig config_;
  engine::Engine engine_;
  sim::QueueServer io_pool_;
  sim::QueueServer workloop_;
  sim::QueueServer disk_;

  DbRole role_ = DbRole::kReplica;
  sim::NodeId primary_ = sim::kInvalidNode;
  std::vector<sim::NodeId> peers_;  // every other node in the shard

  // Replication state.
  uint64_t repl_offset_ = 0;  // primary: bytes produced; replica: applied
  std::string pending_stream_;  // effects not yet flushed to replicas
  sim::Time last_primary_seen_ = 0;
  bool failover_in_progress_ = false;
  bool syncing_ = false;

  // AOF state.
  uint64_t aof_unsynced_ = 0;

  // BGSave state.
  bool bgsave_running_ = false;
  uint64_t bgsave_total_bytes_ = 0;
  uint64_t bgsave_done_bytes_ = 0;
  uint64_t cow_bytes_ = 0;

  Stats stats_;
  uint64_t epoch_ = 0;
  // Sub-microsecond cost accumulation (the scheduler's tick is 1 us).
  uint64_t engine_cost_carry_ns_ = 0;
  uint64_t io_cost_carry_ns_ = 0;
};

}  // namespace memdb::redisbaseline

#endif  // MEMDB_REDISBASELINE_BASELINE_NODE_H_
