#include "redisbaseline/baseline_node.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc.h"

namespace memdb::redisbaseline {

using sim::Duration;
using sim::Message;
using sim::NodeId;
using resp::Value;

BaselineNode::BaselineNode(sim::Simulation* sim, NodeId id,
                           BaselineConfig config)
    : Actor(sim, id),
      config_(std::move(config)),
      engine_([&] {
        engine::Engine::Config ec;
        ec.maxmemory_bytes = config_.maxmemory_bytes;
        ec.rng_seed = 0x517cc1b7 ^ id;
        return ec;
      }()),
      io_pool_(&sim->scheduler(), config_.io_threads),
      workloop_(&sim->scheduler(), 1),
      disk_(&sim->scheduler(), 1) {
  role_ = config_.start_as_primary ? DbRole::kPrimary : DbRole::kReplica;
  if (config_.start_as_primary) primary_ = id;
  last_primary_seen_ = Now();

  On(client::kDbCommand, [this](const Message& m) { HandleCommand(m); });
  On(client::kDbMulti, [this](const Message& m) { HandleMulti(m); });
  On("bl.replicate", [this](const Message& m) { HandleReplicate(m); });
  On("bl.fullsync", [this](const Message& m) { HandleFullSyncRequest(m); });
  On("bl.claim", [this](const Message& m) { HandleClaim(m); });
  On("bl.new_primary", [this](const Message& m) { HandleNewPrimary(m); });
  On("bl.ping", [this](const Message& m) {
    if (role_ == DbRole::kPrimary) Reply(m, std::to_string(repl_offset_));
  });
  On("bl.who_primary", [this](const Message& m) {
    Reply(m, primary_ == sim::kInvalidNode ? "" : std::to_string(primary_));
  });

  Periodic(config_.repl_flush_interval, [this] { FlushReplication(); });
  Periodic(config_.ping_interval, [this] { PingPrimary(); });
  if (config_.aof_mode == BaselineConfig::AofMode::kEverySec) {
    Periodic(1 * sim::kSec, [this] {
      if (aof_unsynced_ > 0) {
        disk_.Submit(config_.fsync_cost);
        aof_unsynced_ = 0;
      }
    });
  }
  Periodic(10 * sim::kMs, [this] { BgSaveTick(); });
}

void BaselineNode::OnRestart() {
  Actor::OnRestart();
  ++epoch_;
  engine_.keyspace().Clear();
  role_ = DbRole::kReplica;  // rejoins as an empty replica and full-syncs
  repl_offset_ = 0;
  pending_stream_.clear();
  last_primary_seen_ = Now();
  failover_in_progress_ = false;
  syncing_ = false;
  aof_unsynced_ = 0;
  bgsave_running_ = false;
  cow_bytes_ = 0;
  stats_ = Stats{};
  primary_ = sim::kInvalidNode;
  // Re-arm loops (timers die with the old incarnation).
  Periodic(config_.repl_flush_interval, [this] { FlushReplication(); });
  Periodic(config_.ping_interval, [this] { PingPrimary(); });
  Periodic(10 * sim::kMs, [this] { BgSaveTick(); });
  RequestFullSync();
}

void BaselineNode::SetPeers(std::vector<NodeId> peers) {
  peers_ = std::move(peers);
}

void BaselineNode::SetPrimary(NodeId primary) {
  primary_ = primary;
  if (primary == id()) {
    role_ = DbRole::kPrimary;
  } else {
    role_ = DbRole::kReplica;
    last_primary_seen_ = Now();
  }
}

// ---------------------------------------------------------------- memory

uint64_t BaselineNode::resident_bytes() const {
  uint64_t resident = engine_.keyspace().used_memory() +
                      config_.synthetic_dataset_bytes + cow_bytes_;
  if (bgsave_running_) {
    // The child's dump file accumulates in the page cache while it is
    // being written, competing with the dataset for DRAM.
    resident += static_cast<uint64_t>(
        static_cast<double>(bgsave_done_bytes_) *
        config_.dump_page_cache_fraction);
  }
  return resident;
}

uint64_t BaselineNode::swap_bytes() const {
  const uint64_t resident = resident_bytes();
  return resident > config_.ram_bytes ? resident - config_.ram_bytes : 0;
}

Duration BaselineNode::SwapPenalty() {
  const uint64_t swapped = swap_bytes();
  if (swapped == 0) return 0;
  // Probability that this operation touches a swapped-out page grows with
  // the swapped fraction; a hit serializes behind the single disk queue,
  // which is what turns ~8% swap into an effective outage (§6.2.1).
  const double frac = static_cast<double>(swapped) /
                      static_cast<double>(resident_bytes());
  if (engine_.rng().NextDouble() < frac * 4.0) {
    const sim::Time done = disk_.Submit(config_.swap_page_io);
    return done > Now() ? done - Now() : 0;
  }
  return 0;
}

// ---------------------------------------------------------------- requests

void BaselineNode::HandleCommand(const Message& m) {
  client::DbRequest req;
  if (!client::DbRequest::Decode(m.payload, &req) || req.argv.empty()) {
    Reply(m, Value::Error("ERR protocol error").Encode());
    return;
  }
  ++stats_.commands;
  const std::string name = engine::Engine::Upper(req.argv[0]);
  if (name == "READONLY" || name == "READWRITE") {
    Reply(m, Value::Ok().Encode());
    return;
  }
  if (name == "WAIT") {
    Reply(m, Value::Integer(static_cast<int64_t>(peers_.size())).Encode());
    return;
  }
  if (name == "BGSAVE") {
    StartBgSave();
    Reply(m, Value::Simple("Background saving started").Encode());
    return;
  }
  const engine::CommandSpec* spec = engine_.FindCommand(name);
  if (spec == nullptr) {
    Reply(m, Value::Error("ERR unknown command '" + req.argv[0] + "'").Encode());
    return;
  }
  const bool is_write = spec->is_write;
  io_cost_carry_ns_ += config_.io_op_cost_ns;
  const Duration io_cost = io_cost_carry_ns_ / 1000;
  io_cost_carry_ns_ %= 1000;
  engine_cost_carry_ns_ += is_write ? config_.engine_write_cost_ns
                                    : config_.engine_read_cost_ns;
  const Duration engine_cost = engine_cost_carry_ns_ / 1000;
  engine_cost_carry_ns_ %= 1000;
  const uint64_t epoch = epoch_;
  io_pool_.SubmitAnd(io_cost, [this, m, req = std::move(req), is_write,
                               engine_cost, epoch]() mutable {
    if (!alive() || epoch != epoch_) return;
    const Duration swap_stall = SwapPenalty();
    workloop_.SubmitAnd(
        engine_cost + swap_stall,
        [this, m, req = std::move(req), is_write, epoch]() mutable {
          if (!alive() || epoch != epoch_) return;
          if (role_ == DbRole::kReplica) {
            if (req.readonly && !is_write) {
              engine::ExecContext ctx;
              ctx.now_ms = Now() / 1000;
              ctx.role = engine::Role::kReplicaRead;
              ctx.rng = &engine_.rng();
              Reply(m, engine_.Execute(req.argv, &ctx).Encode());
            } else {
              const NodeId hint =
                  primary_ != sim::kInvalidNode ? primary_ : id();
              const uint16_t slot =
                  req.argv.size() > 1 ? KeyHashSlot(req.argv[1]) : 0;
              Reply(m,
                    Value::Error(client::MovedError(slot, hint)).Encode());
            }
            return;
          }
          ExecutePrimary(m, {req.argv}, /*multi=*/false);
        });
  });
}

void BaselineNode::HandleMulti(const Message& m) {
  client::DbMultiRequest req;
  if (!client::DbMultiRequest::Decode(m.payload, &req) ||
      req.commands.empty()) {
    Reply(m, Value::Error("ERR protocol error").Encode());
    return;
  }
  ++stats_.commands;
  const uint64_t epoch = epoch_;
  const Duration engine_cost =
      std::max<Duration>(1, config_.engine_write_cost_ns / 1000) *
      req.commands.size();
  io_pool_.SubmitAnd(
      std::max<Duration>(1, config_.io_op_cost_ns / 1000),
      [this, m, req = std::move(req), engine_cost, epoch]() mutable {
        if (!alive() || epoch != epoch_) return;
        workloop_.SubmitAnd(engine_cost, [this, m, req = std::move(req),
                                          epoch]() mutable {
          if (!alive() || epoch != epoch_) return;
          if (role_ != DbRole::kPrimary) {
            Reply(m, Value::Error(client::MovedError(
                                      0, primary_ == sim::kInvalidNode
                                             ? id()
                                             : primary_))
                         .Encode());
            return;
          }
          ExecutePrimary(m, req.commands, /*multi=*/true);
        });
      });
}

void BaselineNode::ExecutePrimary(const Message& m,
                                  const std::vector<engine::Argv>& commands,
                                  bool multi) {
  engine::ExecContext ctx;
  ctx.now_ms = Now() / 1000;
  ctx.role = engine::Role::kPrimary;
  ctx.rng = &engine_.rng();
  std::vector<Value> replies;
  for (const engine::Argv& argv : commands) {
    replies.push_back(engine_.Execute(argv, &ctx));
  }
  Value final_reply =
      multi ? Value::Array(std::move(replies)) : std::move(replies[0]);

  if (!ctx.effects.empty()) {
    ++stats_.writes;
    ++stats_.acked_then_unreplicated;
    // COW: a write during BGSave dirties pages the child has not yet
    // serialized; they get copied (§6.2).
    if (bgsave_running_ && bgsave_total_bytes_ > 0) {
      const double remaining =
          1.0 - static_cast<double>(bgsave_done_bytes_) /
                    static_cast<double>(bgsave_total_bytes_);
      if (engine_.rng().NextDouble() < remaining) {
        cow_bytes_ += config_.page_bytes;
      }
    }
    // Buffer the effects for asynchronous replication...
    for (const engine::Argv& argv : ctx.effects) {
      PutVarint64(&pending_stream_, argv.size());
      for (const std::string& a : argv) PutLengthPrefixed(&pending_stream_, a);
    }
    // ...and persist per AOF policy.
    AppendAof(ctx.effects);
    if (config_.aof_mode == BaselineConfig::AofMode::kAlways) {
      // fsync before acknowledging: the only mode in which Redis writes
      // are locally durable (§2.2.1).
      const sim::Time done = disk_.Submit(config_.fsync_cost);
      After(done > Now() ? done - Now() : 0, [this, m, final_reply] {
        Reply(m, final_reply.Encode());
      });
      return;
    }
  }
  // Asynchronous replication: the client is acknowledged immediately; the
  // effects may not have reached any replica yet (§2.2.2).
  Reply(m, final_reply.Encode());
}

void BaselineNode::AppendAof(const std::vector<engine::Argv>& effects) {
  if (config_.aof_mode == BaselineConfig::AofMode::kOff) return;
  for (const engine::Argv& argv : effects) {
    for (const std::string& a : argv) aof_unsynced_ += a.size() + 16;
  }
}

// ---------------------------------------------------------------- replication

void BaselineNode::FlushReplication() {
  if (role_ != DbRole::kPrimary || pending_stream_.empty()) return;
  stats_.acked_then_unreplicated = 0;
  std::string batch;
  PutFixed64(&batch, repl_offset_);
  repl_offset_ += pending_stream_.size();
  batch += pending_stream_;
  pending_stream_.clear();
  for (NodeId peer : peers_) {
    if (peer != id()) Send(peer, "bl.replicate", batch);
  }
}

void BaselineNode::HandleReplicate(const Message& m) {
  if (role_ != DbRole::kReplica || syncing_) return;
  last_primary_seen_ = Now();
  primary_ = m.from;
  Decoder dec(m.payload);
  uint64_t from_offset;
  if (!dec.GetFixed64(&from_offset)) return;
  if (from_offset != repl_offset_) {
    // Lost part of the stream: full resynchronization.
    RequestFullSync();
    return;
  }
  while (!dec.Empty()) {
    uint64_t argc;
    if (!dec.GetVarint64(&argc)) break;
    engine::Argv argv(argc);
    bool ok = true;
    for (uint64_t i = 0; i < argc && ok; ++i) {
      ok = dec.GetLengthPrefixed(&argv[i]);
    }
    if (!ok) break;
    engine_.Apply(argv, Now() / 1000);
  }
  repl_offset_ = from_offset + (m.payload.size() - 8);
}

void BaselineNode::RequestFullSync() {
  if (syncing_ || primary_ == sim::kInvalidNode || primary_ == id()) return;
  syncing_ = true;
  ++stats_.full_syncs;
  const uint64_t epoch = epoch_;
  Rpc(primary_, "bl.fullsync", "", 10 * sim::kSec,
      [this, epoch](const Status& s, const std::string& body) {
        if (!alive() || epoch != epoch_) return;
        syncing_ = false;
        if (!s.ok()) return;  // retried on next replicate mismatch
        Decoder dec(body);
        uint64_t offset;
        std::string blob;
        if (!dec.GetFixed64(&offset) || !dec.GetLengthPrefixed(&blob)) return;
        engine::SnapshotMeta meta;
        if (DeserializeSnapshot(blob, &engine_.keyspace(), &meta).ok()) {
          repl_offset_ = offset;
          last_primary_seen_ = Now();
        }
      });
}

void BaselineNode::HandleFullSyncRequest(const Message& m) {
  if (role_ != DbRole::kPrimary) return;
  // Flush what is buffered so the snapshot offset is the stream position.
  FlushReplication();
  engine::SnapshotMeta meta;
  std::string out;
  PutFixed64(&out, repl_offset_);
  PutLengthPrefixed(&out, SerializeSnapshot(engine_.keyspace(), meta));
  Reply(m, std::move(out));
}

// ---------------------------------------------------------------- failover

void BaselineNode::PingPrimary() {
  if (role_ != DbRole::kReplica || syncing_) return;
  if (primary_ == sim::kInvalidNode) {
    // Topology discovery after a restart: ask any peer who leads.
    if (peers_.empty()) return;
    const NodeId peer =
        peers_[engine_.rng().Uniform(peers_.size())];
    if (peer == id()) return;
    const uint64_t epoch = epoch_;
    Rpc(peer, "bl.who_primary", "", 300 * sim::kMs,
        [this, epoch](const Status& s, const std::string& body) {
          if (!alive() || epoch != epoch_ || !s.ok() || body.empty()) return;
          const NodeId discovered =
              static_cast<NodeId>(std::stoul(body));
          if (discovered != id() && primary_ == sim::kInvalidNode) {
            primary_ = discovered;
            last_primary_seen_ = Now();
            RequestFullSync();
          }
        });
    return;
  }
  const uint64_t epoch = epoch_;
  Rpc(primary_, "bl.ping", "", config_.ping_interval,
      [this, epoch](const Status& s, const std::string&) {
        if (!alive() || epoch != epoch_) return;
        if (s.ok()) {
          last_primary_seen_ = Now();
        } else {
          MaybeStartFailover();
        }
      });
}

void BaselineNode::MaybeStartFailover() {
  if (role_ != DbRole::kReplica || failover_in_progress_) return;
  if (Now() < last_primary_seen_ + config_.failure_timeout) return;
  failover_in_progress_ = true;
  // Ranked election from this node's local view (§4.1: "no guarantee that
  // the elected replica observed all committed updates").
  struct Tally {
    int responses = 0;
    int total = 0;
    bool lost = false;
  };
  auto tally = std::make_shared<Tally>();
  std::vector<NodeId> voters;
  for (NodeId peer : peers_) {
    if (peer != id() && peer != primary_) voters.push_back(peer);
  }
  tally->total = static_cast<int>(voters.size());
  if (voters.empty()) {
    Promote();
    return;
  }
  const uint64_t epoch = epoch_;
  for (NodeId peer : voters) {
    Rpc(peer, "bl.claim", std::to_string(repl_offset_), 300 * sim::kMs,
        [this, epoch, tally, peer](const Status& s, const std::string& body) {
          if (!alive() || epoch != epoch_) return;
          ++tally->responses;
          if (s.ok() && !body.empty()) {
            const uint64_t peer_offset = std::stoull(body);
            // A peer with more data outranks us; ties break on node id so
            // concurrent claimants cannot both promote.
            if (peer_offset > repl_offset_ ||
                (peer_offset == repl_offset_ && peer > id())) {
              tally->lost = true;
            }
          }
          if (tally->responses == tally->total) {
            if (!tally->lost && role_ == DbRole::kReplica) {
              Promote();
            } else {
              failover_in_progress_ = false;
            }
          }
        });
  }
}

void BaselineNode::HandleClaim(const Message& m) {
  // Report our replication offset; the claimant self-ranks.
  Reply(m, std::to_string(repl_offset_));
  // If the claimant outranks us, adopt a grace period so we do not race.
  last_primary_seen_ = Now();
}

void BaselineNode::Promote() {
  role_ = DbRole::kPrimary;
  primary_ = id();
  failover_in_progress_ = false;
  ++stats_.promotions;
  pending_stream_.clear();
  for (NodeId peer : peers_) {
    if (peer != id()) Send(peer, "bl.new_primary", "");
  }
}

void BaselineNode::HandleNewPrimary(const Message& m) {
  if (m.from == id()) return;
  role_ = DbRole::kReplica;
  primary_ = m.from;
  last_primary_seen_ = Now();
  failover_in_progress_ = false;
  // The new primary's dataset wins; resync to it (acked writes that never
  // reached it are permanently lost — the §2.2.1 failure mode).
  repl_offset_ = 0;
  engine_.keyspace().Clear();
  RequestFullSync();
}

// ---------------------------------------------------------------- bgsave

void BaselineNode::StartBgSave() {
  if (bgsave_running_) return;
  bgsave_running_ = true;
  cow_bytes_ = 0;
  bgsave_total_bytes_ = resident_bytes();
  bgsave_done_bytes_ = 0;
  // fork(): clone the page table — the workloop stalls ~12 ms per GB
  // (§6.2.1 reports exactly this measurement).
  const uint64_t gb = bgsave_total_bytes_ >> 30;
  const Duration fork_stall =
      std::max<uint64_t>(1, gb) * config_.fork_us_per_gb;
  workloop_.StallUntil(Now() + fork_stall);
}

void BaselineNode::BgSaveTick() {
  if (!bgsave_running_) return;
  // The child serializes at a fixed rate; the parent pays COW on writes.
  bgsave_done_bytes_ += config_.bgsave_bytes_per_sec / 100;  // per 10 ms
  if (bgsave_done_bytes_ >= bgsave_total_bytes_) {
    bgsave_running_ = false;
    cow_bytes_ = 0;  // child exits; copied pages are released
    ++stats_.bgsaves_completed;
  }
}

}  // namespace memdb::redisbaseline
