// rpc::Channel: a multiplexed client connection to one RPC endpoint.
//
// Calls are submitted from any thread; each carries a per-call deadline and
// completes exactly once on the channel's loop thread — with the response
// payload, or TimedOut when the deadline lapses (the call is abandoned but
// the connection stays up; a late response is dropped by request-id), or
// Unavailable when the connection cannot be established / resets (every
// in-flight call fails; the next Call() reconnects lazily).
//
// RpcStats pre-resolves the per-method instruments from a shared registry at
// setup time so the hot path never mutates registry maps — that keeps
// concurrent scrapes (INFO/METRICS on another thread) race-free.

#ifndef MEMDB_RPC_CHANNEL_H_
#define MEMDB_RPC_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "rpc/frame.h"
#include "rpc/loop.h"

namespace memdb::rpc {

// Pre-resolved per-method instruments (rpc_requests_total{method=},
// rpc_errors_total{method=}, rpc_rtt_us{method=}) plus the shared
// rpc_inflight gauge. Construct before any thread touches the registry.
class RpcStats {
 public:
  struct MethodStats {
    Counter* requests = nullptr;
    Counter* errors = nullptr;
    Histogram* rtt_us = nullptr;
  };

  RpcStats() = default;
  RpcStats(MetricsRegistry* registry,
           const std::vector<std::string>& methods);

  MethodStats* For(const std::string& method);
  Gauge* inflight() { return inflight_; }

 private:
  std::map<std::string, MethodStats> per_method_;
  Gauge* inflight_ = nullptr;
};

class Channel {
 public:
  using Callback = std::function<void(Status, std::string payload)>;

  Channel(LoopThread* loop, std::string host, uint16_t port,
          RpcStats* stats = nullptr);
  ~Channel();
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Thread-safe. cb runs exactly once, on the loop thread.
  void Call(const std::string& method, std::string payload,
            uint64_t timeout_ms, uint64_t trace_id, Callback cb);

  // Closes the connection and fails in-flight calls with Unavailable. The
  // channel remains usable (reconnects on the next Call). Thread-safe.
  void Reset();

  // Must be called (from any non-loop thread) before destruction while the
  // loop is still running; fails pending calls and detaches from the loop.
  void Shutdown();

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

  // Write-path tracing: traced calls (frame trace id != 0) record
  // `rpc.send` when the request frame is queued and `rpc.recv` when its
  // response completes. Set before the first Call (TraceLog::Record itself
  // is lock-free, so recording never blocks the loop).
  void set_trace_log(TraceLog* trace) { trace_ = trace; }

 private:
  enum class ConnState : uint8_t { kDisconnected, kConnecting, kConnected };

  struct Pending {
    Callback cb;
    uint64_t timer_id = 0;
    uint64_t sent_at_ms = 0;
    uint64_t trace_id = 0;
    std::string method;
  };

  // All private methods run on the loop thread.
  void StartCall(const std::string& method, std::string&& payload,
                 uint64_t timeout_ms, uint64_t trace_id, Callback&& cb);
  void EnsureConnected();
  void OnSocketReady(uint32_t events);
  void FinishConnect();
  void ReadFrames();
  void Flush();
  void FailAll(const Status& status);
  void Complete(uint64_t request_id, const Status& status,
                std::string&& payload);
  void DisconnectLocked(bool reconnectable);

  LoopThread* const loop_;
  const std::string host_;
  const uint16_t port_;
  RpcStats* const stats_;
  TraceLog* trace_ = nullptr;

  int fd_ = -1;
  ConnState state_ = ConnState::kDisconnected;
  bool want_write_ = false;
  bool shutdown_ = false;
  LoopThread::FdHandler handler_;
  std::string in_;
  std::string out_;
  size_t out_sent_ = 0;
  uint64_t next_request_id_ = 1;
  std::map<uint64_t, Pending> pending_;
};

}  // namespace memdb::rpc

#endif  // MEMDB_RPC_CHANNEL_H_
