// rpc::Server: the service side of the internal RPC plane. Mounted on a
// LoopThread (possibly shared with channels and application timers), it
// accepts connections, decodes length-prefixed frames (rpc/frame.h), and
// dispatches requests to registered method handlers.
//
// Handlers receive a Call whose respond() may be invoked immediately or
// stored and invoked later from the loop thread — that deferred path is how
// memorydb-txlogd implements quorum-gated appends (ack only after majority
// persistence) and long-poll ReadStream follows. respond() is safe to call
// after the client hung up (it becomes a no-op) and must be called at most
// once.

#ifndef MEMDB_RPC_SERVER_H_
#define MEMDB_RPC_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "net/listener.h"
#include "rpc/fault.h"
#include "rpc/frame.h"
#include "rpc/loop.h"

namespace memdb::rpc {

class Server {
 public:
  struct Call {
    std::string method;
    std::string payload;
    uint64_t trace_id = 0;
    uint64_t deadline_ms = 0;  // caller's budget hint; 0 = none
    // Sends the response (loop-thread or cross-thread safe; routed through
    // Post). No-op if the connection has gone away.
    std::function<void(Code, std::string payload)> respond;
  };
  using Handler = std::function<void(Call&&)>;

  Server(LoopThread* loop, std::string bind_address, uint16_t port);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Register before Start(); the table is read-only afterwards.
  void RegisterHandler(const std::string& method, Handler handler);

  Status Start();  // binds + listens; after OK, port() is meaningful
  void Stop();     // closes listener and every connection (idempotent)

  uint16_t port() const { return port_; }
  // Optional: server-side rpc counters into a shared registry. Must be set
  // before Start().
  void set_metrics(MetricsRegistry* registry);
  // Optional: traced requests (frame trace id != 0) record `rpc.dispatch`
  // as they are handed to their handler. Must be set before Start().
  void set_trace_log(TraceLog* trace) { trace_ = trace; }
  FaultInjector& fault() { return fault_; }

 private:
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    bool dead = false;
    std::string in;
    std::string out;
    size_t out_sent = 0;
    bool want_write = false;
    LoopThread::FdHandler handler;
  };

  void AcceptPending();
  void OnConnReady(Conn* c, uint32_t events);
  void ReadFrames(Conn* c);
  void FlushConn(Conn* c);
  void CloseConn(Conn* c);
  void Dispatch(Conn* c, Frame&& frame);
  void SendResponse(uint64_t conn_id, Frame&& frame);
  void QueueFrame(Conn* c, const Frame& frame);

  LoopThread* const loop_;
  const std::string bind_address_;
  const uint16_t requested_port_;
  uint16_t port_ = 0;

  net::Listener listener_;
  LoopThread::FdHandler listener_handler_;
  std::map<std::string, Handler> handlers_;
  std::map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;
  bool started_ = false;
  bool stopping_ = false;

  FaultInjector fault_;
  MetricsRegistry* metrics_ = nullptr;
  TraceLog* trace_ = nullptr;
  Counter* requests_ = nullptr;
  Counter* bad_frames_ = nullptr;
  Counter* no_method_ = nullptr;
  Gauge* conns_gauge_ = nullptr;
};

}  // namespace memdb::rpc

#endif  // MEMDB_RPC_SERVER_H_
