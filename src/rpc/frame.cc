#include "rpc/frame.h"

#include "common/coding.h"
#include "common/crc.h"
#include "common/slice.h"

namespace memdb::rpc {

namespace {
// magic(4) + version/type/code/reserved(4) + request_id(8) + trace_id(8) +
// deadline(8) + method_len(2).
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8 + 2;
constexpr size_t kChecksumBytes = 4;

uint32_t FrameChecksum(const char* data, size_t size) {
  return static_cast<uint32_t>(Crc64(0, data, size));
}
}  // namespace

void EncodeFrame(const Frame& frame, std::string* out) {
  const size_t start = out->size();
  PutFixed32(out, 0);  // placeholder for the length field
  PutFixed32(out, kMagic);
  out->push_back(static_cast<char>(kVersion));
  out->push_back(static_cast<char>(frame.type));
  out->push_back(static_cast<char>(frame.code));
  out->push_back(0);  // reserved
  PutFixed64(out, frame.request_id);
  PutFixed64(out, frame.trace_id);
  PutFixed64(out, frame.deadline_ms);
  PutFixed16(out, static_cast<uint16_t>(frame.method.size()));
  out->append(frame.method);
  out->append(frame.payload);
  const uint32_t crc =
      FrameChecksum(out->data() + start + 4, out->size() - start - 4);
  PutFixed32(out, crc);
  // Backpatch the length field.
  const uint32_t body = static_cast<uint32_t>(out->size() - start - 4);
  (*out)[start + 0] = static_cast<char>(body & 0xff);
  (*out)[start + 1] = static_cast<char>((body >> 8) & 0xff);
  (*out)[start + 2] = static_cast<char>((body >> 16) & 0xff);
  (*out)[start + 3] = static_cast<char>((body >> 24) & 0xff);
}

FrameDecode DecodeFrame(const char* data, size_t size, size_t* consumed,
                        Frame* out, std::string* error) {
  if (size < 4) return FrameDecode::kNeedMore;
  Decoder len_dec(Slice(data, 4));
  uint32_t body_len = 0;
  len_dec.GetFixed32(&body_len);
  if (body_len < kHeaderBytes + kChecksumBytes ||
      body_len > kMaxFrameBytes) {
    *error = "invalid frame length";
    return FrameDecode::kError;
  }
  if (size < 4 + static_cast<size_t>(body_len)) return FrameDecode::kNeedMore;

  const char* body = data + 4;
  Decoder dec(Slice(body, body_len));
  uint32_t magic = 0;
  dec.GetFixed32(&magic);
  if (magic != kMagic) {
    *error = "bad magic";
    return FrameDecode::kError;
  }
  // version/type/code/reserved as a fixed32 to keep Decoder usage uniform.
  const uint8_t version = static_cast<uint8_t>(body[4]);
  const uint8_t type = static_cast<uint8_t>(body[5]);
  const uint8_t code = static_cast<uint8_t>(body[6]);
  if (version != kVersion) {
    *error = "unsupported rpc version";
    return FrameDecode::kError;
  }
  if (type > 1) {
    *error = "bad frame type";
    return FrameDecode::kError;
  }
  const uint32_t wire_crc =
      FrameChecksum(body, body_len - kChecksumBytes);
  Decoder crc_dec(Slice(body + body_len - kChecksumBytes, kChecksumBytes));
  uint32_t got_crc = 0;
  crc_dec.GetFixed32(&got_crc);
  if (wire_crc != got_crc) {
    *error = "frame checksum mismatch";
    return FrameDecode::kError;
  }

  Decoder hd(Slice(body + 8, body_len - 8 - kChecksumBytes));
  uint16_t method_len = 0;
  if (!hd.GetFixed64(&out->request_id) || !hd.GetFixed64(&out->trace_id) ||
      !hd.GetFixed64(&out->deadline_ms) || !hd.GetFixed16(&method_len)) {
    *error = "truncated frame header";
    return FrameDecode::kError;
  }
  if (hd.Remaining() < method_len) {
    *error = "method overruns frame";
    return FrameDecode::kError;
  }
  const char* rest = body + 8 + hd.Position();
  out->type = static_cast<FrameType>(type);
  out->code = static_cast<Code>(code);
  out->method.assign(rest, method_len);
  out->payload.assign(rest + method_len,
                      body_len - 8 - kChecksumBytes - hd.Position() -
                          method_len);
  *consumed = 4 + static_cast<size_t>(body_len);
  return FrameDecode::kOk;
}

}  // namespace memdb::rpc
