#include "rpc/channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace memdb::rpc {

namespace {
constexpr size_t kReadChunk = 64 * 1024;

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

RpcStats::RpcStats(MetricsRegistry* registry,
                   const std::vector<std::string>& methods) {
  inflight_ = registry->GetGauge("rpc_inflight");
  for (const std::string& m : methods) {
    MethodStats s;
    s.requests =
        registry->GetCounter("rpc_requests_total", {{"method", m}});
    s.errors = registry->GetCounter("rpc_errors_total", {{"method", m}});
    s.rtt_us = registry->GetHistogram("rpc_rtt_us", {{"method", m}});
    per_method_[m] = s;
  }
}

RpcStats::MethodStats* RpcStats::For(const std::string& method) {
  auto it = per_method_.find(method);
  return it == per_method_.end() ? nullptr : &it->second;
}

Channel::Channel(LoopThread* loop, std::string host, uint16_t port,
                 RpcStats* stats)
    : loop_(loop), host_(std::move(host)), port_(port), stats_(stats) {
  handler_.on_ready = [this](uint32_t events) { OnSocketReady(events); };
}

Channel::~Channel() {
  // By contract Shutdown() ran (or the loop is already stopped and nothing
  // references us). Close the raw fd defensively.
  if (fd_ >= 0) ::close(fd_);
}

void Channel::Call(const std::string& method, std::string payload,
                   uint64_t timeout_ms, uint64_t trace_id, Callback cb) {
  loop_->Post([this, method, payload = std::move(payload), timeout_ms,
               trace_id, cb = std::move(cb)]() mutable {
    StartCall(method, std::move(payload), timeout_ms, trace_id,
              std::move(cb));
  });
}

void Channel::Reset() {
  loop_->Post([this] { DisconnectLocked(/*reconnectable=*/true); });
}

// lint:off-loop -- header contract: called from a non-loop thread before
// destruction; PostSync's rendezvous is the point.
void Channel::Shutdown() {
  loop_->PostSync([this] {
    shutdown_ = true;
    DisconnectLocked(/*reconnectable=*/false);
  });
}

void Channel::StartCall(const std::string& method, std::string&& payload,
                        uint64_t timeout_ms, uint64_t trace_id,
                        Callback&& cb) {
  loop_->AssertOnLoopThread();
  if (shutdown_) {
    cb(Status::Unavailable("channel shut down"), std::string());
    return;
  }
  EnsureConnected();
  if (state_ == ConnState::kDisconnected) {
    if (RpcStats::MethodStats* ms =
            stats_ != nullptr ? stats_->For(method) : nullptr) {
      ms->requests->Increment();
      ms->errors->Increment();
    }
    cb(Status::Unavailable("connect " + host_ + ":" +
                           std::to_string(port_) + " failed"),
       std::string());
    return;
  }

  const uint64_t id = next_request_id_++;
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.request_id = id;
  frame.trace_id = trace_id;
  frame.deadline_ms = timeout_ms;
  frame.method = method;
  frame.payload = std::move(payload);
  EncodeFrame(frame, &out_);

  Pending p;
  p.cb = std::move(cb);
  p.sent_at_ms = NowUs();
  p.trace_id = trace_id;
  p.method = method;
  if (trace_ != nullptr && trace_id != 0) {
    trace_->Record(trace_id, "rpc.send", p.sent_at_ms, id);
  }
  if (timeout_ms > 0) {
    p.timer_id = loop_->After(timeout_ms, [this, id] {
      Complete(id, Status::TimedOut("rpc deadline exceeded"), std::string());
    });
  }
  pending_.emplace(id, std::move(p));
  if (stats_ != nullptr) {
    if (RpcStats::MethodStats* ms = stats_->For(method)) {
      ms->requests->Increment();
    }
    if (stats_->inflight() != nullptr) stats_->inflight()->Add(1);
  }
  if (state_ == ConnState::kConnected) Flush();
}

void Channel::EnsureConnected() {
  if (state_ != ConnState::kDisconnected) return;
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return;
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct sockaddr_in sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &sa.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  // lint:allow-blocking — fd is SOCK_NONBLOCK; connect returns EINPROGRESS.
  const int rc =
      ::connect(fd_, reinterpret_cast<struct sockaddr*>(&sa), sizeof(sa));
  if (rc == 0) {
    state_ = ConnState::kConnected;
  } else if (errno == EINPROGRESS) {
    state_ = ConnState::kConnecting;
  } else {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  const uint32_t interest = state_ == ConnState::kConnecting
                                ? (net::kReadable | net::kWritable)
                                : net::kReadable;
  if (!loop_->Watch(fd_, interest, &handler_).ok()) {
    ::close(fd_);
    fd_ = -1;
    state_ = ConnState::kDisconnected;
    return;
  }
  want_write_ = state_ == ConnState::kConnecting;
}

void Channel::OnSocketReady(uint32_t events) {
  loop_->AssertOnLoopThread();
  if (fd_ < 0) return;
  if (state_ == ConnState::kConnecting) {
    if (events & (net::kWritable | net::kClosed)) FinishConnect();
    if (fd_ < 0 || state_ != ConnState::kConnected) return;
  }
  if (events & (net::kReadable | net::kClosed)) ReadFrames();
  if (fd_ >= 0 && (events & net::kWritable)) Flush();
}

void Channel::FinishConnect() {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    DisconnectLocked(/*reconnectable=*/true);
    return;
  }
  state_ = ConnState::kConnected;
  Flush();
}

void Channel::ReadFrames() {
  for (;;) {
    const size_t old = in_.size();
    in_.resize(old + kReadChunk);
    const ssize_t n = ::read(fd_, in_.data() + old, kReadChunk);
    if (n > 0) {
      in_.resize(old + static_cast<size_t>(n));
      continue;
    }
    in_.resize(old);
    if (n == 0) {
      DisconnectLocked(/*reconnectable=*/true);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    DisconnectLocked(/*reconnectable=*/true);
    return;
  }

  size_t off = 0;
  while (off < in_.size()) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    const FrameDecode r = DecodeFrame(in_.data() + off, in_.size() - off,
                                      &consumed, &frame, &error);
    if (r == FrameDecode::kNeedMore) break;
    if (r == FrameDecode::kError) {
      DisconnectLocked(/*reconnectable=*/true);
      return;
    }
    off += consumed;
    if (frame.type != FrameType::kResponse) continue;
    Status status = Status::OK();
    switch (frame.code) {
      case Code::kOk:
        break;
      case Code::kNoMethod:
        status = Status::InvalidArgument("no such rpc method");
        break;
      case Code::kBadRequest:
        status = Status::InvalidArgument("rpc bad request");
        break;
      case Code::kShutdown:
      case Code::kOverloaded:
        status = Status::Unavailable("rpc server unavailable");
        break;
    }
    Complete(frame.request_id, status, std::move(frame.payload));
  }
  if (off > 0) in_.erase(0, off);
}

void Channel::Flush() {
  while (out_sent_ < out_.size()) {
    const ssize_t n = ::send(fd_, out_.data() + out_sent_,
                             out_.size() - out_sent_, MSG_NOSIGNAL);
    if (n > 0) {
      out_sent_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    DisconnectLocked(/*reconnectable=*/true);
    return;
  }
  if (out_sent_ == out_.size()) {
    out_.clear();
    out_sent_ = 0;
  }
  const bool want = !out_.empty() || state_ == ConnState::kConnecting;
  if (want != want_write_) {
    want_write_ = want;
    Status rearm = loop_->Rearm(
        fd_, want ? (net::kReadable | net::kWritable) : net::kReadable,
        &handler_);
    if (!rearm.ok()) {
      // Interest set desynced from want_write_: pending output would never
      // flush and every in-flight call would hang to its deadline. Reset
      // the connection so callers fail fast and the next Call reconnects.
      DisconnectLocked(/*reconnectable=*/true);
    }
  }
}

void Channel::Complete(uint64_t request_id, const Status& status,
                       std::string&& payload) {
  loop_->AssertOnLoopThread();
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // duplicate / late / already timed out
  Pending p = std::move(it->second);
  pending_.erase(it);
  if (p.timer_id != 0) loop_->CancelTimer(p.timer_id);
  if (stats_ != nullptr) {
    if (stats_->inflight() != nullptr) stats_->inflight()->Add(-1);
    if (RpcStats::MethodStats* ms = stats_->For(p.method)) {
      if (status.ok()) {
        ms->rtt_us->Record(NowUs() - p.sent_at_ms);
      } else {
        ms->errors->Increment();
      }
    }
  }
  if (trace_ != nullptr && p.trace_id != 0 && status.ok()) {
    trace_->Record(p.trace_id, "rpc.recv", NowUs(), request_id);
  }
  p.cb(status, std::move(payload));
}

void Channel::FailAll(const Status& status) {
  while (!pending_.empty()) {
    Complete(pending_.begin()->first, status, std::string());
  }
}

void Channel::DisconnectLocked(bool reconnectable) {
  loop_->AssertOnLoopThread();
  if (fd_ >= 0) {
    loop_->Unwatch(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  state_ = ConnState::kDisconnected;
  want_write_ = false;
  in_.clear();
  out_.clear();
  out_sent_ = 0;
  FailAll(reconnectable
              ? Status::Unavailable("rpc connection lost")
              : Status::Unavailable("channel shut down"));
}

}  // namespace memdb::rpc
